#!/usr/bin/env bash
# Full local gate: build, test, lint, static analysis. Run from the
# repository root.
#
#   ./scripts/check.sh                 # everything
#   SKIP_CLIPPY=1 ./scripts/check.sh   # skip the clippy pass
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo build --release"
cargo build --release --workspace

echo "==> cargo test (workspace)"
cargo test -q --workspace

if [ -z "${SKIP_CLIPPY:-}" ]; then
    echo "==> cargo clippy (all targets, vendored deps excluded) -- -D warnings"
    cargo clippy --workspace --exclude rand --exclude proptest --exclude criterion \
        --all-targets -- -D warnings
fi

echo "==> lgo-analyze --workspace"
cargo run -q -p lgo-analyze -- --workspace

echo "==> cargo test (strict-numerics sanitizers)"
cargo test -q -p lgo-tensor -p lgo-nn --features strict-numerics

echo "==> all checks passed"
