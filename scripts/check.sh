#!/usr/bin/env bash
# Full local gate: build, test, lint. Run from the repository root.
#
#   ./scripts/check.sh           # everything
#   SKIP_CLIPPY=1 ./scripts/check.sh   # build + tests only
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo build --release"
cargo build --release --workspace

echo "==> cargo test (workspace)"
cargo test -q --workspace

if [ -z "${SKIP_CLIPPY:-}" ]; then
    echo "==> cargo clippy --workspace -- -D warnings"
    cargo clippy --workspace -- -D warnings
fi

echo "==> all checks passed"
