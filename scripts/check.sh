#!/usr/bin/env bash
# Full local gate: build, test, lint, static analysis. Run from the
# repository root.
#
#   ./scripts/check.sh                 # everything
#   SKIP_CLIPPY=1 ./scripts/check.sh   # skip the clippy pass
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo build --release"
cargo build --release --workspace

# The tier-1 suite runs twice: serial (LGO_THREADS=1 pins every lgo-runtime
# fan-out to the inline path) and parallel (LGO_THREADS=4 exercises real
# worker threads). Both must pass identically — parallelism is a pure
# performance knob, never a behavior change.
echo "==> cargo test (workspace, LGO_THREADS=1)"
LGO_THREADS=1 cargo test -q --workspace

echo "==> cargo test (workspace, LGO_THREADS=4)"
LGO_THREADS=4 cargo test -q --workspace

if [ -z "${SKIP_CLIPPY:-}" ]; then
    echo "==> cargo clippy (all targets, vendored deps excluded) -- -D warnings"
    cargo clippy --workspace --exclude rand --exclude proptest --exclude criterion \
        --all-targets -- -D warnings
fi

# Analyze tier: the workspace must be clean under L1–L13, the machine-
# readable report must match the checked-in expectation byte for byte
# (drift in either direction — new findings or silently vanished coverage
# — fails the gate), and the analyzer's wall time is recorded for the
# bench history. Timing lives out here in the shell: the analyzer library
# itself is banned from wall-clock reads by its own L9.
echo "==> lgo-analyze --workspace (findings gate + report diff)"
cargo build -q --release -p lgo-analyze
mkdir -p results
t0=$(date +%s%N)
./target/release/lgo-analyze --workspace --json > results/analyze.json \
    || true # findings fail the gate below, with readable diagnostics
t1=$(date +%s%N)
./target/release/lgo-analyze --workspace
diff -u expected/analyze.json results/analyze.json \
    || { echo "analyze report drifted from expected/analyze.json"; exit 1; }
findings=$(grep -c '"file"' results/analyze.json || true)
printf '{\n  "bench": "analyze",\n  "findings": %s,\n  "wall_ms": %s\n}\n' \
    "$findings" "$(( (t1 - t0) / 1000000 ))" > results/BENCH_analyze.json
echo "    analyze wall time: $(( (t1 - t0) / 1000000 )) ms (results/BENCH_analyze.json)"

echo "==> cargo test (strict-numerics sanitizers)"
cargo test -q -p lgo-tensor -p lgo-nn -p lgo-runtime -p lgo-core \
    --features strict-numerics

echo "==> exp_scaling (fast scale): thread-count speedup + determinism gate"
LGO_SCALE=fast cargo run -q -p lgo-bench --release --bin exp_scaling > /dev/null

# Trace tier: the observability layer must pass the same tier-1 suite with
# instrumentation compiled in, and a traced pipeline run must emit a report
# that validates against the lgo-trace schema.
echo "==> cargo test (workspace, --features trace)"
cargo test -q --workspace --features trace

echo "==> exp_scaling (fast scale, traced): LGO_TRACE=json report emission"
rm -f results/trace_exp_scaling.json
LGO_SCALE=fast LGO_TRACE=json \
    cargo run -q -p lgo-bench --release --features trace --bin exp_scaling > /dev/null
cargo run -q -p lgo-trace --release --bin trace_schema -- results/trace_exp_scaling.json

# Serve tier: the online scoring service must survive a hostile fast-scale
# cohort (injected stalls + panics) end to end — backpressure, shedding,
# watchdog and quarantine all exercised — and its trace report must
# validate against the schema. bench_serve asserts the robustness contract
# (panics captured, patients quarantined, every accepted sample drained)
# before exiting, so a green run here is the contract holding.
echo "==> bench_serve (fast scale, traced): fault-injected serving gate"
rm -f results/trace_serve.json
LGO_SCALE=fast LGO_TRACE=json LGO_SERVE_PATIENTS=300 \
    cargo run -q -p lgo-bench --release --features trace --bin bench_serve > /dev/null
cargo run -q -p lgo-trace --release --bin trace_schema -- results/trace_serve.json

# Perf tier: the hot-path accelerations (pruned DTW, interleaved/tiled
# matmul + syrk, kernel cache) must stay bitwise equal to their legacy
# reference paths — exp_perf asserts per-stage output identity internally
# and exits non-zero on any divergence — and the canonical report must
# carry the expected schema. Speedup magnitudes are NOT gated here: CI
# machines vary too much for a hard ratio; the committed
# results/BENCH_perf.json records the measured trajectory instead.
echo "==> exp_perf (fast scale, traced): hot-path equivalence + report gate"
LGO_PERF_SCALE=fast \
    cargo run -q -p lgo-bench --release --features trace --bin exp_perf > /dev/null
for key in '"stages"' '"dtw_matrix"' '"detector_grid"' '"lstm_forward"' \
           '"speedup"' '"identical": true'; do
    grep -q "$key" results/BENCH_perf.json \
        || { echo "BENCH_perf.json missing $key"; exit 1; }
done
if grep -q '"identical": false' results/BENCH_perf.json; then
    echo "BENCH_perf.json reports an optimized path diverging from legacy"
    exit 1
fi

# Zoo tier: the attack subsystem must run its full eight-attacker study at
# fast scale with tracing compiled in, write the canonical BENCH report,
# and emit a schema-valid trace. Report determinism across thread counts
# is pinned separately by tests/attack_zoo.rs in the tier-1 suite.
echo "==> exp_attack_zoo (fast scale, traced): attack-zoo gate"
rm -f results/trace_attack_zoo.json
LGO_SCALE=fast LGO_TRACE=json \
    cargo run -q -p lgo-bench --release --features trace --bin exp_attack_zoo > /dev/null
cargo run -q -p lgo-trace --release --bin trace_schema -- results/trace_attack_zoo.json

# Defense tier: the pluggable defense strategies (LGO-selective,
# indiscriminate, ROAST, iterative retraining) must fit their full
# detector ladders at fast scale with tracing compiled in, emit a
# schema-valid trace, and reproduce the checked-in canonical report byte
# for byte — recall/FPR cells, crafted-window counts and kernel-cache
# deltas are all deterministic by contract (drift in any of them means a
# behavior change, not noise). Thread-count determinism is pinned
# separately by tests/defense.rs in the tier-1 suite.
echo "==> exp_defense (fast scale, traced): defense-strategy gate"
rm -f results/trace_defense.json
LGO_SCALE=fast LGO_TRACE=json \
    cargo run -q -p lgo-bench --release --features trace --bin exp_defense > /dev/null
cargo run -q -p lgo-trace --release --bin trace_schema -- results/trace_defense.json
diff -u expected/BENCH_defense.json results/BENCH_defense.json \
    || { echo "BENCH_defense.json drifted from expected/BENCH_defense.json"; exit 1; }

echo "==> all checks passed"
