//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no access to crates.io, so this vendored crate
//! provides exactly the API surface the workspace uses — [`rngs::StdRng`],
//! [`SeedableRng::seed_from_u64`], [`RngExt::random_range`] over half-open
//! ranges, and [`seq::SliceRandom::shuffle`] — backed by xoshiro256++
//! (Blackman & Vigna), a small, fast generator with excellent statistical
//! quality for simulation workloads. Not cryptographically secure.

use std::ops::Range;

/// A source of uniformly distributed 64-bit words.
pub trait RngCore {
    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

/// Uniform sampling of a value from a half-open range.
pub trait SampleUniform: Copy + PartialOrd {
    /// Draws a value in `[lo, hi)`.
    fn sample_single<R: RngExt + ?Sized>(lo: Self, hi: Self, rng: &mut R) -> Self;
}

/// Convenience sampling methods, available on every [`RngCore`].
pub trait RngExt: RngCore {
    /// A uniform draw from `range` (half-open: `range.end` is excluded).
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn random_range<T: SampleUniform>(&mut self, range: Range<T>) -> T {
        assert!(range.start < range.end, "random_range: empty range");
        T::sample_single(range.start, range.end, self)
    }

    /// A uniform draw from `[0, 1)`.
    fn random_f64(&mut self) -> f64 {
        // 53 random mantissa bits.
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// A uniform random boolean with probability `p` of `true`.
    fn random_bool(&mut self, p: f64) -> bool {
        self.random_f64() < p
    }
}

impl<R: RngCore + ?Sized> RngExt for R {}

/// Deterministic construction of a generator from seed material.
pub trait SeedableRng: Sized {
    /// Builds a generator whose entire stream is a function of `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

impl SampleUniform for f64 {
    fn sample_single<R: RngExt + ?Sized>(lo: Self, hi: Self, rng: &mut R) -> Self {
        let v = lo + rng.random_f64() * (hi - lo);
        // Floating-point rounding can land exactly on `hi` for very wide
        // ranges; nudge back inside to keep the half-open contract.
        if v < hi {
            v
        } else {
            hi.next_down().max(lo)
        }
    }
}

macro_rules! impl_sample_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_single<R: RngExt + ?Sized>(lo: Self, hi: Self, rng: &mut R) -> Self {
                let span = (hi as i128 - lo as i128) as u128;
                // Multiply-shift bounded sampling (Lemire); the slight bias
                // for astronomically large spans is irrelevant here.
                let hi64 = ((rng.next_u64() as u128 * span) >> 64) as i128;
                (lo as i128 + hi64) as $t
            }
        }
    )*};
}

impl_sample_uniform_int!(usize, u64, u32, u16, u8, i64, i32, i16, i8);

/// Concrete generator types.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard deterministic generator: xoshiro256++.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl StdRng {
        fn from_state(s: [u64; 4]) -> Self {
            Self { s }
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // Expand the seed with SplitMix64, the recommended seeding
            // procedure for the xoshiro family.
            let mut x = seed;
            let mut next = move || {
                x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            Self::from_state([next(), next(), next(), next()])
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0]
                .wrapping_add(s[3])
                .rotate_left(23)
                .wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

/// Slice-level randomization helpers.
pub mod seq {
    use super::RngExt;

    /// Random reordering and selection on slices.
    pub trait SliceRandom {
        /// Element type.
        type Item;

        /// Fisher–Yates shuffle in place.
        fn shuffle<R: RngExt + ?Sized>(&mut self, rng: &mut R);

        /// A uniformly random element, or `None` when empty.
        fn choose<R: RngExt + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngExt + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.random_range(0..i + 1);
                self.swap(i, j);
            }
        }

        fn choose<R: RngExt + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[rng.random_range(0..self.len())])
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{RngCore, RngExt, SeedableRng};

    #[test]
    fn deterministic_under_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        assert_ne!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn float_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let v = rng.random_range(f64::EPSILON..1.0);
            assert!(v >= f64::EPSILON && v < 1.0, "{v}");
        }
    }

    #[test]
    fn float_range_covers_span() {
        let mut rng = StdRng::seed_from_u64(3);
        let draws: Vec<f64> = (0..10_000).map(|_| rng.random_range(0.0..10.0)).collect();
        let mean = draws.iter().sum::<f64>() / draws.len() as f64;
        assert!((mean - 5.0).abs() < 0.2, "mean {mean}");
        assert!(draws.iter().any(|&v| v < 1.0));
        assert!(draws.iter().any(|&v| v > 9.0));
    }

    #[test]
    fn int_range_uniformish() {
        let mut rng = StdRng::seed_from_u64(9);
        let mut counts = [0usize; 5];
        for _ in 0..10_000 {
            counts[rng.random_range(0..5usize)] += 1;
        }
        for &c in &counts {
            assert!((1700..2300).contains(&c), "counts {counts:?}");
        }
    }

    #[test]
    fn u32_range_in_bounds() {
        let mut rng = StdRng::seed_from_u64(11);
        for _ in 0..1000 {
            let v = rng.random_range(30..75u32);
            assert!((30..75).contains(&v));
        }
    }

    #[test]
    fn shuffle_permutes() {
        let mut rng = StdRng::seed_from_u64(5);
        let mut v: Vec<u32> = (0..20).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..20).collect::<Vec<u32>>());
        assert_ne!(v, sorted, "20 elements left in order is ~1/20! unlikely");
    }

    #[test]
    fn choose_returns_member() {
        let mut rng = StdRng::seed_from_u64(6);
        let v = [10, 20, 30];
        assert!(v.contains(v.choose(&mut rng).unwrap()));
        let empty: [i32; 0] = [];
        assert!(empty.choose(&mut rng).is_none());
    }

    #[test]
    #[should_panic(expected = "empty range")]
    fn empty_range_rejected() {
        let mut rng = StdRng::seed_from_u64(0);
        let _ = rng.random_range(1.0..1.0);
    }
}
