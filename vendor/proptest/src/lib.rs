//! Offline stand-in for the `proptest` crate.
//!
//! Implements the subset this workspace's property tests use: the
//! [`proptest!`] macro, [`Strategy`] for half-open ranges and tuples,
//! [`collection::vec`], [`any`]`::<bool>()`, `prop_map`, and the
//! `prop_assert!`/`prop_assert_eq!` macros. Each test runs a fixed number
//! of deterministically generated cases (seeded from the test name); there
//! is no shrinking — the failing inputs are printed instead.

use rand::rngs::StdRng;
use rand::{RngExt, SampleUniform, SeedableRng};
use std::ops::Range;

/// Number of generated cases per property test (override with the
/// `PROPTEST_CASES` environment variable).
pub fn cases() -> usize {
    std::env::var("PROPTEST_CASES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(64)
}

/// Seeds the per-test generator from the test's name so every test draws an
/// independent, reproducible stream.
pub fn test_rng(name: &str) -> StdRng {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3); // FNV-1a
    }
    StdRng::seed_from_u64(h)
}

/// A generator of test-case values.
pub trait Strategy {
    /// The values this strategy produces.
    type Value: std::fmt::Debug + Clone;

    /// Draws one value.
    fn generate(&self, rng: &mut StdRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<U: std::fmt::Debug + Clone, F: Fn(Self::Value) -> U>(
        self,
        f: F,
    ) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }
}

/// The strategy returned by [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, F, U> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> U,
    U: std::fmt::Debug + Clone,
{
    type Value = U;

    fn generate(&self, rng: &mut StdRng) -> U {
        (self.f)(self.inner.generate(rng))
    }
}

impl<T> Strategy for Range<T>
where
    T: SampleUniform + std::fmt::Debug + Clone + 'static,
{
    type Value = T;

    fn generate(&self, rng: &mut StdRng) -> T {
        rng.random_range(self.clone())
    }
}

macro_rules! impl_tuple_strategy {
    ($($s:ident / $idx:tt),+) => {
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);

            fn generate(&self, rng: &mut StdRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A / 0);
impl_tuple_strategy!(A / 0, B / 1);
impl_tuple_strategy!(A / 0, B / 1, C / 2);
impl_tuple_strategy!(A / 0, B / 1, C / 2, D / 3);

/// Produces arbitrary values of a type ([`any`]).
pub trait Arbitrary: Sized + std::fmt::Debug + Clone {
    /// Draws one arbitrary value.
    fn arbitrary(rng: &mut StdRng) -> Self;
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut StdRng) -> Self {
        rng.random_range(0..2u32) == 1
    }
}

/// The strategy returned by [`any`].
#[derive(Debug, Clone, Copy, Default)]
pub struct Any<T>(std::marker::PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn generate(&self, rng: &mut StdRng) -> T {
        T::arbitrary(rng)
    }
}

/// A strategy over every value of `T` (here: `bool`).
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

/// Collection strategies.
pub mod collection {
    use super::{Strategy, StdRng};
    use rand::RngExt;

    /// Length specification for [`vec`]: a fixed length or a half-open
    /// range of lengths.
    #[derive(Debug, Clone)]
    pub struct SizeRange {
        lo: usize,
        hi: usize, // exclusive
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            Self { lo: n, hi: n + 1 }
        }
    }

    impl From<std::ops::Range<usize>> for SizeRange {
        fn from(r: std::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "vec: empty size range");
            Self { lo: r.start, hi: r.end }
        }
    }

    /// The strategy returned by [`vec`].
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut StdRng) -> Vec<S::Value> {
            let len = if self.size.hi - self.size.lo <= 1 {
                self.size.lo
            } else {
                rng.random_range(self.size.lo..self.size.hi)
            };
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// A strategy producing `Vec`s of `element` values with the given
    /// length (spec: a `usize` or `Range<usize>`).
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }
}

/// Everything the property tests import.
pub mod prelude {
    pub use crate::{any, Arbitrary, Strategy};
    pub use crate::{prop_assert, prop_assert_eq, proptest};
}

/// Defines property tests: each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]` running [`cases`] deterministic iterations.
#[macro_export]
macro_rules! proptest {
    ($(
        $(#[$meta:meta])*
        fn $name:ident($($p:pat in $s:expr),+ $(,)?) $body:block
    )*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let mut __rng = $crate::test_rng(stringify!($name));
                for __case in 0..$crate::cases() {
                    $(let $p = $crate::Strategy::generate(&($s), &mut __rng);)+
                    $body
                }
            }
        )*
    };
}

/// `assert!` that reports the failing generated case.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        assert!($cond, "property failed: {}", stringify!($cond));
    };
    ($cond:expr, $($fmt:tt)*) => {
        assert!($cond, $($fmt)*);
    };
}

/// `assert_eq!` that reports the failing generated case.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr $(,)?) => {
        assert_eq!($a, $b);
    };
    ($a:expr, $b:expr, $($fmt:tt)*) => {
        assert_eq!($a, $b, $($fmt)*);
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    proptest! {
        #[test]
        fn ranges_stay_in_bounds(x in 0.0..1.0f64, n in 1usize..10) {
            prop_assert!((0.0..1.0).contains(&x));
            prop_assert!((1..10).contains(&n));
        }

        #[test]
        fn vec_lengths_respected(v in crate::collection::vec(0.0..1.0f64, 3..7)) {
            prop_assert!((3..7).contains(&v.len()));
        }

        #[test]
        fn fixed_len_vec(v in crate::collection::vec(-1.0..1.0f64, 5)) {
            prop_assert_eq!(v.len(), 5);
        }

        #[test]
        fn tuples_and_any(t in (0.0..10.0f64, any::<bool>()), b in any::<bool>()) {
            prop_assert!(t.0 < 10.0);
            let _ = (t.1, b);
        }

        #[test]
        fn prop_map_applies(v in (1.0..2.0f64).prop_map(|x| x * 10.0)) {
            prop_assert!((10.0..20.0).contains(&v));
        }
    }

    #[test]
    fn deterministic_per_test_name() {
        use super::Strategy;
        let mut a = super::test_rng("foo");
        let mut b = super::test_rng("foo");
        let s = 0.0..1.0f64;
        assert_eq!(s.generate(&mut a), s.generate(&mut b));
    }
}
