//! Offline stand-in for the `criterion` crate.
//!
//! Provides the API surface the workspace's benches use — [`Criterion`],
//! [`Bencher::iter`], [`Criterion::benchmark_group`], [`BenchmarkId`],
//! [`black_box`] and the [`criterion_group!`]/[`criterion_main!`] macros —
//! with a simple wall-clock measurement loop (warm-up, then a time-boxed
//! measurement phase reporting the mean iteration time).

use std::fmt;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Target wall-clock budget of one benchmark's measurement phase.
const MEASURE_BUDGET: Duration = Duration::from_millis(300);
const WARMUP_BUDGET: Duration = Duration::from_millis(50);

/// Runs one benchmark closure repeatedly and reports timing.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Measures `f`: warm-up, then as many iterations as fit in the
    /// measurement budget.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        let warm_start = Instant::now();
        while warm_start.elapsed() < WARMUP_BUDGET {
            black_box(f());
        }
        let start = Instant::now();
        let mut iters = 0u64;
        while start.elapsed() < MEASURE_BUDGET {
            black_box(f());
            iters += 1;
        }
        self.iters = iters;
        self.elapsed = start.elapsed();
    }
}

fn run_one(name: &str, f: &mut dyn FnMut(&mut Bencher)) {
    let mut b = Bencher {
        iters: 0,
        elapsed: Duration::ZERO,
    };
    f(&mut b);
    let per_iter = if b.iters > 0 {
        b.elapsed / b.iters as u32
    } else {
        Duration::ZERO
    };
    println!("{name:<48} {per_iter:>12.2?}/iter  ({} iters)", b.iters);
}

/// The benchmark harness entry point.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Registers and immediately runs one named benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        name: &str,
        mut f: F,
    ) -> &mut Self {
        run_one(name, &mut f);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup {
        println!("group: {name}");
        BenchmarkGroup {
            name: name.to_string(),
        }
    }
}

/// A parameterized benchmark identifier.
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// An id made of a function name and a parameter value.
    pub fn new(name: impl fmt::Display, parameter: impl fmt::Display) -> Self {
        Self {
            id: format!("{name}/{parameter}"),
        }
    }

    /// An id carrying only a parameter value.
    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        Self {
            id: parameter.to_string(),
        }
    }
}

/// A group of related benchmarks sharing a name prefix.
pub struct BenchmarkGroup {
    name: String,
}

impl BenchmarkGroup {
    /// Runs one benchmark of the group with an input value.
    pub fn bench_with_input<I, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        run_one(&format!("{}/{}", self.name, id.id), &mut |b| f(b, input));
        self
    }

    /// Finishes the group.
    pub fn finish(self) {}
}

/// Bundles benchmark functions into a runnable group function.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

/// Emits `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_closure() {
        let mut c = Criterion::default();
        let mut ran = false;
        c.bench_function("noop", |b| {
            b.iter(|| black_box(1 + 1));
            ran = true;
        });
        assert!(ran);
    }

    #[test]
    fn group_runs_with_input() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("g");
        group.bench_with_input(BenchmarkId::from_parameter(3), &3u64, |b, &n| {
            b.iter(|| black_box(n * 2));
        });
        group.finish();
    }
}
