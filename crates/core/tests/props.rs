//! Property-based tests for the risk-profiling framework's invariants.

use lgo_core::quadrant::QuadrantCounts;
use lgo_core::risk::{instantaneous_risk, squared_deviation, RiskProfile};
use lgo_core::severity::SeverityTable;
use lgo_core::state::{GlucoseState, StateThresholds};
use proptest::prelude::*;

proptest! {
    #[test]
    fn risk_is_nonnegative_and_zero_on_identity(
        benign in 30.0..450.0f64,
        adv in 30.0..450.0f64,
        fasting in any::<bool>(),
    ) {
        let t = SeverityTable::paper_default();
        let th = StateThresholds::default();
        let r = instantaneous_risk(benign, adv, fasting, &t, &th);
        prop_assert!(r >= 0.0);
        if th.classify(benign, fasting) == th.classify(adv, fasting) {
            prop_assert_eq!(r, 0.0);
        }
    }

    #[test]
    fn risk_scales_with_severity_family(
        benign in 30.0..450.0f64,
        adv in 30.0..450.0f64,
        fasting in any::<bool>(),
    ) {
        // Exponential coefficients dominate linear which dominate uniform,
        // transition by transition — so risks order the same way.
        let th = StateThresholds::default();
        let exp = instantaneous_risk(benign, adv, fasting, &SeverityTable::paper_default(), &th);
        let lin = instantaneous_risk(benign, adv, fasting, &SeverityTable::linear(), &th);
        let uni = instantaneous_risk(benign, adv, fasting, &SeverityTable::uniform(), &th);
        prop_assert!(exp >= lin - 1e-12);
        prop_assert!(lin >= uni - 1e-12);
        // All three agree on zero vs nonzero.
        prop_assert_eq!(exp == 0.0, uni == 0.0);
    }

    #[test]
    fn risk_monotone_in_deviation_within_transition(
        benign in 80.0..110.0f64,
        extra in 0.0..100.0f64,
    ) {
        // Fixed normal->hyper transition (fasting): larger deviation, larger risk.
        let t = SeverityTable::paper_default();
        let th = StateThresholds::default();
        let near = instantaneous_risk(benign, 130.0, true, &t, &th);
        let far = instantaneous_risk(benign, 130.0 + extra, true, &t, &th);
        prop_assert!(far >= near);
    }

    #[test]
    fn squared_deviation_properties(a in -500.0..500.0f64, b in -500.0..500.0f64) {
        prop_assert!(squared_deviation(a, b) >= 0.0);
        prop_assert_eq!(squared_deviation(a, b), squared_deviation(b, a));
        prop_assert_eq!(squared_deviation(a, a), 0.0);
    }

    #[test]
    fn classification_is_total_and_ordered(g in 0.0..600.0f64, fasting in any::<bool>()) {
        let th = StateThresholds::default();
        let state = th.classify(g, fasting);
        match state {
            GlucoseState::Hypo => prop_assert!(g < th.hypo),
            GlucoseState::Hyper => prop_assert!(g > th.hyper(fasting)),
            GlucoseState::Normal => {
                prop_assert!(g >= th.hypo && g <= th.hyper(fasting));
            }
        }
    }

    #[test]
    fn quadrant_tally_is_conservative(
        samples in proptest::collection::vec(
            (20.0..500.0f64, any::<bool>(), any::<bool>()),
            0..60,
        )
    ) {
        let th = StateThresholds::default();
        let n = samples.len();
        let c = QuadrantCounts::tally(samples, &th);
        prop_assert_eq!(c.total(), n);
    }

    #[test]
    fn feature_vector_has_requested_bins(
        values in proptest::collection::vec(0.0..1e9f64, 1..100),
        bins in 1usize..64,
    ) {
        let p = RiskProfile::new("x", values.clone());
        let f = p.feature_vector(bins);
        prop_assert_eq!(f.len(), bins);
        // log1p keeps everything finite and non-negative.
        prop_assert!(f.iter().all(|v| v.is_finite() && *v >= 0.0));
        // Mean/peak/active_fraction consistency.
        prop_assert!(p.mean() <= p.peak() + 1e-12);
        prop_assert!((0.0..=1.0).contains(&p.active_fraction()));
    }
}
