//! The glucose state machine: hypo / normal / hyper classification with the
//! paper's fasting-dependent hyperglycemia thresholds.

use std::fmt;

/// A patient's glycemic state.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum GlucoseState {
    /// Below the hypoglycemia threshold.
    Hypo,
    /// Within the normal band.
    Normal,
    /// Above the applicable hyperglycemia threshold.
    Hyper,
}

impl fmt::Display for GlucoseState {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GlucoseState::Hypo => write!(f, "hypo"),
            GlucoseState::Normal => write!(f, "normal"),
            GlucoseState::Hyper => write!(f, "hyper"),
        }
    }
}

/// The classification thresholds (mg/dL). Defaults follow the paper:
/// hypoglycemia < 70; hyperglycemia > 125 fasting, > 180 postprandial.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StateThresholds {
    /// Hypoglycemia cutoff.
    pub hypo: f64,
    /// Hyperglycemia cutoff while fasting.
    pub hyper_fasting: f64,
    /// Hyperglycemia cutoff within two hours of a meal.
    pub hyper_postprandial: f64,
}

impl Default for StateThresholds {
    fn default() -> Self {
        Self {
            hypo: 70.0,
            hyper_fasting: 125.0,
            hyper_postprandial: 180.0,
        }
    }
}

impl StateThresholds {
    /// The hyperglycemia cutoff that applies in the given fasting state.
    pub fn hyper(&self, fasting: bool) -> f64 {
        if fasting {
            self.hyper_fasting
        } else {
            self.hyper_postprandial
        }
    }

    /// Classifies a glucose value (mg/dL).
    ///
    /// # Examples
    ///
    /// ```
    /// use lgo_core::state::{GlucoseState, StateThresholds};
    ///
    /// let t = StateThresholds::default();
    /// assert_eq!(t.classify(60.0, true), GlucoseState::Hypo);
    /// assert_eq!(t.classify(150.0, true), GlucoseState::Hyper);
    /// assert_eq!(t.classify(150.0, false), GlucoseState::Normal);
    /// ```
    pub fn classify(&self, glucose: f64, fasting: bool) -> GlucoseState {
        if glucose < self.hypo {
            GlucoseState::Hypo
        } else if glucose > self.hyper(fasting) {
            GlucoseState::Hyper
        } else {
            GlucoseState::Normal
        }
    }

    /// Validates threshold ordering.
    ///
    /// # Panics
    ///
    /// Panics unless `0 < hypo < hyper_fasting <= hyper_postprandial`.
    pub fn validate(&self) {
        assert!(self.hypo > 0.0, "StateThresholds: hypo must be positive");
        assert!(
            self.hypo < self.hyper_fasting,
            "StateThresholds: hypo >= hyper_fasting"
        );
        assert!(
            self.hyper_fasting <= self.hyper_postprandial,
            "StateThresholds: fasting threshold above postprandial"
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classify_boundaries() {
        let t = StateThresholds::default();
        assert_eq!(t.classify(69.999, false), GlucoseState::Hypo);
        assert_eq!(t.classify(70.0, false), GlucoseState::Normal);
        assert_eq!(t.classify(125.0, true), GlucoseState::Normal);
        assert_eq!(t.classify(125.01, true), GlucoseState::Hyper);
        assert_eq!(t.classify(180.0, false), GlucoseState::Normal);
        assert_eq!(t.classify(180.01, false), GlucoseState::Hyper);
    }

    #[test]
    fn fasting_threshold_is_stricter() {
        let t = StateThresholds::default();
        assert!(t.hyper(true) < t.hyper(false));
        assert_eq!(t.classify(150.0, true), GlucoseState::Hyper);
        assert_eq!(t.classify(150.0, false), GlucoseState::Normal);
    }

    #[test]
    fn default_validates() {
        StateThresholds::default().validate();
    }

    #[test]
    #[should_panic(expected = "hypo >= hyper_fasting")]
    fn inverted_thresholds_rejected() {
        StateThresholds {
            hypo: 200.0,
            ..StateThresholds::default()
        }
        .validate();
    }

    #[test]
    fn display_names() {
        assert_eq!(GlucoseState::Hypo.to_string(), "hypo");
        assert_eq!(GlucoseState::Normal.to_string(), "normal");
        assert_eq!(GlucoseState::Hyper.to_string(), "hyper");
    }
}
