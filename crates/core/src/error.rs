//! The workspace-level error type for fallible pipeline runs.
//!
//! Every lower-level crate exposes its own error enum
//! ([`ScalerError`](lgo_series::ScalerError),
//! [`ClusterError`](lgo_cluster::ClusterError),
//! [`TrainError`](lgo_nn::TrainError),
//! [`ForecastError`](lgo_forecast::ForecastError),
//! [`DetectError`](lgo_detect::DetectError)); [`LgoError`] unifies them via
//! `From` conversions and adds the pipeline-level failure modes (degenerate
//! cohorts, empty rosters, exhausted detector fallback chains).

use std::error::Error;
use std::fmt;

use lgo_cluster::ClusterError;
use lgo_detect::DetectError;
use lgo_forecast::ForecastError;
use lgo_nn::TrainError;
use lgo_runtime::RuntimeError;
use lgo_series::ScalerError;

/// Unified error for the fallible (`try_`) pipeline surface.
#[derive(Debug, Clone, PartialEq)]
pub enum LgoError {
    /// Fewer than two usable patients survived simulation / profiling —
    /// clustering needs at least two risk profiles.
    TooFewPatients {
        /// How many usable patients remained.
        got: usize,
    },
    /// Fewer than two risk profiles were supplied to clustering.
    TooFewProfiles {
        /// How many profiles were supplied.
        got: usize,
    },
    /// No risk profiles at all were supplied.
    NoProfiles,
    /// A profiling stride of zero was configured.
    InvalidStride,
    /// A patient's series yields no complete attack window.
    NoWindows,
    /// A patient's series lacks a required channel.
    MissingChannel {
        /// The missing channel's name.
        name: String,
    },
    /// A training strategy produced an empty patient roster.
    EmptyRoster {
        /// The strategy's display name.
        strategy: &'static str,
        /// Which run (only Random Samples has more than one).
        run: usize,
    },
    /// The supervised kNN detector was requested without any malicious
    /// training windows.
    KnnNeedsMalicious,
    /// Every detector in the fallback chain failed to train.
    DetectorChainExhausted {
        /// The error from the last detector tried.
        last: DetectError,
    },
    /// Forecaster training failed.
    Forecast(ForecastError),
    /// Detector training failed.
    Detect(DetectError),
    /// Clustering failed.
    Cluster(ClusterError),
    /// Scaler fitting failed.
    Scaler(ScalerError),
    /// Neural-network training failed.
    Training(TrainError),
    /// A parallel runtime primitive failed (a worker task panicked).
    Runtime(RuntimeError),
}

impl fmt::Display for LgoError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LgoError::TooFewPatients { got } => {
                write!(f, "need at least two patients, got {got}")
            }
            LgoError::TooFewProfiles { got } => {
                write!(f, "need at least two profiles, got {got}")
            }
            LgoError::NoProfiles => write!(f, "no profiles"),
            LgoError::InvalidStride => write!(f, "stride must be positive"),
            LgoError::NoWindows => write!(f, "series too short for any window"),
            LgoError::MissingChannel { name } => write!(f, "series lacks {name} channel"),
            LgoError::EmptyRoster { strategy, run } => {
                write!(f, "empty roster for {strategy} (run {run})")
            }
            LgoError::KnnNeedsMalicious => write!(f, "kNN needs malicious training windows"),
            LgoError::DetectorChainExhausted { last } => {
                write!(f, "every detector in the fallback chain failed: {last}")
            }
            LgoError::Forecast(e) => write!(f, "forecast: {e}"),
            LgoError::Detect(e) => write!(f, "detect: {e}"),
            LgoError::Cluster(e) => write!(f, "cluster: {e}"),
            LgoError::Scaler(e) => write!(f, "scaler: {e}"),
            LgoError::Training(e) => write!(f, "training: {e}"),
            LgoError::Runtime(e) => write!(f, "runtime: {e}"),
        }
    }
}

impl Error for LgoError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            LgoError::Forecast(e) => Some(e),
            LgoError::Detect(e) | LgoError::DetectorChainExhausted { last: e } => Some(e),
            LgoError::Cluster(e) => Some(e),
            LgoError::Scaler(e) => Some(e),
            LgoError::Training(e) => Some(e),
            LgoError::Runtime(e) => Some(e),
            _ => None,
        }
    }
}

impl From<ForecastError> for LgoError {
    fn from(e: ForecastError) -> Self {
        LgoError::Forecast(e)
    }
}

impl From<DetectError> for LgoError {
    fn from(e: DetectError) -> Self {
        LgoError::Detect(e)
    }
}

impl From<ClusterError> for LgoError {
    fn from(e: ClusterError) -> Self {
        LgoError::Cluster(e)
    }
}

impl From<ScalerError> for LgoError {
    fn from(e: ScalerError) -> Self {
        LgoError::Scaler(e)
    }
}

impl From<TrainError> for LgoError {
    fn from(e: TrainError) -> Self {
        LgoError::Training(e)
    }
}

impl From<RuntimeError> for LgoError {
    fn from(e: RuntimeError) -> Self {
        LgoError::Runtime(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_strings_match_legacy_panic_messages() {
        // Thin panicking wrappers prefix these with their own context, so
        // the substrings the `should_panic` tests expect must survive here.
        assert_eq!(
            LgoError::TooFewPatients { got: 1 }.to_string(),
            "need at least two patients, got 1"
        );
        assert_eq!(
            LgoError::TooFewProfiles { got: 1 }.to_string(),
            "need at least two profiles, got 1"
        );
        assert!(LgoError::KnnNeedsMalicious
            .to_string()
            .contains("kNN needs malicious"));
        assert_eq!(LgoError::InvalidStride.to_string(), "stride must be positive");
    }

    #[test]
    fn from_conversions_wrap_sources() {
        let e: LgoError = ForecastError::NoSeries.into();
        assert!(matches!(e, LgoError::Forecast(_)));
        assert!(e.source().is_some());
        let e: LgoError = DetectError::NoTrainingWindows.into();
        assert_eq!(e.to_string(), "detect: no training windows");
        let e: LgoError = ClusterError::TooFewLeaves { got: 1 }.into();
        assert!(e.to_string().starts_with("cluster:"));
        let e: LgoError = ScalerError::EmptyFit.into();
        assert!(e.to_string().starts_with("scaler:"));
        let e: LgoError = TrainError::NoSamples.into();
        assert!(e.to_string().starts_with("training:"));
        let e: LgoError = RuntimeError::TaskPanicked {
            index: 3,
            message: "boom".into(),
        }
        .into();
        assert_eq!(e.to_string(), "runtime: parallel task 3 panicked: boom");
        assert!(e.source().is_some());
    }
}
