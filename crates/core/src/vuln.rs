//! Step 4: hierarchical clustering of risk profiles into vulnerability
//! clusters (the paper's Figure 3 dendrograms and Table II).

use lgo_cluster::{agglomerate_points, Dendrogram, Linkage};
use lgo_glucosim::PatientId;

use crate::error::LgoError;
use crate::profile::PatientAttackProfile;

/// Number of pooled bins used when embedding risk profiles for clustering.
pub const PROFILE_BINS: usize = 32;

/// Embeds each patient's step-1/2/3 record for clustering.
///
/// Two aligned per-bin channels are concatenated:
///
/// 1. the `log1p`-compressed risk profile (step 3), and
/// 2. the attack-outcome series (fraction of achieved misdiagnoses per bin).
///
/// Every dimension is then z-normalized **across patients**, so the two
/// channels contribute on equal footing regardless of their raw scales.
/// The outcome channel is what lets the clustering tell a *resilient* zero
/// (attack failed, deviation small) from an *already-hyperglycemic* zero
/// (identity transition, severity 0) — the two look identical in the pure
/// risk channel but are opposites in vulnerability.
pub fn embed_profiles(profiles: &[PatientAttackProfile], bins: usize) -> Vec<Vec<f64>> {
    assert!(!profiles.is_empty(), "embed_profiles: no profiles");
    let mut points: Vec<Vec<f64>> = profiles
        .iter()
        .map(|p| {
            let mut v = p.risk_profile.feature_vector(bins);
            let success = p.success_series();
            let n = success.len().max(1);
            for b in 0..bins {
                let start = b * n / bins;
                let end = ((b + 1) * n / bins).max(start + 1).min(n);
                let seg = &success[start.min(n - 1)..end];
                v.push(seg.iter().sum::<f64>() / seg.len() as f64);
            }
            v
        })
        .collect();
    // Z-normalize each dimension across patients; constant dimensions are
    // zeroed so they cannot contribute noise.
    let dims = points[0].len();
    for d in 0..dims {
        let n = points.len() as f64;
        let mean = points.iter().map(|p| p[d]).sum::<f64>() / n;
        let var = points.iter().map(|p| (p[d] - mean) * (p[d] - mean)).sum::<f64>() / n;
        let std = var.sqrt();
        for p in &mut points {
            p[d] = if std > 1e-12 { (p[d] - mean) / std } else { 0.0 };
        }
    }
    points
}

/// The outcome of clustering one cohort's risk profiles.
#[derive(Debug, Clone)]
pub struct VulnerabilityClusters {
    /// Patients in the cluster with the lower attack success — the ones the
    /// detectors should be trained on.
    pub less_vulnerable: Vec<PatientId>,
    /// The remaining patients.
    pub more_vulnerable: Vec<PatientId>,
    /// The dendrogram over the cohort (leaf order = input order).
    pub dendrogram: Dendrogram,
    /// Leaf labels in input order (patient display names).
    pub labels: Vec<String>,
}

impl VulnerabilityClusters {
    /// Whether a patient landed in the less-vulnerable cluster.
    pub fn is_less_vulnerable(&self, id: PatientId) -> bool {
        self.less_vulnerable.contains(&id)
    }
}

/// Clusters a cohort's risk profiles with hierarchical clustering and prunes
/// the dendrogram at the level that best separates vulnerability.
///
/// The paper prunes "at the desired level according to the distances between
/// clusters" and then labels the clusters by cross-checking against the
/// attack misclassification percentages. This function automates that
/// procedure: candidate cuts `k = 2..=4` are scored by how much lower the
/// mean attack success of the most-resilient cluster is than the rest's
/// (considering only minority clusters — the defense trains on a resilient
/// minority, never on "almost everyone"); the best-separating cut wins, with
/// smaller `k` breaking ties.
///
/// # Panics
///
/// Panics if `profiles` has fewer than two entries.
pub fn cluster_vulnerability(
    profiles: &[PatientAttackProfile],
    linkage: Linkage,
) -> VulnerabilityClusters {
    match try_cluster_vulnerability(profiles, linkage) {
        Ok(c) => c,
        // lint: allow(L1): documented panicking wrapper; try_cluster_vulnerability is the checked path
        Err(e) => panic!("cluster_vulnerability: {e}"),
    }
}

/// Fallible [`cluster_vulnerability`].
///
/// # Errors
///
/// Returns [`LgoError::TooFewProfiles`] when `profiles` has fewer than two
/// entries.
pub fn try_cluster_vulnerability(
    profiles: &[PatientAttackProfile],
    linkage: Linkage,
) -> Result<VulnerabilityClusters, LgoError> {
    if profiles.len() < 2 {
        return Err(LgoError::TooFewProfiles {
            got: profiles.len(),
        });
    }
    let points = embed_profiles(profiles, PROFILE_BINS);
    let dendrogram = agglomerate_points(&points, linkage);

    // A patient with no attackable (non-hyper-origin) windows offered the
    // attack no resistance evidence; count them as fully vulnerable rather
    // than resilient.
    let success_of = |p: &PatientAttackProfile| p.success_rate().unwrap_or(1.0);
    let n = profiles.len();
    let max_k = 4.min(n);
    let mut best: Option<(f64, usize, Vec<usize>, usize)> = None; // (gap, k, labels, cluster)
    for k in 2..=max_k {
        let labels = dendrogram.cut_k(k);
        for cluster in 0..k {
            let (mut in_sum, mut in_n, mut out_sum, mut out_n) = (0.0, 0usize, 0.0, 0usize);
            for (p, &l) in profiles.iter().zip(&labels) {
                if l == cluster {
                    in_sum += success_of(p);
                    in_n += 1;
                } else {
                    out_sum += success_of(p);
                    out_n += 1;
                }
            }
            if in_n == 0 || out_n == 0 || in_n * 2 > n {
                continue; // only minority clusters qualify as "less vulnerable"
            }
            // Size-weighted separation: a two-patient cluster with almost
            // the same per-patient gap as a singleton carries more evidence
            // of a genuine resilient subgroup, so weight by sqrt(|cluster|).
            let gap = (out_sum / out_n as f64 - in_sum / in_n as f64)
                * (in_n as f64).sqrt();
            if best.as_ref().is_none_or(|&(g, bk, _, _)| {
                gap > g + 1e-12 || (gap > g - 1e-12 && k < bk)
            }) {
                best = Some((gap, k, labels.clone(), cluster));
            }
        }
    }
    let (_, _, labels, less_cluster) = best.unwrap_or_else(|| {
        // Degenerate cohorts (e.g. two patients) fall back to the k=2 cut
        // with the lower-success side as less vulnerable.
        let labels = dendrogram.cut_k(2);
        (0.0, 2, labels, 0)
    });

    let mut less = Vec::new();
    let mut more = Vec::new();
    for (p, &l) in profiles.iter().zip(&labels) {
        if l == less_cluster {
            less.push(p.patient);
        } else {
            more.push(p.patient);
        }
    }
    // The fallback above may have mislabelled: ensure the "less" side really
    // has the lower mean success.
    let mean = |ids: &[PatientId]| -> f64 {
        let vals: Vec<f64> = profiles
            .iter()
            .filter(|p| ids.contains(&p.patient))
            .map(success_of)
            .collect();
        if vals.is_empty() {
            f64::INFINITY
        } else {
            vals.iter().sum::<f64>() / vals.len() as f64
        }
    };
    if mean(&less) > mean(&more) {
        std::mem::swap(&mut less, &mut more);
    }
    Ok(VulnerabilityClusters {
        less_vulnerable: less,
        more_vulnerable: more,
        dendrogram,
        labels: profiles.iter().map(|p| p.patient.to_string()).collect(),
    })
}

/// The cohort-level clustering result: one dendrogram per subset (the
/// paper's Figure 3 clusters Subsets A and B separately) and the combined
/// less/more-vulnerable membership (Table II).
#[derive(Debug, Clone)]
pub struct CohortClusters {
    /// Per-subset clustering, in input order of first appearance.
    pub per_subset: Vec<(lgo_glucosim::Subset, VulnerabilityClusters)>,
    /// Union of the per-subset less-vulnerable clusters.
    pub less_vulnerable: Vec<PatientId>,
    /// Union of the per-subset more-vulnerable clusters.
    pub more_vulnerable: Vec<PatientId>,
}

impl CohortClusters {
    /// Whether a patient landed in the less-vulnerable side.
    pub fn is_less_vulnerable(&self, id: PatientId) -> bool {
        self.less_vulnerable.contains(&id)
    }
}

/// Clusters a cohort the way the paper does: each subset's risk profiles
/// are clustered separately (Figure 3), and the per-subset less-vulnerable
/// clusters are unioned into the final membership (Table II).
///
/// Subsets with fewer than two profiled patients are placed wholesale into
/// the more-vulnerable side (no dendrogram can be built for them).
///
/// # Panics
///
/// Panics if `profiles` is empty.
pub fn cluster_cohort(
    profiles: &[PatientAttackProfile],
    linkage: Linkage,
) -> CohortClusters {
    match try_cluster_cohort(profiles, linkage) {
        Ok(c) => c,
        // lint: allow(L1): documented panicking wrapper; try_cluster_cohort is the checked path
        Err(e) => panic!("cluster_cohort: {e}"),
    }
}

/// Fallible [`cluster_cohort`].
///
/// # Errors
///
/// Returns [`LgoError::NoProfiles`] when `profiles` is empty.
pub fn try_cluster_cohort(
    profiles: &[PatientAttackProfile],
    linkage: Linkage,
) -> Result<CohortClusters, LgoError> {
    if profiles.is_empty() {
        return Err(LgoError::NoProfiles);
    }
    let mut subsets: Vec<lgo_glucosim::Subset> = Vec::new();
    for p in profiles {
        if !subsets.contains(&p.patient.subset) {
            subsets.push(p.patient.subset);
        }
    }
    let mut per_subset = Vec::new();
    let mut less = Vec::new();
    let mut more = Vec::new();
    for subset in subsets {
        let members: Vec<PatientAttackProfile> = profiles
            .iter()
            .filter(|p| p.patient.subset == subset)
            .cloned()
            .collect();
        if members.len() < 2 {
            more.extend(members.iter().map(|p| p.patient));
            continue;
        }
        let clusters = try_cluster_vulnerability(&members, linkage)?;
        less.extend(clusters.less_vulnerable.iter().copied());
        more.extend(clusters.more_vulnerable.iter().copied());
        per_subset.push((subset, clusters));
    }
    Ok(CohortClusters {
        per_subset,
        less_vulnerable: less,
        more_vulnerable: more,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::profile::PatientAttackProfile;
    use crate::risk::RiskProfile;
    use lgo_attack::cgm::{CampaignReport, OriginState, WindowOutcome};
    use lgo_attack::AttackResult;
    use lgo_glucosim::Subset;

    /// Builds a synthetic profile with a given constant risk level and
    /// attack success.
    fn synthetic(id: PatientId, risk: f64, successes: usize, failures: usize) -> PatientAttackProfile {
        let outcome = |achieved: bool, i: usize| WindowOutcome {
            index: i,
            fasting: true,
            benign_prediction: 100.0,
            origin: OriginState::Normal,
            result: AttackResult {
                best_input: vec![vec![100.0; 4]; 12],
                best_output: if achieved { 200.0 } else { 110.0 },
                achieved,
                queries: 10,
                steps: 1,
            },
        };
        let mut outcomes = Vec::new();
        for i in 0..successes {
            outcomes.push(outcome(true, i));
        }
        for i in 0..failures {
            outcomes.push(outcome(false, successes + i));
        }
        PatientAttackProfile {
            patient: id,
            risk_profile: RiskProfile::new(id.to_string(), vec![risk; 64]),
            campaign: CampaignReport { outcomes },
        }
    }

    #[test]
    fn separates_high_and_low_risk_groups() {
        let ids = PatientId::all();
        let mut profiles = Vec::new();
        // Patients 0..3 resilient (low risk, low success), rest vulnerable.
        for (i, id) in ids.iter().take(8).enumerate() {
            let p = if i < 3 {
                synthetic(*id, 10.0, 1, 9)
            } else {
                synthetic(*id, 1e6, 9, 1)
            };
            profiles.push(p);
        }
        let clusters = cluster_vulnerability(&profiles, Linkage::Average);
        assert_eq!(clusters.less_vulnerable.len(), 3);
        for id in ids.iter().take(3) {
            assert!(clusters.is_less_vulnerable(*id), "{id} misplaced");
        }
        assert_eq!(clusters.more_vulnerable.len(), 5);
        assert_eq!(clusters.labels.len(), 8);
        // Dendrogram covers all leaves.
        assert_eq!(clusters.dendrogram.n_leaves(), 8);
    }

    #[test]
    fn success_rate_breaks_label_assignment_ties() {
        // Two clusters with *identical* risk magnitude but different attack
        // success must still be labelled by success rate.
        let a = synthetic(PatientId::new(Subset::A, 0), 100.0, 0, 10);
        let b = synthetic(PatientId::new(Subset::A, 1), 100.0, 0, 10);
        let c = synthetic(PatientId::new(Subset::B, 0), 101.0, 10, 0);
        let d = synthetic(PatientId::new(Subset::B, 1), 101.0, 10, 0);
        let clusters = cluster_vulnerability(&[a, b, c, d], Linkage::Average);
        assert!(clusters.is_less_vulnerable(PatientId::new(Subset::A, 0)));
        assert!(!clusters.is_less_vulnerable(PatientId::new(Subset::B, 0)));
    }

    #[test]
    #[should_panic(expected = "at least two profiles")]
    fn single_profile_rejected() {
        let p = synthetic(PatientId::new(Subset::A, 0), 1.0, 1, 1);
        let _ = cluster_vulnerability(&[p], Linkage::Average);
    }

    #[test]
    fn cohort_clustering_is_per_subset() {
        // Subset A: one resilient + three vulnerable; Subset B likewise.
        let mut profiles = Vec::new();
        for subset in [Subset::A, Subset::B] {
            profiles.push(synthetic(PatientId::new(subset, 0), 10.0, 1, 9));
            for i in 1..4 {
                profiles.push(synthetic(PatientId::new(subset, i), 1e6, 9, 1));
            }
        }
        let cohort = cluster_cohort(&profiles, Linkage::Average);
        assert_eq!(cohort.per_subset.len(), 2);
        assert_eq!(cohort.less_vulnerable.len(), 2);
        assert!(cohort.is_less_vulnerable(PatientId::new(Subset::A, 0)));
        assert!(cohort.is_less_vulnerable(PatientId::new(Subset::B, 0)));
        assert_eq!(cohort.more_vulnerable.len(), 6);
    }

    #[test]
    fn lone_subset_member_defaults_to_more_vulnerable() {
        let mut profiles = vec![
            synthetic(PatientId::new(Subset::A, 0), 10.0, 1, 9),
            synthetic(PatientId::new(Subset::A, 1), 1e6, 9, 1),
        ];
        profiles.push(synthetic(PatientId::new(Subset::B, 0), 10.0, 1, 9));
        let cohort = cluster_cohort(&profiles, Linkage::Average);
        assert!(!cohort.is_less_vulnerable(PatientId::new(Subset::B, 0)));
        assert_eq!(cohort.per_subset.len(), 1);
    }
}
