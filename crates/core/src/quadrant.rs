//! The paper's Figure-6 taxonomy: every glucose sample falls into one of
//! four quadrants along two axes — benign vs. malicious (was the sample
//! attacker-manipulated?) and normal vs. abnormal (does its value lie in
//! the normal glucose band?).
//!
//! The quadrant structure explains the indiscriminate-training failure
//! mode: patients with many *benign abnormal* samples teach the detector
//! that abnormal values are ordinary, so *malicious abnormal* samples slip
//! through as false negatives.

use crate::state::{GlucoseState, StateThresholds};

/// One of the four sample quadrants.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Quadrant {
    /// Normal glucose, no attack.
    BenignNormal,
    /// Abnormal (hypo/hyper) glucose, no attack.
    BenignAbnormal,
    /// Attacker-manipulated sample placed in the normal band.
    MaliciousNormal,
    /// Attacker-manipulated sample placed in the abnormal band.
    MaliciousAbnormal,
}

/// Classifies one sample.
///
/// # Examples
///
/// ```
/// use lgo_core::quadrant::{classify, Quadrant};
/// use lgo_core::state::StateThresholds;
///
/// let t = StateThresholds::default();
/// assert_eq!(classify(100.0, true, false, &t), Quadrant::BenignNormal);
/// assert_eq!(classify(300.0, true, true, &t), Quadrant::MaliciousAbnormal);
/// ```
pub fn classify(
    glucose: f64,
    fasting: bool,
    malicious: bool,
    thresholds: &StateThresholds,
) -> Quadrant {
    let normal = thresholds.classify(glucose, fasting) == GlucoseState::Normal;
    match (malicious, normal) {
        (false, true) => Quadrant::BenignNormal,
        (false, false) => Quadrant::BenignAbnormal,
        (true, true) => Quadrant::MaliciousNormal,
        (true, false) => Quadrant::MaliciousAbnormal,
    }
}

/// Counts of samples per quadrant.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct QuadrantCounts {
    /// Benign + normal.
    pub benign_normal: usize,
    /// Benign + abnormal.
    pub benign_abnormal: usize,
    /// Malicious + normal.
    pub malicious_normal: usize,
    /// Malicious + abnormal.
    pub malicious_abnormal: usize,
}

impl QuadrantCounts {
    /// Tallies a stream of `(glucose, fasting, malicious)` samples.
    pub fn tally<I>(samples: I, thresholds: &StateThresholds) -> Self
    where
        I: IntoIterator<Item = (f64, bool, bool)>,
    {
        let mut c = Self::default();
        for (g, fasting, malicious) in samples {
            match classify(g, fasting, malicious, thresholds) {
                Quadrant::BenignNormal => c.benign_normal += 1,
                Quadrant::BenignAbnormal => c.benign_abnormal += 1,
                Quadrant::MaliciousNormal => c.malicious_normal += 1,
                Quadrant::MaliciousAbnormal => c.malicious_abnormal += 1,
            }
        }
        c
    }

    /// Total samples.
    pub fn total(&self) -> usize {
        self.benign_normal + self.benign_abnormal + self.malicious_normal + self.malicious_abnormal
    }

    /// The paper's Figure-4 statistic: benign normal : benign abnormal
    /// ratio (`None` when there are no benign abnormal samples).
    pub fn benign_normal_abnormal_ratio(&self) -> Option<f64> {
        if self.benign_abnormal == 0 {
            None
        } else {
            Some(self.benign_normal as f64 / self.benign_abnormal as f64)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_four_quadrants_reachable() {
        let t = StateThresholds::default();
        assert_eq!(classify(100.0, false, false, &t), Quadrant::BenignNormal);
        assert_eq!(classify(60.0, false, false, &t), Quadrant::BenignAbnormal);
        assert_eq!(classify(100.0, false, true, &t), Quadrant::MaliciousNormal);
        assert_eq!(classify(300.0, false, true, &t), Quadrant::MaliciousAbnormal);
    }

    #[test]
    fn fasting_changes_quadrant_of_borderline_values() {
        let t = StateThresholds::default();
        // 150 mg/dL: abnormal while fasting, normal postprandially.
        assert_eq!(classify(150.0, true, false, &t), Quadrant::BenignAbnormal);
        assert_eq!(classify(150.0, false, false, &t), Quadrant::BenignNormal);
    }

    #[test]
    fn tally_and_ratio() {
        let t = StateThresholds::default();
        let samples = vec![
            (100.0, false, false),
            (110.0, false, false),
            (60.0, false, false),
            (300.0, false, true),
            (100.0, false, true),
        ];
        let c = QuadrantCounts::tally(samples, &t);
        assert_eq!(c.benign_normal, 2);
        assert_eq!(c.benign_abnormal, 1);
        assert_eq!(c.malicious_abnormal, 1);
        assert_eq!(c.malicious_normal, 1);
        assert_eq!(c.total(), 5);
        assert_eq!(c.benign_normal_abnormal_ratio(), Some(2.0));
    }

    #[test]
    fn ratio_none_when_no_abnormal() {
        let t = StateThresholds::default();
        let c = QuadrantCounts::tally(vec![(100.0, false, false)], &t);
        assert_eq!(c.benign_normal_abnormal_ratio(), None);
    }
}
