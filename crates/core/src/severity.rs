//! Severity coefficients for misprediction state transitions — the paper's
//! Table I, plus the alternative coefficient families used by the
//! sensitivity ablation the paper lists as future work (§V, limitation 4).

use crate::state::GlucoseState;

/// The severity/cost coefficient table `S(benign_state, adversarial_state)`.
///
/// The paper uses exponential coefficients because state-transition harm in
/// a BGMS is nonlinear in outcome severity: misdiagnosing a hypoglycemic
/// patient as hyperglycemic triggers a large insulin dose on an already-low
/// patient — the most lethal case — and gets the largest coefficient (64).
/// Identity transitions (no state change) carry zero severity.
#[derive(Debug, Clone, PartialEq)]
pub struct SeverityTable {
    // Indexed [benign][adversarial] with Hypo=0, Normal=1, Hyper=2.
    coefficients: [[f64; 3]; 3],
    name: &'static str,
}

fn idx(s: GlucoseState) -> usize {
    match s {
        GlucoseState::Hypo => 0,
        GlucoseState::Normal => 1,
        GlucoseState::Hyper => 2,
    }
}

impl SeverityTable {
    /// The paper's Table I (exponential coefficients):
    ///
    /// | benign → adversarial | S  |
    /// |----------------------|----|
    /// | hypo → hyper         | 64 |
    /// | normal → hyper       | 32 |
    /// | hypo → normal        | 16 |
    /// | hyper → hypo         | 8  |
    /// | hyper → normal       | 4  |
    /// | normal → hypo        | 2  |
    pub fn paper_default() -> Self {
        let mut c = [[0.0; 3]; 3];
        c[idx(GlucoseState::Hypo)][idx(GlucoseState::Hyper)] = 64.0;
        c[idx(GlucoseState::Normal)][idx(GlucoseState::Hyper)] = 32.0;
        c[idx(GlucoseState::Hypo)][idx(GlucoseState::Normal)] = 16.0;
        c[idx(GlucoseState::Hyper)][idx(GlucoseState::Hypo)] = 8.0;
        c[idx(GlucoseState::Hyper)][idx(GlucoseState::Normal)] = 4.0;
        c[idx(GlucoseState::Normal)][idx(GlucoseState::Hypo)] = 2.0;
        Self {
            coefficients: c,
            name: "exponential (paper Table I)",
        }
    }

    /// Linear alternative (6, 5, 4, 3, 2, 1 in the paper's severity order) —
    /// used by the coefficient-sensitivity ablation.
    pub fn linear() -> Self {
        let mut c = [[0.0; 3]; 3];
        c[idx(GlucoseState::Hypo)][idx(GlucoseState::Hyper)] = 6.0;
        c[idx(GlucoseState::Normal)][idx(GlucoseState::Hyper)] = 5.0;
        c[idx(GlucoseState::Hypo)][idx(GlucoseState::Normal)] = 4.0;
        c[idx(GlucoseState::Hyper)][idx(GlucoseState::Hypo)] = 3.0;
        c[idx(GlucoseState::Hyper)][idx(GlucoseState::Normal)] = 2.0;
        c[idx(GlucoseState::Normal)][idx(GlucoseState::Hypo)] = 1.0;
        Self {
            coefficients: c,
            name: "linear",
        }
    }

    /// Uniform alternative: every *transition* costs 1 (identity still 0) —
    /// degenerates the risk formula to pure squared deviation on
    /// state-changing mispredictions.
    pub fn uniform() -> Self {
        let mut c = [[1.0; 3]; 3];
        for (i, row) in c.iter_mut().enumerate() {
            row[i] = 0.0;
        }
        Self {
            coefficients: c,
            name: "uniform",
        }
    }

    /// A custom table.
    ///
    /// # Panics
    ///
    /// Panics if any coefficient is negative or non-finite.
    pub fn custom(coefficients: [[f64; 3]; 3]) -> Self {
        for row in &coefficients {
            for &v in row {
                assert!(v >= 0.0 && v.is_finite(), "SeverityTable: bad coefficient {v}");
            }
        }
        Self {
            coefficients,
            name: "custom",
        }
    }

    /// A short human-readable name of the coefficient family.
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// The coefficient for a benign→adversarial state transition.
    ///
    /// # Examples
    ///
    /// ```
    /// use lgo_core::severity::SeverityTable;
    /// use lgo_core::state::GlucoseState;
    ///
    /// let t = SeverityTable::paper_default();
    /// assert_eq!(t.coefficient(GlucoseState::Normal, GlucoseState::Hyper), 32.0);
    /// ```
    pub fn coefficient(&self, benign: GlucoseState, adversarial: GlucoseState) -> f64 {
        self.coefficients[idx(benign)][idx(adversarial)]
    }

    /// All transitions ordered by descending coefficient, for reporting
    /// (the rows of Table I).
    pub fn ranked_transitions(&self) -> Vec<(GlucoseState, GlucoseState, f64)> {
        use GlucoseState::*;
        let mut rows: Vec<(GlucoseState, GlucoseState, f64)> = [Hypo, Normal, Hyper]
            .into_iter()
            .flat_map(|b| {
                [Hypo, Normal, Hyper]
                    .into_iter()
                    .filter(move |&a| a != b)
                    .map(move |a| (b, a, self.coefficient(b, a)))
            })
            .collect();
        // total_cmp keeps the ranking deterministic even if a coefficient is
        // NaN (it sorts below every real in descending order) instead of
        // panicking mid-report.
        rows.sort_by(|x, y| y.2.total_cmp(&x.2));
        rows
    }
}

impl Default for SeverityTable {
    fn default() -> Self {
        Self::paper_default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use GlucoseState::*;

    #[test]
    fn paper_table_matches_table_one() {
        let t = SeverityTable::paper_default();
        assert_eq!(t.coefficient(Hypo, Hyper), 64.0);
        assert_eq!(t.coefficient(Normal, Hyper), 32.0);
        assert_eq!(t.coefficient(Hypo, Normal), 16.0);
        assert_eq!(t.coefficient(Hyper, Hypo), 8.0);
        assert_eq!(t.coefficient(Hyper, Normal), 4.0);
        assert_eq!(t.coefficient(Normal, Hypo), 2.0);
    }

    #[test]
    fn identity_transitions_are_free() {
        for t in [
            SeverityTable::paper_default(),
            SeverityTable::linear(),
            SeverityTable::uniform(),
        ] {
            for s in [Hypo, Normal, Hyper] {
                assert_eq!(t.coefficient(s, s), 0.0, "{}", t.name());
            }
        }
    }

    #[test]
    fn exponential_severity_ordering() {
        // The worst transition (hypo->hyper) dominates, and each step in the
        // paper's ranking doubles.
        let t = SeverityTable::paper_default();
        let ranked = t.ranked_transitions();
        assert_eq!(ranked[0], (Hypo, Hyper, 64.0));
        assert_eq!(ranked[5], (Normal, Hypo, 2.0));
        for w in ranked.windows(2) {
            assert_eq!(w[0].2, w[1].2 * 2.0);
        }
    }

    #[test]
    fn linear_and_uniform_families() {
        assert_eq!(SeverityTable::linear().coefficient(Hypo, Hyper), 6.0);
        assert_eq!(SeverityTable::uniform().coefficient(Hypo, Hyper), 1.0);
        assert_eq!(SeverityTable::uniform().coefficient(Normal, Hypo), 1.0);
    }

    #[test]
    fn custom_table_round_trips() {
        let mut c = [[0.0; 3]; 3];
        c[0][2] = 5.0;
        let t = SeverityTable::custom(c);
        assert_eq!(t.coefficient(Hypo, Hyper), 5.0);
        assert_eq!(t.name(), "custom");
    }

    #[test]
    #[should_panic(expected = "bad coefficient")]
    fn negative_coefficients_rejected() {
        let mut c = [[0.0; 3]; 3];
        c[1][1] = -1.0;
        let _ = SeverityTable::custom(c);
    }
}
