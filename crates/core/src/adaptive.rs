//! The paper's stated future work (§V and Appendix D): an **adaptive risk
//! profiler** that addresses concept drift by regularly reassessing patient
//! risk profiles as new data arrives — patients who become more resilient
//! join the retraining roster, patients who become more vulnerable drop
//! out.
//!
//! [`AdaptiveProfiler`] implements that iterative process on top of the
//! static steps 1–4: each call to [`AdaptiveProfiler::reassess`] profiles
//! the cohort on its *latest* data and re-derives the vulnerability
//! clusters; the epoch history exposes membership churn so a deployment
//! can decide when retraining the detectors is worthwhile.

use lgo_cluster::Linkage;
use lgo_forecast::GlucoseForecaster;
use lgo_glucosim::PatientId;
use lgo_series::MultiSeries;

use crate::profile::{profile_patient, PatientAttackProfile, ProfilerConfig};
use crate::vuln::{cluster_cohort, CohortClusters};

/// One reassessment epoch: the profiles computed on that epoch's data and
/// the clusters derived from them.
#[derive(Debug, Clone)]
pub struct EpochRecord {
    /// Monotone epoch counter (0 for the first reassessment).
    pub epoch: usize,
    /// Per-patient campaign + risk profile on this epoch's data.
    pub profiles: Vec<PatientAttackProfile>,
    /// The vulnerability clusters of this epoch.
    pub clusters: CohortClusters,
}

/// A membership transition observed between two consecutive epochs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MembershipChange {
    /// Who moved.
    pub patient: PatientId,
    /// The epoch at which the new membership first held.
    pub epoch: usize,
    /// `true` when the patient *joined* the less-vulnerable cluster
    /// (recovered resilience), `false` when they left it.
    pub joined_less_vulnerable: bool,
}

/// Iterative re-profiling across data epochs.
///
/// # Examples
///
/// See `examples/adaptive_defense.rs` and the `exp_adaptive` harness
/// binary for end-to-end usage on drifting simulated patients.
#[derive(Debug, Clone)]
pub struct AdaptiveProfiler {
    config: ProfilerConfig,
    linkage: Linkage,
    history: Vec<EpochRecord>,
}

impl AdaptiveProfiler {
    /// Creates a profiler with the attack/risk settings used at every
    /// reassessment.
    pub fn new(config: ProfilerConfig, linkage: Linkage) -> Self {
        Self {
            config,
            linkage,
            history: Vec::new(),
        }
    }

    /// Profiles every patient on their latest data and re-derives the
    /// clusters, appending (and returning) the new epoch record.
    ///
    /// `cohort` pairs each patient's deployed forecaster with the data
    /// window to assess on (typically the most recent days).
    ///
    /// # Panics
    ///
    /// Panics if `cohort` has fewer than two patients or any series is too
    /// short for a full attack window.
    pub fn reassess(
        &mut self,
        cohort: &[(PatientId, &GlucoseForecaster, &MultiSeries)],
    ) -> &EpochRecord {
        let profiles: Vec<PatientAttackProfile> = cohort
            .iter()
            .map(|(id, forecaster, series)| profile_patient(forecaster, *id, series, &self.config))
            .collect();
        self.reassess_profiles(profiles)
    }

    /// [`reassess`](Self::reassess) for callers that computed the attack
    /// profiles themselves — e.g. with a pluggable attacker from the attack
    /// zoo (`lgo_zoo::try_profile_patient_with`) instead of this profiler's
    /// built-in URET campaign. Re-derives the clusters and appends (and
    /// returns) the new epoch record.
    ///
    /// # Panics
    ///
    /// Panics if `profiles` has fewer than two patients.
    pub fn reassess_profiles(&mut self, profiles: Vec<PatientAttackProfile>) -> &EpochRecord {
        assert!(
            profiles.len() >= 2,
            "reassess: need at least two patients, got {}",
            profiles.len()
        );
        let clusters = cluster_cohort(&profiles, self.linkage);
        self.history.push(EpochRecord {
            epoch: self.history.len(),
            profiles,
            clusters,
        });
        self.history.last().expect("just pushed") // lint: allow(L1): an EpochRecord was pushed on the line above
    }

    /// The most recent epoch, if any reassessment has run.
    pub fn current(&self) -> Option<&EpochRecord> {
        self.history.last()
    }

    /// All epochs in order.
    pub fn history(&self) -> &[EpochRecord] {
        &self.history
    }

    /// Every membership transition between consecutive epochs, in epoch
    /// order — the churn signal a deployment watches to schedule detector
    /// retraining.
    pub fn membership_changes(&self) -> Vec<MembershipChange> {
        let mut changes = Vec::new();
        for pair in self.history.windows(2) {
            let (prev, next) = (&pair[0], &pair[1]);
            for p in &next.profiles {
                let was = prev.clusters.is_less_vulnerable(p.patient);
                let is = next.clusters.is_less_vulnerable(p.patient);
                if was != is {
                    changes.push(MembershipChange {
                        patient: p.patient,
                        epoch: next.epoch,
                        joined_less_vulnerable: is,
                    });
                }
            }
        }
        changes
    }

    /// Fraction of patients whose membership never changed across the
    /// recorded epochs (1.0 = perfectly stable profiling). Returns `None`
    /// with fewer than two epochs.
    pub fn stability(&self) -> Option<f64> {
        if self.history.len() < 2 {
            return None;
        }
        let patients: Vec<PatientId> = self.history[0]
            .profiles
            .iter()
            .map(|p| p.patient)
            .collect();
        let changed: std::collections::BTreeSet<PatientId> = self
            .membership_changes()
            .into_iter()
            .map(|c| c.patient)
            .collect();
        Some(1.0 - changed.len() as f64 / patients.len().max(1) as f64)
    }

    /// Whether retraining is advisable at the latest epoch: true when any
    /// membership changed relative to the previous epoch.
    pub fn retraining_due(&self) -> bool {
        let n = self.history.len();
        if n < 2 {
            return false;
        }
        self.membership_changes().iter().any(|c| c.epoch == n - 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lgo_forecast::ForecastConfig;
    use lgo_glucosim::{profile, Simulator, Subset};

    fn quick_profiler() -> AdaptiveProfiler {
        AdaptiveProfiler::new(
            ProfilerConfig {
                stride: 48,
                explorer_steps: 3,
                ..ProfilerConfig::default()
            },
            Linkage::Average,
        )
    }

    fn forecaster_for(id: PatientId) -> (GlucoseForecaster, MultiSeries) {
        let sim = Simulator::new(profile(id));
        let train = sim.run_days(2);
        let fc = ForecastConfig {
            hidden: 6,
            epochs: 1,
            ..ForecastConfig::default()
        };
        (GlucoseForecaster::train_personalized(&train, &fc), train)
    }

    #[test]
    fn reassess_appends_epochs_and_tracks_stability() {
        let ids = [
            PatientId::new(Subset::A, 2),
            PatientId::new(Subset::A, 5),
            PatientId::new(Subset::B, 2),
        ];
        let models: Vec<(GlucoseForecaster, MultiSeries)> =
            ids.iter().map(|&id| forecaster_for(id)).collect();
        let mut profiler = quick_profiler();
        assert!(profiler.current().is_none());
        assert!(!profiler.retraining_due());
        assert_eq!(profiler.stability(), None);

        for _ in 0..2 {
            let cohort: Vec<(PatientId, &GlucoseForecaster, &MultiSeries)> = ids
                .iter()
                .zip(&models)
                .map(|(&id, (f, s))| (id, f, s))
                .collect();
            let record = profiler.reassess(&cohort);
            assert_eq!(record.profiles.len(), 3);
        }
        assert_eq!(profiler.history().len(), 2);
        assert_eq!(profiler.current().unwrap().epoch, 1);
        // Identical data both epochs -> identical clusters -> no churn.
        assert_eq!(profiler.membership_changes(), vec![]);
        assert_eq!(profiler.stability(), Some(1.0));
        assert!(!profiler.retraining_due());
    }

    #[test]
    #[should_panic(expected = "at least two patients")]
    fn reassess_rejects_tiny_cohorts() {
        let id = PatientId::new(Subset::A, 0);
        let (f, s) = forecaster_for(id);
        let mut profiler = quick_profiler();
        let _ = profiler.reassess(&[(id, &f, &s)]);
    }
}
