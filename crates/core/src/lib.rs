//! # lgo-core
//!
//! The paper's contribution: a **risk profiling framework** that makes
//! static anomaly detectors adaptive — at zero inference-time cost — by
//! *selectively training them on the victims most resilient to the attack*.
//!
//! The five steps (paper Figure 1), each with its own module:
//!
//! 1. **Attack simulation** ([`profile`]) — run the URET-style evasion
//!    attack against the deployed glucose forecaster for every victim.
//! 2. **Risk quantification** ([`risk`]) — per-timestamp instantaneous risk
//!    `R_t = S · Z_t` with `Z_t = (y_t − f(x_t))²` and `S` a severity
//!    coefficient from the state-transition table ([`severity`], Table I).
//! 3. **Risk profile construction** ([`risk::RiskProfile`]) — the time
//!    series of `R_t` per victim.
//! 4. **Clustering** ([`vuln`]) — hierarchical clustering of risk profiles;
//!    the dendrogram is cut into *less vulnerable* and *more vulnerable*
//!    clusters (Table II / Figure 3).
//! 5. **Selective training** ([`selective`]) — train the anomaly detectors
//!    only on the less-vulnerable victims and compare against the
//!    indiscriminate and random baselines (Figures 7, 8, 11).
//!
//! [`pipeline`] wires all five steps into one reproducible run;
//! [`quadrant`] implements the Figure-6 sample taxonomy; [`state`] holds
//! the glucose state machine the severity table is indexed by.
//!
//! # Examples
//!
//! ```
//! use lgo_core::severity::SeverityTable;
//! use lgo_core::state::GlucoseState;
//!
//! let table = SeverityTable::paper_default();
//! assert_eq!(table.coefficient(GlucoseState::Hypo, GlucoseState::Hyper), 64.0);
//! assert_eq!(table.coefficient(GlucoseState::Normal, GlucoseState::Normal), 0.0);
//! ```

/// Periodic cohort reassessment: re-profiling and re-clustering over epochs.
pub mod adaptive;
/// Pluggable defense strategies (LGO selective, ROAST outlier exposure,
/// iterative adversarial retraining) behind the [`Defense`](defense::Defense)
/// trait.
pub mod defense;
/// The crate-wide [`LgoError`](error::LgoError) type and conversions.
pub mod error;
/// Canonical full-precision JSON export (determinism byte-comparisons).
pub mod export;
/// The end-to-end five-step defense pipeline.
pub mod pipeline;
/// Per-patient risk profiling via greedy evasion attacks.
pub mod profile;
/// Figure-6 quadrant analysis (benign/malicious × normal/abnormal).
pub mod quadrant;
/// Risk quantification `Z_t` (Equation 1).
pub mod risk;
/// Selective training strategies and detector evaluation (Table II).
pub mod selective;
/// The severity coefficient table (Table I).
pub mod severity;
/// Glucose state discretization (hypo/normal/hyper).
pub mod state;
/// Vulnerability clustering of risk profiles (dendrogram cut).
pub mod vuln;
