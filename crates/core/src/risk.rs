//! Steps 2 and 3: risk quantification and risk-profile construction.
//!
//! The instantaneous risk of a manipulation at time `t` is
//! `R_t = S · Z_t` (paper Equation 1) with `Z_t = (y_t − f(x_t))²`
//! (Equation 2): `y_t` is the benign prediction, `f(x_t)` the prediction
//! under attack, and `S` the severity coefficient of the induced state
//! transition. Squaring weighs large prediction deviations more — large
//! glucose errors are disproportionately dangerous.

use crate::severity::SeverityTable;
use crate::state::StateThresholds;

/// Computes `Z_t = (y_t − f(x_t))²` (paper Equation 2).
pub fn squared_deviation(benign_prediction: f64, adversarial_prediction: f64) -> f64 {
    let d = benign_prediction - adversarial_prediction;
    d * d
}

/// Computes the instantaneous risk `R_t = S · Z_t` (paper Equation 1).
///
/// The severity coefficient is looked up from the state transition the
/// manipulation induces (benign prediction state → adversarial prediction
/// state under the same fasting context). Identity transitions yield zero
/// risk regardless of deviation magnitude.
///
/// # Examples
///
/// ```
/// use lgo_core::risk::instantaneous_risk;
/// use lgo_core::severity::SeverityTable;
/// use lgo_core::state::StateThresholds;
///
/// let table = SeverityTable::paper_default();
/// let thresholds = StateThresholds::default();
/// // Normal (90) driven to hyper (210) while fasting: S = 32, Z = 120².
/// let r = instantaneous_risk(90.0, 210.0, true, &table, &thresholds);
/// assert_eq!(r, 32.0 * 120.0 * 120.0);
/// ```
pub fn instantaneous_risk(
    benign_prediction: f64,
    adversarial_prediction: f64,
    fasting: bool,
    severity: &SeverityTable,
    thresholds: &StateThresholds,
) -> f64 {
    let b = thresholds.classify(benign_prediction, fasting);
    let a = thresholds.classify(adversarial_prediction, fasting);
    severity.coefficient(b, a) * squared_deviation(benign_prediction, adversarial_prediction)
}

/// A victim's time-series risk profile (step 3): the sequence of
/// instantaneous risks over the attacked windows, in time order.
#[derive(Debug, Clone, PartialEq)]
pub struct RiskProfile {
    /// Victim identifier (e.g. `"A_5"`).
    pub patient: String,
    /// Instantaneous risk values in time order.
    pub values: Vec<f64>,
}

impl RiskProfile {
    /// Creates a profile.
    ///
    /// # Panics
    ///
    /// Panics if `values` is empty or contains negative/non-finite entries.
    pub fn new(patient: impl Into<String>, values: Vec<f64>) -> Self {
        assert!(!values.is_empty(), "RiskProfile: empty profile");
        assert!(
            values.iter().all(|v| v.is_finite() && *v >= 0.0),
            "RiskProfile: risks must be finite and non-negative"
        );
        Self {
            patient: patient.into(),
            values,
        }
    }

    /// Mean instantaneous risk.
    pub fn mean(&self) -> f64 {
        self.values.iter().sum::<f64>() / self.values.len() as f64
    }

    /// Peak instantaneous risk.
    pub fn peak(&self) -> f64 {
        self.values.iter().cloned().fold(0.0, f64::max)
    }

    /// Fraction of timestamps with nonzero risk (how often the attack
    /// induced a harmful transition at all).
    pub fn active_fraction(&self) -> f64 {
        self.values.iter().filter(|&&v| v > 0.0).count() as f64 / self.values.len() as f64
    }

    /// A fixed-length feature vector for clustering: the profile is
    /// `log1p`-compressed (risks span orders of magnitude because of the
    /// squared deviation) and mean-pooled into `bins` equal segments, so
    /// patients with differently sized test periods remain comparable.
    ///
    /// # Panics
    ///
    /// Panics if `bins == 0`.
    pub fn feature_vector(&self, bins: usize) -> Vec<f64> {
        assert!(bins > 0, "feature_vector: bins must be positive");
        let n = self.values.len();
        (0..bins)
            .map(|b| {
                let start = b * n / bins;
                let end = ((b + 1) * n / bins).max(start + 1).min(n);
                let seg = &self.values[start.min(n - 1)..end];
                seg.iter().map(|&v| v.ln_1p()).sum::<f64>() / seg.len() as f64
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn table() -> SeverityTable {
        SeverityTable::paper_default()
    }

    fn th() -> StateThresholds {
        StateThresholds::default()
    }

    #[test]
    fn squared_deviation_is_symmetric_and_quadratic() {
        assert_eq!(squared_deviation(100.0, 110.0), 100.0);
        assert_eq!(squared_deviation(110.0, 100.0), 100.0);
        assert_eq!(squared_deviation(100.0, 120.0), 400.0);
    }

    #[test]
    fn risk_weighs_transition_severity() {
        // Same deviation magnitude, different origins.
        let hypo_to_hyper = instantaneous_risk(60.0, 200.0, true, &table(), &th());
        let normal_to_hyper = instantaneous_risk(90.0, 230.0, true, &table(), &th());
        assert_eq!(hypo_to_hyper, 64.0 * 140.0 * 140.0);
        assert_eq!(normal_to_hyper, 32.0 * 140.0 * 140.0);
        assert!(hypo_to_hyper > normal_to_hyper);
    }

    #[test]
    fn no_state_change_means_no_risk() {
        // 100 -> 120 stays normal (fasting threshold 125).
        assert_eq!(instantaneous_risk(100.0, 120.0, true, &table(), &th()), 0.0);
        // Both hyper.
        assert_eq!(instantaneous_risk(200.0, 300.0, true, &table(), &th()), 0.0);
    }

    #[test]
    fn fasting_context_changes_transition() {
        // 90 -> 150: hyper while fasting (125), normal postprandially (180).
        assert!(instantaneous_risk(90.0, 150.0, true, &table(), &th()) > 0.0);
        assert_eq!(instantaneous_risk(90.0, 150.0, false, &table(), &th()), 0.0);
    }

    #[test]
    fn risk_grows_with_deviation_within_transition() {
        let small = instantaneous_risk(90.0, 130.0, true, &table(), &th());
        let large = instantaneous_risk(90.0, 400.0, true, &table(), &th());
        assert!(large > small);
    }

    #[test]
    fn profile_statistics() {
        let p = RiskProfile::new("A_0", vec![0.0, 4.0, 0.0, 16.0]);
        assert_eq!(p.mean(), 5.0);
        assert_eq!(p.peak(), 16.0);
        assert_eq!(p.active_fraction(), 0.5);
    }

    #[test]
    fn feature_vector_bins_and_compresses() {
        let p = RiskProfile::new("x", vec![0.0, 0.0, 1e12, 0.0]);
        let f = p.feature_vector(2);
        assert_eq!(f.len(), 2);
        assert_eq!(f[0], 0.0);
        // log1p compression keeps the huge value manageable:
        // mean(ln(1+1e12), ln(1)) ≈ 27.63 / 2.
        assert!((f[1] - 1e12_f64.ln_1p() / 2.0).abs() < 1e-9);
        // More bins than values still works.
        let p2 = RiskProfile::new("y", vec![1.0, 2.0]);
        assert_eq!(p2.feature_vector(4).len(), 4);
    }

    #[test]
    #[should_panic(expected = "empty profile")]
    fn empty_profile_rejected() {
        let _ = RiskProfile::new("x", vec![]);
    }

    #[test]
    #[should_panic(expected = "finite and non-negative")]
    fn negative_risk_rejected() {
        let _ = RiskProfile::new("x", vec![-1.0]);
    }
}
