//! Step 5: selective training strategies and their evaluation.
//!
//! The framework's recommendation is to train the static detectors only on
//! the **less vulnerable** patients identified in step 4. The paper
//! evaluates four strategies: *Less Vulnerable*, *More Vulnerable*, *Random
//! Samples* (3 random patients × 10 runs, averaged) and *All Patients*
//! (indiscriminate training); the last two are the baselines.

use lgo_detect::{
    summarize_all_mode, AnomalyDetector, CgmSummaryDetector, KnnConfig, KnnDetector, MadGan,
    MadGanConfig, OcSvmConfig, OneClassSvm, SummaryMode, Window,
};
use lgo_eval::ConfusionMatrix;
use lgo_glucosim::PatientId;
use lgo_series::split::sample_indices;
use lgo_series::stats::BoxStats;
use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::error::LgoError;

/// Which detector to train.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum DetectorKind {
    /// Supervised k-nearest-neighbour classifier.
    Knn,
    /// ν-one-class SVM.
    OcSvm,
    /// MAD-GAN.
    MadGan,
}

impl DetectorKind {
    /// All three detectors in the paper's order.
    pub fn all() -> [DetectorKind; 3] {
        [DetectorKind::Knn, DetectorKind::OcSvm, DetectorKind::MadGan]
    }

    /// Display name.
    pub fn name(&self) -> &'static str {
        match self {
            DetectorKind::Knn => "kNN",
            DetectorKind::OcSvm => "OneClassSVM",
            DetectorKind::MadGan => "MAD-GAN",
        }
    }

    /// The graceful-degradation fallback chain MAD-GAN → OC-SVM → kNN,
    /// starting at `self`. When a detector cannot be trained (e.g. its
    /// training windows are too degraded), the next, less data-hungry
    /// detector in the chain is tried instead.
    pub fn fallback_chain(&self) -> &'static [DetectorKind] {
        match self {
            DetectorKind::MadGan => {
                &[DetectorKind::MadGan, DetectorKind::OcSvm, DetectorKind::Knn]
            }
            DetectorKind::OcSvm => &[DetectorKind::OcSvm, DetectorKind::Knn],
            DetectorKind::Knn => &[DetectorKind::Knn],
        }
    }
}

/// Hyper-parameters for all three detectors.
#[derive(Debug, Clone, Default)]
pub struct DetectorConfigs {
    /// kNN parameters (paper Appendix B).
    pub knn: KnnConfig,
    /// One-class SVM parameters (paper Appendix B).
    pub ocsvm: OcSvmConfig,
    /// MAD-GAN parameters (paper Appendix B).
    pub madgan: MadGanConfig,
}

/// A training-set selection strategy (paper §IV, step 5).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TrainingStrategy {
    /// Train only on the less-vulnerable cluster (the framework's
    /// recommendation).
    LessVulnerable,
    /// Train only on the more-vulnerable cluster (adversarial control).
    MoreVulnerable,
    /// Train on `k` random patients, repeated `runs` times and averaged
    /// (paper: k = 3, runs = 10).
    RandomSamples {
        /// Patients per run.
        k: usize,
        /// Number of runs averaged.
        runs: usize,
        /// RNG seed for patient draws.
        seed: u64,
    },
    /// Indiscriminate training on the whole cohort.
    AllPatients,
}

impl TrainingStrategy {
    /// The paper's four strategies with its Random-Samples parameters.
    pub fn paper_set() -> [TrainingStrategy; 4] {
        [
            TrainingStrategy::LessVulnerable,
            TrainingStrategy::MoreVulnerable,
            TrainingStrategy::RandomSamples {
                k: 3,
                runs: 10,
                seed: 0xABCD,
            },
            TrainingStrategy::AllPatients,
        ]
    }

    /// Display name matching the paper's figures.
    pub fn name(&self) -> &'static str {
        match self {
            TrainingStrategy::LessVulnerable => "Less Vulnerable",
            TrainingStrategy::MoreVulnerable => "More Vulnerable",
            TrainingStrategy::RandomSamples { .. } => "Random Samples",
            TrainingStrategy::AllPatients => "All Patients",
        }
    }
}

/// One patient's detector-facing data: benign and malicious windows for
/// training and testing (malicious windows come from attack campaigns).
#[derive(Debug, Clone)]
pub struct PatientData {
    /// Who this is.
    pub patient: PatientId,
    /// Benign windows from the training period.
    pub train_benign: Vec<Window>,
    /// Adversarial windows from attacking the training period (used by the
    /// supervised kNN detector).
    pub train_malicious: Vec<Window>,
    /// Benign windows from the test period.
    pub test_benign: Vec<Window>,
    /// Adversarial windows from attacking the test period.
    pub test_malicious: Vec<Window>,
}

/// Averaged per-patient detection metrics (averaging matters only for the
/// multi-run Random-Samples strategy).
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct PatientMetrics {
    /// Mean recall across runs.
    pub recall: f64,
    /// Mean precision across runs.
    pub precision: f64,
    /// Mean F1 across runs.
    pub f1: f64,
    /// Mean false-negative rate across runs.
    pub fnr: f64,
    /// Mean false-positive rate across runs.
    pub fpr: f64,
}

/// The evaluation of one (strategy, detector) cell of the paper's Figures
/// 7, 8 and 11.
#[derive(Debug, Clone)]
pub struct StrategyEvaluation {
    /// The training strategy evaluated.
    pub strategy: TrainingStrategy,
    /// The detector trained.
    pub detector: DetectorKind,
    /// Per-patient metrics over the whole cohort's test data.
    pub per_patient: Vec<(PatientId, PatientMetrics)>,
    /// Mean number of benign training windows used per run (the MAD-GAN
    /// "75 % reduction in training set size" claim reads off this).
    pub mean_training_windows: f64,
    /// Number of training runs averaged (1 except for Random Samples).
    pub runs: usize,
    /// The detector that actually trained in each run. Differs from
    /// [`detector`](Self::detector) only when the fallback chain engaged
    /// (degraded training data).
    pub detectors_trained: Vec<DetectorKind>,
}

impl StrategyEvaluation {
    /// Box-plot statistics of per-patient recalls.
    ///
    /// # Panics
    ///
    /// Panics if no patients were evaluated.
    pub fn recall_stats(&self) -> BoxStats {
        self.stats(|m| m.recall)
    }

    /// Box-plot statistics of per-patient precisions.
    ///
    /// # Panics
    ///
    /// Panics if no patients were evaluated.
    pub fn precision_stats(&self) -> BoxStats {
        self.stats(|m| m.precision)
    }

    /// Box-plot statistics of per-patient F1 scores.
    ///
    /// # Panics
    ///
    /// Panics if no patients were evaluated.
    pub fn f1_stats(&self) -> BoxStats {
        self.stats(|m| m.f1)
    }

    fn stats(&self, f: impl Fn(&PatientMetrics) -> f64) -> BoxStats {
        let vals: Vec<f64> = self.per_patient.iter().map(|(_, m)| f(m)).collect();
        // lint: allow(L1): documented # Panics contract — the *_stats accessors require at least one evaluated patient
        BoxStats::from_values(&vals).expect("evaluated at least one patient")
    }

    /// Mean recall across patients.
    pub fn mean_recall(&self) -> f64 {
        self.recall_stats().mean
    }

    /// Mean precision across patients.
    pub fn mean_precision(&self) -> f64 {
        self.precision_stats().mean
    }

    /// Mean F1 across patients.
    pub fn mean_f1(&self) -> f64 {
        self.f1_stats().mean
    }
}

/// Selects the training patients for each run of a strategy.
///
/// # Panics
///
/// Panics if the strategy yields an empty selection (e.g. an empty
/// less-vulnerable cluster) or `RandomSamples.k` exceeds the cohort size.
pub fn training_rosters(
    strategy: TrainingStrategy,
    cohort: &[PatientId],
    less_vulnerable: &[PatientId],
    more_vulnerable: &[PatientId],
) -> Vec<Vec<PatientId>> {
    match try_training_rosters(strategy, cohort, less_vulnerable, more_vulnerable) {
        Ok(r) => r,
        // lint: allow(L1): documented panicking wrapper; try_training_rosters is the checked path
        Err(e) => panic!("training_rosters: {e}"),
    }
}

/// Fallible [`training_rosters`].
///
/// # Errors
///
/// Returns [`LgoError::EmptyRoster`] when the strategy yields an empty
/// selection for any run.
pub fn try_training_rosters(
    strategy: TrainingStrategy,
    cohort: &[PatientId],
    less_vulnerable: &[PatientId],
    more_vulnerable: &[PatientId],
) -> Result<Vec<Vec<PatientId>>, LgoError> {
    let rosters = match strategy {
        TrainingStrategy::LessVulnerable => vec![less_vulnerable.to_vec()],
        TrainingStrategy::MoreVulnerable => vec![more_vulnerable.to_vec()],
        TrainingStrategy::AllPatients => vec![cohort.to_vec()],
        TrainingStrategy::RandomSamples { k, runs, seed } => {
            let mut rng = StdRng::seed_from_u64(seed);
            (0..runs)
                .map(|_| {
                    sample_indices(cohort.len(), k, &mut rng)
                        .into_iter()
                        .map(|i| cohort[i])
                        .collect()
                })
                .collect()
        }
    };
    for (i, r) in rosters.iter().enumerate() {
        if r.is_empty() {
            return Err(LgoError::EmptyRoster {
                strategy: strategy.name(),
                run: i,
            });
        }
    }
    Ok(rosters)
}

/// Trains one detector on pooled benign (+ malicious, for kNN) windows.
///
/// # Panics
///
/// Panics if the pooled training set is empty (or, for kNN, lacks malicious
/// windows entirely — a supervised detector cannot be trained on one
/// class).
pub fn train_detector(
    kind: DetectorKind,
    benign: &[Window],
    malicious: &[Window],
    configs: &DetectorConfigs,
) -> Box<dyn AnomalyDetector> {
    match try_train_detector(kind, benign, malicious, configs) {
        Ok(d) => d,
        // lint: allow(L1): documented panicking wrapper; try_train_detector is the checked path
        Err(e) => panic!("train_detector: {e}"),
    }
}

/// Fallible [`train_detector`].
///
/// # Errors
///
/// Returns [`LgoError::KnnNeedsMalicious`] when the supervised kNN detector
/// is requested without malicious windows, or the underlying
/// [`lgo_detect::DetectError`] when a detector's `try_fit` rejects the
/// training data.
pub fn try_train_detector(
    kind: DetectorKind,
    benign: &[Window],
    malicious: &[Window],
    configs: &DetectorConfigs,
) -> Result<Box<dyn AnomalyDetector>, LgoError> {
    Ok(match kind {
        // The point detectors judge individual measurements (the paper's
        // Figure 5 flags per-sample TPs/FNs), so they train and score on
        // per-sample CGM summaries rather than whole windows.
        DetectorKind::Knn => {
            if malicious.is_empty() {
                return Err(LgoError::KnnNeedsMalicious);
            }
            Box::new(CgmSummaryDetector::with_mode(
                KnnDetector::try_fit(
                    &summarize_all_mode(benign, SummaryMode::Value),
                    &summarize_all_mode(malicious, SummaryMode::Value),
                    &configs.knn,
                )?,
                SummaryMode::Value,
            ))
        }
        DetectorKind::OcSvm => Box::new(CgmSummaryDetector::with_mode(
            OneClassSvm::try_fit(
                &summarize_all_mode(benign, SummaryMode::Context),
                &configs.ocsvm,
            )?,
            SummaryMode::Context,
        )),
        DetectorKind::MadGan => Box::new(MadGan::try_fit(benign, &configs.madgan)?),
    })
}

/// Trains `kind`, falling back along [`DetectorKind::fallback_chain`]
/// (MAD-GAN → OC-SVM → kNN) when a detector cannot be trained on the
/// (possibly degraded) windows. Returns the trained detector together with
/// the kind that actually trained.
///
/// # Errors
///
/// Returns [`LgoError::DetectorChainExhausted`] carrying the last
/// detector's error when every link in the chain fails; non-detector errors
/// (e.g. [`LgoError::KnnNeedsMalicious`]) also trigger fallback but are
/// reported verbatim when they end the chain.
pub fn train_detector_with_fallback(
    kind: DetectorKind,
    benign: &[Window],
    malicious: &[Window],
    configs: &DetectorConfigs,
) -> Result<(Box<dyn AnomalyDetector>, DetectorKind), LgoError> {
    let chain = kind.fallback_chain();
    let mut last: Option<LgoError> = None;
    for &candidate in chain {
        match try_train_detector(candidate, benign, malicious, configs) {
            Ok(d) => return Ok((d, candidate)),
            Err(e) => last = Some(e),
        }
    }
    // lint: allow(L1): fallback_chain() always returns at least one candidate, so `last` was set
    Err(match last.expect("fallback chain is never empty") {
        LgoError::Detect(e) => LgoError::DetectorChainExhausted { last: e },
        other => other,
    })
}

/// Evaluates a trained detector on one patient's test windows.
///
/// Windows are scored in batches on the lgo-runtime pool; the confusion
/// counts are integers, so their accumulation is order-independent and the
/// matrix is identical at any thread count.
pub fn evaluate_on_patient(
    detector: &dyn AnomalyDetector,
    data: &PatientData,
) -> ConfusionMatrix {
    const BATCH: usize = 32;
    let _span = lgo_trace::span("selective/score");
    lgo_trace::counter(
        "selective/windows_scored",
        (data.test_benign.len() + data.test_malicious.len()) as u64,
    );
    let flagged =
        |windows: &[Window]| -> usize {
            lgo_runtime::par_chunks(windows, BATCH, |chunk| {
                // score_batch routes each chunk through the detector's
                // batched algebra (one Gram-row product per chunk for the
                // OC-SVM) and returns bit-identical scores to per-window
                // `score`, so the flag counts match the naive loop exactly.
                detector.score_batch(chunk).iter().filter(|&&s| s > 0.0).count()
            })
            .into_iter()
            .sum()
        };
    let mut cm = ConfusionMatrix::default();
    cm.fp = flagged(&data.test_benign);
    cm.tn = data.test_benign.len() - cm.fp;
    cm.tp = flagged(&data.test_malicious);
    cm.fn_ = data.test_malicious.len() - cm.tp;
    cm
}

/// Evaluates one (strategy, detector) pair over the cohort: trains per the
/// strategy (possibly multiple runs), tests on **every** patient's test
/// windows, and averages per-patient metrics across runs.
pub fn evaluate_strategy(
    strategy: TrainingStrategy,
    kind: DetectorKind,
    cohort: &[PatientData],
    less_vulnerable: &[PatientId],
    more_vulnerable: &[PatientId],
    configs: &DetectorConfigs,
) -> StrategyEvaluation {
    match try_evaluate_strategy(strategy, kind, cohort, less_vulnerable, more_vulnerable, configs)
    {
        Ok(e) => e,
        // lint: allow(L1): documented panicking wrapper; try_evaluate_strategy is the checked path
        Err(e) => panic!("evaluate_strategy: {e}"),
    }
}

/// Fallible [`evaluate_strategy`] with graceful degradation: when a run's
/// pooled training windows cannot train the requested detector, the
/// fallback chain (MAD-GAN → OC-SVM → kNN) is walked before giving up, and
/// the kind that actually trained is recorded in
/// [`StrategyEvaluation::detectors_trained`].
///
/// # Errors
///
/// Returns roster errors from [`try_training_rosters`] and
/// [`LgoError::DetectorChainExhausted`] (or [`LgoError::KnnNeedsMalicious`])
/// when no detector in the chain can be trained for some run.
pub fn try_evaluate_strategy(
    strategy: TrainingStrategy,
    kind: DetectorKind,
    cohort: &[PatientData],
    less_vulnerable: &[PatientId],
    more_vulnerable: &[PatientId],
    configs: &DetectorConfigs,
) -> Result<StrategyEvaluation, LgoError> {
    // The four paper strategies are one Defense implementation; this entry
    // point survives as a thin adapter so the grid/pipeline callers (and
    // their canonical exports) are untouched by the trait refactor. The
    // confusion counts, fold order and divisions are identical, so the
    // result is bit-identical to the pre-trait code.
    let ctx = crate::defense::DefenseContext {
        cohort,
        less_vulnerable,
        more_vulnerable,
        configs,
        seed: 0,
        crafter: None,
    };
    let eval = crate::defense::try_evaluate_defense(
        &crate::defense::LgoSelectiveDefense::new(strategy),
        kind,
        &ctx,
    )?;
    Ok(StrategyEvaluation {
        strategy,
        detector: kind,
        per_patient: eval.per_patient,
        mean_training_windows: eval.mean_training_windows,
        runs: eval.runs,
        detectors_trained: eval.detectors_trained,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Builds a toy cohort where "clean" patients have tight benign windows
    /// and "messy" patients have diffuse ones; malicious windows sit at a
    /// fixed offset.
    fn toy_cohort() -> Vec<PatientData> {
        let mk_window = |center: f64, i: usize| -> Window {
            vec![vec![center + (i % 7) as f64 * 0.01]; 4]
        };
        PatientId::all()
            .into_iter()
            .take(4)
            .enumerate()
            .map(|(pi, patient)| {
                let spread = if pi < 2 { 0.0 } else { 2.0 };
                let benign: Vec<Window> =
                    (0..30).map(|i| mk_window(spread, i)).collect();
                let malicious: Vec<Window> = (0..10).map(|i| mk_window(6.0, i)).collect();
                PatientData {
                    patient,
                    train_benign: benign.clone(),
                    train_malicious: malicious.clone(),
                    test_benign: benign,
                    test_malicious: malicious,
                }
            })
            .collect()
    }

    fn toy_clusters() -> (Vec<PatientId>, Vec<PatientId>) {
        let ids = PatientId::all();
        (ids[..2].to_vec(), ids[2..4].to_vec())
    }

    fn quick_configs() -> DetectorConfigs {
        DetectorConfigs {
            madgan: MadGanConfig {
                epochs: 2,
                hidden: 6,
                inversion_steps: 3,
                seq_len: 4,
                latent_dim: 1,
                ..MadGanConfig::default()
            },
            ..DetectorConfigs::default()
        }
    }

    #[test]
    fn rosters_match_strategies() {
        let cohort: Vec<PatientId> = PatientId::all().into_iter().take(4).collect();
        let (less, more) = toy_clusters();
        assert_eq!(
            training_rosters(TrainingStrategy::LessVulnerable, &cohort, &less, &more),
            vec![less.clone()]
        );
        assert_eq!(
            training_rosters(TrainingStrategy::AllPatients, &cohort, &less, &more)[0].len(),
            4
        );
        let rs = training_rosters(
            TrainingStrategy::RandomSamples {
                k: 2,
                runs: 5,
                seed: 1,
            },
            &cohort,
            &less,
            &more,
        );
        assert_eq!(rs.len(), 5);
        assert!(rs.iter().all(|r| r.len() == 2));
    }

    #[test]
    fn knn_strategy_evaluation_runs() {
        let cohort = toy_cohort();
        let (less, more) = toy_clusters();
        let eval = evaluate_strategy(
            TrainingStrategy::LessVulnerable,
            DetectorKind::Knn,
            &cohort,
            &less,
            &more,
            &quick_configs(),
        );
        assert_eq!(eval.per_patient.len(), 4);
        assert_eq!(eval.runs, 1);
        // The toy malicious cluster is perfectly separable.
        assert!(eval.mean_recall() > 0.9, "recall {}", eval.mean_recall());
        assert!(eval.mean_training_windows > 0.0);
        let stats = eval.recall_stats();
        assert!(stats.min >= 0.0 && stats.max <= 1.0);
    }

    #[test]
    fn random_strategy_averages_over_runs() {
        let cohort = toy_cohort();
        let (less, more) = toy_clusters();
        let eval = evaluate_strategy(
            TrainingStrategy::RandomSamples {
                k: 2,
                runs: 3,
                seed: 42,
            },
            DetectorKind::Knn,
            &cohort,
            &less,
            &more,
            &quick_configs(),
        );
        assert_eq!(eval.runs, 3);
        assert!(eval.per_patient.iter().all(|(_, m)| m.recall <= 1.0));
    }

    #[test]
    fn ocsvm_and_madgan_train_without_malicious_data() {
        let cohort = toy_cohort();
        let (less, more) = toy_clusters();
        for kind in [DetectorKind::OcSvm, DetectorKind::MadGan] {
            let mut cohort2 = cohort.clone();
            if kind == DetectorKind::MadGan {
                // MAD-GAN config in this test uses seq_len 4.
                for d in &mut cohort2 {
                    for set in [
                        &mut d.train_benign,
                        &mut d.test_benign,
                        &mut d.train_malicious,
                        &mut d.test_malicious,
                    ] {
                        for w in set.iter_mut() {
                            w.truncate(4);
                        }
                    }
                }
            }
            let eval = evaluate_strategy(
                TrainingStrategy::AllPatients,
                kind,
                &cohort2,
                &less,
                &more,
                &quick_configs(),
            );
            assert_eq!(eval.per_patient.len(), 4, "{}", kind.name());
        }
    }

    #[test]
    fn strategy_and_detector_names() {
        assert_eq!(TrainingStrategy::paper_set().len(), 4);
        assert_eq!(TrainingStrategy::LessVulnerable.name(), "Less Vulnerable");
        assert_eq!(DetectorKind::all().len(), 3);
        assert_eq!(DetectorKind::MadGan.name(), "MAD-GAN");
    }

    #[test]
    #[should_panic(expected = "kNN needs malicious")]
    fn knn_requires_malicious_windows() {
        let _ = train_detector(
            DetectorKind::Knn,
            &[vec![vec![0.0]; 4]],
            &[],
            &quick_configs(),
        );
    }

    #[test]
    fn evaluate_on_patient_counts_quadrants() {
        let cohort = toy_cohort();
        let det = train_detector(
            DetectorKind::Knn,
            &cohort[0].train_benign,
            &cohort[0].train_malicious,
            &quick_configs(),
        );
        let cm = evaluate_on_patient(det.as_ref(), &cohort[0]);
        assert_eq!(cm.total(), 40);
        assert_eq!(cm.tp + cm.fn_, 10);
        assert_eq!(cm.fp + cm.tn, 30);
    }
}
