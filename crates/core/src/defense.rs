//! Pluggable defense strategies: LGO selective training, ROAST
//! outlier-exposure, and iterative adversarial retraining behind one
//! [`Defense`] trait.
//!
//! The paper's contribution (step 5, [`crate::selective`]) picks *which
//! patients* train the detectors; its ROAST follow-up (PAPERS.md, Elnawawy
//! et al.) additionally feeds the **more-vulnerable** cohort's adversarial
//! windows into the fit as labeled outliers, and Li & Vorobeychik's
//! iterative adversarial retraining is the classic craft → augment → refit
//! baseline both must be compared against. This module makes the three
//! interchangeable:
//!
//! - [`LgoSelectiveDefense`] wraps the four [`TrainingStrategy`] arms — the
//!   pre-existing evaluation path routes through it bit-identically.
//! - [`RoastDefense`] trains on the less-vulnerable cohort while exposing
//!   the more-vulnerable cohort's adversarial windows as negatives: into
//!   the kNN malicious class (score calibration), the OC-SVM dual as a
//!   bounded negative-slack class (margin shaping), and the MAD-GAN
//!   discriminator as explicit fakes.
//! - [`IterativeRetrainingDefense`] starts from indiscriminate training and
//!   repeats craft → keep evaders → refit for K rounds.
//!
//! Crafting is abstracted behind [`AdversarialCrafter`] so `lgo-core` stays
//! independent of `lgo-zoo`: the zoo implements the trait with real attack
//! campaigns against the currently deployed detector, while
//! [`ReplayCrafter`] replays recorded adversarial windows deterministically
//! for tests and offline fits.
//!
//! # Determinism contract
//!
//! `fit` is deterministic for a fixed [`DefenseContext`]: rosters and
//! refit rounds derive their seeds from `split_seed(ctx.seed, round)`,
//! outlier pools accumulate in cohort order, and caps use uniform-stride
//! subsampling — no wall-clock, no unseeded RNG, no map-order iteration.
//! The canonical exports built on top are byte-identical at any
//! `LGO_THREADS`.

use std::sync::Arc;

use lgo_detect::{
    summarize_all_mode, AnomalyDetector, CgmSummaryDetector, KnnDetector, MadGan, OneClassSvm,
    SummaryMode, Window,
};
use lgo_eval::ConfusionMatrix;
use lgo_glucosim::PatientId;
use lgo_runtime::split_seed;

use crate::error::LgoError;
use crate::selective::{
    evaluate_on_patient, train_detector_with_fallback, try_training_rosters, DetectorConfigs,
    DetectorKind, PatientData, PatientMetrics, TrainingStrategy,
};

/// Crafts adversarial windows against the currently deployed detector —
/// the seam between a [`Defense`]'s refit loop and the attack zoo.
///
/// `lgo-core` cannot depend on `lgo-zoo`, so defenses that retrain on
/// crafted windows receive a crafter through [`DefenseContext::crafter`];
/// the zoo's implementation runs real attack campaigns, while
/// [`ReplayCrafter`] replays recorded windows.
pub trait AdversarialCrafter: Sync {
    /// Short crafter name for reports.
    fn name(&self) -> &'static str;

    /// Produces adversarial windows for `round`, optionally adapting to the
    /// `deployed` detector. Must be deterministic in `(round, seed)`.
    fn craft(&self, round: usize, seed: u64, deployed: &dyn AnomalyDetector) -> Vec<Window>;
}

/// Replays a recorded pool of adversarial windows, rotating through it
/// deterministically round by round — the offline stand-in for a live
/// attack campaign.
#[derive(Debug, Clone)]
pub struct ReplayCrafter {
    pool: Vec<Window>,
    per_round: usize,
}

impl ReplayCrafter {
    /// A crafter replaying `per_round` windows of `pool` per round.
    pub fn new(pool: Vec<Window>, per_round: usize) -> Self {
        Self { pool, per_round }
    }
}

impl AdversarialCrafter for ReplayCrafter {
    fn name(&self) -> &'static str {
        "replay"
    }

    fn craft(&self, round: usize, _seed: u64, _deployed: &dyn AnomalyDetector) -> Vec<Window> {
        if self.pool.is_empty() || self.per_round == 0 {
            return Vec::new();
        }
        let n = self.per_round.min(self.pool.len());
        let start = (round * self.per_round) % self.pool.len();
        (0..n)
            .map(|i| self.pool[(start + i) % self.pool.len()].clone())
            .collect()
    }
}

/// Everything a [`Defense`] may consult while fitting: the cohort's
/// detector-facing windows, the vulnerability split from step 4, detector
/// hyper-parameters, a base seed, and (optionally) a crafter for
/// adversarial refit rounds.
#[derive(Clone, Copy)]
pub struct DefenseContext<'a> {
    /// Per-patient training/test windows (step-5 input).
    pub cohort: &'a [PatientData],
    /// The less-vulnerable cluster from the dendrogram cut.
    pub less_vulnerable: &'a [PatientId],
    /// The more-vulnerable cluster from the dendrogram cut.
    pub more_vulnerable: &'a [PatientId],
    /// Detector hyper-parameters.
    pub configs: &'a DetectorConfigs,
    /// Base seed; refit rounds split from it via `split_seed`.
    pub seed: u64,
    /// Crafter for adversarial refit rounds (`None` disables them).
    pub crafter: Option<&'a dyn AdversarialCrafter>,
}

/// One fitted training run of a defense.
pub struct FittedRun {
    /// The trained detector.
    pub detector: Box<dyn AnomalyDetector>,
    /// The detector kind that actually trained (fallback chain may engage).
    pub trained: DetectorKind,
    /// Benign training windows used.
    pub training_windows: usize,
}

/// Strategy metadata a report can print without knowing the concrete type.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DefenseMeta {
    /// Which cohort slice supplies the benign training windows.
    pub roster: &'static str,
    /// Whether adversarial windows enter the fit as labeled outliers.
    pub outlier_exposure: bool,
    /// Refit rounds after the initial fit (0 = single fit).
    pub rounds: usize,
}

/// A pluggable defense: how detectors are trained against evasion attacks.
///
/// Implementations must be deterministic for a fixed context (see the
/// module docs) and must return **at least one** fitted run from
/// [`fit`](Defense::fit); only multi-run strategies (Random Samples)
/// return more.
pub trait Defense: Sync {
    /// Short kebab-case name for reports ("lgo-selective", "roast", ...).
    fn name(&self) -> &'static str;

    /// Strategy metadata for reports.
    fn meta(&self) -> DefenseMeta;

    /// Trains one detector of `kind` per run under this defense.
    ///
    /// # Errors
    ///
    /// Roster errors ([`LgoError::EmptyRoster`]) and training errors
    /// ([`LgoError::DetectorChainExhausted`], [`LgoError::KnnNeedsMalicious`]).
    fn fit(&self, kind: DetectorKind, ctx: &DefenseContext) -> Result<Vec<FittedRun>, LgoError>;
}

/// Pools benign and malicious training windows of the roster's patients,
/// in cohort order — the exact accumulation order of the pre-trait
/// evaluation path, which byte-identity depends on.
pub fn pool_training_windows(
    cohort: &[PatientData],
    roster: &[PatientId],
) -> (Vec<Window>, Vec<Window>) {
    let mut benign = Vec::new();
    let mut malicious = Vec::new();
    for d in cohort.iter().filter(|d| roster.contains(&d.patient)) {
        benign.extend(d.train_benign.iter().cloned());
        malicious.extend(d.train_malicious.iter().cloned());
    }
    (benign, malicious)
}

/// Uniform-stride cap on a window pool (deterministic; order-preserving).
fn cap_windows(v: Vec<Window>, cap: usize) -> Vec<Window> {
    if cap == 0 || v.len() <= cap {
        return v;
    }
    let stride = v.len() as f64 / cap as f64;
    (0..cap)
        .map(|i| v[(i as f64 * stride) as usize].clone())
        .collect()
}

/// The four paper strategies behind the [`Defense`] trait. The legacy
/// entry point [`crate::selective::try_evaluate_strategy`] is a thin
/// wrapper over this type, so the pre-trait and post-trait paths cannot
/// drift apart.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LgoSelectiveDefense {
    strategy: TrainingStrategy,
}

impl LgoSelectiveDefense {
    /// Wraps a [`TrainingStrategy`].
    pub fn new(strategy: TrainingStrategy) -> Self {
        Self { strategy }
    }

    /// The wrapped strategy.
    pub fn strategy(&self) -> TrainingStrategy {
        self.strategy
    }
}

impl Defense for LgoSelectiveDefense {
    fn name(&self) -> &'static str {
        match self.strategy {
            TrainingStrategy::LessVulnerable => "lgo-selective",
            TrainingStrategy::MoreVulnerable => "more-vulnerable",
            TrainingStrategy::RandomSamples { .. } => "random-samples",
            TrainingStrategy::AllPatients => "indiscriminate",
        }
    }

    fn meta(&self) -> DefenseMeta {
        DefenseMeta {
            roster: match self.strategy {
                TrainingStrategy::LessVulnerable => "less-vulnerable",
                TrainingStrategy::MoreVulnerable => "more-vulnerable",
                TrainingStrategy::RandomSamples { .. } => "random-samples",
                TrainingStrategy::AllPatients => "all-patients",
            },
            outlier_exposure: false,
            rounds: 0,
        }
    }

    fn fit(&self, kind: DetectorKind, ctx: &DefenseContext) -> Result<Vec<FittedRun>, LgoError> {
        let ids: Vec<PatientId> = ctx.cohort.iter().map(|d| d.patient).collect();
        let rosters =
            try_training_rosters(self.strategy, &ids, ctx.less_vulnerable, ctx.more_vulnerable)?;
        lgo_trace::counter("selective/runs", rosters.len() as u64);

        // Each run trains its own detector from a fixed roster, so runs fan
        // out across the lgo-runtime pool; only Random Samples has more
        // than one.
        let outcomes =
            lgo_runtime::try_par_map(&rosters, |roster| -> Result<FittedRun, LgoError> {
                let (benign, malicious) = pool_training_windows(ctx.cohort, roster);
                let (detector, trained) = {
                    let _fit = lgo_trace::span("selective/fit");
                    train_detector_with_fallback(kind, &benign, &malicious, ctx.configs)?
                };
                lgo_trace::counter("selective/fits", 1);
                lgo_trace::counter("selective/training_windows", benign.len() as u64);
                if trained != kind {
                    lgo_trace::counter("selective/fallbacks", 1);
                }
                Ok(FittedRun {
                    detector,
                    trained,
                    training_windows: benign.len(),
                })
            })?;
        outcomes.into_iter().collect()
    }
}

/// Hyper-parameters of [`RoastDefense`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RoastConfig {
    /// Total fit rounds: round 0 exposes the more-vulnerable cohort's
    /// recorded adversarial windows; rounds 1.. craft fresh windows against
    /// the current detector (requires a [`DefenseContext::crafter`]).
    pub rounds: usize,
    /// Uniform-stride cap on the accumulated outlier pool.
    pub outlier_cap: usize,
    /// Total negative-class box mass in the OC-SVM dual
    /// (see [`OneClassSvm::try_fit_with_outliers`]).
    pub ocsvm_slack: f64,
}

impl Default for RoastConfig {
    fn default() -> Self {
        Self {
            rounds: 1,
            outlier_cap: 512,
            ocsvm_slack: 0.25,
        }
    }
}

/// Risk-aware outlier-exposure training (ROAST): benign windows come from
/// the **less-vulnerable** cohort (as in LGO selective training) and the
/// **more-vulnerable** cohort's adversarial windows enter each detector's
/// fit as labeled outliers.
#[derive(Debug, Clone, Copy, Default)]
pub struct RoastDefense {
    /// Hyper-parameters.
    pub config: RoastConfig,
}

impl RoastDefense {
    /// A ROAST defense with the given hyper-parameters.
    pub fn new(config: RoastConfig) -> Self {
        Self { config }
    }
}

impl Defense for RoastDefense {
    fn name(&self) -> &'static str {
        "roast"
    }

    fn meta(&self) -> DefenseMeta {
        DefenseMeta {
            roster: "less-vulnerable",
            outlier_exposure: true,
            rounds: self.config.rounds.saturating_sub(1),
        }
    }

    fn fit(&self, kind: DetectorKind, ctx: &DefenseContext) -> Result<Vec<FittedRun>, LgoError> {
        if ctx.less_vulnerable.is_empty() {
            return Err(LgoError::EmptyRoster {
                strategy: "roast",
                run: 0,
            });
        }
        let (benign, malicious) = pool_training_windows(ctx.cohort, ctx.less_vulnerable);
        // Round-0 outliers: the more-vulnerable cohort's recorded
        // adversarial training windows, pooled in cohort order.
        let mut outliers = Vec::new();
        for d in ctx
            .cohort
            .iter()
            .filter(|d| ctx.more_vulnerable.contains(&d.patient))
        {
            outliers.extend(d.train_malicious.iter().cloned());
        }
        outliers = cap_windows(outliers, self.config.outlier_cap);
        lgo_trace::counter("defense/roast/outliers", outliers.len() as u64);
        let (mut detector, mut trained) = train_with_outliers_fallback(
            kind,
            &benign,
            &malicious,
            &outliers,
            self.config.ocsvm_slack,
            ctx.configs,
        )?;
        for round in 1..self.config.rounds {
            let Some(crafter) = ctx.crafter else { break };
            let crafted = crafter.craft(round, split_seed(ctx.seed, round as u64), &*detector);
            // Only windows that *evade* the current detector add signal.
            let evading: Vec<Window> = crafted
                .into_iter()
                .filter(|w| w.iter().flatten().all(|v| v.is_finite()) && !detector.is_anomalous(w))
                .collect();
            lgo_trace::counter("defense/roast/evading", evading.len() as u64);
            if evading.is_empty() {
                break;
            }
            outliers.extend(evading);
            outliers = cap_windows(outliers, self.config.outlier_cap);
            let (d, t) = train_with_outliers_fallback(
                kind,
                &benign,
                &malicious,
                &outliers,
                self.config.ocsvm_slack,
                ctx.configs,
            )?;
            detector = d;
            trained = t;
        }
        Ok(vec![FittedRun {
            detector,
            trained,
            training_windows: benign.len(),
        }])
    }
}

/// Hyper-parameters of [`IterativeRetrainingDefense`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct IterativeRetrainingConfig {
    /// Craft → augment → refit rounds after the initial indiscriminate fit.
    pub rounds: usize,
    /// Windows requested from the crafter per round (also the
    /// [`ReplayCrafter`] rotation width when no crafter is supplied).
    pub per_round: usize,
    /// Uniform-stride cap on the accumulated outlier pool.
    pub outlier_cap: usize,
    /// Total negative-class box mass in the OC-SVM dual.
    pub ocsvm_slack: f64,
}

impl Default for IterativeRetrainingConfig {
    fn default() -> Self {
        Self {
            rounds: 2,
            per_round: 64,
            outlier_cap: 512,
            ocsvm_slack: 0.25,
        }
    }
}

/// Iterative adversarial retraining (Li & Vorobeychik): train
/// indiscriminately on the whole cohort, then for K rounds craft
/// adversarial windows against the deployed detector, keep the ones that
/// evade it, and refit with them as outliers.
#[derive(Debug, Clone, Copy, Default)]
pub struct IterativeRetrainingDefense {
    /// Hyper-parameters.
    pub config: IterativeRetrainingConfig,
}

impl IterativeRetrainingDefense {
    /// An iterative-retraining defense with the given hyper-parameters.
    pub fn new(config: IterativeRetrainingConfig) -> Self {
        Self { config }
    }
}

impl Defense for IterativeRetrainingDefense {
    fn name(&self) -> &'static str {
        "iterative-retraining"
    }

    fn meta(&self) -> DefenseMeta {
        DefenseMeta {
            roster: "all-patients",
            outlier_exposure: true,
            rounds: self.config.rounds,
        }
    }

    fn fit(&self, kind: DetectorKind, ctx: &DefenseContext) -> Result<Vec<FittedRun>, LgoError> {
        let ids: Vec<PatientId> = ctx.cohort.iter().map(|d| d.patient).collect();
        let (benign, malicious) = pool_training_windows(ctx.cohort, &ids);
        // Round 0 is plain indiscriminate training — the baseline this
        // defense escalates from.
        let (mut detector, mut trained) =
            train_detector_with_fallback(kind, &benign, &malicious, ctx.configs)?;
        // Without a live crafter, replay the recorded adversarial pool.
        let replay;
        let crafter: &dyn AdversarialCrafter = match ctx.crafter {
            Some(c) => c,
            None => {
                replay = ReplayCrafter::new(malicious.clone(), self.config.per_round);
                &replay
            }
        };
        let mut outliers: Vec<Window> = Vec::new();
        for round in 0..self.config.rounds {
            let crafted = crafter.craft(round, split_seed(ctx.seed, 0x17E8 + round as u64), &*detector);
            let evading: Vec<Window> = crafted
                .into_iter()
                .filter(|w| w.iter().flatten().all(|v| v.is_finite()) && !detector.is_anomalous(w))
                .collect();
            lgo_trace::counter("defense/retrain/evading", evading.len() as u64);
            if evading.is_empty() {
                break; // the detector already rejects everything crafted
            }
            outliers.extend(evading);
            outliers = cap_windows(outliers, self.config.outlier_cap);
            let (d, t) = train_with_outliers_fallback(
                kind,
                &benign,
                &malicious,
                &outliers,
                self.config.ocsvm_slack,
                ctx.configs,
            )?;
            detector = d;
            trained = t;
            lgo_trace::counter("defense/retrain/rounds", 1);
        }
        Ok(vec![FittedRun {
            detector,
            trained,
            training_windows: benign.len(),
        }])
    }
}

/// Trains one detector with outlier exposure, per kind:
///
/// - **kNN** — outliers join the malicious training class, recalibrating
///   the vote-fraction score against them;
/// - **OC-SVM** — outliers enter the SMO dual as the bounded negative
///   class ([`OneClassSvm::try_fit_with_outliers`], margin shaping);
/// - **MAD-GAN** — outliers are extra discriminator fakes
///   ([`MadGan::try_fit_with_outliers`]).
///
/// With an empty outlier pool every arm reduces bit-exactly to
/// [`crate::selective::try_train_detector`].
///
/// # Errors
///
/// The same errors as [`crate::selective::try_train_detector`].
pub fn try_train_detector_with_outliers(
    kind: DetectorKind,
    benign: &[Window],
    malicious: &[Window],
    outliers: &[Window],
    ocsvm_slack: f64,
    configs: &DetectorConfigs,
) -> Result<Box<dyn AnomalyDetector>, LgoError> {
    Ok(match kind {
        DetectorKind::Knn => {
            if malicious.is_empty() && outliers.is_empty() {
                return Err(LgoError::KnnNeedsMalicious);
            }
            let mut mal: Vec<Window> = malicious.to_vec();
            mal.extend(outliers.iter().cloned());
            Box::new(CgmSummaryDetector::with_mode(
                KnnDetector::try_fit(
                    &summarize_all_mode(benign, SummaryMode::Value),
                    &summarize_all_mode(&mal, SummaryMode::Value),
                    &configs.knn,
                )?,
                SummaryMode::Value,
            ))
        }
        DetectorKind::OcSvm => Box::new(CgmSummaryDetector::with_mode(
            OneClassSvm::try_fit_with_outliers(
                &summarize_all_mode(benign, SummaryMode::Context),
                &summarize_all_mode(outliers, SummaryMode::Context),
                ocsvm_slack,
                &configs.ocsvm,
            )?,
            SummaryMode::Context,
        )),
        DetectorKind::MadGan => Box::new(MadGan::try_fit_with_outliers(
            benign,
            outliers,
            &configs.madgan,
        )?),
    })
}

/// [`try_train_detector_with_outliers`] walking the
/// [`DetectorKind::fallback_chain`], mirroring
/// [`train_detector_with_fallback`].
///
/// # Errors
///
/// [`LgoError::DetectorChainExhausted`] (or the last non-detector error)
/// when every link in the chain fails.
pub fn train_with_outliers_fallback(
    kind: DetectorKind,
    benign: &[Window],
    malicious: &[Window],
    outliers: &[Window],
    ocsvm_slack: f64,
    configs: &DetectorConfigs,
) -> Result<(Box<dyn AnomalyDetector>, DetectorKind), LgoError> {
    let chain = kind.fallback_chain();
    let mut last: Option<LgoError> = None;
    for &candidate in chain {
        match try_train_detector_with_outliers(
            candidate,
            benign,
            malicious,
            outliers,
            ocsvm_slack,
            configs,
        ) {
            Ok(d) => return Ok((d, candidate)),
            Err(e) => last = Some(e),
        }
    }
    // lint: allow(L1): fallback_chain() always returns at least one candidate, so `last` was set
    Err(match last.expect("fallback chain is never empty") {
        LgoError::Detect(e) => LgoError::DetectorChainExhausted { last: e },
        other => other,
    })
}

/// The evaluation of one (defense, detector) cell — the trait-level
/// sibling of [`crate::selective::StrategyEvaluation`].
#[derive(Debug, Clone)]
pub struct DefenseEvaluation {
    /// The defense's report name.
    pub defense: &'static str,
    /// The detector requested.
    pub detector: DetectorKind,
    /// Per-patient metrics over the whole cohort's test data.
    pub per_patient: Vec<(PatientId, PatientMetrics)>,
    /// Mean benign training windows per run.
    pub mean_training_windows: f64,
    /// Training runs averaged.
    pub runs: usize,
    /// The kind that actually trained per run (fallback chain).
    pub detectors_trained: Vec<DetectorKind>,
}

/// Evaluates one (defense, detector) pair over the cohort: fits per the
/// defense (possibly multiple runs), scores **every** patient's test
/// windows, and averages per-patient metrics across runs — the
/// accumulation order is exactly the pre-trait evaluation path's, so for
/// [`LgoSelectiveDefense`] the result is bit-identical to the legacy
/// `TrainingStrategy` code.
///
/// # Errors
///
/// Whatever [`Defense::fit`] returns.
pub fn try_evaluate_defense(
    defense: &dyn Defense,
    kind: DetectorKind,
    ctx: &DefenseContext,
) -> Result<DefenseEvaluation, LgoError> {
    // Stage 5 of the paper's pipeline: training + evaluation of one
    // (defense × detector) grid cell.
    let _stage = lgo_trace::span("stage/train");
    lgo_trace::counter("stage/train", 1);
    let fitted = defense.fit(kind, ctx)?;
    // Score every run over the whole cohort; runs fan out across the pool.
    // Confusion counts are integers, so the matrices are identical at any
    // thread count.
    let confusions: Vec<Vec<ConfusionMatrix>> = lgo_runtime::par_map(&fitted, |run| {
        ctx.cohort
            .iter()
            .map(|d| evaluate_on_patient(run.detector.as_ref(), d))
            .collect()
    });

    // Fold in run order: the metric sums accumulate in exactly the order
    // the serial loop used, keeping the averages bit-identical.
    let mut sums: Vec<PatientMetrics> = vec![PatientMetrics::default(); ctx.cohort.len()];
    let mut total_windows = 0usize;
    let mut detectors_trained = Vec::with_capacity(fitted.len());
    for (run, confusion) in fitted.iter().zip(&confusions) {
        total_windows += run.training_windows;
        detectors_trained.push(run.trained);
        for (s, cm) in sums.iter_mut().zip(confusion) {
            s.recall += cm.recall();
            s.precision += cm.precision();
            s.f1 += cm.f1();
            s.fnr += cm.false_negative_rate();
            s.fpr += cm.false_positive_rate();
        }
    }
    let runs = fitted.len();
    let per_patient = ctx
        .cohort
        .iter()
        .zip(sums)
        .map(|(d, s)| {
            (
                d.patient,
                PatientMetrics {
                    recall: s.recall / runs as f64,
                    precision: s.precision / runs as f64,
                    f1: s.f1 / runs as f64,
                    fnr: s.fnr / runs as f64,
                    fpr: s.fpr / runs as f64,
                },
            )
        })
        .collect();
    Ok(DefenseEvaluation {
        defense: defense.name(),
        detector: kind,
        per_patient,
        mean_training_windows: total_windows as f64 / runs as f64,
        runs,
        detectors_trained,
    })
}

/// One trained level of a defense's detector ladder.
pub struct BankLevel {
    /// The kind requested for this level.
    pub requested: DetectorKind,
    /// The kind that actually trained (fallback chain).
    pub trained: DetectorKind,
    /// The trained detector, shareable with `lgo-serve`'s `DetectorBank`.
    pub detector: Arc<dyn AnomalyDetector>,
    /// Benign training windows used.
    pub training_windows: usize,
}

/// A defense's full detector ladder, ordered like `lgo-serve`'s
/// `DetectorBank`: level 0 is the primary (most faithful, most expensive)
/// MAD-GAN, descending to the cheapest kNN.
pub struct DefenseBank {
    /// The defense's report name.
    pub defense: &'static str,
    /// Ladder levels, primary first.
    pub levels: Vec<BankLevel>,
}

impl DefenseBank {
    /// The shareable detectors in ladder order — feed directly to
    /// `lgo_serve::DetectorBank::new`.
    pub fn ladder(&self) -> Vec<Arc<dyn AnomalyDetector>> {
        self.levels.iter().map(|l| l.detector.clone()).collect()
    }
}

/// Fits a defense's full MAD-GAN → OC-SVM → kNN ladder (first run per
/// kind). Levels fit sequentially so shared-cache statistics stay
/// deterministic run to run.
///
/// # Errors
///
/// Whatever [`Defense::fit`] returns for any level.
pub fn try_fit_bank(defense: &dyn Defense, ctx: &DefenseContext) -> Result<DefenseBank, LgoError> {
    let mut levels = Vec::new();
    for kind in [DetectorKind::MadGan, DetectorKind::OcSvm, DetectorKind::Knn] {
        let mut runs = defense.fit(kind, ctx)?;
        // Defense::fit's documented contract returns at least one run.
        assert!(!runs.is_empty(), "Defense::fit returned no runs");
        let run = runs.swap_remove(0);
        levels.push(BankLevel {
            requested: kind,
            trained: run.trained,
            detector: Arc::from(run.detector),
            training_windows: run.training_windows,
        });
    }
    Ok(DefenseBank {
        defense: defense.name(),
        levels,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::selective::try_evaluate_strategy;
    use lgo_detect::MadGanConfig;

    /// The selective-module toy cohort: two tight ("less vulnerable") and
    /// two diffuse patients, malicious windows at a fixed offset.
    fn toy_cohort() -> Vec<PatientData> {
        let mk_window = |center: f64, i: usize| -> Window {
            vec![vec![center + (i % 7) as f64 * 0.01]; 4]
        };
        PatientId::all()
            .into_iter()
            .take(4)
            .enumerate()
            .map(|(pi, patient)| {
                let spread = if pi < 2 { 0.0 } else { 2.0 };
                let benign: Vec<Window> = (0..30).map(|i| mk_window(spread, i)).collect();
                let malicious: Vec<Window> = (0..10).map(|i| mk_window(6.0, i)).collect();
                PatientData {
                    patient,
                    train_benign: benign.clone(),
                    train_malicious: malicious.clone(),
                    test_benign: benign,
                    test_malicious: malicious,
                }
            })
            .collect()
    }

    fn quick_configs() -> DetectorConfigs {
        DetectorConfigs {
            madgan: MadGanConfig {
                epochs: 2,
                hidden: 6,
                inversion_steps: 3,
                seq_len: 4,
                latent_dim: 1,
                ..MadGanConfig::default()
            },
            ..DetectorConfigs::default()
        }
    }

    fn ctx_over<'a>(
        cohort: &'a [PatientData],
        less: &'a [PatientId],
        more: &'a [PatientId],
        configs: &'a DetectorConfigs,
    ) -> DefenseContext<'a> {
        DefenseContext {
            cohort,
            less_vulnerable: less,
            more_vulnerable: more,
            configs,
            seed: 0xD5ED,
            crafter: None,
        }
    }

    #[test]
    fn selective_defense_matches_legacy_strategy_path_bitwise() {
        let cohort = toy_cohort();
        let ids = PatientId::all();
        let (less, more) = (ids[..2].to_vec(), ids[2..4].to_vec());
        let configs = quick_configs();
        for strategy in [
            TrainingStrategy::LessVulnerable,
            TrainingStrategy::AllPatients,
            TrainingStrategy::RandomSamples {
                k: 2,
                runs: 3,
                seed: 7,
            },
        ] {
            let legacy = try_evaluate_strategy(
                strategy,
                DetectorKind::Knn,
                &cohort,
                &less,
                &more,
                &configs,
            )
            .unwrap();
            let ctx = ctx_over(&cohort, &less, &more, &configs);
            let traited =
                try_evaluate_defense(&LgoSelectiveDefense::new(strategy), DetectorKind::Knn, &ctx)
                    .unwrap();
            assert_eq!(legacy.runs, traited.runs);
            assert_eq!(legacy.detectors_trained, traited.detectors_trained);
            assert_eq!(
                legacy.mean_training_windows.to_bits(),
                traited.mean_training_windows.to_bits()
            );
            for ((pa, ma), (pb, mb)) in legacy.per_patient.iter().zip(&traited.per_patient) {
                assert_eq!(pa, pb);
                assert_eq!(ma.recall.to_bits(), mb.recall.to_bits());
                assert_eq!(ma.precision.to_bits(), mb.precision.to_bits());
                assert_eq!(ma.f1.to_bits(), mb.f1.to_bits());
                assert_eq!(ma.fnr.to_bits(), mb.fnr.to_bits());
                assert_eq!(ma.fpr.to_bits(), mb.fpr.to_bits());
            }
        }
    }

    #[test]
    fn defense_names_and_meta() {
        assert_eq!(
            LgoSelectiveDefense::new(TrainingStrategy::LessVulnerable).name(),
            "lgo-selective"
        );
        assert_eq!(
            LgoSelectiveDefense::new(TrainingStrategy::AllPatients).name(),
            "indiscriminate"
        );
        let roast = RoastDefense::default();
        assert_eq!(roast.name(), "roast");
        assert!(roast.meta().outlier_exposure);
        assert_eq!(roast.meta().roster, "less-vulnerable");
        let retrain = IterativeRetrainingDefense::default();
        assert_eq!(retrain.name(), "iterative-retraining");
        assert_eq!(retrain.meta().roster, "all-patients");
    }

    #[test]
    fn replay_crafter_rotates_deterministically() {
        let pool: Vec<Window> = (0..5).map(|i| vec![vec![i as f64]; 1]).collect();
        let crafter = ReplayCrafter::new(pool.clone(), 2);
        let dummy = |_: &Window| ();
        let _ = dummy;
        // Any detector works; craft ignores it.
        let det = crate::selective::train_detector(
            DetectorKind::Knn,
            &toy_cohort()[0].train_benign,
            &toy_cohort()[0].train_malicious,
            &quick_configs(),
        );
        let r0 = crafter.craft(0, 1, det.as_ref());
        let r1 = crafter.craft(1, 99, det.as_ref());
        let r0_again = crafter.craft(0, 2, det.as_ref());
        assert_eq!(r0, vec![pool[0].clone(), pool[1].clone()]);
        assert_eq!(r1, vec![pool[2].clone(), pool[3].clone()]);
        assert_eq!(r0, r0_again, "replay must ignore the seed");
        assert!(ReplayCrafter::new(Vec::new(), 4)
            .craft(0, 0, det.as_ref())
            .is_empty());
    }

    #[test]
    fn roast_exposure_raises_knn_recall_on_crafted_windows() {
        let cohort = toy_cohort();
        let ids = PatientId::all();
        let (less, more) = (ids[..2].to_vec(), ids[2..4].to_vec());
        let configs = quick_configs();
        let ctx = ctx_over(&cohort, &less, &more, &configs);
        // Adversarial windows that only the more-vulnerable cohort has
        // seen sit closer to the benign cluster than to the recorded
        // malicious one, so the plain kNN votes them benign; exposure must
        // pull the decision boundary toward them.
        let crafted: Vec<Window> = (0..10)
            .map(|i| vec![vec![2.5 + (i % 3) as f64 * 0.01]; 4])
            .collect();
        let mut cohort_oe = cohort.clone();
        for d in cohort_oe.iter_mut().filter(|d| more.contains(&d.patient)) {
            d.train_malicious = crafted.clone();
        }
        let ctx_oe = DefenseContext {
            cohort: &cohort_oe,
            ..ctx
        };
        let selective = LgoSelectiveDefense::new(TrainingStrategy::LessVulnerable);
        let plain = selective.fit(DetectorKind::Knn, &ctx_oe).unwrap().remove(0);
        let roast = RoastDefense::default()
            .fit(DetectorKind::Knn, &ctx_oe)
            .unwrap()
            .remove(0);
        let recall = |det: &dyn AnomalyDetector| {
            crafted.iter().filter(|w| det.is_anomalous(w)).count() as f64 / crafted.len() as f64
        };
        assert!(
            recall(roast.detector.as_ref()) > recall(plain.detector.as_ref()),
            "roast {} <= selective {}",
            recall(roast.detector.as_ref()),
            recall(plain.detector.as_ref())
        );
    }

    #[test]
    fn iterative_retraining_refits_on_evading_replays() {
        let cohort = toy_cohort();
        let ids = PatientId::all();
        let (less, more) = (ids[..2].to_vec(), ids[2..4].to_vec());
        let configs = quick_configs();
        let ctx = ctx_over(&cohort, &less, &more, &configs);
        // Near-benign adversarial windows the indiscriminate kNN misses.
        let sneaky: Vec<Window> = (0..8)
            .map(|i| vec![vec![2.6 + (i % 2) as f64 * 0.01]; 4])
            .collect();
        let replay = ReplayCrafter::new(sneaky.clone(), 8);
        let ctx_crafted = DefenseContext {
            crafter: Some(&replay),
            ..ctx
        };
        let defense = IterativeRetrainingDefense::default();
        let run = defense.fit(DetectorKind::Knn, &ctx_crafted).unwrap().remove(0);
        let caught = sneaky
            .iter()
            .filter(|w| run.detector.is_anomalous(w))
            .count();
        assert_eq!(
            caught,
            sneaky.len(),
            "retraining must catch the exposed evaders"
        );
        assert_eq!(run.trained, DetectorKind::Knn);
    }

    #[test]
    fn bank_fits_full_ladder_in_serve_order() {
        let cohort = toy_cohort();
        let ids = PatientId::all();
        let (less, more) = (ids[..2].to_vec(), ids[2..4].to_vec());
        let configs = quick_configs();
        let ctx = ctx_over(&cohort, &less, &more, &configs);
        let bank = try_fit_bank(
            &LgoSelectiveDefense::new(TrainingStrategy::AllPatients),
            &ctx,
        )
        .unwrap();
        assert_eq!(bank.defense, "indiscriminate");
        assert_eq!(bank.levels.len(), 3);
        assert_eq!(
            bank.levels.iter().map(|l| l.requested).collect::<Vec<_>>(),
            vec![DetectorKind::MadGan, DetectorKind::OcSvm, DetectorKind::Knn]
        );
        assert_eq!(bank.ladder().len(), 3);
        // The ladder is directly consumable by scoring paths.
        let w = &cohort[0].test_benign[0];
        for level in bank.ladder() {
            let _ = level.score(w);
        }
    }
}
