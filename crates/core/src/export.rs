//! Canonical full-precision export of a pipeline run.
//!
//! The determinism contract of the parallel runtime (DESIGN.md §12) is
//! enforced by comparing whole runs **byte for byte**: the same
//! configuration must yield the same export at `LGO_THREADS=1`, `=2` and
//! `=8`. That only works if the serialization itself is canonical, so this
//! module renders every float with `{:?}` (the shortest representation
//! that round-trips the exact bits — `0.1` and `0.30000000000000004` stay
//! distinguishable) and emits fields in a fixed order with no timestamps
//! or other run-varying metadata.

use std::fmt::Write as _;

use crate::pipeline::PipelineReport;

/// Renders a pipeline report as canonical JSON: fixed key order,
/// full-precision (`{:?}`) floats, no whitespace variation, nothing
/// run-varying. Two reports serialize identically **iff** their risk
/// profiles, cluster assignments, evaluation metrics and skip records are
/// bit-identical.
pub fn canonical_json(report: &PipelineReport) -> String {
    let mut out = String::from("{\n");

    // Risk profiles (steps 1–3), in cohort order.
    out.push_str("  \"profiles\": [\n");
    for (i, p) in report.profiles.iter().enumerate() {
        let values = join_floats(&p.risk_profile.values);
        let success = p
            .campaign
            .success_rate()
            .map_or_else(|| "null".into(), |r| format!("{r:?}"));
        let _ = write!(
            out,
            "    {{\"patient\": \"{}\", \"success_rate\": {success}, \"queries\": {}, \"risk\": [{values}]}}",
            p.patient,
            p.campaign.total_queries(),
        );
        out.push_str(if i + 1 < report.profiles.len() { ",\n" } else { "\n" });
    }
    out.push_str("  ],\n");

    // Cluster assignments (step 4).
    let _ = write!(
        out,
        "  \"less_vulnerable\": [{}],\n  \"more_vulnerable\": [{}],\n",
        join_ids(&report.clusters.less_vulnerable),
        join_ids(&report.clusters.more_vulnerable),
    );

    // Strategy evaluations (step 5), in grid order.
    out.push_str("  \"evaluations\": [\n");
    for (i, e) in report.evaluations.iter().enumerate() {
        let per_patient: Vec<String> = e
            .per_patient
            .iter()
            .map(|(id, m)| {
                format!(
                    "{{\"patient\": \"{id}\", \"recall\": {:?}, \"precision\": {:?}, \"f1\": {:?}, \"fnr\": {:?}, \"fpr\": {:?}}}",
                    m.recall, m.precision, m.f1, m.fnr, m.fpr
                )
            })
            .collect();
        let trained: Vec<String> = e
            .detectors_trained
            .iter()
            .map(|k| format!("\"{}\"", k.name()))
            .collect();
        let _ = write!(
            out,
            "    {{\"strategy\": \"{}\", \"detector\": \"{}\", \"runs\": {}, \"mean_training_windows\": {:?}, \"trained\": [{}], \"per_patient\": [{}]}}",
            e.strategy.name(),
            e.detector.name(),
            e.runs,
            e.mean_training_windows,
            trained.join(", "),
            per_patient.join(", "),
        );
        out.push_str(if i + 1 < report.evaluations.len() { ",\n" } else { "\n" });
    }
    out.push_str("  ],\n");

    // Degradation bookkeeping.
    let skipped: Vec<String> = report
        .skipped
        .iter()
        .map(|s| {
            format!(
                "{{\"patient\": \"{}\", \"stage\": \"{}\", \"reason\": \"{}\"}}",
                s.patient,
                s.stage,
                s.reason.replace('\\', "\\\\").replace('"', "\\\""),
            )
        })
        .collect();
    let _ = write!(out, "  \"skipped\": [{}]\n}}\n", skipped.join(", "));
    out
}

/// Full-precision comma-joined float list.
fn join_floats(values: &[f64]) -> String {
    values
        .iter()
        .map(|v| format!("{v:?}"))
        .collect::<Vec<_>>()
        .join(", ")
}

/// Comma-joined quoted patient-id list.
fn join_ids(ids: &[lgo_glucosim::PatientId]) -> String {
    ids.iter()
        .map(|id| format!("\"{id}\""))
        .collect::<Vec<_>>()
        .join(", ")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pipeline::{try_run_pipeline, PipelineConfig};

    #[test]
    fn export_is_reproducible_and_full_precision() {
        let config = PipelineConfig::fast();
        let a = canonical_json(&try_run_pipeline(&config).expect("clean run"));
        let b = canonical_json(&try_run_pipeline(&config).expect("clean run"));
        assert_eq!(a, b, "same config must export identically");
        // Shortest-round-trip floats: no fixed-precision truncation like
        // `0.33` for 1/3 anywhere in the document.
        assert!(a.contains("\"risk\": ["));
        assert!(a.contains("\"evaluations\""));
        assert!(a.ends_with("}\n"));
    }

    #[test]
    fn float_rendering_round_trips() {
        let v = [0.1, 1.0 / 3.0, 123.456_789_012_345_67];
        let rendered = join_floats(&v);
        for (orig, s) in v.iter().zip(rendered.split(", ")) {
            let back: f64 = s.parse().expect("parses back");
            assert_eq!(back.to_bits(), orig.to_bits(), "{s} round-trips");
        }
    }
}
