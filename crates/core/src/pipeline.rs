//! The end-to-end five-step pipeline: simulate the cohort, train the target
//! forecasters, attack them, quantify risk, cluster vulnerability, and
//! evaluate every (strategy × detector) combination.

use lgo_cluster::Linkage;
use lgo_detect::Window;
use lgo_forecast::{ForecastConfig, GlucoseForecaster, FEATURES};
use lgo_glucosim::{generate_cohort_sized, PatientDataset, PatientId};
use lgo_series::window::sliding;
use lgo_series::MultiSeries;

use crate::error::LgoError;
use crate::profile::{try_profile_patient, PatientAttackProfile, ProfilerConfig};
use crate::selective::{
    try_evaluate_strategy, DetectorConfigs, DetectorKind, PatientData, StrategyEvaluation,
    TrainingStrategy,
};
use crate::vuln::{try_cluster_cohort, CohortClusters};

/// Configuration of a full pipeline run.
#[derive(Debug, Clone)]
pub struct PipelineConfig {
    /// Which patients to include (`None` = the full 12-patient cohort).
    pub patients: Option<Vec<PatientId>>,
    /// Simulated training days per patient.
    pub train_days: usize,
    /// Simulated test days per patient.
    pub test_days: usize,
    /// Target-forecaster hyper-parameters.
    pub forecast: ForecastConfig,
    /// Attack/risk settings for the test-period campaign (risk profiles).
    pub profiler: ProfilerConfig,
    /// Window stride for the training-period campaign that generates the
    /// supervised detector's malicious training windows.
    pub train_attack_stride: usize,
    /// Stride between benign detector windows.
    pub detector_stride: usize,
    /// Detector hyper-parameters.
    pub detectors: DetectorConfigs,
    /// Dendrogram linkage for step 4.
    pub linkage: Linkage,
    /// The strategies to evaluate.
    pub strategies: Vec<TrainingStrategy>,
    /// The detectors to evaluate.
    pub detector_kinds: Vec<DetectorKind>,
}

impl PipelineConfig {
    /// Paper-scale configuration: the full cohort at the OhioT1DM footprint
    /// (~10 000 train / ~2 500 test samples per patient), all four
    /// strategies, all three detectors. Expect minutes of CPU time.
    pub fn paper_scale() -> Self {
        Self {
            patients: None,
            train_days: 35,
            test_days: 9,
            forecast: ForecastConfig::default(),
            profiler: ProfilerConfig::default(),
            train_attack_stride: 12,
            detector_stride: 3,
            detectors: DetectorConfigs::default(),
            linkage: Linkage::Average,
            strategies: TrainingStrategy::paper_set().to_vec(),
            detector_kinds: DetectorKind::all().to_vec(),
        }
    }

    /// A reduced configuration for tests and examples: four patients, two
    /// training days, large strides, tiny detector models.
    pub fn fast() -> Self {
        use lgo_detect::MadGanConfig;
        Self {
            patients: Some(vec![
                PatientId::new(lgo_glucosim::Subset::A, 2),
                PatientId::new(lgo_glucosim::Subset::A, 5),
                PatientId::new(lgo_glucosim::Subset::B, 2),
                PatientId::new(lgo_glucosim::Subset::B, 4),
            ]),
            train_days: 3,
            test_days: 1,
            forecast: ForecastConfig {
                hidden: 8,
                epochs: 2,
                ..ForecastConfig::default()
            },
            profiler: ProfilerConfig {
                stride: 24,
                explorer_steps: 3,
                ..ProfilerConfig::default()
            },
            train_attack_stride: 48,
            detector_stride: 24,
            detectors: DetectorConfigs {
                madgan: MadGanConfig {
                    epochs: 2,
                    hidden: 6,
                    inversion_steps: 3,
                    ..MadGanConfig::default()
                },
                ..DetectorConfigs::default()
            },
            linkage: Linkage::Average,
            strategies: vec![
                TrainingStrategy::LessVulnerable,
                TrainingStrategy::AllPatients,
            ],
            detector_kinds: vec![DetectorKind::Knn],
        }
    }
}

/// A patient the pipeline had to drop, with where and why.
#[derive(Debug, Clone, PartialEq)]
pub struct SkippedPatient {
    /// Who was dropped.
    pub patient: PatientId,
    /// The pipeline stage that failed (`"forecast"`, `"profile"`,
    /// `"windows"`).
    pub stage: &'static str,
    /// Human-readable failure reason (the underlying error's display).
    pub reason: String,
}

/// Everything a pipeline run produces.
#[derive(Debug, Clone)]
pub struct PipelineReport {
    /// Step 1–3 output per patient (test-period campaign + risk profile).
    pub profiles: Vec<PatientAttackProfile>,
    /// Step 4 output.
    pub clusters: CohortClusters,
    /// Detector-facing per-patient data.
    pub cohort: Vec<PatientData>,
    /// Step 5 output: one evaluation per (strategy × detector).
    pub evaluations: Vec<StrategyEvaluation>,
    /// The simulated datasets (kept for downstream analyses/figures).
    pub datasets: Vec<PatientDataset>,
    /// Patients dropped by per-patient stage isolation (empty on a clean
    /// run): their data was too degraded to profile, so the rest of the
    /// cohort was evaluated without them.
    pub skipped: Vec<SkippedPatient>,
}

impl PipelineReport {
    /// Looks up the evaluation of one (strategy, detector) cell.
    pub fn evaluation(
        &self,
        strategy: TrainingStrategy,
        detector: DetectorKind,
    ) -> Option<&StrategyEvaluation> {
        self.evaluations
            .iter()
            .find(|e| e.strategy == strategy && e.detector == detector)
    }
}

/// Extracts benign detector windows (FEATURES channels) from a series.
pub fn benign_windows(series: &MultiSeries, seq_len: usize, stride: usize) -> Vec<Window> {
    let sel = series.select(&FEATURES);
    sliding(sel.rows(), seq_len, stride)
}

/// Runs the full five-step pipeline.
///
/// # Panics
///
/// Panics if the configuration selects fewer than two patients (clustering
/// needs at least two risk profiles) or produces empty training data.
pub fn run_pipeline(config: &PipelineConfig) -> PipelineReport {
    match try_run_pipeline(config) {
        Ok(r) => r,
        // lint: allow(L1): documented panicking wrapper; try_run_pipeline is the checked path
        Err(e) => panic!("run_pipeline: {e}"),
    }
}

/// Fallible [`run_pipeline`] with per-patient stage isolation: a patient
/// whose data is too degraded to train, profile or window is recorded in
/// [`PipelineReport::skipped`] instead of killing the whole cohort run.
///
/// # Errors
///
/// Returns [`LgoError::TooFewPatients`] when fewer than two patients are
/// selected or survive isolation, and propagates clustering / evaluation
/// errors that affect the whole cohort.
pub fn try_run_pipeline(config: &PipelineConfig) -> Result<PipelineReport, LgoError> {
    let all = {
        let _span = lgo_trace::span("pipeline/simulate");
        generate_cohort_sized(config.train_days, config.test_days)
    };
    let datasets: Vec<PatientDataset> = match &config.patients {
        Some(ids) => all
            .into_iter()
            .filter(|d| ids.contains(&d.profile.id))
            .collect(),
        None => all,
    };
    try_run_pipeline_on(config, datasets)
}

/// [`try_run_pipeline`] over caller-supplied datasets — the entry point for
/// fault-injection studies, where the datasets have been degraded with
/// [`lgo_glucosim::FaultInjector`] before the pipeline sees them.
///
/// # Errors
///
/// See [`try_run_pipeline`].
pub fn try_run_pipeline_on(
    config: &PipelineConfig,
    datasets: Vec<PatientDataset>,
) -> Result<PipelineReport, LgoError> {
    if datasets.len() < 2 {
        return Err(LgoError::TooFewPatients {
            got: datasets.len(),
        });
    }

    // Steps 0–3 fan out per patient: training, campaigns and windowing are
    // seeded per patient, so the parallel run is bit-identical to the
    // serial loop it replaces. The fold below walks results in dataset
    // order, preserving the skip/keep bookkeeping exactly.
    let outcomes = lgo_runtime::try_par_map(&datasets, |d| profile_one_patient(config, d))?;
    let mut profiles = Vec::with_capacity(datasets.len());
    let mut cohort = Vec::with_capacity(datasets.len());
    let mut skipped = Vec::new();
    for (d, outcome) in datasets.iter().zip(outcomes) {
        match outcome {
            Ok((profile, data)) => {
                profiles.push(profile);
                cohort.push(data);
            }
            Err((stage, e)) => skipped.push(SkippedPatient {
                patient: d.profile.id,
                stage,
                reason: e.to_string(),
            }),
        }
    }
    if profiles.len() < 2 {
        return Err(LgoError::TooFewPatients {
            got: profiles.len(),
        });
    }

    lgo_trace::counter("pipeline/patients", profiles.len() as u64);
    lgo_trace::counter("pipeline/patients_skipped", skipped.len() as u64);

    // Step 4.
    let clusters = {
        let _stage = lgo_trace::span("stage/cluster");
        lgo_trace::counter("stage/cluster", 1);
        try_cluster_cohort(&profiles, config.linkage)?
    };

    // Step 5: the (detector × strategy) grid cells are independent, so fan
    // them out too; cells keep grid order in `evaluations`.
    let grid: Vec<(DetectorKind, TrainingStrategy)> = config
        .detector_kinds
        .iter()
        .flat_map(|&kind| config.strategies.iter().map(move |&s| (kind, s)))
        .collect();
    let evaluations = lgo_runtime::try_par_map(&grid, |&(kind, strategy)| {
        try_evaluate_strategy(
            strategy,
            kind,
            &cohort,
            &clusters.less_vulnerable,
            &clusters.more_vulnerable,
            &config.detectors,
        )
    })?
    .into_iter()
    .collect::<Result<Vec<_>, _>>()?;

    Ok(PipelineReport {
        profiles,
        clusters,
        cohort,
        evaluations,
        datasets,
        skipped,
    })
}

/// Steps 0–3 for one patient; any failure is tagged with the stage it hit
/// so [`try_run_pipeline_on`] can record a precise skip reason.
fn profile_one_patient(
    config: &PipelineConfig,
    d: &PatientDataset,
) -> Result<(PatientAttackProfile, PatientData), (&'static str, LgoError)> {
    // Stage 3 in the paper's numbering: everything that builds one
    // patient's profile (the campaign and risk spans nest inside on the
    // same thread).
    let _stage = lgo_trace::span("stage/profile");
    lgo_trace::counter("stage/profile", 1);
    let seq_len = config.forecast.seq_len;
    // Step 0: the deployed target model (personalized, like the paper's
    // per-patient attack study).
    let forecaster = GlucoseForecaster::try_train_personalized(&d.train, &config.forecast)
        .map_err(|e| ("forecast", LgoError::from(e)))?;

    // Steps 1-3 on the test period: a *maximizing* campaign so the risk
    // profile measures the worst-case harm per window.
    let test_profile = try_profile_patient(&forecaster, d.profile.id, &d.test, &config.profiler)
        .map_err(|e| ("profile", e))?;

    // Detector-facing adversarial data uses *minimal* (early-exit)
    // attacks — what a stealthy adversary would actually inject.
    let minimal = ProfilerConfig {
        maximize: false,
        ..config.profiler.clone()
    };
    let test_minimal = try_profile_patient(&forecaster, d.profile.id, &d.test, &minimal)
        .map_err(|e| ("profile", e))?;
    let train_minimal = try_profile_patient(
        &forecaster,
        d.profile.id,
        &d.train,
        &ProfilerConfig {
            stride: config.train_attack_stride,
            ..minimal
        },
    )
    .map_err(|e| ("profile", e))?;

    // Detector windows: windows with missing samples cannot be scored, so
    // only fully finite ones survive; a patient with none left is skipped.
    let train_benign = finite_windows(benign_windows(&d.train, seq_len, config.detector_stride));
    let test_benign = finite_windows(benign_windows(&d.test, seq_len, config.detector_stride));
    if train_benign.is_empty() || test_benign.is_empty() {
        return Err(("windows", LgoError::NoWindows));
    }

    Ok((
        test_profile,
        PatientData {
            patient: d.profile.id,
            train_benign,
            train_malicious: train_minimal.manipulated_windows(),
            test_benign,
            test_malicious: test_minimal.manipulated_windows(),
        },
    ))
}

/// Keeps only windows whose every sample is finite.
fn finite_windows(windows: Vec<Window>) -> Vec<Window> {
    windows
        .into_iter()
        .filter(|w| w.iter().flatten().all(|v| v.is_finite()))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use lgo_glucosim::Subset;

    #[test]
    fn fast_pipeline_end_to_end() {
        let config = PipelineConfig::fast();
        let report = run_pipeline(&config);
        assert_eq!(report.profiles.len(), 4);
        assert_eq!(report.cohort.len(), 4);
        // 1 detector × 2 strategies.
        assert_eq!(report.evaluations.len(), 2);
        // Clusters partition the cohort.
        let total = report.clusters.less_vulnerable.len() + report.clusters.more_vulnerable.len();
        assert_eq!(total, 4);
        assert!(!report.clusters.less_vulnerable.is_empty());
        // Lookup works.
        assert!(report
            .evaluation(TrainingStrategy::AllPatients, DetectorKind::Knn)
            .is_some());
        assert!(report
            .evaluation(TrainingStrategy::MoreVulnerable, DetectorKind::Knn)
            .is_none());
        // Every patient got detector data.
        for d in &report.cohort {
            assert!(!d.train_benign.is_empty(), "{}", d.patient);
            assert!(!d.test_benign.is_empty(), "{}", d.patient);
        }
    }

    #[test]
    fn benign_windows_shapes() {
        let config = PipelineConfig::fast();
        let report = run_pipeline(&config);
        for w in report.cohort[0].train_benign.iter().take(3) {
            assert_eq!(w.len(), 12);
            assert_eq!(w[0].len(), FEATURES.len());
        }
    }

    #[test]
    #[should_panic(expected = "at least two patients")]
    fn single_patient_rejected() {
        let mut config = PipelineConfig::fast();
        config.patients = Some(vec![PatientId::new(Subset::A, 0)]);
        let _ = run_pipeline(&config);
    }

    #[test]
    fn try_run_isolates_fully_degraded_patient() {
        use lgo_glucosim::{FaultInjector, FaultKind};
        let config = PipelineConfig::fast();
        let ids = config.patients.clone().expect("fast config names patients");
        let all = generate_cohort_sized(config.train_days, config.test_days);
        let mut datasets: Vec<PatientDataset> = all
            .into_iter()
            .filter(|d| ids.contains(&d.profile.id))
            .collect();
        // Kill one patient's CGM stream entirely: every sample dropped.
        let injector = FaultInjector::new(7).with_fault(FaultKind::Dropout { rate: 1.0 });
        datasets[0] = injector.apply_dataset(&datasets[0]);

        let report =
            try_run_pipeline_on(&config, datasets).expect("cohort must degrade gracefully");
        // The degraded patient is reported, not fatal.
        assert_eq!(report.skipped.len(), 1);
        assert_eq!(report.skipped[0].patient, ids[0]);
        assert_eq!(report.skipped[0].stage, "forecast");
        assert!(!report.skipped[0].reason.is_empty());
        // The rest of the cohort is still fully profiled and evaluated.
        assert_eq!(report.profiles.len(), 3);
        assert_eq!(report.cohort.len(), 3);
        assert_eq!(
            report.evaluations.len(),
            config.strategies.len() * config.detector_kinds.len()
        );
        for e in &report.evaluations {
            assert_eq!(e.per_patient.len(), 3);
            assert_eq!(e.detectors_trained.len(), e.runs);
        }
    }

    #[test]
    fn clean_try_run_skips_nobody() {
        let config = PipelineConfig::fast();
        let report = try_run_pipeline(&config).expect("clean run succeeds");
        assert!(report.skipped.is_empty());
        assert_eq!(report.profiles.len(), 4);
    }
}
