//! Step 1 (attack simulation) and step 3 (profile construction) wiring:
//! runs the URET-style campaign against a patient's forecaster and turns
//! the outcomes into a time-series risk profile.

use lgo_attack::cgm::{run_campaign, CampaignReport, CgmAttackConfig, CgmCase, Window};
use lgo_attack::{GreedyExplorer, TargetModel};
use lgo_forecast::{feature_window_sized, GlucoseForecaster};
use lgo_glucosim::PatientId;
use lgo_series::MultiSeries;

use crate::error::LgoError;
use crate::risk::{instantaneous_risk, RiskProfile};
use crate::severity::SeverityTable;
use crate::state::StateThresholds;

/// Adapter exposing a [`GlucoseForecaster`] to the attack framework as a
/// black-box [`TargetModel`] over feature windows.
pub struct ForecastModel<'a>(pub &'a GlucoseForecaster);

impl TargetModel<Window> for ForecastModel<'_> {
    fn predict(&self, input: &Window) -> f64 {
        self.0.predict(input)
    }
}

/// Configuration of the per-patient attack/risk profiling run.
#[derive(Debug, Clone)]
pub struct ProfilerConfig {
    /// Stride (in samples) between attacked windows; 1 attacks every
    /// window, larger values trade resolution for speed.
    pub stride: usize,
    /// Greedy-explorer step budget per window.
    pub explorer_steps: usize,
    /// When `true` the explorer keeps climbing for the full budget and
    /// `Z_t` measures the worst-case prediction deviation (the right mode
    /// for risk quantification). When `false` the explorer stops at the
    /// first goal-achieving manipulation (the right mode for generating
    /// realistic, minimal adversarial samples for the detectors).
    pub maximize: bool,
    /// Attack constraints/goals (thresholds, manipulation ranges).
    pub attack: CgmAttackConfig,
    /// Severity coefficients for risk quantification.
    pub severity: SeverityTable,
    /// Glucose state thresholds.
    pub thresholds: StateThresholds,
}

impl Default for ProfilerConfig {
    fn default() -> Self {
        Self {
            stride: 6,
            explorer_steps: 6,
            maximize: true,
            attack: CgmAttackConfig::default(),
            severity: SeverityTable::paper_default(),
            thresholds: StateThresholds::default(),
        }
    }
}

/// The result of profiling one patient: the raw campaign plus the derived
/// risk profile.
#[derive(Debug, Clone)]
pub struct PatientAttackProfile {
    /// Which patient.
    pub patient: PatientId,
    /// Step-3 output: the time-series risk profile.
    pub risk_profile: RiskProfile,
    /// Step-1 output: every attacked window with its outcome.
    pub campaign: CampaignReport,
}

impl PatientAttackProfile {
    /// The adversarial feature windows of *successful* attacks (the goal
    /// prediction flip was achieved), in raw units.
    pub fn malicious_windows(&self) -> Vec<Window> {
        self.campaign
            .outcomes
            .iter()
            .filter(|o| o.result.achieved && o.result.steps > 0)
            .map(|o| o.result.best_input.clone())
            .collect()
    }

    /// Every window the attacker actually altered (at least one accepted
    /// transformation step), successful or not. These are the *malicious
    /// samples* in the paper's Figure-6 taxonomy — manipulation, not attack
    /// success, is what makes a sample malicious — and what the detectors
    /// are trained and evaluated on.
    pub fn manipulated_windows(&self) -> Vec<Window> {
        self.campaign
            .outcomes
            .iter()
            .filter(|o| o.result.steps > 0)
            .map(|o| o.result.best_input.clone())
            .collect()
    }

    /// Overall attack success rate (see
    /// [`CampaignReport::success_rate`]).
    pub fn success_rate(&self) -> Option<f64> {
        self.campaign.success_rate()
    }

    /// The attack-outcome time series aligned with the risk profile: 1.0
    /// where the campaign achieved the misdiagnosis goal at that window,
    /// 0.0 where the victim's model resisted. Together with the risk values
    /// this is the full per-window record of step 1.
    pub fn success_series(&self) -> Vec<f64> {
        self.campaign
            .outcomes
            .iter()
            .map(|o| if o.result.achieved { 1.0 } else { 0.0 })
            .collect()
    }
}

/// Builds the attack cases for a series: one case per `stride`-th complete
/// feature window, with the fasting flag read from the series at the window
/// end.
///
/// # Panics
///
/// Panics if the series lacks the forecaster features or `fasting` channel,
/// or `stride == 0`.
pub fn attack_cases(series: &MultiSeries, seq_len: usize, stride: usize) -> Vec<CgmCase> {
    match try_attack_cases(series, seq_len, stride) {
        Ok(cases) => cases,
        // lint: allow(L1): documented panicking wrapper; try_attack_cases is the checked path
        Err(e) => panic!("attack_cases: {e}"),
    }
}

/// Fallible [`attack_cases`]. Unlike the panicking wrapper this also skips
/// windows containing non-finite samples — a window with a sensor gap in it
/// cannot be attacked (or meaningfully risk-scored).
///
/// # Errors
///
/// Returns [`LgoError::InvalidStride`] for `stride == 0` and
/// [`LgoError::MissingChannel`] when the `fasting` channel is absent.
pub fn try_attack_cases(
    series: &MultiSeries,
    seq_len: usize,
    stride: usize,
) -> Result<Vec<CgmCase>, LgoError> {
    if stride == 0 {
        return Err(LgoError::InvalidStride);
    }
    let fasting = series
        .channel("fasting")
        .ok_or_else(|| LgoError::MissingChannel {
            name: "fasting".into(),
        })?;
    let mut cases = Vec::new();
    let mut end = seq_len.saturating_sub(1);
    while end < series.len() {
        if let Some(window) = feature_window_sized(series, end, seq_len) {
            if window.iter().flatten().all(|v| v.is_finite()) {
                cases.push(CgmCase {
                    index: end,
                    window,
                    fasting: fasting[end] == 1.0, // lint: allow(L4): fasting is a 0/1 flag channel stored exactly
                });
            }
        }
        end += stride;
    }
    Ok(cases)
}

/// Profiles one patient: attacks every `stride`-th window of `series` with
/// the greedy explorer and quantifies the induced risk per window.
///
/// The adversarial prediction used in `Z_t` is the *best* prediction the
/// attack reached, whether or not the goal was achieved — an unsuccessful
/// manipulation that still shifts the prediction contributes its (possibly
/// zero-severity) risk, exactly as Equation 1 prescribes.
///
/// # Panics
///
/// Panics if the series yields no complete windows.
pub fn profile_patient(
    forecaster: &GlucoseForecaster,
    patient: PatientId,
    series: &MultiSeries,
    config: &ProfilerConfig,
) -> PatientAttackProfile {
    match try_profile_patient(forecaster, patient, series, config) {
        Ok(p) => p,
        // lint: allow(L1): documented panicking wrapper; try_profile_patient is the checked path
        Err(e) => panic!("profile_patient: {e}"),
    }
}

/// Fallible [`profile_patient`]: windows with missing (non-finite) samples
/// are skipped, and a series so degraded that no attackable window remains
/// is reported as an error rather than a panic.
///
/// # Errors
///
/// Returns [`LgoError::NoWindows`] when no complete finite window exists,
/// plus everything [`try_attack_cases`] reports.
pub fn try_profile_patient(
    forecaster: &GlucoseForecaster,
    patient: PatientId,
    series: &MultiSeries,
    config: &ProfilerConfig,
) -> Result<PatientAttackProfile, LgoError> {
    let seq_len = forecaster.config().seq_len;
    let cases = try_attack_cases(series, seq_len, config.stride)?;
    if cases.is_empty() {
        return Err(LgoError::NoWindows);
    }
    let model = ForecastModel(forecaster);
    let explorer = if config.maximize {
        GreedyExplorer::maximizing(config.explorer_steps)
    } else {
        GreedyExplorer::new(config.explorer_steps)
    };
    let campaign = {
        // Stage 1 of the paper's pipeline: attack simulation.
        let _stage = lgo_trace::span("stage/attack");
        lgo_trace::counter("stage/attack", 1);
        run_campaign(&model, &cases, &explorer, &config.attack)
    };
    // Stage 2: risk quantification (Equation 1 per attacked window).
    let _stage = lgo_trace::span("stage/risk");
    lgo_trace::counter("stage/risk", 1);
    lgo_trace::counter("risk/windows", campaign.outcomes.len() as u64);
    let values: Vec<f64> = campaign
        .outcomes
        .iter()
        .map(|o| {
            instantaneous_risk(
                o.benign_prediction,
                o.result.best_output,
                o.fasting,
                &config.severity,
                &config.thresholds,
            )
        })
        .collect();
    Ok(PatientAttackProfile {
        patient,
        risk_profile: RiskProfile::new(patient.to_string(), values),
        campaign,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use lgo_forecast::ForecastConfig;
    use lgo_glucosim::{profile as patient_profile, Simulator, Subset};

    fn quick_forecaster(series: &MultiSeries) -> GlucoseForecaster {
        let cfg = ForecastConfig {
            hidden: 6,
            epochs: 1,
            ..ForecastConfig::default()
        };
        GlucoseForecaster::train_personalized(series, &cfg)
    }

    fn quick_config() -> ProfilerConfig {
        ProfilerConfig {
            stride: 24,
            explorer_steps: 3,
            ..ProfilerConfig::default()
        }
    }

    #[test]
    fn attack_cases_cover_series_with_stride() {
        let id = PatientId::new(Subset::A, 0);
        let series = Simulator::new(patient_profile(id)).run_days(1);
        let cases = attack_cases(&series, 12, 24);
        assert!(!cases.is_empty());
        // Indices advance by the stride and start at seq_len-1.
        assert_eq!(cases[0].index, 11);
        assert_eq!(cases[1].index, 35);
        // All windows are complete.
        assert!(cases.iter().all(|c| c.window.len() == 12));
    }

    #[test]
    fn profile_has_one_risk_per_case() {
        let id = PatientId::new(Subset::A, 2);
        let sim = Simulator::new(patient_profile(id));
        let train = sim.run_days(2);
        let test = sim.run_days(3).slice(2 * 288, 3 * 288);
        let forecaster = quick_forecaster(&train);
        let prof = profile_patient(&forecaster, id, &test, &quick_config());
        assert_eq!(
            prof.risk_profile.values.len(),
            prof.campaign.outcomes.len()
        );
        assert_eq!(prof.patient, id);
        assert!(prof.risk_profile.values.iter().all(|&v| v >= 0.0));
    }

    #[test]
    fn successful_attacks_yield_malicious_windows_in_range() {
        let id = PatientId::new(Subset::A, 2);
        let sim = Simulator::new(patient_profile(id));
        let train = sim.run_days(2);
        let test = sim.run_days(3).slice(2 * 288, 3 * 288);
        let forecaster = quick_forecaster(&train);
        let prof = profile_patient(&forecaster, id, &test, &quick_config());
        for w in prof.malicious_windows() {
            // Feature layout intact and CGM within the sensor range.
            assert_eq!(w.len(), 12);
            assert!(w.iter().all(|r| r.len() == 4));
            assert!(w.iter().all(|r| (40.0..=499.0).contains(&r[0])));
        }
    }

    #[test]
    #[should_panic(expected = "stride must be positive")]
    fn zero_stride_rejected() {
        let id = PatientId::new(Subset::A, 0);
        let series = Simulator::new(patient_profile(id)).run_days(1);
        let _ = attack_cases(&series, 12, 0);
    }
}
