//! # lgo-forecast
//!
//! The **target DNN** of the paper: a bidirectional-LSTM blood-glucose
//! forecaster in the style of Rubin-Falcone et al. (KDH @ ECAI 2020), which
//! the paper uses both as the model under attack and as the source of
//! benign/adversarial predictions for risk quantification.
//!
//! Like the original, two deployment variants exist:
//!
//! - a **personalized** model trained on one patient's history
//!   ([`GlucoseForecaster::train_personalized`]), and
//! - an **aggregate** model trained on all patients' data pooled together
//!   ([`GlucoseForecaster::train_aggregate`]).
//!
//! The forecaster consumes one hour of history (12 samples at 5-minute
//! cadence) of four channels (`cgm`, `bolus`, `carbs`, `heart_rate`) and
//! predicts the CGM value 30 minutes ahead, all in mg/dL.
//!
//! # Examples
//!
//! ```no_run
//! use lgo_forecast::{ForecastConfig, GlucoseForecaster};
//! use lgo_glucosim::{profile, PatientId, Simulator, Subset};
//!
//! let series = Simulator::new(profile(PatientId::new(Subset::A, 0))).run_days(7);
//! let model = GlucoseForecaster::train_personalized(&series, &ForecastConfig::default());
//! let window = lgo_forecast::feature_window(&series, 100).unwrap();
//! let pred = model.predict(&window);
//! assert!(pred > 0.0);
//! ```

use std::error::Error;
use std::fmt;

use lgo_nn::{BiLstmRegressor, TrainError, Trainable};
use lgo_series::{window::ForecastSample, MinMaxScaler, MultiSeries, ScalerError};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Error returned by the fallible training entry points
/// ([`GlucoseForecaster::try_train_personalized`] /
/// [`GlucoseForecaster::try_train_aggregate`]).
#[derive(Debug, Clone, PartialEq)]
pub enum ForecastError {
    /// No series were supplied.
    NoSeries,
    /// A series yields no complete (window, target) pairs.
    SeriesTooShort {
        /// Length of the offending series.
        len: usize,
        /// Configured window length.
        seq_len: usize,
        /// Configured prediction horizon.
        horizon: usize,
    },
    /// A series lacks one of the required [`FEATURES`] channels.
    MissingChannel {
        /// The absent channel name.
        name: String,
    },
    /// A prediction window's length differs from the configured `seq_len`.
    WindowLength {
        /// Supplied window length.
        got: usize,
        /// Configured `seq_len`.
        expected: usize,
    },
    /// Every supervised sample contained a non-finite value — the data is
    /// too degraded (e.g. a fully dropped-out CGM trace) to train on.
    NoUsableSamples,
    /// Scaler fitting failed on the training data.
    Scaler(ScalerError),
    /// The underlying model training failed (e.g. unrecoverable
    /// divergence).
    Training(TrainError),
}

impl fmt::Display for ForecastError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ForecastError::NoSeries => write!(f, "no series given"),
            ForecastError::SeriesTooShort {
                len,
                seq_len,
                horizon,
            } => write!(
                f,
                "series too short ({len} samples) for seq_len {seq_len} + horizon {horizon}"
            ),
            ForecastError::MissingChannel { name } => {
                write!(f, "series lacks required channel `{name}`")
            }
            ForecastError::WindowLength { got, expected } => {
                write!(f, "window length {got} != seq_len {expected}")
            }
            ForecastError::NoUsableSamples => {
                write!(f, "no finite supervised samples — data too degraded")
            }
            ForecastError::Scaler(e) => write!(f, "scaler: {e}"),
            ForecastError::Training(e) => write!(f, "training: {e}"),
        }
    }
}

impl Error for ForecastError {}

impl From<ScalerError> for ForecastError {
    fn from(e: ScalerError) -> Self {
        ForecastError::Scaler(e)
    }
}

impl From<TrainError> for ForecastError {
    fn from(e: TrainError) -> Self {
        ForecastError::Training(e)
    }
}

/// The input channels the forecaster reads, in order.
pub const FEATURES: [&str; 4] = ["cgm", "bolus", "carbs", "heart_rate"];

/// Index of the CGM channel within [`FEATURES`] — the only feature the
/// paper's threat model allows the adversary to manipulate.
pub const CGM_FEATURE: usize = 0;

/// Hyper-parameters of the forecaster.
///
/// Defaults mirror the paper's setup: one hour of history, a 30-minute
/// prediction horizon, and a small bidirectional LSTM.
#[derive(Debug, Clone, PartialEq)]
pub struct ForecastConfig {
    /// History window length in samples (12 × 5 min = 1 h).
    pub seq_len: usize,
    /// Prediction horizon in samples (6 × 5 min = 30 min).
    pub horizon: usize,
    /// Hidden units per LSTM direction.
    pub hidden: usize,
    /// Training epochs.
    pub epochs: usize,
    /// Mini-batch size.
    pub batch_size: usize,
    /// Adam learning rate.
    pub learning_rate: f64,
    /// RNG seed for weight initialization.
    pub seed: u64,
}

impl Default for ForecastConfig {
    fn default() -> Self {
        Self {
            seq_len: 12,
            horizon: 6,
            hidden: 16,
            epochs: 4,
            batch_size: 32,
            learning_rate: 0.005,
            seed: 0x5EED,
        }
    }
}

impl ForecastConfig {
    /// A reduced configuration for unit tests and examples.
    pub fn fast() -> Self {
        Self {
            hidden: 8,
            epochs: 2,
            ..Self::default()
        }
    }
}

/// A trained glucose forecaster: BiLSTM regressor plus the feature/target
/// scalers fit on its training data.
///
/// All public methods speak **raw units** (mg/dL, U, g, bpm); scaling is
/// internal.
#[derive(Debug, Clone)]
pub struct GlucoseForecaster {
    model: BiLstmRegressor,
    feature_scaler: MinMaxScaler,
    target_scaler: MinMaxScaler,
    config: ForecastConfig,
}

/// Extracts the raw (unscaled) feature window ending at sample `end`
/// (inclusive) from a simulated series, in [`FEATURES`] channel order.
///
/// Returns `None` when the series is too short for a full window.
pub fn feature_window(series: &MultiSeries, end: usize) -> Option<Vec<Vec<f64>>> {
    let cfg = ForecastConfig::default();
    feature_window_sized(series, end, cfg.seq_len)
}

/// [`feature_window`] with an explicit window length.
pub fn feature_window_sized(
    series: &MultiSeries,
    end: usize,
    seq_len: usize,
) -> Option<Vec<Vec<f64>>> {
    if end + 1 < seq_len || end >= series.len() {
        return None;
    }
    let sel = series.select(&FEATURES);
    Some(sel.rows()[end + 1 - seq_len..=end].to_vec())
}

/// Builds raw (unscaled) supervised samples from a series: feature windows
/// paired with the CGM value `horizon` steps past the window end.
///
/// # Panics
///
/// Panics if the series lacks one of the [`FEATURES`] channels. Use
/// [`try_supervised_samples`] to handle incomplete series gracefully.
pub fn supervised_samples(
    series: &MultiSeries,
    seq_len: usize,
    horizon: usize,
) -> Vec<ForecastSample> {
    match try_supervised_samples(series, seq_len, horizon) {
        Ok(samples) => samples,
        // lint: allow(L1): documented panicking wrapper; try_supervised_samples is the checked path
        Err(e) => panic!("supervised_samples: {e}"),
    }
}

/// Fallible [`supervised_samples`].
///
/// # Errors
///
/// Returns [`ForecastError::MissingChannel`] when the series lacks one of
/// the [`FEATURES`] channels.
pub fn try_supervised_samples(
    series: &MultiSeries,
    seq_len: usize,
    horizon: usize,
) -> Result<Vec<ForecastSample>, ForecastError> {
    for name in FEATURES {
        if series.channel_index(name).is_none() {
            return Err(ForecastError::MissingChannel {
                name: name.to_string(),
            });
        }
    }
    let features = series.select(&FEATURES);
    let target = series
        .channel("cgm")
        // lint: allow(L1): presence of every FEATURES channel (incl. cgm) was just checked
        .expect("cgm channel present");
    Ok(lgo_series::window::forecast_samples(
        features.rows(),
        &target,
        seq_len,
        horizon,
    ))
}

impl GlucoseForecaster {
    /// Trains a personalized model on one patient's series.
    ///
    /// # Panics
    ///
    /// Panics if the series is shorter than `seq_len + horizon` samples or
    /// lacks any of the [`FEATURES`] channels.
    pub fn train_personalized(series: &MultiSeries, config: &ForecastConfig) -> Self {
        Self::train_on(&[series], config)
    }

    /// Trains an aggregate model on the pooled data of several patients.
    ///
    /// # Panics
    ///
    /// Panics if `series_set` is empty or any series is too short.
    pub fn train_aggregate(series_set: &[&MultiSeries], config: &ForecastConfig) -> Self {
        Self::train_on(series_set, config)
    }

    /// Fallible [`train_personalized`](Self::train_personalized):
    /// supervised samples containing non-finite values (from degraded or
    /// fault-injected sensors) are dropped before training, and training
    /// divergence is recovered or reported rather than propagated as a
    /// panic.
    ///
    /// # Errors
    ///
    /// See [`ForecastError`].
    pub fn try_train_personalized(
        series: &MultiSeries,
        config: &ForecastConfig,
    ) -> Result<Self, ForecastError> {
        Self::try_train_on(&[series], config)
    }

    /// Fallible [`train_aggregate`](Self::train_aggregate).
    ///
    /// # Errors
    ///
    /// See [`ForecastError`].
    pub fn try_train_aggregate(
        series_set: &[&MultiSeries],
        config: &ForecastConfig,
    ) -> Result<Self, ForecastError> {
        Self::try_train_on(series_set, config)
    }

    fn train_on(series_set: &[&MultiSeries], config: &ForecastConfig) -> Self {
        match Self::try_train_on(series_set, config) {
            Ok(model) => model,
            // lint: allow(L1): documented panicking wrapper; the try_train_* entry points are the checked path
            Err(e) => panic!("train: {e}"),
        }
    }

    fn try_train_on(
        series_set: &[&MultiSeries],
        config: &ForecastConfig,
    ) -> Result<Self, ForecastError> {
        if series_set.is_empty() {
            return Err(ForecastError::NoSeries);
        }
        let mut raw_samples = Vec::new();
        for s in series_set {
            let samples = try_supervised_samples(s, config.seq_len, config.horizon)?;
            if samples.is_empty() {
                return Err(ForecastError::SeriesTooShort {
                    len: s.len(),
                    seq_len: config.seq_len,
                    horizon: config.horizon,
                });
            }
            raw_samples.extend(samples);
        }

        // Drop samples touched by missing/corrupt readings: a NaN anywhere
        // in the window or target would poison the loss. Training proceeds
        // on whatever clean windows remain.
        raw_samples.retain(|s| {
            s.target.is_finite() && s.history.iter().flatten().all(|v| v.is_finite())
        });
        if raw_samples.is_empty() {
            return Err(ForecastError::NoUsableSamples);
        }

        // Fit scalers on all training rows / targets.
        let all_rows: Vec<Vec<f64>> = raw_samples
            .iter()
            .flat_map(|s| s.history.iter().cloned())
            .collect();
        let mut feature_scaler = MinMaxScaler::new();
        feature_scaler.try_fit(&all_rows)?;
        let targets: Vec<Vec<f64>> = raw_samples.iter().map(|s| vec![s.target]).collect();
        let mut target_scaler = MinMaxScaler::new();
        target_scaler.try_fit(&targets)?;

        let scaled: Vec<(Vec<Vec<f64>>, f64)> = raw_samples
            .iter()
            .map(|s| {
                let hist = feature_scaler.transform(&s.history)?;
                Ok((hist, target_scaler.value(0, s.target)))
            })
            .collect::<Result<_, ScalerError>>()?;

        let mut rng = StdRng::seed_from_u64(config.seed);
        let mut model = BiLstmRegressor::new(FEATURES.len(), config.hidden, &mut rng);
        model.try_fit(
            &scaled,
            config.epochs,
            config.batch_size,
            config.learning_rate,
        )?;
        Ok(Self {
            model,
            feature_scaler,
            target_scaler,
            config: config.clone(),
        })
    }

    /// The configuration the model was trained with.
    pub fn config(&self) -> &ForecastConfig {
        &self.config
    }

    /// Number of trainable parameters.
    pub fn param_count(&mut self) -> usize {
        self.model.param_count()
    }

    /// Predicts the CGM value (mg/dL) `horizon` steps after the end of a raw
    /// feature window (rows in [`FEATURES`] order, raw units).
    ///
    /// # Panics
    ///
    /// Panics if the window length differs from the configured `seq_len` or
    /// rows have the wrong width. Use [`try_predict`](Self::try_predict) to
    /// handle malformed windows gracefully.
    pub fn predict(&self, window: &[Vec<f64>]) -> f64 {
        match self.try_predict(window) {
            Ok(y) => y,
            // lint: allow(L1): documented panicking wrapper; try_predict is the checked path
            Err(e) => panic!("predict: {e}"),
        }
    }

    /// Fallible [`predict`](Self::predict).
    ///
    /// # Errors
    ///
    /// Returns [`ForecastError::WindowLength`] when the window length
    /// differs from the configured `seq_len`, and [`ForecastError::Scaler`]
    /// when rows have the wrong width.
    pub fn try_predict(&self, window: &[Vec<f64>]) -> Result<f64, ForecastError> {
        if window.len() != self.config.seq_len {
            return Err(ForecastError::WindowLength {
                got: window.len(),
                expected: self.config.seq_len,
            });
        }
        let scaled = self.feature_scaler.transform(window)?;
        let y = self.model.predict(&scaled);
        Ok(self.target_scaler.inverse_value(0, y))
    }

    /// Gradient of the raw-unit prediction with respect to every raw input
    /// cell: `out[t][j] = d predict(window) / d window[t][j]`, in
    /// (mg/dL predicted) per (raw unit of feature `j`).
    ///
    /// This is the white-box surface gradient attacks (FGSM/BIM/PGD/CW)
    /// climb. Both scalers are affine, so the chain rule through them is a
    /// per-column constant: `target_range / feature_range[j]` multiplies
    /// the model-space gradient from
    /// [`BiLstmRegressor::input_gradients`]. The pass is pure (`&self`),
    /// safe for models shared across parallel campaigns.
    ///
    /// # Panics
    ///
    /// Panics if the window length differs from the configured `seq_len`
    /// or rows have the wrong width. Use
    /// [`try_input_gradients`](Self::try_input_gradients) to handle
    /// malformed windows gracefully.
    pub fn input_gradients(&self, window: &[Vec<f64>]) -> Vec<Vec<f64>> {
        match self.try_input_gradients(window) {
            Ok(g) => g,
            // lint: allow(L1): documented panicking wrapper; try_input_gradients is the checked path
            Err(e) => panic!("input_gradients: {e}"),
        }
    }

    /// Fallible [`input_gradients`](Self::input_gradients).
    ///
    /// # Errors
    ///
    /// Returns [`ForecastError::WindowLength`] when the window length
    /// differs from the configured `seq_len`, and [`ForecastError::Scaler`]
    /// when rows have the wrong width.
    pub fn try_input_gradients(&self, window: &[Vec<f64>]) -> Result<Vec<Vec<f64>>, ForecastError> {
        if window.len() != self.config.seq_len {
            return Err(ForecastError::WindowLength {
                got: window.len(),
                expected: self.config.seq_len,
            });
        }
        let scaled = self.feature_scaler.transform(window)?;
        let mut grads = self.model.input_gradients(&scaled);
        // Affine scalers: d(scaled x_j)/d(raw x_j) = 1/feature_range_j and
        // d(raw y)/d(scaled y) = target_range, both recoverable from the
        // public transforms without new scaler API.
        let target_range =
            self.target_scaler.inverse_value(0, 1.0) - self.target_scaler.inverse_value(0, 0.0);
        let inv_feature_ranges: Vec<f64> = (0..FEATURES.len())
            .map(|j| self.feature_scaler.value(j, 1.0) - self.feature_scaler.value(j, 0.0))
            .collect();
        for row in &mut grads {
            for (g, &inv) in row.iter_mut().zip(&inv_feature_ranges) {
                *g *= target_range * inv;
            }
        }
        Ok(grads)
    }

    /// Predicts over every complete window of a series, returning
    /// `(window_end_index, prediction)` pairs. The prediction at index `t`
    /// refers to time `t + horizon`.
    pub fn predict_series(&self, series: &MultiSeries) -> Vec<(usize, f64)> {
        let sel = series.select(&FEATURES);
        let rows = sel.rows();
        let n = self.config.seq_len;
        if rows.len() < n {
            return Vec::new();
        }
        (n - 1..rows.len())
            .map(|end| (end, self.predict(&rows[end + 1 - n..=end])))
            .collect()
    }

    /// Root-mean-squared error (mg/dL) against the true CGM `horizon` steps
    /// ahead, over all complete windows of `series`.
    ///
    /// # Panics
    ///
    /// Panics if the series yields no complete (window, target) pairs.
    pub fn rmse(&self, series: &MultiSeries) -> f64 {
        let samples = supervised_samples(series, self.config.seq_len, self.config.horizon);
        assert!(!samples.is_empty(), "rmse: series too short");
        let se: f64 = samples
            .iter()
            .map(|s| {
                let p = self.predict(&s.history);
                (p - s.target) * (p - s.target)
            })
            .sum();
        (se / samples.len() as f64).sqrt()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lgo_glucosim::{profile, PatientId, Simulator, Subset};

    fn series(days: usize) -> MultiSeries {
        Simulator::new(profile(PatientId::new(Subset::A, 0))).run_days(days)
    }

    fn fast_cfg() -> ForecastConfig {
        ForecastConfig {
            hidden: 8,
            epochs: 2,
            ..ForecastConfig::default()
        }
    }

    #[test]
    fn feature_window_extraction() {
        let s = series(1);
        assert!(feature_window(&s, 5).is_none()); // too early
        let w = feature_window(&s, 11).unwrap();
        assert_eq!(w.len(), 12);
        assert_eq!(w[0].len(), FEATURES.len());
        assert!(feature_window(&s, s.len()).is_none()); // out of range
        // CGM column matches the series.
        let cgm = s.channel("cgm").unwrap();
        assert_eq!(w[11][CGM_FEATURE], cgm[11]);
    }

    #[test]
    fn supervised_sample_alignment() {
        let s = series(1);
        let samples = supervised_samples(&s, 12, 6);
        let cgm = s.channel("cgm").unwrap();
        assert_eq!(samples[0].target, cgm[17]);
        assert_eq!(samples[0].target_index, 17);
        assert_eq!(samples.len(), s.len() - 17);
    }

    #[test]
    fn trained_model_beats_trivial_baseline() {
        // The forecaster must beat "predict the current value" (persistence)
        // is too strong for 2 epochs; instead require it to beat predicting
        // the global mean, which any learned model must.
        let train = series(8);
        let test = series(10).slice(8 * 288, 10 * 288);
        let model = GlucoseForecaster::train_personalized(&train, &fast_cfg());
        let rmse = model.rmse(&test);

        let samples = supervised_samples(&test, 12, 6);
        let mean: f64 =
            samples.iter().map(|s| s.target).sum::<f64>() / samples.len() as f64;
        let mean_rmse = (samples
            .iter()
            .map(|s| (s.target - mean) * (s.target - mean))
            .sum::<f64>()
            / samples.len() as f64)
            .sqrt();
        assert!(
            rmse < mean_rmse * 0.9,
            "model rmse {rmse:.1} not better than mean baseline {mean_rmse:.1}"
        );
    }

    #[test]
    fn prediction_in_physiological_range() {
        let train = series(4);
        let model = GlucoseForecaster::train_personalized(&train, &fast_cfg());
        for (_, p) in model.predict_series(&train.slice(0, 288)) {
            assert!((-100.0..700.0).contains(&p), "prediction {p} wild");
        }
    }

    #[test]
    fn raising_cgm_history_raises_prediction() {
        // The attack relies on the forecaster tracking recent CGM levels:
        // a window shifted +150 mg/dL must predict higher.
        let train = series(6);
        let model = GlucoseForecaster::train_personalized(&train, &fast_cfg());
        let w = feature_window(&train, 100).unwrap();
        let mut high = w.clone();
        for row in &mut high {
            row[CGM_FEATURE] += 150.0;
        }
        assert!(
            model.predict(&high) > model.predict(&w) + 20.0,
            "forecaster insensitive to CGM history: {} vs {}",
            model.predict(&high),
            model.predict(&w)
        );
    }

    #[test]
    fn aggregate_model_trains_on_multiple_patients() {
        let a = Simulator::new(profile(PatientId::new(Subset::A, 0))).run_days(2);
        let b = Simulator::new(profile(PatientId::new(Subset::A, 5))).run_days(2);
        let model = GlucoseForecaster::train_aggregate(&[&a, &b], &fast_cfg());
        assert!(model.rmse(&a).is_finite());
        assert!(model.rmse(&b).is_finite());
    }

    #[test]
    fn deterministic_training() {
        let train = series(2);
        let m1 = GlucoseForecaster::train_personalized(&train, &fast_cfg());
        let m2 = GlucoseForecaster::train_personalized(&train, &fast_cfg());
        let w = feature_window(&train, 50).unwrap();
        assert_eq!(m1.predict(&w), m2.predict(&w));
    }

    #[test]
    fn input_gradients_match_finite_differences() {
        // The raw-unit gradient must agree with central differences of
        // predict() — this pins the scaler chain rule, not just the BPTT
        // core (checked separately in lgo-nn).
        let train = series(2);
        let model = GlucoseForecaster::train_personalized(&train, &fast_cfg());
        let w = feature_window(&train, 50).unwrap();
        let grads = model.input_gradients(&w);
        assert_eq!(grads.len(), 12);
        assert_eq!(grads[0].len(), FEATURES.len());
        let eps = 1e-3; // raw units
        for &(t, j) in &[(0usize, 0usize), (5, 0), (11, 0), (6, 3), (3, 1)] {
            let mut wp = w.clone();
            wp[t][j] += eps;
            let mut wm = w.clone();
            wm[t][j] -= eps;
            let numeric = (model.predict(&wp) - model.predict(&wm)) / (2.0 * eps);
            assert!(
                (numeric - grads[t][j]).abs() < 1e-4,
                "d/dw[{t}][{j}]: numeric {numeric} vs analytic {}",
                grads[t][j]
            );
        }
    }

    #[test]
    fn input_gradients_reject_wrong_window() {
        let train = series(2);
        let model = GlucoseForecaster::train_personalized(&train, &fast_cfg());
        let err = model
            .try_input_gradients(&vec![vec![100.0, 0.0, 0.0, 70.0]; 5])
            .unwrap_err();
        assert_eq!(
            err,
            ForecastError::WindowLength {
                got: 5,
                expected: 12
            }
        );
    }

    #[test]
    #[should_panic(expected = "window length")]
    fn predict_rejects_wrong_window() {
        let train = series(2);
        let model = GlucoseForecaster::train_personalized(&train, &fast_cfg());
        let _ = model.predict(&vec![vec![100.0, 0.0, 0.0, 70.0]; 5]);
    }

    #[test]
    fn fast_config_is_smaller_than_default() {
        let fast = ForecastConfig::fast();
        let full = ForecastConfig::default();
        assert!(fast.hidden < full.hidden);
        assert!(fast.epochs < full.epochs);
        assert_eq!(fast.seq_len, full.seq_len);
        assert_eq!(fast.horizon, full.horizon);
    }

    #[test]
    fn cgm_feature_is_first_column() {
        assert_eq!(FEATURES[CGM_FEATURE], "cgm");
    }

    #[test]
    fn predict_series_indices_are_window_ends() {
        let s = series(2);
        let model = GlucoseForecaster::train_personalized(&s, &fast_cfg());
        let preds = model.predict_series(&s.slice(0, 60));
        assert_eq!(preds.first().unwrap().0, 11);
        assert_eq!(preds.last().unwrap().0, 59);
        assert_eq!(preds.len(), 60 - 11);
        // Predictions against predict() on the same window agree.
        let w = feature_window(&s, 20).unwrap();
        let direct = model.predict(&w);
        let from_series = preds.iter().find(|(i, _)| *i == 20).unwrap().1;
        assert_eq!(direct, from_series);
    }

    #[test]
    #[should_panic(expected = "too short")]
    fn train_rejects_short_series() {
        let s = series(1).slice(0, 10);
        let _ = GlucoseForecaster::train_personalized(&s, &fast_cfg());
    }

    #[test]
    fn try_train_reports_degraded_and_degenerate_input() {
        let cfg = fast_cfg();
        assert_eq!(
            GlucoseForecaster::try_train_aggregate(&[], &cfg).unwrap_err(),
            ForecastError::NoSeries
        );
        let short = series(1).slice(0, 10);
        assert_eq!(
            GlucoseForecaster::try_train_personalized(&short, &cfg).unwrap_err(),
            ForecastError::SeriesTooShort {
                len: 10,
                seq_len: 12,
                horizon: 6
            }
        );
        // A fully dropped-out CGM channel leaves no usable samples.
        let mut dead = series(1);
        let nan = vec![f64::NAN; dead.len()];
        assert!(dead.set_channel("cgm", &nan));
        assert_eq!(
            GlucoseForecaster::try_train_personalized(&dead, &cfg).unwrap_err(),
            ForecastError::NoUsableSamples
        );
        // A missing channel is reported by name.
        let partial = series(1).select(&["cgm", "bolus"]);
        assert_eq!(
            GlucoseForecaster::try_train_personalized(&partial, &cfg).unwrap_err(),
            ForecastError::MissingChannel {
                name: "carbs".to_string()
            }
        );
    }

    #[test]
    fn try_train_skips_corrupt_windows_and_still_learns() {
        // Scatter NaN readings across the CGM trace (sparser than the
        // window span, so clean windows survive): training must still
        // succeed on those windows and produce a finite model.
        let mut s = series(4);
        let mut cgm = s.channel("cgm").unwrap();
        for i in (0..cgm.len()).step_by(50) {
            cgm[i] = f64::NAN;
        }
        assert!(s.set_channel("cgm", &cgm));
        let model =
            GlucoseForecaster::try_train_personalized(&s, &fast_cfg()).expect("partial data");
        let clean = series(2);
        assert!(model.rmse(&clean).is_finite());
    }
}
