//! Perf trajectory — before/after timings of the algorithmic hot paths.
//!
//! Times each optimized stage against its legacy implementation in one
//! process, single-threaded (`LGO_THREADS` is overridden to 1 so the
//! numbers measure algorithms, not pool scheduling), and asserts the
//! optimized outputs are **bit-identical** to the reference before any
//! timing is trusted:
//!
//! - `dtw_matrix` — one-task-per-pair brute-force DTW vs the chunked,
//!   early-abandoning pruned DTW of [`lgo_cluster::dtw_distance_matrix`];
//! - `detector_grid` — the (strategy × detector) selective-training grid
//!   with the legacy per-pair Gram / per-window scoring
//!   (`lgo_detect::perf` off) vs the tiled-matmul, [`lgo_detect::KernelCache`]
//!   and batched-scoring paths (on), plus a warm pass showing the cache
//!   amortizing repeated rosters;
//! - `lstm_forward` — per-timestep `LstmCell::step` loops vs
//!   [`lgo_nn::LstmCell::forward_batch`].
//!
//! Knobs:
//!
//! - `LGO_PERF_SCALE` — `fast` (default) / `mid` / `paper` workload sizes;
//! - `LGO_DTW_BAND` — Sakoe–Chiba band for the DTW stage (a number, or
//!   `none` for unbanded; default none).
//!
//! Results go to stdout and `results/BENCH_perf.json`.
//!
//! ```text
//! cargo run -p lgo-bench --release --bin exp_perf
//! ```

use std::time::Instant;

use lgo_cluster::{dtw, dtw_distance_matrix};
use lgo_core::selective::{
    try_evaluate_strategy, DetectorKind, PatientData, StrategyEvaluation, TrainingStrategy,
};
use lgo_detect::Window;
use lgo_glucosim::{PatientId, Subset};
use lgo_nn::{LstmCell, LstmState};
use rand::{rngs::StdRng, SeedableRng};

/// Workload sizes per `LGO_PERF_SCALE`.
struct PerfScale {
    name: &'static str,
    /// DTW: number of series and samples per series.
    dtw_series: usize,
    dtw_len: usize,
    /// Detector grid: windows per patient (benign train; the other splits
    /// are derived fractions).
    grid_windows: usize,
    /// LSTM: batch size and sequence length.
    lstm_batch: usize,
    lstm_seq: usize,
    /// Timed repetitions per stage (summed): small workloads on a busy
    /// container need several passes for a stable ratio.
    reps: usize,
}

fn perf_scale() -> PerfScale {
    match std::env::var("LGO_PERF_SCALE").as_deref() {
        Ok("fast") | Err(_) => PerfScale {
            name: "fast",
            dtw_series: 24,
            dtw_len: 320,
            grid_windows: 160,
            lstm_batch: 64,
            lstm_seq: 32,
            reps: 5,
        },
        Ok("mid") => PerfScale {
            name: "mid",
            dtw_series: 48,
            dtw_len: 320,
            grid_windows: 180,
            lstm_batch: 96,
            lstm_seq: 36,
            reps: 3,
        },
        Ok("paper") => PerfScale {
            name: "paper",
            dtw_series: 96,
            dtw_len: 416,
            grid_windows: 360,
            lstm_batch: 192,
            lstm_seq: 48,
            reps: 2,
        },
        Ok(other) => panic!("LGO_PERF_SCALE = {other:?}; expected fast, mid or paper"),
    }
}

/// Parses `LGO_DTW_BAND`: a radius, or `none` for unbanded; default none.
///
/// Unbanded is the default because pruning *is* the cell-reduction
/// mechanism under test: it adapts to how similar the series actually are
/// instead of imposing a fixed alignment radius. With a narrow band both
/// implementations only touch the near-diagonal strip, the bound has
/// almost nothing left to kill, and the pruned DP's bookkeeping shows up
/// as a small regression — that regime is measurable here (`LGO_DTW_BAND=16`)
/// but is not the configuration the clustering stage ships with.
fn dtw_band() -> Option<usize> {
    match std::env::var("LGO_DTW_BAND").as_deref() {
        Err(_) | Ok("none") => None,
        Ok(v) => match v.parse::<usize>() {
            Ok(r) => Some(r),
            Err(_) => panic!("LGO_DTW_BAND = {v:?}; expected a radius or `none`"),
        },
    }
}

/// Synthetic glucose-like traces from one physiological family: a shared
/// carrier with small per-series phase/baseline jitter. Same-cohort windows
/// are mutually similar, which is exactly the regime clustering sees and
/// the regime where the pruned DP's diagonal upper bound is tight (white
/// noise or fully unrelated series would neuter pruning — and real CGM
/// cohorts are neither).
fn pseudo_series(seed: u64, len: usize) -> Vec<f64> {
    let s = lgo_runtime::split_seed(0x9e77_7001, seed);
    let phase = (s & 0xFFFF) as f64 / 65536.0 * 0.5;
    let base = 118.0 + ((s >> 16) & 0xFF) as f64 / 255.0 * 4.0;
    let wobble = ((s >> 24) & 0xFF) as f64 / 255.0 * 0.002;
    let freq = 0.035 + wobble;
    (0..len)
        .map(|t| base + 30.0 * (t as f64 * freq + phase).sin())
        .collect()
}

/// Stage 1: pairwise DTW distance matrix, legacy vs pruned/chunked.
fn stage_dtw(scale: &PerfScale, band: Option<usize>) -> StageResult {
    let series: Vec<Vec<f64>> = (0..scale.dtw_series)
        .map(|k| pseudo_series(k as u64, scale.dtw_len))
        .collect();
    let n = series.len();

    // Legacy implementation: brute-force banded DP, one pool task per pair
    // (the shape of the pre-perf-PR `dtw_distance_matrix`).
    let legacy = || -> Vec<Vec<f64>> {
        let flat = lgo_runtime::par_index_pairs(n, |i, j| dtw(&series[i], &series[j], band));
        let mut out = vec![vec![0.0; n]; n];
        for (k, d) in flat.into_iter().enumerate() {
            let (i, j) = lgo_runtime::pair_from_linear(k, n);
            out[i][j] = d;
            out[j][i] = d;
        }
        out
    };

    // Untimed probe pass with tracing forced on: how much of the banded
    // table does the upper bound actually kill on this workload?
    lgo_trace::set_enabled(Some(true));
    lgo_trace::reset();
    let _probe = dtw_distance_matrix(&series, band);
    let report = lgo_trace::snapshot();
    let cells_banded = report.counter("cluster/dtw_cells_banded").unwrap_or(0);
    let cells_pruned = report.counter("cluster/dtw_cells_pruned").unwrap_or(0);
    lgo_trace::set_enabled(None);

    let t0 = Instant::now();
    let mut reference = legacy();
    for _ in 1..scale.reps {
        reference = legacy();
    }
    let before_s = t0.elapsed().as_secs_f64();

    let t1 = Instant::now();
    let mut optimized = dtw_distance_matrix(&series, band);
    for _ in 1..scale.reps {
        optimized = dtw_distance_matrix(&series, band);
    }
    let after_s = t1.elapsed().as_secs_f64();

    let mut identical = true;
    for (ra, rb) in reference.iter().zip(&optimized) {
        for (a, b) in ra.iter().zip(rb) {
            identical &= a.to_bits() == b.to_bits();
        }
    }
    assert!(identical, "pruned DTW matrix diverged from brute force");
    StageResult {
        stage: "dtw_matrix",
        before_s,
        after_s,
        warm_s: None,
        identical,
        extra: format!(
            "\"pairs\": {}, \"series_len\": {}, \"cells_banded\": {cells_banded}, \"cells_pruned\": {cells_pruned}",
            n * (n - 1) / 2,
            scale.dtw_len
        ),
    }
}

/// One synthetic patient: benign windows cluster near a per-patient
/// baseline, malicious windows spike high. Deterministic via split seeds.
fn synth_patient(idx: usize, windows: usize) -> PatientData {
    let subset = if idx.is_multiple_of(2) { Subset::A } else { Subset::B };
    let patient = PatientId::new(subset, idx / 2 + 1);
    let mk = |seed: u64, base: f64, spread: f64, n: usize| -> Vec<Window> {
        (0..n)
            .map(|w| {
                let s = lgo_runtime::split_seed(seed, w as u64);
                (0..12)
                    .map(|t| {
                        let v = base
                            + spread
                                * (((s >> (t % 7)) & 0x3FF) as f64 / 1023.0 - 0.5)
                            + 8.0 * ((w + t) as f64 * 0.31).sin();
                        vec![v, 0.4, 0.1, 70.0]
                    })
                    .collect()
            })
            .collect()
    };
    let seed = 0xBEE5_0000 + idx as u64;
    // Messy patients (odd idx) have wider benign spread — gives the
    // strategies genuinely different rosters to learn from.
    let spread = if idx.is_multiple_of(2) { 14.0 } else { 40.0 };
    PatientData {
        patient,
        train_benign: mk(seed, 120.0, spread, windows),
        train_malicious: mk(seed ^ 0xFF, 260.0, 20.0, windows / 3),
        test_benign: mk(seed ^ 0xF0F0, 120.0, spread, windows),
        test_malicious: mk(seed ^ 0xAAAA, 260.0, 20.0, windows / 3),
    }
}

/// Stage 2: the (strategy × detector) selective-training grid, legacy
/// paths vs tiled-Gram + KernelCache + batched scoring, plus a warm pass.
fn stage_grid(scale: &PerfScale) -> StageResult {
    let cohort: Vec<PatientData> = (0..6).map(|i| synth_patient(i, scale.grid_windows)).collect();
    let ids: Vec<PatientId> = cohort.iter().map(|d| d.patient).collect();
    let less: Vec<PatientId> = ids[..3].to_vec();
    let more: Vec<PatientId> = ids[3..].to_vec();
    let strategies = [
        TrainingStrategy::LessVulnerable,
        TrainingStrategy::MoreVulnerable,
        TrainingStrategy::RandomSamples { k: 3, runs: 2, seed: 0xABCD },
        TrainingStrategy::AllPatients,
    ];
    let kinds = [DetectorKind::OcSvm, DetectorKind::Knn];
    let mut configs = lgo_bench::detector_configs(lgo_bench::Scale::Fast);
    // ν bounds the outlier fraction of the (clean, benign) training rosters;
    // the library default of 0.5 makes half the roster support vectors,
    // which is operationally silly and buries the Gram stage under SMO and
    // scoring work that no optimization is allowed to touch (both are
    // bit-pinned). 0.15 is a realistic deployment value.
    configs.ocsvm.nu = 0.15;

    let run_grid = || -> Vec<StrategyEvaluation> {
        let mut evals = Vec::new();
        for &kind in &kinds {
            for &strategy in &strategies {
                evals.push(
                    try_evaluate_strategy(strategy, kind, &cohort, &less, &more, &configs)
                        .expect("grid cell"),
                );
            }
        }
        evals
    };

    let was = lgo_detect::perf::set_optimized(false);
    let t0 = Instant::now();
    let mut reference = run_grid();
    for _ in 1..scale.reps {
        reference = run_grid();
    }
    let before_s = t0.elapsed().as_secs_f64();

    lgo_detect::perf::set_optimized(true);
    let stats_before = cache_stats();
    let t1 = Instant::now();
    let optimized = run_grid();
    let after_s_cold = t1.elapsed().as_secs_f64();
    let stats_cold = cache_stats();

    // Warm passes: every roster's Gram matrix is now cached, which is what
    // repeated grid passes (scaling runs, figure binaries sharing one
    // strategy-grid workload) actually see. The reported after time pairs
    // one cold pass with warm repeats, mirroring the legacy loop's reps.
    let t2 = Instant::now();
    let mut warm = run_grid();
    for _ in 2..scale.reps {
        warm = run_grid();
    }
    let warm_s = if scale.reps > 1 {
        t2.elapsed().as_secs_f64() / (scale.reps - 1) as f64
    } else {
        t2.elapsed().as_secs_f64()
    };
    let after_s = after_s_cold + t2.elapsed().as_secs_f64();
    let stats_warm = cache_stats();
    lgo_detect::perf::set_optimized(was);

    let mut identical = true;
    for pass in [&optimized, &warm] {
        for (a, b) in reference.iter().zip(pass.iter()) {
            for ((pa, ma), (pb, mb)) in a.per_patient.iter().zip(&b.per_patient) {
                identical &= pa == pb;
                identical &= ma.recall.to_bits() == mb.recall.to_bits();
                identical &= ma.precision.to_bits() == mb.precision.to_bits();
                identical &= ma.f1.to_bits() == mb.f1.to_bits();
            }
        }
    }
    assert!(identical, "optimized detector grid diverged from legacy paths");

    StageResult {
        stage: "detector_grid",
        before_s,
        after_s,
        warm_s: Some(warm_s),
        identical,
        extra: format!(
            "\"cells\": {}, \"cache_misses_cold\": {}, \"cache_hits_warm\": {}",
            kinds.len() * strategies.len(),
            stats_cold.misses - stats_before.misses,
            stats_warm.hits - stats_cold.hits
        ),
    }
}

fn cache_stats() -> lgo_detect::KernelCacheStats {
    lgo_detect::kernel_cache_global()
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
        .stats()
}

/// Stage 3: LSTM forward over a batch of sequences, per-timestep `step`
/// loops vs the batched gate matmuls of `forward_batch`.
fn stage_lstm(scale: &PerfScale) -> StageResult {
    let mut rng = StdRng::seed_from_u64(0x6C67_6F70);
    let cell = LstmCell::new(8, 64, &mut rng);
    let seqs: Vec<Vec<Vec<f64>>> = (0..scale.lstm_batch)
        .map(|b| {
            (0..scale.lstm_seq)
                .map(|t| {
                    (0..8)
                        .map(|j| ((b * 31 + t * 7 + j * 3) as f64 * 0.17).sin() * 0.8)
                        .collect()
                })
                .collect()
        })
        .collect();

    // Legacy: the pre-batching forward — one matvec pair per timestep,
    // collecting every hidden state like the old forward_seq trace did.
    let run_legacy = || -> Vec<Vec<Vec<f64>>> {
        seqs.iter()
            .map(|xs| {
                let mut st = LstmState::zeros(64);
                let mut hiddens = Vec::with_capacity(xs.len());
                for x in xs {
                    st = cell.step(x, &st);
                    hiddens.push(st.h.clone());
                }
                hiddens
            })
            .collect()
    };
    let t0 = Instant::now();
    let mut reference = run_legacy();
    for _ in 1..scale.reps {
        reference = run_legacy();
    }
    let before_s = t0.elapsed().as_secs_f64();

    let refs: Vec<&[Vec<f64>]> = seqs.iter().map(Vec::as_slice).collect();
    let t1 = Instant::now();
    let mut traces = cell.forward_batch(&refs);
    for _ in 1..scale.reps {
        traces = cell.forward_batch(&refs);
    }
    let after_s = t1.elapsed().as_secs_f64();

    let mut identical = true;
    for (hs, trace) in reference.iter().zip(&traces) {
        for (t, h) in hs.iter().enumerate() {
            for (a, b) in h.iter().zip(trace.hidden(t)) {
                identical &= a.to_bits() == b.to_bits();
            }
        }
    }
    assert!(identical, "batched LSTM forward diverged from step loop");
    StageResult {
        stage: "lstm_forward",
        before_s,
        after_s,
        warm_s: None,
        identical,
        extra: format!(
            "\"sequences\": {}, \"seq_len\": {}",
            scale.lstm_batch, scale.lstm_seq
        ),
    }
}

struct StageResult {
    stage: &'static str,
    before_s: f64,
    after_s: f64,
    warm_s: Option<f64>,
    identical: bool,
    extra: String,
}

fn main() {
    let scale = perf_scale();
    let band = dtw_band();
    // Single-threaded timing: the perf trajectory tracks algorithmic cost,
    // not pool scheduling (exp_scaling owns the thread-count story).
    lgo_runtime::set_threads(Some(1));
    eprintln!(
        "Perf trajectory (scale: {}, dtw band: {}, threads: 1)",
        scale.name,
        band.map_or("none".to_string(), |b| b.to_string())
    );

    // Warm-up: pool spawn + first-touch costs land here, not in a stage.
    let _ = dtw(&pseudo_series(0, 64), &pseudo_series(1, 64), None);

    let stages = [stage_dtw(&scale, band), stage_grid(&scale), stage_lstm(&scale)];
    lgo_runtime::set_threads(None);

    let rows: Vec<String> = stages
        .iter()
        .map(|s| {
            let speedup = s.before_s / s.after_s;
            eprintln!(
                "{:>14}: before {:.4} s, after {:.4} s ({speedup:.2}x){}",
                s.stage,
                s.before_s,
                s.after_s,
                s.warm_s.map_or(String::new(), |w| format!(", warm {w:.4} s")),
            );
            let warm = s
                .warm_s
                .map_or("null".to_string(), |w| format!("{w:.6}"));
            format!(
                "    {{\"stage\": \"{}\", \"before_s\": {:.6}, \"after_s\": {:.6}, \"warm_s\": {warm}, \"speedup\": {speedup:.3}, \"identical\": {}, {}}}",
                s.stage, s.before_s, s.after_s, s.identical, s.extra
            )
        })
        .collect();
    let band_field = band.map_or("null".to_string(), |b| b.to_string());
    let json = format!(
        "{{\n  \"scale\": \"{}\",\n  \"dtw_band\": {band_field},\n  \"threads\": 1,\n  \"stages\": [\n{}\n  ]\n}}\n",
        scale.name,
        rows.join(",\n")
    );
    print!("{json}");
    std::fs::create_dir_all("results").ok();
    std::fs::write("results/BENCH_perf.json", &json)
        .unwrap_or_else(|e| eprintln!("could not write results/BENCH_perf.json: {e}"));
}
