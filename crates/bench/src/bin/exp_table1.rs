//! Table I — severity coefficients for different state transitions.
//!
//! Prints the paper's exponential table plus the linear and uniform
//! alternatives used by the severity-sensitivity ablation
//! (`exp_ablation_severity`).

use lgo_core::severity::SeverityTable;
use lgo_eval::render::table;

fn main() {
    let scale = lgo_bench::Scale::from_env();
    lgo_bench::banner("Table I", "severity coefficients per state transition", scale);

    for variant in [
        SeverityTable::paper_default(),
        SeverityTable::linear(),
        SeverityTable::uniform(),
    ] {
        println!("\ncoefficient family: {}", variant.name());
        let rows: Vec<Vec<String>> = variant
            .ranked_transitions()
            .into_iter()
            .map(|(benign, adversarial, s)| {
                vec![benign.to_string(), adversarial.to_string(), format!("{s}")]
            })
            .collect();
        print!("{}", table(&["benign", "adversarial", "severity (S)"], &rows));
    }
}
