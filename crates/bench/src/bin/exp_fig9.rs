//! Figure 9 (Appendix A) — percentage of originally *normal* glucose
//! instances misdiagnosed as hyperglycemic under the URET-style attack, for
//! Subset A: one personalized model per patient, the aggregate model, and
//! the average.

use lgo_attack::cgm::OriginState;
use lgo_bench::{banner, run_origin_experiment, Scale};

fn main() {
    let scale = Scale::from_env();
    banner("Figure 9", "normal -> hyper misdiagnosis %, Subset A", scale);
    run_origin_experiment(scale, OriginState::Normal);
}
