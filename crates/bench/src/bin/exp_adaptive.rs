//! Extension experiment — the paper's §V future work: adaptive
//! re-profiling under concept drift.
//!
//! Simulates three reassessment epochs. Between epochs 1 and 2 one
//! vulnerable patient "recovers" (adopts a disciplined phenotype) — the
//! adaptive profiler must move them into the less-vulnerable cluster and
//! signal that detector retraining is due.
//!
//! Risk profiles are produced through the attack zoo's pluggable `Attack`
//! trait: `LGO_ZOO_ATTACK` selects the profiling attacker (any
//! `lgo_zoo::attack_by_name` id — `fgsm`, `pgd`, `spsa`, ...); the default
//! is the paper's maximizing URET explorer, matching the built-in
//! profiler's historical behavior.

use lgo_bench::{banner, forecast_config, profiler_config, Scale};
use lgo_cluster::Linkage;
use lgo_core::adaptive::AdaptiveProfiler;
use lgo_core::profile::PatientAttackProfile;
use lgo_forecast::GlucoseForecaster;
use lgo_glucosim::{profile, PatientId, Simulator, Subset};
use lgo_series::MultiSeries;
use lgo_zoo::uret::UretAttack;
use lgo_zoo::{attack_by_name, try_profile_patient_with, Attack, ZooConfig};

fn main() {
    let scale = Scale::from_env();
    banner("Extension", "adaptive risk profiling under concept drift", scale);
    let (train_days, _) = scale.days();
    let train_days = train_days.min(10); // drift study needs epochs, not bulk

    let profiler_cfg = profiler_config(scale);
    let zoo = ZooConfig::default();
    let attack: Box<dyn Attack> = match std::env::var("LGO_ZOO_ATTACK") {
        Ok(name) if name != "uret" => attack_by_name(&name).unwrap_or_else(|| {
            // Unknown attacker ids are a usage error, fail loudly.
            panic!("LGO_ZOO_ATTACK={name}: unknown attacker (see lgo_zoo::standard_zoo)")
        }),
        _ => Box::new(UretAttack::maximizing(profiler_cfg.explorer_steps)),
    };
    println!(
        "profiling attacker: {} ({})\n",
        attack.name(),
        attack.threat_model().name()
    );

    let ids = [
        PatientId::new(Subset::A, 2),
        PatientId::new(Subset::A, 5),
        PatientId::new(Subset::B, 2),
        PatientId::new(Subset::B, 4),
        PatientId::new(Subset::B, 5),
    ];
    let fc = forecast_config(scale);
    let build = |p: lgo_glucosim::PatientProfile| -> (GlucoseForecaster, MultiSeries) {
        let sim = Simulator::new(p);
        let data = sim.run_days(train_days);
        (GlucoseForecaster::train_personalized(&data, &fc), data)
    };

    let mut models: Vec<(GlucoseForecaster, MultiSeries)> =
        ids.iter().map(|&id| build(profile(id))).collect();
    let mut profiler = AdaptiveProfiler::new(profiler_cfg.clone(), Linkage::Average);

    for epoch in 0..3u64 {
        if epoch == 2 {
            // Concept drift: A_2 recovers to a disciplined phenotype.
            println!("\n*** drift: patient A_2 adopts disciplined habits ***");
            let mut recovered = profile(PatientId::new(Subset::A, 5));
            recovered.id = PatientId::new(Subset::A, 2);
            recovered.seed ^= 0xD21F;
            models[0] = build(recovered);
        }
        let epoch_seed = lgo_runtime::split_seed(zoo.seed, epoch);
        let profiles: Vec<PatientAttackProfile> = ids
            .iter()
            .zip(&models)
            .enumerate()
            .map(|(i, (&id, (f, s)))| {
                try_profile_patient_with(
                    attack.as_ref(),
                    f,
                    id,
                    s,
                    &profiler_cfg,
                    &zoo,
                    lgo_runtime::split_seed(epoch_seed, i as u64),
                    None,
                )
                // Simulated series always yield windows; a failure here is fatal.
                .unwrap_or_else(|e| panic!("profiling {id}: {e}"))
            })
            .collect();
        let record = profiler.reassess_profiles(profiles);
        println!("\nepoch {}:", record.epoch);
        for p in &record.profiles {
            println!(
                "  {}: attack success {:>5.1}%  {}",
                p.patient,
                p.success_rate().unwrap_or(1.0) * 100.0,
                if record.clusters.is_less_vulnerable(p.patient) {
                    "[less vulnerable]"
                } else {
                    ""
                }
            );
        }
        println!("  retraining due: {}", profiler.retraining_due());
    }

    println!("\nmembership changes across epochs:");
    for c in profiler.membership_changes() {
        println!(
            "  epoch {}: {} {}",
            c.epoch,
            c.patient,
            if c.joined_less_vulnerable {
                "joined the less-vulnerable cluster (recovered)"
            } else {
                "left the less-vulnerable cluster"
            }
        );
    }
    println!("stability: {:?}", profiler.stability());
}
