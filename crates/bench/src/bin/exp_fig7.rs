//! Figure 7 — recall of kNN, OneClassSVM and MAD-GAN under the four
//! training strategies.
//!
//! Paper headline: Less-Vulnerable training achieves the highest recall for
//! all three detectors (+27.5 % over indiscriminate training for kNN,
//! +16.8 % for OneClassSVM; MAD-GAN keeps recall 1 at 75 % less training
//! data).

use lgo_bench::{banner, print_strategy_metric, run_strategy_grid, write_trace, Scale};
use lgo_core::selective::TrainingStrategy;

fn main() {
    let scale = Scale::from_env();
    banner("Figure 7", "recall per detector x training strategy", scale);
    let report = run_strategy_grid(scale);
    print_strategy_metric(&report, "recall", |e| e.recall_stats());

    println!("\nheadline comparisons (LV vs All Patients, mean recall):");
    for kind in lgo_core::selective::DetectorKind::all() {
        let lv = report
            .evaluation(TrainingStrategy::LessVulnerable, kind)
            .expect("LV evaluated");
        let all = report
            .evaluation(TrainingStrategy::AllPatients, kind)
            .expect("All evaluated");
        let increase = (lv.mean_recall() - all.mean_recall()) / all.mean_recall().max(1e-9);
        println!(
            "  {:<12} LV {:.3} vs All {:.3}  ({:+.1}%)   [paper: kNN +27.5%, OCSVM +16.8%, MAD-GAN equal at -75% data]",
            kind.name(),
            lv.mean_recall(),
            all.mean_recall(),
            increase * 100.0
        );
    }
    write_trace("exp_fig7");
}
