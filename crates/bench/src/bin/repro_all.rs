//! Runs the complete evaluation in one process: the shared pipeline once,
//! then every pipeline-derived table/figure, so a full reproduction needs a
//! single command:
//!
//! ```text
//! LGO_SCALE=paper cargo run -p lgo-bench --release --bin repro_all
//! ```
//!
//! (Figures 9/10 and the ablations run their own campaigns and are printed
//! at the end; they can also be run individually via their `exp_*` bins.)

use lgo_attack::cgm::OriginState;
use lgo_bench::{banner, print_strategy_metric, run_origin_experiment, run_strategy_grid, Scale};
use lgo_core::selective::TrainingStrategy;
use lgo_core::severity::SeverityTable;
use lgo_eval::render::table;

fn main() {
    let scale = Scale::from_env();
    let t0 = std::time::Instant::now();

    // ---- Table I ----------------------------------------------------
    banner("Table I", "severity coefficients", scale);
    let severity = SeverityTable::paper_default();
    let rows: Vec<Vec<String>> = severity
        .ranked_transitions()
        .into_iter()
        .map(|(b, a, s)| vec![b.to_string(), a.to_string(), format!("{s}")])
        .collect();
    print!("{}", table(&["benign", "adversarial", "severity (S)"], &rows));

    // ---- Shared pipeline: steps 1-5 at full strategy/detector grid ---
    banner("Pipeline", "steps 1-5 over the cohort", scale);
    let report = run_strategy_grid(scale);
    println!("pipeline completed in {:?}", t0.elapsed());

    // ---- Table II ----------------------------------------------------
    banner("Table II", "vulnerability clusters", scale);
    let fmt = |ids: &[lgo_glucosim::PatientId]| {
        let mut v: Vec<String> = ids.iter().map(|p| p.to_string()).collect();
        v.sort();
        v.join(", ")
    };
    println!("less vulnerable: {}", fmt(&report.clusters.less_vulnerable));
    println!("more vulnerable: {}", fmt(&report.clusters.more_vulnerable));
    println!("paper:           less = A_5, B_1, B_2");

    // ---- Figure 3 ------------------------------------------------------
    banner("Figure 3", "dendrograms per subset", scale);
    for (subset, clusters) in &report.clusters.per_subset {
        println!("Subset {subset}:");
        print!(
            "{}",
            clusters.dendrogram.render_ascii_with(Some(&clusters.labels))
        );
    }

    // ---- Figure 4 ------------------------------------------------------
    banner("Figure 4", "benign normal:abnormal ratios", scale);
    let thresholds = lgo_core::state::StateThresholds::default();
    for d in &report.datasets {
        let mut normal = 0usize;
        let mut abnormal = 0usize;
        for series in [&d.train, &d.test] {
            let cgm = series.channel("cgm").expect("cgm");
            let fasting = series.channel("fasting").expect("fasting");
            for (&g, &f) in cgm.iter().zip(&fasting) {
                // lint: allow(L4): fasting is a 0/1 flag channel stored exactly
                match thresholds.classify(g, f == 1.0) {
                    lgo_core::state::GlucoseState::Normal => normal += 1,
                    _ => abnormal += 1,
                }
            }
        }
        println!(
            "  {:<4} ratio {:>8.2}",
            d.profile.id.to_string(),
            normal as f64 / (abnormal.max(1)) as f64
        );
    }

    // ---- Figures 7, 8, 11 ---------------------------------------------
    banner("Figure 7", "recall", scale);
    print_strategy_metric(&report, "recall", |e| e.recall_stats());
    banner("Figure 8", "precision", scale);
    print_strategy_metric(&report, "precision", |e| e.precision_stats());
    banner("Figure 11", "F1", scale);
    print_strategy_metric(&report, "F1", |e| e.f1_stats());

    // ---- Appendix D -----------------------------------------------------
    banner("Appendix D", "generalization to unseen patients", scale);
    for e in report
        .evaluations
        .iter()
        .filter(|e| e.strategy == TrainingStrategy::LessVulnerable)
    {
        let mv: Vec<f64> = e
            .per_patient
            .iter()
            .filter(|(id, _)| !report.clusters.is_less_vulnerable(*id))
            .map(|(_, m)| m.recall)
            .collect();
        let mv_mean = mv.iter().sum::<f64>() / mv.len().max(1) as f64;
        println!(
            "  {:<12} recall all {:.3} | unseen-only {:.3}",
            e.detector.name(),
            e.mean_recall(),
            mv_mean
        );
    }

    // ---- Figures 9 & 10 -------------------------------------------------
    banner("Figure 9", "normal -> hyper misdiagnosis %, Subset A", scale);
    run_origin_experiment(scale, OriginState::Normal);
    banner("Figure 10", "hypo -> hyper misdiagnosis %, Subset A", scale);
    run_origin_experiment(scale, OriginState::Hypo);

    println!("\ntotal wall time: {:?}", t0.elapsed());
}
