//! Figure 4 — ratio of normal to abnormal data points in the benign trace
//! of every patient.
//!
//! Less-vulnerable patients should show the highest ratios; the paper's
//! most vulnerable patient (A_2) the lowest.

use lgo_bench::{banner, Scale};
use lgo_core::quadrant::QuadrantCounts;
use lgo_core::state::StateThresholds;
use lgo_eval::render::bar_chart;
use lgo_glucosim::{generate_cohort_sized, SAMPLES_PER_DAY};

fn main() {
    let scale = Scale::from_env();
    banner("Figure 4", "benign normal:abnormal ratio per patient", scale);
    let (train_days, test_days) = scale.days();
    let cohort = generate_cohort_sized(train_days, test_days);
    let thresholds = StateThresholds::default();

    let mut items = Vec::new();
    for d in &cohort {
        // The benign trace = the whole simulated period (train + test).
        let mut counts = QuadrantCounts::default();
        for series in [&d.train, &d.test] {
            let cgm = series.channel("cgm").expect("cgm channel");
            let fasting = series.channel("fasting").expect("fasting channel");
            let c = QuadrantCounts::tally(
                // lint: allow(L4): fasting is a 0/1 flag channel stored exactly
                cgm.iter().zip(&fasting).map(|(&g, &f)| (g, f == 1.0, false)),
                &thresholds,
            );
            counts.benign_normal += c.benign_normal;
            counts.benign_abnormal += c.benign_abnormal;
        }
        let ratio = counts.benign_normal_abnormal_ratio().unwrap_or(f64::INFINITY);
        items.push((d.profile.id.to_string(), ratio));
    }

    println!(
        "\n({} samples per patient at 5-minute cadence)",
        (train_days + test_days) * SAMPLES_PER_DAY
    );
    print!("{}", bar_chart(&items, 48));
    println!("\npaper: A_5 and B_2 show the highest ratios; A_2 the lowest.");

    // Sanity summary: is the designed ordering present?
    let get = |name: &str| items.iter().find(|(n, _)| n == name).map(|&(_, v)| v).unwrap();
    let trio_min = get("A_5").min(get("B_1")).min(get("B_2"));
    let rest_max = items
        .iter()
        .filter(|(n, _)| n != "A_5" && n != "B_1" && n != "B_2")
        .map(|&(_, v)| v)
        .fold(f64::MIN, f64::max);
    println!(
        "reproduced: min(less-vulnerable trio) = {trio_min:.2}, max(rest) = {rest_max:.2} -> trio on top: {}",
        trio_min > rest_max
    );
}
