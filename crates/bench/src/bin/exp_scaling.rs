//! Runtime scaling curve — pipeline wall-clock vs `LGO_THREADS`.
//!
//! Runs the full five-step pipeline at thread counts 1, 2, 4 and 8,
//! measures wall-clock time per run, and verifies the determinism
//! contract: the canonical export of every multi-threaded run must be
//! **byte-identical** to the single-threaded one. Results (including the
//! machine's actual core count — speedup is bounded by physical cores, so
//! a reader must be able to judge the curve against the hardware that
//! produced it) are written to `BENCH_scaling.json`.
//!
//! ```text
//! LGO_SCALE=fast cargo run -p lgo-bench --release --bin exp_scaling
//! ```

use std::time::Instant;

use lgo_core::error::LgoError;
use lgo_core::export::canonical_json;
use lgo_core::pipeline::try_run_pipeline;

use lgo_bench::{pipeline_config, write_trace, Scale};

fn main() -> Result<(), LgoError> {
    let scale = Scale::from_env();
    // Progress goes to stderr; stdout carries the JSON document, which is
    // also written to BENCH_scaling.json.
    eprintln!(
        "Scaling — pipeline wall-clock vs thread count (scale: {})",
        scale.name()
    );
    let config = pipeline_config(scale);
    let cores = std::thread::available_parallelism().map_or(1, std::num::NonZero::get);
    // The ambient LGO_THREADS setting (overridden per run below, but
    // recorded so a speedup-below-1 curve on a small container is
    // interpretable PR over PR).
    let threads_env = std::env::var("LGO_THREADS").ok();
    eprintln!(
        "machine reports {cores} available core(s); LGO_THREADS={}",
        threads_env.as_deref().unwrap_or("<unset>")
    );

    // Warm-up: first run pays one-off costs (pool spawn, page faults)
    // that would otherwise be charged to whichever thread count runs
    // first.
    lgo_runtime::set_threads(Some(1));
    let _ = try_run_pipeline(&config)?;

    let thread_counts = [1usize, 2, 4, 8];
    let mut times = Vec::with_capacity(thread_counts.len());
    let mut reference: Option<String> = None;
    let mut all_identical = true;
    for &t in &thread_counts {
        lgo_runtime::set_threads(Some(t));
        let start = Instant::now();
        let report = try_run_pipeline(&config)?;
        let secs = start.elapsed().as_secs_f64();
        let export = canonical_json(&report);
        let identical = match &reference {
            None => {
                reference = Some(export);
                true
            }
            Some(r) => r == &export,
        };
        all_identical &= identical;
        eprintln!(
            "threads {t}: {secs:.3} s, export identical to serial: {identical}"
        );
        times.push((t, secs, identical));
    }
    lgo_runtime::set_threads(None);

    let base = times[0].1;
    let rows: Vec<String> = times
        .iter()
        .map(|&(t, secs, identical)| {
            format!(
                "    {{\"threads\": {t}, \"seconds\": {secs:.4}, \"speedup\": {:.3}, \"identical_output\": {identical}}}",
                base / secs
            )
        })
        .collect();
    let threads_field = match &threads_env {
        Some(v) => format!("\"{}\"", v.replace('"', "")),
        None => "null".to_string(),
    };
    let json = format!(
        "{{\n  \"scale\": \"{}\",\n  \"available_cores\": {cores},\n  \"lgo_threads_env\": {threads_field},\n  \"deterministic\": {all_identical},\n  \"runs\": [\n{}\n  ]\n}}\n",
        scale.name(),
        rows.join(",\n")
    );
    print!("{json}");
    std::fs::write("BENCH_scaling.json", &json)
        .unwrap_or_else(|e| eprintln!("could not write BENCH_scaling.json: {e}"));

    assert!(
        all_identical,
        "determinism violation: multi-threaded export differs from serial"
    );
    write_trace("exp_scaling");
    Ok(())
}
