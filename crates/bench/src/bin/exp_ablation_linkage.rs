//! Ablation — sensitivity of the vulnerability clusters to the
//! hierarchical-clustering linkage criterion (step 4 design choice).

use lgo_bench::{banner, pipeline_config, Scale};
use lgo_cluster::Linkage;
use lgo_core::pipeline::run_pipeline;
use lgo_core::selective::{DetectorKind, TrainingStrategy};
use lgo_eval::render::table;

fn main() {
    let scale = Scale::from_env();
    banner("Ablation", "linkage sensitivity of the clusters", scale);

    let mut rows = Vec::new();
    let mut memberships = Vec::new();
    for linkage in [
        Linkage::Single,
        Linkage::Complete,
        Linkage::Average,
        Linkage::Ward,
    ] {
        let mut config = pipeline_config(scale);
        config.linkage = linkage;
        config.strategies = vec![TrainingStrategy::AllPatients];
        config.detector_kinds = vec![DetectorKind::Knn];
        let report = run_pipeline(&config);
        let mut less: Vec<String> = report
            .clusters
            .less_vulnerable
            .iter()
            .map(|p| p.to_string())
            .collect();
        less.sort();
        rows.push(vec![format!("{linkage:?}"), less.join(", ")]);
        memberships.push(less);
    }
    println!("\nless-vulnerable cluster per linkage:");
    print!("{}", table(&["linkage", "less vulnerable"], &rows));
    let stable = memberships.iter().all(|m| m == &memberships[0]);
    println!("\ncluster membership stable across linkages: {stable}");
}
