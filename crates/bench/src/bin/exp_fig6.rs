//! Figure 6 — the four quadrants of glucose samples: benign/malicious ×
//! normal/abnormal.
//!
//! Tallies the cohort's samples into the quadrant taxonomy and prints the
//! counts per patient group, showing why benign-abnormal density drives
//! false negatives.

use lgo_bench::{banner, pipeline_config, Scale};
use lgo_core::pipeline::run_pipeline;
use lgo_core::quadrant::QuadrantCounts;
use lgo_core::selective::{DetectorKind, TrainingStrategy};
use lgo_core::state::StateThresholds;
use lgo_eval::render::table;

fn main() {
    let scale = Scale::from_env();
    banner("Figure 6", "quadrant taxonomy of glucose samples", scale);

    let mut config = pipeline_config(scale);
    config.strategies = vec![TrainingStrategy::AllPatients];
    config.detector_kinds = vec![DetectorKind::Knn];
    let report = run_pipeline(&config);
    let thresholds = StateThresholds::default();

    let mut rows = Vec::new();
    for p in &report.profiles {
        // Benign samples: the original last CGM value of every attacked
        // window; malicious samples: the manipulated one.
        let mut samples = Vec::new();
        for o in &p.campaign.outcomes {
            let adv_last = o.result.best_input.last().expect("nonempty window")[0];
            samples.push((adv_last, o.fasting, o.result.steps > 0));
        }
        let data = report
            .cohort
            .iter()
            .find(|d| d.patient == p.patient)
            .expect("cohort entry");
        for w in &data.test_benign {
            let last = w.last().expect("nonempty window")[0];
            // Benign windows carry no fasting flag; classify against the
            // postprandial threshold (conservative).
            samples.push((last, false, false));
        }
        let c = QuadrantCounts::tally(samples, &thresholds);
        rows.push(vec![
            p.patient.to_string(),
            c.benign_normal.to_string(),
            c.benign_abnormal.to_string(),
            c.malicious_normal.to_string(),
            c.malicious_abnormal.to_string(),
            c.benign_normal_abnormal_ratio()
                .map_or("inf".into(), |r| format!("{r:.2}")),
        ]);
    }
    print!(
        "{}",
        table(
            &[
                "patient",
                "benign normal",
                "benign abnormal",
                "malicious normal",
                "malicious abnormal",
                "bn:ba ratio",
            ],
            &rows,
        )
    );
    println!(
        "\nMalicious samples land almost entirely in the abnormal quadrant (the attack\n\
         pushes values into hyperglycemic ranges); patients with many *benign* abnormal\n\
         samples give detectors cover to miss them — the false-negative mechanism."
    );
}
