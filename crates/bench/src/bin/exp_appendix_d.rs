//! Appendix D — overfitting check: detectors trained only on the
//! less-vulnerable patients are tested separately on (a) the full cohort
//! and (b) only the more-vulnerable patients, who were never seen in
//! training.
//!
//! Paper headline: the detection rates on the unseen more-vulnerable
//! patients are similar to the full-cohort rates, i.e. selective training
//! does not overfit to the less-vulnerable cluster.

use lgo_bench::{banner, run_strategy_grid, Scale};
use lgo_core::selective::TrainingStrategy;
use lgo_eval::render::table;

fn main() {
    let scale = Scale::from_env();
    banner("Appendix D", "generalization of LV-trained detectors", scale);
    let report = run_strategy_grid(scale);

    let mut rows = Vec::new();
    for e in report
        .evaluations
        .iter()
        .filter(|e| e.strategy == TrainingStrategy::LessVulnerable)
    {
        let mv_only: Vec<f64> = e
            .per_patient
            .iter()
            .filter(|(id, _)| !report.clusters.is_less_vulnerable(*id))
            .map(|(_, m)| m.recall)
            .collect();
        let lv_only: Vec<f64> = e
            .per_patient
            .iter()
            .filter(|(id, _)| report.clusters.is_less_vulnerable(*id))
            .map(|(_, m)| m.recall)
            .collect();
        let mean = |v: &[f64]| {
            if v.is_empty() {
                f64::NAN
            } else {
                v.iter().sum::<f64>() / v.len() as f64
            }
        };
        rows.push(vec![
            e.detector.name().to_string(),
            format!("{:.3}", e.mean_recall()),
            format!("{:.3}", mean(&mv_only)),
            format!("{:.3}", mean(&lv_only)),
        ]);
    }
    println!("\nrecall of LV-trained detectors by test population:");
    print!(
        "{}",
        table(
            &[
                "detector",
                "all patients",
                "unseen (more vulnerable)",
                "seen (less vulnerable)",
            ],
            &rows,
        )
    );
    println!(
        "\npaper: rates on the unseen more-vulnerable patients are similar to the\n\
         full-test rates, indicating resilience to overfitting."
    );
}
