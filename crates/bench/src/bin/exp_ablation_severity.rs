//! Ablation — sensitivity of the vulnerability clusters to the severity
//! coefficient family (the paper's §V limitation 4 / future work).
//!
//! Reruns steps 1–4 under the exponential (Table I), linear and uniform
//! coefficient tables and compares the resulting cluster memberships.

use lgo_bench::{banner, pipeline_config, Scale};
use lgo_core::pipeline::run_pipeline;
use lgo_core::selective::{DetectorKind, TrainingStrategy};
use lgo_core::severity::SeverityTable;
use lgo_eval::render::table;

fn main() {
    let scale = Scale::from_env();
    banner(
        "Ablation",
        "severity-coefficient sensitivity of the clusters",
        scale,
    );

    let mut memberships: Vec<(String, Vec<String>)> = Vec::new();
    for severity in [
        SeverityTable::paper_default(),
        SeverityTable::linear(),
        SeverityTable::uniform(),
    ] {
        let name = severity.name().to_string();
        let mut config = pipeline_config(scale);
        config.profiler.severity = severity;
        config.strategies = vec![TrainingStrategy::AllPatients];
        config.detector_kinds = vec![DetectorKind::Knn];
        let report = run_pipeline(&config);
        let mut less: Vec<String> = report
            .clusters
            .less_vulnerable
            .iter()
            .map(|p| p.to_string())
            .collect();
        less.sort();
        memberships.push((name, less));
    }

    let rows: Vec<Vec<String>> = memberships
        .iter()
        .map(|(name, less)| vec![name.clone(), less.join(", ")])
        .collect();
    println!("\nless-vulnerable cluster per coefficient family:");
    print!("{}", table(&["severity family", "less vulnerable"], &rows));

    let reference = &memberships[0].1;
    let stable = memberships.iter().all(|(_, m)| m == reference);
    println!(
        "\ncluster membership stable across coefficient families: {stable}\n\
         (the paper flags coefficient choice as a threat to validity; stability\n\
         here means the exponential-vs-linear choice does not drive the result)"
    );
}
