//! Online serving robustness benchmark — `lgo-serve` under hostile load.
//!
//! Drives a large synthetic cohort (streamed lazily from `lgo-glucosim`,
//! one deterministic `split_seed` patient at a time) through the scoring
//! service while injecting the failure modes a production BGMS must
//! survive: producers that outrun scoring (backpressure + load-shedding),
//! detectors that stall mid-call (watchdog deadlines), and poisoned
//! patient streams that panic the model (quarantine). The process must
//! finish alive, with bounded memory, and account for every sample.
//!
//! Results go to `BENCH_serve.json`: sustained throughput, micro-batch
//! tail latency, and the shed/degrade/quarantine counters.
//!
//! ```text
//! LGO_SCALE=fast LGO_SERVE_PATIENTS=300 \
//!     cargo run -p lgo-bench --release --bin bench_serve
//! ```
//!
//! Knobs (see EXPERIMENTS.md): `LGO_SERVE_PATIENTS`, `LGO_SERVE_SAMPLES`,
//! `LGO_SERVE_PRODUCERS`, plus the `ServeConfig::from_env` set
//! (`LGO_SERVE_CAPACITY`, `LGO_SERVE_BATCH`, `LGO_SERVE_DEADLINE_MS`,
//! `LGO_SERVE_RETRIES`, `LGO_SERVE_BACKOFF_MS`, `LGO_SERVE_MAX_WEDGED`,
//! `LGO_SERVE_SHED`).

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use lgo_bench::{detector_configs, write_trace, Scale};
use lgo_core::pipeline::benign_windows;
use lgo_core::selective::{try_train_detector, DetectorKind};
use lgo_detect::{AnomalyDetector, Window};
use lgo_forecast::FEATURES;
use lgo_glucosim::CohortStream;
use lgo_serve::{
    DetectorBank, PanickingDetector, Sample, ScoringService, ServeConfig, StallingDetector,
    POISON,
};

/// Base seed of the synthetic cohort (and, split per index, of every
/// patient in it).
const BASE_SEED: u64 = 0x5EED_CAFE;

/// Every `POISON_PERIOD`-th patient streams poisoned rows.
const POISON_PERIOD: u64 = 97;

fn env_u64(key: &str, default: u64) -> u64 {
    match std::env::var(key) {
        Ok(v) => v.trim().parse().unwrap_or(default),
        Err(_) => default,
    }
}

/// Trains the MAD-GAN → OC-SVM → kNN ladder on benign windows from the
/// twelve archetype patients, then wraps it with the fault injectors.
fn build_ladder(config: &ServeConfig) -> DetectorBank {
    // Deliberately the smoke-scale detector configs at every LGO_SCALE:
    // this bench measures the serving layer, not detector quality, and
    // cohort size is the axis that should grow with scale.
    let cfgs = detector_configs(Scale::Fast);
    let mut benign: Vec<Window> = Vec::new();
    for p in CohortStream::new(4, 1, BASE_SEED) {
        benign.extend(benign_windows(&p.series, config.seq_len, config.stride));
    }
    // Synthetic malicious windows for the supervised kNN: spoofed CGM
    // readings shifted far out of the benign band.
    let malicious: Vec<Window> = benign
        .iter()
        .map(|w| {
            let mut m = w.clone();
            for row in &mut m {
                row[0] += 90.0;
            }
            m
        })
        .collect();
    let deadline = config.deadline.unwrap_or(Duration::from_millis(250));
    let stall_period = env_u64("LGO_SERVE_STALL_PERIOD", 40);
    let mut levels: Vec<Arc<dyn AnomalyDetector>> = Vec::new();
    for kind in [DetectorKind::MadGan, DetectorKind::OcSvm, DetectorKind::Knn] {
        let trained = try_train_detector(kind, &benign, &malicious, &cfgs)
            .unwrap_or_else(|e| panic!("training {} failed: {e}", kind.name()));
        // Every level panics on poisoned windows (a crash does not care
        // which model it crashes); only the expensive primary stalls.
        let panicking = PanickingDetector::new(trained);
        if kind == DetectorKind::MadGan {
            levels.push(Arc::new(StallingDetector::new(
                panicking,
                stall_period,
                deadline.saturating_mul(2),
            )));
        } else {
            levels.push(Arc::new(panicking));
        }
    }
    DetectorBank::new(levels)
}

fn percentile(sorted_ms: &[f64], p: f64) -> f64 {
    if sorted_ms.is_empty() {
        return 0.0;
    }
    let idx = ((sorted_ms.len() - 1) as f64 * p).round() as usize;
    sorted_ms[idx.min(sorted_ms.len() - 1)]
}

fn main() {
    let scale = Scale::from_env();
    let patients = env_u64(
        "LGO_SERVE_PATIENTS",
        match scale {
            Scale::Fast => 300,
            Scale::Mid => 10_000,
            Scale::Paper => 100_000,
        },
    );
    let samples_per_patient = env_u64("LGO_SERVE_SAMPLES", 24).max(1);
    let producers = env_u64("LGO_SERVE_PRODUCERS", 4).max(1) as usize;
    let mut config = ServeConfig::from_env();
    if std::env::var("LGO_SERVE_DEADLINE_MS").is_err() {
        // The bench exercises the watchdog by default; tests that need
        // determinism ask for inline mode explicitly.
        config.deadline = Some(Duration::from_millis(250));
    }

    eprintln!("bench_serve — online scoring under backpressure (scale: {})", scale.name());
    eprintln!(
        "cohort: {patients} patients x {samples_per_patient} samples, {producers} producer(s), \
         queue capacity {}, batch {}, deadline {:?}",
        config.capacity, config.batch_max, config.deadline
    );

    let t_train = Instant::now();
    let bank = build_ladder(&config);
    eprintln!(
        "ladder trained in {:.1} s: {}",
        t_train.elapsed().as_secs_f64(),
        bank.names().join(" -> ")
    );

    // The injected per-patient crashes are expected by the thousands at
    // paper scale; keep their backtraces off stderr while leaving every
    // other panic's report intact.
    let default_hook = std::panic::take_hook();
    std::panic::set_hook(Box::new(move |info| {
        let injected = info
            .payload()
            .downcast_ref::<String>()
            .is_some_and(|s| s.contains("poisoned window"))
            || info
                .payload()
                .downcast_ref::<&str>()
                .is_some_and(|s| s.contains("poisoned window"));
        if !injected {
            default_hook(info);
        }
    }));

    let days = (samples_per_patient as usize).div_ceil(lgo_glucosim::SAMPLES_PER_DAY);
    let service = Arc::new(ScoringService::new(config.clone(), bank));
    let producer_dropped = Arc::new(AtomicU64::new(0));

    // Producers partition the patient index space; each regenerates its
    // patients lazily from the shared base seed, so total producer memory
    // is one patient's series per thread, regardless of cohort size.
    let t0 = Instant::now();
    let mut handles = Vec::new();
    for shard in 0..producers as u64 {
        let svc = Arc::clone(&service);
        let dropped = Arc::clone(&producer_dropped);
        handles.push(std::thread::spawn(move || {
            let stream = CohortStream::new(patients, days, BASE_SEED);
            let mut idx = shard;
            while idx < patients {
                let patient = stream.patient(idx);
                let rows = patient.series.select(&FEATURES);
                let poisoned = idx.is_multiple_of(POISON_PERIOD);
                for row in rows.rows().iter().take(samples_per_patient as usize) {
                    let mut row = row.clone();
                    if poisoned {
                        row[0] = POISON;
                    }
                    let sample = Sample { patient: idx, row };
                    // Bounded retry against backpressure, then the
                    // producer owns the loss.
                    let mut delivered = false;
                    for _ in 0..50 {
                        if svc.try_ingest(sample.clone()) {
                            delivered = true;
                            break;
                        }
                        std::thread::sleep(Duration::from_micros(200));
                    }
                    if !delivered {
                        dropped.fetch_add(1, Ordering::Relaxed);
                    }
                }
                idx += producers as u64;
            }
        }));
    }

    // Scoring loop on this thread: drain until the producers are done and
    // the queue is dry. Per-cycle wall time is the micro-batch latency.
    let mut latencies_ms: Vec<f64> = Vec::new();
    loop {
        let cycle_start = Instant::now();
        let outcome = service.drain_cycle();
        if outcome.drained > 0 {
            latencies_ms.push(cycle_start.elapsed().as_secs_f64() * 1e3);
        } else {
            let producers_done = handles.iter().all(std::thread::JoinHandle::is_finished);
            if producers_done && service.is_drained() {
                break;
            }
            std::thread::sleep(Duration::from_millis(1));
        }
    }
    for h in handles {
        let _ = h.join();
    }
    let elapsed = t0.elapsed().as_secs_f64();

    let report = service.report();
    let s = &report.stats;
    let dropped = producer_dropped.load(Ordering::Relaxed);
    latencies_ms.sort_by(f64::total_cmp);
    let throughput = s.drained as f64 / elapsed;

    println!("\nsustained throughput: {throughput:.0} samples/s over {elapsed:.1} s");
    println!(
        "micro-batch latency ms: p50 {:.2}  p95 {:.2}  p99 {:.2}  max {:.2}",
        percentile(&latencies_ms, 0.50),
        percentile(&latencies_ms, 0.95),
        percentile(&latencies_ms, 0.99),
        percentile(&latencies_ms, 1.0),
    );
    println!(
        "ingested {} rejected {} drained {} producer-dropped {dropped}",
        s.ingested, s.rejected, s.drained
    );
    println!(
        "windows: emitted {} scored {} shed {} anomalies {} per-level {:?}",
        s.windows_emitted, s.windows_scored, s.windows_shed, s.anomalies, s.level_windows
    );
    println!(
        "cycles: {} degraded {} shed {}; watchdog: misses {} retries {} gave-up {}",
        s.cycles,
        s.degraded_cycles,
        s.shed_cycles,
        report.watchdog.deadline_misses,
        report.watchdog.retries,
        report.watchdog.gave_up
    );
    println!(
        "quarantined {} patient(s) after {} captured panic(s)",
        report.quarantined.len(),
        s.panics
    );

    let json = format!(
        "{{\n  \"scale\": \"{}\",\n  \"patients\": {patients},\n  \"samples_per_patient\": {samples_per_patient},\n  \"producers\": {producers},\n  \"elapsed_seconds\": {elapsed:.3},\n  \"throughput_samples_per_sec\": {throughput:.1},\n  \"latency_ms\": {{\"p50\": {:.3}, \"p95\": {:.3}, \"p99\": {:.3}, \"max\": {:.3}}},\n  \"producer_dropped\": {dropped},\n  \"report\": {}\n}}\n",
        scale.name(),
        percentile(&latencies_ms, 0.50),
        percentile(&latencies_ms, 0.95),
        percentile(&latencies_ms, 0.99),
        percentile(&latencies_ms, 1.0),
        report.to_json(),
    );
    std::fs::write("BENCH_serve.json", &json)
        .unwrap_or_else(|e| eprintln!("could not write BENCH_serve.json: {e}"));
    println!("\nwrote BENCH_serve.json");

    // The robustness contract this bench exists to demonstrate: injected
    // panics quarantined streams instead of killing the process, and
    // every sample is accounted for.
    assert!(s.panics > 0, "poison injection produced no captured panics");
    assert!(
        !report.quarantined.is_empty(),
        "captured panics must quarantine patients"
    );
    assert_eq!(
        s.ingested,
        s.drained,
        "accepted samples must all be drained"
    );
    write_trace("serve");
}
