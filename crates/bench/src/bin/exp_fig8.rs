//! Figure 8 — precision of kNN, OneClassSVM and MAD-GAN under the four
//! training strategies.
//!
//! Paper headline: Less-Vulnerable training costs kNN ~5 % precision
//! (recall/precision trade-off) while OneClassSVM *gains* 7.5 %; MAD-GAN's
//! precision is strategy-insensitive.

use lgo_bench::{banner, print_strategy_metric, run_strategy_grid, write_trace, Scale};
use lgo_core::selective::TrainingStrategy;

fn main() {
    let scale = Scale::from_env();
    banner("Figure 8", "precision per detector x training strategy", scale);
    let report = run_strategy_grid(scale);
    print_strategy_metric(&report, "precision", |e| e.precision_stats());

    println!("\nheadline comparisons (LV vs All Patients, mean precision):");
    for kind in lgo_core::selective::DetectorKind::all() {
        let lv = report
            .evaluation(TrainingStrategy::LessVulnerable, kind)
            .expect("LV evaluated");
        let all = report
            .evaluation(TrainingStrategy::AllPatients, kind)
            .expect("All evaluated");
        let change = (lv.mean_precision() - all.mean_precision()) / all.mean_precision().max(1e-9);
        println!(
            "  {:<12} LV {:.3} vs All {:.3}  ({:+.1}%)   [paper: kNN -5%, OCSVM +7.5%, MAD-GAN similar]",
            kind.name(),
            lv.mean_precision(),
            all.mean_precision(),
            change * 100.0
        );
    }
    write_trace("exp_fig8");
}
