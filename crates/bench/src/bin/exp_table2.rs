//! Table II — clusters of patient vulnerability to the URET-style attack.
//!
//! Runs steps 1–4 of the risk-profiling framework on the cohort and prints
//! the resulting less/more-vulnerable membership per subset, next to the
//! paper's reference clusters (less vulnerable: A_5, B_1, B_2).

use lgo_bench::{banner, percent_or_na, pipeline_config, write_trace, Scale};
use lgo_core::pipeline::run_pipeline;
use lgo_core::selective::{DetectorKind, TrainingStrategy};
use lgo_eval::render::table;

fn main() {
    let scale = Scale::from_env();
    banner("Table II", "clusters of patient vulnerability", scale);

    let mut config = pipeline_config(scale);
    // Steps 1-4 only: skip the detector evaluations.
    config.strategies = vec![TrainingStrategy::AllPatients];
    config.detector_kinds = vec![DetectorKind::Knn];
    let report = run_pipeline(&config);

    println!("\nper-patient campaign outcomes:");
    let rows: Vec<Vec<String>> = report
        .profiles
        .iter()
        .map(|p| {
            vec![
                p.patient.to_string(),
                percent_or_na(p.success_rate()),
                format!("{:.0}", p.risk_profile.mean()),
                format!("{:.2}", p.risk_profile.active_fraction()),
                if report.clusters.is_less_vulnerable(p.patient) {
                    "LESS vulnerable".into()
                } else {
                    "more vulnerable".into()
                },
            ]
        })
        .collect();
    print!(
        "{}",
        table(
            &["patient", "attack success", "mean risk", "active frac", "cluster"],
            &rows,
        )
    );

    let fmt = |ids: &[lgo_glucosim::PatientId]| {
        let mut v: Vec<String> = ids.iter().map(|p| p.to_string()).collect();
        v.sort();
        v.join(", ")
    };
    println!("\nreproduced clusters:");
    println!("  less vulnerable: {}", fmt(&report.clusters.less_vulnerable));
    println!("  more vulnerable: {}", fmt(&report.clusters.more_vulnerable));
    println!("\npaper (Table II):");
    println!("  less vulnerable: A_5, B_1, B_2");
    println!("  more vulnerable: A_0, A_1, A_2, A_3, A_4, B_0, B_3, B_4, B_5");
    write_trace("exp_table2");
}
