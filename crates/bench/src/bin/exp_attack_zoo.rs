//! Attack-zoo experiment: every attacker in `lgo-zoo` (URET baseline,
//! FGSM/BIM/PGD/CW white-box, SPSA black-box, calibration-drift and
//! cluster-poisoning defense-aware) versus the LGO-selective and
//! no-defense detector configurations.
//!
//! Knobs: `LGO_SCALE=fast|mid|paper` picks the cohort/fidelity tier;
//! `LGO_ZOO_EPS` (mg/dL, default 75) and `LGO_ZOO_STEPS` (default 8)
//! override the shared perturbation budget and iteration count.
//!
//! Writes the canonical-JSON report to `results/BENCH_attack_zoo.json`
//! (byte-identical at any `LGO_THREADS`; pinned by `tests/attack_zoo.rs`).

use lgo_bench::{banner, percent_or_na, pipeline_config, write_trace, Scale};
use lgo_glucosim::PatientId;
use lgo_zoo::{run_attack_zoo, ZooConfig, ZooExperimentConfig};

/// Maps the shared bench scale onto a zoo study configuration.
fn config_for(scale: Scale) -> ZooExperimentConfig {
    let pc = pipeline_config(scale);
    ZooExperimentConfig {
        patients: pc.patients.unwrap_or_else(PatientId::all),
        train_days: pc.train_days,
        test_days: pc.test_days,
        forecast: pc.forecast,
        profiler: pc.profiler,
        detectors: pc.detectors,
        zoo: ZooConfig::default(),
        train_attack_stride: pc.train_attack_stride,
        detector_stride: pc.detector_stride,
    }
}

/// Parses a positive numeric env override, ignoring unset/invalid values.
fn env_parse<T: std::str::FromStr + PartialOrd + Default>(key: &str) -> Option<T> {
    let value: T = std::env::var(key).ok()?.parse().ok()?;
    (value > T::default()).then_some(value)
}

fn main() {
    let scale = Scale::from_env();
    banner(
        "Attack zoo",
        "extension: gradient/black-box/adaptive attackers vs LGO",
        scale,
    );
    let mut config = config_for(scale);
    if let Some(eps) = env_parse::<f64>("LGO_ZOO_EPS") {
        config.zoo.eps = eps;
    }
    if let Some(steps) = env_parse::<usize>("LGO_ZOO_STEPS") {
        config.zoo.steps = steps;
    }
    eprintln!(
        "cohort: {} patients, {}+{} days  eps: {} mg/dL  steps: {}",
        config.patients.len(),
        config.train_days,
        config.test_days,
        config.zoo.eps,
        config.zoo.steps
    );

    let report = run_attack_zoo(&config);

    println!(
        "\nclusters: less-vulnerable {:?}  more-vulnerable {:?}",
        report
            .less_vulnerable
            .iter()
            .map(|id| id.to_string())
            .collect::<Vec<_>>(),
        report
            .more_vulnerable
            .iter()
            .map(|id| id.to_string())
            .collect::<Vec<_>>(),
    );
    println!(
        "detectors: lgo-selective={}  no-defense={}\n",
        report.lgo_detector, report.all_detector
    );
    println!(
        "{:<8} {:<14} {:>9} {:>8} {:>9} {:>12} {:>12}",
        "attacker", "threat model", "success", "manip.", "queries", "recall(lgo)", "recall(all)"
    );
    for row in &report.rows {
        println!(
            "{:<8} {:<14} {:>9} {:>8} {:>9} {:>12} {:>12}",
            row.name,
            row.threat_model,
            percent_or_na(row.success_rate),
            row.windows_manipulated,
            row.total_queries,
            percent_or_na(row.recall_lgo),
            percent_or_na(row.recall_all),
        );
    }
    println!(
        "\n(success on the poison row is the placement rate; its recall(lgo)\n\
         is the LGO detector retrained on the poisoned pool, re-measured on\n\
         the PGD reference windows)"
    );

    let json = report.canonical_json();
    let path = "results/BENCH_attack_zoo.json";
    if let Err(e) = std::fs::create_dir_all("results") {
        eprintln!("warning: create results/: {e}");
    }
    match std::fs::write(path, &json) {
        Ok(()) => println!("\nreport: {path}"),
        Err(e) => eprintln!("warning: write {path}: {e}"),
    }
    write_trace("attack_zoo");
}
