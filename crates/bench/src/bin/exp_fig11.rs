//! Figure 11 (Appendix C) — F1-score of kNN, OneClassSVM and MAD-GAN under
//! the four training strategies.
//!
//! Paper headline: Less-Vulnerable training improves F1 by 7.3 % (kNN) and
//! 10.9 % (OneClassSVM) over indiscriminate training — the recall gain
//! outweighs any precision loss.

use lgo_bench::{banner, print_strategy_metric, run_strategy_grid, write_trace, Scale};
use lgo_core::selective::TrainingStrategy;

fn main() {
    let scale = Scale::from_env();
    banner("Figure 11", "F1-score per detector x training strategy", scale);
    let report = run_strategy_grid(scale);
    print_strategy_metric(&report, "F1", |e| e.f1_stats());

    println!("\nheadline comparisons (LV vs All Patients, mean F1):");
    for kind in lgo_core::selective::DetectorKind::all() {
        let lv = report
            .evaluation(TrainingStrategy::LessVulnerable, kind)
            .expect("LV evaluated");
        let all = report
            .evaluation(TrainingStrategy::AllPatients, kind)
            .expect("All evaluated");
        let change = (lv.mean_f1() - all.mean_f1()) / all.mean_f1().max(1e-9);
        println!(
            "  {:<12} LV {:.3} vs All {:.3}  ({:+.1}%)   [paper: kNN +7.3%, OCSVM +10.9%]",
            kind.name(),
            lv.mean_f1(),
            all.mean_f1(),
            change * 100.0
        );
    }
    write_trace("exp_fig11");
}
