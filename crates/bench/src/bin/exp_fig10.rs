//! Figure 10 (Appendix A) — percentage of originally *hypoglycemic* glucose
//! instances misdiagnosed as hyperglycemic under the URET-style attack, for
//! Subset A (personalized models, aggregate model, and average).
//!
//! Hypo→hyper is the most dangerous transition (severity 64 in Table I):
//! the BGMS would dose insulin onto an already-low patient.

use lgo_attack::cgm::OriginState;
use lgo_bench::{banner, run_origin_experiment, Scale};

fn main() {
    let scale = Scale::from_env();
    banner("Figure 10", "hypo -> hyper misdiagnosis %, Subset A", scale);
    run_origin_experiment(scale, OriginState::Hypo);
}
