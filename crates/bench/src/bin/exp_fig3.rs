//! Figure 3 — time-series risk profiles and per-subset dendrograms.
//!
//! Prints a compact rendering of each patient's risk profile (binned means)
//! and the hierarchical-clustering dendrogram of each subset, the textual
//! analogue of the paper's Figure 3(a)/(b).

use lgo_bench::{banner, pipeline_config, Scale};
use lgo_core::pipeline::run_pipeline;
use lgo_core::selective::{DetectorKind, TrainingStrategy};

fn main() {
    let scale = Scale::from_env();
    banner("Figure 3", "risk profiles + dendrograms per subset", scale);

    let mut config = pipeline_config(scale);
    config.strategies = vec![TrainingStrategy::AllPatients];
    config.detector_kinds = vec![DetectorKind::Knn];
    let report = run_pipeline(&config);

    println!("\nrisk profiles (log1p-compressed, 16 bins, '#' height = bin mean):");
    for p in &report.profiles {
        let bins = p.risk_profile.feature_vector(16);
        let max = bins.iter().cloned().fold(f64::MIN, f64::max).max(1e-9);
        let bars: String = bins
            .iter()
            .map(|&v| {
                let level = (v / max * 7.0).round() as usize;
                char::from_digit(level as u32, 10).unwrap_or('#')
            })
            .collect();
        println!(
            "  {:<4} |{}|  mean risk {:>12.0}  peak {:>12.0}",
            p.patient.to_string(),
            bars,
            p.risk_profile.mean(),
            p.risk_profile.peak()
        );
    }

    for (subset, clusters) in &report.clusters.per_subset {
        println!("\ndendrogram, Subset {subset} (average linkage):");
        print!("{}", clusters.dendrogram.render_ascii_with(Some(&clusters.labels)));
        let fmt = |ids: &[lgo_glucosim::PatientId]| {
            ids.iter().map(|p| p.to_string()).collect::<Vec<_>>().join(", ")
        };
        println!("  -> less vulnerable: {}", fmt(&clusters.less_vulnerable));
        println!("  -> more vulnerable: {}", fmt(&clusters.more_vulnerable));
    }
    println!("\npaper: Subset A splits {{A_5}} from the rest; Subset B splits {{B_1, B_2}}.");
}
