//! Ablation — target-forecaster architecture: the paper approximates the
//! confidential deployed model with a BiLSTM; this experiment checks how
//! sensitive the attack surface is to that choice by comparing BiLSTM and
//! BiGRU backbones of the same width on accuracy and attackability.

use lgo_attack::cgm::{run_campaign, CgmAttackConfig};
use lgo_attack::{GreedyExplorer, TargetModel};
use lgo_bench::{banner, forecast_config, percent_or_na, Scale};
use lgo_core::profile::attack_cases;
use lgo_eval::render::table;
use lgo_forecast::{supervised_samples, GlucoseForecaster};
use lgo_glucosim::{profile, PatientId, Simulator, Subset};
use lgo_nn::{BiGruRegressor, Trainable};
use lgo_series::MinMaxScaler;
use rand::{rngs::StdRng, SeedableRng};

/// BiGRU forecaster assembled from the same scalers/windows as the BiLSTM
/// one (the `lgo-forecast` crate hard-wires BiLSTM, so the ablation builds
/// its GRU twin here).
struct GruForecaster {
    model: BiGruRegressor,
    feature_scaler: MinMaxScaler,
    target_scaler: MinMaxScaler,
}

impl GruForecaster {
    fn predict(&self, window: &[Vec<f64>]) -> f64 {
        let scaled = self.feature_scaler.transform(window).expect("fit");
        self.target_scaler.inverse_value(0, self.model.predict(&scaled))
    }
}

struct GruModel<'a>(&'a GruForecaster);

impl TargetModel<Vec<Vec<f64>>> for GruModel<'_> {
    fn predict(&self, input: &Vec<Vec<f64>>) -> f64 {
        self.0.predict(input)
    }
}

fn main() {
    let scale = Scale::from_env();
    banner("Ablation", "forecaster architecture: BiLSTM vs BiGRU", scale);
    let (train_days, test_days) = scale.days();
    let id = PatientId::new(Subset::A, 0);
    let sim = Simulator::new(profile(id));
    let train = sim.run_days(train_days);
    let test = sim
        .run_days(train_days + test_days)
        .slice(train_days * 288, (train_days + test_days) * 288);
    let fc = forecast_config(scale);

    // --- BiLSTM (the paper's choice, via lgo-forecast) ---
    let lstm = GlucoseForecaster::train_personalized(&train, &fc);
    let lstm_rmse = lstm.rmse(&test);

    // --- BiGRU twin ---
    let samples = supervised_samples(&train, fc.seq_len, fc.horizon);
    let rows: Vec<Vec<f64>> = samples.iter().flat_map(|s| s.history.clone()).collect();
    let mut feature_scaler = MinMaxScaler::new();
    feature_scaler.fit(&rows);
    let targets: Vec<Vec<f64>> = samples.iter().map(|s| vec![s.target]).collect();
    let mut target_scaler = MinMaxScaler::new();
    target_scaler.fit(&targets);
    let scaled: Vec<(Vec<Vec<f64>>, f64)> = samples
        .iter()
        .map(|s| {
            (
                feature_scaler.transform(&s.history).expect("fit"),
                target_scaler.value(0, s.target),
            )
        })
        .collect();
    let mut rng = StdRng::seed_from_u64(fc.seed);
    let mut gru = BiGruRegressor::new(4, fc.hidden, &mut rng);
    gru.fit(&scaled, fc.epochs, fc.batch_size, fc.learning_rate);
    let gru_fc = GruForecaster {
        model: gru,
        feature_scaler,
        target_scaler,
    };
    let test_samples = supervised_samples(&test, fc.seq_len, fc.horizon);
    let gru_rmse = (test_samples
        .iter()
        .map(|s| (gru_fc.predict(&s.history) - s.target).powi(2))
        .sum::<f64>()
        / test_samples.len() as f64)
        .sqrt();

    // --- Attackability of each backbone ---
    let cases = attack_cases(&test, fc.seq_len, 24);
    let cfg = CgmAttackConfig::default();
    let explorer = GreedyExplorer::new(5);
    let lstm_report = run_campaign(
        &lgo_core::profile::ForecastModel(&lstm),
        &cases,
        &explorer,
        &cfg,
    );
    let gru_report = run_campaign(&GruModel(&gru_fc), &cases, &explorer, &cfg);

    let mut gru_params = gru_fc.model.clone();
    let rows = vec![
        vec![
            "BiLSTM (paper)".into(),
            format!("{lstm_rmse:.1}"),
            percent_or_na(lstm_report.success_rate()),
            format!("{}", lstm.clone().param_count()),
        ],
        vec![
            "BiGRU".into(),
            format!("{gru_rmse:.1}"),
            percent_or_na(gru_report.success_rate()),
            format!("{}", gru_params.param_count()),
        ],
    ];
    println!("\npatient {id}, {train_days} train days:");
    print!(
        "{}",
        table(&["backbone", "test RMSE (mg/dL)", "attack success", "params"], &rows)
    );
    println!(
        "\nSimilar RMSE and attack-success across backbones supports the paper's\n\
         approximation of the confidential deployed model with a BiLSTM."
    );
}
