//! Fault-robustness sweep — detector recall/precision/F1 under train-time
//! CGM sensor faults.
//!
//! The cohort is simulated and attacked once on clean data (steps 0–3).
//! Then, for each fault model × fault rate, the [`FaultInjector`] degrades
//! every patient's *training* series, the detectors are retrained on the
//! degraded benign windows (walking the MAD-GAN → OC-SVM → kNN fallback
//! chain when a detector cannot be trained at all), and the retrained
//! detectors are scored against the untouched clean test windows. The
//! output is a JSON document mapping fault rate to per-detector metrics,
//! so degradation curves can be plotted directly.

use lgo_core::error::LgoError;
use lgo_core::pipeline::benign_windows;
use lgo_core::profile::{try_profile_patient, ProfilerConfig};
use lgo_core::selective::{
    evaluate_on_patient, train_detector_with_fallback, DetectorKind, PatientData,
};
use lgo_detect::Window;
use lgo_forecast::GlucoseForecaster;
use lgo_glucosim::{generate_cohort_sized, FaultInjector, FaultKind, PatientDataset};

use lgo_bench::{detector_configs, forecast_config, pipeline_config, profiler_config, Scale};

/// Mean per-patient detection metrics for one trained detector.
struct MeanMetrics {
    recall: f64,
    precision: f64,
    f1: f64,
}

fn mean_metrics(
    detector: &dyn lgo_detect::AnomalyDetector,
    cohort: &[PatientData],
) -> MeanMetrics {
    let mut m = MeanMetrics {
        recall: 0.0,
        precision: 0.0,
        f1: 0.0,
    };
    for d in cohort {
        let cm = evaluate_on_patient(detector, d);
        m.recall += cm.recall();
        m.precision += cm.precision();
        m.f1 += cm.f1();
    }
    let n = cohort.len() as f64;
    m.recall /= n;
    m.precision /= n;
    m.f1 /= n;
    m
}

/// One `"key": {...}` JSON fragment for a detector cell.
fn detector_json(key: &str, m: &MeanMetrics, trained_as: DetectorKind, windows: usize) -> String {
    format!(
        "\"{key}\": {{\"recall\": {:.4}, \"precision\": {:.4}, \"f1\": {:.4}, \
         \"trained_as\": \"{}\", \"train_windows\": {windows}}}",
        m.recall,
        m.precision,
        m.f1,
        trained_as.name()
    )
}

fn json_key(kind: DetectorKind) -> &'static str {
    match kind {
        DetectorKind::Knn => "knn",
        DetectorKind::OcSvm => "ocsvm",
        DetectorKind::MadGan => "madgan",
    }
}

fn main() -> Result<(), LgoError> {
    let scale = Scale::from_env();
    // Progress goes to stderr so stdout is a clean JSON document.
    eprintln!(
        "Fault robustness — detector metrics vs train-time sensor-fault rate (scale: {})",
        scale.name()
    );
    let config = pipeline_config(scale);
    let (train_days, test_days) = scale.days();
    let datasets: Vec<PatientDataset> = generate_cohort_sized(train_days, test_days)
        .into_iter()
        .filter(|d| {
            config
                .patients
                .as_ref()
                .is_none_or(|ids| ids.contains(&d.profile.id))
        })
        .collect();
    let seq_len = config.forecast.seq_len;
    let fc = forecast_config(scale);
    let minimal = ProfilerConfig {
        maximize: false,
        ..profiler_config(scale)
    };
    let configs = detector_configs(scale);

    // Steps 0–3 once, on clean data: personalized forecasters, minimal
    // (stealthy) attack campaigns, benign/malicious window extraction.
    eprintln!("profiling {} patients on clean data ...", datasets.len());
    let cohort: Vec<PatientData> =
        lgo_runtime::try_par_map(&datasets, |d| -> Result<PatientData, LgoError> {
            let forecaster = GlucoseForecaster::try_train_personalized(&d.train, &fc)?;
            let test_minimal =
                try_profile_patient(&forecaster, d.profile.id, &d.test, &minimal)?;
            let train_minimal = try_profile_patient(
                &forecaster,
                d.profile.id,
                &d.train,
                &ProfilerConfig {
                    stride: config.train_attack_stride,
                    ..minimal.clone()
                },
            )?;
            Ok(PatientData {
                patient: d.profile.id,
                train_benign: benign_windows(&d.train, seq_len, config.detector_stride),
                train_malicious: train_minimal.manipulated_windows(),
                test_benign: benign_windows(&d.test, seq_len, config.detector_stride),
                test_malicious: test_minimal.manipulated_windows(),
            })
        })?
        .into_iter()
        .collect::<Result<_, _>>()?;
    let malicious: Vec<Window> = cohort
        .iter()
        .flat_map(|d| d.train_malicious.iter().cloned())
        .collect();

    // The sweep: each fault model is parameterized by a single "rate" knob.
    type FaultTemplate = fn(f64) -> FaultKind;
    let fault_models: Vec<(&str, FaultTemplate)> = vec![
        ("dropout", |rate| FaultKind::Dropout { rate }),
        ("stuck_at", |rate| FaultKind::StuckAt { rate, len: 6 }),
        ("spike_noise", |rate| FaultKind::SpikeNoise {
            rate,
            magnitude: 80.0,
        }),
        ("calibration_drift", |rate| FaultKind::CalibrationDrift {
            per_sample: rate,
            max_abs: 60.0,
        }),
    ];
    let rates = [0.1, 0.25, 0.5];
    let kinds = DetectorKind::all();

    // Trains all detectors on the given benign training pool and scores
    // them against the clean test windows; returns the JSON cell fragments.
    let evaluate_pool = |benign: &[Window]| -> Vec<String> {
        kinds
            .iter()
            .map(|&kind| {
                match train_detector_with_fallback(kind, benign, &malicious, &configs) {
                    Ok((det, trained_as)) => {
                        let m = mean_metrics(det.as_ref(), &cohort);
                        detector_json(json_key(kind), &m, trained_as, benign.len())
                    }
                    Err(e) => format!("\"{}\": {{\"error\": \"{e}\"}}", json_key(kind)),
                }
            })
            .collect()
    };

    eprintln!("baseline (clean training data) ...");
    let clean_benign: Vec<Window> = cohort
        .iter()
        .flat_map(|d| d.train_benign.iter().cloned())
        .collect();
    let baseline = evaluate_pool(&clean_benign);

    // Every (fault model × rate) cell is independent — its injector is
    // seeded from the fault-model index — so the sweep fans out across the
    // lgo-runtime pool; rows keep grid order.
    let grid: Vec<(usize, &str, FaultTemplate, f64)> = fault_models
        .iter()
        .enumerate()
        .flat_map(|(fi, &(name, mk_fault))| {
            rates.iter().map(move |&rate| (fi, name, mk_fault, rate))
        })
        .collect();
    eprintln!("sweeping {} fault × rate cells ...", grid.len());
    let sweep_rows = lgo_runtime::par_map(&grid, |&(fi, name, mk_fault, rate)| {
        let injector = FaultInjector::new(0xFA17 + fi as u64).with_fault(mk_fault(rate));
        let benign: Vec<Window> = datasets
            .iter()
            .map(|d| injector.apply_dataset(d))
            .flat_map(|d| benign_windows(&d.train, seq_len, config.detector_stride))
            .collect();
        let cells = evaluate_pool(&benign);
        format!(
            "    {{\"fault\": \"{name}\", \"rate\": {rate}, \"detectors\": {{{}}}}}",
            cells.join(", ")
        )
    });

    println!(
        "{{\n  \"scale\": \"{}\",\n  \"baseline\": {{{}}},\n  \"sweep\": [\n{}\n  ]\n}}",
        scale.name(),
        baseline.join(", "),
        sweep_rows.join(",\n")
    );
    Ok(())
}
