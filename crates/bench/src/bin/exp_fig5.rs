//! Figure 5 — per-sample kNN detection overlay on the glucose traces of
//! the less-vulnerable patient A_5 and the more-vulnerable patient A_2,
//! under *indiscriminate* training.
//!
//! Paper headline: the indiscriminately trained detector protects the two
//! patients inequitably — the more-vulnerable patient suffers a much higher
//! false-negative rate.

use lgo_bench::{banner, pipeline_config, Scale};
use lgo_core::pipeline::run_pipeline;
use lgo_core::selective::{
    evaluate_on_patient, train_detector, DetectorKind, TrainingStrategy,
};
use lgo_glucosim::{PatientId, Subset};

fn main() {
    let scale = Scale::from_env();
    banner("Figure 5", "kNN sample flags on A_5 vs A_2, indiscriminate training", scale);

    let mut config = pipeline_config(scale);
    config.patients = None; // need the full cohort for indiscriminate training
    config.strategies = vec![TrainingStrategy::AllPatients];
    config.detector_kinds = vec![DetectorKind::Knn];
    let report = run_pipeline(&config);

    // Train the kNN on everyone (indiscriminate) and flag each target
    // patient's test samples.
    let mut benign = Vec::new();
    let mut malicious = Vec::new();
    for d in &report.cohort {
        benign.extend(d.train_benign.iter().cloned());
        malicious.extend(d.train_malicious.iter().cloned());
    }
    let detector = train_detector(DetectorKind::Knn, &benign, &malicious, &config.detectors);

    for id in [PatientId::new(Subset::A, 5), PatientId::new(Subset::A, 2)] {
        let data = report
            .cohort
            .iter()
            .find(|d| d.patient == id)
            .expect("patient in cohort");
        let cm = evaluate_on_patient(detector.as_ref(), data);
        println!(
            "\npatient {id}: {} malicious samples, {} flagged (TP), {} missed (FN) -> FN rate {:.1}%",
            data.test_malicious.len(),
            cm.tp,
            cm.fn_,
            cm.false_negative_rate() * 100.0
        );
        // Trace strip: one character per malicious window in time order.
        let strip: String = data
            .test_malicious
            .iter()
            .take(72)
            .map(|w| if detector.is_anomalous(w) { 'o' } else { 'X' })
            .collect();
        println!("  first malicious windows (o = flagged, X = missed): {strip}");
    }
    println!(
        "\npaper: the more-vulnerable patient (A_2) shows a much higher FN rate than A_5\n\
         under indiscriminate training — the motivation for selective training."
    );
}
