//! Defense experiment: the pluggable defense strategies (LGO-selective,
//! indiscriminate, ROAST outlier exposure, iterative adversarial
//! retraining) versus the attack-zoo test panel, Table-2 style — recall
//! and FPR per defense × ladder level × attacker.
//!
//! Knobs: `LGO_SCALE=fast|mid|paper` picks the cohort/fidelity tier;
//! `LGO_DEFENSE=<name>[,<name>...]` (or `all`, the default) filters the
//! defense roster; `LGO_ROAST_ROUNDS` overrides both the ROAST fit-round
//! count and the iterative-retraining round count; `LGO_ZOO_EPS` /
//! `LGO_ZOO_STEPS` override the shared attacker budget.
//!
//! Writes the canonical-JSON report to `results/BENCH_defense.json`
//! (byte-identical at any `LGO_THREADS`; pinned by `tests/defense.rs`).

use lgo_bench::{banner, percent_or_na, pipeline_config, write_trace, Scale};
use lgo_glucosim::PatientId;
use lgo_zoo::defense::{DEFENSE_NAMES, TEST_ATTACKERS};
use lgo_zoo::{run_defense_bench, DefenseBenchConfig, ZooConfig, ZooExperimentConfig};

/// Maps the shared bench scale onto a defense study configuration.
fn config_for(scale: Scale) -> DefenseBenchConfig {
    let pc = pipeline_config(scale);
    let mut config = DefenseBenchConfig::fast();
    config.base = ZooExperimentConfig {
        patients: pc.patients.unwrap_or_else(PatientId::all),
        train_days: pc.train_days,
        test_days: pc.test_days,
        forecast: pc.forecast,
        profiler: pc.profiler,
        detectors: pc.detectors,
        zoo: ZooConfig::default(),
        train_attack_stride: pc.train_attack_stride,
        detector_stride: pc.detector_stride,
    };
    config
}

/// Parses a positive numeric env override, ignoring unset/invalid values.
fn env_parse<T: std::str::FromStr + PartialOrd + Default>(key: &str) -> Option<T> {
    let value: T = std::env::var(key).ok()?.parse().ok()?;
    (value > T::default()).then_some(value)
}

fn main() {
    let scale = Scale::from_env();
    banner(
        "Defense strategies",
        "extension: ROAST/retraining vs LGO-selective (Table 2 style)",
        scale,
    );
    let mut config = config_for(scale);
    if let Some(eps) = env_parse::<f64>("LGO_ZOO_EPS") {
        config.base.zoo.eps = eps;
    }
    if let Some(steps) = env_parse::<usize>("LGO_ZOO_STEPS") {
        config.base.zoo.steps = steps;
    }
    if let Some(rounds) = env_parse::<usize>("LGO_ROAST_ROUNDS") {
        config.roast.rounds = rounds;
        config.retrain.rounds = rounds;
    }
    if let Ok(filter) = std::env::var("LGO_DEFENSE") {
        if !filter.is_empty() && filter != "all" {
            config.defenses = filter.split(',').map(|s| s.trim().to_string()).collect();
            for d in &config.defenses {
                if !DEFENSE_NAMES.contains(&d.as_str()) {
                    eprintln!("warning: unknown defense `{d}` (known: {DEFENSE_NAMES:?})");
                }
            }
        }
    }
    eprintln!(
        "cohort: {} patients, {}+{} days  eps: {} mg/dL  steps: {}  roast rounds: {}",
        config.base.patients.len(),
        config.base.train_days,
        config.base.test_days,
        config.base.zoo.eps,
        config.base.zoo.steps,
        config.roast.rounds,
    );

    let report = run_defense_bench(&config);

    println!(
        "\nclusters: less-vulnerable {:?}  more-vulnerable {:?}",
        report
            .less_vulnerable
            .iter()
            .map(|id| id.to_string())
            .collect::<Vec<_>>(),
        report
            .more_vulnerable
            .iter()
            .map(|id| id.to_string())
            .collect::<Vec<_>>(),
    );
    println!(
        "attacker panel: {}\n",
        report
            .attackers
            .iter()
            .map(|(name, n)| format!("{name} ({n} windows)"))
            .collect::<Vec<_>>()
            .join("  ")
    );
    println!(
        "{:<22} {:<8} {:>9} {:>12} {:>12} {:>12} {:>12}",
        "defense", "level", "fpr", "r(uret)", "r(pgd)", "r(spsa)", "cache h/m"
    );
    for row in &report.rows {
        for level in &row.levels {
            let recall_for = |name: &str| {
                level
                    .recalls
                    .iter()
                    .find(|r| r.attacker == name)
                    .and_then(|r| r.recall)
            };
            println!(
                "{:<22} {:<8} {:>9} {:>12} {:>12} {:>12} {:>12}",
                if level.level == 0 { row.name } else { "" },
                level.trained,
                percent_or_na(level.fpr),
                percent_or_na(recall_for(TEST_ATTACKERS[0])),
                percent_or_na(recall_for(TEST_ATTACKERS[1])),
                percent_or_na(recall_for(TEST_ATTACKERS[2])),
                if level.level == 0 {
                    format!("{}/{}", row.cache_hits, row.cache_misses)
                } else {
                    String::new()
                },
            );
        }
    }
    println!(
        "\n(r(·) is detector recall over that attacker's manipulated windows;\n\
         fpr is measured on {} pooled benign test windows; cache h/m counts\n\
         kernel-cache hits/misses during that defense's fitting phase)",
        report.benign_test_windows
    );

    let json = report.canonical_json();
    let path = "results/BENCH_defense.json";
    if let Err(e) = std::fs::create_dir_all("results") {
        eprintln!("warning: create results/: {e}");
    }
    match std::fs::write(path, &json) {
        Ok(()) => println!("\nreport: {path}"),
        Err(e) => eprintln!("warning: write {path}: {e}"),
    }
    write_trace("defense");
}
