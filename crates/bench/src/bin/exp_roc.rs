//! Extension experiment — threshold-free detector comparison: ROC/AUC of
//! each detector under Less-Vulnerable vs All-Patients training.
//!
//! The paper's recall/precision numbers depend on each detector's operating
//! point (kNN majority vote, SVM/GAN calibration quantiles); AUC factors
//! the operating point out and shows whether selective training improves
//! the *ranking* of malicious over benign windows itself.

use lgo_bench::{banner, pipeline_config, Scale};
use lgo_core::pipeline::run_pipeline;
use lgo_core::selective::{train_detector, DetectorKind, TrainingStrategy};
use lgo_eval::render::table;
use lgo_eval::RocCurve;

fn main() {
    let scale = Scale::from_env();
    banner("Extension", "ROC/AUC under LV vs All training", scale);

    let mut config = pipeline_config(scale);
    config.strategies = vec![TrainingStrategy::AllPatients];
    config.detector_kinds = vec![DetectorKind::Knn];
    let report = run_pipeline(&config);

    let rosters: Vec<(&str, Vec<lgo_glucosim::PatientId>)> = vec![
        ("Less Vulnerable", report.clusters.less_vulnerable.clone()),
        (
            "All Patients",
            report.cohort.iter().map(|d| d.patient).collect(),
        ),
    ];

    let mut rows = Vec::new();
    for kind in DetectorKind::all() {
        for (label, roster) in &rosters {
            let mut benign = Vec::new();
            let mut malicious = Vec::new();
            for d in report.cohort.iter().filter(|d| roster.contains(&d.patient)) {
                benign.extend(d.train_benign.iter().cloned());
                malicious.extend(d.train_malicious.iter().cloned());
            }
            let detector = train_detector(kind, &benign, &malicious, &config.detectors);

            // Pool every patient's test windows and score them.
            let mut scores = Vec::new();
            let mut labels = Vec::new();
            for d in &report.cohort {
                for w in &d.test_benign {
                    scores.push(detector.score(w));
                    labels.push(false);
                }
                for w in &d.test_malicious {
                    scores.push(detector.score(w));
                    labels.push(true);
                }
            }
            let roc = RocCurve::from_scores(&scores, &labels);
            let best = roc.best_youden();
            rows.push(vec![
                kind.name().to_string(),
                label.to_string(),
                format!("{:.3}", roc.auc()),
                format!("tpr {:.2} @ fpr {:.2}", best.tpr, best.fpr),
            ]);
        }
    }
    println!();
    print!(
        "{}",
        table(&["detector", "training", "AUC", "best Youden point"], &rows)
    );
    println!(
        "\nAUC > for LV training means selective training improves the score ranking\n\
         itself, not just the operating point."
    );
}
