//! # lgo-bench
//!
//! The experiment harness: one binary per table and figure of the paper's
//! evaluation section (see `src/bin/exp_*.rs`), plus Criterion benchmarks
//! for the performance-critical components (`benches/`).
//!
//! Every harness binary honours the `LGO_SCALE` environment variable:
//!
//! - `fast` — minutes-scale smoke run (small cohort, tiny models),
//! - `mid` — the default: full 12-patient cohort at reduced data sizes,
//! - `paper` — the OhioT1DM footprint (~10 000 train / ~2 500 test samples
//!   per patient); expect tens of minutes of CPU time.
//!
//! Binaries print the same rows/series the paper reports (tables as aligned
//! text, figures as ASCII bar/box charts) and are summarized in
//! `EXPERIMENTS.md`.

use lgo_core::pipeline::PipelineConfig;
use lgo_core::profile::ProfilerConfig;
use lgo_core::selective::{DetectorConfigs, DetectorKind, TrainingStrategy};
use lgo_detect::MadGanConfig;
use lgo_forecast::ForecastConfig;

/// Experiment scale, selected by the `LGO_SCALE` environment variable.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scale {
    /// Smoke-test scale (4 patients, 2 training days).
    Fast,
    /// Default scale: all 12 patients, 10 training days.
    Mid,
    /// Paper scale: all 12 patients at the OhioT1DM footprint.
    Paper,
}

impl Scale {
    /// Reads `LGO_SCALE` (`fast` / `mid` / `paper`), defaulting to `Mid`.
    ///
    /// # Panics
    ///
    /// Panics on an unrecognized value, listing the accepted ones.
    pub fn from_env() -> Scale {
        match std::env::var("LGO_SCALE").as_deref() {
            Ok("fast") => Scale::Fast,
            Ok("mid") | Err(_) => Scale::Mid,
            Ok("paper") => Scale::Paper,
            Ok(other) => panic!("LGO_SCALE = {other:?}; expected fast, mid or paper"),
        }
    }

    /// Display name.
    pub fn name(&self) -> &'static str {
        match self {
            Scale::Fast => "fast",
            Scale::Mid => "mid",
            Scale::Paper => "paper",
        }
    }

    /// Simulated (train, test) days per patient at this scale.
    pub fn days(&self) -> (usize, usize) {
        match self {
            Scale::Fast => (3, 1),
            Scale::Mid => (10, 4),
            Scale::Paper => (35, 9),
        }
    }
}

/// The forecaster configuration per scale.
pub fn forecast_config(scale: Scale) -> ForecastConfig {
    match scale {
        Scale::Fast => ForecastConfig {
            hidden: 8,
            epochs: 2,
            ..ForecastConfig::default()
        },
        Scale::Mid => ForecastConfig {
            hidden: 12,
            epochs: 3,
            ..ForecastConfig::default()
        },
        Scale::Paper => ForecastConfig::default(),
    }
}

/// The attack/risk profiler configuration per scale.
pub fn profiler_config(scale: Scale) -> ProfilerConfig {
    match scale {
        Scale::Fast => ProfilerConfig {
            stride: 24,
            explorer_steps: 4,
            ..ProfilerConfig::default()
        },
        Scale::Mid => ProfilerConfig {
            stride: 12,
            explorer_steps: 5,
            ..ProfilerConfig::default()
        },
        Scale::Paper => ProfilerConfig {
            stride: 6,
            explorer_steps: 6,
            ..ProfilerConfig::default()
        },
    }
}

/// Detector configurations per scale (paper hyper-parameters, with GAN
/// training budgets reduced below paper scale).
pub fn detector_configs(scale: Scale) -> DetectorConfigs {
    let madgan = match scale {
        Scale::Fast => MadGanConfig {
            epochs: 4,
            hidden: 8,
            inversion_steps: 5,
            ..MadGanConfig::default()
        },
        Scale::Mid => MadGanConfig {
            epochs: 15,
            inversion_steps: 10,
            ..MadGanConfig::default()
        },
        Scale::Paper => MadGanConfig {
            epochs: 40,
            inversion_steps: 15,
            ..MadGanConfig::default()
        },
    };
    DetectorConfigs {
        madgan,
        ..DetectorConfigs::default()
    }
}

/// The full pipeline configuration for a scale: all twelve patients (except
/// `fast`), the paper's four training strategies and all three detectors.
pub fn pipeline_config(scale: Scale) -> PipelineConfig {
    let (train_days, test_days) = scale.days();
    let patients = match scale {
        Scale::Fast => Some(vec![
            lgo_glucosim::PatientId::new(lgo_glucosim::Subset::A, 2),
            lgo_glucosim::PatientId::new(lgo_glucosim::Subset::A, 5),
            lgo_glucosim::PatientId::new(lgo_glucosim::Subset::B, 2),
            lgo_glucosim::PatientId::new(lgo_glucosim::Subset::B, 4),
        ]),
        _ => None,
    };
    let random_runs = match scale {
        Scale::Fast => 2,
        Scale::Mid => 5,
        Scale::Paper => 10,
    };
    PipelineConfig {
        patients,
        train_days,
        test_days,
        forecast: forecast_config(scale),
        profiler: profiler_config(scale),
        train_attack_stride: 48,
        detector_stride: 4,
        detectors: detector_configs(scale),
        linkage: lgo_cluster::Linkage::Average,
        strategies: vec![
            TrainingStrategy::LessVulnerable,
            TrainingStrategy::MoreVulnerable,
            TrainingStrategy::RandomSamples {
                k: 3,
                runs: random_runs,
                seed: 0xABCD,
            },
            TrainingStrategy::AllPatients,
        ],
        detector_kinds: DetectorKind::all().to_vec(),
    }
}

/// Runs the full pipeline (all strategies × all detectors) at a scale —
/// the shared workload behind Figures 7, 8 and 11 and Appendix D.
pub fn run_strategy_grid(scale: Scale) -> lgo_core::pipeline::PipelineReport {
    lgo_core::pipeline::run_pipeline(&pipeline_config(scale))
}

/// Prints one metric of the strategy × detector grid as per-detector box
/// plots plus a mean-value table, mirroring the layout of the paper's
/// Figures 7 (recall), 8 (precision) and 11 (F1).
pub fn print_strategy_metric(
    report: &lgo_core::pipeline::PipelineReport,
    metric: &str,
    extract: impl Fn(&lgo_core::selective::StrategyEvaluation) -> lgo_series::stats::BoxStats,
) {
    use lgo_eval::render::{box_plot, table};

    let mut rows = Vec::new();
    for kind in report
        .evaluations
        .iter()
        .map(|e| e.detector)
        .collect::<std::collections::BTreeSet<_>>()
    {
        let evals: Vec<&lgo_core::selective::StrategyEvaluation> = report
            .evaluations
            .iter()
            .filter(|e| e.detector == kind)
            .collect();
        println!("\n{} — per-patient {metric} distribution:", kind.name());
        let items: Vec<(String, lgo_series::stats::BoxStats)> = evals
            .iter()
            .map(|e| (e.strategy.name().to_string(), extract(e)))
            .collect();
        print!("{}", box_plot(&items, 44));
        for e in &evals {
            rows.push(vec![
                kind.name().to_string(),
                e.strategy.name().to_string(),
                format!("{:.3}", extract(e).mean),
                format!("{:.0}", e.mean_training_windows),
            ]);
        }
    }
    println!("\nmean {metric} per (detector, strategy):");
    print!(
        "{}",
        table(&["detector", "strategy", metric, "train windows"], &rows)
    );
}

/// Shared implementation for Figures 9 (normal origin) and 10 (hypo
/// origin): runs personalized campaigns per Subset-A patient plus the
/// aggregate-model campaign and prints the misdiagnosis percentages.
pub fn run_origin_experiment(scale: Scale, origin: lgo_attack::cgm::OriginState) {
    use lgo_core::profile::profile_patient;
    use lgo_eval::render::bar_chart;
    use lgo_forecast::GlucoseForecaster;
    use lgo_glucosim::{generate_cohort_sized, Subset};
    let origin_matches = |o: &lgo_attack::cgm::WindowOutcome| o.origin == origin;

    let (train_days, test_days) = scale.days();
    let cohort: Vec<_> = generate_cohort_sized(train_days, test_days)
        .into_iter()
        .filter(|d| d.profile.id.subset == Subset::A)
        .collect();
    let fc = forecast_config(scale);
    let mut pc = profiler_config(scale);
    pc.maximize = false; // attack-success experiment: early-exit semantics

    let rate_for = |prof: &lgo_core::profile::PatientAttackProfile| -> Option<f64> {
        let of_origin: Vec<_> = prof
            .campaign
            .outcomes
            .iter()
            .filter(|o| origin_matches(o))
            .collect();
        if of_origin.is_empty() {
            return None;
        }
        Some(
            of_origin.iter().filter(|o| o.result.achieved).count() as f64
                / of_origin.len() as f64,
        )
    };

    // Per-patient forecaster training and campaigns are independent and
    // internally seeded, so they fan out across the lgo-runtime pool;
    // profiles come back in cohort order.
    let profiles = lgo_runtime::par_map(&cohort, |d| {
        let model = GlucoseForecaster::train_personalized(&d.train, &fc);
        profile_patient(&model, d.profile.id, &d.test, &pc)
    });
    let mut items = Vec::new();
    let mut rates = Vec::new();
    for (d, prof) in cohort.iter().zip(&profiles) {
        if let Some(r) = rate_for(prof) {
            items.push((format!("Patient {}", d.profile.id), r * 100.0));
            rates.push(r);
        } else {
            items.push((format!("Patient {} (no such windows)", d.profile.id), 0.0));
        }
    }

    // Aggregate model trained on all Subset-A patients, attacked on each
    // patient's test data; the paper reports one aggregate bar.
    let all_train: Vec<&lgo_series::MultiSeries> = cohort.iter().map(|d| &d.train).collect();
    let aggregate = GlucoseForecaster::train_aggregate(&all_train, &fc);
    let agg_profiles = lgo_runtime::par_map(&cohort, |d| {
        profile_patient(&aggregate, d.profile.id, &d.test, &pc)
    });
    let mut agg_hits = 0usize;
    let mut agg_total = 0usize;
    for prof in &agg_profiles {
        for o in &prof.campaign.outcomes {
            if origin_matches(o) {
                agg_total += 1;
                if o.result.achieved {
                    agg_hits += 1;
                }
            }
        }
    }
    if agg_total > 0 {
        let r = agg_hits as f64 / agg_total as f64;
        items.push(("All patients (aggregate)".into(), r * 100.0));
        rates.push(r);
    }
    if !rates.is_empty() {
        let avg = rates.iter().sum::<f64>() / rates.len() as f64;
        items.push(("Average".into(), avg * 100.0));
    }

    println!("\nmisdiagnosis percentage (% of attacked windows of this origin):");
    print!("{}", bar_chart(&items, 48));
    println!(
        "paper: patients respond heterogeneously to identical attack settings;\n\
         the resilient patient (A_5) shows the lowest percentage."
    );
}

/// Renders an optional success rate as a percentage, or `n/a` when the
/// campaign attacked no windows ([`success_rate`] returns `None`). The old
/// `unwrap_or(0.0)` rendering misreported an empty campaign as a fully
/// resisted one; the JSON exports already emit `null` for this case.
///
/// [`success_rate`]: lgo_attack::cgm::CampaignReport::success_rate
pub fn percent_or_na(rate: Option<f64>) -> String {
    match rate {
        Some(r) => format!("{:.1}%", r * 100.0),
        None => "n/a".into(),
    }
}

/// Writes the trace collected so far to `results/trace_<bench>.json` and
/// prints the path — a no-op unless the workspace is built with
/// `--features trace` and `LGO_TRACE=json` is set (see lgo-trace).
pub fn write_trace(bench: &str) {
    match lgo_trace::write_report(bench) {
        Ok(Some(path)) => println!("\ntrace report: {}", path.display()),
        Ok(None) => {}
        Err(e) => eprintln!("trace report: write failed: {e}"),
    }
}

/// Prints the standard experiment header.
pub fn banner(experiment: &str, paper_ref: &str, scale: Scale) {
    println!("================================================================");
    println!("{experiment}  ({paper_ref})");
    println!("scale: {}  (set LGO_SCALE=fast|mid|paper to change)", scale.name());
    println!("================================================================");
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scales_are_ordered_by_size() {
        assert!(Scale::Fast.days().0 < Scale::Mid.days().0);
        assert!(Scale::Mid.days().0 < Scale::Paper.days().0);
        // Paper scale matches the OhioT1DM footprint.
        assert_eq!(Scale::Paper.days(), (35, 9));
    }

    #[test]
    fn paper_pipeline_includes_everything() {
        let cfg = pipeline_config(Scale::Paper);
        assert!(cfg.patients.is_none());
        assert_eq!(cfg.strategies.len(), 4);
        assert_eq!(cfg.detector_kinds.len(), 3);
        assert_eq!(cfg.forecast.seq_len, 12);
    }

    #[test]
    fn fast_pipeline_is_small() {
        let cfg = pipeline_config(Scale::Fast);
        assert_eq!(cfg.patients.as_ref().unwrap().len(), 4);
        assert!(cfg.detectors.madgan.epochs <= 5);
    }
}
