//! Criterion benchmarks for the attack framework: cost of one greedy
//! evasion search against the trained forecaster (the unit of work behind
//! every campaign window).

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use lgo_attack::cgm::{attack_window, CgmAttackConfig, CgmCase};
use lgo_attack::GreedyExplorer;
use lgo_core::profile::ForecastModel;
use lgo_forecast::{feature_window, ForecastConfig, GlucoseForecaster};
use lgo_glucosim::{profile, PatientId, Simulator, Subset};

fn bench_attack(c: &mut Criterion) {
    let sim = Simulator::new(profile(PatientId::new(Subset::A, 0)));
    let train = sim.run_days(2);
    let forecaster = GlucoseForecaster::train_personalized(
        &train,
        &ForecastConfig {
            hidden: 8,
            epochs: 1,
            ..ForecastConfig::default()
        },
    );
    let fasting = train.channel("fasting").unwrap();
    let case = CgmCase {
        index: 100,
        window: feature_window(&train, 100).unwrap(),
        fasting: fasting[100] == 1.0,
    };
    let cfg = CgmAttackConfig::default();
    let model = ForecastModel(&forecaster);

    c.bench_function("greedy_attack_one_window", |b| {
        b.iter(|| attack_window(&model, black_box(&case), &GreedyExplorer::new(6), &cfg))
    });
    c.bench_function("maximizing_attack_one_window", |b| {
        b.iter(|| attack_window(&model, black_box(&case), &GreedyExplorer::maximizing(6), &cfg))
    });
    c.bench_function("forecaster_predict", |b| {
        b.iter(|| forecaster.predict(black_box(&case.window)))
    });
}

criterion_group!(benches, bench_attack);
criterion_main!(benches);
