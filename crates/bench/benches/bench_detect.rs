//! Criterion benchmarks for the three anomaly detectors: training and
//! per-window scoring throughput (the inference-time cost the paper's
//! static-defense argument is about).

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use lgo_detect::{
    AnomalyDetector, Kernel, KernelSpec, KnnConfig, KnnDetector, MadGan, MadGanConfig,
    OcSvmConfig, OneClassSvm, Window,
};

fn windows(n: usize, base: f64) -> Vec<Window> {
    (0..n)
        .map(|i| {
            (0..12)
                .map(|t| {
                    let v = base + ((i * 7 + t) as f64 * 0.31).sin() * 20.0;
                    vec![v, 0.2, 1.0, 70.0]
                })
                .collect()
        })
        .collect()
}

fn bench_knn(c: &mut Criterion) {
    let benign = windows(2000, 110.0);
    let malicious = windows(400, 260.0);
    let knn = KnnDetector::fit(&benign, &malicious, &KnnConfig::default());
    let query = &windows(1, 180.0)[0];
    c.bench_function("knn_score_2400pts", |b| {
        b.iter(|| knn.score(black_box(query)))
    });
    c.bench_function("knn_fit_2400pts", |b| {
        b.iter(|| KnnDetector::fit(black_box(&benign), black_box(&malicious), &KnnConfig::default()))
    });
}

fn bench_ocsvm(c: &mut Criterion) {
    let benign = windows(400, 110.0);
    let cfg = OcSvmConfig {
        kernel: KernelSpec::Fixed(Kernel::Rbf { gamma: 0.05 }),
        ..OcSvmConfig::default()
    };
    let svm = OneClassSvm::fit(&benign, &cfg);
    let query = &windows(1, 200.0)[0];
    c.bench_function("ocsvm_decision_400sv", |b| {
        b.iter(|| svm.decision_function(black_box(query)))
    });
    c.bench_function("ocsvm_fit_smo_400pts", |b| {
        b.iter(|| OneClassSvm::fit(black_box(&benign), &cfg))
    });
}

fn bench_madgan(c: &mut Criterion) {
    let benign = windows(64, 110.0);
    let cfg = MadGanConfig {
        epochs: 2,
        hidden: 8,
        inversion_steps: 10,
        ..MadGanConfig::default()
    };
    let gan = MadGan::fit(&benign, &cfg);
    let query = &windows(1, 250.0)[0];
    c.bench_function("madgan_dr_score_inv10", |b| {
        b.iter(|| gan.dr_score(black_box(query)))
    });
}

criterion_group!(benches, bench_knn, bench_ocsvm, bench_madgan);
criterion_main!(benches);
