//! Criterion benchmarks for the patient simulator: one simulated day at
//! one-minute integration and 5-minute sampling.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use lgo_glucosim::{profile, PatientId, Simulator, Subset};

fn bench_simulator(c: &mut Criterion) {
    let sim = Simulator::new(profile(PatientId::new(Subset::B, 3)));
    c.bench_function("simulate_one_day", |b| {
        b.iter(|| black_box(&sim).run_days(1))
    });
    c.bench_function("simulate_one_week", |b| {
        b.iter(|| black_box(&sim).run_days(7))
    });
}

criterion_group!(benches, bench_simulator);
criterion_main!(benches);
