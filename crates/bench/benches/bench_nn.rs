//! Criterion benchmarks for the neural-network substrate: the LSTM cell,
//! the BiLSTM forecaster architecture and the training step — the inner
//! loops of both the target model and MAD-GAN.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use lgo_nn::{BiLstmRegressor, Loss, LstmCell, Trainable};
use rand::{rngs::StdRng, SeedableRng};

fn sequence(len: usize, width: usize) -> Vec<Vec<f64>> {
    (0..len)
        .map(|t| (0..width).map(|j| ((t * 3 + j) as f64 * 0.17).sin()).collect())
        .collect()
}

fn bench_lstm_forward(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(1);
    let cell = LstmCell::new(4, 16, &mut rng);
    let xs = sequence(12, 4);
    c.bench_function("lstm_forward_seq12_h16", |b| {
        b.iter(|| cell.forward_seq(black_box(&xs)))
    });
}

fn bench_lstm_bptt(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(2);
    let mut cell = LstmCell::new(4, 16, &mut rng);
    let xs = sequence(12, 4);
    let dh = vec![vec![1.0; 16]; 12];
    c.bench_function("lstm_bptt_seq12_h16", |b| {
        b.iter(|| {
            cell.zero_grads();
            let trace = cell.forward_seq(black_box(&xs));
            cell.backward_seq(&trace, black_box(&dh))
        })
    });
}

fn bench_bilstm_predict(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(3);
    let model = BiLstmRegressor::new(4, 16, &mut rng);
    let xs = sequence(12, 4);
    c.bench_function("bilstm_predict_seq12_h16", |b| {
        b.iter(|| model.predict(black_box(&xs)))
    });
}

fn bench_bilstm_train_step(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(4);
    let mut model = BiLstmRegressor::new(4, 16, &mut rng);
    let xs = sequence(12, 4);
    c.bench_function("bilstm_accumulate_seq12_h16", |b| {
        b.iter(|| {
            model.zero_grads();
            model.accumulate(black_box(&xs), 0.5, Loss::Mse)
        })
    });
}

criterion_group!(
    benches,
    bench_lstm_forward,
    bench_lstm_bptt,
    bench_bilstm_predict,
    bench_bilstm_train_step
);
criterion_main!(benches);
