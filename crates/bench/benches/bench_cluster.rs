//! Criterion benchmarks for hierarchical clustering (step 4) at cohort
//! sizes and beyond.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use lgo_cluster::{agglomerate_points, Linkage};

fn points(n: usize, dims: usize) -> Vec<Vec<f64>> {
    (0..n)
        .map(|i| {
            (0..dims)
                .map(|d| ((i * 13 + d * 7) as f64 * 0.23).sin() * 10.0)
                .collect()
        })
        .collect()
}

fn bench_agglomerate(c: &mut Criterion) {
    let mut group = c.benchmark_group("agglomerate_avg_linkage");
    for n in [12usize, 32, 64] {
        let pts = points(n, 64);
        group.bench_with_input(BenchmarkId::from_parameter(n), &pts, |b, pts| {
            b.iter(|| agglomerate_points(black_box(pts), Linkage::Average))
        });
    }
    group.finish();

    let pts = points(12, 64);
    c.bench_function("agglomerate_ward_12", |b| {
        b.iter(|| agglomerate_points(black_box(&pts), Linkage::Ward))
    });
}

criterion_group!(benches, bench_agglomerate);
criterion_main!(benches);
