//! The paper's case study instantiation: evasion attacks that manipulate
//! only the CGM channel of a glucose-forecaster feature window, constrained
//! to physiologically plausible hyperglycemic ranges.
//!
//! The threat model (paper §III): the adversary intercepts Bluetooth CGM
//! transmissions and may rewrite glucose measurements, but cannot touch
//! insulin, carbohydrate or heart-rate features. Manipulated values must
//! stay within 125–499 mg/dL while the victim fasts, or 180–499 mg/dL
//! postprandially (499 mg/dL is the highest value in OhioT1DM).

use crate::{AttackResult, Constraint, Explorer, Goal, TargetModel, Transformer};

/// A forecaster input window: rows of feature vectors, time-major.
pub type Window = Vec<Vec<f64>>;

/// Configuration of the CGM manipulation attack.
#[derive(Debug, Clone, PartialEq)]
pub struct CgmAttackConfig {
    /// Column index of the CGM feature within each row.
    pub cgm_column: usize,
    /// Hyperglycemia threshold while fasting (mg/dL).
    pub fasting_threshold: f64,
    /// Hyperglycemia threshold postprandially (mg/dL).
    pub postprandial_threshold: f64,
    /// Maximum physiological glucose (mg/dL).
    pub max_glucose: f64,
    /// Hypoglycemia threshold (mg/dL), used to classify origin states.
    pub hypo_threshold: f64,
    /// Number of discrete levels each set-transformer enumerates.
    pub levels: usize,
    /// Suffix lengths (in samples) the transformers may overwrite.
    pub suffix_lengths: Vec<usize>,
}

impl Default for CgmAttackConfig {
    fn default() -> Self {
        Self {
            cgm_column: 0,
            fasting_threshold: 125.0,
            postprandial_threshold: 180.0,
            max_glucose: 499.0,
            hypo_threshold: 70.0,
            levels: 6,
            suffix_lengths: vec![1, 2],
        }
    }
}

impl CgmAttackConfig {
    /// The hyperglycemia threshold applying to a window (by fasting state).
    pub fn threshold(&self, fasting: bool) -> f64 {
        if fasting {
            self.fasting_threshold
        } else {
            self.postprandial_threshold
        }
    }

    /// The allowed manipulation range for a window (paper: threshold to
    /// 499 mg/dL).
    pub fn manipulation_range(&self, fasting: bool) -> (f64, f64) {
        (self.threshold(fasting), self.max_glucose)
    }
}

/// Transformer that overwrites the last `k` CGM cells with a constant level,
/// for each combination of `k` and a grid of levels inside the allowed
/// manipulation range.
#[derive(Debug, Clone)]
pub struct CgmSetSuffix {
    column: usize,
    levels: Vec<f64>,
    suffix_lengths: Vec<usize>,
}

impl CgmSetSuffix {
    /// Builds the transformer from an attack configuration and the window's
    /// fasting state.
    pub fn from_config(cfg: &CgmAttackConfig, fasting: bool) -> Self {
        let (lo, hi) = cfg.manipulation_range(fasting);
        let n = cfg.levels.max(2);
        let levels = (0..n)
            .map(|i| lo + (hi - lo) * i as f64 / (n - 1) as f64)
            .collect();
        Self {
            column: cfg.cgm_column,
            levels,
            suffix_lengths: cfg.suffix_lengths.clone(),
        }
    }
}

impl Transformer<Window> for CgmSetSuffix {
    fn name(&self) -> &str {
        "cgm-set-suffix"
    }

    fn candidates(&self, input: &Window) -> Vec<Window> {
        // Deterministic, window-dependent jitter spreads the level grid so
        // adversarial samples don't share exact values across windows — a
        // real attacker's replacements are not quantized, and a detector
        // must not be allowed to key on grid artifacts.
        let lo = *self.levels.first().expect("at least two levels");
        let hi = *self.levels.last().expect("at least two levels");
        let spacing = if self.levels.len() > 1 {
            (hi - lo) / (self.levels.len() - 1) as f64
        } else {
            0.0
        };
        let sum: f64 = input.iter().map(|r| r[self.column]).sum();
        let jitter = (sum * 0.618_033_988_749).fract().abs() * spacing;

        let mut out = Vec::new();
        for &k in &self.suffix_lengths {
            let k = k.min(input.len());
            if k == 0 {
                continue;
            }
            for &level in &self.levels {
                let level = (level + jitter).clamp(lo, hi);
                let mut cand = input.clone();
                for row in cand.iter_mut().rev().take(k) {
                    row[self.column] = level;
                }
                out.push(cand);
            }
        }
        out
    }
}

/// Transformer that adds a constant offset to the last `k` CGM cells,
/// clamping into the manipulation range — a subtler edit than overwriting.
#[derive(Debug, Clone)]
pub struct CgmShiftSuffix {
    column: usize,
    deltas: Vec<f64>,
    suffix_lengths: Vec<usize>,
    lo: f64,
    hi: f64,
}

impl CgmShiftSuffix {
    /// Builds the transformer from an attack configuration and fasting state.
    pub fn from_config(cfg: &CgmAttackConfig, fasting: bool) -> Self {
        let (lo, hi) = cfg.manipulation_range(fasting);
        Self {
            column: cfg.cgm_column,
            deltas: vec![20.0, 50.0, 100.0, 200.0],
            suffix_lengths: cfg.suffix_lengths.clone(),
            lo,
            hi,
        }
    }
}

impl Transformer<Window> for CgmShiftSuffix {
    fn name(&self) -> &str {
        "cgm-shift-suffix"
    }

    fn candidates(&self, input: &Window) -> Vec<Window> {
        let mut out = Vec::new();
        for &k in &self.suffix_lengths {
            let k = k.min(input.len());
            if k == 0 {
                continue;
            }
            for &d in &self.deltas {
                let mut cand = input.clone();
                for row in cand.iter_mut().rev().take(k) {
                    row[self.column] = (row[self.column] + d).clamp(self.lo, self.hi);
                }
                out.push(cand);
            }
        }
        out
    }
}

/// Constraint enforcing the paper's manipulation rule: every **modified**
/// CGM cell must lie in the allowed range, and no feature other than CGM may
/// change at all.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CgmManipulationConstraint {
    column: usize,
    lo: f64,
    hi: f64,
}

impl CgmManipulationConstraint {
    /// Builds the constraint from an attack configuration and fasting state.
    pub fn from_config(cfg: &CgmAttackConfig, fasting: bool) -> Self {
        let (lo, hi) = cfg.manipulation_range(fasting);
        Self {
            column: cfg.cgm_column,
            lo,
            hi,
        }
    }
}

impl Constraint<Window> for CgmManipulationConstraint {
    fn is_satisfied(&self, original: &Window, candidate: &Window) -> bool {
        if original.len() != candidate.len() {
            return false;
        }
        for (orig, cand) in original.iter().zip(candidate) {
            if orig.len() != cand.len() {
                return false;
            }
            for (j, (&o, &c)) in orig.iter().zip(cand).enumerate() {
                if j == self.column {
                    if c != o && !(self.lo..=self.hi).contains(&c) {
                        return false;
                    }
                } else if c != o {
                    // Only the CGM channel is attacker-controlled.
                    return false;
                }
            }
        }
        true
    }
}

/// The glucose state a prediction falls into.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum OriginState {
    /// Below the hypoglycemia threshold.
    Hypo,
    /// Between hypo and the applicable hyper threshold.
    Normal,
    /// Above the applicable hyper threshold.
    Hyper,
}

/// One attacked window plus its context.
#[derive(Debug, Clone)]
pub struct WindowOutcome {
    /// Caller-supplied identifier (e.g. window end index in the series).
    pub index: usize,
    /// Whether the victim was fasting.
    pub fasting: bool,
    /// The benign model prediction (mg/dL).
    pub benign_prediction: f64,
    /// State of the benign prediction.
    pub origin: OriginState,
    /// The attack search result.
    pub result: AttackResult<Window>,
}

/// Aggregate statistics over a set of attacked windows — the numbers behind
/// the paper's Appendix-A Figures 9 and 10.
#[derive(Debug, Clone, Default)]
pub struct CampaignReport {
    /// Per-window outcomes.
    pub outcomes: Vec<WindowOutcome>,
}

impl CampaignReport {
    /// Fraction of originally *normal* predictions successfully driven
    /// hyperglycemic (`None` when no normal windows were attacked).
    pub fn normal_to_hyper_rate(&self) -> Option<f64> {
        Self::rate(&self.outcomes, OriginState::Normal)
    }

    /// Fraction of originally *hypoglycemic* predictions successfully driven
    /// hyperglycemic (`None` when no hypo windows were attacked).
    pub fn hypo_to_hyper_rate(&self) -> Option<f64> {
        Self::rate(&self.outcomes, OriginState::Hypo)
    }

    /// Overall attack success rate across attacked (non-hyper-origin)
    /// windows.
    pub fn success_rate(&self) -> Option<f64> {
        let attacked: Vec<&WindowOutcome> = self
            .outcomes
            .iter()
            .filter(|o| o.origin != OriginState::Hyper)
            .collect();
        if attacked.is_empty() {
            return None;
        }
        Some(
            attacked.iter().filter(|o| o.result.achieved).count() as f64
                / attacked.len() as f64,
        )
    }

    /// Total model queries spent by the campaign.
    pub fn total_queries(&self) -> usize {
        self.outcomes.iter().map(|o| o.result.queries).sum()
    }

    fn rate(outcomes: &[WindowOutcome], origin: OriginState) -> Option<f64> {
        let of_origin: Vec<&WindowOutcome> =
            outcomes.iter().filter(|o| o.origin == origin).collect();
        if of_origin.is_empty() {
            return None;
        }
        Some(
            of_origin.iter().filter(|o| o.result.achieved).count() as f64
                / of_origin.len() as f64,
        )
    }
}

/// A window to attack: the benign input plus its fasting state and an
/// identifier for reporting.
#[derive(Debug, Clone)]
pub struct CgmCase {
    /// Caller-supplied identifier (e.g. window end index).
    pub index: usize,
    /// The benign feature window.
    pub window: Window,
    /// Whether the victim is fasting at prediction time.
    pub fasting: bool,
}

/// Attacks one window: builds the paper's transformers/constraint/goal for
/// the window's fasting state and runs the explorer.
pub fn attack_window<E: Explorer<Window>>(
    model: &dyn TargetModel<Window>,
    case: &CgmCase,
    explorer: &E,
    cfg: &CgmAttackConfig,
) -> WindowOutcome {
    let goal = Goal::PushAbove(cfg.threshold(case.fasting));
    let set = CgmSetSuffix::from_config(cfg, case.fasting);
    let shift = CgmShiftSuffix::from_config(cfg, case.fasting);
    let constraint = CgmManipulationConstraint::from_config(cfg, case.fasting);
    let benign = model.predict(&case.window);
    let origin = if benign < cfg.hypo_threshold {
        OriginState::Hypo
    } else if benign > cfg.threshold(case.fasting) {
        OriginState::Hyper
    } else {
        OriginState::Normal
    };
    let result = explorer.explore(
        &case.window,
        model,
        &[&set, &shift],
        &[&constraint],
        &goal,
    );
    WindowOutcome {
        index: case.index,
        fasting: case.fasting,
        benign_prediction: benign,
        origin,
        result,
    }
}

/// Runs a full campaign over many windows, skipping nothing: windows whose
/// benign prediction is already hyperglycemic are recorded (with their
/// trivially-achieved result) but excluded from the success rates.
pub fn run_campaign<E: Explorer<Window>>(
    model: &dyn TargetModel<Window>,
    cases: &[CgmCase],
    explorer: &E,
    cfg: &CgmAttackConfig,
) -> CampaignReport {
    let _span = lgo_trace::span("attack/campaign");
    // Each case's search is independent and internally seeded, so the
    // per-window fan-out over the lgo-runtime pool returns outcomes in
    // case order, bit-identical to the serial loop it replaces.
    let report = CampaignReport {
        outcomes: lgo_runtime::par_map(cases, |c| {
            attack_window(model, c, explorer, cfg)
        }),
    };
    if lgo_trace::enabled() {
        // Aggregated after the fan-out (serially, in case order) so the
        // counters are pure functions of the outcomes, not the schedule.
        lgo_trace::counter("attack/campaigns", 1);
        lgo_trace::counter("attack/windows", report.outcomes.len() as u64);
        for o in &report.outcomes {
            if o.result.achieved {
                lgo_trace::counter("attack/successes", 1);
            }
            lgo_trace::record("attack/queries_per_window", o.result.queries as u64);
        }
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{FnModel, GreedyExplorer};

    /// A model that predicts the mean of the CGM column — monotone in the
    /// manipulation, like the real forecaster.
    fn mean_cgm_model() -> FnModel<impl Fn(&Window) -> f64> {
        FnModel::new(|w: &Window| w.iter().map(|r| r[0]).sum::<f64>() / w.len() as f64)
    }

    fn window(level: f64) -> Window {
        (0..12).map(|_| vec![level, 0.0, 0.0, 70.0]).collect()
    }

    #[test]
    fn set_suffix_candidates_only_touch_cgm() {
        let cfg = CgmAttackConfig::default();
        let t = CgmSetSuffix::from_config(&cfg, true);
        let w = window(100.0);
        let cands = t.candidates(&w);
        assert_eq!(cands.len(), 2 * 6); // suffixes × levels
        for c in &cands {
            for (orig, cand) in w.iter().zip(c) {
                assert_eq!(orig[1..], cand[1..], "non-CGM feature touched");
            }
        }
    }

    #[test]
    fn constraint_blocks_out_of_range_and_foreign_edits() {
        let cfg = CgmAttackConfig::default();
        let c = CgmManipulationConstraint::from_config(&cfg, true);
        let w = window(100.0);
        // In-range CGM edit passes.
        let mut ok = w.clone();
        ok[11][0] = 300.0;
        assert!(c.is_satisfied(&w, &ok));
        // Below 125 (fasting floor) fails.
        let mut low = w.clone();
        low[11][0] = 110.0;
        assert!(!c.is_satisfied(&w, &low));
        // Above 499 fails.
        let mut high = w.clone();
        high[11][0] = 600.0;
        assert!(!c.is_satisfied(&w, &high));
        // Touching another feature fails.
        let mut foreign = w.clone();
        foreign[3][2] = 50.0;
        assert!(!c.is_satisfied(&w, &foreign));
        // Unmodified window passes.
        assert!(c.is_satisfied(&w, &w.clone()));
    }

    #[test]
    fn postprandial_range_is_tighter() {
        let cfg = CgmAttackConfig::default();
        assert_eq!(cfg.manipulation_range(true), (125.0, 499.0));
        assert_eq!(cfg.manipulation_range(false), (180.0, 499.0));
        let c = CgmManipulationConstraint::from_config(&cfg, false);
        let w = window(100.0);
        let mut cand = w.clone();
        cand[11][0] = 150.0; // legal while fasting, illegal postprandial
        assert!(!c.is_satisfied(&w, &cand));
    }

    #[test]
    fn attack_succeeds_on_monotone_model() {
        let model = mean_cgm_model();
        let cfg = CgmAttackConfig::default();
        let case = CgmCase {
            index: 0,
            window: window(100.0),
            fasting: true,
        };
        let out = attack_window(&model, &case, &GreedyExplorer::new(8), &cfg);
        assert_eq!(out.origin, OriginState::Normal);
        assert!(out.result.achieved, "mean model should be attackable");
        assert!(out.result.best_output > 125.0);
        // The adversarial window respects the constraint.
        let c = CgmManipulationConstraint::from_config(&cfg, true);
        assert!(c.is_satisfied(&case.window, &out.result.best_input));
    }

    #[test]
    fn origin_classification() {
        let model = mean_cgm_model();
        let cfg = CgmAttackConfig::default();
        let explorer = GreedyExplorer::new(4);
        let hypo = attack_window(
            &model,
            &CgmCase {
                index: 0,
                window: window(60.0),
                fasting: true,
            },
            &explorer,
            &cfg,
        );
        assert_eq!(hypo.origin, OriginState::Hypo);
        let hyper = attack_window(
            &model,
            &CgmCase {
                index: 1,
                window: window(200.0),
                fasting: true,
            },
            &explorer,
            &cfg,
        );
        assert_eq!(hyper.origin, OriginState::Hyper);
        assert_eq!(hyper.result.steps, 0, "already adversarial");
    }

    #[test]
    fn campaign_rates() {
        let model = mean_cgm_model();
        let cfg = CgmAttackConfig::default();
        let cases: Vec<CgmCase> = [60.0, 100.0, 110.0, 200.0]
            .iter()
            .enumerate()
            .map(|(i, &lvl)| CgmCase {
                index: i,
                window: window(lvl),
                fasting: true,
            })
            .collect();
        let report = run_campaign(&model, &cases, &GreedyExplorer::new(8), &cfg);
        assert_eq!(report.outcomes.len(), 4);
        // Mean model is fully attackable: all non-hyper origins succeed.
        assert_eq!(report.normal_to_hyper_rate(), Some(1.0));
        assert_eq!(report.hypo_to_hyper_rate(), Some(1.0));
        assert_eq!(report.success_rate(), Some(1.0));
        assert!(report.total_queries() >= 4);
    }

    #[test]
    fn campaign_with_unattackable_model() {
        // A model that ignores its input cannot be attacked.
        let model = FnModel::new(|_: &Window| 100.0);
        let cfg = CgmAttackConfig::default();
        let cases = vec![CgmCase {
            index: 0,
            window: window(100.0),
            fasting: true,
        }];
        let report = run_campaign(&model, &cases, &GreedyExplorer::new(4), &cfg);
        assert_eq!(report.success_rate(), Some(0.0));
        assert_eq!(report.hypo_to_hyper_rate(), None);
    }
}
