//! # lgo-attack
//!
//! A from-scratch implementation of the algorithmic core of **URET** — the
//! Universal Robustness Evaluation Toolkit for evasion attacks (Eykholt et
//! al., USENIX Security 2023) — which the paper uses to attack the blood
//! glucose forecaster.
//!
//! URET frames evasion as **graph exploration**: vertices are candidate
//! inputs, edges are *input transformations*, and the attacker searches for a
//! path from the benign input to any input that (a) satisfies the domain's
//! feasibility *constraints* and (b) achieves the adversarial *goal* on the
//! target model. This crate provides that frame generically:
//!
//! - [`TargetModel`] — anything mapping an input to a scalar output,
//! - [`Transformer`] — enumerates feasible single-edit neighbours,
//! - [`Constraint`] — domain feasibility (e.g. physiological CGM ranges),
//! - [`Goal`] — what the adversary wants of the model output,
//! - explorers: [`GreedyExplorer`] (best-first, URET's default),
//!   [`BeamExplorer`] and [`RandomExplorer`] (the brute/random baselines).
//!
//! The [`cgm`] module instantiates the frame for the paper's BGMS case
//! study: transformers that manipulate only the CGM channel of a feature
//! window, constrained to the paper's hyperglycemic ranges
//! (125–499 mg/dL fasting, 180–499 mg/dL postprandial).
//!
//! # Examples
//!
//! Attacking a toy model that averages its input:
//!
//! ```
//! use lgo_attack::{FnModel, GreedyExplorer, Goal, Explorer};
//! use lgo_attack::{Transformer, Constraint};
//!
//! struct Bump;
//! impl Transformer<Vec<f64>> for Bump {
//!     fn name(&self) -> &str { "bump" }
//!     fn candidates(&self, x: &Vec<f64>) -> Vec<Vec<f64>> {
//!         (0..x.len()).map(|i| {
//!             let mut y = x.clone();
//!             y[i] += 1.0;
//!             y
//!         }).collect()
//!     }
//! }
//!
//! let model = FnModel::new(|x: &Vec<f64>| x.iter().sum::<f64>() / x.len() as f64);
//! let goal = Goal::PushAbove(2.0);
//! let explorer = GreedyExplorer::new(16);
//! let result = explorer.explore(
//!     &vec![0.0, 0.0],
//!     &model,
//!     &[&Bump],
//!     &[],
//!     &goal,
//! );
//! assert!(result.achieved);
//! ```

use std::fmt;

/// A model under attack: maps an input to the scalar the adversary cares
/// about (here: the predicted blood glucose in mg/dL).
///
/// `Sync` is required so campaigns can query one trained model from many
/// lgo-runtime worker threads; inference is read-only, so implementations
/// get this for free unless they smuggle in interior mutability.
pub trait TargetModel<I>: Sync {
    /// Queries the model once.
    fn predict(&self, input: &I) -> f64;
}

/// Adapter turning any closure into a [`TargetModel`].
///
/// # Examples
///
/// ```
/// use lgo_attack::{FnModel, TargetModel};
///
/// let m = FnModel::new(|x: &f64| x * 2.0);
/// assert_eq!(m.predict(&3.0), 6.0);
/// ```
pub struct FnModel<F>(F);

impl<F> FnModel<F> {
    /// Wraps a closure.
    pub fn new(f: F) -> Self {
        Self(f)
    }
}

impl<I, F: Fn(&I) -> f64 + Sync> TargetModel<I> for FnModel<F> {
    fn predict(&self, input: &I) -> f64 {
        (self.0)(input)
    }
}

/// An edge generator of the transformation graph: given a vertex, enumerate
/// feasible single-edit neighbours.
///
/// Implementations should keep each candidate *small* (one conceptual edit);
/// the explorer composes edits into multi-step paths.
pub trait Transformer<I> {
    /// Human-readable transformer name (for reports).
    fn name(&self) -> &str;

    /// The neighbours of `input` under this transformation family.
    fn candidates(&self, input: &I) -> Vec<I>;
}

/// A feasibility predicate comparing a candidate against the original input
/// (so it can constrain *modifications* rather than absolute values).
pub trait Constraint<I> {
    /// Whether `candidate`, derived from `original`, is feasible.
    fn is_satisfied(&self, original: &I, candidate: &I) -> bool;
}

/// The adversarial objective on the model's scalar output.
///
/// # Examples
///
/// ```
/// use lgo_attack::Goal;
///
/// let g = Goal::PushAbove(180.0);
/// assert!(g.achieved(200.0));
/// assert!(g.score(150.0) < g.score(170.0));
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Goal {
    /// Drive the output strictly above a threshold (the paper's goal:
    /// force a hyperglycemia prediction).
    PushAbove(f64),
    /// Drive the output strictly below a threshold (e.g. mask a real
    /// hyperglycemia).
    PushBelow(f64),
}

impl Goal {
    /// Whether `output` satisfies the goal.
    pub fn achieved(&self, output: f64) -> bool {
        match *self {
            Goal::PushAbove(t) => output > t,
            Goal::PushBelow(t) => output < t,
        }
    }

    /// Monotone progress score: higher is closer to (or further past) the
    /// goal. Used by the explorers to rank candidates.
    pub fn score(&self, output: f64) -> f64 {
        match *self {
            Goal::PushAbove(t) => output - t,
            Goal::PushBelow(t) => t - output,
        }
    }
}

/// Outcome of one attack exploration.
#[derive(Debug, Clone)]
pub struct AttackResult<I> {
    /// The best adversarial input found.
    pub best_input: I,
    /// Model output on [`Self::best_input`].
    pub best_output: f64,
    /// Whether the goal was achieved.
    pub achieved: bool,
    /// Number of model queries spent.
    pub queries: usize,
    /// Number of transformation steps on the accepted path.
    pub steps: usize,
}

impl<I> AttackResult<I> {
    fn benign(input: I, output: f64, goal: &Goal) -> Self {
        Self {
            achieved: goal.achieved(output),
            best_input: input,
            best_output: output,
            queries: 1,
            steps: 0,
        }
    }
}

impl<I> fmt::Display for AttackResult<I> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "AttackResult {{ achieved: {}, output: {:.2}, queries: {}, steps: {} }}",
            self.achieved, self.best_output, self.queries, self.steps
        )
    }
}

/// A search strategy over the transformation graph.
///
/// `Sync` is required so one explorer can drive many per-window searches
/// from lgo-runtime worker threads; explorers are stateless between
/// `explore` calls (per-window RNGs are re-seeded internally), so
/// implementations get this for free.
pub trait Explorer<I: Clone>: Sync {
    /// Searches from `input` for an adversarial example.
    ///
    /// Every candidate consumes one model query; implementations must stop
    /// as soon as the goal is achieved (URET's early-exit behaviour).
    fn explore(
        &self,
        input: &I,
        model: &dyn TargetModel<I>,
        transformers: &[&dyn Transformer<I>],
        constraints: &[&dyn Constraint<I>],
        goal: &Goal,
    ) -> AttackResult<I>;
}

fn feasible<I>(constraints: &[&dyn Constraint<I>], original: &I, candidate: &I) -> bool {
    constraints.iter().all(|c| c.is_satisfied(original, candidate))
}

/// Greedy best-first exploration — URET's default strategy: at each step,
/// evaluate every feasible neighbour and move to the best-scoring one;
/// stop at the goal, a dead end, or the step budget.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GreedyExplorer {
    max_steps: usize,
    maximizing: bool,
}

impl GreedyExplorer {
    /// Creates a greedy explorer with a maximum path length. It stops as
    /// soon as the goal is achieved (URET's evasion behaviour) — the
    /// adversarial example it returns is a *minimal* manipulation.
    ///
    /// # Panics
    ///
    /// Panics if `max_steps == 0`.
    pub fn new(max_steps: usize) -> Self {
        assert!(max_steps > 0, "GreedyExplorer: max_steps must be positive");
        Self {
            max_steps,
            maximizing: false,
        }
    }

    /// Creates a greedy explorer that keeps climbing for the full budget
    /// even after the goal is achieved, returning the *worst-case*
    /// adversarial example it can find. This is the right mode for risk
    /// quantification, where `Z_t` should measure the maximum prediction
    /// deviation the attack can induce, not the first sufficient one.
    ///
    /// # Panics
    ///
    /// Panics if `max_steps == 0`.
    pub fn maximizing(max_steps: usize) -> Self {
        assert!(max_steps > 0, "GreedyExplorer: max_steps must be positive");
        Self {
            max_steps,
            maximizing: true,
        }
    }
}

impl<I: Clone> Explorer<I> for GreedyExplorer {
    fn explore(
        &self,
        input: &I,
        model: &dyn TargetModel<I>,
        transformers: &[&dyn Transformer<I>],
        constraints: &[&dyn Constraint<I>],
        goal: &Goal,
    ) -> AttackResult<I> {
        let mut result = AttackResult::benign(input.clone(), model.predict(input), goal);
        if result.achieved && !self.maximizing {
            return result;
        }
        let mut current = input.clone();
        let mut current_score = goal.score(result.best_output);
        for step in 1..=self.max_steps {
            let mut best: Option<(I, f64)> = None;
            for t in transformers {
                for cand in t.candidates(&current) {
                    if !feasible(constraints, input, &cand) {
                        continue;
                    }
                    let out = model.predict(&cand);
                    result.queries += 1;
                    let score = goal.score(out);
                    if goal.achieved(out) && !self.maximizing {
                        result.best_input = cand;
                        result.best_output = out;
                        result.achieved = true;
                        result.steps = step;
                        return result;
                    }
                    if best.as_ref().is_none_or(|&(_, s)| score > goal.score(s)) {
                        best = Some((cand, out));
                    }
                }
            }
            match best {
                Some((cand, out)) if goal.score(out) > current_score => {
                    current = cand;
                    current_score = goal.score(out);
                    result.best_input = current.clone();
                    result.best_output = out;
                    result.steps = step;
                    if goal.achieved(out) {
                        result.achieved = true;
                    }
                }
                // Dead end or no improvement: greedy terminates.
                _ => break,
            }
        }
        result
    }
}

/// Beam-search exploration: keeps the `width` best frontier vertices per
/// depth level — more thorough than greedy at higher query cost.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BeamExplorer {
    width: usize,
    depth: usize,
}

impl BeamExplorer {
    /// Creates a beam explorer.
    ///
    /// # Panics
    ///
    /// Panics if `width == 0` or `depth == 0`.
    pub fn new(width: usize, depth: usize) -> Self {
        assert!(width > 0, "BeamExplorer: width must be positive");
        assert!(depth > 0, "BeamExplorer: depth must be positive");
        Self { width, depth }
    }
}

impl<I: Clone> Explorer<I> for BeamExplorer {
    fn explore(
        &self,
        input: &I,
        model: &dyn TargetModel<I>,
        transformers: &[&dyn Transformer<I>],
        constraints: &[&dyn Constraint<I>],
        goal: &Goal,
    ) -> AttackResult<I> {
        let mut result = AttackResult::benign(input.clone(), model.predict(input), goal);
        if result.achieved {
            return result;
        }
        let mut frontier: Vec<(I, f64)> = vec![(input.clone(), result.best_output)];
        for depth in 1..=self.depth {
            let mut next: Vec<(I, f64)> = Vec::new();
            for (vertex, _) in &frontier {
                for t in transformers {
                    for cand in t.candidates(vertex) {
                        if !feasible(constraints, input, &cand) {
                            continue;
                        }
                        let out = model.predict(&cand);
                        result.queries += 1;
                        if goal.achieved(out) {
                            result.best_input = cand;
                            result.best_output = out;
                            result.achieved = true;
                            result.steps = depth;
                            return result;
                        }
                        if goal.score(out) > goal.score(result.best_output) {
                            result.best_input = cand.clone();
                            result.best_output = out;
                            result.steps = depth;
                        }
                        next.push((cand, out));
                    }
                }
            }
            if next.is_empty() {
                break;
            }
            // total_cmp keeps the beam ordering deterministic even if a
            // score goes NaN (it sinks below every real in this descending
            // sort) instead of panicking mid-attack.
            next.sort_by(|a, b| goal.score(b.1).total_cmp(&goal.score(a.1)));
            next.truncate(self.width);
            frontier = next;
        }
        result
    }
}

/// Random-walk exploration: the cheap baseline — repeated random paths
/// through the graph.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RandomExplorer {
    trials: usize,
    depth: usize,
    seed: u64,
}

impl RandomExplorer {
    /// Creates a random explorer with `trials` independent walks of length
    /// `depth`, seeded deterministically.
    ///
    /// # Panics
    ///
    /// Panics if `trials == 0` or `depth == 0`.
    pub fn new(trials: usize, depth: usize, seed: u64) -> Self {
        assert!(trials > 0, "RandomExplorer: trials must be positive");
        assert!(depth > 0, "RandomExplorer: depth must be positive");
        Self {
            trials,
            depth,
            seed,
        }
    }
}

impl<I: Clone> Explorer<I> for RandomExplorer {
    fn explore(
        &self,
        input: &I,
        model: &dyn TargetModel<I>,
        transformers: &[&dyn Transformer<I>],
        constraints: &[&dyn Constraint<I>],
        goal: &Goal,
    ) -> AttackResult<I> {
        use rand::rngs::StdRng;
        use rand::{RngExt, SeedableRng};

        let mut result = AttackResult::benign(input.clone(), model.predict(input), goal);
        if result.achieved {
            return result;
        }
        let mut rng = StdRng::seed_from_u64(self.seed);
        for _ in 0..self.trials {
            let mut current = input.clone();
            for step in 1..=self.depth {
                // Pick a random transformer, then a random feasible candidate.
                if transformers.is_empty() {
                    return result;
                }
                let t = transformers[rng.random_range(0..transformers.len())];
                let mut cands: Vec<I> = t
                    .candidates(&current)
                    .into_iter()
                    .filter(|c| feasible(constraints, input, c))
                    .collect();
                if cands.is_empty() {
                    break;
                }
                let pick = rng.random_range(0..cands.len());
                let cand = cands.swap_remove(pick);
                let out = model.predict(&cand);
                result.queries += 1;
                if goal.score(out) > goal.score(result.best_output) {
                    result.best_input = cand.clone();
                    result.best_output = out;
                    result.steps = step;
                }
                if goal.achieved(out) {
                    result.achieved = true;
                    return result;
                }
                current = cand;
            }
        }
        result
    }
}

pub mod cgm;

#[cfg(test)]
mod tests {
    use super::*;

    /// Transformer on `Vec<f64>`: add ±delta to each coordinate.
    struct Nudge(f64);

    impl Transformer<Vec<f64>> for Nudge {
        fn name(&self) -> &str {
            "nudge"
        }
        fn candidates(&self, x: &Vec<f64>) -> Vec<Vec<f64>> {
            let mut out = Vec::new();
            for i in 0..x.len() {
                for sign in [1.0, -1.0] {
                    let mut y = x.clone();
                    y[i] += sign * self.0;
                    out.push(y);
                }
            }
            out
        }
    }

    /// Constraint: stay inside a box.
    struct Box1 {
        lo: f64,
        hi: f64,
    }

    impl Constraint<Vec<f64>> for Box1 {
        fn is_satisfied(&self, _orig: &Vec<f64>, cand: &Vec<f64>) -> bool {
            cand.iter().all(|&v| (self.lo..=self.hi).contains(&v))
        }
    }

    fn sum_model() -> FnModel<impl Fn(&Vec<f64>) -> f64> {
        FnModel::new(|x: &Vec<f64>| x.iter().sum::<f64>())
    }

    #[test]
    fn goal_semantics() {
        let g = Goal::PushBelow(0.0);
        assert!(g.achieved(-1.0));
        assert!(!g.achieved(0.0));
        assert!(g.score(-2.0) > g.score(-1.0));
    }

    #[test]
    fn greedy_reaches_goal() {
        let m = sum_model();
        let r = GreedyExplorer::new(20).explore(
            &vec![0.0, 0.0],
            &m,
            &[&Nudge(1.0)],
            &[],
            &Goal::PushAbove(5.0),
        );
        assert!(r.achieved);
        assert!(r.best_output > 5.0);
        assert!(r.steps <= 20);
        assert!(r.queries > 0);
    }

    #[test]
    fn greedy_respects_constraints() {
        let m = sum_model();
        let bx = Box1 { lo: -1.0, hi: 1.0 };
        let r = GreedyExplorer::new(50).explore(
            &vec![0.0, 0.0],
            &m,
            &[&Nudge(1.0)],
            &[&bx],
            &Goal::PushAbove(5.0),
        );
        // Max achievable sum under the box is 2.0 < 5.0.
        assert!(!r.achieved);
        assert!(r.best_input.iter().all(|&v| v.abs() <= 1.0));
        assert!(r.best_output <= 2.0 + 1e-12);
    }

    #[test]
    fn already_adversarial_input_returns_immediately() {
        let m = sum_model();
        let r = GreedyExplorer::new(5).explore(
            &vec![10.0],
            &m,
            &[&Nudge(1.0)],
            &[],
            &Goal::PushAbove(5.0),
        );
        assert!(r.achieved);
        assert_eq!(r.queries, 1);
        assert_eq!(r.steps, 0);
    }

    #[test]
    fn maximizing_greedy_keeps_climbing_past_goal() {
        let m = sum_model();
        let goal = Goal::PushAbove(2.0);
        let early = GreedyExplorer::new(10).explore(&vec![0.0], &m, &[&Nudge(1.0)], &[], &goal);
        let maxed =
            GreedyExplorer::maximizing(10).explore(&vec![0.0], &m, &[&Nudge(1.0)], &[], &goal);
        assert!(early.achieved && maxed.achieved);
        // Early exit stops just past the threshold; maximizing burns the
        // whole budget.
        assert!(early.best_output <= 3.0 + 1e-12);
        assert_eq!(maxed.best_output, 10.0);
        assert_eq!(maxed.steps, 10);
    }

    #[test]
    fn maximizing_on_already_adversarial_input_still_climbs() {
        let m = sum_model();
        let goal = Goal::PushAbove(2.0);
        let r = GreedyExplorer::maximizing(3).explore(&vec![5.0], &m, &[&Nudge(1.0)], &[], &goal);
        assert!(r.achieved);
        assert_eq!(r.best_output, 8.0);
    }

    #[test]
    fn beam_matches_or_beats_greedy_on_plateau() {
        // Model with a plateau that greedy cannot cross: score depends only
        // on x[0] + x[1] being >= 2 simultaneously.
        let m = FnModel::new(|x: &Vec<f64>| {
            if x[0] >= 1.0 && x[1] >= 1.0 {
                10.0
            } else {
                0.0
            }
        });
        let goal = Goal::PushAbove(5.0);
        let beam = BeamExplorer::new(8, 4).explore(
            &vec![0.0, 0.0],
            &m,
            &[&Nudge(1.0)],
            &[],
            &goal,
        );
        assert!(beam.achieved, "beam should cross the plateau");
    }

    #[test]
    fn random_explorer_is_deterministic_per_seed() {
        let m = sum_model();
        let goal = Goal::PushAbove(3.0);
        let a = RandomExplorer::new(5, 10, 7).explore(&vec![0.0], &m, &[&Nudge(1.0)], &[], &goal);
        let b = RandomExplorer::new(5, 10, 7).explore(&vec![0.0], &m, &[&Nudge(1.0)], &[], &goal);
        assert_eq!(a.achieved, b.achieved);
        assert_eq!(a.best_output, b.best_output);
        assert_eq!(a.queries, b.queries);
    }

    #[test]
    fn result_display_is_informative() {
        let m = sum_model();
        let r = GreedyExplorer::new(3).explore(
            &vec![0.0],
            &m,
            &[&Nudge(1.0)],
            &[],
            &Goal::PushAbove(100.0),
        );
        let s = r.to_string();
        assert!(s.contains("achieved: false"));
        assert!(s.contains("queries"));
    }

    #[test]
    #[should_panic(expected = "max_steps")]
    fn greedy_rejects_zero_budget() {
        let _ = GreedyExplorer::new(0);
    }
}
