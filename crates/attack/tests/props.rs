//! Property-based tests for the attack framework: feasibility of every
//! transformer candidate, goal semantics, and explorer guarantees.

use lgo_attack::cgm::{
    CgmAttackConfig, CgmManipulationConstraint, CgmSetSuffix, CgmShiftSuffix, Window,
};
use lgo_attack::{
    BeamExplorer, Constraint, Explorer, FnModel, Goal, GreedyExplorer, RandomExplorer,
    Transformer,
};
use proptest::prelude::*;

fn window_strategy() -> impl Strategy<Value = Window> {
    proptest::collection::vec(
        (40.0..400.0f64).prop_map(|cgm| vec![cgm, 0.5, 2.0, 70.0]),
        12,
    )
}

proptest! {
    #[test]
    fn set_suffix_candidates_always_feasible(w in window_strategy(), fasting in any::<bool>()) {
        let cfg = CgmAttackConfig::default();
        let t = CgmSetSuffix::from_config(&cfg, fasting);
        let c = CgmManipulationConstraint::from_config(&cfg, fasting);
        for cand in t.candidates(&w) {
            prop_assert!(c.is_satisfied(&w, &cand));
        }
    }

    #[test]
    fn shift_suffix_candidates_always_feasible(w in window_strategy(), fasting in any::<bool>()) {
        let cfg = CgmAttackConfig::default();
        let t = CgmShiftSuffix::from_config(&cfg, fasting);
        let c = CgmManipulationConstraint::from_config(&cfg, fasting);
        for cand in t.candidates(&w) {
            prop_assert!(c.is_satisfied(&w, &cand));
        }
    }

    #[test]
    fn candidates_only_touch_the_suffix(w in window_strategy(), fasting in any::<bool>()) {
        let cfg = CgmAttackConfig::default();
        let max_suffix = *cfg.suffix_lengths.iter().max().unwrap();
        let t = CgmSetSuffix::from_config(&cfg, fasting);
        for cand in t.candidates(&w) {
            for (i, (orig, new)) in w.iter().zip(&cand).enumerate() {
                if i + max_suffix < w.len() {
                    prop_assert_eq!(orig, new, "prefix row {} modified", i);
                }
                // Non-CGM features never change anywhere.
                prop_assert_eq!(&orig[1..], &new[1..]);
            }
        }
    }

    #[test]
    fn goal_score_is_consistent_with_achievement(threshold in -100.0..100.0f64, out in -200.0..200.0f64) {
        for goal in [Goal::PushAbove(threshold), Goal::PushBelow(threshold)] {
            if goal.achieved(out) {
                prop_assert!(goal.score(out) > 0.0);
            } else {
                prop_assert!(goal.score(out) <= 0.0);
            }
        }
    }

    #[test]
    fn explorers_never_return_worse_than_benign(
        w in window_strategy(),
        threshold in 100.0..300.0f64,
    ) {
        // Model: mean of the CGM channel.
        let model = FnModel::new(|win: &Window| {
            win.iter().map(|r| r[0]).sum::<f64>() / win.len() as f64
        });
        let goal = Goal::PushAbove(threshold);
        let cfg = CgmAttackConfig::default();
        let set = CgmSetSuffix::from_config(&cfg, true);
        let constraint = CgmManipulationConstraint::from_config(&cfg, true);
        let benign = w.iter().map(|r| r[0]).sum::<f64>() / w.len() as f64;

        let transformers: [&dyn Transformer<Window>; 1] = [&set];
        let constraints: [&dyn Constraint<Window>; 1] = [&constraint];
        let results = [
            GreedyExplorer::new(3).explore(&w, &model, &transformers, &constraints, &goal),
            GreedyExplorer::maximizing(3).explore(&w, &model, &transformers, &constraints, &goal),
            BeamExplorer::new(4, 3).explore(&w, &model, &transformers, &constraints, &goal),
            RandomExplorer::new(3, 3, 7).explore(&w, &model, &transformers, &constraints, &goal),
        ];
        for r in results {
            prop_assert!(goal.score(r.best_output) >= goal.score(benign) - 1e-9);
            prop_assert!(constraint.is_satisfied(&w, &r.best_input));
            prop_assert!(r.queries >= 1);
            if r.achieved {
                prop_assert!(goal.achieved(r.best_output));
            }
        }
    }
}
