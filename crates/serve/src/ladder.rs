//! The graded load-shedding ladder: a bank of detectors ordered from most
//! to least expensive.
//!
//! Under queue pressure the service does not drop samples first — it steps
//! scoring down this ladder (the paper's MAD-GAN → OC-SVM → kNN fallback
//! chain, reusing the detectors `lgo_core::selective` trains), trading
//! detection fidelity for throughput. Only at shed pressure does scoring
//! stop entirely, and even then samples still advance patient state.

use std::sync::Arc;

use lgo_detect::AnomalyDetector;

/// An ordered bank of trained detectors: level 0 is the primary (most
/// faithful, most expensive) detector; higher levels are progressively
/// cheaper fallbacks.
#[derive(Clone)]
pub struct DetectorBank {
    levels: Vec<Arc<dyn AnomalyDetector>>,
}

impl DetectorBank {
    /// Builds a bank from at least one trained detector.
    ///
    /// # Panics
    ///
    /// Panics when `levels` is empty; a service with nothing to score with
    /// is a configuration error, not a runtime condition.
    #[must_use]
    pub fn new(levels: Vec<Arc<dyn AnomalyDetector>>) -> Self {
        assert!(!levels.is_empty(), "DetectorBank: at least one detector");
        Self { levels }
    }

    /// Number of ladder levels.
    #[must_use]
    pub fn len(&self) -> usize {
        self.levels.len()
    }

    /// Whether the bank is empty (never true by construction).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.levels.is_empty()
    }

    /// The detector at `level`, clamped to the cheapest one — pressure can
    /// push the requested level past the end of a short ladder and the
    /// service should degrade gracefully, not index out of bounds.
    #[must_use]
    pub fn at(&self, level: usize) -> &Arc<dyn AnomalyDetector> {
        &self.levels[level.min(self.levels.len() - 1)]
    }

    /// Detector names, ladder order — for reports.
    #[must_use]
    pub fn names(&self) -> Vec<String> {
        self.levels.iter().map(|d| d.name().to_string()).collect()
    }
}

impl std::fmt::Debug for DetectorBank {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("DetectorBank")
            .field("levels", &self.names())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lgo_detect::Window;

    struct Named(&'static str);

    impl AnomalyDetector for Named {
        fn name(&self) -> &str {
            self.0
        }
        fn score(&self, _w: &Window) -> f64 {
            0.0
        }
    }

    fn bank() -> DetectorBank {
        DetectorBank::new(vec![
            Arc::new(Named("madgan")),
            Arc::new(Named("ocsvm")),
            Arc::new(Named("knn")),
        ])
    }

    #[test]
    fn levels_resolve_in_order_and_clamp() {
        let b = bank();
        assert_eq!(b.len(), 3);
        assert_eq!(b.at(0).name(), "madgan");
        assert_eq!(b.at(1).name(), "ocsvm");
        assert_eq!(b.at(2).name(), "knn");
        assert_eq!(b.at(99).name(), "knn", "past-the-end clamps to cheapest");
        assert_eq!(b.names(), vec!["madgan", "ocsvm", "knn"]);
    }

    #[test]
    #[should_panic(expected = "at least one detector")]
    fn empty_bank_rejected() {
        let _ = DetectorBank::new(Vec::new());
    }
}
