//! Watchdog deadlines and bounded retry-with-backoff for scoring calls.
//!
//! A stalled detector (wedged BLAS call, pathological input, injected
//! fault) must not wedge the whole service. Each micro-batch scoring call
//! can therefore run under a wall-clock deadline: the job executes on a
//! freshly spawned thread while the service waits with a timeout. On a
//! miss the job is *abandoned* — the thread keeps running but its result
//! will be discarded — and the call retries with exponential backoff.
//!
//! Abandoned threads are the dangerous resource: each one is a live stall.
//! The watchdog counts them exactly (an atomic handshake decides, for
//! every attempt, whether the waiter or the worker "won") and refuses to
//! spawn new work once `max_wedged` are still live, surfacing
//! [`WatchdogError::Exhausted`] so the caller can fall down the detector
//! ladder instead of piling up stuck threads.
//!
//! With no deadline configured the job runs inline on the caller's thread:
//! zero threads, zero timing dependence — the mode the deterministic
//! tests pin.

use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{mpsc, Arc};
use std::time::Duration;

/// Why a watchdog-supervised call produced no result.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WatchdogError {
    /// Every attempt (1 + retries) overran the deadline.
    DeadlineExceeded {
        /// Attempts made, all of which timed out.
        attempts: u32,
    },
    /// Too many abandoned scoring threads are still live; no new attempt
    /// was spawned.
    Exhausted {
        /// Abandoned threads currently live.
        wedged: usize,
        /// The configured cap.
        cap: usize,
    },
}

impl std::fmt::Display for WatchdogError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WatchdogError::DeadlineExceeded { attempts } => {
                write!(f, "scoring call missed its deadline {attempts} time(s)")
            }
            WatchdogError::Exhausted { wedged, cap } => {
                write!(f, "{wedged} wedged scoring thread(s) live (cap {cap})")
            }
        }
    }
}

impl std::error::Error for WatchdogError {}

/// Timing-dependent counters, reported but never part of the
/// deterministic contract (they are zero in inline mode).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct WatchdogStats {
    /// Attempts that overran the deadline.
    pub deadline_misses: u64,
    /// Re-attempts after a miss.
    pub retries: u64,
    /// Calls abandoned after exhausting retries or hitting the wedge cap.
    pub gave_up: u64,
}

/// Supervises scoring calls with deadlines, retries and a cap on
/// abandoned threads. Cloning shares the wedged-thread accounting.
#[derive(Debug, Clone)]
pub struct Watchdog {
    deadline: Option<Duration>,
    retries: u32,
    backoff: Duration,
    max_wedged: usize,
    wedged: Arc<AtomicUsize>,
}

impl Watchdog {
    /// A watchdog with the given policy. `deadline: None` means inline
    /// execution (no threads, no timeouts, no retries).
    #[must_use]
    pub fn new(
        deadline: Option<Duration>,
        retries: u32,
        backoff: Duration,
        max_wedged: usize,
    ) -> Self {
        Self {
            deadline,
            retries,
            backoff,
            max_wedged: max_wedged.max(1),
            wedged: Arc::new(AtomicUsize::new(0)),
        }
    }

    /// Abandoned threads currently live.
    #[must_use]
    pub fn wedged_live(&self) -> usize {
        self.wedged.load(Ordering::SeqCst)
    }

    /// Runs `make_job()` under the deadline policy, retrying on misses.
    /// The factory is invoked once per attempt; each job must be
    /// self-contained (`Send + 'static`) because an abandoned attempt
    /// outlives the call.
    ///
    /// # Errors
    ///
    /// [`WatchdogError::DeadlineExceeded`] after all attempts time out;
    /// [`WatchdogError::Exhausted`] when the wedged-thread cap blocks a
    /// new attempt.
    pub fn run<R, F>(
        &self,
        make_job: impl Fn() -> F,
        stats: &mut WatchdogStats,
    ) -> Result<R, WatchdogError>
    where
        R: Send + 'static,
        F: FnOnce() -> R + Send + 'static,
    {
        let Some(deadline) = self.deadline else {
            return Ok(make_job()());
        };
        let mut backoff = self.backoff;
        let attempts = self.retries + 1;
        for attempt in 0..attempts {
            if attempt > 0 {
                stats.retries += 1;
                std::thread::sleep(backoff);
                backoff = backoff.saturating_mul(2);
            }
            let live = self.wedged.load(Ordering::SeqCst);
            if live >= self.max_wedged {
                stats.gave_up += 1;
                return Err(WatchdogError::Exhausted {
                    wedged: live,
                    cap: self.max_wedged,
                });
            }
            match self.attempt(make_job(), deadline) {
                Some(r) => return Ok(r),
                None => stats.deadline_misses += 1,
            }
        }
        stats.gave_up += 1;
        Err(WatchdogError::DeadlineExceeded { attempts })
    }

    /// One supervised attempt; `None` on deadline miss (the job thread is
    /// then abandoned and self-accounts via the `settled` handshake).
    fn attempt<R, F>(&self, job: F, deadline: Duration) -> Option<R>
    where
        R: Send + 'static,
        F: FnOnce() -> R + Send + 'static,
    {
        let (tx, rx) = mpsc::sync_channel::<R>(1);
        // Exactly one side wins `settled`. Worker wins → it sends and the
        // waiter collects (possibly just after its timeout). Waiter wins →
        // the attempt counts as wedged until the worker finishes and
        // decrements; the worker discards its result.
        let settled = Arc::new(AtomicBool::new(false));
        let worker_settled = Arc::clone(&settled);
        let wedged = Arc::clone(&self.wedged);
        std::thread::spawn(move || {
            let result = job();
            if worker_settled.swap(true, Ordering::SeqCst) {
                // Abandoned: the waiter gave up on this attempt.
                wedged.fetch_sub(1, Ordering::SeqCst);
                lgo_trace::sched("serve/wedged_recovered", 1);
            } else {
                // The send cannot fail: the waiter saw `settled` flip and
                // is blocking on `recv`.
                let _ = tx.send(result);
            }
        });
        match rx.recv_timeout(deadline) {
            Ok(r) => Some(r),
            Err(mpsc::RecvTimeoutError::Timeout) => {
                if settled.swap(true, Ordering::SeqCst) {
                    // The worker finished in the timeout race window and
                    // already sent; collect its result.
                    rx.recv().ok()
                } else {
                    self.wedged.fetch_add(1, Ordering::SeqCst);
                    lgo_trace::sched("serve/wedged_threads", 1);
                    None
                }
            }
            Err(mpsc::RecvTimeoutError::Disconnected) => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dog(deadline_ms: u64, retries: u32, max_wedged: usize) -> Watchdog {
        Watchdog::new(
            Some(Duration::from_millis(deadline_ms)),
            retries,
            Duration::from_millis(1),
            max_wedged,
        )
    }

    #[test]
    fn inline_mode_runs_on_caller_thread() {
        let w = Watchdog::new(None, 3, Duration::from_millis(1), 2);
        let mut s = WatchdogStats::default();
        let caller = std::thread::current().id();
        let ran_on = w.run(|| move || std::thread::current().id(), &mut s);
        assert_eq!(ran_on, Ok(caller));
        assert_eq!(s, WatchdogStats::default(), "no timing counters inline");
    }

    #[test]
    fn fast_job_succeeds_under_deadline() {
        let w = dog(1_000, 0, 2);
        let mut s = WatchdogStats::default();
        assert_eq!(w.run(|| || 21 * 2, &mut s), Ok(42));
        assert_eq!(s.deadline_misses, 0);
        assert_eq!(w.wedged_live(), 0);
    }

    #[test]
    fn stalled_job_times_out_and_is_counted() {
        let w = dog(10, 1, 8);
        let mut s = WatchdogStats::default();
        let out: Result<(), _> = w.run(
            || || std::thread::sleep(Duration::from_millis(400)),
            &mut s,
        );
        assert_eq!(out, Err(WatchdogError::DeadlineExceeded { attempts: 2 }));
        assert_eq!(s.deadline_misses, 2);
        assert_eq!(s.retries, 1);
        assert_eq!(s.gave_up, 1);
        assert_eq!(w.wedged_live(), 2, "both attempts still sleeping");
        // Once the abandoned workers finish they deregister themselves.
        std::thread::sleep(Duration::from_millis(600));
        assert_eq!(w.wedged_live(), 0);
    }

    #[test]
    fn wedge_cap_blocks_new_attempts() {
        let w = dog(5, 0, 1);
        let mut s = WatchdogStats::default();
        let _: Result<(), _> = w.run(
            || || std::thread::sleep(Duration::from_millis(300)),
            &mut s,
        );
        assert_eq!(w.wedged_live(), 1);
        let out = w.run(|| || 7, &mut s);
        assert_eq!(out, Err(WatchdogError::Exhausted { wedged: 1, cap: 1 }));
        assert_eq!(s.gave_up, 2);
    }

    #[test]
    fn recovery_after_wedge_drains() {
        let w = dog(5, 0, 1);
        let mut s = WatchdogStats::default();
        let _: Result<(), _> = w.run(
            || || std::thread::sleep(Duration::from_millis(50)),
            &mut s,
        );
        std::thread::sleep(Duration::from_millis(200));
        assert_eq!(w.wedged_live(), 0);
        assert_eq!(w.run(|| || 7, &mut s), Ok(7), "service recovered");
    }
}
