//! The service's accounting: every sample and window is attributable.
//!
//! The report is split along the determinism boundary the root tests pin:
//! [`ServeStats`] counters are pure functions of the ingest/drain
//! interleave (byte-identical across `LGO_THREADS` settings), while the
//! watchdog's timing counters live in `lgo_serve::WatchdogStats` and are
//! reported separately. [`ServeReport::to_json`] emits canonical JSON —
//! fixed field order, no whitespace variance — so equality of reports can
//! be asserted bytewise.

use crate::watchdog::WatchdogStats;

/// Deterministic service counters (given a fixed ingest/drain interleave).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ServeStats {
    /// Samples accepted into the queue.
    pub ingested: u64,
    /// Samples rejected by backpressure (`try_ingest` on a full queue).
    pub rejected: u64,
    /// Samples pulled out of the queue by scoring cycles.
    pub drained: u64,
    /// Samples discarded because their patient is quarantined.
    pub dropped_quarantined: u64,
    /// Windows completed by the sliding-window state machines.
    pub windows_emitted: u64,
    /// Windows actually scored (any ladder level).
    pub windows_scored: u64,
    /// Windows shed unscored (shed cycles, or ladder exhaustion).
    pub windows_shed: u64,
    /// Scored windows flagged anomalous.
    pub anomalies: u64,
    /// Windows scored per ladder level (index = level).
    pub level_windows: Vec<u64>,
    /// Scoring cycles run.
    pub cycles: u64,
    /// Cycles that ran at a degraded ladder level (> 0).
    pub degraded_cycles: u64,
    /// Cycles that shed scoring entirely.
    pub shed_cycles: u64,
    /// Patient panics captured (each quarantines one patient).
    pub panics: u64,
    /// Highest queue depth observed at a cycle start.
    pub max_depth: u64,
}

/// Full service report: deterministic stats, timing stats, and the
/// quarantine list.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ServeReport {
    /// Deterministic counters.
    pub stats: ServeStats,
    /// Timing-dependent watchdog counters (zero in inline mode).
    pub watchdog: WatchdogStats,
    /// Quarantined patient ids, ascending.
    pub quarantined: Vec<u64>,
    /// Ladder detector names, level order.
    pub ladder: Vec<String>,
}

fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

fn json_u64s(vals: &[u64]) -> String {
    let inner: Vec<String> = vals.iter().map(u64::to_string).collect();
    format!("[{}]", inner.join(","))
}

impl ServeReport {
    /// Canonical single-line JSON: fixed field order, integers only, so
    /// two equal reports serialize to identical bytes.
    #[must_use]
    pub fn to_json(&self) -> String {
        let s = &self.stats;
        let w = &self.watchdog;
        let ladder: Vec<String> = self.ladder.iter().map(|n| json_str(n)).collect();
        format!(
            concat!(
                "{{\"ingested\":{},\"rejected\":{},\"drained\":{},",
                "\"dropped_quarantined\":{},\"windows_emitted\":{},",
                "\"windows_scored\":{},\"windows_shed\":{},\"anomalies\":{},",
                "\"level_windows\":{},\"cycles\":{},\"degraded_cycles\":{},",
                "\"shed_cycles\":{},\"panics\":{},\"max_depth\":{},",
                "\"deadline_misses\":{},\"retries\":{},\"gave_up\":{},",
                "\"quarantined\":{},\"ladder\":[{}]}}"
            ),
            s.ingested,
            s.rejected,
            s.drained,
            s.dropped_quarantined,
            s.windows_emitted,
            s.windows_scored,
            s.windows_shed,
            s.anomalies,
            json_u64s(&s.level_windows),
            s.cycles,
            s.degraded_cycles,
            s.shed_cycles,
            s.panics,
            s.max_depth,
            w.deadline_misses,
            w.retries,
            w.gave_up,
            json_u64s(&self.quarantined),
            ladder.join(","),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn canonical_json_is_stable_and_complete() {
        let mut r = ServeReport {
            stats: ServeStats {
                ingested: 10,
                rejected: 2,
                drained: 8,
                level_windows: vec![3, 1, 0],
                ..ServeStats::default()
            },
            quarantined: vec![4, 7],
            ladder: vec!["madgan".into(), "knn".into()],
            ..ServeReport::default()
        };
        let a = r.to_json();
        assert_eq!(a, r.clone().to_json(), "serialization is pure");
        assert!(a.starts_with("{\"ingested\":10,\"rejected\":2,\"drained\":8,"));
        assert!(a.contains("\"level_windows\":[3,1,0]"));
        assert!(a.contains("\"quarantined\":[4,7]"));
        assert!(a.ends_with("\"ladder\":[\"madgan\",\"knn\"]}"));
        r.stats.anomalies = 1;
        assert_ne!(a, r.to_json(), "every counter is load-bearing");
    }

    #[test]
    fn string_escaping_is_json_safe() {
        assert_eq!(json_str("a\"b\\c\n"), "\"a\\\"b\\\\c\\n\"");
        assert_eq!(json_str("\u{1}"), "\"\\u0001\"");
    }
}
