//! # lgo-serve
//!
//! A fault-tolerant online scoring service that turns the workspace's
//! batch defense pipeline into a long-running stream processor: CGM
//! samples arrive per patient, per-patient sliding-window state machines
//! cut them into detector windows, and micro-batches of windows are
//! scored through the paper's MAD-GAN → OC-SVM → kNN ladder.
//!
//! Robustness is the design center, engineered as four explicit layers
//! (DESIGN.md §14):
//!
//! 1. **Backpressure** — ingest goes through a *bounded* queue
//!    ([`lgo_runtime::BoundedQueue`]). A producer that outruns scoring is
//!    rejected (or blocked) with exact depth accounting; service memory
//!    never grows with offered load.
//! 2. **Graded load-shedding** — queue pressure degrades scoring down
//!    the detector ladder ([`DetectorBank`]) level by level before the
//!    service ever stops scoring, and a shed cycle still advances every
//!    patient state machine; only scoring work is skipped. Every shed
//!    and degrade decision is counted in `lgo-trace`.
//! 3. **Watchdog deadlines** — each micro-batch scoring call can run
//!    under a wall-clock deadline with bounded retry-with-backoff
//!    ([`Watchdog`]); a stalled detector becomes a counted deadline miss
//!    and a ladder fall-through, not a wedged service. Abandoned scorer
//!    threads are accounted exactly and capped.
//! 4. **Patient quarantine** — a detector panic on one patient's window
//!    is captured per window, quarantines *that patient only*
//!    (bounded-memory state is dropped, later samples are rejected at
//!    the door), and the process keeps serving everyone else.
//!
//! Determinism boundary: with no deadline configured, scoring runs
//! inline and every [`ServeStats`] counter is a pure function of the
//! ingest/drain interleave — byte-identical across `LGO_THREADS`
//! settings (`tests/serve.rs` pins this). Watchdog counters are
//! timing-dependent by nature and reported separately.
//!
//! # Examples
//!
//! ```
//! use std::sync::Arc;
//! use lgo_detect::{AnomalyDetector, Window};
//! use lgo_serve::{DetectorBank, Sample, ScoringService, ServeConfig};
//!
//! struct Mean;
//! impl AnomalyDetector for Mean {
//!     fn name(&self) -> &str { "mean" }
//!     fn score(&self, w: &Window) -> f64 {
//!         w.iter().map(|r| r[0]).sum::<f64>() / w.len() as f64 - 50.0
//!     }
//! }
//!
//! let cfg = ServeConfig { seq_len: 4, stride: 2, ..ServeConfig::default() };
//! let svc = ScoringService::new(cfg, DetectorBank::new(vec![Arc::new(Mean)]));
//! for t in 0..8 {
//!     svc.try_ingest(Sample { patient: 0, row: vec![100.0 + t as f64] });
//! }
//! svc.drain_cycle();
//! let report = svc.report();
//! assert_eq!(report.stats.windows_emitted, 3);
//! assert_eq!(report.stats.anomalies, 3); // all windows mean > 50
//! ```

mod config;
mod inject;
mod ladder;
mod patient;
mod report;
mod service;
mod watchdog;

pub use config::ServeConfig;
pub use inject::{PanickingDetector, StallingDetector, POISON};
pub use ladder::DetectorBank;
pub use patient::PatientState;
pub use report::{ServeReport, ServeStats};
pub use service::{CycleOutcome, Sample, ScoringService};
pub use watchdog::{Watchdog, WatchdogError, WatchdogStats};
