//! Per-patient sliding-window state machines with bounded memory.

use std::collections::VecDeque;

use lgo_detect::Window;

/// The streaming counterpart of `lgo_core::pipeline::benign_windows`: a
/// ring buffer that turns an unbounded sample stream into overlapping
/// fixed-length windows, holding at most `seq_len` rows at any time.
///
/// Window emission matches the batch windower exactly — the window ending
/// at sample `t` (0-based) is emitted when `t + 1 >= seq_len` and
/// `(t + 1 - seq_len) % stride == 0` — so a stream fed one row at a time
/// produces the same windows the batch pipeline would cut from the full
/// series.
#[derive(Debug, Clone)]
pub struct PatientState {
    rows: VecDeque<Vec<f64>>,
    seq_len: usize,
    stride: usize,
    seen: u64,
}

impl PatientState {
    /// A fresh stream; `seq_len` and `stride` must be positive.
    ///
    /// # Panics
    ///
    /// Panics when `seq_len == 0` or `stride == 0`.
    #[must_use]
    pub fn new(seq_len: usize, stride: usize) -> Self {
        assert!(seq_len > 0, "PatientState: seq_len must be positive");
        assert!(stride > 0, "PatientState: stride must be positive");
        Self {
            rows: VecDeque::with_capacity(seq_len),
            seq_len,
            stride,
            seen: 0,
        }
    }

    /// Total samples ever pushed (not the buffered count).
    #[must_use]
    pub fn seen(&self) -> u64 {
        self.seen
    }

    /// Rows currently buffered — never more than `seq_len`, which is the
    /// whole bounded-memory contract.
    #[must_use]
    pub fn buffered(&self) -> usize {
        self.rows.len()
    }

    /// Pushes one sample row; returns the completed window when this row
    /// lands on a window boundary.
    pub fn push(&mut self, row: Vec<f64>) -> Option<Window> {
        if self.rows.len() == self.seq_len {
            self.rows.pop_front();
        }
        self.rows.push_back(row);
        self.seen += 1;
        let len = self.seq_len as u64;
        if self.seen >= len && (self.seen - len).is_multiple_of(self.stride as u64) {
            Some(self.rows.iter().cloned().collect())
        } else {
            None
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn row(v: f64) -> Vec<f64> {
        vec![v, v + 0.5]
    }

    #[test]
    fn emits_windows_on_stride_boundaries() {
        let mut p = PatientState::new(3, 2);
        let mut emitted = Vec::new();
        for t in 0..9 {
            if let Some(w) = p.push(row(t as f64)) {
                emitted.push((t, w));
            }
        }
        // Windows end at samples 2, 4, 6, 8 (seen = 3, 5, 7, 9).
        assert_eq!(
            emitted.iter().map(|(t, _)| *t).collect::<Vec<_>>(),
            vec![2, 4, 6, 8]
        );
        assert_eq!(emitted[1].1, vec![row(2.0), row(3.0), row(4.0)]);
    }

    #[test]
    fn matches_batch_windower() {
        // Feed a stream one row at a time and compare against slicing the
        // full series directly — the batch semantics.
        let series: Vec<Vec<f64>> = (0..40).map(|t| row(t as f64)).collect();
        for (seq_len, stride) in [(4, 1), (4, 4), (12, 6), (5, 3)] {
            let mut p = PatientState::new(seq_len, stride);
            let streamed: Vec<Window> =
                series.iter().filter_map(|r| p.push(r.clone())).collect();
            let batch: Vec<Window> = (0..)
                .map(|k| k * stride)
                .take_while(|s| s + seq_len <= series.len())
                .map(|s| series[s..s + seq_len].to_vec())
                .collect();
            assert_eq!(streamed, batch, "seq_len={seq_len} stride={stride}");
        }
    }

    #[test]
    fn memory_stays_bounded() {
        let mut p = PatientState::new(12, 6);
        for t in 0..100_000 {
            let _ = p.push(row(t as f64));
            assert!(p.buffered() <= 12);
        }
        assert_eq!(p.seen(), 100_000);
    }

    #[test]
    #[should_panic(expected = "stride must be positive")]
    fn zero_stride_rejected() {
        let _ = PatientState::new(3, 0);
    }
}
