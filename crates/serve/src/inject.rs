//! Fault-injecting detector wrappers for robustness testing.
//!
//! `bench_serve` and the root robustness tests wrap real (or stub)
//! detectors with these adapters to exercise the failure paths the
//! service must survive: stalls (watchdog deadlines) and panics (patient
//! quarantine). They live in the serve crate proper — not a test module —
//! so the bench binary and integration tests share one implementation.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

use lgo_detect::{AnomalyDetector, Window};

/// Sentinel value planted in a sample row to make [`PanickingDetector`]
/// panic — a stand-in for the pathological input that crashes a real
/// model (NaN cascades, shape corruption, poisoned streams).
pub const POISON: f64 = -9_999.25;

/// Wraps a detector and stalls (sleeps) on every `period`-th scoring
/// call, simulating a wedged model. The watchdog must convert these
/// stalls into deadline misses instead of letting them freeze a cycle.
pub struct StallingDetector<D> {
    inner: D,
    period: u64,
    stall: Duration,
    calls: AtomicU64,
}

impl<D> StallingDetector<D> {
    /// Stall for `stall` on every `period`-th call (1-based; `period`
    /// must be positive).
    ///
    /// # Panics
    ///
    /// Panics when `period == 0`.
    #[must_use]
    pub fn new(inner: D, period: u64, stall: Duration) -> Self {
        assert!(period > 0, "StallingDetector: period must be positive");
        Self {
            inner,
            period,
            stall,
            calls: AtomicU64::new(0),
        }
    }
}

impl<D: AnomalyDetector> AnomalyDetector for StallingDetector<D> {
    fn name(&self) -> &str {
        self.inner.name()
    }

    fn score(&self, window: &Window) -> f64 {
        let call = self.calls.fetch_add(1, Ordering::Relaxed) + 1;
        if call.is_multiple_of(self.period) {
            std::thread::sleep(self.stall);
        }
        self.inner.score(window)
    }
}

/// Wraps a detector and panics whenever the scored window contains the
/// [`POISON`] sentinel, simulating a per-patient model crash. The service
/// must quarantine exactly the poisoned patient and keep scoring the
/// rest.
pub struct PanickingDetector<D> {
    inner: D,
}

impl<D> PanickingDetector<D> {
    /// Wraps `inner`.
    #[must_use]
    pub fn new(inner: D) -> Self {
        Self { inner }
    }
}

impl<D: AnomalyDetector> AnomalyDetector for PanickingDetector<D> {
    fn name(&self) -> &str {
        self.inner.name()
    }

    fn score(&self, window: &Window) -> f64 {
        let poisoned = window.iter().any(|row| row.contains(&POISON));
        assert!(!poisoned, "poisoned window: injected model crash");
        self.inner.score(window)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Instant;

    struct Zero;

    impl AnomalyDetector for Zero {
        fn name(&self) -> &str {
            "zero"
        }
        fn score(&self, _w: &Window) -> f64 {
            0.0
        }
    }

    #[test]
    fn stalls_only_on_period() {
        let d = StallingDetector::new(Zero, 3, Duration::from_millis(60));
        let w: Window = vec![vec![1.0]];
        let t0 = Instant::now();
        d.score(&w);
        d.score(&w);
        assert!(t0.elapsed() < Duration::from_millis(40), "calls 1-2 fast");
        let t1 = Instant::now();
        d.score(&w);
        assert!(t1.elapsed() >= Duration::from_millis(60), "call 3 stalls");
        assert_eq!(d.name(), "zero");
    }

    #[test]
    fn panics_only_on_poison() {
        let d = PanickingDetector::new(Zero);
        let clean: Window = vec![vec![1.0, 2.0]];
        assert_eq!(d.score(&clean), 0.0);
        let poisoned: Window = vec![vec![1.0, POISON]];
        let err = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            d.score(&poisoned)
        }));
        assert!(err.is_err(), "poison sentinel must panic");
    }
}
