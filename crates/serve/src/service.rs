//! The scoring service: bounded ingest, graded shedding, watchdogged
//! scoring, patient quarantine.

use std::collections::{BTreeMap, BTreeSet};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, PoisonError};

use lgo_detect::Window;
use lgo_runtime::{BoundedQueue, SubmitError};

use crate::config::ServeConfig;
use crate::ladder::DetectorBank;
use crate::patient::PatientState;
use crate::report::{ServeReport, ServeStats};
use crate::watchdog::Watchdog;

/// One ingested observation: a feature row of a patient's stream.
#[derive(Debug, Clone, PartialEq)]
pub struct Sample {
    /// Stream identity (cohort index, not the 12-value archetype id).
    pub patient: u64,
    /// One time-step of feature values.
    pub row: Vec<f64>,
}

/// What one scoring cycle did — returned so drivers (bench loop, tests)
/// can steer without re-reading the full report.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CycleOutcome {
    /// Samples drained from the queue this cycle.
    pub drained: usize,
    /// Windows completed by the drained samples.
    pub emitted: usize,
    /// Windows scored.
    pub scored: usize,
    /// Windows shed unscored (pressure shed or ladder exhaustion).
    pub shed: usize,
    /// Ladder level that scored, when scoring happened.
    pub level: Option<usize>,
    /// Patients quarantined during this cycle, ascending.
    pub quarantined_now: Vec<u64>,
}

/// Mutable state behind one lock: patient streams, quarantine list and
/// the deterministic counters. Producers never take this lock — ingest
/// touches only the queue and two atomics — so scoring latency does not
/// backpressure producers beyond the queue itself.
struct Core {
    patients: BTreeMap<u64, PatientState>,
    quarantined: BTreeSet<u64>,
    stats: ServeStats,
    wstats: crate::watchdog::WatchdogStats,
}

/// A long-running scoring service over per-patient sliding-window state
/// machines. See the crate docs for the four robustness layers.
pub struct ScoringService {
    queue: BoundedQueue<Sample>,
    config: ServeConfig,
    bank: DetectorBank,
    watchdog: Watchdog,
    ingested: AtomicU64,
    rejected: AtomicU64,
    core: Mutex<Core>,
}

impl ScoringService {
    /// A service with the given tuning and detector ladder.
    #[must_use]
    pub fn new(config: ServeConfig, bank: DetectorBank) -> Self {
        let watchdog = Watchdog::new(
            config.deadline,
            config.retries,
            config.backoff,
            config.max_wedged,
        );
        Self {
            queue: BoundedQueue::new(config.capacity),
            watchdog,
            ingested: AtomicU64::new(0),
            rejected: AtomicU64::new(0),
            core: Mutex::new(Core {
                patients: BTreeMap::new(),
                quarantined: BTreeSet::new(),
                stats: ServeStats {
                    level_windows: vec![0; bank.len()],
                    ..ServeStats::default()
                },
                wstats: crate::watchdog::WatchdogStats::default(),
            }),
            config,
            bank,
        }
    }

    /// Non-blocking ingest: `false` means backpressure rejected the
    /// sample (queue full or closed) and the caller owns the loss.
    pub fn try_ingest(&self, sample: Sample) -> bool {
        match self.queue.try_submit(sample) {
            Ok(()) => {
                self.ingested.fetch_add(1, Ordering::Relaxed);
                true
            }
            Err(SubmitError::Full { .. }) => {
                self.rejected.fetch_add(1, Ordering::Relaxed);
                lgo_trace::sched("serve/rejected", 1);
                false
            }
            Err(SubmitError::Closed(_)) => false,
        }
    }

    /// Blocking ingest: waits for queue space; `false` only after
    /// [`ScoringService::close`].
    pub fn ingest(&self, sample: Sample) -> bool {
        match self.queue.submit(sample) {
            Ok(()) => {
                self.ingested.fetch_add(1, Ordering::Relaxed);
                true
            }
            Err(_) => false,
        }
    }

    /// Closes the ingest queue; producers unblock and scoring drains what
    /// remains.
    pub fn close(&self) {
        self.queue.close();
    }

    /// Current queue depth (samples waiting).
    #[must_use]
    pub fn depth(&self) -> usize {
        self.queue.depth()
    }

    /// Whether the queue is empty.
    #[must_use]
    pub fn is_drained(&self) -> bool {
        self.queue.is_empty()
    }

    /// Quarantined patients, ascending.
    #[must_use]
    pub fn quarantined(&self) -> Vec<u64> {
        let core = self.core.lock().unwrap_or_else(PoisonError::into_inner);
        core.quarantined.iter().copied().collect()
    }

    /// Runs one scoring cycle: measure pressure, pick the ladder level,
    /// drain a micro-batch, advance patient state machines, then score
    /// (or shed) the completed windows. Given a fixed ingest/drain
    /// interleave and no deadline, every counter this touches is
    /// deterministic at any `LGO_THREADS` setting.
    pub fn drain_cycle(&self) -> CycleOutcome {
        let depth = self.queue.depth();
        let pressure = depth as f64 / self.queue.capacity() as f64;
        let pressure_level = self.config.level_for_pressure(pressure);
        let pressure_shed = self.config.sheds_at(pressure);

        let mut batch = Vec::new();
        self.queue.drain_into(self.config.batch_max, &mut batch);

        let mut core = self.core.lock().unwrap_or_else(PoisonError::into_inner);
        core.stats.cycles += 1;
        core.stats.max_depth = core.stats.max_depth.max(depth as u64);
        core.stats.drained += batch.len() as u64;
        lgo_trace::sched("serve/drained", batch.len() as u64);

        // Advance the per-patient state machines; quarantined streams are
        // dropped at the door.
        let mut patients: Vec<u64> = Vec::new();
        let mut windows: Vec<Window> = Vec::new();
        let drained = batch.len();
        for sample in batch {
            if core.quarantined.contains(&sample.patient) {
                core.stats.dropped_quarantined += 1;
                lgo_trace::sched("serve/dropped_quarantined", 1);
                continue;
            }
            let (seq_len, stride) = (self.config.seq_len, self.config.stride);
            let state = core
                .patients
                .entry(sample.patient)
                .or_insert_with(|| PatientState::new(seq_len, stride));
            if let Some(w) = state.push(sample.row) {
                patients.push(sample.patient);
                windows.push(w);
            }
        }
        core.stats.windows_emitted += windows.len() as u64;

        if pressure_shed {
            // Shedding is the last resort and still not sample loss: the
            // rows above advanced every state machine, only the scoring
            // work is skipped.
            core.stats.shed_cycles += 1;
            core.stats.windows_shed += windows.len() as u64;
            lgo_trace::sched("serve/shed_cycles", 1);
            lgo_trace::sched("serve/windows_shed", windows.len() as u64);
            return CycleOutcome {
                drained,
                emitted: windows.len(),
                scored: 0,
                shed: windows.len(),
                level: None,
                quarantined_now: Vec::new(),
            };
        }
        if windows.is_empty() {
            return CycleOutcome {
                drained,
                emitted: 0,
                scored: 0,
                shed: 0,
                level: None,
                quarantined_now: Vec::new(),
            };
        }
        self.score(&mut core, pressure_level, drained, patients, windows)
    }

    /// Scores a batch of windows starting at `level`, falling further down
    /// the ladder on watchdog failures; quarantines patients whose windows
    /// panic the detector.
    fn score(
        &self,
        core: &mut Core,
        level: usize,
        drained: usize,
        patients: Vec<u64>,
        windows: Vec<Window>,
    ) -> CycleOutcome {
        let emitted = windows.len();
        for lvl in level..self.bank.len() {
            let detector = std::sync::Arc::clone(self.bank.at(lvl));
            let job_windows = windows.clone();
            let make_job = || {
                let d = std::sync::Arc::clone(&detector);
                let ws = job_windows.clone();
                move || {
                    // One scratch per chunk keeps the hot ladder
                    // allocation-free across a chunk (score_into reuses the
                    // summary/feature buffers) while each window keeps its
                    // own catch_unwind so a panicking window quarantines
                    // only its patient. score_into returns the same bits
                    // as score, so decisions are unchanged.
                    const BATCH: usize = 32;
                    lgo_runtime::par_chunks(&ws, BATCH, |chunk| {
                        let mut scratch = lgo_detect::ScoreScratch::new();
                        chunk
                            .iter()
                            .map(|w| {
                                std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                                    d.score_into(w, &mut scratch) > 0.0
                                }))
                                .map_err(panic_message)
                            })
                            .collect::<Vec<_>>()
                    })
                    .into_iter()
                    .flatten()
                    .collect::<Vec<_>>()
                }
            };
            match self.watchdog.run(make_job, &mut core.wstats) {
                Ok(results) => {
                    let mut scored = 0u64;
                    let mut quarantined_now = BTreeSet::new();
                    for (patient, result) in patients.iter().zip(results) {
                        match result {
                            Ok(anomalous) => {
                                scored += 1;
                                if anomalous {
                                    core.stats.anomalies += 1;
                                }
                            }
                            Err(_message) => {
                                core.stats.panics += 1;
                                if core.quarantined.insert(*patient) {
                                    core.patients.remove(patient);
                                    quarantined_now.insert(*patient);
                                    lgo_trace::sched("serve/quarantined", 1);
                                }
                            }
                        }
                    }
                    core.stats.windows_scored += scored;
                    core.stats.level_windows[lvl] += scored;
                    if lvl > 0 {
                        core.stats.degraded_cycles += 1;
                        lgo_trace::sched("serve/degraded_cycles", 1);
                    }
                    lgo_trace::sched("serve/windows_scored", scored);
                    return CycleOutcome {
                        drained,
                        emitted,
                        scored: scored as usize,
                        shed: 0,
                        level: Some(lvl),
                        quarantined_now: quarantined_now.into_iter().collect(),
                    };
                }
                Err(_timeout) => {
                    // This level is stalling or wedged; fall one level
                    // down the ladder and try again.
                    lgo_trace::sched("serve/ladder_fallthrough", 1);
                }
            }
        }
        // Every level failed its deadline: shed the batch rather than
        // block the stream behind a wedged ladder.
        core.stats.shed_cycles += 1;
        core.stats.windows_shed += emitted as u64;
        lgo_trace::sched("serve/shed_cycles", 1);
        lgo_trace::sched("serve/windows_shed", emitted as u64);
        CycleOutcome {
            drained,
            emitted,
            scored: 0,
            shed: emitted,
            level: None,
            quarantined_now: Vec::new(),
        }
    }

    /// Snapshot of the full accounting.
    #[must_use]
    pub fn report(&self) -> ServeReport {
        let core = self.core.lock().unwrap_or_else(PoisonError::into_inner);
        let mut stats = core.stats.clone();
        stats.ingested = self.ingested.load(Ordering::Relaxed);
        stats.rejected = self.rejected.load(Ordering::Relaxed);
        ServeReport {
            stats,
            watchdog: core.wstats.clone(),
            quarantined: core.quarantined.iter().copied().collect(),
            ladder: self.bank.names(),
        }
    }
}

/// Best-effort text of a panic payload.
fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::inject::{PanickingDetector, POISON};
    use lgo_detect::AnomalyDetector;
    use std::sync::Arc;

    /// Flags rows whose first feature exceeds a threshold.
    struct Threshold(f64);

    impl AnomalyDetector for Threshold {
        fn name(&self) -> &str {
            "threshold"
        }
        fn score(&self, w: &Window) -> f64 {
            w.iter().map(|r| r[0]).sum::<f64>() / w.len() as f64 - self.0
        }
    }

    fn config() -> ServeConfig {
        ServeConfig {
            capacity: 64,
            batch_max: 16,
            seq_len: 4,
            stride: 2,
            ..ServeConfig::default()
        }
    }

    fn service(cfg: ServeConfig) -> ScoringService {
        let bank = DetectorBank::new(vec![
            Arc::new(PanickingDetector::new(Threshold(10.0))) as Arc<dyn AnomalyDetector>,
            Arc::new(Threshold(5.0)),
        ]);
        ScoringService::new(cfg, bank)
    }

    fn sample(patient: u64, v: f64) -> Sample {
        Sample { patient, row: vec![v, v] }
    }

    #[test]
    fn scores_streams_and_counts_anomalies() {
        let svc = service(config());
        // Patient 0 benign (values 1), patient 1 anomalous (values 100).
        for t in 0..8 {
            assert!(svc.try_ingest(sample(0, 1.0)));
            assert!(svc.try_ingest(sample(1, 100.0)));
            if t % 2 == 1 {
                svc.drain_cycle();
            }
        }
        let r = svc.report();
        assert_eq!(r.stats.ingested, 16);
        assert_eq!(r.stats.drained, 16);
        // seq_len 4, stride 2: windows end at samples 4, 6, 8 → 3 each.
        assert_eq!(r.stats.windows_emitted, 6);
        assert_eq!(r.stats.windows_scored, 6);
        assert_eq!(r.stats.anomalies, 3, "only patient 1 flags");
        assert_eq!(r.stats.panics, 0);
        assert!(r.quarantined.is_empty());
    }

    #[test]
    fn poisoned_patient_is_quarantined_not_fatal() {
        let svc = service(config());
        for _ in 0..4 {
            assert!(svc.try_ingest(sample(0, 1.0)));
            assert!(svc.try_ingest(sample(7, POISON)));
        }
        let out = svc.drain_cycle();
        assert_eq!(out.quarantined_now, vec![7]);
        assert_eq!(svc.quarantined(), vec![7]);
        // Patient 0 survived and scored; patient 7's later samples drop.
        for _ in 0..4 {
            assert!(svc.try_ingest(sample(0, 1.0)));
            assert!(svc.try_ingest(sample(7, 1.0)));
        }
        svc.drain_cycle();
        let r = svc.report();
        assert_eq!(r.stats.panics, 1);
        assert_eq!(r.stats.dropped_quarantined, 4);
        assert!(r.stats.windows_scored >= 3, "healthy stream kept scoring");
        assert_eq!(r.quarantined, vec![7]);
    }

    #[test]
    fn pressure_degrades_then_sheds() {
        let mut cfg = config();
        cfg.capacity = 8;
        cfg.batch_max = 4;
        let svc = service(cfg);
        // Fill to 100% pressure: the next cycle sheds.
        for _ in 0..8 {
            assert!(svc.try_ingest(sample(0, 1.0)));
        }
        assert!(!svc.try_ingest(sample(0, 1.0)), "backpressure rejects");
        let out = svc.drain_cycle();
        assert_eq!(out.level, None, "full queue sheds");
        // Depth now 4 of 8 → pressure 0.5 → degraded level 1.
        let out = svc.drain_cycle();
        assert_eq!(out.level, Some(1));
        // Depth 0 → primary level.
        for _ in 0..2 {
            assert!(svc.try_ingest(sample(0, 1.0)));
        }
        let out = svc.drain_cycle();
        assert_eq!(out.level, Some(0));
        let r = svc.report();
        assert_eq!(r.stats.rejected, 1);
        assert_eq!(r.stats.shed_cycles, 1);
        assert_eq!(r.stats.degraded_cycles, 1);
        assert_eq!(r.stats.max_depth, 8);
    }

    #[test]
    fn report_is_deterministic_for_a_fixed_interleave() {
        let run = || {
            let svc = service(config());
            for t in 0..32 {
                svc.try_ingest(sample(t % 3, t as f64));
                if t % 4 == 3 {
                    svc.drain_cycle();
                }
            }
            while !svc.is_drained() {
                svc.drain_cycle();
            }
            svc.report().to_json()
        };
        assert_eq!(run(), run());
    }
}
