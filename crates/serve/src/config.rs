//! Service configuration and the `LGO_SERVE_*` environment knobs.

use std::time::Duration;

/// Tuning knobs of a [`crate::ScoringService`].
///
/// Every field has a production-shaped default; [`ServeConfig::from_env`]
/// overrides them from `LGO_SERVE_*` environment variables so benches and
/// CI tiers can reshape the service without recompiling. Malformed values
/// fall back to the default rather than aborting — a scoring service must
/// not refuse to start over a typo in an env var.
#[derive(Debug, Clone, PartialEq)]
pub struct ServeConfig {
    /// Bounded ingest queue capacity, in samples (`LGO_SERVE_CAPACITY`).
    /// Producers that outrun scoring see rejections, not memory growth.
    pub capacity: usize,
    /// Maximum samples drained per scoring cycle (`LGO_SERVE_BATCH`).
    pub batch_max: usize,
    /// Sliding-window length in samples; must match the detector bank's
    /// expected window shape (MAD-GAN is shape-strict).
    pub seq_len: usize,
    /// Stride between consecutive emitted windows, in samples.
    pub stride: usize,
    /// Queue-pressure thresholds (fractions of capacity, ascending) at
    /// which scoring degrades one level down the detector ladder.
    pub degrade_thresholds: Vec<f64>,
    /// Queue pressure at or above which a cycle sheds: windows still
    /// advance patient state but are not scored (`LGO_SERVE_SHED`).
    pub shed_pressure: f64,
    /// Wall-clock deadline for one micro-batch scoring call
    /// (`LGO_SERVE_DEADLINE_MS`; `0` disables the watchdog and scores
    /// inline — the deterministic mode the tests pin).
    pub deadline: Option<Duration>,
    /// Retries per scoring call after a deadline miss (`LGO_SERVE_RETRIES`).
    pub retries: u32,
    /// Sleep between retries, doubled per attempt (`LGO_SERVE_BACKOFF_MS`).
    pub backoff: Duration,
    /// Maximum abandoned (wedged) scorer threads allowed to be live at
    /// once; at the cap the watchdog refuses to spawn more and the ladder
    /// falls through to the next level (`LGO_SERVE_MAX_WEDGED`).
    pub max_wedged: usize,
}

impl Default for ServeConfig {
    fn default() -> Self {
        Self {
            capacity: 1024,
            batch_max: 256,
            seq_len: 12,
            stride: 6,
            degrade_thresholds: vec![0.5, 0.75],
            shed_pressure: 0.9,
            deadline: None,
            retries: 2,
            backoff: Duration::from_millis(5),
            max_wedged: 4,
        }
    }
}

fn env_usize(key: &str, default: usize) -> usize {
    match std::env::var(key) {
        Ok(v) => v.trim().parse().unwrap_or(default),
        Err(_) => default,
    }
}

fn env_u64(key: &str, default: u64) -> u64 {
    match std::env::var(key) {
        Ok(v) => v.trim().parse().unwrap_or(default),
        Err(_) => default,
    }
}

fn env_f64(key: &str, default: f64) -> f64 {
    match std::env::var(key) {
        Ok(v) => v.trim().parse().unwrap_or(default),
        Err(_) => default,
    }
}

impl ServeConfig {
    /// Defaults overridden by any `LGO_SERVE_*` variables that are set.
    #[must_use]
    pub fn from_env() -> Self {
        let d = Self::default();
        let deadline_ms = env_u64(
            "LGO_SERVE_DEADLINE_MS",
            d.deadline.map_or(0, |t| t.as_millis() as u64),
        );
        Self {
            capacity: env_usize("LGO_SERVE_CAPACITY", d.capacity).max(1),
            batch_max: env_usize("LGO_SERVE_BATCH", d.batch_max).max(1),
            seq_len: d.seq_len,
            stride: d.stride,
            degrade_thresholds: d.degrade_thresholds,
            shed_pressure: env_f64("LGO_SERVE_SHED", d.shed_pressure),
            deadline: match deadline_ms {
                0 => None,
                ms => Some(Duration::from_millis(ms)),
            },
            retries: env_u64("LGO_SERVE_RETRIES", u64::from(d.retries)) as u32,
            backoff: Duration::from_millis(env_u64(
                "LGO_SERVE_BACKOFF_MS",
                d.backoff.as_millis() as u64,
            )),
            max_wedged: env_usize("LGO_SERVE_MAX_WEDGED", d.max_wedged).max(1),
        }
    }

    /// Scoring level for a queue pressure in `[0, 1]`: the number of
    /// degrade thresholds at or below the pressure. Level 0 is the primary
    /// detector; each threshold crossed steps one level down the ladder.
    #[must_use]
    pub fn level_for_pressure(&self, pressure: f64) -> usize {
        self.degrade_thresholds
            .iter()
            .filter(|&&t| pressure >= t)
            .count()
    }

    /// Whether a cycle at this pressure sheds scoring entirely.
    #[must_use]
    pub fn sheds_at(&self, pressure: f64) -> bool {
        pressure >= self.shed_pressure
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pressure_ladder_maps_levels() {
        let c = ServeConfig::default();
        assert_eq!(c.level_for_pressure(0.0), 0);
        assert_eq!(c.level_for_pressure(0.49), 0);
        assert_eq!(c.level_for_pressure(0.5), 1);
        assert_eq!(c.level_for_pressure(0.74), 1);
        assert_eq!(c.level_for_pressure(0.75), 2);
        assert_eq!(c.level_for_pressure(1.0), 2);
        assert!(!c.sheds_at(0.89));
        assert!(c.sheds_at(0.9));
    }

    #[test]
    fn defaults_are_sane() {
        let c = ServeConfig::default();
        assert!(c.capacity > 0 && c.batch_max > 0);
        assert!(c.deadline.is_none(), "deterministic inline mode by default");
        assert!(c.degrade_thresholds.windows(2).all(|w| w[0] < w[1]));
        assert!(c.shed_pressure > *c.degrade_thresholds.last().unwrap());
    }
}
