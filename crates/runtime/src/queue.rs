//! A bounded multi-producer ingest queue with explicit overflow reporting.
//!
//! The serving layer (`lgo-serve`) builds its backpressure on *real*
//! capacity signals: a submission against a full queue is **rejected and
//! reported**, never silently queued into unbounded memory. This module is
//! the primitive behind that contract — a `Mutex<VecDeque>` + two-condvar
//! bounded MPSC queue in the same dependency-free style as the pool.
//!
//! Depth accounting is first-class: [`BoundedQueue::depth`] is the live
//! occupancy and [`SubmitError::Full`] carries both the observed depth and
//! the capacity, so callers can grade their response to pressure (degrade,
//! then shed) instead of discovering overload only by allocation failure.

use std::collections::VecDeque;
use std::sync::{Arc, Condvar, Mutex, MutexGuard};
use std::time::{Duration, Instant};

/// Why a submission was not accepted. The rejected item is returned to the
/// caller in both cases — the queue never drops silently.
#[derive(Debug, PartialEq, Eq)]
pub enum SubmitError<T> {
    /// The queue was at capacity; `depth` is the occupancy observed at the
    /// rejection (equal to `capacity` unless a consumer raced the check).
    Full {
        /// The rejected item, returned to the producer.
        item: T,
        /// Occupancy observed at rejection time.
        depth: usize,
        /// The queue's fixed capacity.
        capacity: usize,
    },
    /// The queue was closed; no further submissions will ever be accepted.
    Closed(T),
}

impl<T> SubmitError<T> {
    /// Recovers the rejected item.
    pub fn into_item(self) -> T {
        match self {
            SubmitError::Full { item, .. } | SubmitError::Closed(item) => item,
        }
    }
}

impl<T> std::fmt::Display for SubmitError<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SubmitError::Full { depth, capacity, .. } => {
                write!(f, "queue full: depth {depth} of capacity {capacity}")
            }
            SubmitError::Closed(_) => write!(f, "queue closed"),
        }
    }
}

struct QueueState<T> {
    items: VecDeque<T>,
    closed: bool,
}

struct Inner<T> {
    state: Mutex<QueueState<T>>,
    /// Signalled when an item is removed (space freed) or the queue closes.
    not_full: Condvar,
    /// Signalled when an item is added or the queue closes.
    not_empty: Condvar,
    capacity: usize,
}

/// A bounded multi-producer / multi-consumer FIFO queue.
///
/// Cloning the handle is cheap (an `Arc` bump); all clones address the same
/// queue. The capacity is fixed at construction — the queue's memory is
/// bounded by `capacity` items for its whole lifetime.
///
/// # Examples
///
/// ```
/// use lgo_runtime::{BoundedQueue, SubmitError};
///
/// let q: BoundedQueue<u32> = BoundedQueue::new(2);
/// q.try_submit(1).unwrap();
/// q.try_submit(2).unwrap();
/// // The third submission overflows: reported, not silently queued.
/// match q.try_submit(3) {
///     Err(SubmitError::Full { item, depth, capacity }) => {
///         assert_eq!((item, depth, capacity), (3, 2, 2));
///     }
///     other => panic!("expected Full, got {other:?}"),
/// }
/// assert_eq!(q.depth(), 2);
/// assert_eq!(q.pop(), Some(1));
/// ```
pub struct BoundedQueue<T> {
    inner: Arc<Inner<T>>,
}

impl<T> Clone for BoundedQueue<T> {
    fn clone(&self) -> Self {
        Self { inner: Arc::clone(&self.inner) }
    }
}

impl<T> BoundedQueue<T> {
    /// Creates a queue holding at most `capacity` items.
    ///
    /// # Panics
    ///
    /// Panics if `capacity == 0` — a zero-capacity queue can never accept
    /// a submission, which is a configuration bug, not a runtime state.
    #[must_use]
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "BoundedQueue: capacity must be positive");
        Self {
            inner: Arc::new(Inner {
                state: Mutex::new(QueueState { items: VecDeque::new(), closed: false }),
                not_full: Condvar::new(),
                not_empty: Condvar::new(),
                capacity,
            }),
        }
    }

    /// The fixed capacity.
    #[must_use]
    pub fn capacity(&self) -> usize {
        self.inner.capacity
    }

    /// Live occupancy (racy by nature under concurrent producers; exact
    /// when the caller is the only mutator).
    #[must_use]
    pub fn depth(&self) -> usize {
        self.lock().items.len()
    }

    /// Whether the queue currently holds no items.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.lock().items.is_empty()
    }

    /// Closes the queue: every subsequent submission is rejected with
    /// [`SubmitError::Closed`] and blocked producers/consumers wake up.
    /// Items already queued can still be popped.
    pub fn close(&self) {
        self.lock().closed = true;
        self.inner.not_full.notify_all();
        self.inner.not_empty.notify_all();
    }

    /// Whether [`close`](Self::close) has been called.
    #[must_use]
    pub fn is_closed(&self) -> bool {
        self.lock().closed
    }

    /// Non-blocking bounded submission: accepts the item if there is space,
    /// otherwise reports the overflow (or closure) and hands the item back.
    ///
    /// # Errors
    ///
    /// [`SubmitError::Full`] when the queue is at capacity,
    /// [`SubmitError::Closed`] after [`close`](Self::close).
    pub fn try_submit(&self, item: T) -> Result<(), SubmitError<T>> {
        let mut st = self.lock();
        if st.closed {
            return Err(SubmitError::Closed(item));
        }
        let depth = st.items.len();
        if depth >= self.inner.capacity {
            lgo_trace::sched("runtime/queue_rejects", 1);
            return Err(SubmitError::Full { item, depth, capacity: self.inner.capacity });
        }
        st.items.push_back(item);
        drop(st);
        self.inner.not_empty.notify_one();
        Ok(())
    }

    /// Blocking submission: waits for space instead of rejecting. Returns
    /// the item only if the queue is closed while waiting.
    ///
    /// # Errors
    ///
    /// [`SubmitError::Closed`] when the queue closes before space frees up.
    pub fn submit(&self, item: T) -> Result<(), SubmitError<T>> {
        let mut st = self.lock();
        loop {
            if st.closed {
                return Err(SubmitError::Closed(item));
            }
            if st.items.len() < self.inner.capacity {
                st.items.push_back(item);
                drop(st);
                self.inner.not_empty.notify_one();
                return Ok(());
            }
            st = self
                .inner
                .not_full
                .wait(st)
                .unwrap_or_else(std::sync::PoisonError::into_inner);
        }
    }

    /// Pops the oldest item without blocking.
    #[must_use]
    pub fn pop(&self) -> Option<T> {
        let item = self.lock().items.pop_front();
        if item.is_some() {
            self.inner.not_full.notify_one();
        }
        item
    }

    /// Pops the oldest item, waiting up to `timeout` for one to arrive.
    /// Returns `None` on timeout or when the queue is closed and drained.
    #[must_use]
    pub fn pop_timeout(&self, timeout: Duration) -> Option<T> {
        let deadline = Instant::now() + timeout;
        let mut st = self.lock();
        loop {
            if let Some(item) = st.items.pop_front() {
                drop(st);
                self.inner.not_full.notify_one();
                return Some(item);
            }
            if st.closed {
                return None;
            }
            let now = Instant::now();
            if now >= deadline {
                return None;
            }
            let (guard, _timed_out) = self
                .inner
                .not_empty
                .wait_timeout(st, deadline - now)
                .unwrap_or_else(std::sync::PoisonError::into_inner);
            st = guard;
        }
    }

    /// Moves up to `max` items into `out` (oldest first) without blocking;
    /// returns how many were moved. The micro-batching primitive: one lock
    /// round trip per drain instead of one per item.
    pub fn drain_into(&self, max: usize, out: &mut Vec<T>) -> usize {
        if max == 0 {
            return 0;
        }
        let mut st = self.lock();
        let take = max.min(st.items.len());
        out.extend(st.items.drain(..take));
        drop(st);
        if take > 0 {
            self.inner.not_full.notify_all();
        }
        take
    }

    fn lock(&self) -> MutexGuard<'_, QueueState<T>> {
        self.inner
            .state
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn overflow_is_reported_not_silently_queued() {
        let q: BoundedQueue<usize> = BoundedQueue::new(3);
        for i in 0..3 {
            q.try_submit(i).unwrap();
        }
        // The defining contract of the bounded-submission API: the fourth
        // item is rejected with full accounting, and the queue's memory
        // footprint has not grown.
        match q.try_submit(99) {
            Err(SubmitError::Full { item, depth, capacity }) => {
                assert_eq!(item, 99);
                assert_eq!(depth, 3);
                assert_eq!(capacity, 3);
            }
            other => panic!("expected Full, got {other:?}"),
        }
        assert_eq!(q.depth(), 3);
        // Freeing one slot re-admits exactly one submission.
        assert_eq!(q.pop(), Some(0));
        q.try_submit(99).unwrap();
        assert!(q.try_submit(100).is_err());
    }

    #[test]
    fn fifo_order_and_depth_accounting() {
        let q: BoundedQueue<u8> = BoundedQueue::new(8);
        assert!(q.is_empty());
        for i in 0..5u8 {
            q.try_submit(i).unwrap();
            assert_eq!(q.depth(), i as usize + 1);
        }
        let popped: Vec<u8> = std::iter::from_fn(|| q.pop()).collect();
        assert_eq!(popped, vec![0, 1, 2, 3, 4]);
        assert!(q.is_empty());
    }

    #[test]
    fn drain_into_micro_batches() {
        let q: BoundedQueue<usize> = BoundedQueue::new(16);
        for i in 0..10 {
            q.try_submit(i).unwrap();
        }
        let mut batch = Vec::new();
        assert_eq!(q.drain_into(4, &mut batch), 4);
        assert_eq!(batch, vec![0, 1, 2, 3]);
        assert_eq!(q.depth(), 6);
        assert_eq!(q.drain_into(100, &mut batch), 6);
        assert_eq!(batch.len(), 10);
        assert_eq!(q.drain_into(4, &mut batch), 0);
        assert_eq!(q.drain_into(0, &mut batch), 0);
    }

    #[test]
    fn close_rejects_submissions_but_drains() {
        let q: BoundedQueue<u8> = BoundedQueue::new(4);
        q.try_submit(1).unwrap();
        q.close();
        assert!(q.is_closed());
        assert_eq!(q.try_submit(2), Err(SubmitError::Closed(2)));
        assert_eq!(q.submit(3), Err(SubmitError::Closed(3)));
        assert_eq!(q.pop(), Some(1));
        assert_eq!(q.pop_timeout(Duration::from_millis(1)), None);
    }

    #[test]
    fn blocking_submit_waits_for_space() {
        let q: BoundedQueue<usize> = BoundedQueue::new(1);
        q.try_submit(0).unwrap();
        let q2 = q.clone();
        let producer = std::thread::spawn(move || q2.submit(1));
        // Give the producer a moment to block, then free a slot.
        let popped = q.pop_timeout(Duration::from_secs(5));
        assert_eq!(popped, Some(0));
        producer.join().expect("producer thread").unwrap();
        assert_eq!(q.pop(), Some(1));
    }

    #[test]
    fn pop_timeout_sees_late_arrivals() {
        let q: BoundedQueue<usize> = BoundedQueue::new(4);
        let q2 = q.clone();
        let producer = std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(20));
            q2.try_submit(7).unwrap();
        });
        assert_eq!(q.pop_timeout(Duration::from_secs(5)), Some(7));
        producer.join().expect("producer thread");
    }

    #[test]
    #[should_panic(expected = "capacity must be positive")]
    fn zero_capacity_rejected() {
        let _ = BoundedQueue::<u8>::new(0);
    }

    #[test]
    fn rejected_item_is_recoverable() {
        let q: BoundedQueue<String> = BoundedQueue::new(1);
        q.try_submit("a".into()).unwrap();
        let err = q.try_submit("b".into()).unwrap_err();
        assert_eq!(err.to_string(), "queue full: depth 1 of capacity 1");
        assert_eq!(err.into_item(), "b");
    }
}
