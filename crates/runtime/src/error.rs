//! The runtime's error type: worker-task panics surfaced as values.

use std::error::Error;
use std::fmt;

/// A failure inside a parallel primitive.
///
/// Panics raised by worker tasks are caught at the pool boundary and
/// reported through this type instead of aborting the pool (or the
/// process), so callers can compose parallel stages with the workspace's
/// graceful-degradation layer (`LgoError::Runtime` in `lgo-core`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RuntimeError {
    /// A task panicked. When several tasks of one batch panic, the one with
    /// the lowest input index is reported, so the surfaced error does not
    /// depend on scheduling order.
    TaskPanicked {
        /// The input index of the panicking task.
        index: usize,
        /// The panic payload's message (or a placeholder for non-string
        /// payloads).
        message: String,
    },
    /// `par_chunks` was called with a chunk size of zero.
    ZeroChunkSize,
}

impl fmt::Display for RuntimeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RuntimeError::TaskPanicked { index, message } => {
                write!(f, "parallel task {index} panicked: {message}")
            }
            RuntimeError::ZeroChunkSize => write!(f, "chunk size must be positive"),
        }
    }
}

impl Error for RuntimeError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_carries_index_and_message() {
        let e = RuntimeError::TaskPanicked {
            index: 7,
            message: "boom".into(),
        };
        assert_eq!(e.to_string(), "parallel task 7 panicked: boom");
        assert_eq!(
            RuntimeError::ZeroChunkSize.to_string(),
            "chunk size must be positive"
        );
    }
}
