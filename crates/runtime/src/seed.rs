//! Splittable deterministic seeding for parallel tasks.
//!
//! Serial code that threads one RNG through a loop produces a stream whose
//! draws depend on iteration *order* — parallelizing such a loop changes
//! the results. The workspace convention is instead to derive an
//! independent seed per task from `(base seed, task index)`: the derived
//! streams are fixed functions of the input index, so a parallel run is
//! bit-identical to a serial run and to any other parallel run regardless
//! of thread count or scheduling.

/// Derives the seed for task `index` of a batch seeded with `base`.
///
/// The mix is a SplitMix64 finalizer over the base seed offset by the
/// golden-ratio-stepped index — the recommended stream-splitting procedure
/// for xoshiro-family generators (the vendored `rand::rngs::StdRng`). Two
/// distinct `(base, index)` pairs yield statistically independent streams;
/// the same pair always yields the same seed.
///
/// # Examples
///
/// ```
/// use lgo_runtime::split_seed;
///
/// // Pure function of (base, index): safe to call from any thread.
/// assert_eq!(split_seed(42, 3), split_seed(42, 3));
/// assert_ne!(split_seed(42, 3), split_seed(42, 4));
/// assert_ne!(split_seed(42, 3), split_seed(43, 3));
/// ```
#[must_use]
pub fn split_seed(base: u64, index: u64) -> u64 {
    let mut z = base
        .wrapping_add(index.wrapping_add(1).wrapping_mul(0x9E37_79B9_7F4A_7C15));
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn distinct_indices_yield_distinct_seeds() {
        let base = 0xDEAD_BEEF;
        let seeds: Vec<u64> = (0..1000).map(|i| split_seed(base, i)).collect();
        let mut sorted = seeds.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), seeds.len(), "collision in split seeds");
    }

    #[test]
    fn index_zero_differs_from_base() {
        // A naive xor-with-index scheme would map index 0 to the base seed,
        // correlating the first task's stream with the parent's.
        assert_ne!(split_seed(12345, 0), 12345);
    }

    #[test]
    fn bit_balance_is_reasonable() {
        // Each output bit should flip for roughly half the indices.
        let base = 7;
        for bit in 0..64 {
            let ones = (0..4096)
                .filter(|&i| split_seed(base, i) >> bit & 1 == 1)
                .count();
            assert!(
                (1024..=3072).contains(&ones),
                "bit {bit} heavily biased: {ones}/4096 ones"
            );
        }
    }
}
