//! The work-stealing thread pool.
//!
//! One process-global pool of parked worker threads executes *batches*: a
//! batch is `n` tasks identified by their input index `0..n`, a shared task
//! body, and a set of per-participant deques holding the not-yet-claimed
//! indices. Indices are dealt into the deques in contiguous blocks (the
//! same blocks a serial loop would walk, preserving cache locality); each
//! participant pops work from the *front* of its own deque and, when that
//! runs dry, steals from the *back* of the other deques — the classic
//! work-first stealing discipline, here with mutex-protected deques rather
//! than lock-free Chase–Lev arrays (the tasks this workspace schedules are
//! coarse, so deque contention is negligible; see DESIGN.md §12).
//!
//! Determinism does **not** depend on the schedule: tasks communicate only
//! through their input index (results land in index-addressed slots, seeds
//! derive from the index via [`crate::split_seed`]), so any interleaving
//! produces bit-identical output. The scheduler is free to be fast; the
//! *contract* is what keeps runs reproducible.
//!
//! Three situations bypass the pool and run the batch inline on the calling
//! thread, in index order: an effective thread count of one (the zero
//! overhead serial path), a call from inside a worker task (nested
//! parallelism must not deadlock the single in-flight batch slot), and a
//! second top-level caller while a batch is already in flight. All three
//! produce the same results as the pooled path, by the index contract.

use std::cell::Cell;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard, OnceLock};
use std::thread::JoinHandle;

use crate::error::RuntimeError;

/// Hard cap on pool size; beyond this, extra threads only add scheduling
/// noise for the cohort-scale batches the workspace runs.
const MAX_POOL_THREADS: usize = 64;

/// The pool is sized to honour at least this many effective threads even on
/// narrower machines, so determinism tests can exercise real multi-threaded
/// schedules (`LGO_THREADS=8`) anywhere.
const MIN_POOL_RESERVE: usize = 8;

thread_local! {
    /// Set for the lifetime of every pool worker thread; parallel
    /// primitives called while it is set run inline (nested parallelism).
    static IS_POOL_WORKER: Cell<bool> = const { Cell::new(false) };
}

/// Explicit thread-count override (0 = unset); see [`set_threads`].
static THREAD_OVERRIDE: AtomicUsize = AtomicUsize::new(0);

/// Erased pointer to a batch's task body. Only dereferenced between batch
/// installation and completion; the installer does not return until every
/// task has finished, which keeps the referent alive for every dereference.
#[derive(Clone, Copy)]
struct TaskRef(*const (dyn Fn(usize) + Sync));

// SAFETY: the pointee is `Sync` (shared calls from many threads are fine)
// and the pointer itself is only used while the batch installer blocks in
// `run_batch`, so no use can outlive the referent.
unsafe impl Send for TaskRef {}
unsafe impl Sync for TaskRef {}

/// One in-flight batch of tasks.
#[derive(Clone)]
struct Batch {
    /// Monotone batch identifier; workers use it to recognise fresh work.
    epoch: u64,
    /// One index deque per participant (slot 0 belongs to the caller).
    queues: Arc<Vec<Mutex<VecDeque<usize>>>>,
    /// The shared task body.
    task: TaskRef,
    /// Tasks not yet completed; the caller returns when this reaches zero.
    remaining: Arc<AtomicUsize>,
    /// Panics caught so far, as `(index, message)`.
    panics: Arc<Mutex<Vec<(usize, String)>>>,
    /// How many pool workers participate (queues.len() - 1).
    workers: usize,
}

struct PoolState {
    batch: Option<Batch>,
    epoch: u64,
    shutdown: bool,
}

struct Shared {
    state: Mutex<PoolState>,
    /// Signals workers that a new batch (or shutdown) is available.
    work: Condvar,
    /// Signals the batch installer that the last task finished.
    done: Condvar,
}

impl Shared {
    /// Locks the pool state. A worker can only panic while executing a
    /// task, and task panics are caught before they can poison this mutex,
    /// so recovering the guard from a poison error is sound.
    fn lock_state(&self) -> MutexGuard<'_, PoolState> {
        self.state.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
    }
}

/// The work-stealing pool: a set of parked worker threads plus the
/// one-batch-at-a-time scheduling state.
pub(crate) struct Pool {
    shared: Arc<Shared>,
    workers: Vec<JoinHandle<()>>,
}

impl Pool {
    /// Spawns a pool with `threads - 1` workers (the caller of each batch
    /// is the remaining participant).
    fn new(threads: usize) -> Self {
        let shared = Arc::new(Shared {
            state: Mutex::new(PoolState {
                batch: None,
                epoch: 0,
                shutdown: false,
            }),
            work: Condvar::new(),
            done: Condvar::new(),
        });
        let workers = (0..threads.saturating_sub(1))
            .map(|id| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("lgo-runtime-{id}"))
                    .spawn(move || worker_loop(&shared, id))
                    .expect("lgo-runtime: spawning pool worker")
            })
            .collect();
        Self { shared, workers }
    }

    /// Largest effective thread count this pool can serve.
    fn capacity(&self) -> usize {
        self.workers.len() + 1
    }

    /// Runs `n` tasks across `threads` participants (the calling thread
    /// plus `threads - 1` pool workers). Returns when every task has
    /// completed; task panics are collected, not propagated.
    fn run_batch(
        &self,
        n: usize,
        threads: usize,
        task: &(dyn Fn(usize) + Sync),
    ) -> Result<(), RuntimeError> {
        let threads = threads.min(self.capacity()).min(n).max(1);
        if threads <= 1 {
            return run_inline(n, task);
        }

        // Deal indices into per-participant deques in contiguous blocks.
        let queues: Vec<Mutex<VecDeque<usize>>> = (0..threads)
            .map(|p| {
                let lo = p * n / threads;
                let hi = (p + 1) * n / threads;
                Mutex::new((lo..hi).collect())
            })
            .collect();
        let batch = {
            let mut st = self.shared.lock_state();
            if st.batch.is_some() {
                // Another top-level batch is in flight; do not queue behind
                // it (the owner might itself be waiting on us in a test
                // harness) — degrade to the inline path.
                drop(st);
                return run_inline(n, task);
            }
            st.epoch += 1;
            // SAFETY: lifetime erasure only — this function blocks until
            // `remaining` hits zero, after which no participant touches the
            // task pointer again, so the borrow outlives every dereference.
            let task: TaskRef = unsafe {
                TaskRef(std::mem::transmute::<
                    *const (dyn Fn(usize) + Sync),
                    *const (dyn Fn(usize) + Sync + 'static),
                >(task as *const _))
            };
            let batch = Batch {
                epoch: st.epoch,
                queues: Arc::new(queues),
                task,
                remaining: Arc::new(AtomicUsize::new(n)),
                panics: Arc::new(Mutex::new(Vec::new())),
                workers: threads - 1,
            };
            st.batch = Some(batch.clone());
            self.shared.work.notify_all();
            batch
        };
        lgo_trace::sched("runtime/pool_batches", 1);

        // The caller is participant 0.
        drain(&self.shared, &batch, 0);

        // Wait for stragglers still draining stolen work.
        {
            let mut st = self.shared.lock_state();
            while batch.remaining.load(Ordering::Acquire) > 0 {
                st = self
                    .shared
                    .done
                    .wait(st)
                    .unwrap_or_else(std::sync::PoisonError::into_inner);
            }
            if st.batch.as_ref().is_some_and(|b| b.epoch == batch.epoch) {
                st.batch = None;
            }
        }

        first_panic(&batch)
    }
}

impl Drop for Pool {
    fn drop(&mut self) {
        {
            let mut st = self.shared.lock_state();
            st.shutdown = true;
            self.shared.work.notify_all();
        }
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
    }
}

/// Reports the lowest-index panic of a batch, if any — independent of the
/// order in which panics were *caught*.
fn first_panic(batch: &Batch) -> Result<(), RuntimeError> {
    let mut panics = batch
        .panics
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner);
    if panics.is_empty() {
        return Ok(());
    }
    panics.sort();
    let (index, message) = panics[0].clone();
    Err(RuntimeError::TaskPanicked { index, message })
}

/// The parked-worker loop: wait for a fresh epoch, participate if assigned,
/// repeat until shutdown.
fn worker_loop(shared: &Shared, id: usize) {
    IS_POOL_WORKER.with(|w| w.set(true));
    let mut seen = 0u64;
    loop {
        let batch = {
            let mut st = shared.lock_state();
            loop {
                if st.shutdown {
                    return;
                }
                if let Some(b) = st.batch.as_ref() {
                    if b.epoch > seen {
                        seen = b.epoch;
                        break b.clone();
                    }
                }
                lgo_trace::sched("runtime/parks", 1);
                st = shared
                    .work
                    .wait(st)
                    .unwrap_or_else(std::sync::PoisonError::into_inner);
                lgo_trace::sched("runtime/unparks", 1);
            }
        };
        if id < batch.workers {
            // Worker `id` owns queue `id + 1`; queue 0 is the caller's.
            drain(shared, &batch, id + 1);
        }
    }
}

/// Executes tasks until no queue has work left: pop the front of the home
/// deque, then steal from the back of the others.
fn drain(shared: &Shared, batch: &Batch, home: usize) {
    let queues = &*batch.queues;
    // Scheduling stats are accumulated locally and flushed once per drain
    // so the trace registry is not touched in the claim loop; they land in
    // the report's masked `timing.sched` section (the schedule is
    // legitimately thread-count- and race-dependent).
    let busy_start = lgo_trace::enabled().then(std::time::Instant::now);
    let mut executed = 0u64;
    let mut stolen = 0u64;
    loop {
        let mut idx = queues[home]
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .pop_front();
        if idx.is_none() {
            for off in 1..queues.len() {
                let victim = (home + off) % queues.len();
                idx = queues[victim]
                    .lock()
                    .unwrap_or_else(std::sync::PoisonError::into_inner)
                    .pop_back();
                if idx.is_some() {
                    stolen += 1;
                    break;
                }
            }
        }
        let Some(idx) = idx else { break };
        executed += 1;
        // SAFETY: see `TaskRef` — the batch installer is still blocked in
        // `run_batch`, keeping the referent alive.
        let task = unsafe { &*batch.task.0 };
        if let Err(payload) = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| task(idx)))
        {
            batch
                .panics
                .lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner)
                .push((idx, panic_message(payload)));
        }
        if batch.remaining.fetch_sub(1, Ordering::AcqRel) == 1 {
            // Last task: wake the installer. Taking the state lock orders
            // this notify after the installer's check-then-wait, so the
            // wakeup cannot be lost.
            let _guard = shared.lock_state();
            shared.done.notify_all();
        }
    }
    if let Some(start) = busy_start {
        let busy_ns = u64::try_from(start.elapsed().as_nanos()).unwrap_or(u64::MAX);
        lgo_trace::sched(&format!("runtime/participant{home:02}/tasks"), executed);
        lgo_trace::sched(&format!("runtime/participant{home:02}/busy_ns"), busy_ns);
        lgo_trace::sched("runtime/steals", stolen);
    }
}

/// Extracts a human-readable message from a panic payload.
fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// The serial path: runs tasks in index order on the calling thread, with
/// the same panic-capture semantics as the pooled path (so the surfaced
/// error does not depend on the thread count).
fn run_inline(n: usize, task: &(dyn Fn(usize) + Sync)) -> Result<(), RuntimeError> {
    lgo_trace::sched("runtime/inline_tasks", n as u64);
    for i in 0..n {
        if let Err(payload) = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| task(i))) {
            return Err(RuntimeError::TaskPanicked {
                index: i,
                message: panic_message(payload),
            });
        }
    }
    Ok(())
}

/// The process-global pool, created on first multi-threaded batch.
fn global() -> &'static Pool {
    static POOL: OnceLock<Pool> = OnceLock::new();
    POOL.get_or_init(|| {
        let size = threads()
            .max(hardware_threads())
            .clamp(MIN_POOL_RESERVE, MAX_POOL_THREADS);
        Pool::new(size)
    })
}

fn hardware_threads() -> usize {
    std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1)
}

/// The thread count requested by the `LGO_THREADS` environment variable
/// (read once); unset, zero or unparsable values fall back to the
/// machine's available parallelism.
fn env_threads() -> usize {
    static ENV: OnceLock<Option<usize>> = OnceLock::new();
    ENV.get_or_init(|| {
        std::env::var("LGO_THREADS")
            .ok()
            .and_then(|v| v.trim().parse::<usize>().ok())
            .filter(|&n| n > 0)
    })
    .unwrap_or_else(hardware_threads)
}

/// The effective thread count parallel primitives will use: the
/// [`set_threads`] override if present, else `LGO_THREADS`, else the
/// machine's available parallelism. Always at least 1.
#[must_use]
pub fn threads() -> usize {
    match THREAD_OVERRIDE.load(Ordering::Relaxed) {
        0 => env_threads(),
        n => n,
    }
}

/// Overrides the effective thread count for subsequent parallel calls
/// (`None` restores the `LGO_THREADS` / hardware default). Intended for
/// tests and scaling benchmarks; the override is process-global.
///
/// By the runtime's determinism contract, changing the thread count never
/// changes any primitive's results — only its schedule.
pub fn set_threads(n: Option<usize>) {
    THREAD_OVERRIDE.store(n.unwrap_or(0), Ordering::Relaxed);
}

/// Whether the current thread is a pool worker (nested parallel calls run
/// inline).
pub(crate) fn on_worker_thread() -> bool {
    IS_POOL_WORKER.with(Cell::get)
}

/// Runs `n` index-tasks with the effective thread count: inline when the
/// batch is trivial, serial, or nested; across the pool otherwise.
pub(crate) fn execute(n: usize, task: &(dyn Fn(usize) + Sync)) -> Result<(), RuntimeError> {
    if n == 0 {
        return Ok(());
    }
    // Batch/task totals are schedule-independent (every batch dispatches
    // the same `n` at any thread count), so they live in the deterministic
    // counter section; *where* tasks ran is sched data.
    lgo_trace::counter("runtime/batches", 1);
    lgo_trace::counter("runtime/tasks", n as u64);
    let threads = threads().min(n);
    if threads <= 1 || on_worker_thread() {
        return run_inline(n, task);
    }
    global().run_batch(n, threads, task)
}
