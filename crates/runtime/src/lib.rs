//! # lgo-runtime
//!
//! A dependency-free, deterministic work-stealing parallel runtime for the
//! lgo workspace (no rayon — consistent with the vendored-deps ethos; the
//! build environment has no crates.io access).
//!
//! The defense pipeline decomposes naturally over independent units —
//! patients (attack simulation, risk quantification), profile pairs (the
//! O(n²) DTW distance matrix), training runs and detector kinds — and this
//! crate schedules those units across a pool of worker threads while
//! keeping every run **bit-identical** to a serial run:
//!
//! - **Index-addressed results.** Every primitive returns results ordered
//!   by *input index*, never by completion order.
//! - **Splittable seeding.** Randomized tasks derive their RNG seed from
//!   `(base seed, input index)` via [`split_seed`], so streams do not
//!   depend on scheduling.
//! - **No cross-task communication.** Tasks see only their index and
//!   shared immutable inputs.
//!
//! Under that contract, `LGO_THREADS=1`, `=2` and `=8` produce
//! byte-for-byte identical pipeline exports (enforced by the workspace's
//! determinism test suite).
//!
//! The effective thread count is, in priority order: the [`set_threads`]
//! override, the `LGO_THREADS` environment variable, the machine's
//! available parallelism. At one thread the primitives run inline on the
//! calling thread with zero pool overhead (the pool is never even
//! created); nested parallel calls from inside worker tasks also run
//! inline, so composition cannot deadlock.
//!
//! Worker-task panics are caught at the pool boundary and surfaced as
//! [`RuntimeError::TaskPanicked`] (lowest panicking index wins, another
//! schedule-independence guarantee), composing with the workspace's
//! graceful-degradation layer as `LgoError::Runtime`.
//!
//! For *online* workloads the crate also provides [`BoundedQueue`], a
//! bounded multi-producer ingest queue whose submissions are rejected with
//! full depth/capacity accounting ([`SubmitError::Full`]) instead of
//! growing without bound — the capacity signal `lgo-serve` builds its
//! backpressure and load-shedding ladder on.
//!
//! # Examples
//!
//! ```
//! use lgo_runtime::{par_index_pairs, par_map, split_seed};
//!
//! // Results land by input index, regardless of which thread ran them.
//! let squares = par_map(&[1, 2, 3, 4], |&x| x * x);
//! assert_eq!(squares, vec![1, 4, 9, 16]);
//!
//! // Upper-triangle fan-out for pairwise distance matrices.
//! let pairs = par_index_pairs(4, |i, j| (i, j));
//! assert_eq!(pairs, vec![(0, 1), (0, 2), (0, 3), (1, 2), (1, 3), (2, 3)]);
//! ```

mod error;
mod pool;
mod queue;
mod seed;

pub use error::RuntimeError;
pub use pool::{set_threads, threads};
pub use queue::{BoundedQueue, SubmitError};
pub use seed::split_seed;

use std::sync::Mutex;

/// Runs `f` over `0..n` and collects the results in index order.
///
/// # Errors
///
/// Returns [`RuntimeError::TaskPanicked`] when any task panics (the lowest
/// panicking index is reported).
pub fn try_par_map_indexed<T, F>(n: usize, f: F) -> Result<Vec<T>, RuntimeError>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    let slots: Vec<Mutex<Option<T>>> = (0..n).map(|_| Mutex::new(None)).collect();
    #[cfg(feature = "strict-numerics")]
    let executed = std::sync::atomic::AtomicUsize::new(0);
    let task = |i: usize| {
        let value = f(i);
        #[cfg(feature = "strict-numerics")]
        executed.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        *slots[i]
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner) = Some(value);
    };
    pool::execute(n, &task)?;
    #[cfg(feature = "strict-numerics")]
    {
        // Scheduling sanitizer: every task ran exactly once and every slot
        // is occupied — the invariants the determinism contract rests on.
        let ran = executed.load(std::sync::atomic::Ordering::Relaxed);
        assert_eq!(ran, n, "lgo-runtime sanitizer: {ran} executions for {n} tasks");
    }
    slots
        .into_iter()
        .enumerate()
        .map(|(i, m)| {
            m.into_inner()
                .unwrap_or_else(std::sync::PoisonError::into_inner)
                .ok_or_else(|| RuntimeError::TaskPanicked {
                    index: i,
                    message: "task completed without storing a result".into(),
                })
        })
        .collect()
}

/// Panicking [`try_par_map_indexed`].
///
/// # Panics
///
/// Panics when any task panics, carrying the task's message.
pub fn par_map_indexed<T, F>(n: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    match try_par_map_indexed(n, f) {
        Ok(v) => v,
        Err(e) => panic!("par_map_indexed: {e}"),
    }
}

/// Maps `f` over a slice in parallel; results are in input order.
///
/// # Errors
///
/// Returns [`RuntimeError::TaskPanicked`] when any task panics.
pub fn try_par_map<I, T, F>(items: &[I], f: F) -> Result<Vec<T>, RuntimeError>
where
    I: Sync,
    T: Send,
    F: Fn(&I) -> T + Sync,
{
    try_par_map_indexed(items.len(), |i| f(&items[i]))
}

/// Panicking [`try_par_map`]: propagates a task panic as a panic on the
/// calling thread.
///
/// # Panics
///
/// Panics when any task panics, carrying the task's message.
pub fn par_map<I, T, F>(items: &[I], f: F) -> Vec<T>
where
    I: Sync,
    T: Send,
    F: Fn(&I) -> T + Sync,
{
    match try_par_map(items, f) {
        Ok(v) => v,
        Err(e) => panic!("par_map: {e}"),
    }
}

/// Maps `f` over contiguous chunks of `items` (the last chunk may be
/// shorter); one result per chunk, in chunk order.
///
/// # Errors
///
/// Returns [`RuntimeError::ZeroChunkSize`] for `chunk_size == 0` and
/// [`RuntimeError::TaskPanicked`] when any task panics.
pub fn try_par_chunks<I, T, F>(
    items: &[I],
    chunk_size: usize,
    f: F,
) -> Result<Vec<T>, RuntimeError>
where
    I: Sync,
    T: Send,
    F: Fn(&[I]) -> T + Sync,
{
    if chunk_size == 0 {
        return Err(RuntimeError::ZeroChunkSize);
    }
    let chunks = items.len().div_ceil(chunk_size);
    try_par_map_indexed(chunks, |c| {
        let lo = c * chunk_size;
        let hi = (lo + chunk_size).min(items.len());
        f(&items[lo..hi])
    })
}

/// Panicking [`try_par_chunks`].
///
/// # Panics
///
/// Panics on `chunk_size == 0` or when any task panics.
pub fn par_chunks<I, T, F>(items: &[I], chunk_size: usize, f: F) -> Vec<T>
where
    I: Sync,
    T: Send,
    F: Fn(&[I]) -> T + Sync,
{
    match try_par_chunks(items, chunk_size, f) {
        Ok(v) => v,
        Err(e) => panic!("par_chunks: {e}"),
    }
}

/// Runs `f(i, j)` over every unordered pair `0 <= i < j < n`, returning
/// results in row-major upper-triangle order — the fan-out primitive for
/// pairwise distance matrices.
///
/// # Errors
///
/// Returns [`RuntimeError::TaskPanicked`] when any task panics.
pub fn try_par_index_pairs<T, F>(n: usize, f: F) -> Result<Vec<T>, RuntimeError>
where
    T: Send,
    F: Fn(usize, usize) -> T + Sync,
{
    let pairs = n * n.saturating_sub(1) / 2;
    try_par_map_indexed(pairs, |k| {
        let (i, j) = pair_from_linear(k, n);
        f(i, j)
    })
}

/// Panicking [`try_par_index_pairs`].
///
/// # Panics
///
/// Panics when any task panics.
pub fn par_index_pairs<T, F>(n: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize, usize) -> T + Sync,
{
    match try_par_index_pairs(n, f) {
        Ok(v) => v,
        Err(e) => panic!("par_index_pairs: {e}"),
    }
}

/// Maps the linear index `k` of the row-major upper triangle (excluding
/// the diagonal) of an `n × n` matrix back to its `(i, j)` pair, `i < j`.
#[must_use]
pub fn pair_from_linear(k: usize, n: usize) -> (usize, usize) {
    // Row i starts at linear offset S(i) = i*n - i*(i+1)/2 - i... solved
    // with a float estimate plus an exact fix-up (the estimate is off by at
    // most one for any n the workspace can allocate a matrix for).
    let row_start = |i: usize| i * n - i * (i + 1) / 2;
    let kf = k as f64;
    let nf = n as f64;
    let mut i = ((2.0 * nf - 1.0 - ((2.0 * nf - 1.0) * (2.0 * nf - 1.0) - 8.0 * kf).sqrt())
        / 2.0) as usize;
    i = i.min(n.saturating_sub(2));
    while i > 0 && row_start(i) > k {
        i -= 1;
    }
    while i + 1 < n && row_start(i + 1) <= k {
        i += 1;
    }
    let j = i + 1 + (k - row_start(i));
    (i, j)
}

/// A scope collecting heterogeneous one-shot tasks for batched parallel
/// execution; see [`try_scope`].
pub struct Scope<'scope> {
    tasks: Vec<Box<dyn FnOnce() + Send + 'scope>>,
}

impl<'scope> Scope<'scope> {
    /// Registers a task. Tasks may borrow from the enclosing stack frame
    /// (anything outliving the [`try_scope`] call); they run when the scope
    /// closure returns, not eagerly.
    pub fn spawn<F: FnOnce() + Send + 'scope>(&mut self, f: F) {
        self.tasks.push(Box::new(f));
    }

    /// How many tasks have been registered so far.
    #[must_use]
    pub fn len(&self) -> usize {
        self.tasks.len()
    }

    /// Whether no tasks have been registered.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.tasks.is_empty()
    }
}

/// Structured parallelism over heterogeneous tasks: `f` registers any
/// number of tasks on the scope; they all run (in parallel, identified by
/// registration index) before `try_scope` returns. Borrowed captures are
/// sound because no task outlives this call.
///
/// # Errors
///
/// Returns [`RuntimeError::TaskPanicked`] when any task panics (lowest
/// registration index wins).
pub fn try_scope<'scope, F>(f: F) -> Result<(), RuntimeError>
where
    F: FnOnce(&mut Scope<'scope>),
{
    type TaskCell<'s> = Mutex<Option<Box<dyn FnOnce() + Send + 's>>>;
    let mut scope = Scope { tasks: Vec::new() };
    f(&mut scope);
    let cells: Vec<TaskCell<'scope>> = scope
        .tasks
        .into_iter()
        .map(|t| Mutex::new(Some(t)))
        .collect();
    let results = try_par_map_indexed(cells.len(), |i| {
        if let Some(task) = cells[i]
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .take()
        {
            task();
        }
    });
    results.map(|_| ())
}

/// Panicking [`try_scope`].
///
/// # Panics
///
/// Panics when any task panics.
pub fn scope<'scope, F>(f: F)
where
    F: FnOnce(&mut Scope<'scope>),
{
    match try_scope(f) {
        Ok(()) => {}
        Err(e) => panic!("scope: {e}"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::{Mutex as TestMutex, MutexGuard, OnceLock};

    /// Serializes tests that mutate the process-wide thread override; the
    /// cargo test harness runs tests concurrently by default.
    fn override_guard() -> MutexGuard<'static, ()> {
        static GUARD: OnceLock<TestMutex<()>> = OnceLock::new();
        GUARD
            .get_or_init(|| TestMutex::new(()))
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    #[test]
    fn par_map_preserves_input_order() {
        let _serial = override_guard();
        set_threads(Some(4));
        let items: Vec<usize> = (0..257).collect();
        let out = par_map(&items, |&x| x * 2);
        assert_eq!(out, items.iter().map(|x| x * 2).collect::<Vec<_>>());
        set_threads(None);
    }

    #[test]
    fn results_identical_across_thread_counts() {
        let _serial = override_guard();
        let items: Vec<u64> = (0..100).collect();
        // A seeded draw per task: must not depend on scheduling.
        let work = |&x: &u64| split_seed(99, x).wrapping_mul(x + 1);
        let mut reference = None;
        for t in [1, 2, 8] {
            set_threads(Some(t));
            let out = par_map(&items, work);
            match &reference {
                None => reference = Some(out),
                Some(r) => assert_eq!(&out, r, "thread count {t} changed results"),
            }
        }
        set_threads(None);
    }

    #[test]
    fn empty_input_yields_empty_output() {
        let out: Vec<u8> = par_map(&[] as &[u8], |_| 0);
        assert!(out.is_empty());
    }

    #[test]
    fn chunks_cover_the_slice_exactly_once() {
        let _serial = override_guard();
        set_threads(Some(3));
        let items: Vec<usize> = (0..100).collect();
        let sums = par_chunks(&items, 7, |c| c.iter().sum::<usize>());
        assert_eq!(sums.len(), 100usize.div_ceil(7));
        assert_eq!(sums.iter().sum::<usize>(), items.iter().sum::<usize>());
        // Chunk order matches slice order.
        assert_eq!(sums[0], (0..7).sum::<usize>());
        set_threads(None);
    }

    #[test]
    fn zero_chunk_size_is_an_error() {
        let r: Result<Vec<usize>, _> = try_par_chunks(&[1, 2, 3], 0, |c| c.len());
        assert_eq!(r, Err(RuntimeError::ZeroChunkSize));
    }

    #[test]
    fn pair_mapping_is_a_bijection() {
        for n in [0usize, 1, 2, 3, 7, 20] {
            let pairs = n * n.saturating_sub(1) / 2;
            let mut expected = Vec::new();
            for i in 0..n {
                for j in i + 1..n {
                    expected.push((i, j));
                }
            }
            let got: Vec<(usize, usize)> =
                (0..pairs).map(|k| pair_from_linear(k, n)).collect();
            assert_eq!(got, expected, "n = {n}");
        }
    }

    #[test]
    fn par_index_pairs_runs_every_pair() {
        let _serial = override_guard();
        set_threads(Some(4));
        let out = par_index_pairs(6, |i, j| i * 10 + j);
        assert_eq!(out.len(), 15);
        assert_eq!(out[0], 1); // (0, 1)
        assert_eq!(out[14], 45); // (4, 5)
        set_threads(None);
    }

    #[test]
    fn task_panics_surface_as_lowest_index_error() {
        let _serial = override_guard();
        set_threads(Some(4));
        let items: Vec<usize> = (0..64).collect();
        let r = try_par_map(&items, |&x| {
            assert!(x != 20 && x != 50, "poisoned input {x}");
            x
        });
        match r {
            Err(RuntimeError::TaskPanicked { index, message }) => {
                assert_eq!(index, 20, "lowest panicking index must win");
                assert!(message.contains("poisoned input 20"), "{message}");
            }
            other => panic!("expected TaskPanicked, got {other:?}"),
        }
        set_threads(None);
    }

    #[test]
    fn pool_survives_task_panics() {
        let _serial = override_guard();
        set_threads(Some(4));
        let items: Vec<usize> = (0..16).collect();
        let _ = try_par_map(&items, |&x| assert!(x % 2 == 0, "odd {x}"));
        // The pool still schedules follow-up batches correctly.
        let out = par_map(&items, |&x| x + 1);
        assert_eq!(out[15], 16);
        set_threads(None);
    }

    #[test]
    fn nested_parallelism_runs_inline_without_deadlock() {
        let _serial = override_guard();
        set_threads(Some(4));
        let outer: Vec<usize> = (0..8).collect();
        let out = par_map(&outer, |&i| {
            let inner: Vec<usize> = (0..10).collect();
            par_map(&inner, |&j| i * 100 + j).iter().sum::<usize>()
        });
        assert_eq!(out.len(), 8);
        assert_eq!(out[0], (0..10).sum::<usize>());
        set_threads(None);
    }

    #[test]
    fn scope_runs_every_spawned_task() {
        let _serial = override_guard();
        set_threads(Some(4));
        let counter = AtomicUsize::new(0);
        let mut slot_a = 0usize;
        let mut slot_b = 0usize;
        scope(|s| {
            assert!(s.is_empty());
            s.spawn(|| slot_a = 41);
            s.spawn(|| slot_b = 1);
            for _ in 0..10 {
                s.spawn(|| {
                    counter.fetch_add(1, Ordering::Relaxed);
                });
            }
            assert_eq!(s.len(), 12);
        });
        assert_eq!(slot_a + slot_b, 42);
        assert_eq!(counter.load(Ordering::Relaxed), 10);
        set_threads(None);
    }

    #[test]
    fn scope_panic_reports_registration_index() {
        let r = try_scope(|s| {
            s.spawn(|| {});
            s.spawn(|| panic!("scoped boom"));
        });
        match r {
            Err(RuntimeError::TaskPanicked { index, message }) => {
                assert_eq!(index, 1);
                assert!(message.contains("scoped boom"));
            }
            other => panic!("expected TaskPanicked, got {other:?}"),
        }
    }

    #[test]
    fn thread_count_reporting() {
        let _serial = override_guard();
        set_threads(Some(3));
        assert_eq!(threads(), 3);
        set_threads(None);
        assert!(threads() >= 1);
    }
}
