use std::error::Error;
use std::fmt;

/// Error describing an invalid dendrogram construction.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ClusterError {
    /// Fewer than two leaves — nothing to cluster. Profiling a cohort that
    /// degraded to a single usable patient lands here.
    TooFewLeaves {
        /// The offending leaf count.
        got: usize,
    },
    /// The merge list length is not `n_leaves - 1`.
    WrongMergeCount {
        /// Merges supplied.
        merges: usize,
        /// Leaves supplied.
        leaves: usize,
    },
    /// A merge references a node id that does not exist yet.
    FutureNode {
        /// Index of the offending merge.
        merge: usize,
    },
    /// A merge lists the same node as both children.
    SelfMerge {
        /// Index of the offending merge.
        merge: usize,
    },
}

impl fmt::Display for ClusterError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ClusterError::TooFewLeaves { got } => {
                write!(f, "need at least two leaves to cluster, got {got}")
            }
            ClusterError::WrongMergeCount { merges, leaves } => {
                write!(f, "{merges} merges for {leaves} leaves")
            }
            ClusterError::FutureNode { merge } => {
                write!(f, "merge {merge} references a future node")
            }
            ClusterError::SelfMerge { merge } => write!(f, "self-merge at {merge}"),
        }
    }
}

impl Error for ClusterError {}

/// One agglomerative merge: nodes `left` and `right` join at `height` into a
/// cluster of `size` leaves.
///
/// Node ids use the scipy convention: ids below `n_leaves` are leaves, id
/// `n_leaves + i` is the cluster formed by merge `i`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Merge {
    /// First child node id.
    pub left: usize,
    /// Second child node id.
    pub right: usize,
    /// Linkage distance at which the children merge.
    pub height: f64,
    /// Number of leaves under the new cluster.
    pub size: usize,
}

/// The full merge tree produced by agglomerative clustering.
///
/// # Examples
///
/// ```
/// use lgo_cluster::{agglomerate_points, Linkage};
///
/// let dendro = agglomerate_points(&[vec![0.0], vec![0.5], vec![9.0]], Linkage::Average);
/// assert_eq!(dendro.n_leaves(), 3);
/// assert_eq!(dendro.cut_k(2), vec![0, 0, 1]);
/// assert!(dendro.render_ascii().contains("height"));
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Dendrogram {
    n_leaves: usize,
    merges: Vec<Merge>,
}

impl Dendrogram {
    /// Assembles a dendrogram from its merge list.
    ///
    /// Unlike [`try_new`](Self::try_new), a degenerate single-leaf
    /// dendrogram is allowed (it carries no merges).
    ///
    /// # Panics
    ///
    /// Panics if the merge count is not `n_leaves - 1` (for `n_leaves > 0`)
    /// or any merge references an out-of-range node.
    pub fn new(n_leaves: usize, merges: Vec<Merge>) -> Self {
        assert!(n_leaves > 0, "Dendrogram: need at least one leaf");
        if n_leaves == 1 {
            assert!(
                merges.is_empty(),
                "Dendrogram: {} merges for 1 leaves",
                merges.len()
            );
            return Self { n_leaves, merges };
        }
        match Self::try_new(n_leaves, merges) {
            Ok(d) => d,
            // lint: allow(L1): documented panicking wrapper; try_new is the checked path
            Err(e) => panic!("Dendrogram: {e}"),
        }
    }

    /// Fallible [`new`](Self::new), stricter about degenerate input: a
    /// meaningful clustering needs at least two leaves, so `n_leaves < 2`
    /// is an error here rather than a panic or a silent trivial tree.
    ///
    /// # Errors
    ///
    /// Returns [`ClusterError::TooFewLeaves`] for fewer than two leaves,
    /// [`ClusterError::WrongMergeCount`] when the merge list length is not
    /// `n_leaves - 1`, and [`ClusterError::FutureNode`] /
    /// [`ClusterError::SelfMerge`] for structurally invalid merges.
    pub fn try_new(n_leaves: usize, merges: Vec<Merge>) -> Result<Self, ClusterError> {
        if n_leaves < 2 {
            return Err(ClusterError::TooFewLeaves { got: n_leaves });
        }
        if merges.len() != n_leaves - 1 {
            return Err(ClusterError::WrongMergeCount {
                merges: merges.len(),
                leaves: n_leaves,
            });
        }
        for (i, m) in merges.iter().enumerate() {
            let max_node = n_leaves + i;
            if m.left >= max_node || m.right >= max_node {
                return Err(ClusterError::FutureNode { merge: i });
            }
            if m.left == m.right {
                return Err(ClusterError::SelfMerge { merge: i });
            }
        }
        Ok(Self { n_leaves, merges })
    }

    /// Number of leaves (original observations).
    pub fn n_leaves(&self) -> usize {
        self.n_leaves
    }

    /// The merges in execution order.
    pub fn merges(&self) -> &[Merge] {
        &self.merges
    }

    /// The largest gap between consecutive merge heights, returned as
    /// `(height_below, height_above)` — the natural place to cut, and how
    /// the paper chose two clusters from its dendrograms.
    ///
    /// Returns `None` when there are fewer than two merges.
    pub fn widest_gap(&self) -> Option<(f64, f64)> {
        if self.merges.len() < 2 {
            return None;
        }
        let mut heights: Vec<f64> = self.merges.iter().map(|m| m.height).collect();
        heights.sort_by(f64::total_cmp);
        heights
            .windows(2)
            .max_by(|a, b| (a[1] - a[0]).total_cmp(&(b[1] - b[0])))
            .map(|w| (w[0], w[1]))
    }

    /// Cluster labels after cutting all merges with `height > h`.
    ///
    /// Labels are densely renumbered in order of first appearance by leaf
    /// index.
    pub fn cut_at_height(&self, h: f64) -> Vec<usize> {
        // Union-find over leaves, applying merges with height <= h.
        let mut parent: Vec<usize> = (0..self.n_leaves + self.merges.len()).collect();
        fn find(parent: &mut Vec<usize>, x: usize) -> usize {
            if parent[x] != x {
                let root = find(parent, parent[x]);
                parent[x] = root;
            }
            parent[x]
        }
        for (i, m) in self.merges.iter().enumerate() {
            let node = self.n_leaves + i;
            if m.height <= h {
                let rl = find(&mut parent, m.left);
                let rr = find(&mut parent, m.right);
                parent[rl] = node;
                parent[rr] = node;
            } else {
                // Children stay separate, but the node must still exist so
                // later merges can reference it without uniting children.
            }
        }
        self.relabel(&mut parent)
    }

    /// Cluster labels for exactly `k` clusters (cutting the `k-1` highest
    /// merges).
    ///
    /// # Panics
    ///
    /// Panics if `k == 0` or `k > n_leaves`.
    pub fn cut_k(&self, k: usize) -> Vec<usize> {
        assert!(k > 0, "cut_k: k must be positive");
        assert!(
            k <= self.n_leaves,
            "cut_k: k = {k} > {} leaves",
            self.n_leaves
        );
        // Apply merges in height order, stopping when k clusters remain.
        let mut order: Vec<usize> = (0..self.merges.len()).collect();
        order.sort_by(|&a, &b| {
            self.merges[a]
                .height
                .total_cmp(&self.merges[b].height)
                .then(a.cmp(&b))
        });
        let to_apply = self.n_leaves - k;
        let mut parent: Vec<usize> = (0..self.n_leaves + self.merges.len()).collect();
        fn find(parent: &mut Vec<usize>, x: usize) -> usize {
            if parent[x] != x {
                let root = find(parent, parent[x]);
                parent[x] = root;
            }
            parent[x]
        }
        for &mi in order.iter().take(to_apply) {
            let m = self.merges[mi];
            let node = self.n_leaves + mi;
            let rl = find(&mut parent, m.left);
            let rr = find(&mut parent, m.right);
            parent[rl] = node;
            parent[rr] = node;
        }
        self.relabel(&mut parent)
    }

    fn relabel(&self, parent: &mut Vec<usize>) -> Vec<usize> {
        fn find(parent: &mut Vec<usize>, x: usize) -> usize {
            if parent[x] != x {
                let root = find(parent, parent[x]);
                parent[x] = root;
            }
            parent[x]
        }
        let mut labels = Vec::with_capacity(self.n_leaves);
        let mut mapping: Vec<(usize, usize)> = Vec::new();
        for leaf in 0..self.n_leaves {
            let root = find(parent, leaf);
            let label = match mapping.iter().find(|&&(r, _)| r == root) {
                Some(&(_, l)) => l,
                None => {
                    let l = mapping.len();
                    mapping.push((root, l));
                    l
                }
            };
            labels.push(label);
        }
        labels
    }

    /// Leaves under a node id (leaf ids themselves or merge nodes).
    ///
    /// # Panics
    ///
    /// Panics if `node` is out of range.
    pub fn leaves_under(&self, node: usize) -> Vec<usize> {
        assert!(
            node < self.n_leaves + self.merges.len(),
            "leaves_under: node {node} out of range"
        );
        if node < self.n_leaves {
            return vec![node];
        }
        let m = self.merges[node - self.n_leaves];
        let mut out = self.leaves_under(m.left);
        out.extend(self.leaves_under(m.right));
        out.sort_unstable();
        out
    }

    /// Renders the dendrogram as indented ASCII text, one merge per line in
    /// execution order, with the member leaves of each side — a textual
    /// stand-in for the paper's Figure 3 dendrograms. `labels` supplies leaf
    /// names (falls back to indices when `None`).
    pub fn render_ascii_with(&self, labels: Option<&[String]>) -> String {
        let name = |leaf: usize| -> String {
            labels
                .and_then(|ls| ls.get(leaf))
                .cloned()
                .unwrap_or_else(|| leaf.to_string())
        };
        let mut out = String::new();
        for (i, m) in self.merges.iter().enumerate() {
            let left: Vec<String> = self.leaves_under(m.left).into_iter().map(name).collect();
            let right: Vec<String> = self.leaves_under(m.right).into_iter().map(name).collect();
            out.push_str(&format!(
                "merge {:>2} @ height {:>10.4}: [{}] + [{}]\n",
                i,
                m.height,
                left.join(", "),
                right.join(", ")
            ));
        }
        out
    }

    /// [`Self::render_ascii_with`] with index labels.
    pub fn render_ascii(&self) -> String {
        self.render_ascii_with(None)
    }

    /// Cophenetic distance matrix: entry `(i, j)` is the height at which
    /// leaves `i` and `j` first share a cluster. Comparing it against the
    /// original distances (the cophenetic correlation) measures how
    /// faithfully the dendrogram preserves the geometry.
    pub fn cophenetic_matrix(&self) -> Vec<Vec<f64>> {
        let n = self.n_leaves;
        let mut d = vec![vec![0.0; n]; n];
        for (i, m) in self.merges.iter().enumerate() {
            let _ = i;
            let left = self.leaves_under(m.left);
            let right = self.leaves_under(m.right);
            for &a in &left {
                for &b in &right {
                    d[a][b] = m.height;
                    d[b][a] = m.height;
                }
            }
        }
        d
    }

    /// Pearson correlation between the original distances and the
    /// cophenetic distances over all leaf pairs — the standard quality
    /// statistic for a hierarchical clustering.
    ///
    /// Returns `None` when there are fewer than two leaves or either side
    /// has zero variance.
    ///
    /// # Panics
    ///
    /// Panics if `original` is not an `n x n` matrix for `n = n_leaves`.
    pub fn cophenetic_correlation(&self, original: &[Vec<f64>]) -> Option<f64> {
        let n = self.n_leaves;
        assert_eq!(original.len(), n, "cophenetic_correlation: matrix size");
        let coph = self.cophenetic_matrix();
        let mut xs = Vec::new();
        let mut ys = Vec::new();
        for i in 0..n {
            assert_eq!(original[i].len(), n, "cophenetic_correlation: row {i}");
            for j in i + 1..n {
                xs.push(original[i][j]);
                ys.push(coph[i][j]);
            }
        }
        if xs.len() < 2 {
            return None;
        }
        let nn = xs.len() as f64;
        let mx = xs.iter().sum::<f64>() / nn;
        let my = ys.iter().sum::<f64>() / nn;
        let mut cov = 0.0;
        let mut vx = 0.0;
        let mut vy = 0.0;
        for (&x, &y) in xs.iter().zip(&ys) {
            cov += (x - mx) * (y - my);
            vx += (x - mx) * (x - mx);
            vy += (y - my) * (y - my);
        }
        if vx == 0.0 || vy == 0.0 { // lint: allow(L4): zero variance is the exact degenerate case, not a rounding artifact
            return None;
        }
        Some(cov / (vx.sqrt() * vy.sqrt()))
    }
}

impl fmt::Display for Dendrogram {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "Dendrogram({} leaves, {} merges)",
            self.n_leaves,
            self.merges.len()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::linkage::{agglomerate_points, Linkage};

    fn two_groups() -> Dendrogram {
        agglomerate_points(
            &[vec![0.0], vec![0.5], vec![10.0], vec![10.5], vec![11.0]],
            Linkage::Average,
        )
    }

    #[test]
    fn cut_k_extremes() {
        let d = two_groups();
        assert_eq!(d.cut_k(1), vec![0, 0, 0, 0, 0]);
        let all = d.cut_k(5);
        assert_eq!(all, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn cut_k_two_recovers_groups() {
        let labels = two_groups().cut_k(2);
        assert_eq!(labels[0], labels[1]);
        assert_eq!(labels[2], labels[3]);
        assert_eq!(labels[3], labels[4]);
        assert_ne!(labels[0], labels[2]);
    }

    #[test]
    fn cut_at_height_matches_cut_k() {
        let d = two_groups();
        let (below, above) = d.widest_gap().unwrap();
        let h = (below + above) / 2.0;
        assert_eq!(d.cut_at_height(h), d.cut_k(2));
        // Cutting below every merge -> singletons.
        assert_eq!(d.cut_at_height(-1.0), vec![0, 1, 2, 3, 4]);
        // Cutting above every merge -> one cluster.
        assert_eq!(d.cut_at_height(1e12), vec![0, 0, 0, 0, 0]);
    }

    #[test]
    fn leaves_under_nodes() {
        let d = two_groups();
        assert_eq!(d.leaves_under(2), vec![2]);
        let root = d.n_leaves() + d.merges().len() - 1;
        assert_eq!(d.leaves_under(root), vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn ascii_render_mentions_all_leaves() {
        let d = two_groups();
        let names: Vec<String> = ["a", "b", "c", "d", "e"].iter().map(|s| s.to_string()).collect();
        let text = d.render_ascii_with(Some(&names));
        for n in &names {
            assert!(text.contains(n.as_str()), "missing {n} in:\n{text}");
        }
        assert!(!d.to_string().is_empty());
    }

    #[test]
    fn widest_gap_identifies_group_separation() {
        let (below, above) = two_groups().widest_gap().unwrap();
        assert!(below < 1.0, "below = {below}");
        assert!(above > 5.0, "above = {above}");
    }

    #[test]
    fn cophenetic_matrix_heights() {
        let d = two_groups();
        let coph = d.cophenetic_matrix();
        // Leaves in the same tight group join low; across groups they join
        // at the top merge.
        let top = d.merges().last().unwrap().height;
        assert_eq!(coph[0][2], top);
        assert!(coph[0][1] < top);
        assert_eq!(coph[3][3], 0.0);
    }

    #[test]
    fn cophenetic_correlation_high_for_clean_structure() {
        let points = vec![vec![0.0], vec![0.5], vec![10.0], vec![10.5], vec![11.0]];
        let d = agglomerate_points(&points, Linkage::Average);
        let original = crate::linkage::distance_matrix(&points);
        let c = d.cophenetic_correlation(&original).unwrap();
        assert!(c > 0.9, "cophenetic correlation {c}");
    }

    #[test]
    #[should_panic(expected = "merges for")]
    fn wrong_merge_count_rejected() {
        let _ = Dendrogram::new(3, vec![]);
    }

    #[test]
    fn try_new_rejects_degenerate_and_invalid_input() {
        assert_eq!(
            Dendrogram::try_new(0, vec![]),
            Err(ClusterError::TooFewLeaves { got: 0 })
        );
        assert_eq!(
            Dendrogram::try_new(1, vec![]),
            Err(ClusterError::TooFewLeaves { got: 1 })
        );
        assert_eq!(
            Dendrogram::try_new(3, vec![]),
            Err(ClusterError::WrongMergeCount { merges: 0, leaves: 3 })
        );
        let future = Merge { left: 0, right: 5, height: 1.0, size: 2 };
        assert_eq!(
            Dendrogram::try_new(2, vec![future]),
            Err(ClusterError::FutureNode { merge: 0 })
        );
        let selfm = Merge { left: 1, right: 1, height: 1.0, size: 2 };
        assert_eq!(
            Dendrogram::try_new(2, vec![selfm]),
            Err(ClusterError::SelfMerge { merge: 0 })
        );
        let ok = Merge { left: 0, right: 1, height: 1.0, size: 2 };
        let d = Dendrogram::try_new(2, vec![ok]).unwrap();
        assert_eq!(d.cut_k(2), vec![0, 1]);
    }

    #[test]
    fn new_still_permits_single_leaf() {
        let d = Dendrogram::new(1, vec![]);
        assert_eq!(d.cut_k(1), vec![0]);
    }

    #[test]
    #[should_panic(expected = "k must be positive")]
    fn cut_k_zero_rejected() {
        let _ = two_groups().cut_k(0);
    }
}
