//! Dynamic time warping — an alternative distance for time-series risk
//! profiles that tolerates temporal misalignment (two patients whose risk
//! peaks at slightly different hours should still cluster together).

/// Dynamic-time-warping distance between two scalar series, with an
/// optional Sakoe–Chiba band constraint.
///
/// The base cost is the absolute difference; the returned value is the
/// minimum total cost over all monotone alignments. `band = None` allows
/// unconstrained warping; `Some(w)` restricts |i − j| ≤ w (faster and often
/// more robust).
///
/// # Panics
///
/// Panics if either series is empty.
///
/// # Examples
///
/// ```
/// use lgo_cluster::dtw;
///
/// // A shifted copy warps to near-zero cost.
/// let a = [0.0, 0.0, 1.0, 2.0, 1.0, 0.0];
/// let b = [0.0, 1.0, 2.0, 1.0, 0.0, 0.0];
/// assert!(dtw(&a, &b, None) < 0.5);
/// // Euclidean-style pointwise distance would be much larger.
/// let pointwise: f64 = a.iter().zip(&b).map(|(x, y)| (x - y).abs()).sum();
/// assert!(pointwise > 2.0);
/// ```
pub fn dtw(a: &[f64], b: &[f64], band: Option<usize>) -> f64 {
    assert!(!a.is_empty() && !b.is_empty(), "dtw: empty series");
    let (n, m) = (a.len(), b.len());
    let w = band.unwrap_or(n.max(m));
    // Effective band must at least cover the length difference.
    let w = w.max(n.abs_diff(m));
    let mut prev = vec![f64::INFINITY; m + 1];
    let mut curr = vec![f64::INFINITY; m + 1];
    prev[0] = 0.0;
    for i in 1..=n {
        curr.fill(f64::INFINITY);
        let lo = i.saturating_sub(w).max(1);
        let hi = (i + w).min(m);
        for j in lo..=hi {
            let cost = (a[i - 1] - b[j - 1]).abs();
            // IEEE `f64::min` silently discards NaN operands, which would let
            // a corrupted cell vanish from the alignment; total_cmp orders
            // NaN above infinity so a poisoned path can never win, and the
            // `cost +` term still propagates NaN from the current pair.
            let best = [prev[j], curr[j - 1], prev[j - 1]]
                .into_iter()
                .min_by(|x, y| x.total_cmp(y))
                .unwrap_or(f64::INFINITY);
            curr[j] = cost + best;
        }
        std::mem::swap(&mut prev, &mut curr);
    }
    prev[m]
}

/// Pairwise DTW distance matrix over a set of series.
///
/// The O(n²) upper triangle is fanned out across the lgo-runtime pool
/// (one task per unordered pair); each entry is a pure function of its
/// pair, so the matrix is bit-identical at any thread count.
///
/// # Panics
///
/// Panics if `series` is empty or any series is empty.
pub fn dtw_distance_matrix(series: &[Vec<f64>], band: Option<usize>) -> Vec<Vec<f64>> {
    assert!(!series.is_empty(), "dtw_distance_matrix: no series");
    let n = series.len();
    let _span = lgo_trace::span("cluster/dtw_matrix");
    lgo_trace::counter("cluster/dtw_pairs", (n * (n - 1) / 2) as u64);
    let upper =
        lgo_runtime::par_index_pairs(n, |i, j| dtw(&series[i], &series[j], band));
    let mut d = vec![vec![0.0; n]; n];
    for (k, v) in upper.into_iter().enumerate() {
        let (i, j) = lgo_runtime::pair_from_linear(k, n);
        d[i][j] = v;
        d[j][i] = v;
    }
    d
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identical_series_have_zero_distance() {
        let a = [1.0, 3.0, 2.0, 5.0];
        assert_eq!(dtw(&a, &a, None), 0.0);
        assert_eq!(dtw(&a, &a, Some(1)), 0.0);
    }

    #[test]
    fn symmetric() {
        let a = [0.0, 1.0, 4.0, 2.0];
        let b = [1.0, 1.0, 2.0, 2.0, 3.0];
        assert_eq!(dtw(&a, &b, None), dtw(&b, &a, None));
    }

    #[test]
    fn warping_absorbs_time_shift() {
        let a: Vec<f64> = (0..20).map(|t| ((t as f64) * 0.6).sin()).collect();
        let b: Vec<f64> = (0..20).map(|t| ((t as f64 - 2.0) * 0.6).sin()).collect();
        let warped = dtw(&a, &b, None);
        let pointwise: f64 = a.iter().zip(&b).map(|(x, y)| (x - y).abs()).sum();
        assert!(warped < pointwise * 0.5, "warped {warped} vs pointwise {pointwise}");
    }

    #[test]
    fn band_constraint_is_no_looser_than_unconstrained() {
        let a: Vec<f64> = (0..15).map(|t| (t as f64 * 0.9).cos()).collect();
        let b: Vec<f64> = (0..15).map(|t| (t as f64 * 0.8).cos() + 0.1).collect();
        let free = dtw(&a, &b, None);
        let banded = dtw(&a, &b, Some(2));
        assert!(banded >= free - 1e-12);
    }

    #[test]
    fn different_lengths_work() {
        let a = [1.0, 2.0, 3.0];
        let b = [1.0, 1.5, 2.0, 2.5, 3.0];
        let d = dtw(&a, &b, Some(1));
        assert!(d.is_finite());
    }

    #[test]
    fn matrix_is_symmetric_with_zero_diagonal() {
        let series = vec![
            vec![0.0, 1.0, 2.0],
            vec![2.0, 1.0, 0.0],
            vec![1.0, 1.0, 1.0],
        ];
        let d = dtw_distance_matrix(&series, None);
        for (i, row) in d.iter().enumerate() {
            assert_eq!(row[i], 0.0);
            for (j, v) in row.iter().enumerate() {
                assert_eq!(*v, d[j][i]);
            }
        }
    }

    #[test]
    #[should_panic(expected = "empty series")]
    fn empty_series_rejected() {
        let _ = dtw(&[], &[1.0], None);
    }

    #[test]
    fn matrix_identical_across_thread_counts() {
        let series: Vec<Vec<f64>> = (0..9)
            .map(|s| (0..24).map(|t| ((s * 7 + t) as f64 * 0.31).sin()).collect())
            .collect();
        lgo_runtime::set_threads(Some(1));
        let serial = dtw_distance_matrix(&series, Some(3));
        for t in [2, 8] {
            lgo_runtime::set_threads(Some(t));
            assert_eq!(dtw_distance_matrix(&series, Some(3)), serial);
        }
        lgo_runtime::set_threads(None);
    }
}
