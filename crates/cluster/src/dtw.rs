//! Dynamic time warping — an alternative distance for time-series risk
//! profiles that tolerates temporal misalignment (two patients whose risk
//! peaks at slightly different hours should still cluster together).
//!
//! # Performance layer
//!
//! The O(n²·L²) pair matrix behind clustering is the workspace's hottest
//! kernel, so this module carries three exact optimizations on top of the
//! textbook DP:
//!
//! * **Cell pruning with an exact upper bound** ([`dtw_pruned`]): before the
//!   DP runs, the cost of one concrete in-band alignment (the band-clamped
//!   diagonal path) is accumulated *with the same float-operation order the
//!   DP uses*. Any DP cell whose prefix cost strictly exceeds that bound
//!   cannot lie on an optimal path — completing a path only adds
//!   non-negative costs, and IEEE addition is monotone — so the cell is
//!   dropped and the active range of each row shrinks. Every surviving cell
//!   (the final one included) holds exactly the bits the brute-force DP
//!   would produce, which is what lets [`dtw_distance_matrix`] use this
//!   path while the workspace's byte-identical-export guarantee holds.
//! * **Lower-bound envelopes** ([`Envelope`], [`lb_kim`], [`lb_keogh`]):
//!   cheap O(1)/O(L) bounds below the true DTW distance, powering the
//!   early-abandoning [`dtw_with_cutoff`] used by nearest-neighbour-style
//!   callers that only care whether a distance beats a threshold.
//! * **Reusable row buffers and chunked fan-out** ([`DtwScratch`], and
//!   `dtw_distance_matrix` batching pairs through `par_chunks`): one task
//!   per unordered pair paid the pool's per-task overhead L² times over —
//!   the measured cause of the sub-1.0 speedups in `BENCH_scaling.json` —
//!   so pairs now run in fixed-size chunks that share one scratch
//!   allocation. Chunk boundaries are a pure function of the pair count,
//!   never the thread count, so the matrix stays bit-identical at any
//!   `LGO_THREADS`.

use std::cmp::Ordering;

/// Pairs per pool task in [`dtw_distance_matrix`]. Large enough to amortize
/// task overhead over real DP work, small enough to load-balance a
/// paper-scale (35-patient, 595-pair) matrix across workers. Fixed —
/// deriving it from the thread count would move chunk boundaries (harmless
/// for values, but the point of a constant is that nothing schedule-shaped
/// feeds the fan-out).
const PAIR_CHUNK: usize = 16;

/// Dynamic-time-warping distance between two scalar series, with an
/// optional Sakoe–Chiba band constraint.
///
/// The base cost is the absolute difference; the returned value is the
/// minimum total cost over all monotone alignments. `band = None` allows
/// unconstrained warping; `Some(w)` restricts |i − j| ≤ w (faster and often
/// more robust).
///
/// This is the brute-force reference implementation: every in-band cell is
/// computed. [`dtw_pruned`] returns the same bits faster.
///
/// # Panics
///
/// Panics if either series is empty.
///
/// # Examples
///
/// ```
/// use lgo_cluster::dtw;
///
/// // A shifted copy warps to near-zero cost.
/// let a = [0.0, 0.0, 1.0, 2.0, 1.0, 0.0];
/// let b = [0.0, 1.0, 2.0, 1.0, 0.0, 0.0];
/// assert!(dtw(&a, &b, None) < 0.5);
/// // Euclidean-style pointwise distance would be much larger.
/// let pointwise: f64 = a.iter().zip(&b).map(|(x, y)| (x - y).abs()).sum();
/// assert!(pointwise > 2.0);
/// ```
pub fn dtw(a: &[f64], b: &[f64], band: Option<usize>) -> f64 {
    assert!(!a.is_empty() && !b.is_empty(), "dtw: empty series");
    let (n, m) = (a.len(), b.len());
    let w = band.unwrap_or(n.max(m));
    // Effective band must at least cover the length difference.
    let w = w.max(n.abs_diff(m));
    let mut prev = vec![f64::INFINITY; m + 1];
    let mut curr = vec![f64::INFINITY; m + 1];
    prev[0] = 0.0;
    for i in 1..=n {
        curr.fill(f64::INFINITY);
        let lo = i.saturating_sub(w).max(1);
        let hi = (i + w).min(m);
        for j in lo..=hi {
            let cost = (a[i - 1] - b[j - 1]).abs();
            // IEEE `f64::min` silently discards NaN operands, which would let
            // a corrupted cell vanish from the alignment; total_cmp orders
            // NaN above infinity so a poisoned path can never win, and the
            // `cost +` term still propagates NaN from the current pair.
            let best = [prev[j], curr[j - 1], prev[j - 1]]
                .into_iter()
                .min_by(|x, y| x.total_cmp(y))
                .unwrap_or(f64::INFINITY);
            curr[j] = cost + best;
        }
        std::mem::swap(&mut prev, &mut curr);
    }
    prev[m]
}

/// Reusable DP row buffers for [`dtw_pruned_with`] /
/// [`dtw_with_cutoff_with`]. One scratch serves any number of sequential
/// calls of any series lengths, so a task computing a chunk of pairs
/// allocates twice total instead of twice per pair.
#[derive(Debug, Default)]
pub struct DtwScratch {
    prev: Vec<f64>,
    curr: Vec<f64>,
}

impl DtwScratch {
    /// A fresh scratch; buffers grow on first use.
    pub fn new() -> Self {
        Self::default()
    }

    /// Both rows sized to `len` and filled with +∞.
    fn reset(&mut self, len: usize) {
        self.prev.clear();
        self.prev.resize(len, f64::INFINITY);
        self.curr.clear();
        self.curr.resize(len, f64::INFINITY);
    }
}

/// Sliding min/max envelope of a series under a warping radius — the
/// `O(L)`-queryable geometry behind [`lb_keogh`]. `upper[i]` / `lower[i]`
/// bound every sample the band allows position `i` to align against.
///
/// # Examples
///
/// ```
/// use lgo_cluster::Envelope;
///
/// let e = Envelope::new(&[1.0, 5.0, 2.0], 1);
/// assert_eq!(e.upper(), &[5.0, 5.0, 5.0]);
/// assert_eq!(e.lower(), &[1.0, 1.0, 2.0]);
/// ```
#[derive(Debug, Clone)]
pub struct Envelope {
    upper: Vec<f64>,
    lower: Vec<f64>,
}

impl Envelope {
    /// Builds the radius-`w` envelope of `series`. NaN samples poison their
    /// window's bounds (via `total_cmp` ordering NaN above every real), so
    /// corruption widens rather than silently tightens the envelope.
    ///
    /// # Panics
    ///
    /// Panics if `series` is empty.
    pub fn new(series: &[f64], w: usize) -> Self {
        assert!(!series.is_empty(), "Envelope::new: empty series");
        let n = series.len();
        let mut upper = Vec::with_capacity(n);
        let mut lower = Vec::with_capacity(n);
        for i in 0..n {
            let lo = i.saturating_sub(w);
            let hi = (i + w).min(n - 1);
            let window = &series[lo..=hi];
            let mut max = window[0];
            let mut min = window[0];
            for &v in &window[1..] {
                if v.total_cmp(&max) == Ordering::Greater {
                    max = v;
                }
                if v.total_cmp(&min) == Ordering::Less {
                    min = v;
                }
            }
            upper.push(max);
            lower.push(min);
        }
        Self { upper, lower }
    }

    /// Per-position upper bounds.
    pub fn upper(&self) -> &[f64] {
        &self.upper
    }

    /// Per-position lower bounds.
    pub fn lower(&self) -> &[f64] {
        &self.lower
    }

    /// Envelope length (same as the source series).
    pub fn len(&self) -> usize {
        self.upper.len()
    }

    /// Whether the envelope is empty (never, post-construction).
    pub fn is_empty(&self) -> bool {
        self.upper.is_empty()
    }
}

/// LB_Kim endpoint lower bound: every monotone alignment pays the first
/// pair and the last pair, so their summed cost can never exceed the DTW
/// distance.
///
/// The sum is accumulated as `tail + head` — the same operand order in
/// which the DP adds the final cell's cost onto its prefix — so the bound
/// holds in *float* arithmetic too, not just in exact math: the returned
/// value is `<=` the float [`dtw`] value for any inputs.
///
/// # Panics
///
/// Panics if either series is empty.
pub fn lb_kim(a: &[f64], b: &[f64]) -> f64 {
    assert!(!a.is_empty() && !b.is_empty(), "lb_kim: empty series");
    let head = (a[0] - b[0]).abs();
    if a.len() == 1 && b.len() == 1 {
        // One-sample series share their only aligned pair; counting it
        // twice would overshoot the true distance.
        return head;
    }
    (a[a.len() - 1] - b[b.len() - 1]).abs() + head
}

/// LB_Keogh envelope lower bound of the DTW distance between `query` and
/// the series whose radius-`w` [`Envelope`] is given, for equal-length
/// series under band `w`: positions of `query` escaping the envelope must
/// pay at least their escape distance in any in-band alignment.
///
/// Returns `0.0` (the trivial bound) when the lengths differ — the classic
/// bound is only valid length-to-length. The bound is exact in real
/// arithmetic; float summation order may leave it a few ulps above the
/// float [`dtw`] value, so callers comparing against a cutoff should treat
/// it as a screening bound, not a certificate (which is how
/// [`dtw_with_cutoff_with`] uses its exact bounds instead).
pub fn lb_keogh(query: &[f64], env: &Envelope) -> f64 {
    if query.len() != env.len() {
        return 0.0;
    }
    let mut sum = 0.0;
    for ((&q, &u), &l) in query.iter().zip(&env.upper).zip(&env.lower) {
        if q > u {
            sum += q - u;
        } else if q < l {
            sum += l - q;
        }
    }
    sum
}

/// Exact upper bound on the DTW distance: the accumulated cost of the
/// band-clamped diagonal alignment (advance both series while possible,
/// then walk out the longer one). Accumulation uses `cost + acc` — the
/// identical op order of the DP's `cost + best` — so by induction every DP
/// prefix along this path is `<=` the running bound under IEEE rounding,
/// making the bound float-exact, never just approximately valid.
// The spelled-out `cost + acc` (vs `acc +=`) keeps the operand order on
// the page identical to the DP's `cost + best` it must mirror.
#[allow(clippy::assign_op_pattern)]
fn diagonal_upper_bound(a: &[f64], b: &[f64]) -> f64 {
    let (n, m) = (a.len(), b.len());
    let (mut i, mut j) = (1usize, 1usize);
    let mut acc = (a[0] - b[0]).abs() + 0.0;
    while i < n || j < m {
        if i < n {
            i += 1;
        }
        if j < m {
            j += 1;
        }
        acc = (a[i - 1] - b[j - 1]).abs() + acc;
    }
    acc
}

/// First-wins minimum of the three DP predecessors under `total_cmp` —
/// the branchy but inlinable form of the reference implementation's
/// `[p, c, d].into_iter().min_by(total_cmp)`, selecting the identical
/// element (ties share a bit pattern under `total_cmp`, so first-wins vs
/// last-wins cannot differ).
#[inline]
fn min3(p: f64, c: f64, d: f64) -> f64 {
    let mut best = p;
    if c.total_cmp(&best) == Ordering::Less {
        best = c;
    }
    if d.total_cmp(&best) == Ordering::Less {
        best = d;
    }
    best
}

/// Outcome of one pruned DP: the distance plus cell accounting for the
/// trace counters.
struct PrunedRun {
    distance: f64,
    cells_banded: u64,
    cells_pruned: u64,
}

/// The pruned DP shared by [`dtw_pruned_with`] and [`dtw_with_cutoff_with`].
/// `cutoff = None` runs to completion (bit-identical to [`dtw`]);
/// `Some(c)` additionally abandons—returning +∞ as the distance—once a
/// whole row's surviving minimum exceeds `c`.
fn pruned_dp(
    a: &[f64],
    b: &[f64],
    band: Option<usize>,
    cutoff: Option<f64>,
    scratch: &mut DtwScratch,
) -> PrunedRun {
    assert!(!a.is_empty() && !b.is_empty(), "dtw: empty series");
    let (n, m) = (a.len(), b.len());
    let w = band.unwrap_or(n.max(m)).max(n.abs_diff(m));
    // The pruning threshold: one concrete path's exact cost, tightened by
    // the caller's cutoff when present (any value above the cutoff is as
    // good as pruned for an abandoning caller). A NaN bound disables
    // pruning outright — `v > NaN` is false — so NaN inputs take the exact
    // brute-force data flow and propagate like the reference.
    let ub = diagonal_upper_bound(a, b);
    let ub = match cutoff {
        Some(c) if c < ub => c,
        _ => ub,
    };
    scratch.reset(m + 1);
    let prev = &mut scratch.prev;
    let curr = &mut scratch.curr;
    prev[0] = 0.0;
    // Alive (unpruned) column range of the previous row; the virtual row 0
    // is alive only at its base column.
    let mut sc = 0usize;
    let mut ec = 0usize;
    let mut banded = 0u64;
    let mut pruned = 0u64;
    for i in 1..=n {
        curr.fill(f64::INFINITY);
        let lo = i.saturating_sub(w).max(1);
        let hi = (i + w).min(m);
        banded += (hi + 1 - lo) as u64;
        // Columns left of the previous row's first survivor have only dead
        // predecessors; skip them (they are the row-start saving).
        let start = lo.max(sc);
        pruned += (start - lo) as u64;
        let mut alive = false;
        let mut next_sc = 0usize;
        let mut next_ec = 0usize;
        let mut row_min = f64::INFINITY;
        // `left` and `diag` carry curr[j-1] / prev[j-1] across iterations in
        // registers (each is last iteration's value), so a cell costs one
        // indexed read (prev[j]) instead of the reference's three. The
        // values are identical to re-reading the buffers, so the DP is
        // unchanged bit for bit.
        let mut left = f64::INFINITY;
        let mut diag = prev[start - 1];
        let track_min = cutoff.is_some();
        for j in start..=hi {
            let up = prev[j];
            let cost = (a[i - 1] - b[j - 1]).abs();
            let v = cost + min3(up, left, diag);
            diag = up;
            if v > ub {
                // Strictly above the bound: no completion of this prefix
                // can reach back under it (costs are non-negative and IEEE
                // addition is monotone), so the cell cannot influence any
                // surviving value. NaN never lands here.
                curr[j] = f64::INFINITY;
                left = f64::INFINITY;
                pruned += 1;
                if j > ec {
                    // Past the previous row's last survivor with a dead
                    // current-row neighbour: every remaining column's three
                    // predecessors are dead too (the row-end saving).
                    pruned += (hi - j) as u64;
                    break;
                }
            } else {
                curr[j] = v;
                left = v;
                if !alive {
                    next_sc = j;
                    alive = true;
                }
                next_ec = j;
                // Only the cutoff path consumes the row minimum; skipping
                // the comparison otherwise keeps the exact-matrix hot loop
                // lean.
                if track_min && v.total_cmp(&row_min) == Ordering::Less {
                    row_min = v;
                }
            }
        }
        if alive {
            sc = next_sc;
            ec = next_ec;
        } else {
            // Unreachable when the bound came from a real path (its prefix
            // survives every row), but a caller cutoff below the true
            // distance legitimately kills whole rows — and then the final
            // distance provably exceeds the cutoff.
            return PrunedRun { distance: f64::INFINITY, cells_banded: banded, cells_pruned: pruned };
        }
        if let Some(c) = cutoff {
            if row_min > c {
                // Every completion only grows; the whole row already beats
                // the cutoff, so the final distance must too.
                return PrunedRun { distance: f64::INFINITY, cells_banded: banded, cells_pruned: pruned };
            }
        }
        std::mem::swap(prev, curr);
    }
    PrunedRun { distance: prev[m], cells_banded: banded, cells_pruned: pruned }
}

/// [`dtw`] through the pruned DP: bit-identical results, fewer cells.
///
/// See the module docs for why pruning cannot move a single output bit:
/// the bound is the float-exact cost of a real alignment, pruning is
/// strictly-greater, and every cell at or below the bound — the returned
/// final cell included — computes from identically valued predecessors.
///
/// # Panics
///
/// Panics if either series is empty.
///
/// # Examples
///
/// ```
/// use lgo_cluster::{dtw, dtw_pruned};
///
/// let a: Vec<f64> = (0..40).map(|t| (t as f64 * 0.3).sin()).collect();
/// let b: Vec<f64> = (0..40).map(|t| (t as f64 * 0.3).cos()).collect();
/// assert_eq!(dtw_pruned(&a, &b, None).to_bits(), dtw(&a, &b, None).to_bits());
/// ```
pub fn dtw_pruned(a: &[f64], b: &[f64], band: Option<usize>) -> f64 {
    dtw_pruned_with(a, b, band, &mut DtwScratch::new())
}

/// [`dtw_pruned`] with caller-owned row buffers, for tight loops over many
/// pairs.
///
/// # Panics
///
/// Panics if either series is empty.
pub fn dtw_pruned_with(a: &[f64], b: &[f64], band: Option<usize>, scratch: &mut DtwScratch) -> f64 {
    pruned_dp(a, b, band, None, scratch).distance
}

/// Early-abandoning DTW: `Some(d)` with `d` bit-identical to [`dtw`] when
/// the distance could matter, `None` as soon as it provably exceeds
/// `cutoff`.
///
/// Two abandonment triggers, both float-exact: the [`lb_kim`] endpoint
/// bound (checked before any DP work), and a DP row whose surviving
/// minimum already exceeds the cutoff (completions only add non-negative
/// cost). `Some(d)` may carry `d > cutoff` — the bounds are lower bounds,
/// not oracles — but `None` is always a true rejection.
///
/// # Panics
///
/// Panics if either series is empty.
///
/// # Examples
///
/// ```
/// use lgo_cluster::{dtw, dtw_with_cutoff};
///
/// let a = [0.0, 1.0, 2.0, 3.0];
/// let far = [90.0, 91.0, 92.0, 93.0];
/// assert_eq!(dtw_with_cutoff(&a, &far, None, 1.0), None);
/// let d = dtw_with_cutoff(&a, &a, None, 1.0);
/// assert_eq!(d, Some(dtw(&a, &a, None)));
/// ```
pub fn dtw_with_cutoff(a: &[f64], b: &[f64], band: Option<usize>, cutoff: f64) -> Option<f64> {
    dtw_with_cutoff_with(a, b, band, cutoff, &mut DtwScratch::new())
}

/// [`dtw_with_cutoff`] with caller-owned row buffers.
///
/// # Panics
///
/// Panics if either series is empty.
pub fn dtw_with_cutoff_with(
    a: &[f64],
    b: &[f64],
    band: Option<usize>,
    cutoff: f64,
    scratch: &mut DtwScratch,
) -> Option<f64> {
    if lb_kim(a, b) > cutoff {
        return None;
    }
    let run = pruned_dp(a, b, band, Some(cutoff), scratch);
    if run.distance.is_infinite() && run.distance.is_sign_positive() {
        // Either abandoned or genuinely unreachable under the band — and an
        // unreachable alignment exceeds every finite cutoff too.
        return None;
    }
    Some(run.distance)
}

/// Pairwise DTW distance matrix over a set of series.
///
/// The O(n²) upper triangle runs on the lgo-runtime pool in fixed-size
/// chunks of [`PAIR_CHUNK`] pairs — one task per *chunk*, so the pool's
/// per-task overhead is amortized over real DP work and each task reuses
/// one [`DtwScratch`] across its pairs. Every entry goes through the
/// exact pruned DP ([`dtw_pruned_with`]), so the matrix is bit-identical
/// to brute force and to itself at any thread count; the pruning rate is
/// reported through the `cluster/dtw_cells*` trace counters.
///
/// # Panics
///
/// Panics if `series` is empty or any series is empty.
pub fn dtw_distance_matrix(series: &[Vec<f64>], band: Option<usize>) -> Vec<Vec<f64>> {
    assert!(!series.is_empty(), "dtw_distance_matrix: no series");
    let n = series.len();
    let _span = lgo_trace::span("cluster/dtw_matrix");
    let npairs = n * (n - 1) / 2;
    lgo_trace::counter("cluster/dtw_pairs", npairs as u64);
    let linear: Vec<usize> = (0..npairs).collect();
    let chunks = lgo_runtime::par_chunks(&linear, PAIR_CHUNK, |ks| {
        let mut scratch = DtwScratch::new();
        let mut out = Vec::with_capacity(ks.len());
        let (mut banded, mut pruned) = (0u64, 0u64);
        for &k in ks {
            let (i, j) = lgo_runtime::pair_from_linear(k, n);
            let run = pruned_dp(&series[i], &series[j], band, None, &mut scratch);
            banded += run.cells_banded;
            pruned += run.cells_pruned;
            out.push(run.distance);
        }
        (out, banded, pruned)
    });
    let mut d = vec![vec![0.0; n]; n];
    let (mut banded, mut pruned) = (0u64, 0u64);
    let mut k = 0usize;
    for (chunk, cb, cp) in chunks {
        banded += cb;
        pruned += cp;
        for v in chunk {
            let (i, j) = lgo_runtime::pair_from_linear(k, n);
            d[i][j] = v;
            d[j][i] = v;
            k += 1;
        }
    }
    // Cell counts are value-determined (pruning compares exact floats), so
    // these counters stay byte-identical across thread counts like every
    // other lgo-trace counter.
    lgo_trace::counter("cluster/dtw_cells_banded", banded);
    lgo_trace::counter("cluster/dtw_cells_pruned", pruned);
    d
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Deterministic wiggly test series via the runtime's seed splitter.
    fn pseudo_series(seed: u64, len: usize) -> Vec<f64> {
        (0..len as u64)
            .map(|t| {
                let bits = lgo_runtime::split_seed(seed, t);
                ((bits % 4000) as f64 / 1000.0 - 2.0) + (t as f64 * 0.21).sin()
            })
            .collect()
    }

    #[test]
    fn identical_series_have_zero_distance() {
        let a = [1.0, 3.0, 2.0, 5.0];
        assert_eq!(dtw(&a, &a, None), 0.0);
        assert_eq!(dtw(&a, &a, Some(1)), 0.0);
        assert_eq!(dtw_pruned(&a, &a, None), 0.0);
    }

    #[test]
    fn symmetric() {
        let a = [0.0, 1.0, 4.0, 2.0];
        let b = [1.0, 1.0, 2.0, 2.0, 3.0];
        assert_eq!(dtw(&a, &b, None), dtw(&b, &a, None));
        assert_eq!(dtw_pruned(&a, &b, None), dtw_pruned(&b, &a, None));
    }

    #[test]
    fn warping_absorbs_time_shift() {
        let a: Vec<f64> = (0..20).map(|t| ((t as f64) * 0.6).sin()).collect();
        let b: Vec<f64> = (0..20).map(|t| ((t as f64 - 2.0) * 0.6).sin()).collect();
        let warped = dtw(&a, &b, None);
        let pointwise: f64 = a.iter().zip(&b).map(|(x, y)| (x - y).abs()).sum();
        assert!(warped < pointwise * 0.5, "warped {warped} vs pointwise {pointwise}");
    }

    #[test]
    fn band_constraint_is_no_looser_than_unconstrained() {
        let a: Vec<f64> = (0..15).map(|t| (t as f64 * 0.9).cos()).collect();
        let b: Vec<f64> = (0..15).map(|t| (t as f64 * 0.8).cos() + 0.1).collect();
        let free = dtw(&a, &b, None);
        let banded = dtw(&a, &b, Some(2));
        assert!(banded >= free - 1e-12);
    }

    #[test]
    fn different_lengths_work() {
        let a = [1.0, 2.0, 3.0];
        let b = [1.0, 1.5, 2.0, 2.5, 3.0];
        let d = dtw(&a, &b, Some(1));
        assert!(d.is_finite());
        assert_eq!(dtw_pruned(&a, &b, Some(1)).to_bits(), d.to_bits());
    }

    #[test]
    fn pruned_is_bitwise_identical_to_brute_force() {
        // Property sweep: lengths (equal and ragged), bands (tight, loose,
        // none), and scratch reuse across pairs — every combination must
        // reproduce the reference DP bit for bit.
        let mut scratch = DtwScratch::new();
        for seed in 0..24u64 {
            let la = 5 + (seed as usize * 7) % 60;
            let lb = 5 + (seed as usize * 13) % 60;
            let a = pseudo_series(seed * 2 + 1, la);
            let b = pseudo_series(seed * 2 + 2, lb);
            for band in [None, Some(1), Some(4), Some(16)] {
                let brute = dtw(&a, &b, band);
                let fast = dtw_pruned_with(&a, &b, band, &mut scratch);
                assert_eq!(
                    fast.to_bits(),
                    brute.to_bits(),
                    "seed {seed} band {band:?}: pruned {fast} != brute {brute}"
                );
            }
        }
    }

    #[test]
    fn nan_inputs_take_the_exact_reference_path() {
        // A NaN sample makes the diagonal upper bound NaN, which disables
        // pruning outright — so the pruned DP must reproduce the reference
        // bit for bit (the reference resolves a poisoned row to +inf:
        // total_cmp orders NaN above infinity, so the out-of-band fill
        // value wins the min and the corruption can never look optimal).
        let mut a = pseudo_series(77, 30);
        let b = pseudo_series(78, 30);
        a[13] = f64::NAN;
        for band in [None, Some(3)] {
            let brute = dtw(&a, &b, band);
            let fast = dtw_pruned(&a, &b, band);
            assert_eq!(fast.to_bits(), brute.to_bits(), "NaN handling diverged at band {band:?}");
        }
    }

    #[test]
    fn pruning_actually_drops_cells() {
        // Smooth phase-shifted waves: warping makes the optimal cost tiny
        // while off-diagonal prefixes accumulate fast, so the diagonal
        // upper bound kills a real fraction of the table. (On white noise
        // the bound is loose and pruning legitimately stays near zero.)
        let a: Vec<f64> = (0..120).map(|t| (t as f64 * 0.05).sin() * 3.0).collect();
        let b: Vec<f64> = (0..120).map(|t| (t as f64 * 0.05 + 1.0).sin() * 3.0).collect();
        let run = pruned_dp(&a, &b, None, None, &mut DtwScratch::new());
        assert!(run.cells_pruned > 0, "no cells pruned on a 120x120 DP");
        assert!(run.cells_pruned < run.cells_banded);
        assert_eq!(run.distance.to_bits(), dtw(&a, &b, None).to_bits());
    }

    #[test]
    fn envelope_bounds_contain_the_series() {
        let s = pseudo_series(9, 50);
        let env = Envelope::new(&s, 4);
        assert_eq!(env.len(), s.len());
        assert!(!env.is_empty());
        for (i, &v) in s.iter().enumerate() {
            assert!(env.lower()[i] <= v && v <= env.upper()[i]);
        }
    }

    #[test]
    fn lower_bounds_stay_below_dtw() {
        for seed in 0..16u64 {
            let a = pseudo_series(seed, 40);
            let b = pseudo_series(seed + 100, 40);
            for w in [0usize, 2, 8] {
                let d = dtw(&a, &b, Some(w));
                assert!(lb_kim(&a, &b) <= d, "lb_kim above dtw at seed {seed}");
                let env = Envelope::new(&b, w);
                assert!(
                    lb_keogh(&a, &env) <= d + 1e-9,
                    "lb_keogh above dtw at seed {seed} w {w}"
                );
            }
        }
    }

    #[test]
    fn lb_keogh_is_trivial_for_ragged_lengths() {
        let env = Envelope::new(&[1.0, 2.0], 1);
        assert_eq!(lb_keogh(&[1.0, 2.0, 3.0], &env), 0.0);
    }

    #[test]
    fn cutoff_accepts_exactly_or_rejects_truthfully() {
        let mut scratch = DtwScratch::new();
        for seed in 0..16u64 {
            let a = pseudo_series(seed, 35);
            let b = pseudo_series(seed + 50, 35);
            let d = dtw(&a, &b, Some(6));
            // Generous cutoff: must return the exact bits.
            let kept = dtw_with_cutoff_with(&a, &b, Some(6), d * 2.0 + 1.0, &mut scratch);
            assert_eq!(kept.map(f64::to_bits), Some(d.to_bits()));
            // Impossible cutoff: must reject, and the rejection must be true.
            let rejected = dtw_with_cutoff_with(&a, &b, Some(6), d / 2.0 - 1.0, &mut scratch);
            assert!(rejected.is_none(), "seed {seed}: kept a distance above the cutoff");
        }
    }

    #[test]
    fn matrix_is_symmetric_with_zero_diagonal() {
        let series = vec![
            vec![0.0, 1.0, 2.0],
            vec![2.0, 1.0, 0.0],
            vec![1.0, 1.0, 1.0],
        ];
        let d = dtw_distance_matrix(&series, None);
        for (i, row) in d.iter().enumerate() {
            assert_eq!(row[i], 0.0);
            for (j, v) in row.iter().enumerate() {
                assert_eq!(*v, d[j][i]);
            }
        }
    }

    #[test]
    fn matrix_matches_brute_force_bitwise() {
        // More series than one PAIR_CHUNK holds, so the chunked fan-out,
        // scratch reuse, and pruning all engage.
        let series: Vec<Vec<f64>> = (0..12).map(|s| pseudo_series(s, 33 + s as usize)).collect();
        for band in [None, Some(4)] {
            let d = dtw_distance_matrix(&series, band);
            for i in 0..series.len() {
                for j in i + 1..series.len() {
                    let reference = dtw(&series[i], &series[j], band);
                    assert_eq!(
                        d[i][j].to_bits(),
                        reference.to_bits(),
                        "matrix[{i}][{j}] diverged from brute force"
                    );
                }
            }
        }
    }

    #[test]
    #[should_panic(expected = "empty series")]
    fn empty_series_rejected() {
        let _ = dtw(&[], &[1.0], None);
    }

    #[test]
    fn matrix_identical_across_thread_counts() {
        let series: Vec<Vec<f64>> = (0..9)
            .map(|s| (0..24).map(|t| ((s * 7 + t) as f64 * 0.31).sin()).collect())
            .collect();
        lgo_runtime::set_threads(Some(1));
        let serial = dtw_distance_matrix(&series, Some(3));
        for t in [2, 8] {
            lgo_runtime::set_threads(Some(t));
            assert_eq!(dtw_distance_matrix(&series, Some(3)), serial);
        }
        lgo_runtime::set_threads(None);
    }
}
