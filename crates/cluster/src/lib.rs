//! # lgo-cluster
//!
//! Agglomerative hierarchical clustering — Step 4 of the paper's risk
//! profiling framework, which groups per-victim time-series risk profiles
//! into vulnerability clusters by cutting a dendrogram.
//!
//! The implementation follows the classic Lance–Williams recurrence, so all
//! four standard linkages (single, complete, average, Ward) share one
//! update rule. With the paper's twelve patients the O(n³) naive algorithm
//! is instantaneous; no priority-queue cleverness is warranted.
//!
//! # Examples
//!
//! ```
//! use lgo_cluster::{agglomerate_points, Linkage};
//!
//! // Two obvious groups on a line.
//! let points = vec![
//!     vec![0.0], vec![0.1], vec![0.2],
//!     vec![10.0], vec![10.1],
//! ];
//! let dendro = agglomerate_points(&points, Linkage::Average);
//! let labels = dendro.cut_k(2);
//! assert_eq!(labels[0], labels[1]);
//! assert_eq!(labels[3], labels[4]);
//! assert_ne!(labels[0], labels[3]);
//! ```

mod dendrogram;
mod dtw;
mod linkage;

pub use dendrogram::{ClusterError, Dendrogram, Merge};
pub use dtw::{
    dtw, dtw_distance_matrix, dtw_pruned, dtw_pruned_with, dtw_with_cutoff, dtw_with_cutoff_with,
    lb_keogh, lb_kim, DtwScratch, Envelope,
};
pub use linkage::{agglomerate, agglomerate_points, distance_matrix, Linkage};
