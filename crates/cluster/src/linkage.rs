use crate::dendrogram::{Dendrogram, Merge};

/// The linkage criterion deciding which clusters merge next.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Linkage {
    /// Nearest-neighbour distance between clusters.
    Single,
    /// Farthest-neighbour distance.
    Complete,
    /// Unweighted average pairwise distance (UPGMA) — the workhorse for
    /// clinical clustering and the default here.
    #[default]
    Average,
    /// Ward's minimum-variance criterion (on squared Euclidean distances).
    Ward,
}

/// Full symmetric Euclidean distance matrix between points.
///
/// # Panics
///
/// Panics if `points` is empty or rows have differing lengths.
///
/// # Examples
///
/// ```
/// let d = lgo_cluster::distance_matrix(&[vec![0.0], vec![3.0]]);
/// assert_eq!(d[0][1], 3.0);
/// assert_eq!(d[1][0], 3.0);
/// assert_eq!(d[0][0], 0.0);
/// ```
pub fn distance_matrix(points: &[Vec<f64>]) -> Vec<Vec<f64>> {
    assert!(!points.is_empty(), "distance_matrix: no points");
    let dim = points[0].len();
    let n = points.len();
    let mut d = vec![vec![0.0; n]; n];
    for i in 0..n {
        assert_eq!(
            points[i].len(),
            dim,
            "distance_matrix: point {i} has dimension {} (expected {dim})",
            points[i].len()
        );
        for j in i + 1..n {
            let dist = points[i]
                .iter()
                .zip(&points[j])
                .map(|(&a, &b)| (a - b) * (a - b))
                .sum::<f64>()
                .sqrt();
            d[i][j] = dist;
            d[j][i] = dist;
        }
    }
    d
}

/// Agglomerates points under Euclidean distance. Convenience wrapper around
/// [`distance_matrix`] + [`agglomerate`].
///
/// # Panics
///
/// Panics if `points` is empty.
pub fn agglomerate_points(points: &[Vec<f64>], linkage: Linkage) -> Dendrogram {
    agglomerate(&distance_matrix(points), linkage)
}

/// Agglomerative clustering over a precomputed distance matrix using the
/// Lance–Williams recurrence.
///
/// Node ids follow the scipy convention: leaves are `0..n`, the cluster
/// created by merge `i` is node `n + i`.
///
/// # Panics
///
/// Panics if the matrix is empty, non-square, or asymmetric beyond 1e-9.
pub fn agglomerate(distances: &[Vec<f64>], linkage: Linkage) -> Dendrogram {
    let n = distances.len();
    assert!(n > 0, "agglomerate: empty distance matrix");
    for (i, row) in distances.iter().enumerate() {
        assert_eq!(row.len(), n, "agglomerate: row {i} has wrong length");
        for (j, &v) in row.iter().enumerate() {
            assert!(
                (v - distances[j][i]).abs() <= 1e-9,
                "agglomerate: asymmetric at ({i},{j})"
            );
            assert!(v >= 0.0 && v.is_finite(), "agglomerate: bad distance at ({i},{j})");
        }
    }

    // Ward's recurrence operates on squared distances; heights are reported
    // back in plain distance units (scipy's convention).
    let squared = matches!(linkage, Linkage::Ward);
    let mut work: Vec<Vec<f64>> = distances
        .iter()
        .map(|row| {
            row.iter()
                .map(|&v| if squared { v * v } else { v })
                .collect()
        })
        .collect();

    // active[i] = Some(node_id); sizes per active slot.
    let mut node_of: Vec<Option<usize>> = (0..n).map(Some).collect();
    let mut size: Vec<usize> = vec![1; n];
    let mut merges: Vec<Merge> = Vec::with_capacity(n.saturating_sub(1));

    for step in 0..n.saturating_sub(1) {
        // Find the closest active pair.
        let mut best: Option<(usize, usize, f64)> = None;
        for i in 0..n {
            if node_of[i].is_none() {
                continue;
            }
            for j in i + 1..n {
                if node_of[j].is_none() {
                    continue;
                }
                let d = work[i][j];
                // total_cmp keeps the scan deterministic even if a distance
                // degrades to NaN (NaN orders above every real, so it can
                // never win the minimum).
                if best.is_none_or(|(_, _, bd)| d.total_cmp(&bd).is_lt()) {
                    best = Some((i, j, d));
                }
            }
        }
        // lint: allow(L1): n - step active slots remain, so step < n - 1 guarantees a pair
        let (i, j, d) = best.expect("at least two active clusters");
        let (ni, nj) = (size[i] as f64, size[j] as f64);
        let height = if squared { d.max(0.0).sqrt() } else { d };
        merges.push(Merge {
            left: node_of[i].expect("active"), // lint: allow(L1): slot i passed the is_none guard in the scan above
            right: node_of[j].expect("active"), // lint: allow(L1): slot j passed the is_none guard in the scan above
            height,
            size: size[i] + size[j],
        });

        // Lance–Williams update of distances from the merged cluster (kept
        // in slot i) to every other active cluster k.
        for k in 0..n {
            if k == i || k == j || node_of[k].is_none() {
                continue;
            }
            let dik = work[i][k];
            let djk = work[j][k];
            let dij = work[i][j];
            let nk = size[k] as f64;
            let updated = match linkage {
                Linkage::Single => 0.5 * dik + 0.5 * djk - 0.5 * (dik - djk).abs(),
                Linkage::Complete => 0.5 * dik + 0.5 * djk + 0.5 * (dik - djk).abs(),
                Linkage::Average => (ni * dik + nj * djk) / (ni + nj),
                Linkage::Ward => {
                    let total = ni + nj + nk;
                    ((ni + nk) * dik + (nj + nk) * djk - nk * dij) / total
                }
            };
            work[i][k] = updated;
            work[k][i] = updated;
        }
        node_of[i] = Some(n + step);
        node_of[j] = None;
        size[i] += size[j];
    }

    Dendrogram::new(n, merges)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn line_points() -> Vec<Vec<f64>> {
        vec![vec![0.0], vec![1.0], vec![10.0], vec![12.0]]
    }

    #[test]
    fn distance_matrix_basics() {
        let d = distance_matrix(&[vec![0.0, 0.0], vec![3.0, 4.0]]);
        assert_eq!(d[0][1], 5.0);
        assert_eq!(d[0][0], 0.0);
    }

    #[test]
    #[should_panic(expected = "dimension")]
    fn ragged_points_rejected() {
        let _ = distance_matrix(&[vec![0.0], vec![1.0, 2.0]]);
    }

    #[test]
    fn single_linkage_hand_computed() {
        // Points 0,1 merge at 1; 2,3 at 2; groups at 10-1=... single linkage:
        // d({0,1},{2,3}) = min over pairs = |1-10| = 9.
        let d = agglomerate_points(&line_points(), Linkage::Single);
        let heights: Vec<f64> = d.merges().iter().map(|m| m.height).collect();
        assert_eq!(heights, vec![1.0, 2.0, 9.0]);
    }

    #[test]
    fn complete_linkage_hand_computed() {
        // Complete: d({0,1},{2,3}) = max pair = |0-12| = 12.
        let d = agglomerate_points(&line_points(), Linkage::Complete);
        let heights: Vec<f64> = d.merges().iter().map(|m| m.height).collect();
        assert_eq!(heights, vec![1.0, 2.0, 12.0]);
    }

    #[test]
    fn average_linkage_hand_computed() {
        // Average of pairs: (9+11+10+12)/4 ... wait: pairs are |0-10|,|0-12|,
        // |1-10|,|1-12| = 10,12,9,11 -> mean 10.5.
        let d = agglomerate_points(&line_points(), Linkage::Average);
        let heights: Vec<f64> = d.merges().iter().map(|m| m.height).collect();
        assert_eq!(heights[2], 10.5);
    }

    #[test]
    fn ward_prefers_compact_merges() {
        // Ward must also find the obvious two-cluster structure.
        let d = agglomerate_points(&line_points(), Linkage::Ward);
        let labels = d.cut_k(2);
        assert_eq!(labels[0], labels[1]);
        assert_eq!(labels[2], labels[3]);
        assert_ne!(labels[0], labels[2]);
    }

    #[test]
    fn all_linkages_produce_n_minus_one_merges() {
        for l in [
            Linkage::Single,
            Linkage::Complete,
            Linkage::Average,
            Linkage::Ward,
        ] {
            let d = agglomerate_points(&line_points(), l);
            assert_eq!(d.merges().len(), 3, "{l:?}");
            assert_eq!(d.n_leaves(), 4);
            // The final merge must contain all leaves.
            assert_eq!(d.merges().last().unwrap().size, 4);
        }
    }

    #[test]
    fn monotone_heights_for_reducible_linkages() {
        // Single/complete/average are reducible: merge heights never
        // decrease.
        let points: Vec<Vec<f64>> = (0..8)
            .map(|i| vec![(i as f64 * 1.7).sin() * 5.0, (i as f64 * 0.9).cos() * 5.0])
            .collect();
        for l in [Linkage::Single, Linkage::Complete, Linkage::Average] {
            let d = agglomerate_points(&points, l);
            let hs: Vec<f64> = d.merges().iter().map(|m| m.height).collect();
            for w in hs.windows(2) {
                assert!(w[1] >= w[0] - 1e-9, "{l:?}: heights not monotone: {hs:?}");
            }
        }
    }

    #[test]
    fn single_point_dendrogram() {
        let d = agglomerate_points(&[vec![1.0, 2.0]], Linkage::Average);
        assert_eq!(d.merges().len(), 0);
        assert_eq!(d.cut_k(1), vec![0]);
    }

    #[test]
    #[should_panic(expected = "asymmetric")]
    fn asymmetric_matrix_rejected() {
        let m = vec![vec![0.0, 1.0], vec![2.0, 0.0]];
        let _ = agglomerate(&m, Linkage::Average);
    }
}
