//! Property-based tests for hierarchical clustering: structural dendrogram
//! invariants that must hold for any input point set and linkage.

use lgo_cluster::{agglomerate_points, Linkage};
use proptest::prelude::*;

fn points(n: usize) -> impl Strategy<Value = Vec<Vec<f64>>> {
    proptest::collection::vec(proptest::collection::vec(-100.0..100.0f64, 3), n..n + 1)
}

const LINKAGES: [Linkage; 4] = [
    Linkage::Single,
    Linkage::Complete,
    Linkage::Average,
    Linkage::Ward,
];

proptest! {
    #[test]
    fn dendrogram_has_n_minus_one_merges(pts in points(8)) {
        for l in LINKAGES {
            let d = agglomerate_points(&pts, l);
            prop_assert_eq!(d.merges().len(), 7, "{:?}", l);
            prop_assert_eq!(d.merges().last().unwrap().size, 8);
        }
    }

    #[test]
    fn cut_k_produces_exactly_k_clusters(pts in points(9), k in 1usize..9) {
        for l in LINKAGES {
            let d = agglomerate_points(&pts, l);
            let labels = d.cut_k(k);
            prop_assert_eq!(labels.len(), 9);
            let mut distinct: Vec<usize> = labels.clone();
            distinct.sort_unstable();
            distinct.dedup();
            prop_assert_eq!(distinct.len(), k, "{:?} k={}", l, k);
            // Labels are densely numbered 0..k.
            prop_assert!(labels.iter().all(|&x| x < k));
        }
    }

    #[test]
    fn cuts_are_nested_refinements(pts in points(8), k in 1usize..7) {
        // Each leaf pair together at k clusters must also be together at
        // k-1 clusters (agglomerative cuts are hierarchical).
        for l in LINKAGES {
            let d = agglomerate_points(&pts, l);
            let fine = d.cut_k(k + 1);
            let coarse = d.cut_k(k);
            for i in 0..8 {
                for j in 0..8 {
                    if fine[i] == fine[j] {
                        prop_assert_eq!(coarse[i], coarse[j], "{:?}", l);
                    }
                }
            }
        }
    }

    #[test]
    fn heights_are_monotone_for_reducible_linkages(pts in points(10)) {
        for l in [Linkage::Single, Linkage::Complete, Linkage::Average] {
            let d = agglomerate_points(&pts, l);
            let hs: Vec<f64> = d.merges().iter().map(|m| m.height).collect();
            for w in hs.windows(2) {
                prop_assert!(w[1] >= w[0] - 1e-9, "{:?}: {:?}", l, hs);
            }
        }
    }

    #[test]
    fn singletons_cut_matches_identity(pts in points(6)) {
        let d = agglomerate_points(&pts, Linkage::Average);
        prop_assert_eq!(d.cut_k(6), vec![0, 1, 2, 3, 4, 5]);
        prop_assert_eq!(d.cut_k(1), vec![0; 6]);
    }

    #[test]
    fn leaves_under_root_cover_everything(pts in points(7)) {
        let d = agglomerate_points(&pts, Linkage::Complete);
        let root = d.n_leaves() + d.merges().len() - 1;
        prop_assert_eq!(d.leaves_under(root), (0..7).collect::<Vec<_>>());
    }

    #[test]
    fn translation_invariance(pts in points(7), shift in -50.0..50.0f64) {
        // Distances are translation invariant, so the merge structure is.
        let shifted: Vec<Vec<f64>> = pts
            .iter()
            .map(|p| p.iter().map(|v| v + shift).collect())
            .collect();
        for l in LINKAGES {
            let a = agglomerate_points(&pts, l);
            let b = agglomerate_points(&shifted, l);
            let ma: Vec<(usize, usize)> = a.merges().iter().map(|m| (m.left, m.right)).collect();
            let mb: Vec<(usize, usize)> = b.merges().iter().map(|m| (m.left, m.right)).collect();
            prop_assert_eq!(ma, mb, "{:?}", l);
        }
    }
}
