//! # lgo-trace — zero-cost structured observability for the defense pipeline.
//!
//! A dependency-free, std-only trace layer: scoped **spans** (monotonic
//! wall-clock timing with per-thread nesting), named **counters**,
//! log2-bucketed **histograms**, and schedule-dependent **sched** counters,
//! all aggregated into a per-run [`TraceReport`] rendered in the same
//! canonical fixed-key-order JSON style as `lgo-core`'s pipeline export.
//!
//! ## Determinism contract
//!
//! The report is split into two sections with different guarantees:
//!
//! - **Deterministic content** — `counters` and `histograms` hold pure
//!   integer aggregates of *what* the pipeline did (windows attacked, SMO
//!   iterations, DTW pairs, ...). Aggregation is order-independent
//!   (commutative integer addition into sorted maps), so their rendered
//!   bytes are identical at any `LGO_THREADS`. [`TraceReport::deterministic_json`]
//!   renders exactly this section and nothing else.
//! - **Timing** — `spans` (wall-clock nanoseconds) and `sched` (steals,
//!   parks, per-worker busy time) describe *how* a particular schedule ran
//!   and legitimately vary between runs. They are segregated under a single
//!   `"timing"` key so determinism checks can mask them wholesale.
//!
//! ## Cost model
//!
//! Everything here is behind the `trace` cargo feature, mirroring the
//! `strict-numerics` sanitizer pattern: with the feature **off** (the
//! default) every entry point in this module is an empty
//! `#[inline(always)]` function and [`Span`] is a unit type without a
//! `Drop` impl, so instrumented call sites compile to nothing. With the
//! feature **on**, collection still short-circuits on a relaxed atomic
//! unless tracing was activated at runtime via the `LGO_TRACE` environment
//! variable (any non-empty value collects; the value `json` additionally
//! makes [`write_report`] persist `results/trace_<bench>.json`) or the
//! [`set_enabled`] test override.
//!
//! ```
//! // Compiles identically with or without the `trace` feature.
//! let _stage = lgo_trace::span("demo/stage");
//! lgo_trace::counter("demo/items", 3);
//! lgo_trace::record("demo/queries", 17);
//! ```

pub mod report;
pub mod schema;

pub use report::{HistSummary, SpanStats, TraceReport};

/// Number of log2 buckets a histogram keeps: bucket `b` counts values whose
/// bit length is `b` (so bucket 0 is exactly the value zero, bucket 1 is
/// `1`, bucket 2 is `2..=3`, ...), and the last bucket absorbs everything
/// with 15 or more bits.
pub const HIST_BUCKETS: usize = 16;

#[cfg(feature = "trace")]
mod active {
    use std::collections::BTreeMap;
    use std::sync::atomic::{AtomicU8, Ordering};
    use std::sync::{Mutex, OnceLock};
    use std::time::Instant;

    use crate::report::{HistSummary, SpanStats, TraceReport};
    use crate::HIST_BUCKETS;

    /// Runtime activation override: 0 = follow `LGO_TRACE`, 1 = forced on,
    /// 2 = forced off. See [`set_enabled`].
    static OVERRIDE: AtomicU8 = AtomicU8::new(0);

    /// The `LGO_TRACE` value, read once per process.
    fn env_value() -> &'static str {
        static VALUE: OnceLock<String> = OnceLock::new();
        VALUE.get_or_init(|| std::env::var("LGO_TRACE").unwrap_or_default())
    }

    /// Whether collection is active right now.
    pub fn enabled() -> bool {
        match OVERRIDE.load(Ordering::Relaxed) {
            1 => true,
            2 => false,
            _ => !env_value().is_empty(),
        }
    }

    /// Forces collection on or off regardless of `LGO_TRACE` (tests and
    /// benchmarks); `None` restores the environment-driven default. The
    /// override is process-global, like `lgo_runtime::set_threads`.
    pub fn set_enabled(on: Option<bool>) {
        let v = match on {
            None => 0,
            Some(true) => 1,
            Some(false) => 2,
        };
        OVERRIDE.store(v, Ordering::Relaxed);
    }

    /// Whether `LGO_TRACE=json` asked for a report file on disk.
    pub fn json_requested() -> bool {
        env_value() == "json"
    }

    /// Running aggregate of one histogram.
    #[derive(Clone)]
    struct Hist {
        count: u64,
        sum: u64,
        min: u64,
        max: u64,
        buckets: [u64; HIST_BUCKETS],
    }

    /// Running aggregate of one span path.
    #[derive(Clone)]
    struct SpanAgg {
        count: u64,
        total_ns: u64,
        min_ns: u64,
        max_ns: u64,
    }

    #[derive(Default)]
    struct Registry {
        counters: BTreeMap<String, u64>,
        hists: BTreeMap<String, Hist>,
        spans: BTreeMap<String, SpanAgg>,
        sched: BTreeMap<String, u64>,
    }

    /// All collection funnels through one global registry; the tasks this
    /// workspace instruments are coarse (campaigns, fits, stages), so a
    /// single mutex is not a contention point.
    fn with_registry<F: FnOnce(&mut Registry)>(f: F) {
        static REGISTRY: OnceLock<Mutex<Registry>> = OnceLock::new();
        let m = REGISTRY.get_or_init(|| Mutex::new(Registry::default()));
        // A panic while holding this lock can only come from allocation
        // failure; recovering the guard keeps tracing best-effort rather
        // than cascading the poison into the pipeline.
        let mut guard = m.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
        f(&mut guard);
    }

    thread_local! {
        /// Per-thread stack of open span names; a span's key is the stack
        /// joined with `/`, so nesting is visible in the report
        /// (`pipeline/profile/attack/campaign`). Nesting is per-thread:
        /// a span opened by a task on a pool worker does not inherit the
        /// dispatcher's stack.
        static SPAN_STACK: std::cell::RefCell<Vec<&'static str>> =
            const { std::cell::RefCell::new(Vec::new()) };
    }

    /// Live data of an open span (`None` when tracing was disabled at
    /// creation time).
    pub struct Span {
        inner: Option<OpenSpan>,
    }

    struct OpenSpan {
        path: String,
        start: Instant,
    }

    pub fn span(name: &'static str) -> Span {
        if !enabled() {
            return Span { inner: None };
        }
        let path = SPAN_STACK.with(|stack| {
            let mut stack = stack.borrow_mut();
            let path = if stack.is_empty() {
                name.to_string()
            } else {
                format!("{}/{name}", stack.join("/"))
            };
            stack.push(name);
            path
        });
        Span {
            inner: Some(OpenSpan { path, start: Instant::now() }),
        }
    }

    impl Drop for Span {
        fn drop(&mut self) {
            let Some(open) = self.inner.take() else { return };
            let ns = u64::try_from(open.start.elapsed().as_nanos()).unwrap_or(u64::MAX);
            SPAN_STACK.with(|stack| {
                stack.borrow_mut().pop();
            });
            with_registry(|r| {
                let e = r.spans.entry(open.path).or_insert(SpanAgg {
                    count: 0,
                    total_ns: 0,
                    min_ns: u64::MAX,
                    max_ns: 0,
                });
                e.count += 1;
                e.total_ns = e.total_ns.saturating_add(ns);
                e.min_ns = e.min_ns.min(ns);
                e.max_ns = e.max_ns.max(ns);
            });
        }
    }

    pub fn counter(name: &str, delta: u64) {
        if !enabled() {
            return;
        }
        with_registry(|r| {
            if let Some(v) = r.counters.get_mut(name) {
                *v += delta;
            } else {
                r.counters.insert(name.to_string(), delta);
            }
        });
    }

    pub fn record(name: &str, value: u64) {
        if !enabled() {
            return;
        }
        with_registry(|r| {
            let h = r.hists.entry(name.to_string()).or_insert(Hist {
                count: 0,
                sum: 0,
                min: u64::MAX,
                max: 0,
                buckets: [0; HIST_BUCKETS],
            });
            h.count += 1;
            h.sum = h.sum.saturating_add(value);
            h.min = h.min.min(value);
            h.max = h.max.max(value);
            let bits = (u64::BITS - value.leading_zeros()) as usize;
            h.buckets[bits.min(HIST_BUCKETS - 1)] += 1;
        });
    }

    pub fn sched(name: &str, delta: u64) {
        if !enabled() {
            return;
        }
        with_registry(|r| {
            if let Some(v) = r.sched.get_mut(name) {
                *v += delta;
            } else {
                r.sched.insert(name.to_string(), delta);
            }
        });
    }

    pub fn snapshot() -> TraceReport {
        let mut report = TraceReport::default();
        with_registry(|r| {
            report.counters = r.counters.iter().map(|(k, v)| (k.clone(), *v)).collect();
            report.histograms = r
                .hists
                .iter()
                .map(|(k, h)| {
                    (
                        k.clone(),
                        HistSummary {
                            count: h.count,
                            sum: h.sum,
                            min: if h.count == 0 { 0 } else { h.min },
                            max: h.max,
                            buckets: h.buckets,
                        },
                    )
                })
                .collect();
            report.spans = r
                .spans
                .iter()
                .map(|(k, s)| {
                    (
                        k.clone(),
                        SpanStats {
                            count: s.count,
                            total_ns: s.total_ns,
                            min_ns: if s.count == 0 { 0 } else { s.min_ns },
                            max_ns: s.max_ns,
                        },
                    )
                })
                .collect();
            report.sched = r.sched.iter().map(|(k, v)| (k.clone(), *v)).collect();
        });
        report
    }

    pub fn reset() {
        with_registry(|r| {
            r.counters.clear();
            r.hists.clear();
            r.spans.clear();
            r.sched.clear();
        });
    }
}

#[cfg(feature = "trace")]
mod api {
    pub use crate::active::{
        enabled, json_requested, record, reset, sched, set_enabled, snapshot, Span,
    };

    /// Opens a scoped span; timing stops when the returned guard drops.
    /// Span keys nest per thread: `span("b")` opened while `span("a")` is
    /// live on the same thread records under `a/b`.
    pub fn span(name: &'static str) -> Span {
        crate::active::span(name)
    }

    /// Adds `delta` to the named deterministic counter.
    pub fn counter(name: &str, delta: u64) {
        crate::active::counter(name, delta);
    }
}

#[cfg(not(feature = "trace"))]
mod api {
    use crate::report::TraceReport;

    /// No-op span guard (the `trace` feature is off); carries no data and
    /// has no `Drop` impl, so it compiles away entirely.
    pub struct Span {
        _priv: (),
    }

    /// Opens a scoped span; timing stops when the returned guard drops.
    /// Span keys nest per thread: `span("b")` opened while `span("a")` is
    /// live on the same thread records under `a/b`.
    #[inline(always)]
    pub fn span(_name: &'static str) -> Span {
        Span { _priv: () }
    }

    /// Adds `delta` to the named deterministic counter.
    #[inline(always)]
    pub fn counter(_name: &str, _delta: u64) {}

    /// Records one value into the named log2-bucketed histogram.
    #[inline(always)]
    pub fn record(_name: &str, _value: u64) {}

    /// Adds `delta` to the named schedule-dependent counter (reported under
    /// the masked `timing` section).
    #[inline(always)]
    pub fn sched(_name: &str, _delta: u64) {}

    /// Whether collection is active right now (always `false` without the
    /// `trace` feature).
    #[inline(always)]
    pub fn enabled() -> bool {
        false
    }

    /// Forces collection on or off; a no-op without the `trace` feature.
    #[inline(always)]
    pub fn set_enabled(_on: Option<bool>) {}

    /// Whether `LGO_TRACE=json` asked for a report file (never, without the
    /// `trace` feature).
    #[inline(always)]
    pub fn json_requested() -> bool {
        false
    }

    /// Snapshot of everything collected so far (always empty without the
    /// `trace` feature).
    #[inline(always)]
    pub fn snapshot() -> TraceReport {
        TraceReport::default()
    }

    /// Clears all collected data; a no-op without the `trace` feature.
    #[inline(always)]
    pub fn reset() {}
}

pub use api::{enabled, json_requested, record, reset, sched, set_enabled, snapshot, Span};

/// Opens a scoped span; timing stops when the returned guard drops. See
/// the module docs for the nesting and cost model.
pub fn span(name: &'static str) -> Span {
    api::span(name)
}

/// Adds `delta` to the named deterministic counter.
pub fn counter(name: &str, delta: u64) {
    api::counter(name, delta);
}

/// Writes the current snapshot to `results/trace_<bench>.json` when tracing
/// is active and `LGO_TRACE=json` asked for a file; returns the path
/// written, or `None` when no file was requested. Collection is *not*
/// reset, so a binary running several experiments accumulates one report.
pub fn write_report(bench: &str) -> std::io::Result<Option<std::path::PathBuf>> {
    if !enabled() || !json_requested() {
        return Ok(None);
    }
    let dir = std::path::Path::new("results");
    std::fs::create_dir_all(dir)?;
    let path = dir.join(format!("trace_{bench}.json"));
    std::fs::write(&path, snapshot().to_json(bench))?;
    Ok(Some(path))
}

#[cfg(all(test, feature = "trace"))]
mod tests {
    use super::*;
    use std::sync::{Mutex, MutexGuard, OnceLock, PoisonError};

    /// The registry and the enable override are process-global; tests that
    /// touch them serialize on this guard and leave both reset.
    fn guard() -> MutexGuard<'static, ()> {
        static GUARD: OnceLock<Mutex<()>> = OnceLock::new();
        let g = GUARD
            .get_or_init(|| Mutex::new(()))
            .lock()
            .unwrap_or_else(PoisonError::into_inner);
        set_enabled(Some(true));
        reset();
        g
    }

    fn teardown() {
        reset();
        set_enabled(None);
    }

    #[test]
    fn counters_accumulate() {
        let _g = guard();
        counter("a/x", 2);
        counter("a/x", 3);
        counter("a/y", 1);
        let r = snapshot();
        assert_eq!(r.counter("a/x"), Some(5));
        assert_eq!(r.counter("a/y"), Some(1));
        assert_eq!(r.counter("a/z"), None);
        teardown();
    }

    #[test]
    fn histogram_buckets_by_bit_length() {
        let _g = guard();
        for v in [0u64, 1, 2, 3, 4, 1 << 20] {
            record("h", v);
        }
        let r = snapshot();
        let (_, h) = &r.histograms[0];
        assert_eq!(h.count, 6);
        assert_eq!(h.sum, 10 + (1 << 20));
        assert_eq!(h.min, 0);
        assert_eq!(h.max, 1 << 20);
        assert_eq!(h.buckets[0], 1); // 0
        assert_eq!(h.buckets[1], 1); // 1
        assert_eq!(h.buckets[2], 2); // 2, 3
        assert_eq!(h.buckets[3], 1); // 4
        assert_eq!(h.buckets[HIST_BUCKETS - 1], 1); // 2^20 overflows into the last bucket
        teardown();
    }

    #[test]
    fn spans_nest_per_thread() {
        let _g = guard();
        {
            let _outer = span("outer");
            let _inner = span("inner");
        }
        {
            let _alone = span("inner");
        }
        let r = snapshot();
        let keys: Vec<&str> = r.spans.iter().map(|(k, _)| k.as_str()).collect();
        assert_eq!(keys, ["inner", "outer", "outer/inner"]);
        for (_, s) in &r.spans {
            assert_eq!(s.count, 1);
            assert!(s.min_ns <= s.max_ns && s.max_ns <= s.total_ns);
        }
        teardown();
    }

    #[test]
    fn disabled_collects_nothing() {
        let _g = guard();
        set_enabled(Some(false));
        counter("quiet", 1);
        record("quiet", 1);
        sched("quiet", 1);
        let _s = span("quiet");
        drop(_s);
        assert!(snapshot().is_empty());
        teardown();
    }

    #[test]
    fn sched_is_segregated_from_counters() {
        let _g = guard();
        counter("work", 1);
        sched("steals", 4);
        let r = snapshot();
        let det = r.deterministic_json();
        assert!(det.contains("work"));
        assert!(!det.contains("steals"));
        assert!(r.to_json("t").contains("steals"));
        teardown();
    }

    #[test]
    fn write_report_without_json_mode_is_a_no_op() {
        let _g = guard();
        // Forced-on override without LGO_TRACE=json: collection is active
        // but no file is requested.
        counter("x", 1);
        let written = write_report("unit_test").expect("io");
        assert!(written.is_none() || std::env::var("LGO_TRACE").as_deref() == Ok("json"));
        teardown();
    }
}
