//! Schema validation for emitted trace reports.
//!
//! `scripts/check.sh` runs every `results/trace_<bench>.json` through
//! [`validate_trace`] (via the `trace_schema` binary) so a drifting
//! renderer fails CI instead of silently producing an unreadable report.
//! The validator carries its own minimal recursive-descent JSON parser —
//! the workspace is dependency-free by policy, and the subset of JSON the
//! report uses (objects, arrays, strings, unsigned integers) keeps the
//! parser small.

use crate::HIST_BUCKETS;

/// A parsed JSON value. Object keys keep their source order so the
/// validator can check the canonical key ordering.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any number; trace reports only ever emit unsigned integers.
    Num(f64),
    /// String literal, unescaped.
    Str(String),
    /// Array.
    Arr(Vec<Json>),
    /// Object, keys in source order.
    Obj(Vec<(String, Json)>),
}

impl Json {
    fn type_name(&self) -> &'static str {
        match self {
            Json::Null => "null",
            Json::Bool(_) => "bool",
            Json::Num(_) => "number",
            Json::Str(_) => "string",
            Json::Arr(_) => "array",
            Json::Obj(_) => "object",
        }
    }
}

/// Parses a JSON document, rejecting trailing garbage.
pub fn parse(src: &str) -> Result<Json, String> {
    let bytes = src.as_bytes();
    let mut pos = 0usize;
    let value = parse_value(bytes, &mut pos)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(format!("trailing data at byte {pos}"));
    }
    Ok(value)
}

fn skip_ws(b: &[u8], pos: &mut usize) {
    while *pos < b.len() && matches!(b[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect(b: &[u8], pos: &mut usize, c: u8) -> Result<(), String> {
    if *pos < b.len() && b[*pos] == c {
        *pos += 1;
        Ok(())
    } else {
        Err(format!(
            "expected `{}` at byte {}, found `{}`",
            c as char,
            *pos,
            b.get(*pos).map_or("end of input".to_string(), |x| (*x as char).to_string())
        ))
    }
}

fn parse_value(b: &[u8], pos: &mut usize) -> Result<Json, String> {
    skip_ws(b, pos);
    match b.get(*pos) {
        None => Err("unexpected end of input".to_string()),
        Some(b'{') => parse_object(b, pos),
        Some(b'[') => parse_array(b, pos),
        Some(b'"') => Ok(Json::Str(parse_string(b, pos)?)),
        Some(b't') => parse_keyword(b, pos, "true", Json::Bool(true)),
        Some(b'f') => parse_keyword(b, pos, "false", Json::Bool(false)),
        Some(b'n') => parse_keyword(b, pos, "null", Json::Null),
        Some(_) => parse_number(b, pos),
    }
}

fn parse_keyword(b: &[u8], pos: &mut usize, kw: &str, value: Json) -> Result<Json, String> {
    if b[*pos..].starts_with(kw.as_bytes()) {
        *pos += kw.len();
        Ok(value)
    } else {
        Err(format!("invalid literal at byte {pos}", pos = *pos))
    }
}

fn parse_object(b: &[u8], pos: &mut usize) -> Result<Json, String> {
    expect(b, pos, b'{')?;
    let mut entries = Vec::new();
    skip_ws(b, pos);
    if b.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(Json::Obj(entries));
    }
    loop {
        skip_ws(b, pos);
        let key = parse_string(b, pos)?;
        skip_ws(b, pos);
        expect(b, pos, b':')?;
        let value = parse_value(b, pos)?;
        entries.push((key, value));
        skip_ws(b, pos);
        match b.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b'}') => {
                *pos += 1;
                return Ok(Json::Obj(entries));
            }
            _ => return Err(format!("expected `,` or `}}` at byte {pos}", pos = *pos)),
        }
    }
}

fn parse_array(b: &[u8], pos: &mut usize) -> Result<Json, String> {
    expect(b, pos, b'[')?;
    let mut items = Vec::new();
    skip_ws(b, pos);
    if b.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(Json::Arr(items));
    }
    loop {
        items.push(parse_value(b, pos)?);
        skip_ws(b, pos);
        match b.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b']') => {
                *pos += 1;
                return Ok(Json::Arr(items));
            }
            _ => return Err(format!("expected `,` or `]` at byte {pos}", pos = *pos)),
        }
    }
}

fn parse_string(b: &[u8], pos: &mut usize) -> Result<String, String> {
    expect(b, pos, b'"')?;
    let mut out = Vec::new();
    while let Some(&c) = b.get(*pos) {
        *pos += 1;
        match c {
            b'"' => {
                return String::from_utf8(out).map_err(|_| "invalid UTF-8 in string".to_string())
            }
            b'\\' => {
                let esc = b.get(*pos).copied().ok_or("unterminated escape")?;
                *pos += 1;
                match esc {
                    b'"' => out.push(b'"'),
                    b'\\' => out.push(b'\\'),
                    b'/' => out.push(b'/'),
                    b'n' => out.push(b'\n'),
                    b'r' => out.push(b'\r'),
                    b't' => out.push(b'\t'),
                    b'u' => {
                        let hex = b
                            .get(*pos..*pos + 4)
                            .ok_or("truncated \\u escape")?;
                        let hex = std::str::from_utf8(hex).map_err(|_| "bad \\u escape")?;
                        let cp = u32::from_str_radix(hex, 16).map_err(|_| "bad \\u escape")?;
                        *pos += 4;
                        let ch = char::from_u32(cp).ok_or("surrogate \\u escape")?;
                        let mut buf = [0u8; 4];
                        out.extend_from_slice(ch.encode_utf8(&mut buf).as_bytes());
                    }
                    _ => return Err(format!("unknown escape `\\{}`", esc as char)),
                }
            }
            c => out.push(c),
        }
    }
    Err("unterminated string".to_string())
}

fn parse_number(b: &[u8], pos: &mut usize) -> Result<Json, String> {
    let start = *pos;
    if b.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    while *pos < b.len()
        && matches!(b[*pos], b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-')
    {
        *pos += 1;
    }
    std::str::from_utf8(&b[start..*pos])
        .ok()
        .and_then(|s| s.parse::<f64>().ok())
        .map(Json::Num)
        .ok_or(format!("invalid number at byte {start}"))
}

/// Validates a serialized [`crate::TraceReport`] against the report schema:
/// exact key sets in canonical order, unsigned-integer counters, internally
/// consistent histogram and span aggregates. Returns a human-readable
/// description of the first violation found.
pub fn validate_trace(src: &str) -> Result<(), String> {
    let root = parse(src)?;
    let Json::Obj(entries) = &root else {
        return Err(format!("root must be an object, found {}", root.type_name()));
    };
    let keys: Vec<&str> = entries.iter().map(|(k, _)| k.as_str()).collect();
    if keys != ["bench", "counters", "histograms", "timing"] {
        return Err(format!(
            "root keys must be [bench, counters, histograms, timing] in order, found {keys:?}"
        ));
    }
    if !matches!(entries[0].1, Json::Str(_)) {
        return Err("`bench` must be a string".to_string());
    }
    validate_u64_map(&entries[1].1, "counters")?;
    validate_hist_map(&entries[2].1)?;
    let Json::Obj(timing) = &entries[3].1 else {
        return Err("`timing` must be an object".to_string());
    };
    let tkeys: Vec<&str> = timing.iter().map(|(k, _)| k.as_str()).collect();
    if tkeys != ["spans", "sched"] {
        return Err(format!("timing keys must be [spans, sched] in order, found {tkeys:?}"));
    }
    validate_span_map(&timing[0].1)?;
    validate_u64_map(&timing[1].1, "timing.sched")?;
    Ok(())
}

/// Extracts a non-negative integer or explains why the value is not one.
fn as_u64(v: &Json, what: &str) -> Result<u64, String> {
    match v {
        // lint: allow(L4): fract() == 0.0 is the exact integrality test, not a tolerance check
        Json::Num(n) if *n >= 0.0 && n.fract() == 0.0 => Ok(*n as u64),
        _ => Err(format!("{what} must be a non-negative integer")),
    }
}

fn validate_u64_map(v: &Json, what: &str) -> Result<(), String> {
    let Json::Obj(entries) = v else {
        return Err(format!("`{what}` must be an object"));
    };
    for (k, v) in entries {
        as_u64(v, &format!("{what}[{k:?}]"))?;
    }
    Ok(())
}

fn validate_hist_map(v: &Json) -> Result<(), String> {
    let Json::Obj(entries) = v else {
        return Err("`histograms` must be an object".to_string());
    };
    for (name, h) in entries {
        let Json::Obj(fields) = h else {
            return Err(format!("histogram {name:?} must be an object"));
        };
        let keys: Vec<&str> = fields.iter().map(|(k, _)| k.as_str()).collect();
        if keys != ["count", "sum", "min", "max", "buckets"] {
            return Err(format!(
                "histogram {name:?} keys must be [count, sum, min, max, buckets], found {keys:?}"
            ));
        }
        let count = as_u64(&fields[0].1, &format!("histogram {name:?} count"))?;
        let _sum = as_u64(&fields[1].1, &format!("histogram {name:?} sum"))?;
        let min = as_u64(&fields[2].1, &format!("histogram {name:?} min"))?;
        let max = as_u64(&fields[3].1, &format!("histogram {name:?} max"))?;
        let Json::Arr(buckets) = &fields[4].1 else {
            return Err(format!("histogram {name:?} buckets must be an array"));
        };
        if buckets.len() != HIST_BUCKETS {
            return Err(format!(
                "histogram {name:?} must have {HIST_BUCKETS} buckets, found {}",
                buckets.len()
            ));
        }
        let mut bucket_total = 0u64;
        for (i, b) in buckets.iter().enumerate() {
            bucket_total += as_u64(b, &format!("histogram {name:?} bucket {i}"))?;
        }
        if bucket_total != count {
            return Err(format!(
                "histogram {name:?} buckets sum to {bucket_total} but count is {count}"
            ));
        }
        if count > 0 && min > max {
            return Err(format!("histogram {name:?} has min {min} > max {max}"));
        }
    }
    Ok(())
}

fn validate_span_map(v: &Json) -> Result<(), String> {
    let Json::Obj(entries) = v else {
        return Err("`timing.spans` must be an object".to_string());
    };
    for (name, s) in entries {
        let Json::Obj(fields) = s else {
            return Err(format!("span {name:?} must be an object"));
        };
        let keys: Vec<&str> = fields.iter().map(|(k, _)| k.as_str()).collect();
        if keys != ["count", "total_ns", "min_ns", "max_ns"] {
            return Err(format!(
                "span {name:?} keys must be [count, total_ns, min_ns, max_ns], found {keys:?}"
            ));
        }
        let count = as_u64(&fields[0].1, &format!("span {name:?} count"))?;
        let total = as_u64(&fields[1].1, &format!("span {name:?} total_ns"))?;
        let min = as_u64(&fields[2].1, &format!("span {name:?} min_ns"))?;
        let max = as_u64(&fields[3].1, &format!("span {name:?} max_ns"))?;
        if count == 0 {
            return Err(format!("span {name:?} has count 0; empty spans must be omitted"));
        }
        if min > max || max > total {
            return Err(format!(
                "span {name:?} aggregates are inconsistent (min {min}, max {max}, total {total})"
            ));
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::report::{HistSummary, SpanStats, TraceReport};

    fn sample() -> TraceReport {
        let mut buckets = [0u64; HIST_BUCKETS];
        buckets[3] = 2;
        TraceReport {
            counters: vec![("stage/cluster".into(), 1)],
            histograms: vec![(
                "h".into(),
                HistSummary { count: 2, sum: 11, min: 4, max: 7, buckets },
            )],
            spans: vec![(
                "pipeline/cluster".into(),
                SpanStats { count: 1, total_ns: 900, min_ns: 900, max_ns: 900 },
            )],
            sched: vec![("runtime/steals".into(), 0)],
        }
    }

    #[test]
    fn rendered_report_validates() {
        validate_trace(&sample().to_json("unit")).expect("valid");
        validate_trace(&TraceReport::default().to_json("empty")).expect("valid empty");
    }

    #[test]
    fn parser_round_trips_values() {
        let v = parse("{\"a\": [1, 2.5, \"x\\n\", null, true]}").expect("parse");
        let Json::Obj(o) = v else { panic!("object") };
        let Json::Arr(a) = &o[0].1 else { panic!("array") };
        assert_eq!(a[0], Json::Num(1.0));
        assert_eq!(a[1], Json::Num(2.5));
        assert_eq!(a[2], Json::Str("x\n".into()));
        assert_eq!(a[3], Json::Null);
        assert_eq!(a[4], Json::Bool(true));
    }

    #[test]
    fn rejects_wrong_key_order() {
        let bad = "{\"counters\": {}, \"bench\": \"x\", \"histograms\": {}, \"timing\": {\"spans\": {}, \"sched\": {}}}";
        assert!(validate_trace(bad).is_err());
    }

    #[test]
    fn rejects_inconsistent_histogram() {
        let mut r = sample();
        r.histograms[0].1.count = 5; // buckets still sum to 2
        assert!(validate_trace(&r.to_json("unit")).is_err());
    }

    #[test]
    fn rejects_inconsistent_span() {
        let mut r = sample();
        r.spans[0].1.max_ns = 2_000; // max > total
        assert!(validate_trace(&r.to_json("unit")).is_err());
    }

    #[test]
    fn rejects_negative_and_fractional_counters() {
        let neg = "{\"bench\": \"x\", \"counters\": {\"c\": -1}, \"histograms\": {}, \"timing\": {\"spans\": {}, \"sched\": {}}}";
        assert!(validate_trace(neg).is_err());
        let frac = "{\"bench\": \"x\", \"counters\": {\"c\": 1.5}, \"histograms\": {}, \"timing\": {\"spans\": {}, \"sched\": {}}}";
        assert!(validate_trace(frac).is_err());
    }

    #[test]
    fn rejects_trailing_garbage() {
        assert!(parse("{} {}").is_err());
    }
}
