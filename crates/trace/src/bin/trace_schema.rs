//! Validates trace report files against the lgo-trace schema.
//!
//! ```text
//! cargo run -p lgo-trace --bin trace_schema -- results/trace_exp_scaling.json
//! ```
//!
//! Exits non-zero if any file fails to parse or violates the schema;
//! `scripts/check.sh` uses this as its trace-emission gate.

fn main() {
    let paths: Vec<String> = std::env::args().skip(1).collect();
    if paths.is_empty() {
        eprintln!("usage: trace_schema <trace.json> [<trace.json> ...]");
        std::process::exit(2);
    }
    let mut failed = false;
    for path in &paths {
        let outcome = std::fs::read_to_string(path)
            .map_err(|e| e.to_string())
            .and_then(|src| lgo_trace::schema::validate_trace(&src));
        match outcome {
            Ok(()) => println!("{path}: ok"),
            Err(e) => {
                eprintln!("{path}: INVALID: {e}");
                failed = true;
            }
        }
    }
    if failed {
        std::process::exit(1);
    }
}
