//! The per-run trace report and its canonical JSON rendering.
//!
//! Rendering follows the same rules as `lgo-core::export::canonical_json`:
//! a fixed key order, hand-written serialization (no dependency), and a
//! hard split between deterministic content and run-varying timing. Entry
//! maps are emitted in sorted key order (they come out of `BTreeMap`s), so
//! two reports with the same content render byte-identically.

use crate::HIST_BUCKETS;

/// Aggregate of one log2-bucketed histogram.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct HistSummary {
    /// Number of recorded values.
    pub count: u64,
    /// Sum of recorded values (saturating).
    pub sum: u64,
    /// Smallest recorded value (0 when `count == 0`).
    pub min: u64,
    /// Largest recorded value.
    pub max: u64,
    /// `buckets[b]` counts values of bit length `b`; the last bucket
    /// absorbs everything wider.
    pub buckets: [u64; HIST_BUCKETS],
}

/// Wall-clock aggregate of one span path.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct SpanStats {
    /// Number of times the span closed.
    pub count: u64,
    /// Total nanoseconds across all closures (saturating).
    pub total_ns: u64,
    /// Shortest single closure (0 when `count == 0`).
    pub min_ns: u64,
    /// Longest single closure.
    pub max_ns: u64,
}

/// Everything one run collected, split into deterministic content
/// (`counters`, `histograms`) and schedule/wall-clock data (`spans`,
/// `sched`); see the crate docs for the contract.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct TraceReport {
    /// Deterministic named counters, sorted by name.
    pub counters: Vec<(String, u64)>,
    /// Deterministic histograms, sorted by name.
    pub histograms: Vec<(String, HistSummary)>,
    /// Wall-clock span aggregates keyed by nesting path, sorted.
    pub spans: Vec<(String, SpanStats)>,
    /// Schedule-dependent counters (steals, parks, busy time), sorted.
    pub sched: Vec<(String, u64)>,
}

impl TraceReport {
    /// Looks up a counter by exact name.
    pub fn counter(&self, name: &str) -> Option<u64> {
        self.counters
            .iter()
            .find(|(k, _)| k == name)
            .map(|(_, v)| *v)
    }

    /// Whether any span key contains `needle` (span keys are nesting paths,
    /// so a stage reached through different call chains still matches).
    pub fn has_span(&self, needle: &str) -> bool {
        self.spans.iter().any(|(k, _)| k.contains(needle))
    }

    /// True when nothing at all was collected.
    pub fn is_empty(&self) -> bool {
        self.counters.is_empty()
            && self.histograms.is_empty()
            && self.spans.is_empty()
            && self.sched.is_empty()
    }

    /// Renders only the deterministic section — byte-identical at any
    /// `LGO_THREADS` for the same workload.
    pub fn deterministic_json(&self) -> String {
        let mut out = String::new();
        out.push_str("{\n");
        render_u64_map(&mut out, "counters", &self.counters, 1, true);
        render_hist_map(&mut out, "histograms", &self.histograms, 1, false);
        out.push_str("}\n");
        out
    }

    /// Renders the full report: the deterministic section plus the masked
    /// `timing` section, under a fixed key order
    /// (`bench`, `counters`, `histograms`, `timing`).
    pub fn to_json(&self, bench: &str) -> String {
        let mut out = String::new();
        out.push_str("{\n");
        out.push_str(&format!("  \"bench\": {},\n", json_string(bench)));
        render_u64_map(&mut out, "counters", &self.counters, 1, true);
        render_hist_map(&mut out, "histograms", &self.histograms, 1, true);
        out.push_str("  \"timing\": {\n");
        render_span_map(&mut out, "spans", &self.spans, 2, true);
        render_u64_map(&mut out, "sched", &self.sched, 2, false);
        out.push_str("  }\n");
        out.push_str("}\n");
        out
    }
}

fn indent(out: &mut String, level: usize) {
    for _ in 0..level {
        out.push_str("  ");
    }
}

/// JSON string literal with the escapes the grammar requires.
fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

fn render_u64_map(
    out: &mut String,
    key: &str,
    entries: &[(String, u64)],
    level: usize,
    trailing_comma: bool,
) {
    indent(out, level);
    out.push_str(&format!("\"{key}\": {{"));
    for (i, (name, value)) in entries.iter().enumerate() {
        out.push_str(if i == 0 { "\n" } else { ",\n" });
        indent(out, level + 1);
        out.push_str(&format!("{}: {value}", json_string(name)));
    }
    if !entries.is_empty() {
        out.push('\n');
        indent(out, level);
    }
    out.push('}');
    out.push_str(if trailing_comma { ",\n" } else { "\n" });
}

fn render_hist_map(
    out: &mut String,
    key: &str,
    entries: &[(String, HistSummary)],
    level: usize,
    trailing_comma: bool,
) {
    indent(out, level);
    out.push_str(&format!("\"{key}\": {{"));
    for (i, (name, h)) in entries.iter().enumerate() {
        out.push_str(if i == 0 { "\n" } else { ",\n" });
        indent(out, level + 1);
        let buckets: Vec<String> = h.buckets.iter().map(u64::to_string).collect();
        out.push_str(&format!(
            "{}: {{\"count\": {}, \"sum\": {}, \"min\": {}, \"max\": {}, \"buckets\": [{}]}}",
            json_string(name),
            h.count,
            h.sum,
            h.min,
            h.max,
            buckets.join(", ")
        ));
    }
    if !entries.is_empty() {
        out.push('\n');
        indent(out, level);
    }
    out.push('}');
    out.push_str(if trailing_comma { ",\n" } else { "\n" });
}

fn render_span_map(
    out: &mut String,
    key: &str,
    entries: &[(String, SpanStats)],
    level: usize,
    trailing_comma: bool,
) {
    indent(out, level);
    out.push_str(&format!("\"{key}\": {{"));
    for (i, (name, s)) in entries.iter().enumerate() {
        out.push_str(if i == 0 { "\n" } else { ",\n" });
        indent(out, level + 1);
        out.push_str(&format!(
            "{}: {{\"count\": {}, \"total_ns\": {}, \"min_ns\": {}, \"max_ns\": {}}}",
            json_string(name),
            s.count,
            s.total_ns,
            s.min_ns,
            s.max_ns
        ));
    }
    if !entries.is_empty() {
        out.push('\n');
        indent(out, level);
    }
    out.push('}');
    out.push_str(if trailing_comma { ",\n" } else { "\n" });
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> TraceReport {
        TraceReport {
            counters: vec![("stage/attack".into(), 4), ("stage/risk".into(), 4)],
            histograms: vec![(
                "attack/queries_per_window".into(),
                HistSummary { count: 2, sum: 10, min: 3, max: 7, buckets: {
                    let mut b = [0; HIST_BUCKETS];
                    b[2] = 1;
                    b[3] = 1;
                    b
                } },
            )],
            spans: vec![(
                "pipeline/profile".into(),
                SpanStats { count: 4, total_ns: 4000, min_ns: 800, max_ns: 1400 },
            )],
            sched: vec![("runtime/steals".into(), 3)],
        }
    }

    #[test]
    fn full_render_has_fixed_key_order() {
        let json = sample().to_json("unit");
        let bench = json.find("\"bench\"").expect("bench key");
        let counters = json.find("\"counters\"").expect("counters key");
        let hists = json.find("\"histograms\"").expect("histograms key");
        let timing = json.find("\"timing\"").expect("timing key");
        assert!(bench < counters && counters < hists && hists < timing);
        assert!(json.contains("\"stage/attack\": 4"));
        assert!(json.contains("\"runtime/steals\": 3"));
    }

    #[test]
    fn deterministic_render_masks_timing() {
        let det = sample().deterministic_json();
        assert!(det.contains("\"counters\""));
        assert!(det.contains("\"histograms\""));
        assert!(!det.contains("\"timing\""));
        assert!(!det.contains("total_ns"));
        assert!(!det.contains("runtime/steals"));
    }

    #[test]
    fn empty_report_renders_empty_maps() {
        let json = TraceReport::default().to_json("empty");
        assert!(json.contains("\"counters\": {},"));
        assert!(json.contains("\"spans\": {},"));
    }

    #[test]
    fn strings_are_escaped() {
        assert_eq!(json_string("a\"b\\c\n"), "\"a\\\"b\\\\c\\n\"");
    }

    #[test]
    fn lookup_helpers() {
        let r = sample();
        assert_eq!(r.counter("stage/attack"), Some(4));
        assert_eq!(r.counter("missing"), None);
        assert!(r.has_span("profile"));
        assert!(!r.has_span("cluster"));
        assert!(!r.is_empty());
        assert!(TraceReport::default().is_empty());
    }
}
