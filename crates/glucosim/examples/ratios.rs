use lgo_glucosim::{profiles, Simulator};

fn main() -> Result<(), String> {
    for p in profiles() {
        let id = p.id;
        let s = Simulator::new(p).run_days(14);
        let cgm = s
            .channel("cgm")
            .ok_or_else(|| format!("{id}: series lacks cgm channel"))?;
        let fasting = s
            .channel("fasting")
            .ok_or_else(|| format!("{id}: series lacks fasting channel"))?;
        let (mut normal, mut abnormal) = (0.0f64, 0.0f64);
        let mut hypo = 0.0f64;
        for (g, f) in cgm.iter().zip(&fasting) {
            // lint: allow(L4): fasting is a 0/1 flag channel stored exactly
            let hyper = if *f == 1.0 { 125.0 } else { 180.0 };
            if *g < 70.0 { abnormal += 1.0; hypo += 1.0; }
            else if *g > hyper { abnormal += 1.0; }
            else { normal += 1.0; }
        }
        println!("{id}: ratio {:.2}  (hypo frac {:.3}, abnormal frac {:.3})",
                 normal / abnormal.max(1.0), hypo / cgm.len() as f64, abnormal / cgm.len() as f64);
    }
    Ok(())
}
