//! Deterministic CGM fault injection.
//!
//! Real continuous glucose monitors fail in well-documented ways: readings
//! drop out, Bluetooth links go silent for whole windows, electrodes get
//! stuck and repeat a value, electronics glitch into spikes, and
//! calibration drifts between finger-stick recalibrations. A defense
//! pipeline evaluated only on clean simulator output overstates its field
//! robustness, so this module lets experiments corrupt any
//! [`PatientDataset`] with a seeded, reproducible mix of those fault
//! models before the pipeline ever sees it.
//!
//! Faults target the `cgm` channel only (the attacked and defended
//! signal); other channels pass through untouched. Missing data is encoded
//! as `NaN`, which downstream stages treat as a degraded patient — the
//! pipeline's `try_run` path skips patients whose data degrades beyond
//! use instead of aborting the cohort.
//!
//! # Examples
//!
//! ```
//! use lgo_glucosim::{FaultInjector, FaultKind, PatientDataset};
//! use lgo_glucosim::{profile, PatientId, Subset};
//!
//! let ds = PatientDataset::generate(profile(PatientId::new(Subset::A, 0)), 1, 1);
//! let injector = FaultInjector::new(7)
//!     .with_fault(FaultKind::Dropout { rate: 0.05 })
//!     .with_fault(FaultKind::SpikeNoise { rate: 0.01, magnitude: 80.0 });
//! let faulty = injector.apply_dataset(&ds);
//! assert_eq!(faulty.train.len(), ds.train.len());
//! // Same seed, same faults, same input => identical corruption.
//! let again = injector.apply_dataset(&ds);
//! let bits = |s: &lgo_series::MultiSeries| -> Vec<u64> {
//!     s.channel("cgm").unwrap().iter().map(|v| v.to_bits()).collect()
//! };
//! assert_eq!(bits(&faulty.train), bits(&again.train));
//! ```

use lgo_series::MultiSeries;
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

use crate::dataset::PatientDataset;
use crate::sensor::{CGM_MAX, CGM_MIN};

/// Lower bound of the physiologically plausible CGM range faults respect
/// (mg/dL).
pub const FAULT_CGM_MIN: f64 = 40.0;
/// Upper bound of the physiologically plausible CGM range faults respect
/// (mg/dL). Spike faults may exceed this (they model electronics glitches
/// that rail toward the sensor's reporting ceiling).
pub const FAULT_CGM_MAX: f64 = 400.0;

/// One fault model applied to a CGM series.
///
/// All `rate` fields are per-sample probabilities in `[0, 1]`; value-level
/// faults keep readings inside the plausible physical range
/// [`FAULT_CGM_MIN`]..[`FAULT_CGM_MAX`] except [`FaultKind::SpikeNoise`],
/// which is clamped only to the sensor reporting range.
#[derive(Debug, Clone, PartialEq)]
pub enum FaultKind {
    /// Each sample independently becomes missing (`NaN`) with probability
    /// `rate` — intermittent radio loss.
    Dropout {
        /// Per-sample dropout probability in `[0, 1]`.
        rate: f64,
    },
    /// `count` contiguous windows of `len` samples become missing (`NaN`)
    /// at random positions — the receiver out of range for a stretch.
    TransmissionGap {
        /// Number of gaps to carve.
        count: usize,
        /// Samples per gap (must be positive).
        len: usize,
    },
    /// With probability `rate` per sample the sensor freezes, repeating
    /// the previous reading for `len` samples — a stuck electrode.
    StuckAt {
        /// Per-sample freeze probability in `[0, 1]`.
        rate: f64,
        /// Samples held at the frozen value (must be positive).
        len: usize,
    },
    /// With probability `rate` per sample the reading jumps by up to
    /// `±magnitude` mg/dL — transient electronics glitches. The only
    /// fault allowed to leave the plausible physical range.
    SpikeNoise {
        /// Per-sample spike probability in `[0, 1]`.
        rate: f64,
        /// Maximum absolute spike height in mg/dL (must be `>= 0`).
        magnitude: f64,
    },
    /// A bias ramp of `per_sample` mg/dL per reading (random sign),
    /// saturating at `±max_abs` — calibration drifting between
    /// finger-stick recalibrations.
    CalibrationDrift {
        /// Drift accumulated per sample in mg/dL (must be `>= 0`).
        per_sample: f64,
        /// Saturation bound on the accumulated bias (must be `>= 0`).
        max_abs: f64,
    },
}

impl FaultKind {
    /// Short stable name for reports and JSON output.
    pub fn name(&self) -> &'static str {
        match self {
            FaultKind::Dropout { .. } => "dropout",
            FaultKind::TransmissionGap { .. } => "transmission_gap",
            FaultKind::StuckAt { .. } => "stuck_at",
            FaultKind::SpikeNoise { .. } => "spike_noise",
            FaultKind::CalibrationDrift { .. } => "calibration_drift",
        }
    }

    /// Panics with a descriptive message if the parameters are out of
    /// range (rates outside `[0, 1]`, non-finite or negative magnitudes,
    /// zero-length windows).
    fn validate(&self) {
        let rate_ok = |r: f64| (0.0..=1.0).contains(&r);
        match *self {
            FaultKind::Dropout { rate } => {
                assert!(rate_ok(rate), "Dropout: rate must be in [0, 1], got {rate}");
            }
            FaultKind::TransmissionGap { len, .. } => {
                assert!(len > 0, "TransmissionGap: len must be positive");
            }
            FaultKind::StuckAt { rate, len } => {
                assert!(rate_ok(rate), "StuckAt: rate must be in [0, 1], got {rate}");
                assert!(len > 0, "StuckAt: len must be positive");
            }
            FaultKind::SpikeNoise { rate, magnitude } => {
                assert!(
                    rate_ok(rate),
                    "SpikeNoise: rate must be in [0, 1], got {rate}"
                );
                assert!(
                    magnitude.is_finite() && magnitude >= 0.0,
                    "SpikeNoise: magnitude must be finite and >= 0"
                );
            }
            FaultKind::CalibrationDrift {
                per_sample,
                max_abs,
            } => {
                assert!(
                    per_sample.is_finite() && per_sample >= 0.0,
                    "CalibrationDrift: per_sample must be finite and >= 0"
                );
                assert!(
                    max_abs.is_finite() && max_abs >= 0.0,
                    "CalibrationDrift: max_abs must be finite and >= 0"
                );
            }
        }
    }
}

/// A seeded, composable corruptor of CGM series.
///
/// Faults are applied to the `cgm` channel in the order they were added;
/// series without a `cgm` channel pass through unchanged. All randomness
/// derives from the configured seed, so the same injector applied to the
/// same data always yields bit-identical output.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultInjector {
    seed: u64,
    faults: Vec<FaultKind>,
}

impl FaultInjector {
    /// Creates an injector with no faults; add them with
    /// [`with_fault`](Self::with_fault).
    pub fn new(seed: u64) -> Self {
        Self {
            seed,
            faults: Vec::new(),
        }
    }

    /// Adds one fault model (builder style).
    ///
    /// # Panics
    ///
    /// Panics if the fault's parameters are invalid (rate outside
    /// `[0, 1]`, zero window length, negative magnitude).
    pub fn with_fault(mut self, fault: FaultKind) -> Self {
        fault.validate();
        self.faults.push(fault);
        self
    }

    /// The configured fault models, in application order.
    pub fn faults(&self) -> &[FaultKind] {
        &self.faults
    }

    /// The configured seed.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Returns a corrupted copy of `series` (stream 0).
    pub fn apply_series(&self, series: &MultiSeries) -> MultiSeries {
        self.apply_stream(series, 0)
    }

    /// Returns a corrupted copy of `dataset`: train and test are corrupted
    /// on independent deterministic streams so their fault patterns do not
    /// repeat each other.
    pub fn apply_dataset(&self, dataset: &PatientDataset) -> PatientDataset {
        PatientDataset {
            profile: dataset.profile.clone(),
            train: self.apply_stream(&dataset.train, 0),
            test: self.apply_stream(&dataset.test, 1),
        }
    }

    /// Corrupts every patient of a cohort, each on its own deterministic
    /// stream (patient order matters, cohort size does not).
    pub fn apply_cohort(&self, cohort: &[PatientDataset]) -> Vec<PatientDataset> {
        cohort
            .iter()
            .enumerate()
            .map(|(i, ds)| {
                let sub = Self {
                    seed: mix(self.seed, 0x7061_7469_656e_7400 ^ i as u64),
                    faults: self.faults.clone(),
                };
                sub.apply_dataset(ds)
            })
            .collect()
    }

    fn apply_stream(&self, series: &MultiSeries, stream: u64) -> MultiSeries {
        let Some(mut cgm) = series.channel("cgm") else {
            return series.clone();
        };
        let mut rng = StdRng::seed_from_u64(mix(self.seed, stream));
        for fault in &self.faults {
            apply_fault(fault, &mut cgm, &mut rng);
        }
        let mut out = series.clone();
        out.set_channel("cgm", &cgm);
        out
    }
}

/// Mixes a stream id into the base seed (SplitMix64 finalizer) so distinct
/// streams draw independent sequences from one configured seed.
fn mix(seed: u64, stream: u64) -> u64 {
    let mut z = seed ^ stream.wrapping_mul(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

fn apply_fault(fault: &FaultKind, cgm: &mut [f64], rng: &mut StdRng) {
    let n = cgm.len();
    if n == 0 {
        return;
    }
    match *fault {
        FaultKind::Dropout { rate } => {
            for v in cgm.iter_mut() {
                if rng.random_bool(rate) {
                    *v = f64::NAN;
                }
            }
        }
        FaultKind::TransmissionGap { count, len } => {
            for _ in 0..count {
                let start = rng.random_range(0..n);
                for v in cgm.iter_mut().skip(start).take(len) {
                    *v = f64::NAN;
                }
            }
        }
        FaultKind::StuckAt { rate, len } => {
            let mut i = 1;
            while i < n {
                if cgm[i - 1].is_finite() && rng.random_bool(rate) {
                    let held = cgm[i - 1];
                    let end = (i + len).min(n);
                    for v in cgm.iter_mut().take(end).skip(i) {
                        *v = held;
                    }
                    i = end;
                } else {
                    i += 1;
                }
            }
        }
        FaultKind::SpikeNoise { rate, magnitude } => {
            for v in cgm.iter_mut() {
                if v.is_finite() && rng.random_bool(rate) {
                    let height = magnitude * rng.random_range(0.5..1.0);
                    let spike = if rng.random_bool(0.5) { height } else { -height };
                    // Spikes model electronics glitches: clamp only to the
                    // sensor reporting range, not the plausible range.
                    *v = (*v + spike).clamp(CGM_MIN, CGM_MAX);
                }
            }
        }
        FaultKind::CalibrationDrift {
            per_sample,
            max_abs,
        } => {
            let sign = if rng.random_bool(0.5) { 1.0 } else { -1.0 };
            let mut bias = 0.0;
            for v in cgm.iter_mut() {
                bias = (bias + sign * per_sample).clamp(-max_abs, max_abs);
                if v.is_finite() {
                    *v = (*v + bias).clamp(FAULT_CGM_MIN, FAULT_CGM_MAX);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::{profile, PatientId, Subset};

    fn flat_series(len: usize, value: f64) -> MultiSeries {
        MultiSeries::from_rows(&["cgm"], vec![vec![value]; len])
    }

    fn cgm_bits(s: &MultiSeries) -> Vec<u64> {
        s.channel("cgm")
            .unwrap()
            .iter()
            .map(|v| v.to_bits())
            .collect()
    }

    #[test]
    fn no_faults_is_identity() {
        let s = flat_series(100, 120.0);
        let out = FaultInjector::new(1).apply_series(&s);
        assert_eq!(out.rows(), s.rows());
    }

    #[test]
    fn dropout_writes_nan_at_roughly_the_rate() {
        let s = flat_series(10_000, 150.0);
        let out = FaultInjector::new(2)
            .with_fault(FaultKind::Dropout { rate: 0.1 })
            .apply_series(&s);
        let missing = out
            .channel("cgm")
            .unwrap()
            .iter()
            .filter(|v| v.is_nan())
            .count();
        assert!((700..1300).contains(&missing), "missing={missing}");
    }

    #[test]
    fn full_dropout_erases_everything() {
        let s = flat_series(500, 150.0);
        let out = FaultInjector::new(3)
            .with_fault(FaultKind::Dropout { rate: 1.0 })
            .apply_series(&s);
        assert!(out.channel("cgm").unwrap().iter().all(|v| v.is_nan()));
    }

    #[test]
    fn transmission_gaps_carve_contiguous_nan_runs() {
        let s = flat_series(1000, 150.0);
        let out = FaultInjector::new(4)
            .with_fault(FaultKind::TransmissionGap { count: 3, len: 12 })
            .apply_series(&s);
        let cgm = out.channel("cgm").unwrap();
        let missing = cgm.iter().filter(|v| v.is_nan()).count();
        // Up to 3 gaps x 12 samples; gaps may overlap or hit the tail.
        assert!(missing > 0 && missing <= 36, "missing={missing}");
        // Contiguity: count NaN-run starts, must be <= 3.
        let runs = cgm
            .windows(2)
            .filter(|w| !w[0].is_nan() && w[1].is_nan())
            .count()
            + usize::from(cgm[0].is_nan());
        assert!(runs <= 3, "runs={runs}");
    }

    #[test]
    fn stuck_at_repeats_previous_reading() {
        let rows: Vec<Vec<f64>> = (0..2000).map(|i| vec![100.0 + (i % 50) as f64]).collect();
        let s = MultiSeries::from_rows(&["cgm"], rows);
        let out = FaultInjector::new(5)
            .with_fault(FaultKind::StuckAt { rate: 0.02, len: 6 })
            .apply_series(&s);
        let cgm = out.channel("cgm").unwrap();
        // The input never repeats consecutively, so any repeat is a freeze.
        let frozen = cgm.windows(2).filter(|w| w[0] == w[1]).count();
        assert!(frozen > 0, "no freezes at 2% rate over 2000 samples");
    }

    #[test]
    fn spikes_can_leave_plausible_range_but_not_reporting_range() {
        let s = flat_series(5000, 390.0);
        let out = FaultInjector::new(6)
            .with_fault(FaultKind::SpikeNoise {
                rate: 0.2,
                magnitude: 150.0,
            })
            .apply_series(&s);
        let cgm = out.channel("cgm").unwrap();
        assert!(cgm.iter().any(|&v| v > FAULT_CGM_MAX));
        assert!(cgm.iter().all(|&v| (CGM_MIN..=CGM_MAX).contains(&v)));
    }

    #[test]
    fn drift_saturates_and_stays_in_plausible_range() {
        let s = flat_series(1000, 200.0);
        let out = FaultInjector::new(8)
            .with_fault(FaultKind::CalibrationDrift {
                per_sample: 0.5,
                max_abs: 30.0,
            })
            .apply_series(&s);
        let cgm = out.channel("cgm").unwrap();
        assert!(cgm
            .iter()
            .all(|&v| (FAULT_CGM_MIN..=FAULT_CGM_MAX).contains(&v)));
        // After 60+ samples the ramp has saturated at +-30.
        let settled = cgm[100];
        assert!((settled - 200.0).abs() > 25.0, "drift too small: {settled}");
    }

    #[test]
    fn same_seed_same_output_different_seed_differs() {
        let ds = PatientDataset::generate(profile(PatientId::new(Subset::A, 1)), 1, 1);
        let make = |seed| {
            FaultInjector::new(seed)
                .with_fault(FaultKind::Dropout { rate: 0.05 })
                .with_fault(FaultKind::SpikeNoise {
                    rate: 0.02,
                    magnitude: 60.0,
                })
                .apply_dataset(&ds)
        };
        let a = make(11);
        let b = make(11);
        let c = make(12);
        assert_eq!(cgm_bits(&a.train), cgm_bits(&b.train));
        assert_eq!(cgm_bits(&a.test), cgm_bits(&b.test));
        assert_ne!(cgm_bits(&a.train), cgm_bits(&c.train));
    }

    #[test]
    fn train_and_test_streams_are_independent() {
        // Same underlying series as train and test must corrupt differently.
        let ds = PatientDataset::generate(profile(PatientId::new(Subset::A, 2)), 1, 1);
        let same = PatientDataset {
            profile: ds.profile.clone(),
            train: ds.train.clone(),
            test: ds.train.clone(),
        };
        let out = FaultInjector::new(13)
            .with_fault(FaultKind::Dropout { rate: 0.2 })
            .apply_dataset(&same);
        assert_ne!(cgm_bits(&out.train), cgm_bits(&out.test));
    }

    #[test]
    fn cohort_patients_get_distinct_streams() {
        let ds = PatientDataset::generate(profile(PatientId::new(Subset::A, 3)), 1, 1);
        let cohort = vec![ds.clone(), ds];
        let out = FaultInjector::new(14)
            .with_fault(FaultKind::Dropout { rate: 0.2 })
            .apply_cohort(&cohort);
        assert_ne!(cgm_bits(&out[0].train), cgm_bits(&out[1].train));
    }

    #[test]
    fn other_channels_untouched() {
        let rows: Vec<Vec<f64>> = (0..200).map(|i| vec![150.0, i as f64]).collect();
        let s = MultiSeries::from_rows(&["cgm", "heart_rate"], rows);
        let out = FaultInjector::new(15)
            .with_fault(FaultKind::Dropout { rate: 0.5 })
            .apply_series(&s);
        assert_eq!(out.channel("heart_rate"), s.channel("heart_rate"));
    }

    #[test]
    fn series_without_cgm_passes_through() {
        let s = MultiSeries::from_rows(&["heart_rate"], vec![vec![70.0]; 10]);
        let out = FaultInjector::new(16)
            .with_fault(FaultKind::Dropout { rate: 1.0 })
            .apply_series(&s);
        assert_eq!(out.rows(), s.rows());
    }

    #[test]
    #[should_panic(expected = "rate must be in [0, 1]")]
    fn invalid_rate_rejected() {
        let _ = FaultInjector::new(0).with_fault(FaultKind::Dropout { rate: 1.5 });
    }

    #[test]
    #[should_panic(expected = "len must be positive")]
    fn zero_gap_len_rejected() {
        let _ =
            FaultInjector::new(0).with_fault(FaultKind::TransmissionGap { count: 1, len: 0 });
    }
}
