use std::fmt;

use crate::ode::OdeParams;

/// Which cohort a synthetic patient belongs to, mirroring the paper's
/// *Subset A* (OhioT1DM 2018 cohort) and *Subset B* (2020 cohort).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Subset {
    /// The 2018 cohort (patients `A_0` … `A_5`).
    A,
    /// The 2020 cohort (patients `B_0` … `B_5`).
    B,
}

impl fmt::Display for Subset {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Subset::A => write!(f, "A"),
            Subset::B => write!(f, "B"),
        }
    }
}

/// Identifies one of the twelve synthetic patients.
///
/// # Examples
///
/// ```
/// use lgo_glucosim::{PatientId, Subset};
///
/// let id = PatientId::new(Subset::B, 2);
/// assert_eq!(id.to_string(), "B_2");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct PatientId {
    /// Cohort.
    pub subset: Subset,
    /// Index within the cohort (0–5).
    pub index: usize,
}

impl PatientId {
    /// Creates a patient id.
    ///
    /// # Panics
    ///
    /// Panics if `index > 5`; each cohort has six patients.
    pub fn new(subset: Subset, index: usize) -> Self {
        assert!(index <= 5, "PatientId: index {index} out of range (0-5)");
        Self { subset, index }
    }

    /// All twelve patients, Subset A first.
    pub fn all() -> Vec<PatientId> {
        let mut v = Vec::with_capacity(12);
        for subset in [Subset::A, Subset::B] {
            for index in 0..6 {
                v.push(PatientId { subset, index });
            }
        }
        v
    }

    /// Flat index in `0..12` (A_0..A_5, B_0..B_5).
    pub fn flat_index(&self) -> usize {
        match self.subset {
            Subset::A => self.index,
            Subset::B => 6 + self.index,
        }
    }
}

impl fmt::Display for PatientId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}_{}", self.subset, self.index)
    }
}

/// Everything that distinguishes one synthetic patient from another.
///
/// The physiological core lives in [`OdeParams`]; the behavioural fields
/// control meals, dosing discipline and activity, which together set the
/// patient's glycemic variability — the axis that determines both the benign
/// normal:abnormal ratio (paper Figure 4) and, downstream, the patient's
/// vulnerability to the evasion attack.
#[derive(Debug, Clone, PartialEq)]
pub struct PatientProfile {
    /// Who this is.
    pub id: PatientId,
    /// RNG seed; every simulation of this profile is reproducible.
    pub seed: u64,
    /// Glucose/insulin kinetics.
    pub ode: OdeParams,
    /// Mean carbohydrate content of a meal (g).
    pub meal_carbs_mean: f64,
    /// Relative standard deviation of meal size (0 = perfectly regular).
    pub meal_carbs_rel_std: f64,
    /// Standard deviation of meal timing (minutes around scheduled times).
    pub meal_time_jitter_min: f64,
    /// Probability of an unannounced snack on any day.
    pub snack_probability: f64,
    /// Insulin-to-carb ratio (g of carbs covered by 1 U of insulin).
    pub insulin_carb_ratio: f64,
    /// Relative error applied to each bolus (carb-counting skill).
    pub bolus_error_rel_std: f64,
    /// Probability a meal bolus is forgotten entirely.
    pub missed_bolus_probability: f64,
    /// Basal insulin rate (U/hr).
    pub basal_rate: f64,
    /// Amplitude of the dawn-phenomenon glucose drive (mg/dL/min at peak).
    pub dawn_amplitude: f64,
    /// Probability of an exercise session on any day.
    pub exercise_probability: f64,
    /// Multiplier on insulin sensitivity during exercise.
    pub exercise_sensitivity_boost: f64,
    /// CGM sensor noise standard deviation (mg/dL).
    pub sensor_noise_std: f64,
    /// Resting heart rate (bpm).
    pub resting_heart_rate: f64,
}

impl PatientProfile {
    /// A neutral, moderately controlled patient used as the template the
    /// twelve cohort profiles specialize.
    pub fn template(id: PatientId, seed: u64) -> Self {
        Self {
            id,
            seed,
            ode: OdeParams::default(),
            meal_carbs_mean: 55.0,
            meal_carbs_rel_std: 0.25,
            meal_time_jitter_min: 20.0,
            snack_probability: 0.3,
            insulin_carb_ratio: 10.0,
            bolus_error_rel_std: 0.12,
            missed_bolus_probability: 0.05,
            basal_rate: 0.9,
            dawn_amplitude: 0.25,
            exercise_probability: 0.25,
            exercise_sensitivity_boost: 1.8,
            sensor_noise_std: 4.0,
            resting_heart_rate: 68.0,
        }
    }

    /// Validates parameter sanity (positive rates, probabilities in range).
    ///
    /// # Panics
    ///
    /// Panics with a descriptive message on the first violated constraint.
    pub fn validate(&self) {
        assert!(self.meal_carbs_mean > 0.0, "{}: meal_carbs_mean", self.id);
        assert!(self.meal_carbs_rel_std >= 0.0, "{}: meal_carbs_rel_std", self.id);
        assert!(
            (0.0..=1.0).contains(&self.snack_probability),
            "{}: snack_probability",
            self.id
        );
        assert!(
            (0.0..=1.0).contains(&self.missed_bolus_probability),
            "{}: missed_bolus_probability",
            self.id
        );
        assert!(
            (0.0..=1.0).contains(&self.exercise_probability),
            "{}: exercise_probability",
            self.id
        );
        assert!(self.insulin_carb_ratio > 0.0, "{}: insulin_carb_ratio", self.id);
        assert!(self.basal_rate >= 0.0, "{}: basal_rate", self.id);
        assert!(self.sensor_noise_std >= 0.0, "{}: sensor_noise_std", self.id);
        self.ode.validate();
    }
}

/// Returns the built-in profile for one patient.
///
/// The twelve profiles are designed so that the cohort reproduces the
/// heterogeneity the paper observes on OhioT1DM:
///
/// - **A_5, B_1, B_2** are tight-control phenotypes (regular meals, good
///   carb counting, rarely missed boluses) → high benign normal:abnormal
///   ratio → the paper's *less vulnerable* cluster;
/// - **A_2** is the most erratic phenotype (large irregular meals, poor
///   carb counting, frequent missed boluses) → lowest ratio, matching the
///   paper's most vulnerable patient;
/// - the rest sit in between, on the *more vulnerable* side.
pub fn profile(id: PatientId) -> PatientProfile {
    let seed = 0x51AC_0000 + id.flat_index() as u64;
    let mut p = PatientProfile::template(id, seed);
    match (id.subset, id.index) {
        // ---- Subset A (2018 cohort) ----
        (Subset::A, 0) => {
            // Moderate control, tendency to run high after dinner.
            p.meal_carbs_rel_std = 0.35;
            p.bolus_error_rel_std = 0.22;
            p.missed_bolus_probability = 0.12;
            p.ode.basal_glucose = 138.0;
            p.basal_rate = 0.7;
        }
        (Subset::A, 1) => {
            // Insulin-resistant, large meals.
            p.meal_carbs_mean = 75.0;
            p.meal_carbs_rel_std = 0.30;
            p.ode.insulin_action = 3.0e-5;
            p.bolus_error_rel_std = 0.20;
            p.missed_bolus_probability = 0.10;
            p.ode.basal_glucose = 142.0;
        }
        (Subset::A, 2) => {
            // The most erratic patient in the cohort (paper's A_2: lowest
            // benign normal:abnormal ratio).
            p.meal_carbs_mean = 80.0;
            p.meal_carbs_rel_std = 0.55;
            p.meal_time_jitter_min = 55.0;
            p.snack_probability = 0.75;
            p.bolus_error_rel_std = 0.45;
            p.missed_bolus_probability = 0.30;
            p.ode.basal_glucose = 150.0;
            p.basal_rate = 0.55;
            p.exercise_probability = 0.45;
            p.exercise_sensitivity_boost = 2.8;
        }
        (Subset::A, 3) => {
            // Frequent exerciser with hypo tendency.
            p.exercise_probability = 0.55;
            p.exercise_sensitivity_boost = 3.0;
            p.bolus_error_rel_std = 0.25;
            p.missed_bolus_probability = 0.10;
            p.ode.basal_glucose = 144.0;
            p.basal_rate = 0.7;
        }
        (Subset::A, 4) => {
            // Heavy snacker, moderate discipline.
            p.snack_probability = 0.65;
            p.meal_carbs_rel_std = 0.40;
            p.bolus_error_rel_std = 0.20;
            p.missed_bolus_probability = 0.15;
            p.ode.basal_glucose = 148.0;
            p.missed_bolus_probability = 0.18;
        }
        (Subset::A, 5) => {
            // Tight control: the paper's less-vulnerable Subset-A patient.
            p.meal_carbs_mean = 58.0;
            p.meal_carbs_rel_std = 0.10;
            p.meal_time_jitter_min = 8.0;
            p.snack_probability = 0.10;
            p.bolus_error_rel_std = 0.05;
            p.missed_bolus_probability = 0.01;
            p.ode.basal_glucose = 132.0;
            p.dawn_amplitude = 0.50;
            p.sensor_noise_std = 3.0;
        }
        // ---- Subset B (2020 cohort) ----
        (Subset::B, 0) => {
            // Shift-worker: irregular timing.
            p.meal_time_jitter_min = 60.0;
            p.meal_carbs_rel_std = 0.35;
            p.bolus_error_rel_std = 0.22;
            p.missed_bolus_probability = 0.14;
            p.ode.basal_glucose = 144.0;
            p.basal_rate = 0.75;
        }
        (Subset::B, 1) => {
            // Tight control: less-vulnerable cluster.
            p.meal_carbs_mean = 60.0;
            p.meal_carbs_rel_std = 0.12;
            p.meal_time_jitter_min = 10.0;
            p.snack_probability = 0.12;
            p.bolus_error_rel_std = 0.06;
            p.missed_bolus_probability = 0.02;
            p.ode.basal_glucose = 133.0;
            p.dawn_amplitude = 0.48;
            p.sensor_noise_std = 3.2;
        }
        (Subset::B, 2) => {
            // Tightest control of all: less-vulnerable cluster (paper's
            // highest normal:abnormal ratio in Subset B).
            p.meal_carbs_mean = 55.0;
            p.meal_carbs_rel_std = 0.08;
            p.meal_time_jitter_min = 6.0;
            p.snack_probability = 0.08;
            p.bolus_error_rel_std = 0.04;
            p.missed_bolus_probability = 0.01;
            p.ode.basal_glucose = 128.0;
            p.dawn_amplitude = 0.42;
            p.sensor_noise_std = 2.8;
        }
        (Subset::B, 3) => {
            // Insulin-sensitive but careless with boluses.
            p.ode.insulin_action = 6.0e-5;
            p.bolus_error_rel_std = 0.32;
            p.missed_bolus_probability = 0.28;
            p.meal_carbs_rel_std = 0.40;
            p.ode.basal_glucose = 146.0;
            p.meal_carbs_mean = 70.0;
            p.basal_rate = 0.75;
        }
        (Subset::B, 4) => {
            // Big appetite, high dawn phenomenon.
            p.meal_carbs_mean = 85.0;
            p.meal_carbs_rel_std = 0.35;
            p.dawn_amplitude = 0.50;
            p.bolus_error_rel_std = 0.18;
            p.missed_bolus_probability = 0.12;
            p.ode.basal_glucose = 148.0;
            p.basal_rate = 0.7;
        }
        (Subset::B, 5) => {
            // Moderate variability with frequent snacks.
            p.snack_probability = 0.55;
            p.meal_carbs_rel_std = 0.35;
            p.bolus_error_rel_std = 0.22;
            p.missed_bolus_probability = 0.12;
            p.ode.basal_glucose = 148.0;
        }
        _ => unreachable!("PatientId guarantees index <= 5"),
    }
    p.validate();
    p
}

/// All twelve built-in profiles (A_0…A_5 then B_0…B_5).
pub fn profiles() -> Vec<PatientProfile> {
    PatientId::all().into_iter().map(profile).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn twelve_unique_patients() {
        let all = PatientId::all();
        assert_eq!(all.len(), 12);
        let mut flat: Vec<usize> = all.iter().map(|p| p.flat_index()).collect();
        flat.dedup();
        assert_eq!(flat, (0..12).collect::<Vec<_>>());
    }

    #[test]
    fn display_format_matches_paper_notation() {
        assert_eq!(PatientId::new(Subset::A, 5).to_string(), "A_5");
        assert_eq!(PatientId::new(Subset::B, 0).to_string(), "B_0");
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn index_out_of_range_rejected() {
        let _ = PatientId::new(Subset::A, 6);
    }

    #[test]
    fn all_profiles_validate() {
        let ps = profiles();
        assert_eq!(ps.len(), 12);
        for p in &ps {
            p.validate();
        }
    }

    #[test]
    fn profiles_are_distinct_and_deterministic() {
        let ps = profiles();
        for i in 0..ps.len() {
            for j in i + 1..ps.len() {
                assert_ne!(ps[i], ps[j], "profiles {i} and {j} identical");
            }
        }
        assert_eq!(profile(PatientId::new(Subset::A, 3)), ps[3]);
    }

    #[test]
    fn tight_control_patients_are_more_disciplined() {
        // The designed less-vulnerable phenotypes must be strictly more
        // disciplined than the designed worst patient on every behaviour
        // axis that drives abnormal glucose.
        let worst = profile(PatientId::new(Subset::A, 2));
        for id in [
            PatientId::new(Subset::A, 5),
            PatientId::new(Subset::B, 1),
            PatientId::new(Subset::B, 2),
        ] {
            let good = profile(id);
            assert!(good.meal_carbs_rel_std < worst.meal_carbs_rel_std);
            assert!(good.bolus_error_rel_std < worst.bolus_error_rel_std);
            assert!(good.missed_bolus_probability < worst.missed_bolus_probability);
            assert!(good.ode.basal_glucose < worst.ode.basal_glucose);
        }
    }
}
