//! CGM sensor model: AR(1) correlated noise plus a slowly drifting bias,
//! clamped to the OhioT1DM reporting range (the dataset's maximum recorded
//! value, 499 mg/dL, is also the upper bound the paper's attack uses).

use rand::RngExt;

use crate::events::gaussian;

/// Reporting floor of commercial CGM sensors (mg/dL).
pub const CGM_MIN: f64 = 40.0;
/// Reporting ceiling — the highest value in OhioT1DM (mg/dL).
pub const CGM_MAX: f64 = 499.0;

/// An AR(1)-noise CGM sensor.
///
/// Each reading is `clamp(true_glucose + bias + noise)`, where `noise`
/// follows `n_t = ρ n_{t-1} + ε_t` with `ε ~ N(0, σ²(1-ρ²))` so its
/// stationary standard deviation equals the configured σ, and `bias` drifts
/// by a small random walk (sensor calibration drift).
///
/// # Examples
///
/// ```
/// use lgo_glucosim::SensorModel;
/// use rand::{rngs::StdRng, SeedableRng};
///
/// let mut sensor = SensorModel::new(4.0, 0.8);
/// let mut rng = StdRng::seed_from_u64(0);
/// let reading = sensor.read(120.0, &mut rng);
/// assert!((reading - 120.0).abs() < 40.0);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct SensorModel {
    noise_std: f64,
    rho: f64,
    state: f64,
    bias: f64,
    artifact_rate: f64,
    artifact_left: u32,
    artifact_offset: f64,
}

impl SensorModel {
    /// Per-reading probability of starting a transient artifact, the value
    /// used by the simulator for every patient (sensor property, not
    /// physiology).
    pub const DEFAULT_ARTIFACT_RATE: f64 = 0.004;

    /// Creates a sensor with stationary noise σ `noise_std` and AR(1)
    /// coefficient `rho`, with transient artifacts at the default rate.
    ///
    /// # Panics
    ///
    /// Panics if `noise_std < 0` or `rho` is outside `[0, 1)`.
    pub fn new(noise_std: f64, rho: f64) -> Self {
        Self::with_artifacts(noise_std, rho, Self::DEFAULT_ARTIFACT_RATE)
    }

    /// Creates a sensor with an explicit artifact rate (0 disables
    /// artifacts).
    ///
    /// Artifacts model the short spurious excursions real CGM sensors
    /// produce — pressure-induced "compression lows" and transient spikes —
    /// lasting one to three readings and NOT reflecting true glucose. They
    /// matter for the attack study: a forecaster personalized to a patient
    /// whose real glucose never spikes learns to discount short
    /// high-glucose runs as artifacts, which is precisely what makes such
    /// patients more resilient to short CGM manipulations.
    ///
    /// # Panics
    ///
    /// Panics if `noise_std < 0`, `rho` is outside `[0, 1)`, or
    /// `artifact_rate` is outside `[0, 1]`.
    pub fn with_artifacts(noise_std: f64, rho: f64, artifact_rate: f64) -> Self {
        assert!(noise_std >= 0.0, "SensorModel: noise_std must be >= 0");
        assert!((0.0..1.0).contains(&rho), "SensorModel: rho must be in [0, 1)");
        assert!(
            (0.0..=1.0).contains(&artifact_rate),
            "SensorModel: artifact_rate must be in [0, 1]"
        );
        Self {
            noise_std,
            rho,
            state: 0.0,
            bias: 0.0,
            artifact_rate,
            artifact_left: 0,
            artifact_offset: 0.0,
        }
    }

    /// Produces a reading of `true_glucose`, advancing the noise state.
    pub fn read<R: RngExt + ?Sized>(&mut self, true_glucose: f64, rng: &mut R) -> f64 {
        let innovation_std = self.noise_std * (1.0 - self.rho * self.rho).sqrt();
        self.state = self.rho * self.state + gaussian(rng) * innovation_std;
        // Calibration drift: tiny random walk, pulled back toward zero.
        self.bias = 0.999 * self.bias + gaussian(rng) * 0.02;
        // Transient artifacts: spikes up (sensor glitch) or down
        // (compression low) lasting 1-3 readings.
        let mut artifact = 0.0;
        if self.artifact_left > 0 {
            self.artifact_left -= 1;
            artifact = self.artifact_offset;
        } else if self.artifact_rate > 0.0 && rng.random_range(0.0..1.0) < self.artifact_rate {
            self.artifact_left = rng.random_range(0..3u32);
            let up = rng.random_range(0.0..1.0) < 0.6;
            // Upward glitches span the whole reporting range (sensor
            // electronics faults rail high); compression lows are milder.
            let magnitude = rng.random_range(50.0..380.0);
            self.artifact_offset = if up { magnitude } else { -magnitude * 0.25 };
            artifact = self.artifact_offset;
        }
        (true_glucose + self.state + self.bias + artifact).clamp(CGM_MIN, CGM_MAX)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{rngs::StdRng, SeedableRng};

    #[test]
    fn noiseless_sensor_is_identity_within_range() {
        let mut s = SensorModel::with_artifacts(0.0, 0.5, 0.0);
        let mut rng = StdRng::seed_from_u64(0);
        assert!((s.read(150.0, &mut rng) - 150.0).abs() < 0.1);
    }

    #[test]
    fn readings_clamped_to_range() {
        let mut s = SensorModel::with_artifacts(5.0, 0.8, 0.0);
        let mut rng = StdRng::seed_from_u64(1);
        assert_eq!(s.read(10.0, &mut rng), CGM_MIN);
        assert_eq!(s.read(800.0, &mut rng), CGM_MAX);
    }

    #[test]
    fn artifacts_produce_transient_excursions() {
        let mut s = SensorModel::with_artifacts(0.0, 0.5, 0.05);
        let mut rng = StdRng::seed_from_u64(7);
        let readings: Vec<f64> = (0..4000).map(|_| s.read(120.0, &mut rng)).collect();
        let excursions = readings.iter().filter(|&&r| (r - 120.0).abs() > 40.0).count();
        // ~5% starts × mean length ~2 -> ~8-12% of samples inside artifacts.
        assert!(excursions > 100, "only {excursions} artifact readings");
        assert!(excursions < 1200, "too many artifact readings: {excursions}");
        // Both directions occur.
        assert!(readings.iter().any(|&r| r > 160.0));
        assert!(readings.iter().any(|&r| r < 90.0));
    }

    #[test]
    fn zero_artifact_rate_disables_artifacts() {
        let mut s = SensorModel::with_artifacts(0.0, 0.5, 0.0);
        let mut rng = StdRng::seed_from_u64(9);
        // Only the slow calibration-drift random walk remains (a few mg/dL).
        assert!((0..2000).all(|_| (s.read(120.0, &mut rng) - 120.0).abs() < 10.0));
    }

    #[test]
    fn stationary_std_matches_configuration() {
        let mut s = SensorModel::with_artifacts(6.0, 0.8, 0.0);
        let mut rng = StdRng::seed_from_u64(2);
        let readings: Vec<f64> = (0..20000).map(|_| s.read(200.0, &mut rng) - 200.0).collect();
        let mean = readings.iter().sum::<f64>() / readings.len() as f64;
        let var = readings.iter().map(|r| (r - mean) * (r - mean)).sum::<f64>()
            / readings.len() as f64;
        let std = var.sqrt();
        assert!(
            (std - 6.0).abs() < 1.0,
            "stationary std {std} far from configured 6.0"
        );
    }

    #[test]
    fn noise_is_autocorrelated() {
        let mut s = SensorModel::with_artifacts(5.0, 0.9, 0.0);
        let mut rng = StdRng::seed_from_u64(3);
        let readings: Vec<f64> = (0..5000).map(|_| s.read(100.0, &mut rng) - 100.0).collect();
        // Lag-1 autocorrelation should be near rho.
        let mean = readings.iter().sum::<f64>() / readings.len() as f64;
        let mut num = 0.0;
        let mut den = 0.0;
        for i in 1..readings.len() {
            num += (readings[i] - mean) * (readings[i - 1] - mean);
        }
        for r in &readings {
            den += (r - mean) * (r - mean);
        }
        let ac = num / den;
        assert!(ac > 0.7, "lag-1 autocorrelation {ac} too low for rho=0.9");
    }

    #[test]
    #[should_panic(expected = "rho")]
    fn invalid_rho_rejected() {
        let _ = SensorModel::new(1.0, 1.0);
    }
}
