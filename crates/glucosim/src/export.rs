//! CSV export of simulated series — lets downstream users inspect the
//! synthetic cohort with standard tooling or feed it to external models.

use std::io::{self, Write};

use lgo_series::MultiSeries;

/// Writes a series as CSV: a header row of channel names, then one row per
/// 5-minute sample.
///
/// The writer can be a `File`, a `Vec<u8>`, or anything else implementing
/// [`Write`] (pass `&mut w` to keep ownership).
///
/// # Errors
///
/// Propagates any I/O error from the writer.
///
/// # Examples
///
/// ```
/// use lgo_glucosim::{profile, to_csv, PatientId, Simulator, Subset};
///
/// # fn main() -> std::io::Result<()> {
/// let series = Simulator::new(profile(PatientId::new(Subset::A, 0))).run_days(1);
/// let mut buf = Vec::new();
/// to_csv(&series, &mut buf)?;
/// let text = String::from_utf8(buf).expect("utf8");
/// assert!(text.starts_with("cgm,finger,basal"));
/// assert_eq!(text.lines().count(), 1 + 288);
/// # Ok(())
/// # }
/// ```
pub fn to_csv<W: Write>(series: &MultiSeries, mut writer: W) -> io::Result<()> {
    writeln!(writer, "{}", series.names().join(","))?;
    for row in series.rows() {
        let mut first = true;
        for v in row {
            if !first {
                write!(writer, ",")?;
            }
            first = false;
            // Trim trailing zeros without scientific notation surprises.
            // lint: allow(L4): fract() == 0.0 is the exact integrality test, not a tolerance check
            if v.fract() == 0.0 && v.abs() < 1e15 {
                write!(writer, "{}", *v as i64)?;
            } else {
                write!(writer, "{v:.4}")?;
            }
        }
        writeln!(writer)?;
    }
    Ok(())
}

/// Parses a CSV produced by [`to_csv`] back into a [`MultiSeries`].
///
/// # Errors
///
/// Returns `io::ErrorKind::InvalidData` on an empty input, ragged rows, or
/// unparseable numbers.
pub fn from_csv(text: &str) -> io::Result<MultiSeries> {
    let mut lines = text.lines();
    let header = lines
        .next()
        .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidData, "empty csv"))?;
    let names: Vec<&str> = header.split(',').collect();
    let mut series = MultiSeries::new(&names);
    for (i, line) in lines.enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        let row: Result<Vec<f64>, _> = line.split(',').map(str::parse::<f64>).collect();
        let row = row.map_err(|e| {
            io::Error::new(io::ErrorKind::InvalidData, format!("row {i}: {e}"))
        })?;
        if row.len() != names.len() {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("row {i}: {} fields for {} channels", row.len(), names.len()),
            ));
        }
        series.push_row(&row);
    }
    Ok(series)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::{profile, PatientId, Subset};
    use crate::sim::Simulator;

    #[test]
    fn csv_round_trip() {
        let series = Simulator::new(profile(PatientId::new(Subset::B, 1))).run_days(1);
        let mut buf = Vec::new();
        to_csv(&series, &mut buf).expect("write to vec");
        let text = String::from_utf8(buf).expect("utf8");
        let parsed = from_csv(&text).expect("parse back");
        assert_eq!(parsed.names(), series.names());
        assert_eq!(parsed.len(), series.len());
        // Values survive within the printed precision.
        for (a, b) in parsed.rows().iter().zip(series.rows()) {
            for (x, y) in a.iter().zip(b) {
                assert!((x - y).abs() < 1e-3, "{x} vs {y}");
            }
        }
    }

    #[test]
    fn from_csv_rejects_garbage() {
        assert!(from_csv("").is_err());
        assert!(from_csv("a,b\n1,2,3\n").is_err());
        assert!(from_csv("a,b\n1,notanumber\n").is_err());
    }

    #[test]
    fn from_csv_skips_blank_lines() {
        let s = from_csv("x\n1\n\n2\n").expect("parse");
        assert_eq!(s.len(), 2);
    }
}
