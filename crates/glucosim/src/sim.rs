//! The simulator loop: integrates the physiology minute-by-minute, applies
//! the behavioural events, and samples the sensor channels every five
//! minutes — the cadence of the OhioT1DM dataset.

use lgo_series::MultiSeries;
use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::events::{gaussian, DailyEvents, EventKind};
use crate::ode::PhysioState;
use crate::params::PatientProfile;
use crate::sensor::SensorModel;

/// Minutes between samples (OhioT1DM cadence).
pub const STEP_MINUTES: usize = 5;
/// Samples per simulated day.
pub const SAMPLES_PER_DAY: usize = 24 * 60 / STEP_MINUTES;

/// The channels every simulated series carries, in column order:
///
/// - `cgm` — continuous glucose monitor reading (mg/dL),
/// - `finger` — finger-stick glucose (mg/dL; 0 when not taken),
/// - `basal` — basal insulin rate (U/hr),
/// - `bolus` — bolus insulin delivered in the interval (U),
/// - `carbs` — carbohydrates *logged to the app* in the interval (g);
///   unannounced intake moves the physiology but not this channel,
/// - `heart_rate` — heart rate (bpm),
/// - `steps` — step count in the interval,
/// - `sleep` — 1.0 while asleep,
/// - `fasting` — 1.0 when ≥ 2 h have passed since the last meal (the paper's
///   fasting/postprandial distinction for hyperglycemia thresholds),
/// - `glucose_true` — the latent noise-free plasma glucose (mg/dL), kept for
///   evaluation only (a real BGMS never sees it),
/// - `carbs_actual` — all carbohydrates ingested in the interval (g),
///   including unannounced intake; like `glucose_true`, analysis-only.
pub const CHANNELS: [&str; 11] = [
    "cgm",
    "finger",
    "basal",
    "bolus",
    "carbs",
    "heart_rate",
    "steps",
    "sleep",
    "fasting",
    "glucose_true",
    "carbs_actual",
];

/// A deterministic patient simulator.
///
/// Two `Simulator`s built from the same profile produce identical series;
/// the profile's seed fixes all behavioural and sensor randomness.
///
/// # Examples
///
/// ```
/// use lgo_glucosim::{profile, PatientId, Simulator, Subset};
///
/// let sim = Simulator::new(profile(PatientId::new(Subset::B, 2)));
/// let a = sim.run_days(1);
/// let b = sim.run_days(1);
/// assert_eq!(a, b);
/// ```
#[derive(Debug, Clone)]
pub struct Simulator {
    profile: PatientProfile,
}

impl Simulator {
    /// Creates a simulator for one patient profile.
    ///
    /// # Panics
    ///
    /// Panics if the profile fails validation.
    pub fn new(profile: PatientProfile) -> Self {
        profile.validate();
        Self { profile }
    }

    /// The simulated patient's profile.
    pub fn profile(&self) -> &PatientProfile {
        &self.profile
    }

    /// Simulates `days` days at 5-minute cadence using the profile's seed.
    ///
    /// A 24-hour warm-up day is simulated (and discarded) first so the
    /// returned series starts from realistic, not resting, physiology.
    ///
    /// # Panics
    ///
    /// Panics if `days == 0`.
    pub fn run_days(&self, days: usize) -> MultiSeries {
        self.run_days_with_seed(days, self.profile.seed)
    }

    /// Like [`Self::run_days`] but with an explicit seed, for generating
    /// independent replicas of the same phenotype.
    ///
    /// # Panics
    ///
    /// Panics if `days == 0`.
    pub fn run_days_with_seed(&self, days: usize, seed: u64) -> MultiSeries {
        assert!(days > 0, "run_days: need at least one day");
        let p = &self.profile;
        let mut rng = StdRng::seed_from_u64(seed);
        let mut state = PhysioState::at_rest(&p.ode);
        let mut sensor = SensorModel::new(p.sensor_noise_std, 0.85);
        let mut series = MultiSeries::new(&CHANNELS);

        // Pending inputs: (remaining minutes, per-minute rate).
        let mut carb_queue: Vec<(u32, f64)> = Vec::new();
        let mut bolus_queue: Vec<(u32, f64)> = Vec::new();
        let mut exercise_until: i64 = -1;
        let mut exercise_intensity = 1.0;
        let mut minutes_since_meal: u32 = 600; // wake up fasting

        // Interval accumulators for the sampled channels.
        let mut logged_carbs_interval = 0.0;
        let mut carbs_interval = 0.0;
        let mut bolus_interval = 0.0;
        let mut steps_interval = 0.0;

        let total_days = days + 1; // warm-up day discarded
        for day in 0..total_days {
            let events = DailyEvents::generate(p, &mut rng);
            let mut next_event = 0usize;
            for minute in 0..24 * 60u32 {
                let abs_minute = day as i64 * 1440 + minute as i64;
                // Fire events scheduled for this minute.
                while next_event < events.len() && events.events()[next_event].minute == minute {
                    match events.events()[next_event].kind {
                        EventKind::Meal { carbs, bolus, logged } => {
                            carb_queue.push((10, carbs / 10.0));
                            if logged {
                                logged_carbs_interval += carbs;
                            }
                            if bolus > 0.0 {
                                // Subcutaneous absorption: nothing reaches
                                // plasma for ~15 min, then delivery is spread
                                // over 30 min. This lag is what produces the
                                // realistic postprandial spike.
                                bolus_queue.push((45, bolus / 30.0));
                            }
                            minutes_since_meal = 0;
                        }
                        EventKind::Exercise {
                            duration_min,
                            intensity,
                        } => {
                            exercise_until = abs_minute + duration_min as i64;
                            exercise_intensity = intensity;
                        }
                    }
                    next_event += 1;
                }

                let carbs_in: f64 = carb_queue.iter().map(|&(_, r)| r).sum();
                // Boluses deliver only during the last 30 minutes of their
                // countdown (the first 15 are the subcutaneous delay).
                let bolus_in: f64 = bolus_queue
                    .iter()
                    .filter(|&&(rem, _)| rem <= 30)
                    .map(|&(_, r)| r)
                    .sum();
                carb_queue.retain_mut(|e| {
                    e.0 -= 1;
                    e.0 > 0
                });
                bolus_queue.retain_mut(|e| {
                    e.0 -= 1;
                    e.0 > 0
                });

                let exercising = abs_minute < exercise_until;
                // Insulin sensitivity: full boost during the session, then a
                // linear "afterburn" decay over three hours — the classic
                // mechanism behind post-exercise (often nocturnal) hypos.
                let sensitivity = if exercising {
                    exercise_intensity
                } else if exercise_until > 0 && abs_minute < exercise_until + 180 {
                    let frac = (abs_minute - exercise_until) as f64 / 180.0;
                    1.0 + (exercise_intensity - 1.0) * (1.0 - frac)
                } else {
                    1.0
                };
                // Dawn phenomenon: Gaussian bump centred on 05:00.
                let dawn = p.dawn_amplitude
                    * (-((minute as f64 - 300.0) / 90.0).powi(2)).exp();
                let basal_u_per_min = p.basal_rate / 60.0;

                state.step(
                    &p.ode,
                    1.0,
                    carbs_in,
                    basal_u_per_min + bolus_in,
                    dawn,
                    sensitivity,
                );

                carbs_interval += carbs_in;
                bolus_interval += bolus_in;
                let sleeping = !(420..1380).contains(&minute); // 23:00-07:00
                steps_interval += if exercising {
                    120.0 + gaussian(&mut rng).abs() * 30.0
                } else if sleeping {
                    0.0
                } else {
                    8.0 + gaussian(&mut rng).abs() * 10.0
                };
                minutes_since_meal = minutes_since_meal.saturating_add(1);

                // Sample every five minutes.
                if (minute + 1) % STEP_MINUTES as u32 == 0 {
                    if day > 0 {
                        let cgm = sensor.read(state.glucose, &mut rng);
                        // Finger sticks: before meals and at bedtime (~4/day).
                        let finger = if matches!(minute + 1, 440 | 740 | 1100 | 1340) {
                            (state.glucose + gaussian(&mut rng) * 2.0).clamp(40.0, 499.0)
                        } else {
                            0.0
                        };
                        let circadian_hr = 4.0 * ((minute as f64 / 1440.0) * std::f64::consts::TAU - 2.0).sin();
                        let hr = if exercising {
                            p.resting_heart_rate + 50.0 + gaussian(&mut rng) * 5.0
                        } else if sleeping {
                            p.resting_heart_rate - 8.0 + circadian_hr + gaussian(&mut rng) * 2.0
                        } else {
                            p.resting_heart_rate + circadian_hr + gaussian(&mut rng) * 3.0
                        };
                        let fasting = if minutes_since_meal >= 120 { 1.0 } else { 0.0 };
                        series.push_row(&[
                            cgm,
                            finger,
                            p.basal_rate,
                            bolus_interval,
                            logged_carbs_interval,
                            hr.max(35.0),
                            steps_interval,
                            if sleeping { 1.0 } else { 0.0 },
                            fasting,
                            state.glucose,
                            carbs_interval,
                        ]);
                    } else {
                        // Warm-up day: advance the sensor RNG identically but
                        // discard the sample so day boundaries stay aligned.
                        let _ = sensor.read(state.glucose, &mut rng);
                    }
                    carbs_interval = 0.0;
                    logged_carbs_interval = 0.0;
                    bolus_interval = 0.0;
                    steps_interval = 0.0;
                }
            }
        }
        debug_assert_eq!(series.len(), days * SAMPLES_PER_DAY);
        series
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::{profile, profiles, PatientId, Subset};

    fn run(id: PatientId, days: usize) -> MultiSeries {
        Simulator::new(profile(id)).run_days(days)
    }

    #[test]
    fn sample_count_and_channels() {
        let s = run(PatientId::new(Subset::A, 0), 3);
        assert_eq!(s.len(), 3 * SAMPLES_PER_DAY);
        assert_eq!(s.width(), CHANNELS.len());
        for ch in CHANNELS {
            assert!(s.channel_index(ch).is_some(), "missing channel {ch}");
        }
    }

    #[test]
    fn deterministic_per_profile() {
        let a = run(PatientId::new(Subset::B, 3), 2);
        let b = run(PatientId::new(Subset::B, 3), 2);
        assert_eq!(a, b);
    }

    #[test]
    fn different_seeds_differ() {
        let sim = Simulator::new(profile(PatientId::new(Subset::A, 1)));
        let a = sim.run_days_with_seed(1, 1);
        let b = sim.run_days_with_seed(1, 2);
        assert_ne!(a, b);
    }

    #[test]
    fn cgm_within_sensor_range_and_finite() {
        for p in profiles() {
            let s = Simulator::new(p).run_days(2);
            assert!(!s.has_non_finite());
            for &g in &s.channel("cgm").unwrap() {
                assert!((40.0..=499.0).contains(&g), "cgm out of range: {g}");
            }
        }
    }

    #[test]
    fn glucose_dynamics_are_alive() {
        // Glucose must actually vary across the day (meals) — a flat line
        // would mean events are not wired into the ODE.
        let s = run(PatientId::new(Subset::A, 0), 3);
        let cgm = s.channel("cgm").unwrap();
        let max = cgm.iter().cloned().fold(f64::MIN, f64::max);
        let min = cgm.iter().cloned().fold(f64::MAX, f64::min);
        assert!(max - min > 60.0, "glucose range only {}", max - min);
    }

    #[test]
    fn meals_raise_glucose_in_following_hour() {
        let s = run(PatientId::new(Subset::A, 0), 5);
        let glucose = s.channel("glucose_true").unwrap();
        let carbs = s.channel("carbs").unwrap();
        let mut rises = 0;
        let mut meals = 0;
        for t in 1..s.len().saturating_sub(14) {
            // Meal onset: carbs appear after an empty interval (the meal may
            // straddle two sampling intervals, so sum the pair).
            if carbs[t] > 0.0 && carbs[t] + carbs[t + 1] > 15.0 && carbs[t - 1] == 0.0 {
                meals += 1;
                // Peak within the following hour must exceed the level at
                // meal time (insulin absorbs slower than carbs).
                let peak = glucose[t..t + 13].iter().cloned().fold(f64::MIN, f64::max);
                if peak > glucose[t] + 5.0 {
                    rises += 1;
                }
            }
        }
        assert!(meals >= 10, "only {meals} meals detected");
        assert!(
            rises * 10 >= meals * 7,
            "postprandial rise in only {rises}/{meals} meals"
        );
    }

    #[test]
    fn sleep_and_fasting_flags_are_binary_and_plausible() {
        let s = run(PatientId::new(Subset::B, 5), 2);
        let sleep = s.channel("sleep").unwrap();
        let fasting = s.channel("fasting").unwrap();
        assert!(sleep.iter().all(|&v| v == 0.0 || v == 1.0));
        assert!(fasting.iter().all(|&v| v == 0.0 || v == 1.0));
        let sleep_frac = sleep.iter().sum::<f64>() / sleep.len() as f64;
        assert!(
            (0.2..0.5).contains(&sleep_frac),
            "sleep fraction {sleep_frac}"
        );
        // Patients fast overnight, so a sizable fraction of samples is fasting.
        let fast_frac = fasting.iter().sum::<f64>() / fasting.len() as f64;
        assert!(fast_frac > 0.2, "fasting fraction {fast_frac}");
    }

    #[test]
    fn finger_sticks_are_sparse() {
        let s = run(PatientId::new(Subset::A, 4), 4);
        let finger = s.channel("finger").unwrap();
        let taken = finger.iter().filter(|&&v| v > 0.0).count();
        assert_eq!(taken, 4 * 4, "expected 4 finger sticks per day");
    }

    #[test]
    fn tight_controller_has_higher_normal_ratio_than_erratic() {
        // The core design requirement: A_5 (tight control) must show a
        // higher benign normal:abnormal ratio than A_2 (erratic), because
        // that ordering is what drives the paper's entire Figure 4.
        let ratio = |id: PatientId| -> f64 {
            let s = run(id, 7);
            let cgm = s.channel("cgm").unwrap();
            let fasting = s.channel("fasting").unwrap();
            let mut normal = 0.0f64;
            let mut abnormal = 0.0f64;
            for (g, f) in cgm.iter().zip(&fasting) {
                let hyper_threshold = if *f == 1.0 { 125.0 } else { 180.0 };
                if *g < 70.0 || *g > hyper_threshold {
                    abnormal += 1.0;
                } else {
                    normal += 1.0;
                }
            }
            normal / abnormal.max(1.0)
        };
        let tight = ratio(PatientId::new(Subset::A, 5));
        let erratic = ratio(PatientId::new(Subset::A, 2));
        assert!(
            tight > 2.0 * erratic,
            "normal:abnormal ratios too close: tight {tight:.2} vs erratic {erratic:.2}"
        );
    }

    #[test]
    #[should_panic(expected = "at least one day")]
    fn zero_days_rejected() {
        let _ = run(PatientId::new(Subset::A, 0), 0);
    }
}
