//! Streaming cohort generation for arbitrarily large synthetic populations.
//!
//! The batch entry points ([`crate::generate_cohort_sized`]) materialize
//! every patient's full dataset up front — fine for the paper's 12-patient
//! reproduction, hopeless for a serving benchmark that drives 100 000+
//! streams. [`CohortStream`] instead *yields* one simulated patient at a
//! time: nothing is retained between `next()` calls, so the stream's own
//! memory footprint is O(1) in the cohort size and a driver can feed
//! patients into a scoring service as fast as it consumes them.
//!
//! Scale beyond the twelve built-in profiles comes from
//! [`synthetic_profile`]: patient `i` specializes archetype `i % 12` with
//! bounded, deterministic parameter jitter derived from
//! `lgo_runtime::split_seed(base_seed, i)`. Two streams with the same
//! `(count, days, base_seed)` are identical patient for patient, and the
//! per-patient seeds are schedule-independent, so a parallel driver can
//! regenerate any patient by index.

use lgo_runtime::split_seed;
use lgo_series::MultiSeries;

use crate::params::{profiles, PatientProfile};
use crate::sim::Simulator;

/// One lazily generated synthetic patient.
#[derive(Debug, Clone)]
pub struct StreamedPatient {
    /// Position in the stream — the patient's identity at cohort scale
    /// (the 12-value [`crate::PatientId`] space is the archetype label,
    /// not the identity, once cohorts outgrow the paper's twelve).
    pub index: u64,
    /// The jittered archetype this patient was simulated from.
    pub profile: PatientProfile,
    /// The simulated multivariate series (all simulator channels).
    pub series: MultiSeries,
}

/// A lazy, deterministic iterator over a synthetic cohort of any size.
///
/// # Examples
///
/// ```
/// use lgo_glucosim::CohortStream;
///
/// let mut stream = CohortStream::new(3, 1, 0xC0FFEE);
/// let first = stream.next().unwrap();
/// assert_eq!(first.index, 0);
/// assert_eq!(first.series.len(), 288); // one day at 5-minute cadence
/// assert_eq!(stream.count(), 2); // lazily yields the remaining two
/// ```
#[derive(Debug, Clone)]
pub struct CohortStream {
    base_seed: u64,
    days: usize,
    next: u64,
    count: u64,
}

impl CohortStream {
    /// A stream of `count` patients, each simulated for `days` days, with
    /// all per-patient randomness derived from `base_seed`.
    ///
    /// # Panics
    ///
    /// Panics if `days == 0`; a zero-length simulation has no samples to
    /// serve.
    #[must_use]
    pub fn new(count: u64, days: usize, base_seed: u64) -> Self {
        assert!(days > 0, "CohortStream: days must be positive");
        Self { base_seed, days, next: 0, count }
    }

    /// How many patients are still to come.
    #[must_use]
    pub fn remaining(&self) -> u64 {
        self.count - self.next
    }

    /// Regenerates the patient at `index` without advancing the stream —
    /// the random-access twin of `next()`, for parallel drivers that
    /// partition the index space.
    #[must_use]
    pub fn patient(&self, index: u64) -> StreamedPatient {
        let profile = synthetic_profile(index, self.base_seed);
        let series = Simulator::new(profile.clone()).run_days(self.days);
        StreamedPatient { index, profile, series }
    }
}

impl Iterator for CohortStream {
    type Item = StreamedPatient;

    fn next(&mut self) -> Option<StreamedPatient> {
        if self.next >= self.count {
            return None;
        }
        let p = self.patient(self.next);
        self.next += 1;
        Some(p)
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let n = usize::try_from(self.remaining()).unwrap_or(usize::MAX);
        (n, Some(n))
    }
}

/// A uniform draw in `[0, 1)` from one `split_seed` stream — enough
/// resolution for parameter jitter without dragging in a full RNG.
fn unit(seed: u64, stream: u64) -> f64 {
    (split_seed(seed, stream) >> 11) as f64 / (1u64 << 53) as f64
}

/// Multiplicative jitter: `value` scaled by `1 ± rel`, uniformly.
fn jitter(value: f64, seed: u64, stream: u64, rel: f64) -> f64 {
    value * (1.0 + (unit(seed, stream) - 0.5) * 2.0 * rel)
}

/// Derives the deterministic profile of synthetic patient `index`.
///
/// The patient specializes archetype `index % 12` (the twelve built-in
/// profiles, which span the paper's tight-control-to-erratic phenotype
/// axis) with bounded multiplicative jitter on the behavioural and sensor
/// parameters, so a million-patient cohort keeps the cohort-level
/// heterogeneity structure while no two patients are identical. All
/// randomness — the jitter and the patient's simulation seed — derives
/// from `split_seed(base_seed, index)`, so the profile is a pure function
/// of `(index, base_seed)`.
#[must_use]
pub fn synthetic_profile(index: u64, base_seed: u64) -> PatientProfile {
    let archetypes = profiles();
    let mut p = archetypes[(index % archetypes.len() as u64) as usize].clone();
    let seed = split_seed(base_seed, index);
    p.seed = seed;
    // Bounded jitter keeps every parameter well inside the validated
    // physiological ranges the archetypes already satisfy.
    p.meal_carbs_mean = jitter(p.meal_carbs_mean, seed, 1, 0.15);
    p.meal_carbs_rel_std = jitter(p.meal_carbs_rel_std, seed, 2, 0.20);
    p.meal_time_jitter_min = jitter(p.meal_time_jitter_min, seed, 3, 0.20);
    p.snack_probability = jitter(p.snack_probability, seed, 4, 0.25).clamp(0.0, 1.0);
    p.insulin_carb_ratio = jitter(p.insulin_carb_ratio, seed, 5, 0.10);
    p.bolus_error_rel_std = jitter(p.bolus_error_rel_std, seed, 6, 0.20);
    p.missed_bolus_probability =
        jitter(p.missed_bolus_probability, seed, 7, 0.25).clamp(0.0, 1.0);
    p.basal_rate = jitter(p.basal_rate, seed, 8, 0.10);
    p.dawn_amplitude = jitter(p.dawn_amplitude, seed, 9, 0.20);
    p.exercise_probability = jitter(p.exercise_probability, seed, 10, 0.25).clamp(0.0, 1.0);
    p.sensor_noise_std = jitter(p.sensor_noise_std, seed, 11, 0.20);
    // ±5 % keeps basal glucose inside the ODE validator's (40, 250) band
    // for every archetype (128–150 mg/dL).
    p.ode.basal_glucose = jitter(p.ode.basal_glucose, seed, 12, 0.05);
    p.validate();
    p
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stream_is_deterministic_per_index() {
        let a: Vec<StreamedPatient> = CohortStream::new(4, 1, 7).collect();
        let b: Vec<StreamedPatient> = CohortStream::new(4, 1, 7).collect();
        assert_eq!(a.len(), 4);
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.index, y.index);
            assert_eq!(x.profile, y.profile);
            assert_eq!(x.series.rows(), y.series.rows());
        }
    }

    #[test]
    fn random_access_matches_iteration() {
        let stream = CohortStream::new(10, 1, 99);
        let third = stream.patient(3);
        let from_iter = CohortStream::new(10, 1, 99).nth(3).unwrap();
        assert_eq!(third.profile, from_iter.profile);
        assert_eq!(third.series.rows(), from_iter.series.rows());
    }

    #[test]
    fn base_seed_changes_every_patient() {
        let a = synthetic_profile(5, 1);
        let b = synthetic_profile(5, 2);
        assert_eq!(a.id, b.id, "same archetype");
        assert_ne!(a, b, "different base seed must change the jitter");
    }

    #[test]
    fn synthetic_profiles_are_distinct_and_valid() {
        // Far beyond the 12 archetypes: every profile validates and
        // differs from its archetype and from its same-archetype sibling.
        let archetypes = profiles();
        for i in 0..100u64 {
            let p = synthetic_profile(i, 0xFEED);
            p.validate();
            let arch = &archetypes[(i % 12) as usize];
            assert_eq!(p.id, arch.id);
            assert_ne!(&p, arch, "patient {i} identical to its archetype");
            if i >= 12 {
                assert_ne!(
                    p,
                    synthetic_profile(i - 12, 0xFEED),
                    "patient {i} identical to its same-archetype sibling"
                );
            }
        }
    }

    #[test]
    fn stream_counts_and_laziness() {
        let mut s = CohortStream::new(1000, 1, 3);
        assert_eq!(s.remaining(), 1000);
        assert_eq!(s.size_hint(), (1000, Some(1000)));
        // Consuming three patients costs three simulations, not a
        // thousand; `remaining` tracks the lazy cursor.
        for want in 0..3 {
            assert_eq!(s.next().unwrap().index, want);
        }
        assert_eq!(s.remaining(), 997);
    }

    #[test]
    #[should_panic(expected = "days must be positive")]
    fn zero_days_rejected() {
        let _ = CohortStream::new(1, 0, 0);
    }
}
