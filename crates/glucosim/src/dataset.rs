//! Cohort dataset generation: per-patient train/test series matching the
//! OhioT1DM footprint (≈10 000 training and ≈2 500 test samples per patient
//! at 5-minute cadence).

use lgo_series::MultiSeries;

use crate::params::{profiles, PatientProfile};
use crate::sim::{Simulator, SAMPLES_PER_DAY};

/// Training days per patient (35 days × 288 samples = 10 080 ≈ the paper's
/// ~10 000 training samples).
const TRAIN_DAYS: usize = 35;
/// Test days per patient (9 days × 288 samples = 2 592 ≈ the paper's ~2 500).
const TEST_DAYS: usize = 9;

/// One patient's simulated data, split chronologically.
#[derive(Debug, Clone)]
pub struct PatientDataset {
    /// The patient's profile (includes the id).
    pub profile: PatientProfile,
    /// Training series (chronologically first).
    pub train: MultiSeries,
    /// Test series (chronologically after training).
    pub test: MultiSeries,
}

impl PatientDataset {
    /// Generates one patient's dataset with the given day counts.
    ///
    /// Train and test are cut from one continuous simulation so the test
    /// period really is the patient's future, exactly like the OhioT1DM
    /// protocol.
    ///
    /// # Panics
    ///
    /// Panics if either day count is zero.
    pub fn generate(profile: PatientProfile, train_days: usize, test_days: usize) -> Self {
        assert!(train_days > 0 && test_days > 0, "PatientDataset: zero days");
        let sim = Simulator::new(profile.clone());
        let full = sim.run_days(train_days + test_days);
        let cut = train_days * SAMPLES_PER_DAY;
        let train = full.slice(0, cut);
        let test = full.slice(cut, full.len());
        Self {
            profile,
            train,
            test,
        }
    }
}

/// Generates the full 12-patient cohort at the paper's scale
/// (≈10 000 train + ≈2 500 test samples per patient).
pub fn generate_cohort() -> Vec<PatientDataset> {
    generate_cohort_sized(TRAIN_DAYS, TEST_DAYS)
}

/// Generates the cohort with custom train/test day counts — smaller sizes
/// keep unit tests and examples fast.
///
/// # Panics
///
/// Panics if either day count is zero.
pub fn generate_cohort_sized(train_days: usize, test_days: usize) -> Vec<PatientDataset> {
    // Each patient's simulation is seeded from their own profile, so the
    // per-patient fan-out over the lgo-runtime pool is bit-identical to
    // the serial loop it replaces.
    let profiles = profiles();
    lgo_runtime::par_map(&profiles, |p| {
        PatientDataset::generate(p.clone(), train_days, test_days)
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::{profile, PatientId, Subset};

    #[test]
    fn split_is_chronological_and_sized() {
        let d = PatientDataset::generate(profile(PatientId::new(Subset::A, 0)), 3, 1);
        assert_eq!(d.train.len(), 3 * SAMPLES_PER_DAY);
        assert_eq!(d.test.len(), SAMPLES_PER_DAY);
        // Continuity: train+test equals the full simulation.
        let full = Simulator::new(d.profile.clone()).run_days(4);
        assert_eq!(d.train.rows(), &full.rows()[..3 * SAMPLES_PER_DAY]);
        assert_eq!(d.test.rows(), &full.rows()[3 * SAMPLES_PER_DAY..]);
    }

    #[test]
    fn small_cohort_has_twelve_patients() {
        let cohort = generate_cohort_sized(1, 1);
        assert_eq!(cohort.len(), 12);
        let mut ids: Vec<String> = cohort.iter().map(|d| d.profile.id.to_string()).collect();
        ids.dedup();
        assert_eq!(ids.len(), 12);
    }

    #[test]
    fn full_scale_matches_paper_footprint() {
        // Only check the arithmetic, not an actual full simulation.
        assert_eq!(TRAIN_DAYS * SAMPLES_PER_DAY, 10_080);
        assert_eq!(TEST_DAYS * SAMPLES_PER_DAY, 2_592);
    }

    #[test]
    #[should_panic(expected = "zero days")]
    fn zero_days_rejected() {
        let _ = PatientDataset::generate(profile(PatientId::new(Subset::A, 0)), 0, 1);
    }
}
