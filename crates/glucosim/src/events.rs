//! Behavioural event generation: meals, boluses, snacks and exercise,
//! drawn per-day from the patient profile's distributions.

use rand::RngExt;

use crate::params::PatientProfile;

/// What happened at a particular minute of the day.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum EventKind {
    /// Carbohydrate intake (g), spread over the following ~10 minutes.
    Meal {
        /// Grams of carbohydrate ingested.
        carbs: f64,
        /// Units of insulin bolused for the meal (0 when forgotten).
        bolus: f64,
        /// Whether the meal was announced to the app (logged in the carbs
        /// channel). Unannounced intake still moves the physiology but is
        /// invisible to the forecaster — the main reason undisciplined
        /// patients' glucose rises look "unexplained" to their models.
        logged: bool,
    },
    /// An exercise session.
    Exercise {
        /// Duration in minutes.
        duration_min: u32,
        /// Intensity multiplier on insulin sensitivity (>1).
        intensity: f64,
    },
}

/// An event pinned to a minute-of-day.
#[derive(Debug, Clone, PartialEq)]
pub struct Event {
    /// Minute of the day in `0..1440`.
    pub minute: u32,
    /// What happened.
    pub kind: EventKind,
}

/// One day's worth of scheduled events, sorted by minute.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct DailyEvents {
    events: Vec<Event>,
}

impl DailyEvents {
    /// The scheduled events, sorted by minute.
    pub fn events(&self) -> &[Event] {
        &self.events
    }

    /// Number of events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether the day is empty (never true for generated days — there are
    /// always three main meals).
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Generates a day of events for `profile` using `rng`.
    ///
    /// Three main meals (around 07:30, 12:30, 18:30) with per-patient timing
    /// jitter and size variability; optional snack; optional exercise
    /// session. Boluses follow the insulin-to-carb ratio perturbed by the
    /// patient's carb-counting error and are omitted entirely with the
    /// profile's missed-bolus probability.
    pub fn generate<R: RngExt + ?Sized>(profile: &PatientProfile, rng: &mut R) -> DailyEvents {
        let mut events = Vec::new();
        const MAIN_MEALS: [f64; 3] = [450.0, 750.0, 1110.0]; // minutes of day
        for &nominal in &MAIN_MEALS {
            let minute = jitter_minute(nominal, profile.meal_time_jitter_min, rng);
            let carbs = positive_gaussian(
                profile.meal_carbs_mean,
                profile.meal_carbs_mean * profile.meal_carbs_rel_std,
                rng,
            );
            let bolus = Self::draw_bolus(profile, carbs, rng);
            // Patients log the meals they bolus for; a skipped bolus almost
            // always means a skipped log entry too.
            let logged = bolus > 0.0;
            events.push(Event {
                minute,
                kind: EventKind::Meal { carbs, bolus, logged },
            });
        }
        if rng.random_range(0.0..1.0) < profile.snack_probability {
            let minute = jitter_minute(930.0, 90.0, rng); // mid-afternoon
            let carbs = positive_gaussian(22.0, 8.0, rng);
            // Snacks are usually not bolused at all.
            let bolus = if rng.random_range(0.0..1.0) < 0.3 {
                Self::draw_bolus(profile, carbs, rng)
            } else {
                0.0
            };
            events.push(Event {
                minute,
                kind: EventKind::Meal {
                    carbs,
                    bolus,
                    logged: bolus > 0.0,
                },
            });
        }
        if rng.random_range(0.0..1.0) < profile.exercise_probability {
            let minute = jitter_minute(1020.0, 120.0, rng); // around 17:00
            let duration = rng.random_range(30..75u32);
            events.push(Event {
                minute,
                kind: EventKind::Exercise {
                    duration_min: duration,
                    intensity: profile.exercise_sensitivity_boost,
                },
            });
        }
        events.sort_by_key(|e| e.minute);
        DailyEvents { events }
    }

    fn draw_bolus<R: RngExt + ?Sized>(
        profile: &PatientProfile,
        carbs: f64,
        rng: &mut R,
    ) -> f64 {
        if rng.random_range(0.0..1.0) < profile.missed_bolus_probability {
            return 0.0;
        }
        let ideal = carbs / profile.insulin_carb_ratio;
        positive_gaussian(ideal, ideal * profile.bolus_error_rel_std, rng)
    }
}

fn jitter_minute<R: RngExt + ?Sized>(nominal: f64, std: f64, rng: &mut R) -> u32 {
    let v = nominal + gaussian(rng) * std;
    v.clamp(0.0, 1439.0).round() as u32
}

fn positive_gaussian<R: RngExt + ?Sized>(mean: f64, std: f64, rng: &mut R) -> f64 {
    (mean + gaussian(rng) * std).max(mean * 0.2)
}

/// Standard normal sample via Box–Muller.
pub(crate) fn gaussian<R: RngExt + ?Sized>(rng: &mut R) -> f64 {
    let u1: f64 = rng.random_range(f64::EPSILON..1.0);
    let u2: f64 = rng.random_range(0.0..1.0);
    (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::{profile, PatientId, Subset};
    use rand::{rngs::StdRng, SeedableRng};

    fn day(seed: u64, id: PatientId) -> DailyEvents {
        let p = profile(id);
        DailyEvents::generate(&p, &mut StdRng::seed_from_u64(seed))
    }

    #[test]
    fn always_three_main_meals() {
        for seed in 0..20 {
            let d = day(seed, PatientId::new(Subset::A, 0));
            let meals = d
                .events()
                .iter()
                .filter(|e| matches!(e.kind, EventKind::Meal { .. }))
                .count();
            assert!(meals >= 3, "only {meals} meals on seed {seed}");
            assert!(!d.is_empty());
            assert!(d.len() >= 3);
        }
    }

    #[test]
    fn events_sorted_by_minute() {
        for seed in 0..20 {
            let d = day(seed, PatientId::new(Subset::A, 2));
            let minutes: Vec<u32> = d.events().iter().map(|e| e.minute).collect();
            let mut sorted = minutes.clone();
            sorted.sort_unstable();
            assert_eq!(minutes, sorted);
        }
    }

    #[test]
    fn minutes_within_day() {
        for seed in 0..50 {
            for e in day(seed, PatientId::new(Subset::B, 0)).events() {
                assert!(e.minute < 1440);
            }
        }
    }

    #[test]
    fn carbs_and_boluses_nonnegative() {
        for seed in 0..50 {
            for e in day(seed, PatientId::new(Subset::A, 2)).events() {
                if let EventKind::Meal { carbs, bolus, logged } = e.kind {
                    assert!(carbs > 0.0);
                    assert!(bolus >= 0.0);
                    // Logging requires an accompanying bolus.
                    assert_eq!(logged, bolus > 0.0);
                }
            }
        }
    }

    #[test]
    fn erratic_patient_misses_more_boluses() {
        let count_missed = |id: PatientId| -> usize {
            let p = profile(id);
            let mut rng = StdRng::seed_from_u64(500);
            let mut missed = 0;
            for _ in 0..200 {
                for e in DailyEvents::generate(&p, &mut rng).events() {
                    if let EventKind::Meal { bolus, .. } = e.kind {
                        if bolus == 0.0 {
                            missed += 1;
                        }
                    }
                }
            }
            missed
        };
        let erratic = count_missed(PatientId::new(Subset::A, 2));
        let tight = count_missed(PatientId::new(Subset::A, 5));
        assert!(
            erratic > tight * 3,
            "erratic {erratic} vs tight {tight}"
        );
    }

    #[test]
    fn exercise_has_sane_duration_and_intensity() {
        for seed in 0..100 {
            for e in day(seed, PatientId::new(Subset::A, 3)).events() {
                if let EventKind::Exercise {
                    duration_min,
                    intensity,
                } = e.kind
                {
                    assert!((30..75).contains(&duration_min));
                    assert!(intensity > 1.0);
                }
            }
        }
    }

    #[test]
    fn generation_is_deterministic_per_seed() {
        let a = day(7, PatientId::new(Subset::B, 4));
        let b = day(7, PatientId::new(Subset::B, 4));
        assert_eq!(a, b);
    }
}
