//! # lgo-glucosim
//!
//! An ODE-based synthetic Type-1-diabetes patient simulator that stands in
//! for the OhioT1DM dataset (Marling & Bunescu, 2020), which is gated behind
//! a Data Use Agreement and cannot be redistributed.
//!
//! The simulator combines:
//!
//! - the **Bergman minimal model** of glucose–insulin dynamics (plasma
//!   glucose, remote insulin effect, plasma insulin),
//! - a **two-compartment gut absorption** model for meals,
//! - an insulin **pump** with basal rates and meal boluses (with per-patient
//!   carb-counting error and occasionally missed boluses),
//! - circadian effects (dawn phenomenon), exercise (heart-rate coupled
//!   insulin-sensitivity boosts), and an AR(1) **CGM sensor noise** model.
//!
//! Twelve deterministic, seeded patient profiles are provided in two
//! subsets mirroring the paper's *Subset A* (2018 cohort) and *Subset B*
//! (2020 cohort). Profiles span tight-control to high-variability
//! phenotypes, which is exactly the axis the paper's risk-profiling
//! framework discriminates: tight-control patients have a high ratio of
//! normal to abnormal benign glucose samples (the paper's Figure 4) and turn
//! out less vulnerable to the evasion attack.
//!
//! # Examples
//!
//! ```
//! use lgo_glucosim::{PatientId, Simulator, Subset};
//!
//! let profile = lgo_glucosim::profile(PatientId::new(Subset::A, 5));
//! let sim = Simulator::new(profile);
//! let series = sim.run_days(2);
//! assert_eq!(series.len(), 2 * 288); // 5-minute cadence
//! let cgm = series.channel("cgm").unwrap();
//! assert!(cgm.iter().all(|&g| (20.0..=499.0).contains(&g)));
//! ```

mod dataset;
mod events;
mod export;
mod faults;
mod ode;
mod params;
mod sensor;
mod sim;
mod stream;

pub use dataset::{generate_cohort, generate_cohort_sized, PatientDataset};
pub use events::{DailyEvents, Event, EventKind};
pub use export::{from_csv, to_csv};
pub use faults::{FaultInjector, FaultKind, FAULT_CGM_MAX, FAULT_CGM_MIN};
pub use ode::{OdeParams, PhysioState};
pub use params::{profile, profiles, PatientId, PatientProfile, Subset};
pub use sensor::SensorModel;
pub use sim::{Simulator, CHANNELS, SAMPLES_PER_DAY, STEP_MINUTES};
pub use stream::{synthetic_profile, CohortStream, StreamedPatient};
