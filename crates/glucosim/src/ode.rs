//! The physiological core: Bergman minimal model + two-compartment gut
//! absorption + first-order plasma-insulin kinetics, integrated with forward
//! Euler at one-minute resolution.
//!
//! Units: glucose mg/dL, insulin µU/mL, carbs g, time minutes.

/// Kinetic parameters of the glucose–insulin system.
///
/// Defaults are in the range reported for the Bergman minimal model in
/// Type-1 diabetes literature; individual patients perturb them.
#[derive(Debug, Clone, PartialEq)]
pub struct OdeParams {
    /// Glucose effectiveness `p1` (1/min): self-normalization toward basal.
    pub glucose_effectiveness: f64,
    /// Remote-insulin decay `p2` (1/min).
    pub insulin_decay: f64,
    /// Insulin action gain `p3` ((µU/mL)⁻¹ min⁻²).
    pub insulin_action: f64,
    /// Plasma-insulin elimination rate `n` (1/min).
    pub insulin_elimination: f64,
    /// Basal (steady-state) glucose `Gb` (mg/dL).
    pub basal_glucose: f64,
    /// Basal plasma insulin `Ib` (µU/mL).
    pub basal_insulin: f64,
    /// Gut compartment transfer rate `kq` (1/min).
    pub gut_rate: f64,
    /// Carb bioavailability × conversion into mg/dL per g absorbed.
    pub carb_gain: f64,
    /// Conversion from delivered insulin (U) to plasma concentration rise
    /// (µU/mL per U), folding in the distribution volume.
    pub insulin_gain: f64,
}

impl Default for OdeParams {
    fn default() -> Self {
        Self {
            glucose_effectiveness: 0.010,
            insulin_decay: 0.025,
            insulin_action: 4.5e-5,
            insulin_elimination: 0.05,
            basal_glucose: 118.0,
            basal_insulin: 10.0,
            gut_rate: 0.05,
            carb_gain: 2.6,
            insulin_gain: 5.0,
        }
    }
}

impl OdeParams {
    /// Validates positivity of every rate constant.
    ///
    /// # Panics
    ///
    /// Panics with the offending field name if any constraint fails.
    pub fn validate(&self) {
        assert!(self.glucose_effectiveness > 0.0, "glucose_effectiveness");
        assert!(self.insulin_decay > 0.0, "insulin_decay");
        assert!(self.insulin_action > 0.0, "insulin_action");
        assert!(self.insulin_elimination > 0.0, "insulin_elimination");
        assert!(self.basal_glucose > 40.0, "basal_glucose too low");
        assert!(self.basal_glucose < 250.0, "basal_glucose too high");
        assert!(self.basal_insulin >= 0.0, "basal_insulin");
        assert!(self.gut_rate > 0.0, "gut_rate");
        assert!(self.carb_gain > 0.0, "carb_gain");
        assert!(self.insulin_gain > 0.0, "insulin_gain");
    }
}

/// The instantaneous physiological state of a patient.
#[derive(Debug, Clone, PartialEq)]
pub struct PhysioState {
    /// Plasma glucose (mg/dL).
    pub glucose: f64,
    /// Remote insulin effect `X` (1/min).
    pub remote_insulin: f64,
    /// Plasma insulin (µU/mL).
    pub plasma_insulin: f64,
    /// First gut compartment (g of carbs).
    pub gut1: f64,
    /// Second gut compartment (g of carbs).
    pub gut2: f64,
}

impl PhysioState {
    /// The steady state implied by the parameters (no meals, basal insulin).
    pub fn at_rest(p: &OdeParams) -> Self {
        Self {
            glucose: p.basal_glucose,
            remote_insulin: 0.0,
            plasma_insulin: p.basal_insulin,
            gut1: 0.0,
            gut2: 0.0,
        }
    }

    /// Advances the state by `dt` minutes of forward Euler.
    ///
    /// Inputs during the step:
    /// - `carbs_in` — carbohydrate ingestion rate (g/min),
    /// - `insulin_in` — insulin delivery rate (U/min, basal + bolus),
    /// - `glucose_drive` — exogenous glucose drive (mg/dL/min, e.g. dawn
    ///   phenomenon),
    /// - `sensitivity` — multiplier on insulin action (exercise boost).
    ///
    /// Glucose is clamped to the physiological floor of 20 mg/dL; states are
    /// kept non-negative.
    ///
    /// # Panics
    ///
    /// Panics if `dt` is not positive.
    pub fn step(
        &mut self,
        p: &OdeParams,
        dt: f64,
        carbs_in: f64,
        insulin_in: f64,
        glucose_drive: f64,
        sensitivity: f64,
    ) {
        assert!(dt > 0.0, "PhysioState::step: dt must be positive");
        let ra = p.carb_gain * p.gut_rate * self.gut2; // mg/dL/min appearing
        let dg = -p.glucose_effectiveness * (self.glucose - p.basal_glucose)
            - self.remote_insulin * self.glucose
            + ra
            + glucose_drive;
        let dx = -p.insulin_decay * self.remote_insulin
            + p.insulin_action * sensitivity * (self.plasma_insulin - p.basal_insulin).max(0.0);
        let di = -p.insulin_elimination * (self.plasma_insulin - p.basal_insulin)
            + p.insulin_gain * insulin_in;
        let dq1 = -p.gut_rate * self.gut1 + carbs_in;
        let dq2 = p.gut_rate * (self.gut1 - self.gut2);

        self.glucose = (self.glucose + dt * dg).max(20.0);
        self.remote_insulin = (self.remote_insulin + dt * dx).max(0.0);
        self.plasma_insulin = (self.plasma_insulin + dt * di).max(0.0);
        self.gut1 = (self.gut1 + dt * dq1).max(0.0);
        self.gut2 = (self.gut2 + dt * dq2).max(0.0);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(
        state: &mut PhysioState,
        p: &OdeParams,
        minutes: usize,
        carbs: impl Fn(usize) -> f64,
        insulin: impl Fn(usize) -> f64,
    ) {
        for t in 0..minutes {
            state.step(p, 1.0, carbs(t), insulin(t), 0.0, 1.0);
        }
    }

    #[test]
    fn rest_state_is_steady() {
        let p = OdeParams::default();
        let mut s = PhysioState::at_rest(&p);
        run(&mut s, &p, 24 * 60, |_| 0.0, |_| 0.0);
        assert!((s.glucose - p.basal_glucose).abs() < 1.0, "g = {}", s.glucose);
        assert!(s.remote_insulin.abs() < 1e-9);
    }

    #[test]
    fn meal_raises_glucose_then_returns() {
        let p = OdeParams::default();
        let mut s = PhysioState::at_rest(&p);
        // 60 g of carbs over 10 minutes, no bolus.
        run(&mut s, &p, 90, |t| if t < 10 { 6.0 } else { 0.0 }, |_| 0.0);
        let peak_region = s.glucose;
        assert!(
            peak_region > p.basal_glucose + 30.0,
            "no postprandial rise: {peak_region}"
        );
        // Several hours later glucose effectiveness pulls back toward basal.
        run(&mut s, &p, 10 * 60, |_| 0.0, |_| 0.0);
        assert!(
            (s.glucose - p.basal_glucose).abs() < 15.0,
            "did not settle: {}",
            s.glucose
        );
    }

    #[test]
    fn insulin_lowers_glucose() {
        let p = OdeParams::default();
        let mut hi = PhysioState::at_rest(&p);
        hi.glucose = 250.0;
        let mut no_insulin = hi.clone();
        // 4 U bolus over 5 min vs nothing.
        run(&mut hi, &p, 120, |_| 0.0, |t| if t < 5 { 0.8 } else { 0.0 });
        run(&mut no_insulin, &p, 120, |_| 0.0, |_| 0.0);
        assert!(
            hi.glucose < no_insulin.glucose - 10.0,
            "insulin had no effect: {} vs {}",
            hi.glucose,
            no_insulin.glucose
        );
    }

    #[test]
    fn glucose_floor_respected() {
        let p = OdeParams::default();
        let mut s = PhysioState::at_rest(&p);
        // Massive overdose.
        run(&mut s, &p, 6 * 60, |_| 0.0, |t| if t < 30 { 2.0 } else { 0.0 });
        assert!(s.glucose >= 20.0);
        assert!(s.plasma_insulin >= 0.0);
    }

    #[test]
    fn gut_compartments_conserve_mass_without_absorption() {
        // With gut_rate -> tiny, carbs stay in the gut compartments.
        let p = OdeParams {
            gut_rate: 1e-9,
            ..Default::default()
        };
        let mut s = PhysioState::at_rest(&p);
        run(&mut s, &p, 10, |t| if t < 10 { 5.0 } else { 0.0 }, |_| 0.0);
        assert!((s.gut1 - 50.0).abs() < 0.01, "gut1 = {}", s.gut1);
    }

    #[test]
    fn exercise_sensitivity_amplifies_insulin_action() {
        let p = OdeParams::default();
        let mut normal = PhysioState::at_rest(&p);
        normal.glucose = 200.0;
        normal.plasma_insulin = 40.0;
        let mut exercising = normal.clone();
        for _ in 0..60 {
            normal.step(&p, 1.0, 0.0, 0.0, 0.0, 1.0);
            exercising.step(&p, 1.0, 0.0, 0.0, 0.0, 3.0);
        }
        assert!(exercising.glucose < normal.glucose);
    }

    #[test]
    fn dawn_drive_raises_glucose() {
        let p = OdeParams::default();
        let mut s = PhysioState::at_rest(&p);
        for _ in 0..120 {
            s.step(&p, 1.0, 0.0, 0.0, 0.4, 1.0);
        }
        assert!(s.glucose > p.basal_glucose + 10.0);
    }

    #[test]
    #[should_panic(expected = "dt must be positive")]
    fn zero_dt_rejected() {
        let p = OdeParams::default();
        let mut s = PhysioState::at_rest(&p);
        s.step(&p, 0.0, 0.0, 0.0, 0.0, 1.0);
    }

    #[test]
    fn default_params_validate() {
        OdeParams::default().validate();
    }
}
