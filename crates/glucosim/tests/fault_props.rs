//! Property tests for the CGM fault injector: determinism under a fixed
//! seed, fault-rate bounds, and physical-range preservation for every
//! non-spike fault model.

use lgo_glucosim::{FaultInjector, FaultKind, FAULT_CGM_MAX, FAULT_CGM_MIN};
use lgo_series::MultiSeries;
use proptest::prelude::*;

/// A strategy for CGM series inside the plausible physical range
/// 40–400 mg/dL.
fn cgm_series(max_len: usize) -> impl Strategy<Value = MultiSeries> {
    proptest::collection::vec(FAULT_CGM_MIN..FAULT_CGM_MAX, 1..max_len)
        .prop_map(|vals| MultiSeries::from_rows(&["cgm"], vals.into_iter().map(|v| vec![v]).collect()))
}

/// One arbitrary fault model (spikes included), parameterized by drawn
/// scalars so the whole configuration space gets exercised.
fn any_fault(selector: u32, rate: f64, len: usize, magnitude: f64) -> FaultKind {
    match selector % 5 {
        0 => FaultKind::Dropout { rate },
        1 => FaultKind::TransmissionGap {
            count: len,
            len: len.max(1),
        },
        2 => FaultKind::StuckAt {
            rate,
            len: len.max(1),
        },
        3 => FaultKind::SpikeNoise { rate, magnitude },
        _ => FaultKind::CalibrationDrift {
            per_sample: magnitude / 100.0,
            max_abs: magnitude,
        },
    }
}

fn cgm_bits(s: &MultiSeries) -> Vec<u64> {
    s.channel("cgm")
        .unwrap()
        .iter()
        .map(|v| v.to_bits())
        .collect()
}

proptest! {
    /// Fixed seed + fixed faults + same input => bit-identical output,
    /// whatever the fault mix.
    #[test]
    fn injector_is_deterministic(
        series in cgm_series(200),
        seed in 0u64..1_000_000,
        selector in 0u32..5,
        rate in 0.0..1.0f64,
        len in 1usize..20,
    ) {
        let inj = FaultInjector::new(seed).with_fault(any_fault(selector, rate, len, 80.0));
        let a = inj.apply_series(&series);
        let b = inj.apply_series(&series);
        prop_assert_eq!(cgm_bits(&a), cgm_bits(&b));
    }

    /// Dropout at rate `r` on `n` samples erases at most a bounded excess
    /// over the expectation (Chernoff-ish slack: r*n + 6*sqrt(n) + 6).
    #[test]
    fn dropout_rate_bounded(
        series in cgm_series(400),
        seed in 0u64..100_000,
        rate in 0.0..0.9f64,
    ) {
        let out = FaultInjector::new(seed)
            .with_fault(FaultKind::Dropout { rate })
            .apply_series(&series);
        let n = out.len() as f64;
        let missing = out
            .channel("cgm")
            .unwrap()
            .iter()
            .filter(|v| v.is_nan())
            .count() as f64;
        let bound = rate * n + 6.0 * n.sqrt() + 6.0;
        prop_assert!(missing <= bound, "missing {missing} > bound {bound} (n={n}, rate={rate})");
    }

    /// Transmission gaps can never erase more than count*len samples.
    #[test]
    fn gap_budget_bounded(
        series in cgm_series(300),
        seed in 0u64..100_000,
        count in 0usize..5,
        len in 1usize..30,
    ) {
        let out = FaultInjector::new(seed)
            .with_fault(FaultKind::TransmissionGap { count, len })
            .apply_series(&series);
        let missing = out
            .channel("cgm")
            .unwrap()
            .iter()
            .filter(|v| v.is_nan())
            .count();
        prop_assert!(missing <= count * len, "missing {} > budget {}", missing, count * len);
    }

    /// Every non-spike fault keeps finite readings inside the plausible
    /// physical range 40–400 mg/dL when fed in-range input.
    #[test]
    fn non_spike_faults_stay_in_physical_range(
        series in cgm_series(300),
        seed in 0u64..100_000,
        rate in 0.0..1.0f64,
        len in 1usize..20,
        drift in 0.0..100.0f64,
    ) {
        let inj = FaultInjector::new(seed)
            .with_fault(FaultKind::Dropout { rate: rate * 0.3 })
            .with_fault(FaultKind::TransmissionGap { count: 1, len })
            .with_fault(FaultKind::StuckAt { rate, len })
            .with_fault(FaultKind::CalibrationDrift { per_sample: drift / 50.0, max_abs: drift });
        let out = inj.apply_series(&series);
        for v in out.channel("cgm").unwrap() {
            if v.is_finite() {
                prop_assert!(
                    (FAULT_CGM_MIN..=FAULT_CGM_MAX).contains(&v),
                    "reading {v} outside physical range"
                );
            }
        }
    }

    /// Stuck-at and drift never introduce missing samples; dropout and
    /// gaps never alter the values of samples they keep.
    #[test]
    fn faults_only_do_their_own_kind_of_damage(
        series in cgm_series(300),
        seed in 0u64..100_000,
        rate in 0.0..1.0f64,
    ) {
        let value_only = FaultInjector::new(seed)
            .with_fault(FaultKind::StuckAt { rate, len: 5 })
            .with_fault(FaultKind::CalibrationDrift { per_sample: 0.5, max_abs: 20.0 })
            .apply_series(&series);
        prop_assert!(value_only.channel("cgm").unwrap().iter().all(|v| v.is_finite()));

        let missing_only = FaultInjector::new(seed)
            .with_fault(FaultKind::Dropout { rate })
            .with_fault(FaultKind::TransmissionGap { count: 2, len: 7 })
            .apply_series(&series);
        let orig = series.channel("cgm").unwrap();
        for (o, f) in orig.iter().zip(missing_only.channel("cgm").unwrap()) {
            if f.is_finite() {
                prop_assert_eq!(*o, f);
            }
        }
    }
}
