//! Finite-difference correctness of the pure `input_gradients` APIs.
//!
//! The attack zoo (`lgo-zoo`) climbs these gradients from parallel
//! campaigns, so they must (a) agree with central differences of the pure
//! inference path and (b) never touch the parameter-gradient accumulators
//! — a shared `&self` model must stay bit-identical after the pass. The
//! suite also runs under `strict-numerics`, where the tensor sanitizers
//! abort on any non-finite intermediate.

use lgo_nn::{Activation, BiLstmRegressor, LstmSeq2Seq, Trainable};
use rand::rngs::StdRng;
use rand::SeedableRng;

const EPS: f64 = 1e-6;
const TOL: f64 = 1e-5;

fn window(len: usize, width: usize) -> Vec<Vec<f64>> {
    (0..len)
        .map(|t| {
            (0..width)
                .map(|j| ((t * 11 + j * 5) as f64 * 0.17).sin() * 0.7)
                .collect()
        })
        .collect()
}

#[test]
fn bilstm_input_gradients_match_finite_differences() {
    let mut rng = StdRng::seed_from_u64(0xB1);
    let model = BiLstmRegressor::new(3, 5, &mut rng);
    let w = window(6, 3);
    let grads = model.input_gradients(&w);
    assert_eq!(grads.len(), 6);
    assert_eq!(grads[0].len(), 3);
    for t in 0..w.len() {
        for j in 0..3 {
            let mut wp = w.clone();
            wp[t][j] += EPS;
            let mut wm = w.clone();
            wm[t][j] -= EPS;
            let numeric = (model.predict(&wp) - model.predict(&wm)) / (2.0 * EPS);
            assert!(
                (numeric - grads[t][j]).abs() < TOL,
                "BiLSTM d/dx[{t}][{j}]: numeric {numeric} vs analytic {}",
                grads[t][j]
            );
        }
    }
}

#[test]
fn bilstm_input_gradients_leave_param_grads_untouched() {
    let mut rng = StdRng::seed_from_u64(0xB2);
    let mut model = BiLstmRegressor::new(2, 4, &mut rng);
    model.zero_grads();
    let w = window(5, 2);
    let _ = model.input_gradients(&w);
    let mut total = 0.0;
    model.visit_params(&mut |_, g| total += g.as_slice().iter().map(|v| v.abs()).sum::<f64>());
    assert_eq!(total, 0.0, "pure pass accumulated parameter gradients");
}

#[test]
fn bilstm_gradient_direction_raises_prediction() {
    // One ascent step along the gradient must increase the prediction —
    // the property every gradient attacker in lgo-zoo relies on.
    let mut rng = StdRng::seed_from_u64(0xB3);
    let model = BiLstmRegressor::new(2, 6, &mut rng);
    let w = window(8, 2);
    let grads = model.input_gradients(&w);
    let before = model.predict(&w);
    let step = 1e-3;
    let up: Vec<Vec<f64>> = w
        .iter()
        .zip(&grads)
        .map(|(row, g)| row.iter().zip(g).map(|(&x, &d)| x + step * d).collect())
        .collect();
    assert!(
        model.predict(&up) > before,
        "ascent step did not raise the prediction"
    );
}

#[test]
fn seq2seq_input_gradients_match_finite_differences() {
    let mut rng = StdRng::seed_from_u64(0x52);
    let model = LstmSeq2Seq::new(2, 5, 3, Activation::Sigmoid, &mut rng);
    let xs = window(4, 2);
    // Loss = sum of all outputs, i.e. dys = ones.
    let dys = vec![vec![1.0; 3]; 4];
    let grads = model.input_gradients(&xs, &dys);
    let loss = |xs: &[Vec<f64>]| -> f64 { model.generate(xs).iter().flatten().sum() };
    for t in 0..xs.len() {
        for j in 0..2 {
            let mut xp = xs.clone();
            xp[t][j] += EPS;
            let mut xm = xs.clone();
            xm[t][j] -= EPS;
            let numeric = (loss(&xp) - loss(&xm)) / (2.0 * EPS);
            assert!(
                (numeric - grads[t][j]).abs() < TOL,
                "Seq2Seq d/dx[{t}][{j}]: numeric {numeric} vs analytic {}",
                grads[t][j]
            );
        }
    }
}

#[test]
fn seq2seq_input_gradients_leave_param_grads_untouched() {
    let mut rng = StdRng::seed_from_u64(0x53);
    let mut model = LstmSeq2Seq::new(2, 4, 2, Activation::Tanh, &mut rng);
    model.zero_grads();
    let xs = window(3, 2);
    let _ = model.input_gradients(&xs, &vec![vec![1.0; 2]; 3]);
    let mut total = 0.0;
    model.visit_params(&mut |_, g| total += g.as_slice().iter().map(|v| v.abs()).sum::<f64>());
    assert_eq!(total, 0.0, "pure pass accumulated parameter gradients");
}

#[test]
fn pure_and_accumulating_bptt_agree() {
    // backward_seq (accumulating) and the pure path must return identical
    // input gradients — they share one BPTT core by construction, but this
    // pins the refactor against future drift.
    use lgo_nn::LstmCell;
    let mut rng = StdRng::seed_from_u64(0x54);
    let mut cell = LstmCell::new(3, 4, &mut rng);
    let xs = window(5, 3);
    let trace = cell.forward_seq(&xs);
    let dh = vec![vec![0.3; 4]; 5];
    let pure = cell.input_grad_seq(&trace, &dh);
    cell.zero_grads();
    let accum = cell.backward_seq(&trace, &dh);
    assert_eq!(pure, accum);

    use lgo_nn::GruCell;
    let mut gru = GruCell::new(2, 3, &mut rng);
    let xs = window(4, 2);
    let trace = gru.forward_seq(&xs);
    let dh = vec![vec![-0.7; 3]; 4];
    let pure = gru.input_grad_seq(&trace, &dh);
    gru.zero_grads();
    let accum = gru.backward_seq(&trace, &dh);
    assert_eq!(pure, accum);
}
