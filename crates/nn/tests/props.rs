//! Property-based tests for the neural-network substrate: activation
//! bounds, loss positivity, and gradient correctness on random layers.

use lgo_nn::{Activation, Dense, Loss, Trainable};
use proptest::prelude::*;
use rand::{rngs::StdRng, SeedableRng};

proptest! {
    #[test]
    fn activations_are_finite_and_bounded(x in -1e6..1e6f64) {
        for act in [
            Activation::Identity,
            Activation::Sigmoid,
            Activation::Tanh,
            Activation::Relu,
            Activation::LeakyRelu,
        ] {
            let y = act.apply(x);
            prop_assert!(y.is_finite(), "{act:?}({x}) = {y}");
            let d = act.derivative(x, y);
            prop_assert!(d.is_finite());
        }
        prop_assert!((0.0..=1.0).contains(&Activation::Sigmoid.apply(x)));
        prop_assert!((-1.0..=1.0).contains(&Activation::Tanh.apply(x)));
    }

    #[test]
    fn sigmoid_is_monotone(a in -500.0..500.0f64, b in -500.0..500.0f64) {
        let (lo, hi) = (a.min(b), a.max(b));
        prop_assert!(lgo_nn::sigmoid(lo) <= lgo_nn::sigmoid(hi));
    }

    #[test]
    fn losses_are_nonnegative_and_zero_at_target(p in 0.01..0.99f64, t in any::<bool>()) {
        let target = if t { 1.0 } else { 0.0 };
        prop_assert!(Loss::Mse.value(p, target) >= 0.0);
        prop_assert!(Loss::Bce.value(p, target) >= 0.0);
        prop_assert_eq!(Loss::Mse.value(target, target), 0.0);
        // BCE at its target is minimal (close to zero as p -> target).
        prop_assert!(Loss::Bce.value(target, target) < 1e-9);
    }

    #[test]
    fn dense_gradient_check_on_random_layers(
        seed in 0u64..1000,
        x in proptest::collection::vec(-2.0..2.0f64, 3),
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut layer = Dense::new(3, 2, Activation::Tanh, &mut rng);
        layer.zero_grads();
        layer.forward(&x);
        let dx = layer.backward(&[1.0, -1.0]);
        let eps = 1e-6;
        let f = |l: &Dense, x: &[f64]| {
            let y = l.infer(x);
            y[0] - y[1]
        };
        for i in 0..3 {
            let mut xp = x.clone();
            xp[i] += eps;
            let mut xm = x.clone();
            xm[i] -= eps;
            let numeric = (f(&layer, &xp) - f(&layer, &xm)) / (2.0 * eps);
            prop_assert!(
                (numeric - dx[i]).abs() < 1e-5,
                "dx[{i}]: numeric {numeric} vs {got}", got = dx[i]
            );
        }
    }

    #[test]
    fn dense_is_deterministic(
        x in proptest::collection::vec(-3.0..3.0f64, 4),
    ) {
        let mut rng = StdRng::seed_from_u64(5);
        let layer = Dense::new(4, 3, Activation::Relu, &mut rng);
        prop_assert_eq!(layer.infer(&x), layer.infer(&x));
    }
}
