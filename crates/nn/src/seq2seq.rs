use lgo_tensor::Matrix;
use rand::RngExt;

use crate::activation::Activation;
use crate::dense::{Dense, DenseCache};
use crate::lstm::{LstmCell, LstmTrace};
use crate::optimizer::Trainable;

/// An LSTM followed by a shared per-timestep dense head — the generator
/// architecture of MAD-GAN (Li et al., 2019): a latent sequence goes in, a
/// synthetic multivariate window comes out.
///
/// # Examples
///
/// ```
/// use lgo_nn::{Activation, LstmSeq2Seq};
/// use rand::{rngs::StdRng, SeedableRng};
///
/// let mut rng = StdRng::seed_from_u64(4);
/// let g = LstmSeq2Seq::new(3, 16, 4, Activation::Sigmoid, &mut rng);
/// let z = vec![vec![0.1, -0.2, 0.05]; 12];
/// let x = g.generate(&z);
/// assert_eq!(x.len(), 12);
/// assert_eq!(x[0].len(), 4);
/// ```
#[derive(Debug, Clone)]
pub struct LstmSeq2Seq {
    cell: LstmCell,
    head: Dense,
}

/// Forward trace of a [`LstmSeq2Seq`] pass, consumed by
/// [`LstmSeq2Seq::backward`].
#[derive(Debug, Clone)]
pub struct Seq2SeqTrace {
    lstm: LstmTrace,
    heads: Vec<DenseCache>,
    outputs: Vec<Vec<f64>>,
}

impl Seq2SeqTrace {
    /// The generated output rows, one per timestep.
    pub fn outputs(&self) -> &[Vec<f64>] {
        &self.outputs
    }
}

impl LstmSeq2Seq {
    /// Creates a generator mapping `input`-dim rows to `output`-dim rows
    /// through `hidden` LSTM units, with `out_activation` on the head
    /// (MAD-GAN uses a sigmoid because its windows are min-max scaled).
    ///
    /// # Panics
    ///
    /// Panics if any size is zero.
    pub fn new<R: RngExt + ?Sized>(
        input: usize,
        hidden: usize,
        output: usize,
        out_activation: Activation,
        rng: &mut R,
    ) -> Self {
        Self {
            cell: LstmCell::new(input, hidden, rng),
            head: Dense::new(hidden, output, out_activation, rng),
        }
    }

    /// Input (latent) dimensionality per timestep.
    pub fn input_size(&self) -> usize {
        self.cell.input_size()
    }

    /// Output dimensionality per timestep.
    pub fn output_size(&self) -> usize {
        self.head.output_size()
    }

    /// Pure inference: maps an input sequence to an output sequence.
    pub fn generate(&self, xs: &[Vec<f64>]) -> Vec<Vec<f64>> {
        let trace = self.cell.forward_seq(xs);
        trace
            .hiddens()
            .iter()
            .map(|h| self.head.infer(h))
            .collect()
    }

    /// Forward pass retaining everything needed for [`Self::backward`].
    pub fn forward(&self, xs: &[Vec<f64>]) -> Seq2SeqTrace {
        let lstm = self.cell.forward_seq(xs);
        let mut heads = Vec::with_capacity(lstm.len());
        let mut outputs = Vec::with_capacity(lstm.len());
        for t in 0..lstm.len() {
            let (y, cache) = self.head.forward_with_cache(lstm.hidden(t));
            heads.push(cache);
            outputs.push(y);
        }
        Seq2SeqTrace {
            lstm,
            heads,
            outputs,
        }
    }

    /// Backpropagates per-timestep output gradients, accumulating parameter
    /// gradients and returning per-timestep input gradients.
    ///
    /// # Panics
    ///
    /// Panics if `dys.len()` differs from the trace length.
    pub fn backward(&mut self, trace: &Seq2SeqTrace, dys: &[Vec<f64>]) -> Vec<Vec<f64>> {
        assert_eq!(
            dys.len(),
            trace.heads.len(),
            "backward: {} gradients for {} steps",
            dys.len(),
            trace.heads.len()
        );
        let mut dhs = Vec::with_capacity(dys.len());
        for (cache, dy) in trace.heads.iter().zip(dys) {
            dhs.push(self.head.backward_from(cache, dy));
        }
        self.cell.backward_seq(&trace.lstm, &dhs)
    }

    /// Gradient of `sum_t dys[t] · output[t]` with respect to every input
    /// cell — a *pure* pass through `&self` that leaves the
    /// parameter-gradient accumulators untouched (runs its own forward
    /// internally, so no trace is needed).
    ///
    /// # Panics
    ///
    /// Panics if `dys.len() != xs.len()` or any width mismatches.
    pub fn input_gradients(&self, xs: &[Vec<f64>], dys: &[Vec<f64>]) -> Vec<Vec<f64>> {
        assert_eq!(
            dys.len(),
            xs.len(),
            "input_gradients: {} gradients for {} steps",
            dys.len(),
            xs.len()
        );
        let lstm = self.cell.forward_seq(xs);
        let mut dhs = Vec::with_capacity(dys.len());
        for (t, dy) in dys.iter().enumerate() {
            let (_, cache) = self.head.forward_with_cache(lstm.hidden(t));
            dhs.push(self.head.backward_input(&cache, dy));
        }
        self.cell.input_grad_seq(&lstm, &dhs)
    }
}

impl Trainable for LstmSeq2Seq {
    fn visit_params(&mut self, f: &mut dyn FnMut(&mut Matrix, &mut Matrix)) {
        self.cell.visit_params(f);
        self.head.visit_params(f);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::optimizer::Adam;
    use rand::{rngs::StdRng, SeedableRng};

    fn gen() -> LstmSeq2Seq {
        let mut rng = StdRng::seed_from_u64(9);
        LstmSeq2Seq::new(2, 6, 3, Activation::Sigmoid, &mut rng)
    }

    #[test]
    fn generate_matches_forward_outputs() {
        let g = gen();
        let xs = vec![vec![0.3, -0.1]; 7];
        let trace = g.forward(&xs);
        assert_eq!(g.generate(&xs), trace.outputs());
    }

    #[test]
    fn sigmoid_head_outputs_unit_interval() {
        let g = gen();
        let xs = vec![vec![5.0, -5.0]; 4];
        for row in g.generate(&xs) {
            assert!(row.iter().all(|&v| (0.0..=1.0).contains(&v)));
        }
    }

    #[test]
    fn gradient_check_through_time() {
        let mut g = gen();
        let xs: Vec<Vec<f64>> = (0..4)
            .map(|t| vec![0.1 * t as f64, -0.05 * t as f64])
            .collect();
        g.zero_grads();
        let trace = g.forward(&xs);
        let dys = vec![vec![1.0; 3]; 4];
        let dxs = g.backward(&trace, &dys);

        let loss = |g: &LstmSeq2Seq, xs: &[Vec<f64>]| -> f64 {
            g.generate(xs).iter().flatten().sum()
        };
        let eps = 1e-6;
        for t in 0..xs.len() {
            for j in 0..2 {
                let mut xp = xs.clone();
                xp[t][j] += eps;
                let mut xm = xs.clone();
                xm[t][j] -= eps;
                let numeric = (loss(&g, &xp) - loss(&g, &xm)) / (2.0 * eps);
                assert!(
                    (numeric - dxs[t][j]).abs() < 1e-5,
                    "dx[{t}][{j}]: numeric {numeric} vs analytic {}",
                    dxs[t][j]
                );
            }
        }
    }

    #[test]
    fn can_fit_constant_sequence() {
        // The generator should learn to emit a constant window regardless of
        // its latent input.
        let mut g = gen();
        let target = vec![vec![0.8, 0.2, 0.5]; 6];
        let mut rng = StdRng::seed_from_u64(10);
        let mut opt = Adam::new(0.02);
        for _ in 0..300 {
            use rand::RngExt;
            let z: Vec<Vec<f64>> = (0..6)
                .map(|_| vec![rng.random_range(-1.0..1.0), rng.random_range(-1.0..1.0)])
                .collect();
            g.zero_grads();
            let trace = g.forward(&z);
            let dys: Vec<Vec<f64>> = trace
                .outputs()
                .iter()
                .zip(&target)
                .map(|(o, t)| o.iter().zip(t).map(|(&p, &y)| 2.0 * (p - y)).collect())
                .collect();
            g.backward(&trace, &dys);
            opt.step(&mut g);
        }
        let z = vec![vec![0.0, 0.0]; 6];
        let out = g.generate(&z);
        for row in out {
            for (o, t) in row.iter().zip(&[0.8, 0.2, 0.5]) {
                assert!((o - t).abs() < 0.1, "generated {o} target {t}");
            }
        }
    }

    #[test]
    #[should_panic(expected = "gradients for")]
    fn backward_checks_lengths() {
        let mut g = gen();
        let trace = g.forward(&[vec![0.0, 0.0]]);
        let _ = g.backward(&trace, &[]);
    }
}
