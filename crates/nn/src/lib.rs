//! # lgo-nn
//!
//! A from-scratch neural-network library with full backpropagation, built on
//! [`lgo_tensor`]. It provides exactly the architectures the paper's systems
//! need:
//!
//! - [`Dense`] layers and [`Mlp`] feed-forward networks,
//! - [`LstmCell`] with complete backpropagation-through-time,
//! - [`BiLstmRegressor`] — the bidirectional-LSTM glucose forecaster of
//!   Rubin-Falcone et al. that the paper attacks,
//! - [`LstmSeq2Seq`] and [`LstmDiscriminator`] — the generator/discriminator
//!   pair used by the MAD-GAN anomaly detector,
//! - [`Sgd`] and [`Adam`] optimizers with global-norm gradient clipping.
//!
//! Everything is `f64` and deterministic given a seeded RNG, so every
//! experiment in the workspace reproduces bit-for-bit. Training itself
//! runs on the calling thread: parallelism lives one layer up, where
//! `lgo-runtime` fans out *independent* models (one forecaster or
//! detector per task, each with its own split seed) rather than sharing
//! one optimizer across threads, which would make float accumulation
//! order — and therefore results — scheduling-dependent.
//!
//! # Examples
//!
//! Training a tiny MLP on XOR:
//!
//! ```
//! use lgo_nn::{Activation, Adam, Loss, Mlp, Trainable};
//! use rand::{rngs::StdRng, SeedableRng};
//!
//! let mut rng = StdRng::seed_from_u64(42);
//! let mut mlp = Mlp::new(&[2, 8, 1], Activation::Tanh, Activation::Sigmoid, &mut rng);
//! let xs = [[0.0, 0.0], [0.0, 1.0], [1.0, 0.0], [1.0, 1.0]];
//! let ys = [0.0, 1.0, 1.0, 0.0];
//! let mut opt = Adam::new(0.05);
//! for _ in 0..400 {
//!     mlp.zero_grads();
//!     for (x, &y) in xs.iter().zip(&ys) {
//!         let out = mlp.forward(x);
//!         let d = Loss::Mse.gradient(out[0], y);
//!         mlp.backward(&[d]);
//!     }
//!     opt.step(&mut mlp);
//! }
//! assert!(mlp.forward(&[1.0, 0.0])[0] > 0.5);
//! assert!(mlp.forward(&[1.0, 1.0])[0] < 0.5);
//! ```

mod activation;
mod bigru;
mod bilstm;
mod dense;
mod discriminator;
mod error;
mod gru;
pub mod init;
mod loss;
mod lstm;
mod mlp;
mod optimizer;
mod seq2seq;

pub use activation::{sigmoid, Activation};
pub use bigru::BiGruRegressor;
pub use bilstm::{BiLstmRegressor, SeqSample, DEFAULT_MAX_RECOVERIES};
pub use error::TrainError;
pub use dense::{Dense, DenseCache};
pub use gru::{GruCell, GruState, GruTrace};
pub use discriminator::LstmDiscriminator;
pub use loss::Loss;
pub use lstm::{LstmCell, LstmState, LstmTrace};
pub use mlp::Mlp;
pub use optimizer::{clip_global_norm, Adam, Sgd, Trainable};
pub use seq2seq::LstmSeq2Seq;
