use lgo_tensor::Matrix;
use rand::RngExt;

use crate::activation::Activation;
use crate::dense::Dense;
use crate::lstm::{LstmCell, LstmState, LstmTrace};
use crate::optimizer::Trainable;

/// An LSTM sequence classifier emitting one probability per window — the
/// discriminator of MAD-GAN, also used directly to produce the
/// discrimination half of the DR-Score.
///
/// # Examples
///
/// ```
/// use lgo_nn::LstmDiscriminator;
/// use rand::{rngs::StdRng, SeedableRng};
///
/// let mut rng = StdRng::seed_from_u64(8);
/// let d = LstmDiscriminator::new(4, 16, &mut rng);
/// let window = vec![vec![0.5; 4]; 12];
/// let p = d.probability(&window);
/// assert!((0.0..=1.0).contains(&p));
/// ```
#[derive(Debug, Clone)]
pub struct LstmDiscriminator {
    cell: LstmCell,
    head: Dense,
}

/// Forward trace of a discriminator pass, consumed by
/// [`LstmDiscriminator::backward`].
#[derive(Debug, Clone)]
pub struct DiscriminatorTrace {
    lstm: LstmTrace,
    head: crate::dense::DenseCache,
    probability: f64,
}

impl DiscriminatorTrace {
    /// The probability emitted by the forward pass.
    pub fn probability(&self) -> f64 {
        self.probability
    }
}

impl LstmDiscriminator {
    /// Creates a discriminator for `input`-dim rows with `hidden` LSTM units.
    ///
    /// # Panics
    ///
    /// Panics if either size is zero.
    pub fn new<R: RngExt + ?Sized>(input: usize, hidden: usize, rng: &mut R) -> Self {
        Self {
            cell: LstmCell::new(input, hidden, rng),
            head: Dense::new(hidden, 1, Activation::Sigmoid, rng),
        }
    }

    /// Input dimensionality per timestep.
    pub fn input_size(&self) -> usize {
        self.cell.input_size()
    }

    /// Probability that the window is *real* (pure inference).
    ///
    /// # Panics
    ///
    /// Panics if the window is empty or row widths mismatch.
    pub fn probability(&self, window: &[Vec<f64>]) -> f64 {
        assert!(!window.is_empty(), "probability: empty window");
        let mut state = LstmState::zeros(self.cell.hidden_size());
        for x in window {
            state = self.cell.step(x, &state);
        }
        self.head.infer(&state.h)[0]
    }

    /// Forward pass retaining intermediates for [`Self::backward`].
    ///
    /// # Panics
    ///
    /// Panics if the window is empty.
    pub fn forward(&self, window: &[Vec<f64>]) -> DiscriminatorTrace {
        assert!(!window.is_empty(), "forward: empty window");
        let lstm = self.cell.forward_seq(window);
        let (y, head) = self.head.forward_with_cache(lstm.last_hidden());
        DiscriminatorTrace {
            lstm,
            head,
            probability: y[0],
        }
    }

    /// Backpropagates `dprob` (gradient of the loss w.r.t. the emitted
    /// probability), accumulating parameter gradients and returning the
    /// gradient w.r.t. every input row — the path through which the MAD-GAN
    /// generator (and the DR-Score reconstruction search) receives gradients.
    pub fn backward(&mut self, trace: &DiscriminatorTrace, dprob: f64) -> Vec<Vec<f64>> {
        let dh_last = self.head.backward_from(&trace.head, &[dprob]);
        let mut dhs = vec![vec![0.0; self.cell.hidden_size()]; trace.lstm.len()];
        // lint: allow(L1): a DiscriminatorTrace always holds the rows forward ran over, one per input row
        *dhs.last_mut().expect("nonempty trace") = dh_last;
        self.cell.backward_seq(&trace.lstm, &dhs)
    }

    /// Gradient of the emitted probability w.r.t. the input window, without
    /// accumulating parameter gradients (used by the latent-inversion search
    /// of the DR-Score). Implemented by cloning the parameter state, so it is
    /// safe to call through `&self`.
    pub fn input_gradient(&self, window: &[Vec<f64>]) -> Vec<Vec<f64>> {
        let mut scratch = self.clone();
        let trace = scratch.forward(window);
        scratch.zero_grads();
        scratch.backward(&trace, 1.0)
    }
}

impl Trainable for LstmDiscriminator {
    fn visit_params(&mut self, f: &mut dyn FnMut(&mut Matrix, &mut Matrix)) {
        self.cell.visit_params(f);
        self.head.visit_params(f);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::loss::Loss;
    use crate::optimizer::Adam;
    use rand::{rngs::StdRng, RngExt, SeedableRng};

    fn disc() -> LstmDiscriminator {
        let mut rng = StdRng::seed_from_u64(13);
        LstmDiscriminator::new(2, 8, &mut rng)
    }

    #[test]
    fn probability_in_unit_interval() {
        let d = disc();
        let w = vec![vec![10.0, -10.0]; 6];
        let p = d.probability(&w);
        assert!((0.0..=1.0).contains(&p));
        assert_eq!(p, d.forward(&w).probability());
    }

    #[test]
    fn gradient_check_input() {
        let d = disc();
        let w: Vec<Vec<f64>> = (0..5)
            .map(|t| vec![(t as f64 * 0.3).sin(), (t as f64 * 0.7).cos()])
            .collect();
        let dxs = d.input_gradient(&w);
        let eps = 1e-6;
        for t in 0..w.len() {
            for j in 0..2 {
                let mut wp = w.clone();
                wp[t][j] += eps;
                let mut wm = w.clone();
                wm[t][j] -= eps;
                let numeric = (d.probability(&wp) - d.probability(&wm)) / (2.0 * eps);
                assert!(
                    (numeric - dxs[t][j]).abs() < 1e-6,
                    "dx[{t}][{j}]: numeric {numeric} vs analytic {}",
                    dxs[t][j]
                );
            }
        }
    }

    #[test]
    fn separates_two_distributions() {
        // Real: smooth low-amplitude windows. Fake: saturated noise.
        let mut rng = StdRng::seed_from_u64(99);
        let real = |rng: &mut StdRng| -> Vec<Vec<f64>> {
            let phase: f64 = rng.random_range(0.0..3.0);
            (0..8)
                .map(|t| {
                    let v = ((t as f64) * 0.5 + phase).sin() * 0.2 + 0.5;
                    vec![v, v * 0.5]
                })
                .collect()
        };
        let fake = |rng: &mut StdRng| -> Vec<Vec<f64>> {
            (0..8)
                .map(|_| vec![rng.random_range(0.0..1.0), rng.random_range(0.0..1.0)])
                .collect()
        };
        let mut d = disc();
        let mut opt = Adam::new(0.01);
        for _ in 0..300 {
            d.zero_grads();
            for _ in 0..4 {
                let w = real(&mut rng);
                let tr = d.forward(&w);
                d.backward(&tr, Loss::Bce.gradient(tr.probability(), 1.0));
                let w = fake(&mut rng);
                let tr = d.forward(&w);
                d.backward(&tr, Loss::Bce.gradient(tr.probability(), 0.0));
            }
            opt.step(&mut d);
        }
        // Evaluate on fresh batches; individual windows can be ambiguous, so
        // compare the mean scores of the two distributions.
        let pr: f64 = (0..20).map(|_| d.probability(&real(&mut rng))).sum::<f64>() / 20.0;
        let pf: f64 = (0..20).map(|_| d.probability(&fake(&mut rng))).sum::<f64>() / 20.0;
        assert!(pr > 0.6, "real scored {pr}");
        assert!(pf < 0.4, "fake scored {pf}");
    }

    #[test]
    #[should_panic(expected = "empty window")]
    fn rejects_empty_window() {
        let _ = disc().probability(&[]);
    }
}
