//! Optimizers over any [`Trainable`] model.
//!
//! Models expose their parameters through a visitor; optimizers keep their
//! per-parameter state (momentum / Adam moments) indexed by visit order,
//! which every model keeps stable across calls.

use lgo_tensor::Matrix;

/// A model whose parameters can be visited for optimization.
///
/// Implementations must visit `(parameter, gradient)` pairs in a **stable
/// order** — optimizers associate per-parameter state by position.
pub trait Trainable {
    /// Visits every `(parameter, gradient)` matrix pair.
    fn visit_params(&mut self, f: &mut dyn FnMut(&mut Matrix, &mut Matrix));

    /// Resets all gradient accumulators to zero. Call once per minibatch.
    fn zero_grads(&mut self) {
        self.visit_params(&mut |_, g| g.fill_zero());
    }

    /// Total number of scalar parameters.
    fn param_count(&mut self) -> usize {
        let mut n = 0;
        self.visit_params(&mut |p, _| n += p.len());
        n
    }
}

/// Rescales all gradients so their global L2 norm is at most `max_norm`.
///
/// Returns the pre-clipping norm. Standard remedy for exploding LSTM
/// gradients (Pascanu et al., 2013).
///
/// # Panics
///
/// Panics if `max_norm` is not positive.
pub fn clip_global_norm<T: Trainable + ?Sized>(model: &mut T, max_norm: f64) -> f64 {
    assert!(max_norm > 0.0, "clip_global_norm: max_norm must be positive");
    let mut sq = 0.0;
    model.visit_params(&mut |_, g| {
        sq += g.as_slice().iter().map(|x| x * x).sum::<f64>();
    });
    let norm = sq.sqrt();
    if norm > max_norm {
        let k = max_norm / norm;
        model.visit_params(&mut |_, g| {
            g.map_inplace(|x| x * k);
        });
    }
    norm
}

/// Stochastic gradient descent with classical momentum.
///
/// # Examples
///
/// ```
/// use lgo_nn::{Activation, Mlp, Sgd, Trainable, Loss};
/// use rand::{rngs::StdRng, SeedableRng};
///
/// let mut rng = StdRng::seed_from_u64(0);
/// let mut mlp = Mlp::new(&[1, 4, 1], Activation::Tanh, Activation::Identity, &mut rng);
/// let mut opt = Sgd::with_momentum(0.05, 0.9);
/// for _ in 0..200 {
///     mlp.zero_grads();
///     let y = mlp.forward(&[1.0]);
///     mlp.backward(&[Loss::Mse.gradient(y[0], 2.0)]);
///     opt.step(&mut mlp);
/// }
/// assert!((mlp.forward(&[1.0])[0] - 2.0).abs() < 0.05);
/// ```
#[derive(Debug, Clone)]
pub struct Sgd {
    lr: f64,
    momentum: f64,
    velocity: Vec<Matrix>,
}

impl Sgd {
    /// Plain SGD with learning rate `lr`.
    ///
    /// # Panics
    ///
    /// Panics if `lr` is not positive.
    pub fn new(lr: f64) -> Self {
        Self::with_momentum(lr, 0.0)
    }

    /// SGD with momentum coefficient `momentum` in `[0, 1)`.
    ///
    /// # Panics
    ///
    /// Panics if `lr <= 0` or `momentum` is outside `[0, 1)`.
    pub fn with_momentum(lr: f64, momentum: f64) -> Self {
        assert!(lr > 0.0, "Sgd: lr must be positive");
        assert!(
            (0.0..1.0).contains(&momentum),
            "Sgd: momentum must be in [0, 1)"
        );
        Self {
            lr,
            momentum,
            velocity: Vec::new(),
        }
    }

    /// Current learning rate.
    pub fn learning_rate(&self) -> f64 {
        self.lr
    }

    /// Updates the learning rate (e.g. for decay schedules).
    ///
    /// # Panics
    ///
    /// Panics if `lr` is not positive.
    pub fn set_learning_rate(&mut self, lr: f64) {
        assert!(lr > 0.0, "Sgd: lr must be positive");
        self.lr = lr;
    }

    /// Applies one update using the gradients currently stored in the model.
    pub fn step<T: Trainable + ?Sized>(&mut self, model: &mut T) {
        let mut idx = 0;
        let lr = self.lr;
        let mu = self.momentum;
        let velocity = &mut self.velocity;
        model.visit_params(&mut |p, g| {
            if velocity.len() <= idx {
                velocity.push(Matrix::zeros(p.rows(), p.cols()));
            }
            let v = &mut velocity[idx];
            assert_eq!(
                v.shape(),
                p.shape(),
                "Sgd: parameter {idx} changed shape between steps"
            );
            if mu > 0.0 {
                v.map_inplace(|x| x * mu);
                v.add_scaled(g, 1.0);
                p.add_scaled(v, -lr);
            } else {
                p.add_scaled(g, -lr);
            }
            idx += 1;
        });
    }
}

/// Adam optimizer (Kingma & Ba, 2015) with bias correction.
#[derive(Debug, Clone)]
pub struct Adam {
    lr: f64,
    beta1: f64,
    beta2: f64,
    eps: f64,
    t: u64,
    moments: Vec<(Matrix, Matrix)>,
}

impl Adam {
    /// Adam with the canonical `beta1 = 0.9`, `beta2 = 0.999`, `eps = 1e-8`.
    ///
    /// # Panics
    ///
    /// Panics if `lr` is not positive.
    pub fn new(lr: f64) -> Self {
        Self::with_betas(lr, 0.9, 0.999)
    }

    /// Adam with explicit exponential-decay rates.
    ///
    /// # Panics
    ///
    /// Panics if `lr <= 0` or either beta is outside `[0, 1)`.
    pub fn with_betas(lr: f64, beta1: f64, beta2: f64) -> Self {
        assert!(lr > 0.0, "Adam: lr must be positive");
        assert!((0.0..1.0).contains(&beta1), "Adam: beta1 must be in [0, 1)");
        assert!((0.0..1.0).contains(&beta2), "Adam: beta2 must be in [0, 1)");
        Self {
            lr,
            beta1,
            beta2,
            eps: 1e-8,
            t: 0,
            moments: Vec::new(),
        }
    }

    /// Current learning rate.
    pub fn learning_rate(&self) -> f64 {
        self.lr
    }

    /// Updates the learning rate.
    ///
    /// # Panics
    ///
    /// Panics if `lr` is not positive.
    pub fn set_learning_rate(&mut self, lr: f64) {
        assert!(lr > 0.0, "Adam: lr must be positive");
        self.lr = lr;
    }

    /// Applies one update using the gradients currently stored in the model.
    pub fn step<T: Trainable + ?Sized>(&mut self, model: &mut T) {
        self.t += 1;
        let t = self.t as f64;
        let bc1 = 1.0 - self.beta1.powf(t);
        let bc2 = 1.0 - self.beta2.powf(t);
        let (lr, b1, b2, eps) = (self.lr, self.beta1, self.beta2, self.eps);
        let moments = &mut self.moments;
        let mut idx = 0;
        model.visit_params(&mut |p, g| {
            if moments.len() <= idx {
                moments.push((
                    Matrix::zeros(p.rows(), p.cols()),
                    Matrix::zeros(p.rows(), p.cols()),
                ));
            }
            let (m, v) = &mut moments[idx];
            assert_eq!(
                m.shape(),
                p.shape(),
                "Adam: parameter {idx} changed shape between steps"
            );
            let (ps, gs) = (p.as_mut_slice(), g.as_slice());
            for ((pi, &gi), (mi, vi)) in ps
                .iter_mut()
                .zip(gs)
                .zip(m.as_mut_slice().iter_mut().zip(v.as_mut_slice().iter_mut()))
            {
                *mi = b1 * *mi + (1.0 - b1) * gi;
                *vi = b2 * *vi + (1.0 - b2) * gi * gi;
                let mhat = *mi / bc1;
                let vhat = *vi / bc2;
                *pi -= lr * mhat / (vhat.sqrt() + eps);
            }
            idx += 1;
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A 1-parameter quadratic bowl f(w) = (w - 3)^2 used to test optimizers.
    struct Bowl {
        w: Matrix,
        g: Matrix,
    }

    impl Bowl {
        fn new(start: f64) -> Self {
            Self {
                w: Matrix::filled(1, 1, start),
                g: Matrix::zeros(1, 1),
            }
        }

        fn compute_grad(&mut self) {
            let w = self.w[(0, 0)];
            self.g[(0, 0)] = 2.0 * (w - 3.0);
        }
    }

    impl Trainable for Bowl {
        fn visit_params(&mut self, f: &mut dyn FnMut(&mut Matrix, &mut Matrix)) {
            f(&mut self.w, &mut self.g);
        }
    }

    #[test]
    fn sgd_converges_on_quadratic() {
        let mut b = Bowl::new(0.0);
        let mut opt = Sgd::new(0.1);
        for _ in 0..100 {
            b.compute_grad();
            opt.step(&mut b);
        }
        assert!((b.w[(0, 0)] - 3.0).abs() < 1e-6);
    }

    #[test]
    fn momentum_accelerates() {
        let run = |mu: f64, iters: usize| {
            let mut b = Bowl::new(0.0);
            let mut opt = Sgd::with_momentum(0.01, mu);
            for _ in 0..iters {
                b.compute_grad();
                opt.step(&mut b);
            }
            (b.w[(0, 0)] - 3.0).abs()
        };
        assert!(run(0.9, 50) < run(0.0, 50));
    }

    #[test]
    fn adam_converges_on_quadratic() {
        let mut b = Bowl::new(-5.0);
        let mut opt = Adam::new(0.3);
        for _ in 0..300 {
            b.compute_grad();
            opt.step(&mut b);
        }
        assert!((b.w[(0, 0)] - 3.0).abs() < 1e-3, "w = {}", b.w[(0, 0)]);
    }

    #[test]
    fn zero_grads_clears() {
        let mut b = Bowl::new(0.0);
        b.compute_grad();
        assert_ne!(b.g[(0, 0)], 0.0);
        b.zero_grads();
        assert_eq!(b.g[(0, 0)], 0.0);
    }

    #[test]
    fn param_count_counts_scalars() {
        let mut b = Bowl::new(0.0);
        assert_eq!(b.param_count(), 1);
    }

    #[test]
    fn clipping_caps_global_norm() {
        let mut b = Bowl::new(103.0); // gradient 200
        b.compute_grad();
        let pre = clip_global_norm(&mut b, 1.0);
        assert!((pre - 200.0).abs() < 1e-9);
        b.visit_params(&mut |_, g| assert!((g.frobenius_norm() - 1.0).abs() < 1e-9));
        // Below the cap nothing changes.
        let pre2 = clip_global_norm(&mut b, 10.0);
        assert!((pre2 - 1.0).abs() < 1e-9);
        b.visit_params(&mut |_, g| assert!((g.frobenius_norm() - 1.0).abs() < 1e-9));
    }

    #[test]
    #[should_panic(expected = "lr must be positive")]
    fn sgd_rejects_bad_lr() {
        let _ = Sgd::new(0.0);
    }

    #[test]
    #[should_panic(expected = "beta1")]
    fn adam_rejects_bad_beta() {
        let _ = Adam::with_betas(0.1, 1.0, 0.999);
    }
}
