/// Scalar loss functions with analytic gradients.
///
/// # Examples
///
/// ```
/// use lgo_nn::Loss;
///
/// assert_eq!(Loss::Mse.value(3.0, 1.0), 4.0);
/// assert_eq!(Loss::Mse.gradient(3.0, 1.0), 4.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Loss {
    /// Squared error `(pred - target)^2` — glucose regression.
    #[default]
    Mse,
    /// Binary cross-entropy on a probability in `(0, 1)` — GAN training.
    Bce,
}

impl Loss {
    /// Loss value for one prediction/target pair.
    ///
    /// For [`Loss::Bce`] the prediction is clamped away from 0/1 to keep the
    /// logarithms finite.
    pub fn value(self, pred: f64, target: f64) -> f64 {
        lgo_tensor::sanitize::check_finite_scalar(pred, "Loss::value pred");
        lgo_tensor::sanitize::check_finite_scalar(target, "Loss::value target");
        match self {
            Loss::Mse => (pred - target) * (pred - target),
            Loss::Bce => {
                let p = pred.clamp(1e-12, 1.0 - 1e-12);
                -(target * p.ln() + (1.0 - target) * (1.0 - p).ln())
            }
        }
    }

    /// Gradient of the loss with respect to the prediction.
    pub fn gradient(self, pred: f64, target: f64) -> f64 {
        lgo_tensor::sanitize::check_finite_scalar(pred, "Loss::gradient pred");
        lgo_tensor::sanitize::check_finite_scalar(target, "Loss::gradient target");
        match self {
            Loss::Mse => 2.0 * (pred - target),
            Loss::Bce => {
                let p = pred.clamp(1e-12, 1.0 - 1e-12);
                (p - target) / (p * (1.0 - p))
            }
        }
    }

    /// Mean loss over paired slices.
    ///
    /// # Panics
    ///
    /// Panics if the slices have different lengths or are empty.
    pub fn mean_value(self, preds: &[f64], targets: &[f64]) -> f64 {
        assert_eq!(preds.len(), targets.len(), "mean_value: length mismatch");
        assert!(!preds.is_empty(), "mean_value: empty inputs");
        preds
            .iter()
            .zip(targets)
            .map(|(&p, &t)| self.value(p, t))
            .sum::<f64>()
            / preds.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mse_gradient_matches_finite_difference() {
        let (p, t) = (1.3, -0.4);
        let eps = 1e-6;
        let numeric = (Loss::Mse.value(p + eps, t) - Loss::Mse.value(p - eps, t)) / (2.0 * eps);
        assert!((numeric - Loss::Mse.gradient(p, t)).abs() < 1e-6);
    }

    #[test]
    fn bce_gradient_matches_finite_difference() {
        for &(p, t) in &[(0.3, 1.0), (0.8, 0.0), (0.5, 0.5)] {
            let eps = 1e-7;
            let numeric =
                (Loss::Bce.value(p + eps, t) - Loss::Bce.value(p - eps, t)) / (2.0 * eps);
            assert!(
                (numeric - Loss::Bce.gradient(p, t)).abs() < 1e-4,
                "p={p} t={t}"
            );
        }
    }

    #[test]
    fn bce_is_finite_at_extremes() {
        assert!(Loss::Bce.value(0.0, 1.0).is_finite());
        assert!(Loss::Bce.value(1.0, 0.0).is_finite());
        assert!(Loss::Bce.gradient(0.0, 1.0).is_finite());
    }

    #[test]
    fn bce_minimized_at_target() {
        assert!(Loss::Bce.value(0.99, 1.0) < Loss::Bce.value(0.5, 1.0));
        assert!(Loss::Bce.value(0.01, 0.0) < Loss::Bce.value(0.5, 0.0));
    }

    #[test]
    fn mean_value_averages() {
        let v = Loss::Mse.mean_value(&[1.0, 3.0], &[0.0, 0.0]);
        assert_eq!(v, 5.0);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn mean_value_checks_lengths() {
        let _ = Loss::Mse.mean_value(&[1.0], &[]);
    }

    #[cfg(all(feature = "strict-numerics", debug_assertions))]
    #[test]
    #[should_panic(expected = "strict-numerics: non-finite value in Loss::value pred")]
    fn strict_numerics_catches_nan_prediction() {
        let _ = Loss::Mse.value(f64::NAN, 1.0);
    }

    #[cfg(all(feature = "strict-numerics", debug_assertions))]
    #[test]
    #[should_panic(expected = "strict-numerics: non-finite value in Loss::gradient target")]
    fn strict_numerics_catches_nan_target() {
        let _ = Loss::Bce.gradient(0.5, f64::NAN);
    }
}
