use lgo_tensor::Matrix;
use rand::RngExt;

use crate::activation::Activation;
use crate::dense::Dense;
use crate::optimizer::Trainable;

/// A multi-layer perceptron: a stack of [`Dense`] layers with a shared hidden
/// activation and a separate output activation.
///
/// Used for small auxiliary models and as a reference architecture in tests
/// and benchmarks; the paper's main models are recurrent.
///
/// # Examples
///
/// ```
/// use lgo_nn::{Activation, Mlp};
/// use rand::{rngs::StdRng, SeedableRng};
///
/// let mut rng = StdRng::seed_from_u64(0);
/// let mut mlp = Mlp::new(&[4, 16, 2], Activation::Relu, Activation::Identity, &mut rng);
/// let y = mlp.forward(&[1.0, 2.0, 3.0, 4.0]);
/// assert_eq!(y.len(), 2);
/// ```
#[derive(Debug, Clone)]
pub struct Mlp {
    layers: Vec<Dense>,
}

impl Mlp {
    /// Creates an MLP with the given layer widths (`sizes[0]` inputs through
    /// `sizes[n-1]` outputs).
    ///
    /// # Panics
    ///
    /// Panics if fewer than two sizes are given or any size is zero.
    pub fn new<R: RngExt + ?Sized>(
        sizes: &[usize],
        hidden_activation: Activation,
        output_activation: Activation,
        rng: &mut R,
    ) -> Self {
        assert!(sizes.len() >= 2, "Mlp::new: need at least input and output sizes");
        let mut layers = Vec::with_capacity(sizes.len() - 1);
        for i in 0..sizes.len() - 1 {
            let act = if i == sizes.len() - 2 {
                output_activation
            } else {
                hidden_activation
            };
            layers.push(Dense::new(sizes[i], sizes[i + 1], act, rng));
        }
        Self { layers }
    }

    /// Input dimensionality.
    pub fn input_size(&self) -> usize {
        self.layers[0].input_size()
    }

    /// Output dimensionality.
    pub fn output_size(&self) -> usize {
        // lint: allow(L1): the constructor always builds at least one layer
        self.layers.last().expect("nonempty").output_size()
    }

    /// Forward pass caching intermediates for [`Self::backward`].
    pub fn forward(&mut self, x: &[f64]) -> Vec<f64> {
        let mut v = x.to_vec();
        for layer in &mut self.layers {
            v = layer.forward(&v);
        }
        v
    }

    /// Pure inference without touching caches.
    pub fn infer(&self, x: &[f64]) -> Vec<f64> {
        let mut v = x.to_vec();
        for layer in &self.layers {
            v = layer.infer(&v);
        }
        v
    }

    /// Backpropagates the output gradient, accumulating parameter gradients
    /// and returning the input gradient.
    ///
    /// # Panics
    ///
    /// Panics if called before [`Self::forward`].
    pub fn backward(&mut self, dy: &[f64]) -> Vec<f64> {
        let mut d = dy.to_vec();
        for layer in self.layers.iter_mut().rev() {
            d = layer.backward(&d);
        }
        d
    }
}

impl Trainable for Mlp {
    fn visit_params(&mut self, f: &mut dyn FnMut(&mut Matrix, &mut Matrix)) {
        for layer in &mut self.layers {
            layer.visit_params(f);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::loss::Loss;
    use crate::optimizer::Adam;
    use rand::{rngs::StdRng, SeedableRng};

    #[test]
    fn forward_and_infer_agree() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut mlp = Mlp::new(&[3, 5, 2], Activation::Tanh, Activation::Identity, &mut rng);
        let x = [0.1, -0.7, 0.4];
        assert_eq!(mlp.forward(&x), mlp.infer(&x));
        assert_eq!(mlp.input_size(), 3);
        assert_eq!(mlp.output_size(), 2);
    }

    #[test]
    fn gradient_check_deep() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut mlp = Mlp::new(&[2, 4, 3, 1], Activation::Tanh, Activation::Sigmoid, &mut rng);
        let x = [0.3, -0.8];
        mlp.zero_grads();
        mlp.forward(&x);
        let dx = mlp.backward(&[1.0]);
        let eps = 1e-6;
        for j in 0..2 {
            let mut xp = x;
            xp[j] += eps;
            let mut xm = x;
            xm[j] -= eps;
            let numeric = (mlp.infer(&xp)[0] - mlp.infer(&xm)[0]) / (2.0 * eps);
            assert!((numeric - dx[j]).abs() < 1e-6);
        }
    }

    #[test]
    fn learns_xor() {
        let mut rng = StdRng::seed_from_u64(42);
        let mut mlp = Mlp::new(&[2, 8, 1], Activation::Tanh, Activation::Sigmoid, &mut rng);
        let xs = [[0.0, 0.0], [0.0, 1.0], [1.0, 0.0], [1.0, 1.0]];
        let ys = [0.0, 1.0, 1.0, 0.0];
        let mut opt = Adam::new(0.05);
        for _ in 0..500 {
            mlp.zero_grads();
            for (x, &y) in xs.iter().zip(&ys) {
                let p = mlp.forward(x)[0];
                mlp.backward(&[Loss::Bce.gradient(p, y)]);
            }
            opt.step(&mut mlp);
        }
        for (x, &y) in xs.iter().zip(&ys) {
            let p = mlp.infer(x)[0];
            assert!((p - y).abs() < 0.25, "xor({x:?}) = {p}, want {y}");
        }
    }

    #[test]
    #[should_panic(expected = "at least input and output")]
    fn rejects_single_size() {
        let mut rng = StdRng::seed_from_u64(0);
        let _ = Mlp::new(&[3], Activation::Relu, Activation::Identity, &mut rng);
    }
}
