use lgo_tensor::Matrix;
use rand::RngExt;

use crate::activation::sigmoid;
use crate::init;
use crate::optimizer::Trainable;

/// The hidden state carried between GRU steps.
#[derive(Debug, Clone, PartialEq)]
pub struct GruState {
    /// Hidden state.
    pub h: Vec<f64>,
}

impl GruState {
    /// The all-zero initial state for a cell of width `hidden`.
    pub fn zeros(hidden: usize) -> Self {
        Self {
            h: vec![0.0; hidden],
        }
    }
}

/// Per-timestep cache retained for backpropagation through time.
#[derive(Debug, Clone)]
struct StepCache {
    x: Vec<f64>,
    h_prev: Vec<f64>,
    r: Vec<f64>,
    z: Vec<f64>,
    n: Vec<f64>,
    hn_pre: Vec<f64>, // W_hn h_prev + b_hn (needed for the reset-gate path)
    h: Vec<f64>,
}

/// The forward trace of a sequence through a [`GruCell`], consumed by
/// [`GruCell::backward_seq`].
#[derive(Debug, Clone)]
pub struct GruTrace {
    steps: Vec<StepCache>,
}

impl GruTrace {
    /// Number of timesteps.
    pub fn len(&self) -> usize {
        self.steps.len()
    }

    /// Whether the trace is empty.
    pub fn is_empty(&self) -> bool {
        self.steps.is_empty()
    }

    /// Hidden state after timestep `t`.
    ///
    /// # Panics
    ///
    /// Panics if `t` is out of range.
    pub fn hidden(&self, t: usize) -> &[f64] {
        &self.steps[t].h
    }

    /// Hidden state after the final timestep.
    ///
    /// # Panics
    ///
    /// Panics if the trace is empty.
    pub fn last_hidden(&self) -> &[f64] {
        // lint: allow(L1): documented # Panics contract on an empty trace
        &self.steps.last().expect("GruTrace::last_hidden on empty trace").h
    }

    /// All hidden states.
    pub fn hiddens(&self) -> Vec<Vec<f64>> {
        self.steps.iter().map(|s| s.h.clone()).collect()
    }
}

/// A gated recurrent unit (Cho et al., 2014) with full backpropagation
/// through time — the lighter alternative to [`crate::LstmCell`], used by
/// the architecture ablation of the forecaster.
///
/// Gate layout (PyTorch convention):
///
/// ```text
/// r = σ(W_ir x + b_ir + W_hr h + b_hr)        reset gate
/// z = σ(W_iz x + b_iz + W_hz h + b_hz)        update gate
/// n = tanh(W_in x + b_in + r ⊙ (W_hn h + b_hn))   candidate
/// h' = (1 − z) ⊙ n + z ⊙ h
/// ```
///
/// # Examples
///
/// ```
/// use lgo_nn::GruCell;
/// use rand::{rngs::StdRng, SeedableRng};
///
/// let mut rng = StdRng::seed_from_u64(1);
/// let cell = GruCell::new(3, 8, &mut rng);
/// let trace = cell.forward_seq(&vec![vec![0.1, 0.2, 0.3]; 5]);
/// assert_eq!(trace.last_hidden().len(), 8);
/// ```
#[derive(Debug, Clone)]
pub struct GruCell {
    input: usize,
    hidden: usize,
    w_x: Matrix, // (3H, X): blocks r|z|n
    w_h: Matrix, // (3H, H)
    b_x: Matrix, // (3H, 1)
    b_h: Matrix, // (3H, 1)
    gw_x: Matrix,
    gw_h: Matrix,
    gb_x: Matrix,
    gb_h: Matrix,
}

impl GruCell {
    /// Creates a cell mapping `input`-dim vectors to an `hidden`-dim state.
    ///
    /// # Panics
    ///
    /// Panics if either size is zero.
    pub fn new<R: RngExt + ?Sized>(input: usize, hidden: usize, rng: &mut R) -> Self {
        assert!(input > 0 && hidden > 0, "GruCell::new: zero-sized cell");
        Self {
            input,
            hidden,
            w_x: init::xavier_uniform(3 * hidden, input, rng),
            w_h: init::recurrent(3 * hidden, hidden, rng),
            b_x: Matrix::zeros(3 * hidden, 1),
            b_h: Matrix::zeros(3 * hidden, 1),
            gw_x: Matrix::zeros(3 * hidden, input),
            gw_h: Matrix::zeros(3 * hidden, hidden),
            gb_x: Matrix::zeros(3 * hidden, 1),
            gb_h: Matrix::zeros(3 * hidden, 1),
        }
    }

    /// Input dimensionality.
    pub fn input_size(&self) -> usize {
        self.input
    }

    /// Hidden-state dimensionality.
    pub fn hidden_size(&self) -> usize {
        self.hidden
    }

    fn step_internal(&self, x: &[f64], state: &GruState) -> StepCache {
        assert_eq!(x.len(), self.input, "GruCell: input width mismatch");
        let zx = self.w_x.matvec(x);
        let zh = self.w_h.matvec(&state.h);
        self.finish_step(&zx, &zh, x, &state.h)
    }

    /// Applies the bias combine and gate nonlinearities to precomputed
    /// input-side (`zx = W_x x`) and recurrent (`zh = W_h h`) products.
    /// Shared verbatim by the stepwise and batched forward paths, so both
    /// produce identical bits for every gate and hidden value.
    fn finish_step(&self, zx: &[f64], zh: &[f64], x: &[f64], h_prev: &[f64]) -> StepCache {
        let h = self.hidden;
        let bx = self.b_x.as_slice();
        let bh = self.b_h.as_slice();
        let mut r = vec![0.0; h];
        let mut z = vec![0.0; h];
        let mut n = vec![0.0; h];
        let mut hn_pre = vec![0.0; h];
        for j in 0..h {
            r[j] = sigmoid(zx[j] + bx[j] + zh[j] + bh[j]);
            z[j] = sigmoid(zx[h + j] + bx[h + j] + zh[h + j] + bh[h + j]);
            hn_pre[j] = zh[2 * h + j] + bh[2 * h + j];
            n[j] = (zx[2 * h + j] + bx[2 * h + j] + r[j] * hn_pre[j]).tanh();
        }
        let mut h_out = vec![0.0; h];
        for j in 0..h {
            h_out[j] = (1.0 - z[j]) * n[j] + z[j] * h_prev[j];
        }
        lgo_tensor::sanitize::check_finite(&n, "GruCell candidate gate");
        lgo_tensor::sanitize::check_finite(&h_out, "GruCell hidden state");
        StepCache {
            x: x.to_vec(),
            h_prev: h_prev.to_vec(),
            r,
            z,
            n,
            hn_pre,
            h: h_out,
        }
    }

    /// Advances the state by one input (pure inference).
    ///
    /// # Panics
    ///
    /// Panics if widths mismatch.
    pub fn step(&self, x: &[f64], state: &GruState) -> GruState {
        assert_eq!(state.h.len(), self.hidden, "GruCell: state width mismatch");
        GruState {
            h: self.step_internal(x, state).h,
        }
    }

    /// Runs a whole sequence from the zero state, retaining the trace.
    ///
    /// Routed through [`Self::forward_batch`], so the input-side gate
    /// products go through one tiled matmul instead of a matvec per
    /// timestep; the trace is bit-identical to the stepwise loop.
    pub fn forward_seq(&self, xs: &[Vec<f64>]) -> GruTrace {
        let mut traces = self.forward_batch(&[xs]);
        // lint: allow(L1): forward_batch returns one trace per sequence
        traces.pop().expect("one trace for one sequence")
    }

    /// Runs several sequences from the zero state at once, returning one
    /// trace per sequence (in input order).
    ///
    /// The input-side gate products of every sequence and timestep are
    /// computed by a single tiled [`Matrix::matmul_nt`], and the recurrent
    /// products of each timestep are batched across sequences; the scalar
    /// combine is shared with the stepwise path, so every trace is
    /// bit-for-bit what [`Self::forward_seq`]'s naive loop would produce.
    /// Sequences of different lengths are grouped internally.
    ///
    /// # Panics
    ///
    /// Panics if any input row has the wrong width.
    pub fn forward_batch(&self, seqs: &[&[Vec<f64>]]) -> Vec<GruTrace> {
        let mut out: Vec<Option<GruTrace>> = vec![None; seqs.len()];
        let mut by_len: std::collections::BTreeMap<usize, Vec<usize>> = Default::default();
        for (k, s) in seqs.iter().enumerate() {
            by_len.entry(s.len()).or_default().push(k);
        }
        for (t_len, idxs) in by_len {
            if t_len == 0 {
                for k in idxs {
                    out[k] = Some(GruTrace { steps: Vec::new() });
                }
                continue;
            }
            let group: Vec<&[Vec<f64>]> = idxs.iter().map(|&k| seqs[k]).collect();
            for (k, trace) in idxs.into_iter().zip(self.forward_batch_uniform(&group, t_len)) {
                out[k] = Some(trace);
            }
        }
        out.into_iter()
            // lint: allow(L1): every index is filled by exactly one length group
            .map(|t| t.expect("trace computed for every sequence"))
            .collect()
    }

    /// [`Self::forward_batch`] for sequences of one shared length `t_len`.
    fn forward_batch_uniform(&self, seqs: &[&[Vec<f64>]], t_len: usize) -> Vec<GruTrace> {
        let bsz = seqs.len();
        for s in seqs {
            for x in *s {
                assert_eq!(x.len(), self.input, "GruCell: input width mismatch");
            }
        }
        let rows: Vec<&[f64]> = seqs.iter().flat_map(|s| s.iter().map(Vec::as_slice)).collect();
        let zx_all = Matrix::from_rows(&rows).matmul_nt(&self.w_x);
        let mut h_prev = Matrix::zeros(bsz, self.hidden);
        let mut traces: Vec<GruTrace> = (0..bsz)
            .map(|_| GruTrace { steps: Vec::with_capacity(t_len) })
            .collect();
        // Time-major walk: `t` indexes into every sequence inside the
        // nested batch loop, so an enumerate over one of them misleads.
        #[allow(clippy::needless_range_loop)]
        for t in 0..t_len {
            let zh_all = h_prev.matmul_nt(&self.w_h);
            for b in 0..bsz {
                let cache = self.finish_step(
                    zx_all.row(b * t_len + t),
                    zh_all.row(b),
                    &seqs[b][t],
                    h_prev.row(b),
                );
                h_prev.row_mut(b).copy_from_slice(&cache.h);
                traces[b].steps.push(cache);
            }
        }
        traces
    }

    /// Backpropagation through time; `dh[t]` is the loss gradient w.r.t.
    /// the hidden state at step `t`. Gradients accumulate; input gradients
    /// are returned.
    ///
    /// # Panics
    ///
    /// Panics if `dh.len() != trace.len()` or widths mismatch.
    pub fn backward_seq(&mut self, trace: &GruTrace, dh: &[Vec<f64>]) -> Vec<Vec<f64>> {
        let Self {
            input,
            hidden,
            w_x,
            w_h,
            gw_x,
            gw_h,
            gb_x,
            gb_h,
            ..
        } = self;
        bptt_impl(
            w_x,
            w_h,
            *input,
            *hidden,
            trace,
            dh,
            Some((gw_x, gw_h, gb_x, gb_h)),
        )
    }

    /// Pure input-gradient BPTT: like [`Self::backward_seq`] but without
    /// accumulating parameter gradients, so shared read-only cells can
    /// compute d-loss/d-input through `&self`.
    ///
    /// # Panics
    ///
    /// Panics if `dh.len() != trace.len()` or widths mismatch.
    pub fn input_grad_seq(&self, trace: &GruTrace, dh: &[Vec<f64>]) -> Vec<Vec<f64>> {
        bptt_impl(&self.w_x, &self.w_h, self.input, self.hidden, trace, dh, None)
    }
}

/// The BPTT core shared by the accumulating and pure paths: walks the trace
/// backwards and returns per-timestep input gradients; when `grads` is
/// `Some`, parameter gradients accumulate into the
/// `(gw_x, gw_h, gb_x, gb_h)` sinks.
fn bptt_impl(
    w_x: &Matrix,
    w_h: &Matrix,
    input: usize,
    hidden: usize,
    trace: &GruTrace,
    dh: &[Vec<f64>],
    mut grads: Option<(&mut Matrix, &mut Matrix, &mut Matrix, &mut Matrix)>,
) -> Vec<Vec<f64>> {
    assert_eq!(
        dh.len(),
        trace.len(),
        "backward_seq: {} gradients for {} steps",
        dh.len(),
        trace.len()
    );
    let hsz = hidden;
    let mut dxs = vec![vec![0.0; input]; trace.len()];
    let mut dh_next = vec![0.0; hsz];
    for t in (0..trace.len()).rev() {
        let s = &trace.steps[t];
        assert_eq!(dh[t].len(), hsz, "backward_seq: bad dh width at {t}");
        let dht: Vec<f64> = dh[t].iter().zip(&dh_next).map(|(&a, &b)| a + b).collect();
        // dzx layout r|z|n against w_x; dzh layout r|z|n against w_h.
        let mut dzx = vec![0.0; 3 * hsz];
        let mut dzh = vec![0.0; 3 * hsz];
        let mut dh_prev = vec![0.0; hsz];
        for j in 0..hsz {
            let dz = dht[j] * (s.h_prev[j] - s.n[j]);
            let dn = dht[j] * (1.0 - s.z[j]);
            dh_prev[j] += dht[j] * s.z[j];
            let dn_pre = dn * (1.0 - s.n[j] * s.n[j]);
            let dr = dn_pre * s.hn_pre[j];
            let dz_pre = dz * s.z[j] * (1.0 - s.z[j]);
            let dr_pre = dr * s.r[j] * (1.0 - s.r[j]);
            dzx[j] = dr_pre;
            dzx[hsz + j] = dz_pre;
            dzx[2 * hsz + j] = dn_pre;
            dzh[j] = dr_pre;
            dzh[hsz + j] = dz_pre;
            dzh[2 * hsz + j] = dn_pre * s.r[j];
        }
        if let Some((gw_x, gw_h, gb_x, gb_h)) = grads.as_mut() {
            gw_x.add_outer(&dzx, &s.x, 1.0);
            gw_h.add_outer(&dzh, &s.h_prev, 1.0);
            for (g, &d) in gb_x.as_mut_slice().iter_mut().zip(&dzx) {
                *g += d;
            }
            for (g, &d) in gb_h.as_mut_slice().iter_mut().zip(&dzh) {
                *g += d;
            }
        }
        dxs[t] = w_x.matvec_transpose(&dzx);
        let rec = w_h.matvec_transpose(&dzh);
        for (a, b) in dh_prev.iter_mut().zip(rec) {
            *a += b;
        }
        dh_next = dh_prev;
    }
    dxs
}

impl Trainable for GruCell {
    fn visit_params(&mut self, f: &mut dyn FnMut(&mut Matrix, &mut Matrix)) {
        f(&mut self.w_x, &mut self.gw_x);
        f(&mut self.w_h, &mut self.gw_h);
        f(&mut self.b_x, &mut self.gb_x);
        f(&mut self.b_h, &mut self.gb_h);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{rngs::StdRng, SeedableRng};

    fn cell(input: usize, hidden: usize) -> GruCell {
        let mut rng = StdRng::seed_from_u64(31);
        GruCell::new(input, hidden, &mut rng)
    }

    fn seq(len: usize, width: usize) -> Vec<Vec<f64>> {
        (0..len)
            .map(|t| (0..width).map(|j| ((t * 5 + j * 2) as f64 * 0.21).sin() * 0.6).collect())
            .collect()
    }

    fn loss(cell: &GruCell, xs: &[Vec<f64>]) -> f64 {
        cell.forward_seq(xs).hiddens().iter().flatten().sum()
    }

    #[cfg(all(feature = "strict-numerics", debug_assertions))]
    #[test]
    #[should_panic(expected = "strict-numerics")]
    fn strict_numerics_catches_nan_input() {
        let c = cell(2, 3);
        let _ = c.forward_seq(&[vec![0.1, f64::NAN]]);
    }

    #[test]
    fn forward_shapes_and_step_agreement() {
        let c = cell(3, 5);
        let xs = seq(6, 3);
        let trace = c.forward_seq(&xs);
        assert_eq!(trace.len(), 6);
        assert!(!trace.is_empty());
        let mut st = GruState::zeros(5);
        for (t, x) in xs.iter().enumerate() {
            st = c.step(x, &st);
            assert_eq!(st.h, trace.hidden(t));
        }
        assert_eq!(trace.last_hidden(), trace.hidden(5));
    }

    #[test]
    fn forward_batch_is_bitwise_identical_to_step_loop() {
        let c = cell(3, 4);
        let seqs: Vec<Vec<Vec<f64>>> = vec![seq(5, 3), seq(8, 3), seq(5, 3)];
        let refs: Vec<&[Vec<f64>]> = seqs.iter().map(Vec::as_slice).collect();
        let traces = c.forward_batch(&refs);
        for (xs, trace) in seqs.iter().zip(&traces) {
            let mut st = GruState::zeros(4);
            for (t, x) in xs.iter().enumerate() {
                st = c.step(x, &st);
                for (a, b) in st.h.iter().zip(trace.hidden(t)) {
                    assert_eq!(a.to_bits(), b.to_bits(), "seq len {} step {t}", xs.len());
                }
            }
        }
        assert!(c.forward_batch(&[]).is_empty());
    }

    #[test]
    fn hidden_states_bounded() {
        let c = cell(2, 4);
        let xs: Vec<Vec<f64>> = (0..40).map(|_| vec![50.0, -50.0]).collect();
        for h in c.forward_seq(&xs).hiddens() {
            assert!(h.iter().all(|v| v.abs() <= 1.0));
        }
    }

    #[test]
    fn bptt_gradient_check_inputs() {
        let mut c = cell(3, 4);
        let xs = seq(5, 3);
        c.zero_grads();
        let trace = c.forward_seq(&xs);
        let dh = vec![vec![1.0; 4]; 5];
        let dxs = c.backward_seq(&trace, &dh);
        let eps = 1e-6;
        for t in 0..xs.len() {
            for j in 0..3 {
                let mut xp = xs.clone();
                xp[t][j] += eps;
                let mut xm = xs.clone();
                xm[t][j] -= eps;
                let numeric = (loss(&c, &xp) - loss(&c, &xm)) / (2.0 * eps);
                assert!(
                    (numeric - dxs[t][j]).abs() < 1e-5,
                    "dx[{t}][{j}]: numeric {numeric} vs analytic {}",
                    dxs[t][j]
                );
            }
        }
    }

    #[test]
    fn bptt_gradient_check_weights() {
        let mut c = cell(2, 3);
        let xs = seq(4, 2);
        c.zero_grads();
        let trace = c.forward_seq(&xs);
        c.backward_seq(&trace, &vec![vec![1.0; 3]; 4]);
        let eps = 1e-6;
        for &(r, col) in &[(0usize, 0usize), (4, 1), (8, 0)] {
            let mut cp = c.clone();
            cp.w_x[(r, col)] += eps;
            let mut cm = c.clone();
            cm.w_x[(r, col)] -= eps;
            let numeric = (loss(&cp, &xs) - loss(&cm, &xs)) / (2.0 * eps);
            assert!(
                (numeric - c.gw_x[(r, col)]).abs() < 1e-5,
                "gw_x[{r},{col}]: numeric {numeric} vs {}",
                c.gw_x[(r, col)]
            );
        }
        for &(r, col) in &[(1usize, 0usize), (5, 2), (7, 1)] {
            let mut cp = c.clone();
            cp.w_h[(r, col)] += eps;
            let mut cm = c.clone();
            cm.w_h[(r, col)] -= eps;
            let numeric = (loss(&cp, &xs) - loss(&cm, &xs)) / (2.0 * eps);
            assert!(
                (numeric - c.gw_h[(r, col)]).abs() < 1e-5,
                "gw_h[{r},{col}]: numeric {numeric} vs {}",
                c.gw_h[(r, col)]
            );
        }
        for &r in &[0usize, 3, 6, 8] {
            for (b, g) in [(0usize, 0usize), (1, 1)] {
                let _ = (b, g);
            }
            let mut cp = c.clone();
            cp.b_h[(r, 0)] += eps;
            let mut cm = c.clone();
            cm.b_h[(r, 0)] -= eps;
            let numeric = (loss(&cp, &xs) - loss(&cm, &xs)) / (2.0 * eps);
            assert!(
                (numeric - c.gb_h[(r, 0)]).abs() < 1e-5,
                "gb_h[{r}]: numeric {numeric} vs {}",
                c.gb_h[(r, 0)]
            );
        }
    }

    #[test]
    fn trainable_visits_four_params() {
        let mut c = cell(2, 3);
        let mut n = 0;
        c.visit_params(&mut |_, _| n += 1);
        assert_eq!(n, 4);
        assert_eq!(c.param_count(), 9 * 2 + 9 * 3 + 9 + 9);
    }

    #[test]
    #[should_panic(expected = "gradients for")]
    fn backward_length_checked() {
        let mut c = cell(2, 3);
        let trace = c.forward_seq(&seq(3, 2));
        let _ = c.backward_seq(&trace, &[]);
    }
}
