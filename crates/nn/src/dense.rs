use lgo_tensor::Matrix;
use rand::RngExt;

use crate::activation::Activation;
use crate::init;
use crate::optimizer::Trainable;

/// Forward-pass intermediates of a [`Dense`] layer, held by the caller.
///
/// Used when one layer instance is applied at many positions of a sequence
/// (e.g. the per-timestep output head of a sequence-to-sequence LSTM), where
/// the layer's single internal cache would be overwritten.
#[derive(Debug, Clone)]
pub struct DenseCache {
    x: Vec<f64>,
    pre: Vec<f64>,
    post: Vec<f64>,
}

/// A fully connected layer `y = act(W x + b)` operating on single vectors.
///
/// The layer caches the last forward pass so `backward` can compute weight
/// gradients; gradients *accumulate* across calls until [`Trainable::zero_grads`]
/// is invoked, which is what minibatch training wants.
///
/// # Examples
///
/// ```
/// use lgo_nn::{Activation, Dense};
/// use rand::{rngs::StdRng, SeedableRng};
///
/// let mut rng = StdRng::seed_from_u64(0);
/// let mut layer = Dense::new(3, 2, Activation::Identity, &mut rng);
/// let y = layer.forward(&[1.0, 0.0, -1.0]);
/// assert_eq!(y.len(), 2);
/// ```
#[derive(Debug, Clone)]
pub struct Dense {
    weight: Matrix, // (out, in)
    bias: Matrix,   // (out, 1)
    grad_weight: Matrix,
    grad_bias: Matrix,
    activation: Activation,
    // Forward cache (input, pre-activation, post-activation).
    cache: Option<(Vec<f64>, Vec<f64>, Vec<f64>)>,
}

impl Dense {
    /// Creates a layer with Xavier-uniform weights and zero biases.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is zero.
    pub fn new<R: RngExt + ?Sized>(
        input: usize,
        output: usize,
        activation: Activation,
        rng: &mut R,
    ) -> Self {
        assert!(input > 0 && output > 0, "Dense::new: zero-sized layer");
        Self {
            weight: init::xavier_uniform(output, input, rng),
            bias: Matrix::zeros(output, 1),
            grad_weight: Matrix::zeros(output, input),
            grad_bias: Matrix::zeros(output, 1),
            activation,
            cache: None,
        }
    }

    /// Input dimensionality.
    pub fn input_size(&self) -> usize {
        self.weight.cols()
    }

    /// Output dimensionality.
    pub fn output_size(&self) -> usize {
        self.weight.rows()
    }

    /// The layer's activation function.
    pub fn activation(&self) -> Activation {
        self.activation
    }

    /// Immutable view of the weight matrix (rows = outputs).
    pub fn weight(&self) -> &Matrix {
        &self.weight
    }

    /// Runs the layer forward, caching intermediates for `backward`.
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != self.input_size()`.
    pub fn forward(&mut self, x: &[f64]) -> Vec<f64> {
        let mut pre = self.weight.matvec(x);
        for (p, b) in pre.iter_mut().zip(self.bias.as_slice()) {
            *p += b;
        }
        let mut post = pre.clone();
        self.activation.apply_slice(&mut post);
        self.cache = Some((x.to_vec(), pre, post.clone()));
        post
    }

    /// Pure inference without touching the cache (usable through `&self`).
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != self.input_size()`.
    pub fn infer(&self, x: &[f64]) -> Vec<f64> {
        let mut pre = self.weight.matvec(x);
        for (p, b) in pre.iter_mut().zip(self.bias.as_slice()) {
            *p += b;
        }
        self.activation.apply_slice(&mut pre);
        pre
    }

    /// Runs the layer forward, returning the output together with a cache the
    /// caller owns — unlike [`Self::forward`], repeated calls do not clobber
    /// each other's intermediates.
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != self.input_size()`.
    pub fn forward_with_cache(&self, x: &[f64]) -> (Vec<f64>, DenseCache) {
        let mut pre = self.weight.matvec(x);
        for (p, b) in pre.iter_mut().zip(self.bias.as_slice()) {
            *p += b;
        }
        let mut post = pre.clone();
        self.activation.apply_slice(&mut post);
        (
            post.clone(),
            DenseCache {
                x: x.to_vec(),
                pre,
                post,
            },
        )
    }

    /// Backpropagates `dy` through a caller-held cache from
    /// [`Self::forward_with_cache`], accumulating gradients and returning the
    /// input gradient.
    ///
    /// # Panics
    ///
    /// Panics if `dy.len()` differs from the cached output width.
    pub fn backward_from(&mut self, cache: &DenseCache, dy: &[f64]) -> Vec<f64> {
        assert_eq!(dy.len(), cache.post.len(), "backward_from: bad dy length");
        let dz: Vec<f64> = dy
            .iter()
            .zip(cache.pre.iter().zip(&cache.post))
            .map(|(&d, (&z, &y))| d * self.activation.derivative(z, y))
            .collect();
        self.grad_weight.add_outer(&dz, &cache.x, 1.0);
        for (gb, &d) in self.grad_bias.as_mut_slice().iter_mut().zip(&dz) {
            *gb += d;
        }
        self.weight.matvec_transpose(&dz)
    }

    /// Backpropagates `dy` through a caller-held cache *without* touching
    /// the parameter-gradient accumulators, returning only the input
    /// gradient — the pure path usable through `&self` on shared layers
    /// (e.g. from parallel attack campaigns).
    ///
    /// # Panics
    ///
    /// Panics if `dy.len()` differs from the cached output width.
    pub fn backward_input(&self, cache: &DenseCache, dy: &[f64]) -> Vec<f64> {
        assert_eq!(dy.len(), cache.post.len(), "backward_input: bad dy length");
        let dz: Vec<f64> = dy
            .iter()
            .zip(cache.pre.iter().zip(&cache.post))
            .map(|(&d, (&z, &y))| d * self.activation.derivative(z, y))
            .collect();
        self.weight.matvec_transpose(&dz)
    }

    /// Backpropagates `dy` (gradient w.r.t. the layer output), accumulating
    /// weight/bias gradients and returning the gradient w.r.t. the input.
    ///
    /// # Panics
    ///
    /// Panics if no forward pass has been cached or `dy` has the wrong length.
    pub fn backward(&mut self, dy: &[f64]) -> Vec<f64> {
        let (x, pre, post) = self
            .cache
            .as_ref()
            // lint: allow(L1): documented precondition — backward without a cached forward is a caller bug
            .expect("Dense::backward called before forward");
        assert_eq!(dy.len(), post.len(), "Dense::backward: bad dy length");
        let dz: Vec<f64> = dy
            .iter()
            .zip(pre.iter().zip(post))
            .map(|(&d, (&z, &y))| d * self.activation.derivative(z, y))
            .collect();
        self.grad_weight.add_outer(&dz, x, 1.0);
        for (gb, &d) in self.grad_bias.as_mut_slice().iter_mut().zip(&dz) {
            *gb += d;
        }
        self.weight.matvec_transpose(&dz)
    }
}

impl Trainable for Dense {
    fn visit_params(&mut self, f: &mut dyn FnMut(&mut Matrix, &mut Matrix)) {
        f(&mut self.weight, &mut self.grad_weight);
        f(&mut self.bias, &mut self.grad_bias);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{rngs::StdRng, SeedableRng};

    fn layer() -> Dense {
        let mut rng = StdRng::seed_from_u64(11);
        Dense::new(4, 3, Activation::Tanh, &mut rng)
    }

    #[test]
    fn forward_and_infer_agree() {
        let mut l = layer();
        let x = [0.3, -0.1, 0.7, 0.2];
        assert_eq!(l.forward(&x), l.infer(&x));
    }

    #[test]
    fn gradient_check_weights_and_input() {
        // Loss = sum(y); analytic gradients must match finite differences.
        let mut l = layer();
        let x = [0.5, -0.3, 0.2, 0.9];
        l.zero_grads();
        let y = l.forward(&x);
        let dx = l.backward(&vec![1.0; y.len()]);

        let eps = 1e-6;
        // Input gradient.
        for i in 0..x.len() {
            let mut xp = x;
            xp[i] += eps;
            let mut xm = x;
            xm[i] -= eps;
            let fp: f64 = l.infer(&xp).iter().sum();
            let fm: f64 = l.infer(&xm).iter().sum();
            let numeric = (fp - fm) / (2.0 * eps);
            assert!(
                (numeric - dx[i]).abs() < 1e-6,
                "dx[{i}]: numeric {numeric} vs analytic {}",
                dx[i]
            );
        }
        // Weight gradient (spot-check a few entries).
        for &(r, c) in &[(0, 0), (1, 2), (2, 3)] {
            let mut lp = l.clone();
            lp.weight[(r, c)] += eps;
            let mut lm = l.clone();
            lm.weight[(r, c)] -= eps;
            let fp: f64 = lp.infer(&x).iter().sum();
            let fm: f64 = lm.infer(&x).iter().sum();
            let numeric = (fp - fm) / (2.0 * eps);
            let analytic = l.grad_weight[(r, c)];
            assert!(
                (numeric - analytic).abs() < 1e-6,
                "dW[{r},{c}]: numeric {numeric} vs analytic {analytic}"
            );
        }
        // Bias gradient.
        for r in 0..3 {
            let mut lp = l.clone();
            lp.bias[(r, 0)] += eps;
            let mut lm = l.clone();
            lm.bias[(r, 0)] -= eps;
            let fp: f64 = lp.infer(&x).iter().sum();
            let fm: f64 = lm.infer(&x).iter().sum();
            let numeric = (fp - fm) / (2.0 * eps);
            assert!((numeric - l.grad_bias[(r, 0)]).abs() < 1e-6);
        }
    }

    #[test]
    fn gradients_accumulate_until_zeroed() {
        let mut l = layer();
        let x = [1.0, 1.0, 1.0, 1.0];
        l.zero_grads();
        l.forward(&x);
        l.backward(&[1.0, 1.0, 1.0]);
        let g1 = l.grad_weight.clone();
        l.forward(&x);
        l.backward(&[1.0, 1.0, 1.0]);
        assert_eq!(l.grad_weight, g1.scale(2.0));
        l.zero_grads();
        assert_eq!(l.grad_weight.sum(), 0.0);
    }

    #[test]
    #[should_panic(expected = "before forward")]
    fn backward_without_forward_panics() {
        let mut l = layer();
        let _ = l.backward(&[1.0, 1.0, 1.0]);
    }

    #[test]
    fn trainable_exposes_two_params() {
        let mut l = layer();
        let mut n = 0;
        l.visit_params(&mut |_, _| n += 1);
        assert_eq!(n, 2);
        assert_eq!(l.param_count(), 4 * 3 + 3);
    }
}
