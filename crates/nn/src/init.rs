//! Weight initialization schemes.
//!
//! Glorot/Xavier uniform for dense and input-to-hidden weights, scaled
//! Gaussian for recurrent weights, zero for biases (with the LSTM forget-gate
//! bias raised to 1.0, the standard trick that keeps early gradients alive —
//! Jozefowicz et al., ICML 2015).

use lgo_tensor::Matrix;
use rand::RngExt;

/// Glorot/Xavier uniform initialization: `U(-a, a)` with
/// `a = sqrt(6 / (fan_in + fan_out))`.
///
/// # Panics
///
/// Panics if either fan is zero.
pub fn xavier_uniform<R: RngExt + ?Sized>(rows: usize, cols: usize, rng: &mut R) -> Matrix {
    assert!(rows > 0 && cols > 0, "xavier_uniform: zero-sized matrix");
    let a = (6.0 / (rows + cols) as f64).sqrt();
    Matrix::uniform(rows, cols, rng, -a, a)
}

/// Scaled Gaussian initialization `N(0, std^2)`.
pub fn gaussian<R: RngExt + ?Sized>(rows: usize, cols: usize, std: f64, rng: &mut R) -> Matrix {
    Matrix::gaussian(rows, cols, rng, std)
}

/// Recurrent-weight initialization: Gaussian with `std = 1/sqrt(hidden)`.
pub fn recurrent<R: RngExt + ?Sized>(rows: usize, hidden: usize, rng: &mut R) -> Matrix {
    assert!(hidden > 0, "recurrent: zero hidden size");
    Matrix::gaussian(rows, hidden, rng, 1.0 / (hidden as f64).sqrt())
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{rngs::StdRng, SeedableRng};

    #[test]
    fn xavier_within_bound() {
        let mut rng = StdRng::seed_from_u64(0);
        let m = xavier_uniform(64, 32, &mut rng);
        let a = (6.0 / 96.0_f64).sqrt();
        assert!(m.as_slice().iter().all(|&x| x.abs() <= a));
        // Not degenerate: plenty of distinct values.
        assert!(m.max_abs() > 0.0);
    }

    #[test]
    fn recurrent_scale_shrinks_with_hidden() {
        let mut rng = StdRng::seed_from_u64(1);
        let small = recurrent(256, 4, &mut rng);
        let large = recurrent(256, 256, &mut rng);
        let var = |m: &Matrix| m.map(|x| x * x).mean();
        assert!(var(&small) > var(&large));
    }

    #[test]
    fn deterministic_given_seed() {
        let a = xavier_uniform(8, 8, &mut StdRng::seed_from_u64(5));
        let b = xavier_uniform(8, 8, &mut StdRng::seed_from_u64(5));
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic(expected = "zero-sized")]
    fn xavier_rejects_empty() {
        let _ = xavier_uniform(0, 3, &mut StdRng::seed_from_u64(0));
    }
}
