use lgo_tensor::Matrix;
use rand::RngExt;

use crate::activation::Activation;
use crate::bilstm::SeqSample;
use crate::dense::Dense;
use crate::gru::{GruCell, GruState};
use crate::loss::Loss;
use crate::optimizer::{clip_global_norm, Adam, Trainable};

/// A bidirectional-GRU regressor — drop-in architectural alternative to
/// [`crate::BiLstmRegressor`], used by the forecaster-architecture
/// ablation (GRUs have ¾ of the LSTM's recurrent parameters).
///
/// # Examples
///
/// ```
/// use lgo_nn::BiGruRegressor;
/// use rand::{rngs::StdRng, SeedableRng};
///
/// let mut rng = StdRng::seed_from_u64(3);
/// let model = BiGruRegressor::new(2, 8, &mut rng);
/// let y = model.predict(&vec![vec![0.5, 0.1]; 12]);
/// assert!(y.is_finite());
/// ```
#[derive(Debug, Clone)]
pub struct BiGruRegressor {
    fwd: GruCell,
    bwd: GruCell,
    head: Dense,
}

impl BiGruRegressor {
    /// Creates a regressor for `input`-dim rows with `hidden` units per
    /// direction.
    ///
    /// # Panics
    ///
    /// Panics if either size is zero.
    pub fn new<R: RngExt + ?Sized>(input: usize, hidden: usize, rng: &mut R) -> Self {
        Self {
            fwd: GruCell::new(input, hidden, rng),
            bwd: GruCell::new(input, hidden, rng),
            head: Dense::new(2 * hidden, 1, Activation::Identity, rng),
        }
    }

    /// Input dimensionality per timestep.
    pub fn input_size(&self) -> usize {
        self.fwd.input_size()
    }

    /// Hidden units per direction.
    pub fn hidden_size(&self) -> usize {
        self.fwd.hidden_size()
    }

    /// Predicts the regression target for one window (pure inference).
    ///
    /// # Panics
    ///
    /// Panics if the window is empty or row widths mismatch.
    pub fn predict(&self, window: &[Vec<f64>]) -> f64 {
        assert!(!window.is_empty(), "predict: empty window");
        let mut sf = GruState::zeros(self.fwd.hidden_size());
        for x in window {
            sf = self.fwd.step(x, &sf);
        }
        let mut sb = GruState::zeros(self.bwd.hidden_size());
        for x in window.iter().rev() {
            sb = self.bwd.step(x, &sb);
        }
        let mut cat = sf.h;
        cat.extend_from_slice(&sb.h);
        self.head.infer(&cat)[0]
    }

    /// Forward + backward for one `(window, target)` sample; gradients
    /// accumulate. Returns the sample loss.
    ///
    /// # Panics
    ///
    /// Panics if the window is empty.
    pub fn accumulate(&mut self, window: &[Vec<f64>], target: f64, loss: Loss) -> f64 {
        assert!(!window.is_empty(), "accumulate: empty window");
        let trace_f = self.fwd.forward_seq(window);
        let rev: Vec<Vec<f64>> = window.iter().rev().cloned().collect();
        let trace_b = self.bwd.forward_seq(&rev);
        let mut cat = trace_f.last_hidden().to_vec();
        cat.extend_from_slice(trace_b.last_hidden());
        let pred = self.head.forward(&cat)[0];
        let l = loss.value(pred, target);
        let dcat = self.head.backward(&[loss.gradient(pred, target)]);
        let h = self.fwd.hidden_size();
        let mut dh_f = vec![vec![0.0; h]; window.len()];
        *dh_f.last_mut().expect("nonempty") = dcat[..h].to_vec(); // lint: allow(L1): dh_f has window.len() > 0 entries (asserted at entry)
        self.fwd.backward_seq(&trace_f, &dh_f);
        let mut dh_b = vec![vec![0.0; h]; window.len()];
        *dh_b.last_mut().expect("nonempty") = dcat[h..].to_vec(); // lint: allow(L1): dh_b has window.len() > 0 entries (asserted at entry)
        self.bwd.backward_seq(&trace_b, &dh_b);
        l
    }

    /// Trains with Adam over mini-batches (gradient clipped at norm 5.0),
    /// returning the mean training loss per epoch.
    ///
    /// # Panics
    ///
    /// Panics if `samples` is empty, `batch_size == 0`, or `epochs == 0`.
    pub fn fit(
        &mut self,
        samples: &[SeqSample],
        epochs: usize,
        batch_size: usize,
        lr: f64,
    ) -> Vec<f64> {
        assert!(!samples.is_empty(), "fit: no samples");
        assert!(batch_size > 0, "fit: batch_size must be positive");
        assert!(epochs > 0, "fit: epochs must be positive");
        let mut opt = Adam::new(lr);
        let mut history = Vec::with_capacity(epochs);
        for _ in 0..epochs {
            let mut total = 0.0;
            for batch in samples.chunks(batch_size) {
                self.zero_grads();
                for (w, y) in batch {
                    total += self.accumulate(w, *y, Loss::Mse);
                }
                let scale = 1.0 / batch.len() as f64;
                self.visit_params(&mut |_, g| g.map_inplace(|x| x * scale));
                clip_global_norm(self, 5.0);
                opt.step(self);
            }
            history.push(total / samples.len() as f64);
        }
        history
    }
}

impl Trainable for BiGruRegressor {
    fn visit_params(&mut self, f: &mut dyn FnMut(&mut Matrix, &mut Matrix)) {
        self.fwd.visit_params(f);
        self.bwd.visit_params(f);
        self.head.visit_params(f);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{rngs::StdRng, SeedableRng};

    fn model() -> BiGruRegressor {
        let mut rng = StdRng::seed_from_u64(17);
        BiGruRegressor::new(1, 6, &mut rng)
    }

    #[test]
    fn direction_matters() {
        let m = model();
        let w: Vec<Vec<f64>> = (0..6).map(|t| vec![t as f64 / 6.0]).collect();
        let rev: Vec<Vec<f64>> = w.iter().rev().cloned().collect();
        assert_ne!(m.predict(&w), m.predict(&rev));
    }

    #[test]
    fn gradient_check_first_params() {
        let mut m = model();
        let w: Vec<Vec<f64>> = vec![vec![0.3], vec![-0.2], vec![0.5]];
        let target = 0.1;
        m.zero_grads();
        m.accumulate(&w, target, Loss::Mse);
        let loss_of = |m: &BiGruRegressor| {
            let p = m.predict(&w);
            (p - target) * (p - target)
        };
        let eps = 1e-6;
        let mut idx = 0;
        let mut checks = Vec::new();
        m.visit_params(&mut |_, g| {
            checks.push((idx, g.as_slice()[0]));
            idx += 1;
        });
        for (pi, analytic) in checks {
            let mut mp = m.clone();
            let mut mm = m.clone();
            let mut k = 0;
            mp.visit_params(&mut |p, _| {
                if k == pi {
                    p.as_mut_slice()[0] += eps;
                }
                k += 1;
            });
            k = 0;
            mm.visit_params(&mut |p, _| {
                if k == pi {
                    p.as_mut_slice()[0] -= eps;
                }
                k += 1;
            });
            let numeric = (loss_of(&mp) - loss_of(&mm)) / (2.0 * eps);
            assert!(
                (numeric - analytic).abs() < 1e-5,
                "param {pi}: numeric {numeric} vs analytic {analytic}"
            );
        }
    }

    #[test]
    fn learns_window_mean() {
        use rand::RngExt;
        let mut rng = StdRng::seed_from_u64(70);
        let samples: Vec<SeqSample> = (0..48)
            .map(|_| {
                let w: Vec<Vec<f64>> =
                    (0..5).map(|_| vec![rng.random_range(-1.0..1.0)]).collect();
                let y = w.iter().map(|r| r[0]).sum::<f64>() / 5.0;
                (w, y)
            })
            .collect();
        let mut m = model();
        let before: f64 = samples
            .iter()
            .map(|(w, y)| (m.predict(w) - y).powi(2))
            .sum::<f64>();
        m.fit(&samples, 25, 8, 0.01);
        let after: f64 = samples
            .iter()
            .map(|(w, y)| (m.predict(w) - y).powi(2))
            .sum::<f64>();
        assert!(after < before * 0.3, "before {before}, after {after}");
    }

    #[test]
    fn gru_has_fewer_params_than_lstm() {
        let mut rng = StdRng::seed_from_u64(0);
        let mut gru = BiGruRegressor::new(4, 16, &mut rng);
        let mut lstm = crate::BiLstmRegressor::new(4, 16, &mut rng);
        assert!(gru.param_count() < lstm.param_count());
    }
}
