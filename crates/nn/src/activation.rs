/// Point-wise activation functions.
///
/// Each variant knows its own derivative so layers can run backprop without
/// dynamic dispatch.
///
/// # Examples
///
/// ```
/// use lgo_nn::Activation;
///
/// assert_eq!(Activation::Relu.apply(-3.0), 0.0);
/// assert_eq!(Activation::Identity.apply(-3.0), -3.0);
/// assert!((Activation::Sigmoid.apply(0.0) - 0.5).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Activation {
    /// `f(x) = x` — used by regression heads.
    #[default]
    Identity,
    /// Logistic sigmoid — LSTM gates and GAN discriminator output.
    Sigmoid,
    /// Hyperbolic tangent — LSTM candidate/cell output.
    Tanh,
    /// Rectified linear unit.
    Relu,
    /// Leaky ReLU with slope 0.01 for negative inputs.
    LeakyRelu,
}

impl Activation {
    /// Applies the activation to a scalar.
    pub fn apply(self, x: f64) -> f64 {
        match self {
            Activation::Identity => x,
            Activation::Sigmoid => sigmoid(x),
            Activation::Tanh => x.tanh(),
            Activation::Relu => x.max(0.0),
            Activation::LeakyRelu => {
                if x >= 0.0 {
                    x
                } else {
                    0.01 * x
                }
            }
        }
    }

    /// Derivative expressed in terms of the *output* `y = f(x)` where the
    /// algebra allows (sigmoid/tanh), falling back to the input for the
    /// piecewise-linear variants.
    ///
    /// `x` is the pre-activation, `y` the post-activation value.
    pub fn derivative(self, x: f64, y: f64) -> f64 {
        match self {
            Activation::Identity => 1.0,
            Activation::Sigmoid => y * (1.0 - y),
            Activation::Tanh => 1.0 - y * y,
            Activation::Relu => {
                if x > 0.0 {
                    1.0
                } else {
                    0.0
                }
            }
            Activation::LeakyRelu => {
                if x >= 0.0 {
                    1.0
                } else {
                    0.01
                }
            }
        }
    }

    /// Applies the activation to every element of a slice, in place.
    pub fn apply_slice(self, xs: &mut [f64]) {
        for x in xs {
            *x = self.apply(*x);
        }
    }
}

/// Numerically stable logistic sigmoid.
///
/// Avoids overflow for large negative inputs by branching on the sign.
///
/// # Examples
///
/// ```
/// let y = lgo_nn::sigmoid(-1000.0);
/// assert!(y >= 0.0 && y < 1e-12);
/// ```
pub fn sigmoid(x: f64) -> f64 {
    if x >= 0.0 {
        1.0 / (1.0 + (-x).exp())
    } else {
        let e = x.exp();
        e / (1.0 + e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const ALL: [Activation; 5] = [
        Activation::Identity,
        Activation::Sigmoid,
        Activation::Tanh,
        Activation::Relu,
        Activation::LeakyRelu,
    ];

    #[test]
    fn sigmoid_is_stable_at_extremes() {
        assert_eq!(sigmoid(1000.0), 1.0);
        assert!(sigmoid(-1000.0) >= 0.0);
        assert!(sigmoid(-1000.0) < 1e-100);
        assert!((sigmoid(0.0) - 0.5).abs() < 1e-15);
    }

    #[test]
    fn derivatives_match_finite_differences() {
        let eps = 1e-6;
        for act in ALL {
            for &x in &[-2.0, -0.5, 0.3, 1.7] {
                let y = act.apply(x);
                let numeric = (act.apply(x + eps) - act.apply(x - eps)) / (2.0 * eps);
                let analytic = act.derivative(x, y);
                assert!(
                    (numeric - analytic).abs() < 1e-6,
                    "{act:?} at {x}: numeric {numeric} vs analytic {analytic}"
                );
            }
        }
    }

    #[test]
    fn relu_kink_behaviour() {
        assert_eq!(Activation::Relu.apply(-1.0), 0.0);
        assert_eq!(Activation::Relu.derivative(-1.0, 0.0), 0.0);
        assert_eq!(Activation::Relu.derivative(1.0, 1.0), 1.0);
        assert_eq!(Activation::LeakyRelu.apply(-2.0), -0.02);
    }

    #[test]
    fn apply_slice_applies_elementwise() {
        let mut xs = [-1.0, 0.0, 2.0];
        Activation::Relu.apply_slice(&mut xs);
        assert_eq!(xs, [0.0, 0.0, 2.0]);
    }

    #[test]
    fn bounded_activations_stay_bounded() {
        for &x in &[-50.0, -1.0, 0.0, 1.0, 50.0] {
            let s = Activation::Sigmoid.apply(x);
            assert!((0.0..=1.0).contains(&s));
            let t = Activation::Tanh.apply(x);
            assert!((-1.0..=1.0).contains(&t));
        }
    }
}
