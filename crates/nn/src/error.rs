use std::error::Error;
use std::fmt;

/// Error returned by fallible training entry points such as
/// [`BiLstmRegressor::try_fit`](crate::BiLstmRegressor::try_fit).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TrainError {
    /// No training samples were supplied.
    NoSamples,
    /// A zero batch size was requested.
    ZeroBatchSize,
    /// Zero epochs were requested.
    ZeroEpochs,
    /// Training produced a non-finite loss and every recovery attempt
    /// (snapshot rollback, learning-rate backoff, tighter clipping) also
    /// diverged. The model is left at its last finite state.
    Diverged {
        /// Epoch (0-based) at which the unrecoverable divergence occurred.
        epoch: usize,
        /// Recovery attempts consumed before giving up.
        recoveries: usize,
    },
}

impl fmt::Display for TrainError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TrainError::NoSamples => write!(f, "no samples"),
            TrainError::ZeroBatchSize => write!(f, "batch_size must be positive"),
            TrainError::ZeroEpochs => write!(f, "epochs must be positive"),
            TrainError::Diverged { epoch, recoveries } => write!(
                f,
                "training diverged at epoch {epoch} after {recoveries} recovery attempts"
            ),
        }
    }
}

impl Error for TrainError {}
