use lgo_tensor::Matrix;
use rand::RngExt;

use crate::activation::sigmoid;
use crate::init;
use crate::optimizer::Trainable;

/// The `(h, c)` hidden/cell state carried between LSTM steps.
#[derive(Debug, Clone, PartialEq)]
pub struct LstmState {
    /// Hidden state.
    pub h: Vec<f64>,
    /// Cell state.
    pub c: Vec<f64>,
}

impl LstmState {
    /// The all-zero initial state for a cell of width `hidden`.
    pub fn zeros(hidden: usize) -> Self {
        Self {
            h: vec![0.0; hidden],
            c: vec![0.0; hidden],
        }
    }
}

/// Per-timestep cache retained for backpropagation through time.
#[derive(Debug, Clone)]
struct StepCache {
    x: Vec<f64>,
    h_prev: Vec<f64>,
    c_prev: Vec<f64>,
    i: Vec<f64>,
    f: Vec<f64>,
    g: Vec<f64>,
    o: Vec<f64>,
    c: Vec<f64>,
    tanh_c: Vec<f64>,
    h: Vec<f64>,
}

/// The forward trace of a sequence through an [`LstmCell`], consumed by
/// [`LstmCell::backward_seq`].
#[derive(Debug, Clone)]
pub struct LstmTrace {
    steps: Vec<StepCache>,
}

impl LstmTrace {
    /// Number of timesteps in the trace.
    pub fn len(&self) -> usize {
        self.steps.len()
    }

    /// Whether the trace is empty.
    pub fn is_empty(&self) -> bool {
        self.steps.is_empty()
    }

    /// The hidden state after timestep `t`.
    ///
    /// # Panics
    ///
    /// Panics if `t` is out of range.
    pub fn hidden(&self, t: usize) -> &[f64] {
        &self.steps[t].h
    }

    /// The hidden state after the final timestep.
    ///
    /// # Panics
    ///
    /// Panics if the trace is empty.
    pub fn last_hidden(&self) -> &[f64] {
        &self
            .steps
            .last()
            // lint: allow(L1): documented # Panics contract on an empty trace
            .expect("LstmTrace::last_hidden on empty trace")
            .h
    }

    /// All hidden states, one per timestep.
    pub fn hiddens(&self) -> Vec<Vec<f64>> {
        self.steps.iter().map(|s| s.h.clone()).collect()
    }
}

/// A single-layer LSTM cell with full backpropagation through time.
///
/// Gate layout follows the classic formulation: for each step,
///
/// ```text
/// z = W_x x_t + W_h h_{t-1} + b          (z split into i|f|g|o blocks)
/// i = σ(z_i)   f = σ(z_f)   g = tanh(z_g)   o = σ(z_o)
/// c_t = f ⊙ c_{t-1} + i ⊙ g
/// h_t = o ⊙ tanh(c_t)
/// ```
///
/// The forget-gate bias is initialized to 1.0 (Jozefowicz et al., 2015).
///
/// # Examples
///
/// ```
/// use lgo_nn::LstmCell;
/// use rand::{rngs::StdRng, SeedableRng};
///
/// let mut rng = StdRng::seed_from_u64(1);
/// let cell = LstmCell::new(3, 8, &mut rng);
/// let xs = vec![vec![0.1, 0.2, 0.3]; 5];
/// let trace = cell.forward_seq(&xs);
/// assert_eq!(trace.last_hidden().len(), 8);
/// ```
#[derive(Debug, Clone)]
pub struct LstmCell {
    input: usize,
    hidden: usize,
    w_x: Matrix, // (4H, X)
    w_h: Matrix, // (4H, H)
    b: Matrix,   // (4H, 1)
    gw_x: Matrix,
    gw_h: Matrix,
    gb: Matrix,
}

impl LstmCell {
    /// Creates a cell mapping `input`-dim vectors to an `hidden`-dim state.
    ///
    /// # Panics
    ///
    /// Panics if either size is zero.
    pub fn new<R: RngExt + ?Sized>(input: usize, hidden: usize, rng: &mut R) -> Self {
        assert!(input > 0 && hidden > 0, "LstmCell::new: zero-sized cell");
        let mut b = Matrix::zeros(4 * hidden, 1);
        for j in hidden..2 * hidden {
            b[(j, 0)] = 1.0; // forget-gate bias
        }
        Self {
            input,
            hidden,
            w_x: init::xavier_uniform(4 * hidden, input, rng),
            w_h: init::recurrent(4 * hidden, hidden, rng),
            b,
            gw_x: Matrix::zeros(4 * hidden, input),
            gw_h: Matrix::zeros(4 * hidden, hidden),
            gb: Matrix::zeros(4 * hidden, 1),
        }
    }

    /// Input dimensionality.
    pub fn input_size(&self) -> usize {
        self.input
    }

    /// Hidden-state dimensionality.
    pub fn hidden_size(&self) -> usize {
        self.hidden
    }

    fn step_internal(&self, x: &[f64], state: &LstmState) -> StepCache {
        assert_eq!(x.len(), self.input, "LstmCell: input width mismatch");
        let z = self.w_x.matvec(x);
        let zh = self.w_h.matvec(&state.h);
        self.finish_step(z, &zh, x, &state.h, &state.c)
    }

    /// Applies the recurrent/bias combine and the gate nonlinearities to a
    /// precomputed input-side product `z = W_x x`. Shared verbatim by the
    /// stepwise and batched forward paths, so both produce identical bits
    /// for every gate, cell and hidden value.
    fn finish_step(
        &self,
        mut z: Vec<f64>,
        zh: &[f64],
        x: &[f64],
        h_prev: &[f64],
        c_prev: &[f64],
    ) -> StepCache {
        let h = self.hidden;
        for ((zi, &zhi), &bi) in z.iter_mut().zip(zh).zip(self.b.as_slice()) {
            *zi += zhi + bi;
        }
        let mut i = vec![0.0; h];
        let mut f = vec![0.0; h];
        let mut g = vec![0.0; h];
        let mut o = vec![0.0; h];
        for j in 0..h {
            i[j] = sigmoid(z[j]);
            f[j] = sigmoid(z[h + j]);
            g[j] = z[2 * h + j].tanh();
            o[j] = sigmoid(z[3 * h + j]);
        }
        let mut c = vec![0.0; h];
        let mut tanh_c = vec![0.0; h];
        let mut h_out = vec![0.0; h];
        for j in 0..h {
            c[j] = f[j] * c_prev[j] + i[j] * g[j];
            tanh_c[j] = c[j].tanh();
            h_out[j] = o[j] * tanh_c[j];
        }
        lgo_tensor::sanitize::check_finite(&z, "LstmCell gate pre-activations");
        lgo_tensor::sanitize::check_finite(&c, "LstmCell cell state");
        lgo_tensor::sanitize::check_finite(&h_out, "LstmCell hidden state");
        StepCache {
            x: x.to_vec(),
            h_prev: h_prev.to_vec(),
            c_prev: c_prev.to_vec(),
            i,
            f,
            g,
            o,
            c,
            tanh_c,
            h: h_out,
        }
    }

    /// Advances the state by one input, returning the next state (pure
    /// inference; no gradient bookkeeping).
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != self.input_size()` or the state width differs.
    pub fn step(&self, x: &[f64], state: &LstmState) -> LstmState {
        assert_eq!(state.h.len(), self.hidden, "LstmCell: state width mismatch");
        let cache = self.step_internal(x, state);
        LstmState {
            h: cache.h,
            c: cache.c,
        }
    }

    /// Runs a whole sequence from the zero state, retaining the trace needed
    /// for [`Self::backward_seq`].
    ///
    /// Routed through [`Self::forward_batch`], so the input-side gate
    /// products go through one tiled matmul instead of a matvec per
    /// timestep; the trace is bit-identical to the stepwise loop.
    ///
    /// # Panics
    ///
    /// Panics if any input row has the wrong width.
    pub fn forward_seq(&self, xs: &[Vec<f64>]) -> LstmTrace {
        let mut traces = self.forward_batch(&[xs]);
        // lint: allow(L1): forward_batch returns one trace per sequence
        traces.pop().expect("one trace for one sequence")
    }

    /// Runs several sequences from the zero state at once, returning one
    /// trace per sequence (in input order).
    ///
    /// This is the batched hot path: the input-side gate products of every
    /// sequence and timestep are computed by a single tiled
    /// [`Matrix::matmul_nt`], and the recurrent products of each timestep
    /// are batched across sequences. Each output row of those products is
    /// bitwise identical to the corresponding `matvec` (pinned by
    /// lgo-tensor tests) and the scalar gate combine is shared with the
    /// stepwise path, so every trace is bit-for-bit what
    /// [`Self::forward_seq`]'s naive loop would produce.
    ///
    /// Sequences of different lengths are grouped internally; the batching
    /// applies within each length group.
    ///
    /// # Panics
    ///
    /// Panics if any input row has the wrong width.
    pub fn forward_batch(&self, seqs: &[&[Vec<f64>]]) -> Vec<LstmTrace> {
        let mut out: Vec<Option<LstmTrace>> = vec![None; seqs.len()];
        let mut by_len: std::collections::BTreeMap<usize, Vec<usize>> = Default::default();
        for (k, s) in seqs.iter().enumerate() {
            by_len.entry(s.len()).or_default().push(k);
        }
        for (t_len, idxs) in by_len {
            if t_len == 0 {
                for k in idxs {
                    out[k] = Some(LstmTrace { steps: Vec::new() });
                }
                continue;
            }
            let group: Vec<&[Vec<f64>]> = idxs.iter().map(|&k| seqs[k]).collect();
            for (k, trace) in idxs.into_iter().zip(self.forward_batch_uniform(&group, t_len)) {
                out[k] = Some(trace);
            }
        }
        out.into_iter()
            // lint: allow(L1): every index is filled by exactly one length group
            .map(|t| t.expect("trace computed for every sequence"))
            .collect()
    }

    /// [`Self::forward_batch`] for sequences of one shared length `t_len`.
    fn forward_batch_uniform(&self, seqs: &[&[Vec<f64>]], t_len: usize) -> Vec<LstmTrace> {
        let bsz = seqs.len();
        for s in seqs {
            for x in *s {
                assert_eq!(x.len(), self.input, "LstmCell: input width mismatch");
            }
        }
        // Stack every timestep of every sequence (row b*t_len + t) and push
        // the whole block through one tiled product against W_x.
        let rows: Vec<&[f64]> = seqs.iter().flat_map(|s| s.iter().map(Vec::as_slice)).collect();
        let zx_all = Matrix::from_rows(&rows).matmul_nt(&self.w_x);
        let mut h_prev = Matrix::zeros(bsz, self.hidden);
        let mut c_prev = vec![vec![0.0; self.hidden]; bsz];
        let mut traces: Vec<LstmTrace> = (0..bsz)
            .map(|_| LstmTrace { steps: Vec::with_capacity(t_len) })
            .collect();
        // Time-major walk: `t` indexes into every sequence inside the
        // nested batch loop, so an enumerate over one of them misleads.
        #[allow(clippy::needless_range_loop)]
        for t in 0..t_len {
            // All recurrent products for this timestep in one (B, 4H)
            // product; the time dependency makes this the batching limit.
            let zh_all = h_prev.matmul_nt(&self.w_h);
            for b in 0..bsz {
                let cache = self.finish_step(
                    zx_all.row(b * t_len + t).to_vec(),
                    zh_all.row(b),
                    &seqs[b][t],
                    h_prev.row(b),
                    &c_prev[b],
                );
                h_prev.row_mut(b).copy_from_slice(&cache.h);
                c_prev[b].copy_from_slice(&cache.c);
                traces[b].steps.push(cache);
            }
        }
        traces
    }

    /// Backpropagation through time.
    ///
    /// `dh[t]` is the gradient of the loss with respect to the hidden state
    /// emitted at timestep `t` (zero vectors for unused steps). Gradients
    /// accumulate into the cell; the per-timestep gradients with respect to
    /// the inputs are returned.
    ///
    /// # Panics
    ///
    /// Panics if `dh.len() != trace.len()` or any gradient row has the wrong
    /// width.
    pub fn backward_seq(&mut self, trace: &LstmTrace, dh: &[Vec<f64>]) -> Vec<Vec<f64>> {
        let Self {
            input,
            hidden,
            w_x,
            w_h,
            gw_x,
            gw_h,
            gb,
            ..
        } = self;
        bptt_impl(w_x, w_h, *input, *hidden, trace, dh, Some((gw_x, gw_h, gb)))
    }

    /// Pure input-gradient BPTT: like [`Self::backward_seq`] but without
    /// accumulating parameter gradients, so shared read-only cells can
    /// compute d-loss/d-input through `&self` (e.g. from parallel attack
    /// campaigns).
    ///
    /// # Panics
    ///
    /// Panics if `dh.len() != trace.len()` or any gradient row has the wrong
    /// width.
    pub fn input_grad_seq(&self, trace: &LstmTrace, dh: &[Vec<f64>]) -> Vec<Vec<f64>> {
        bptt_impl(&self.w_x, &self.w_h, self.input, self.hidden, trace, dh, None)
    }
}

/// The BPTT core shared by the accumulating and pure paths: walks the trace
/// backwards and returns per-timestep input gradients; when `grads` is
/// `Some`, parameter gradients accumulate into the `(gw_x, gw_h, gb)` sinks.
fn bptt_impl(
    w_x: &Matrix,
    w_h: &Matrix,
    input: usize,
    hidden: usize,
    trace: &LstmTrace,
    dh: &[Vec<f64>],
    mut grads: Option<(&mut Matrix, &mut Matrix, &mut Matrix)>,
) -> Vec<Vec<f64>> {
    assert_eq!(
        dh.len(),
        trace.len(),
        "backward_seq: {} gradients for {} steps",
        dh.len(),
        trace.len()
    );
    let hsz = hidden;
    let mut dxs = vec![vec![0.0; input]; trace.len()];
    let mut dh_next = vec![0.0; hsz];
    let mut dc_next = vec![0.0; hsz];
    for t in (0..trace.len()).rev() {
        let s = &trace.steps[t];
        assert_eq!(dh[t].len(), hsz, "backward_seq: bad dh width at {t}");
        // Total gradient into h_t: external + recurrent.
        let dht: Vec<f64> = dh[t].iter().zip(&dh_next).map(|(&a, &b)| a + b).collect();
        let mut dz = vec![0.0; 4 * hsz];
        let mut dc_prev = vec![0.0; hsz];
        for j in 0..hsz {
            let do_ = dht[j] * s.tanh_c[j];
            let dct = dc_next[j] + dht[j] * s.o[j] * (1.0 - s.tanh_c[j] * s.tanh_c[j]);
            let di = dct * s.g[j];
            let df = dct * s.c_prev[j];
            let dg = dct * s.i[j];
            dc_prev[j] = dct * s.f[j];
            dz[j] = di * s.i[j] * (1.0 - s.i[j]);
            dz[hsz + j] = df * s.f[j] * (1.0 - s.f[j]);
            dz[2 * hsz + j] = dg * (1.0 - s.g[j] * s.g[j]);
            dz[3 * hsz + j] = do_ * s.o[j] * (1.0 - s.o[j]);
        }
        if let Some((gw_x, gw_h, gb)) = grads.as_mut() {
            gw_x.add_outer(&dz, &s.x, 1.0);
            gw_h.add_outer(&dz, &s.h_prev, 1.0);
            for (gb, &d) in gb.as_mut_slice().iter_mut().zip(&dz) {
                *gb += d;
            }
        }
        dxs[t] = w_x.matvec_transpose(&dz);
        dh_next = w_h.matvec_transpose(&dz);
        dc_next = dc_prev;
    }
    dxs
}

impl Trainable for LstmCell {
    fn visit_params(&mut self, f: &mut dyn FnMut(&mut Matrix, &mut Matrix)) {
        f(&mut self.w_x, &mut self.gw_x);
        f(&mut self.w_h, &mut self.gw_h);
        f(&mut self.b, &mut self.gb);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{rngs::StdRng, SeedableRng};

    fn cell(input: usize, hidden: usize) -> LstmCell {
        let mut rng = StdRng::seed_from_u64(21);
        LstmCell::new(input, hidden, &mut rng)
    }

    fn seq(len: usize, width: usize) -> Vec<Vec<f64>> {
        (0..len)
            .map(|t| (0..width).map(|j| ((t * 7 + j * 3) as f64 * 0.13).sin() * 0.5).collect())
            .collect()
    }

    /// Scalar loss used for gradient checking: sum of all hidden states over
    /// all timesteps.
    fn loss(cell: &LstmCell, xs: &[Vec<f64>]) -> f64 {
        cell.forward_seq(xs)
            .hiddens()
            .iter()
            .flatten()
            .sum()
    }

    #[cfg(all(feature = "strict-numerics", debug_assertions))]
    #[test]
    #[should_panic(expected = "strict-numerics")]
    fn strict_numerics_catches_nan_input() {
        let c = cell(2, 3);
        let _ = c.forward_seq(&[vec![0.1, f64::NAN]]);
    }

    #[test]
    fn forward_shapes() {
        let c = cell(3, 5);
        let t = c.forward_seq(&seq(7, 3));
        assert_eq!(t.len(), 7);
        assert!(!t.is_empty());
        assert_eq!(t.hidden(0).len(), 5);
        assert_eq!(t.last_hidden(), t.hidden(6));
        assert_eq!(t.hiddens().len(), 7);
    }

    #[test]
    fn step_matches_forward_seq() {
        let c = cell(2, 4);
        let xs = seq(4, 2);
        let trace = c.forward_seq(&xs);
        let mut st = LstmState::zeros(4);
        for (t, x) in xs.iter().enumerate() {
            st = c.step(x, &st);
            assert_eq!(st.h, trace.hidden(t));
        }
    }

    #[test]
    fn forward_batch_is_bitwise_identical_to_step_loop() {
        let c = cell(3, 5);
        // Ragged batch: exercises the length grouping and the row indexing
        // of the stacked input product.
        let seqs: Vec<Vec<Vec<f64>>> = vec![seq(6, 3), seq(9, 3), seq(6, 3), seq(1, 3)];
        let refs: Vec<&[Vec<f64>]> = seqs.iter().map(Vec::as_slice).collect();
        let traces = c.forward_batch(&refs);
        assert_eq!(traces.len(), seqs.len());
        for (xs, trace) in seqs.iter().zip(&traces) {
            // Reference: the naive per-timestep matvec loop via `step`.
            let mut st = LstmState::zeros(5);
            for (t, x) in xs.iter().enumerate() {
                st = c.step(x, &st);
                assert_eq!(st.h.len(), trace.hidden(t).len());
                for (a, b) in st.h.iter().zip(trace.hidden(t)) {
                    assert_eq!(a.to_bits(), b.to_bits(), "seq len {} step {t}", xs.len());
                }
            }
        }
    }

    #[test]
    fn forward_batch_handles_empty_inputs() {
        let c = cell(2, 3);
        assert!(c.forward_batch(&[]).is_empty());
        let empty: &[Vec<f64>] = &[];
        let traces = c.forward_batch(&[empty, &seq(2, 2)]);
        assert!(traces[0].is_empty());
        assert_eq!(traces[1].len(), 2);
        assert!(c.forward_seq(&[]).is_empty());
    }

    #[test]
    fn hidden_states_are_bounded() {
        let c = cell(2, 6);
        let xs: Vec<Vec<f64>> = (0..50).map(|_| vec![100.0, -100.0]).collect();
        let t = c.forward_seq(&xs);
        for h in t.hiddens() {
            assert!(h.iter().all(|&v| v.abs() <= 1.0), "h out of bounds: {h:?}");
        }
    }

    #[test]
    fn bptt_gradient_check_inputs() {
        let mut c = cell(3, 4);
        let xs = seq(5, 3);
        c.zero_grads();
        let trace = c.forward_seq(&xs);
        let dh = vec![vec![1.0; 4]; 5];
        let dxs = c.backward_seq(&trace, &dh);

        let eps = 1e-6;
        for t in 0..xs.len() {
            for j in 0..3 {
                let mut xp = xs.clone();
                xp[t][j] += eps;
                let mut xm = xs.clone();
                xm[t][j] -= eps;
                let numeric = (loss(&c, &xp) - loss(&c, &xm)) / (2.0 * eps);
                assert!(
                    (numeric - dxs[t][j]).abs() < 1e-5,
                    "dx[{t}][{j}]: numeric {numeric} vs analytic {}",
                    dxs[t][j]
                );
            }
        }
    }

    #[test]
    fn bptt_gradient_check_weights() {
        let mut c = cell(2, 3);
        let xs = seq(4, 2);
        c.zero_grads();
        let trace = c.forward_seq(&xs);
        let dh = vec![vec![1.0; 3]; 4];
        c.backward_seq(&trace, &dh);

        let eps = 1e-6;
        // Spot-check entries in each weight matrix and the bias.
        for &(r, col) in &[(0usize, 0usize), (5, 1), (11, 0)] {
            let mut cp = c.clone();
            cp.w_x[(r, col)] += eps;
            let mut cm = c.clone();
            cm.w_x[(r, col)] -= eps;
            let numeric = (loss(&cp, &xs) - loss(&cm, &xs)) / (2.0 * eps);
            let analytic = c.gw_x[(r, col)];
            assert!(
                (numeric - analytic).abs() < 1e-5,
                "gw_x[{r},{col}]: numeric {numeric} vs analytic {analytic}"
            );
        }
        for &(r, col) in &[(0usize, 0usize), (7, 2), (10, 1)] {
            let mut cp = c.clone();
            cp.w_h[(r, col)] += eps;
            let mut cm = c.clone();
            cm.w_h[(r, col)] -= eps;
            let numeric = (loss(&cp, &xs) - loss(&cm, &xs)) / (2.0 * eps);
            let analytic = c.gw_h[(r, col)];
            assert!(
                (numeric - analytic).abs() < 1e-5,
                "gw_h[{r},{col}]: numeric {numeric} vs analytic {analytic}"
            );
        }
        for &r in &[0usize, 4, 9, 11] {
            let mut cp = c.clone();
            cp.b[(r, 0)] += eps;
            let mut cm = c.clone();
            cm.b[(r, 0)] -= eps;
            let numeric = (loss(&cp, &xs) - loss(&cm, &xs)) / (2.0 * eps);
            let analytic = c.gb[(r, 0)];
            assert!(
                (numeric - analytic).abs() < 1e-5,
                "gb[{r}]: numeric {numeric} vs analytic {analytic}"
            );
        }
    }

    #[test]
    fn forget_bias_initialized_to_one() {
        let c = cell(2, 3);
        for j in 0..3 {
            assert_eq!(c.b[(3 + j, 0)], 1.0);
        }
        assert_eq!(c.b[(0, 0)], 0.0);
    }

    #[test]
    fn trainable_visits_three_params() {
        let mut c = cell(2, 3);
        let mut n = 0;
        c.visit_params(&mut |_, _| n += 1);
        assert_eq!(n, 3);
        assert_eq!(c.param_count(), 12 * 2 + 12 * 3 + 12);
    }

    #[test]
    #[should_panic(expected = "gradients for")]
    fn backward_length_mismatch_panics() {
        let mut c = cell(2, 3);
        let trace = c.forward_seq(&seq(4, 2));
        let _ = c.backward_seq(&trace, &[vec![0.0; 3]]);
    }

    #[test]
    fn empty_sequence_yields_empty_trace() {
        let c = cell(2, 3);
        let t = c.forward_seq(&[]);
        assert!(t.is_empty());
    }
}
