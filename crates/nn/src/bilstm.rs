use lgo_tensor::Matrix;
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

use crate::activation::Activation;
use crate::dense::Dense;
use crate::error::TrainError;
use crate::loss::Loss;
use crate::lstm::{LstmCell, LstmTrace};
use crate::optimizer::{clip_global_norm, Adam, Trainable};

/// Recovery attempts [`BiLstmRegressor::try_fit`] makes before reporting
/// [`TrainError::Diverged`].
pub const DEFAULT_MAX_RECOVERIES: usize = 3;

/// A bidirectional-LSTM regressor: the architecture of the Rubin-Falcone
/// et al. blood-glucose forecaster that the paper uses as the target DNN.
///
/// A forward LSTM reads the window left-to-right, a backward LSTM reads it
/// right-to-left; their final hidden states are concatenated and mapped to a
/// scalar by a linear head.
///
/// # Examples
///
/// ```
/// use lgo_nn::BiLstmRegressor;
/// use rand::{rngs::StdRng, SeedableRng};
///
/// let mut rng = StdRng::seed_from_u64(3);
/// let model = BiLstmRegressor::new(2, 8, &mut rng);
/// let window = vec![vec![0.5, 0.1]; 12];
/// let y = model.predict(&window);
/// assert!(y.is_finite());
/// ```
#[derive(Debug, Clone)]
pub struct BiLstmRegressor {
    fwd: LstmCell,
    bwd: LstmCell,
    head: Dense,
}

/// One training record: an input window and its scalar regression target.
pub type SeqSample = (Vec<Vec<f64>>, f64);

impl BiLstmRegressor {
    /// Creates a regressor for `input`-dim feature rows with `hidden` units
    /// per direction.
    ///
    /// # Panics
    ///
    /// Panics if either size is zero.
    pub fn new<R: RngExt + ?Sized>(input: usize, hidden: usize, rng: &mut R) -> Self {
        Self {
            fwd: LstmCell::new(input, hidden, rng),
            bwd: LstmCell::new(input, hidden, rng),
            head: Dense::new(2 * hidden, 1, Activation::Identity, rng),
        }
    }

    /// Input dimensionality expected per timestep.
    pub fn input_size(&self) -> usize {
        self.fwd.input_size()
    }

    /// Hidden units per direction.
    pub fn hidden_size(&self) -> usize {
        self.fwd.hidden_size()
    }

    /// Predicts the regression target for one window (pure inference).
    ///
    /// # Panics
    ///
    /// Panics if the window is empty or a row width mismatches.
    pub fn predict(&self, window: &[Vec<f64>]) -> f64 {
        assert!(!window.is_empty(), "predict: empty window");
        let trace_f = self.fwd.forward_seq(window);
        let rev: Vec<Vec<f64>> = window.iter().rev().cloned().collect();
        let trace_b = self.bwd.forward_seq(&rev);
        let mut cat = trace_f.last_hidden().to_vec();
        cat.extend_from_slice(trace_b.last_hidden());
        self.head.infer(&cat)[0]
    }

    /// Gradient of the prediction with respect to every input cell:
    /// `out[t][j] = d predict(window) / d window[t][j]`.
    ///
    /// Unlike [`Self::accumulate`], this is a *pure* pass through `&self` —
    /// parameter-gradient accumulators are untouched — so a deployed model
    /// shared across threads can serve white-box gradient attacks (FGSM,
    /// BIM, PGD, CW) from concurrent campaigns.
    ///
    /// # Panics
    ///
    /// Panics if the window is empty or a row width mismatches.
    pub fn input_gradients(&self, window: &[Vec<f64>]) -> Vec<Vec<f64>> {
        assert!(!window.is_empty(), "input_gradients: empty window");
        let n = window.len();
        let trace_f = self.fwd.forward_seq(window);
        let rev: Vec<Vec<f64>> = window.iter().rev().cloned().collect();
        let trace_b = self.bwd.forward_seq(&rev);
        let mut cat = trace_f.last_hidden().to_vec();
        cat.extend_from_slice(trace_b.last_hidden());
        let (_, cache) = self.head.forward_with_cache(&cat);
        let dcat = self.head.backward_input(&cache, &[1.0]);

        let h = self.fwd.hidden_size();
        let mut dh_f = vec![vec![0.0; h]; n];
        dh_f[n - 1] = dcat[..h].to_vec();
        let dx_f = self.fwd.input_grad_seq(&trace_f, &dh_f);

        let mut dh_b = vec![vec![0.0; h]; n];
        dh_b[n - 1] = dcat[h..].to_vec();
        let dx_b = self.bwd.input_grad_seq(&trace_b, &dh_b);

        // The backward direction consumed the reversed window, so its
        // per-timestep gradients come back in reversed time order:
        // dx_b[t] is w.r.t. window[n - 1 - t]. Un-reverse and sum.
        let mut out = dx_f;
        for (t, db) in dx_b.into_iter().enumerate() {
            for (o, d) in out[n - 1 - t].iter_mut().zip(&db) {
                *o += d;
            }
        }
        out
    }

    /// Forward + backward for a single `(window, target)` sample under the
    /// given loss; gradients accumulate. Returns the sample loss.
    ///
    /// # Panics
    ///
    /// Panics if the window is empty.
    pub fn accumulate(&mut self, window: &[Vec<f64>], target: f64, loss: Loss) -> f64 {
        assert!(!window.is_empty(), "accumulate: empty window");
        let trace_f = self.fwd.forward_seq(window);
        let rev: Vec<Vec<f64>> = window.iter().rev().cloned().collect();
        let trace_b = self.bwd.forward_seq(&rev);
        self.accumulate_traced(&trace_f, &trace_b, window.len(), target, loss)
    }

    /// Loss + backward for one sample whose direction traces were already
    /// computed — the tail of [`Self::accumulate`], shared with the batched
    /// minibatch loop of [`Self::try_fit_with_recoveries`].
    fn accumulate_traced(
        &mut self,
        trace_f: &LstmTrace,
        trace_b: &LstmTrace,
        n: usize,
        target: f64,
        loss: Loss,
    ) -> f64 {
        let mut cat = trace_f.last_hidden().to_vec();
        cat.extend_from_slice(trace_b.last_hidden());
        let pred = self.head.forward(&cat)[0];
        let l = loss.value(pred, target);
        let dpred = loss.gradient(pred, target);
        let dcat = self.head.backward(&[dpred]);

        let h = self.fwd.hidden_size();
        let mut dh_f = vec![vec![0.0; h]; n];
        *dh_f.last_mut().expect("nonempty") = dcat[..h].to_vec(); // lint: allow(L1): dh_f has n > 0 entries (asserted by callers)
        self.fwd.backward_seq(trace_f, &dh_f);

        let mut dh_b = vec![vec![0.0; h]; n];
        *dh_b.last_mut().expect("nonempty") = dcat[h..].to_vec(); // lint: allow(L1): dh_b has n > 0 entries (asserted by callers)
        self.bwd.backward_seq(trace_b, &dh_b);
        l
    }

    /// Trains with Adam over mini-batches for `epochs` passes, clipping the
    /// global gradient norm at 5.0. Returns the mean training loss per epoch.
    ///
    /// The sample order is fixed (chronological), matching how the paper's
    /// forecaster treats its time series.
    ///
    /// # Panics
    ///
    /// Panics if `samples` is empty, `batch_size == 0`, `epochs == 0`, or
    /// training diverges beyond recovery (see
    /// [`try_fit`](Self::try_fit) for the non-panicking form).
    pub fn fit(
        &mut self,
        samples: &[SeqSample],
        epochs: usize,
        batch_size: usize,
        lr: f64,
    ) -> Vec<f64> {
        match self.try_fit(samples, epochs, batch_size, lr) {
            Ok(history) => history,
            // lint: allow(L1): documented panicking wrapper; try_fit is the checked path
            Err(e) => panic!("fit: {e}"),
        }
    }

    /// Fallible [`fit`](Self::fit) with divergence recovery:
    /// [`try_fit_with_recoveries`](Self::try_fit_with_recoveries) with the
    /// default budget of [`DEFAULT_MAX_RECOVERIES`] attempts.
    ///
    /// # Errors
    ///
    /// See [`try_fit_with_recoveries`](Self::try_fit_with_recoveries).
    pub fn try_fit(
        &mut self,
        samples: &[SeqSample],
        epochs: usize,
        batch_size: usize,
        lr: f64,
    ) -> Result<Vec<f64>, TrainError> {
        self.try_fit_with_recoveries(samples, epochs, batch_size, lr, DEFAULT_MAX_RECOVERIES)
    }

    /// Trains like [`fit`](Self::fit) but detects non-finite losses
    /// mid-epoch and recovers instead of poisoning the model:
    ///
    /// 1. the failing epoch's partial updates are discarded by rolling the
    ///    parameters back to the last epoch that finished with a finite
    ///    loss (or a fresh deterministic re-initialization when the very
    ///    first epoch diverges),
    /// 2. the learning rate is halved and the gradient-norm clip
    ///    tightened (halved) for all subsequent epochs, and
    /// 3. the epoch is retried, up to `max_recoveries` times across the
    ///    whole run.
    ///
    /// Returns the per-epoch mean training losses (finite by
    /// construction).
    ///
    /// # Errors
    ///
    /// Returns [`TrainError::NoSamples`] / [`TrainError::ZeroBatchSize`] /
    /// [`TrainError::ZeroEpochs`] for degenerate arguments, and
    /// [`TrainError::Diverged`] when the recovery budget is exhausted; the
    /// model is left at its last finite state in that case.
    pub fn try_fit_with_recoveries(
        &mut self,
        samples: &[SeqSample],
        epochs: usize,
        batch_size: usize,
        lr: f64,
        max_recoveries: usize,
    ) -> Result<Vec<f64>, TrainError> {
        if samples.is_empty() {
            return Err(TrainError::NoSamples);
        }
        if batch_size == 0 {
            return Err(TrainError::ZeroBatchSize);
        }
        if epochs == 0 {
            return Err(TrainError::ZeroEpochs);
        }
        let (input, hidden) = (self.input_size(), self.hidden_size());
        let mut cur_lr = lr;
        let mut clip = 5.0;
        let mut recoveries = 0usize;
        let mut opt = Adam::new(cur_lr);
        let mut history = Vec::with_capacity(epochs);
        // Snapshot of the parameters after the last finite epoch (None
        // until one completes — recovery then re-initializes instead).
        let mut good: Option<Vec<Matrix>> = None;
        let mut epoch = 0;
        while epoch < epochs {
            let mut total = 0.0;
            let mut finite = true;
            'batches: for batch in samples.chunks(batch_size) {
                self.zero_grads();
                // Forward every window of the minibatch through each
                // direction at once (pure, and bit-identical per window to
                // the stepwise path), then walk the samples in order for
                // the loss/backward bookkeeping so the gradient
                // accumulation order is exactly the per-sample loop's.
                let fwd_refs: Vec<&[Vec<f64>]> = batch
                    .iter()
                    .map(|(w, _)| {
                        assert!(!w.is_empty(), "accumulate: empty window");
                        w.as_slice()
                    })
                    .collect();
                let rev: Vec<Vec<Vec<f64>>> = batch
                    .iter()
                    .map(|(w, _)| w.iter().rev().cloned().collect())
                    .collect();
                let bwd_refs: Vec<&[Vec<f64>]> = rev.iter().map(Vec::as_slice).collect();
                let traces_f = self.fwd.forward_batch(&fwd_refs);
                let traces_b = self.bwd.forward_batch(&bwd_refs);
                for (((w, y), tf), tb) in batch.iter().zip(&traces_f).zip(&traces_b) {
                    let l = self.accumulate_traced(tf, tb, w.len(), *y, Loss::Mse);
                    if !l.is_finite() {
                        finite = false;
                        break 'batches;
                    }
                    total += l;
                }
                // Average over the batch so the lr is batch-size invariant.
                let scale = 1.0 / batch.len() as f64;
                self.visit_params(&mut |_, g| g.map_inplace(|x| x * scale));
                clip_global_norm(self, clip);
                opt.step(self);
            }
            if finite {
                good = Some(self.param_snapshot());
                history.push(total / samples.len() as f64);
                epoch += 1;
                continue;
            }
            // Divergence: roll back, back off, retry this epoch.
            match &good {
                Some(snap) => self.restore_params(snap),
                None => {
                    // No finite epoch yet — restart from a fresh
                    // deterministic initialization instead.
                    let mut rng = StdRng::seed_from_u64(0x6c67_6f00 + recoveries as u64);
                    *self = Self::new(input, hidden, &mut rng);
                }
            }
            if recoveries >= max_recoveries {
                return Err(TrainError::Diverged { epoch, recoveries });
            }
            recoveries += 1;
            cur_lr *= 0.5;
            clip *= 0.5;
            opt = Adam::new(cur_lr);
        }
        Ok(history)
    }

    /// Clones every parameter matrix (not gradients).
    fn param_snapshot(&mut self) -> Vec<Matrix> {
        let mut snap = Vec::new();
        self.visit_params(&mut |p, _| snap.push(p.clone()));
        snap
    }

    /// Writes a [`param_snapshot`](Self::param_snapshot) back.
    fn restore_params(&mut self, snap: &[Matrix]) {
        let mut i = 0;
        self.visit_params(&mut |p, _| {
            p.clone_from(&snap[i]);
            i += 1;
        });
    }

    /// Mean squared error over a sample set (pure evaluation).
    ///
    /// # Panics
    ///
    /// Panics if `samples` is empty.
    pub fn mse(&self, samples: &[SeqSample]) -> f64 {
        assert!(!samples.is_empty(), "mse: no samples");
        samples
            .iter()
            .map(|(w, y)| {
                let p = self.predict(w);
                (p - y) * (p - y)
            })
            .sum::<f64>()
            / samples.len() as f64
    }
}

impl Trainable for BiLstmRegressor {
    fn visit_params(&mut self, f: &mut dyn FnMut(&mut Matrix, &mut Matrix)) {
        self.fwd.visit_params(f);
        self.bwd.visit_params(f);
        self.head.visit_params(f);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{rngs::StdRng, SeedableRng};

    fn model(input: usize, hidden: usize) -> BiLstmRegressor {
        let mut rng = StdRng::seed_from_u64(5);
        BiLstmRegressor::new(input, hidden, &mut rng)
    }

    /// The mean of a window's first feature — an easy target the BiLSTM must
    /// learn quickly.
    fn mean_task(n: usize) -> Vec<SeqSample> {
        let mut rng = StdRng::seed_from_u64(77);
        (0..n)
            .map(|_| {
                use rand::RngExt;
                let w: Vec<Vec<f64>> =
                    (0..6).map(|_| vec![rng.random_range(-1.0..1.0)]).collect();
                let y = w.iter().map(|r| r[0]).sum::<f64>() / 6.0;
                (w, y)
            })
            .collect()
    }

    #[test]
    fn predict_is_deterministic() {
        let m = model(2, 4);
        let w = vec![vec![0.1, -0.2]; 5];
        assert_eq!(m.predict(&w), m.predict(&w));
    }

    #[test]
    fn direction_matters() {
        // An asymmetric window must produce a different prediction reversed,
        // proving both directions contribute.
        let m = model(1, 4);
        let w: Vec<Vec<f64>> = (0..6).map(|t| vec![t as f64 / 6.0]).collect();
        let rev: Vec<Vec<f64>> = w.iter().rev().cloned().collect();
        assert_ne!(m.predict(&w), m.predict(&rev));
    }

    #[test]
    fn gradient_check_through_whole_model() {
        let mut m = model(1, 3);
        let w: Vec<Vec<f64>> = vec![vec![0.2], vec![-0.4], vec![0.6]];
        let target = 0.3;
        m.zero_grads();
        m.accumulate(&w, target, Loss::Mse);

        // Finite-difference check on a handful of parameters via the visitor.
        let eps = 1e-6;
        let loss_of = |m: &BiLstmRegressor| {
            let p = m.predict(&w);
            (p - target) * (p - target)
        };
        let mut idx = 0;
        let mut checks: Vec<(usize, usize, f64)> = Vec::new();
        m.visit_params(&mut |p, g| {
            // first entry of every parameter matrix
            if !p.is_empty() {
                checks.push((idx, 0, g.as_slice()[0]));
            }
            idx += 1;
        });
        for (pi, ei, analytic) in checks {
            let mut mp = m.clone();
            let mut mm = m.clone();
            let mut k = 0;
            mp.visit_params(&mut |p, _| {
                if k == pi {
                    p.as_mut_slice()[ei] += eps;
                }
                k += 1;
            });
            k = 0;
            mm.visit_params(&mut |p, _| {
                if k == pi {
                    p.as_mut_slice()[ei] -= eps;
                }
                k += 1;
            });
            let numeric = (loss_of(&mp) - loss_of(&mm)) / (2.0 * eps);
            assert!(
                (numeric - analytic).abs() < 1e-5,
                "param {pi}: numeric {numeric} vs analytic {analytic}"
            );
        }
    }

    #[test]
    fn learns_window_mean() {
        let samples = mean_task(64);
        let mut m = model(1, 6);
        let before = m.mse(&samples);
        let history = m.fit(&samples, 30, 8, 0.01);
        let after = m.mse(&samples);
        assert!(
            after < before * 0.2,
            "no learning: before {before}, after {after}"
        );
        assert!(history.last().unwrap() < &history[0]);
    }

    #[test]
    #[should_panic(expected = "empty window")]
    fn predict_rejects_empty_window() {
        let _ = model(1, 2).predict(&[]);
    }

    #[test]
    fn try_fit_rejects_degenerate_arguments() {
        let mut m = model(1, 2);
        let samples = mean_task(4);
        assert_eq!(m.try_fit(&[], 1, 1, 0.01), Err(TrainError::NoSamples));
        assert_eq!(
            m.try_fit(&samples, 1, 0, 0.01),
            Err(TrainError::ZeroBatchSize)
        );
        assert_eq!(m.try_fit(&samples, 0, 1, 0.01), Err(TrainError::ZeroEpochs));
    }

    #[test]
    // The two divergence tests below intentionally push NaN through the
    // forward pass to exercise graceful recovery; under strict-numerics the
    // sanitizers abort at the first non-finite value by design, so the
    // recovery path cannot be reached (see lgo_tensor::sanitize).
    #[cfg(not(all(feature = "strict-numerics", debug_assertions)))]
    fn try_fit_recovers_from_poisoned_initialization() {
        // Poison every parameter with NaN: the first epoch must produce a
        // non-finite loss, and recovery must re-initialize and converge.
        let mut m = model(1, 4);
        m.visit_params(&mut |p, _| p.map_inplace(|_| f64::NAN));
        let samples = mean_task(32);
        let history = m
            .try_fit(&samples, 5, 8, 0.01)
            .expect("recovery should succeed");
        assert_eq!(history.len(), 5);
        assert!(history.iter().all(|l| l.is_finite()));
        assert!(m.mse(&samples).is_finite());
    }

    #[test]
    #[cfg(not(all(feature = "strict-numerics", debug_assertions)))]
    fn try_fit_reports_unrecoverable_divergence() {
        // A NaN target makes every retry diverge; the budget must bound the
        // attempts and the model must come back finite (rolled back).
        let mut m = model(1, 3);
        let mut samples = mean_task(8);
        samples[0].1 = f64::NAN;
        let err = m.try_fit(&samples, 3, 4, 0.01).unwrap_err();
        assert_eq!(
            err,
            TrainError::Diverged {
                epoch: 0,
                recoveries: DEFAULT_MAX_RECOVERIES
            }
        );
        // The rollback leaves usable (finite) parameters behind.
        let mut all_finite = true;
        m.visit_params(&mut |p, _| {
            all_finite &= p.as_slice().iter().all(|v| v.is_finite());
        });
        assert!(all_finite, "diverged model must be left at a finite state");
    }

    #[test]
    fn batched_minibatch_matches_per_sample_accumulate_bitwise() {
        let samples = mean_task(12);
        let mut batched = model(1, 4);
        let mut reference = batched.clone();
        let hb = batched.try_fit(&samples, 2, 4, 0.01).unwrap();
        // Reference: the pre-batching training loop — one accumulate
        // (single-window forwards + backward) per sample, in order.
        let mut opt = Adam::new(0.01);
        let mut href = Vec::new();
        for _ in 0..2 {
            let mut total = 0.0;
            for batch in samples.chunks(4) {
                reference.zero_grads();
                for (w, y) in batch {
                    total += reference.accumulate(w, *y, Loss::Mse);
                }
                let scale = 1.0 / batch.len() as f64;
                reference.visit_params(&mut |_, g| g.map_inplace(|x| x * scale));
                clip_global_norm(&mut reference, 5.0);
                opt.step(&mut reference);
            }
            href.push(total / samples.len() as f64);
        }
        for (a, b) in hb.iter().zip(&href) {
            assert_eq!(a.to_bits(), b.to_bits(), "loss history diverged");
        }
        let mut pa = Vec::new();
        batched.visit_params(&mut |p, _| pa.push(p.clone()));
        let mut pb = Vec::new();
        reference.visit_params(&mut |p, _| pb.push(p.clone()));
        for (a, b) in pa.iter().zip(&pb) {
            for (x, y) in a.as_slice().iter().zip(b.as_slice()) {
                assert_eq!(x.to_bits(), y.to_bits(), "parameters diverged");
            }
        }
    }

    #[test]
    fn fit_matches_try_fit_on_clean_data() {
        let samples = mean_task(16);
        let mut a = model(1, 4);
        let mut b = model(1, 4);
        let ha = a.fit(&samples, 3, 4, 0.01);
        let hb = b.try_fit(&samples, 3, 4, 0.01).unwrap();
        assert_eq!(ha, hb);
    }

    #[test]
    fn param_count_matches_architecture() {
        let mut m = model(2, 4);
        // Each LSTM: (16x2 + 16x4 + 16) = 112; head: (1x8 + 1) = 9.
        assert_eq!(m.param_count(), 112 * 2 + 9);
    }
}
