use std::fmt;
use std::ops::Add;

/// A binary confusion matrix with *malicious* as the positive class.
///
/// The paper's central quantity is the false-negative rate (missed attacks,
/// potentially lethal in a BGMS); recall = 1 − FNR.
///
/// # Examples
///
/// ```
/// use lgo_eval::ConfusionMatrix;
///
/// let cm = ConfusionMatrix { tp: 8, fp: 2, tn: 90, fn_: 0 };
/// assert_eq!(cm.recall(), 1.0);
/// assert_eq!(cm.false_negative_rate(), 0.0);
/// assert_eq!(cm.precision(), 0.8);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct ConfusionMatrix {
    /// Malicious samples flagged malicious.
    pub tp: usize,
    /// Benign samples flagged malicious.
    pub fp: usize,
    /// Benign samples passed as benign.
    pub tn: usize,
    /// Malicious samples passed as benign (`fn` is a keyword).
    pub fn_: usize,
}

impl ConfusionMatrix {
    /// Builds the matrix from paired prediction/truth labels
    /// (`true` = malicious).
    ///
    /// # Panics
    ///
    /// Panics if the slices have different lengths.
    pub fn from_labels(predicted: &[bool], actual: &[bool]) -> Self {
        assert_eq!(
            predicted.len(),
            actual.len(),
            "from_labels: {} predictions for {} labels",
            predicted.len(),
            actual.len()
        );
        let mut cm = Self::default();
        for (&p, &a) in predicted.iter().zip(actual) {
            match (p, a) {
                (true, true) => cm.tp += 1,
                (true, false) => cm.fp += 1,
                (false, false) => cm.tn += 1,
                (false, true) => cm.fn_ += 1,
            }
        }
        cm
    }

    /// Total number of samples.
    pub fn total(&self) -> usize {
        self.tp + self.fp + self.tn + self.fn_
    }

    /// Recall (true-positive rate): `tp / (tp + fn)`. Returns 0 when no
    /// positives exist.
    pub fn recall(&self) -> f64 {
        ratio(self.tp, self.tp + self.fn_)
    }

    /// Precision: `tp / (tp + fp)`. Returns 0 when nothing was flagged.
    pub fn precision(&self) -> f64 {
        ratio(self.tp, self.tp + self.fp)
    }

    /// F1 score — harmonic mean of precision and recall (0 when undefined).
    pub fn f1(&self) -> f64 {
        let p = self.precision();
        let r = self.recall();
        if p + r == 0.0 { // lint: allow(L4): p and r are nonnegative ratios; the sum is exactly 0.0 only when both are
            0.0
        } else {
            2.0 * p * r / (p + r)
        }
    }

    /// False-negative rate: `fn / (tp + fn)` — the paper's safety-critical
    /// quantity.
    pub fn false_negative_rate(&self) -> f64 {
        ratio(self.fn_, self.tp + self.fn_)
    }

    /// False-positive rate: `fp / (fp + tn)`.
    pub fn false_positive_rate(&self) -> f64 {
        ratio(self.fp, self.fp + self.tn)
    }

    /// Accuracy over all samples (0 for an empty matrix).
    pub fn accuracy(&self) -> f64 {
        ratio(self.tp + self.tn, self.total())
    }
}

fn ratio(num: usize, den: usize) -> f64 {
    if den == 0 {
        0.0
    } else {
        num as f64 / den as f64
    }
}

impl Add for ConfusionMatrix {
    type Output = ConfusionMatrix;

    /// Pools two matrices (micro-averaging).
    fn add(self, rhs: ConfusionMatrix) -> ConfusionMatrix {
        ConfusionMatrix {
            tp: self.tp + rhs.tp,
            fp: self.fp + rhs.fp,
            tn: self.tn + rhs.tn,
            fn_: self.fn_ + rhs.fn_,
        }
    }
}

impl std::iter::Sum for ConfusionMatrix {
    fn sum<I: Iterator<Item = ConfusionMatrix>>(iter: I) -> ConfusionMatrix {
        iter.fold(ConfusionMatrix::default(), Add::add)
    }
}

impl fmt::Display for ConfusionMatrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "tp={} fp={} tn={} fn={} | recall={:.3} precision={:.3} f1={:.3}",
            self.tp,
            self.fp,
            self.tn,
            self.fn_,
            self.recall(),
            self.precision(),
            self.f1()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_labels_counts_all_quadrants() {
        let cm = ConfusionMatrix::from_labels(
            &[true, true, false, false, true],
            &[true, false, true, false, true],
        );
        assert_eq!(cm.tp, 2);
        assert_eq!(cm.fp, 1);
        assert_eq!(cm.fn_, 1);
        assert_eq!(cm.tn, 1);
        assert_eq!(cm.total(), 5);
    }

    #[test]
    fn rates_and_identities() {
        let cm = ConfusionMatrix {
            tp: 6,
            fp: 2,
            tn: 10,
            fn_: 2,
        };
        assert!((cm.recall() - 0.75).abs() < 1e-12);
        assert!((cm.precision() - 0.75).abs() < 1e-12);
        assert!((cm.f1() - 0.75).abs() < 1e-12);
        // recall + fnr == 1
        assert!((cm.recall() + cm.false_negative_rate() - 1.0).abs() < 1e-12);
        assert!((cm.false_positive_rate() - 2.0 / 12.0).abs() < 1e-12);
        assert!((cm.accuracy() - 16.0 / 20.0).abs() < 1e-12);
    }

    #[test]
    fn degenerate_cases_return_zero() {
        let empty = ConfusionMatrix::default();
        assert_eq!(empty.recall(), 0.0);
        assert_eq!(empty.precision(), 0.0);
        assert_eq!(empty.f1(), 0.0);
        assert_eq!(empty.accuracy(), 0.0);
    }

    #[test]
    fn pooling_micro_averages() {
        let a = ConfusionMatrix {
            tp: 1,
            fp: 0,
            tn: 5,
            fn_: 1,
        };
        let b = ConfusionMatrix {
            tp: 3,
            fp: 2,
            tn: 5,
            fn_: 0,
        };
        let pooled = a + b;
        assert_eq!(pooled.tp, 4);
        assert_eq!(pooled.fn_, 1);
        let summed: ConfusionMatrix = [a, b].into_iter().sum();
        assert_eq!(summed, pooled);
    }

    #[test]
    fn f1_is_harmonic_mean() {
        let cm = ConfusionMatrix {
            tp: 1,
            fp: 3,
            tn: 0,
            fn_: 0,
        };
        // precision 0.25, recall 1.0 -> f1 = 0.4
        assert!((cm.f1() - 0.4).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "predictions for")]
    fn mismatched_lengths_rejected() {
        let _ = ConfusionMatrix::from_labels(&[true], &[]);
    }

    #[test]
    fn display_mentions_key_rates() {
        let s = ConfusionMatrix::default().to_string();
        assert!(s.contains("recall"));
        assert!(s.contains("precision"));
    }
}
