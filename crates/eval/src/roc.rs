//! Threshold-free detector analysis: ROC curves and AUC.
//!
//! The paper reports threshold-dependent rates (recall/precision at each
//! detector's operating point); ROC analysis complements them by comparing
//! detectors across *all* operating points — useful when tuning the
//! calibration quantiles of the SVM and MAD-GAN.

/// One ROC operating point.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RocPoint {
    /// Score threshold giving this point. Flagging uses **≥ semantics**:
    /// every sample with score `>= threshold` is counted as flagged, so
    /// ties *at* the threshold are flagged too — exactly how
    /// [`RocCurve::from_scores`] accumulates tied scores into one point.
    pub threshold: f64,
    /// False-positive rate at this threshold.
    pub fpr: f64,
    /// True-positive rate (recall) at this threshold.
    pub tpr: f64,
}

/// An ROC curve over anomaly scores (higher = more anomalous).
#[derive(Debug, Clone, PartialEq)]
pub struct RocCurve {
    points: Vec<RocPoint>,
}

impl RocCurve {
    /// Builds the curve from scores and ground-truth labels
    /// (`true` = malicious).
    ///
    /// # Panics
    ///
    /// Panics if the slices differ in length, either class is absent, or
    /// any score is NaN.
    pub fn from_scores(scores: &[f64], labels: &[bool]) -> Self {
        assert_eq!(
            scores.len(),
            labels.len(),
            "RocCurve: {} scores for {} labels",
            scores.len(),
            labels.len()
        );
        let positives = labels.iter().filter(|&&l| l).count();
        let negatives = labels.len() - positives;
        assert!(positives > 0, "RocCurve: no positive samples");
        assert!(negatives > 0, "RocCurve: no negative samples");
        assert!(
            scores.iter().all(|s| !s.is_nan()),
            "RocCurve: NaN score"
        );

        let mut order: Vec<usize> = (0..scores.len()).collect();
        order.sort_by(|&a, &b| scores[b].total_cmp(&scores[a]));

        let mut points = vec![RocPoint {
            threshold: f64::INFINITY,
            fpr: 0.0,
            tpr: 0.0,
        }];
        let mut tp = 0usize;
        let mut fp = 0usize;
        let mut i = 0;
        while i < order.len() {
            // Process ties together so the curve is well defined.
            let s = scores[order[i]];
            while i < order.len() && scores[order[i]] == s {
                if labels[order[i]] {
                    tp += 1;
                } else {
                    fp += 1;
                }
                i += 1;
            }
            points.push(RocPoint {
                threshold: s,
                fpr: fp as f64 / negatives as f64,
                tpr: tp as f64 / positives as f64,
            });
        }
        Self { points }
    }

    /// The operating points, from the strictest threshold to the loosest.
    pub fn points(&self) -> &[RocPoint] {
        &self.points
    }

    /// Area under the curve by trapezoidal integration, in `[0, 1]`.
    pub fn auc(&self) -> f64 {
        self.points
            .windows(2)
            .map(|w| (w[1].fpr - w[0].fpr) * (w[1].tpr + w[0].tpr) / 2.0)
            .sum()
    }

    /// The point with the best Youden index (`tpr − fpr`) — a common
    /// automatic threshold choice.
    ///
    /// The returned threshold inherits the curve's **≥ semantics**:
    /// deploying it means flagging every sample with score
    /// `>= best.threshold`, which reproduces the point's `tpr`/`fpr`
    /// exactly even when scores tie at the threshold.
    pub fn best_youden(&self) -> RocPoint {
        *self
            .points
            .iter()
            .max_by(|a, b| (a.tpr - a.fpr).total_cmp(&(b.tpr - b.fpr)))
            .expect("curve has at least the origin")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfect_separation_gives_auc_one() {
        let scores = [0.1, 0.2, 0.9, 0.8];
        let labels = [false, false, true, true];
        let roc = RocCurve::from_scores(&scores, &labels);
        assert!((roc.auc() - 1.0).abs() < 1e-12);
        let best = roc.best_youden();
        assert_eq!(best.tpr, 1.0);
        assert_eq!(best.fpr, 0.0);
    }

    #[test]
    fn inverted_scores_give_auc_zero() {
        let scores = [0.9, 0.8, 0.1, 0.2];
        let labels = [false, false, true, true];
        let roc = RocCurve::from_scores(&scores, &labels);
        assert!(roc.auc().abs() < 1e-12);
    }

    #[test]
    fn auc_counts_concordant_pairs() {
        // AUC equals P(score(positive) > score(negative)). With positives at
        // 1,3,5,7 and negatives at 2,4,6,8 the concordant pairs are
        // (3,2),(5,2),(5,4),(7,2),(7,4),(7,6): 6 of 16 -> 0.375.
        let scores = [1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0];
        let labels = [true, false, true, false, true, false, true, false];
        let roc = RocCurve::from_scores(&scores, &labels);
        assert!((roc.auc() - 0.375).abs() < 1e-12, "auc = {}", roc.auc());
        // Flipping the labels gives the complementary AUC.
        let flipped: Vec<bool> = labels.iter().map(|&l| !l).collect();
        let roc2 = RocCurve::from_scores(&scores, &flipped);
        assert!((roc.auc() + roc2.auc() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn ties_handled_jointly() {
        let scores = [0.5, 0.5, 0.5, 0.5];
        let labels = [true, false, true, false];
        let roc = RocCurve::from_scores(&scores, &labels);
        // One diagonal step: (0,0) -> (1,1); AUC 0.5.
        assert_eq!(roc.points().len(), 2);
        assert!((roc.auc() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn curve_is_monotone() {
        let scores = [0.3, 0.1, 0.9, 0.7, 0.5, 0.2, 0.8];
        let labels = [false, false, true, true, false, true, false];
        let roc = RocCurve::from_scores(&scores, &labels);
        for w in roc.points().windows(2) {
            assert!(w[1].fpr >= w[0].fpr);
            assert!(w[1].tpr >= w[0].tpr);
        }
        let last = roc.points().last().unwrap();
        assert_eq!(last.fpr, 1.0);
        assert_eq!(last.tpr, 1.0);
    }

    #[test]
    fn ties_at_threshold_are_flagged() {
        // Two positives and one negative share score 0.7: with ≥ semantics
        // all three count as flagged at threshold 0.7, so that operating
        // point must read tp=3/4, fp=1/2 — not the > interpretation
        // (tp=1, fp=0) the docs used to promise.
        let scores = [0.9, 0.7, 0.7, 0.7, 0.1, 0.05];
        let labels = [true, true, true, false, true, false];
        let roc = RocCurve::from_scores(&scores, &labels);
        let at = |t: f64| {
            *roc.points()
                .iter()
                .find(|p| p.threshold == t)
                .expect("threshold present")
        };
        let p = at(0.7);
        assert_eq!(p.tpr, 3.0 / 4.0, "ties at 0.7 must count as flagged");
        assert_eq!(p.fpr, 1.0 / 2.0);
        // Manual ≥-rule replay over the raw scores reproduces the point.
        let flagged_tp = scores
            .iter()
            .zip(&labels)
            .filter(|(s, &l)| **s >= 0.7 && l)
            .count();
        let flagged_fp = scores
            .iter()
            .zip(&labels)
            .filter(|(s, &l)| **s >= 0.7 && !l)
            .count();
        assert_eq!(flagged_tp, 3);
        assert_eq!(flagged_fp, 1);
        // best_youden picks among these ≥-semantics points.
        let best = roc.best_youden();
        let replay_tpr = scores
            .iter()
            .zip(&labels)
            .filter(|(s, &l)| **s >= best.threshold && l)
            .count() as f64
            / 4.0;
        assert_eq!(best.tpr, replay_tpr);
    }

    #[test]
    #[should_panic(expected = "no positive samples")]
    fn single_class_rejected() {
        let _ = RocCurve::from_scores(&[0.1, 0.2], &[false, false]);
    }
}
