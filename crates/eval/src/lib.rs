//! # lgo-eval
//!
//! Evaluation toolkit for the anomaly-detection experiments: confusion
//! matrices and derived rates (the paper optimizes **recall** — i.e. the
//! false-negative rate — while monitoring precision and F1), plus ASCII
//! tables and bar/box charts so every harness binary can print the same
//! rows and series the paper's tables and figures report.
//!
//! # Examples
//!
//! ```
//! use lgo_eval::ConfusionMatrix;
//!
//! let preds = [true, true, false, false];
//! let truth = [true, false, true, false];
//! let cm = ConfusionMatrix::from_labels(&preds, &truth);
//! assert_eq!(cm.tp, 1);
//! assert_eq!(cm.precision(), 0.5);
//! assert_eq!(cm.recall(), 0.5);
//! ```

mod confusion;
pub mod render;
mod roc;

pub use confusion::ConfusionMatrix;
pub use roc::{RocCurve, RocPoint};
