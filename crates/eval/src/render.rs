//! Plain-text rendering of tables, bar charts and box plots, so the
//! experiment harness prints the same rows and series the paper's tables and
//! figures report — no plotting stack required.

use lgo_series::stats::BoxStats;

/// Renders a table with a header row and aligned columns.
///
/// # Panics
///
/// Panics if any row's width differs from the header's.
///
/// # Examples
///
/// ```
/// let t = lgo_eval::render::table(
///     &["patient", "recall"],
///     &[vec!["A_5".into(), "0.95".into()]],
/// );
/// assert!(t.contains("patient"));
/// assert!(t.contains("A_5"));
/// ```
pub fn table(header: &[&str], rows: &[Vec<String>]) -> String {
    let cols = header.len();
    for (i, r) in rows.iter().enumerate() {
        assert_eq!(r.len(), cols, "table: row {i} has {} cells for {cols} columns", r.len());
    }
    let mut widths: Vec<usize> = header.iter().map(|h| h.len()).collect();
    for r in rows {
        for (w, cell) in widths.iter_mut().zip(r) {
            *w = (*w).max(cell.len());
        }
    }
    let sep: String = widths
        .iter()
        .map(|w| "-".repeat(w + 2))
        .collect::<Vec<_>>()
        .join("+");
    let fmt_row = |cells: Vec<String>| -> String {
        cells
            .iter()
            .zip(&widths)
            .map(|(c, w)| format!(" {c:<w$} "))
            .collect::<Vec<_>>()
            .join("|")
    };
    let mut out = String::new();
    out.push_str(&fmt_row(header.iter().map(|s| s.to_string()).collect()));
    out.push('\n');
    out.push_str(&sep);
    out.push('\n');
    for r in rows {
        out.push_str(&fmt_row(r.clone()));
        out.push('\n');
    }
    out
}

/// Renders a horizontal bar chart of labelled values scaled to `width`
/// characters, with the numeric value printed after each bar.
///
/// Negative values are rendered as empty bars (the paper's figures are all
/// non-negative rates).
///
/// # Panics
///
/// Panics if `width == 0`.
pub fn bar_chart(items: &[(String, f64)], width: usize) -> String {
    assert!(width > 0, "bar_chart: width must be positive");
    let max = items.iter().map(|&(_, v)| v).fold(0.0_f64, f64::max);
    let label_w = items.iter().map(|(l, _)| l.len()).max().unwrap_or(0);
    let mut out = String::new();
    for (label, v) in items {
        let filled = if max > 0.0 {
            ((v / max) * width as f64).round().max(0.0) as usize
        } else {
            0
        };
        out.push_str(&format!(
            "{label:<label_w$} | {}{} {v:.4}\n",
            "#".repeat(filled.min(width)),
            " ".repeat(width - filled.min(width)),
        ));
    }
    out
}

/// Renders labelled box plots (min / Q1 / median / Q3 / max plus mean) in a
/// fixed character width — the textual analogue of the paper's Figures 7, 8
/// and 11, which report per-strategy distributions over test patients.
pub fn box_plot(items: &[(String, BoxStats)], width: usize) -> String {
    assert!(width > 2, "box_plot: width must exceed 2");
    let lo = items.iter().map(|(_, b)| b.min).fold(f64::INFINITY, f64::min);
    let hi = items
        .iter()
        .map(|(_, b)| b.max)
        .fold(f64::NEG_INFINITY, f64::max);
    let span = if hi > lo { hi - lo } else { 1.0 };
    let pos = |v: f64| -> usize {
        (((v - lo) / span) * (width - 1) as f64).round().clamp(0.0, (width - 1) as f64) as usize
    };
    let label_w = items.iter().map(|(l, _)| l.len()).max().unwrap_or(0);
    let mut out = String::new();
    out.push_str(&format!(
        "{:<label_w$}   range [{:.4}, {:.4}]\n",
        "", lo, hi
    ));
    for (label, b) in items {
        let mut line: Vec<char> = vec![' '; width];
        let (pmin, pq1, pmed, pq3, pmax) = (pos(b.min), pos(b.q1), pos(b.median), pos(b.q3), pos(b.max));
        for c in line.iter_mut().take(pmax + 1).skip(pmin) {
            *c = '-';
        }
        for c in line.iter_mut().take(pq3 + 1).skip(pq1) {
            *c = '=';
        }
        line[pmin] = '|';
        line[pmax] = '|';
        line[pmed] = 'M';
        out.push_str(&format!(
            "{label:<label_w$} [{}] med {:.4} mean {:.4}\n",
            line.into_iter().collect::<String>(),
            b.median,
            b.mean
        ));
    }
    out
}

/// Formats an `Option<f64>` rate as a percent string (`"n/a"` when absent).
pub fn pct(rate: Option<f64>) -> String {
    match rate {
        Some(r) => format!("{:.1}%", r * 100.0),
        None => "n/a".to_string(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_alignment_and_content() {
        let t = table(
            &["name", "value"],
            &[
                vec!["longish-name".into(), "1".into()],
                vec!["x".into(), "22".into()],
            ],
        );
        let lines: Vec<&str> = t.lines().collect();
        assert_eq!(lines.len(), 4);
        // All rows equal width.
        assert_eq!(lines[0].len(), lines[2].len());
        assert!(t.contains("longish-name"));
    }

    #[test]
    #[should_panic(expected = "cells for")]
    fn table_rejects_ragged_rows() {
        let _ = table(&["a", "b"], &[vec!["only-one".into()]]);
    }

    #[test]
    fn bar_chart_scales_to_max() {
        let chart = bar_chart(
            &[("full".into(), 1.0), ("half".into(), 0.5), ("zero".into(), 0.0)],
            10,
        );
        let lines: Vec<&str> = chart.lines().collect();
        assert_eq!(lines[0].matches('#').count(), 10);
        assert_eq!(lines[1].matches('#').count(), 5);
        assert_eq!(lines[2].matches('#').count(), 0);
    }

    #[test]
    fn bar_chart_all_zero_is_safe() {
        let chart = bar_chart(&[("z".into(), 0.0)], 10);
        assert!(chart.contains("0.0000"));
    }

    #[test]
    fn box_plot_renders_markers() {
        let b = BoxStats::from_values(&[0.0, 0.25, 0.5, 0.75, 1.0]).unwrap();
        let p = box_plot(&[("s".into(), b)], 21);
        assert!(p.contains('M'));
        assert!(p.contains('='));
        assert!(p.contains("med 0.5000"));
    }

    #[test]
    fn pct_formats() {
        assert_eq!(pct(Some(0.275)), "27.5%");
        assert_eq!(pct(None), "n/a");
    }
}
