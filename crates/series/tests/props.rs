//! Property-based tests for the time-series toolkit: scaler round-trips,
//! window-count algebra and quantile invariants.

use lgo_series::{stats, window, MinMaxScaler, StandardScaler};
use proptest::prelude::*;

fn data_matrix(rows: usize, cols: usize) -> impl Strategy<Value = Vec<Vec<f64>>> {
    proptest::collection::vec(
        proptest::collection::vec(-1000.0..1000.0f64, cols),
        rows,
    )
}

proptest! {
    #[test]
    fn minmax_round_trip(data in data_matrix(8, 3)) {
        let mut s = MinMaxScaler::new();
        s.fit(&data);
        let back = s.inverse_transform(&s.transform(&data).unwrap()).unwrap();
        for (a, b) in back.iter().flatten().zip(data.iter().flatten()) {
            prop_assert!((a - b).abs() < 1e-6 * (1.0 + b.abs()));
        }
    }

    #[test]
    fn minmax_maps_fit_data_into_unit_box(data in data_matrix(8, 3)) {
        let mut s = MinMaxScaler::new();
        s.fit(&data);
        for row in s.transform(&data).unwrap() {
            for v in row {
                prop_assert!((-1e-12..=1.0 + 1e-12).contains(&v));
            }
        }
    }

    #[test]
    fn standard_round_trip(data in data_matrix(6, 2)) {
        let mut s = StandardScaler::new();
        s.fit(&data);
        let back = s.inverse_transform(&s.transform(&data).unwrap()).unwrap();
        for (a, b) in back.iter().flatten().zip(data.iter().flatten()) {
            prop_assert!((a - b).abs() < 1e-6 * (1.0 + b.abs()));
        }
    }

    #[test]
    fn sliding_window_count_formula(
        n in 1usize..60,
        seq in 1usize..12,
        step in 1usize..6,
    ) {
        let rows: Vec<Vec<f64>> = (0..n).map(|t| vec![t as f64]).collect();
        let w = window::sliding(&rows, seq, step);
        let expected = if n < seq { 0 } else { (n - seq) / step + 1 };
        prop_assert_eq!(w.len(), expected);
        // Every window has exactly seq rows and windows preserve order.
        for win in &w {
            prop_assert_eq!(win.len(), seq);
            for pair in win.windows(2) {
                prop_assert!(pair[1][0] == pair[0][0] + 1.0);
            }
        }
    }

    #[test]
    fn forecast_samples_target_alignment(
        n in 2usize..60,
        seq in 1usize..8,
        horizon in 1usize..6,
    ) {
        let rows: Vec<Vec<f64>> = (0..n).map(|t| vec![t as f64]).collect();
        let target: Vec<f64> = (0..n).map(|t| 1000.0 + t as f64).collect();
        let samples = window::forecast_samples(&rows, &target, seq, horizon);
        for s in &samples {
            // The target index is horizon past the window end.
            let window_end = s.history.last().unwrap()[0] as usize;
            prop_assert_eq!(s.target_index, window_end + horizon);
            prop_assert_eq!(s.target, 1000.0 + s.target_index as f64);
        }
    }

    #[test]
    fn quantile_is_monotone_and_bounded(
        mut values in proptest::collection::vec(-100.0..100.0f64, 1..40),
        qa in 0.0..1.0f64,
        qb in 0.0..1.0f64,
    ) {
        let (lo, hi) = (qa.min(qb), qa.max(qb));
        let a = stats::quantile(&values, lo).unwrap();
        let b = stats::quantile(&values, hi).unwrap();
        prop_assert!(a <= b + 1e-12);
        values.sort_by(|x, y| x.partial_cmp(y).unwrap());
        prop_assert!(a >= values[0] - 1e-12);
        prop_assert!(b <= values[values.len() - 1] + 1e-12);
    }

    #[test]
    fn box_stats_are_ordered(values in proptest::collection::vec(-100.0..100.0f64, 1..40)) {
        let b = stats::BoxStats::from_values(&values).unwrap();
        prop_assert!(b.min <= b.q1 + 1e-12);
        prop_assert!(b.q1 <= b.median + 1e-12);
        prop_assert!(b.median <= b.q3 + 1e-12);
        prop_assert!(b.q3 <= b.max + 1e-12);
        prop_assert!(b.mean >= b.min - 1e-12 && b.mean <= b.max + 1e-12);
        prop_assert!(b.iqr() >= -1e-12);
    }

    #[test]
    fn moving_average_stays_in_range(
        values in proptest::collection::vec(-50.0..50.0f64, 1..30),
        w in 1usize..8,
    ) {
        let out = lgo_series::stats::moving_average(&values, w);
        prop_assert_eq!(out.len(), values.len());
        let lo = values.iter().cloned().fold(f64::INFINITY, f64::min);
        let hi = values.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        for v in out {
            prop_assert!(v >= lo - 1e-9 && v <= hi + 1e-9);
        }
    }
}
