//! # lgo-series
//!
//! Time-series plumbing shared by the simulator, forecaster, attack framework
//! and anomaly detectors: a multivariate series container, sliding-window
//! extraction, feature scalers and order statistics.
//!
//! # Examples
//!
//! ```
//! use lgo_series::{MultiSeries, window};
//!
//! let mut s = MultiSeries::new(&["glucose", "insulin"]);
//! for t in 0..20 {
//!     s.push_row(&[100.0 + t as f64, 1.0]);
//! }
//! let w = window::sliding(s.rows(), 12, 1);
//! assert_eq!(w.len(), 9);
//! assert_eq!(w[0].len(), 12);
//! ```

mod multiseries;
pub mod scaler;
pub mod split;
pub mod stats;
pub mod window;

pub use multiseries::MultiSeries;
pub use scaler::{MinMaxScaler, ScalerError, StandardScaler};
