//! Train/test splitting utilities.
//!
//! The paper's dataset splits chronologically (≈10 000 training samples then
//! ≈2 500 test samples per patient); shuffled splits would leak future values
//! into training through overlapping windows.

use rand::seq::SliceRandom;
use rand::RngExt;

/// Splits a slice chronologically at `train_fraction`.
///
/// The cut uses **floor** semantics: the training part gets
/// `⌊len · fraction⌋` elements, so any `fraction < 1.0` leaves a non-empty
/// test slice whenever `len >= 2` (and for `len == 1` the single element
/// goes to the test side). Rounding the cut instead — the old behaviour —
/// silently produced an *empty* test slice for fractions close to 1 (e.g.
/// `len = 9, fraction = 0.95` rounded the cut to 9), which downstream
/// evaluation would then score vacuously.
///
/// # Panics
///
/// Panics if `train_fraction` is outside `[0, 1]`.
///
/// # Examples
///
/// ```
/// let data: Vec<u32> = (0..10).collect();
/// let (train, test) = lgo_series::split::chronological(&data, 0.8);
/// assert_eq!(train.len(), 8);
/// assert_eq!(test, &[8, 9]);
///
/// // Floor semantics: a near-1 fraction still leaves test data.
/// let data: Vec<u32> = (0..9).collect();
/// let (train, test) = lgo_series::split::chronological(&data, 0.95);
/// assert_eq!(train.len(), 8);
/// assert_eq!(test, &[8]);
/// ```
pub fn chronological<T>(data: &[T], train_fraction: f64) -> (&[T], &[T]) {
    assert!(
        (0.0..=1.0).contains(&train_fraction),
        "chronological: train_fraction = {train_fraction} outside [0, 1]"
    );
    let len = data.len();
    let mut cut = ((len as f64) * train_fraction).floor() as usize;
    // Guard the floating product rounding *up* to exactly `len` for
    // fractions just under 1: anything below 1.0 must keep a test element.
    if train_fraction < 1.0 {
        cut = cut.min(len.saturating_sub(1));
    }
    data.split_at(cut.min(len))
}

/// Splits a slice chronologically with an explicit training length.
///
/// The training part is `data[..train_len.min(len)]`.
pub fn chronological_at<T>(data: &[T], train_len: usize) -> (&[T], &[T]) {
    data.split_at(train_len.min(data.len()))
}

/// Samples `k` distinct indices from `0..n` without replacement using the
/// provided RNG — the paper's "Random Samples" baseline draws 3 of the 12
/// patients per run, repeated for 10 runs.
///
/// # Panics
///
/// Panics if `k > n`.
pub fn sample_indices<R: RngExt + ?Sized>(n: usize, k: usize, rng: &mut R) -> Vec<usize> {
    assert!(k <= n, "sample_indices: k = {k} > n = {n}");
    let mut idx: Vec<usize> = (0..n).collect();
    idx.shuffle(rng);
    idx.truncate(k);
    idx.sort_unstable();
    idx
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{rngs::StdRng, SeedableRng};

    #[test]
    fn chronological_preserves_order() {
        let data: Vec<u32> = (0..100).collect();
        let (tr, te) = chronological(&data, 0.75);
        assert_eq!(tr.len(), 75);
        assert_eq!(te[0], 75);
        assert_eq!(*te.last().unwrap(), 99);
    }

    #[test]
    fn chronological_extremes() {
        let data = [1, 2, 3];
        assert_eq!(chronological(&data, 0.0).0.len(), 0);
        assert_eq!(chronological(&data, 1.0).1.len(), 0);
    }

    #[test]
    fn chronological_never_empties_test_below_one() {
        // Regression: .round() used to hand the whole slice to training for
        // near-1 fractions (len=9 × 0.95 → cut 9). Floor semantics must
        // leave the test side non-empty for every fraction < 1 once there
        // are at least two elements — and conserve elements and order.
        for len in 2..=12usize {
            let data: Vec<usize> = (0..len).collect();
            for &fraction in &[0.5, 0.6, 0.75, 0.8, 0.9, 0.95, 0.99] {
                let (tr, te) = chronological(&data, fraction);
                assert!(
                    !te.is_empty(),
                    "empty test slice at len={len}, fraction={fraction}"
                );
                assert_eq!(tr.len() + te.len(), len);
                assert_eq!(
                    tr.len(),
                    ((len as f64) * fraction).floor() as usize,
                    "cut is not floor(len·fraction) at len={len}, fraction={fraction}"
                );
                assert_eq!(te[0], tr.len(), "split is not chronological");
            }
        }
        // The issue's exact reproduction case.
        let data: Vec<usize> = (0..9).collect();
        let (tr, te) = chronological(&data, 0.95);
        assert_eq!((tr.len(), te.len()), (8, 1));
        // len = 1 puts the lone element in the test side for fraction < 1.
        let one = [42];
        let (tr, te) = chronological(&one, 0.95);
        assert!(tr.is_empty());
        assert_eq!(te, &[42]);
    }

    #[test]
    fn chronological_at_clamps() {
        let data = [1, 2, 3];
        let (tr, te) = chronological_at(&data, 10);
        assert_eq!(tr.len(), 3);
        assert!(te.is_empty());
    }

    #[test]
    fn sample_indices_are_distinct_sorted_in_range() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..20 {
            let s = sample_indices(12, 3, &mut rng);
            assert_eq!(s.len(), 3);
            assert!(s.windows(2).all(|w| w[0] < w[1]));
            assert!(s.iter().all(|&i| i < 12));
        }
    }

    #[test]
    fn sample_indices_deterministic_for_seed() {
        let a = sample_indices(12, 3, &mut StdRng::seed_from_u64(9));
        let b = sample_indices(12, 3, &mut StdRng::seed_from_u64(9));
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic(expected = "k = 5 > n = 3")]
    fn sample_indices_rejects_oversample() {
        let _ = sample_indices(3, 5, &mut StdRng::seed_from_u64(0));
    }
}
