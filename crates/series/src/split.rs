//! Train/test splitting utilities.
//!
//! The paper's dataset splits chronologically (≈10 000 training samples then
//! ≈2 500 test samples per patient); shuffled splits would leak future values
//! into training through overlapping windows.

use rand::seq::SliceRandom;
use rand::RngExt;

/// Splits a slice chronologically at `train_fraction`.
///
/// # Panics
///
/// Panics if `train_fraction` is outside `[0, 1]`.
///
/// # Examples
///
/// ```
/// let data: Vec<u32> = (0..10).collect();
/// let (train, test) = lgo_series::split::chronological(&data, 0.8);
/// assert_eq!(train.len(), 8);
/// assert_eq!(test, &[8, 9]);
/// ```
pub fn chronological<T>(data: &[T], train_fraction: f64) -> (&[T], &[T]) {
    assert!(
        (0.0..=1.0).contains(&train_fraction),
        "chronological: train_fraction = {train_fraction} outside [0, 1]"
    );
    let cut = ((data.len() as f64) * train_fraction).round() as usize;
    let cut = cut.min(data.len());
    data.split_at(cut)
}

/// Splits a slice chronologically with an explicit training length.
///
/// The training part is `data[..train_len.min(len)]`.
pub fn chronological_at<T>(data: &[T], train_len: usize) -> (&[T], &[T]) {
    data.split_at(train_len.min(data.len()))
}

/// Samples `k` distinct indices from `0..n` without replacement using the
/// provided RNG — the paper's "Random Samples" baseline draws 3 of the 12
/// patients per run, repeated for 10 runs.
///
/// # Panics
///
/// Panics if `k > n`.
pub fn sample_indices<R: RngExt + ?Sized>(n: usize, k: usize, rng: &mut R) -> Vec<usize> {
    assert!(k <= n, "sample_indices: k = {k} > n = {n}");
    let mut idx: Vec<usize> = (0..n).collect();
    idx.shuffle(rng);
    idx.truncate(k);
    idx.sort_unstable();
    idx
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{rngs::StdRng, SeedableRng};

    #[test]
    fn chronological_preserves_order() {
        let data: Vec<u32> = (0..100).collect();
        let (tr, te) = chronological(&data, 0.75);
        assert_eq!(tr.len(), 75);
        assert_eq!(te[0], 75);
        assert_eq!(*te.last().unwrap(), 99);
    }

    #[test]
    fn chronological_extremes() {
        let data = [1, 2, 3];
        assert_eq!(chronological(&data, 0.0).0.len(), 0);
        assert_eq!(chronological(&data, 1.0).1.len(), 0);
    }

    #[test]
    fn chronological_at_clamps() {
        let data = [1, 2, 3];
        let (tr, te) = chronological_at(&data, 10);
        assert_eq!(tr.len(), 3);
        assert!(te.is_empty());
    }

    #[test]
    fn sample_indices_are_distinct_sorted_in_range() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..20 {
            let s = sample_indices(12, 3, &mut rng);
            assert_eq!(s.len(), 3);
            assert!(s.windows(2).all(|w| w[0] < w[1]));
            assert!(s.iter().all(|&i| i < 12));
        }
    }

    #[test]
    fn sample_indices_deterministic_for_seed() {
        let a = sample_indices(12, 3, &mut StdRng::seed_from_u64(9));
        let b = sample_indices(12, 3, &mut StdRng::seed_from_u64(9));
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic(expected = "k = 5 > n = 3")]
    fn sample_indices_rejects_oversample() {
        let _ = sample_indices(3, 5, &mut StdRng::seed_from_u64(0));
    }
}
