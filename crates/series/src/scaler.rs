//! Feature scalers with fit / transform / inverse-transform semantics
//! mirroring scikit-learn's `MinMaxScaler` and `StandardScaler`.
//!
//! Scalers are fit on *training* data only and then applied to test and
//! adversarial data — leaking test statistics into the scaler would
//! contaminate the detector evaluation.

use std::error::Error;
use std::fmt;

/// Error returned when a scaler is used before being fit, when the input
/// width does not match the fitted width, or when `try_fit` is handed data
/// no scale can be learned from.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ScalerError {
    /// `transform`/`inverse_transform` called before `fit`.
    NotFitted,
    /// Input feature count differs from the fitted feature count.
    WidthMismatch {
        /// Features the scaler was fit with.
        fitted: usize,
        /// Features in the offending input.
        got: usize,
    },
    /// `try_fit` called with no rows at all.
    EmptyFit,
    /// `try_fit` called with rows of differing widths.
    RaggedRows,
    /// Every row handed to `try_fit` contained a non-finite value, so no
    /// scale can be learned — the signature of a fully degraded sensor.
    NoFiniteRows,
}

impl fmt::Display for ScalerError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ScalerError::NotFitted => write!(f, "scaler used before fit"),
            ScalerError::WidthMismatch { fitted, got } => {
                write!(f, "scaler fitted on {fitted} features but input has {got}")
            }
            ScalerError::EmptyFit => write!(f, "empty data"),
            ScalerError::RaggedRows => write!(f, "ragged rows"),
            ScalerError::NoFiniteRows => write!(f, "no finite rows"),
        }
    }
}

impl Error for ScalerError {}

/// Min-max scaler mapping each feature into `[0, 1]` over the fit data.
///
/// Constant features map to `0.0` (matching scikit-learn, which divides by a
/// range of 1 when `max == min`).
///
/// # Examples
///
/// ```
/// use lgo_series::MinMaxScaler;
///
/// let data = vec![vec![0.0, 10.0], vec![10.0, 20.0]];
/// let mut s = MinMaxScaler::new();
/// s.fit(&data);
/// let t = s.transform(&data).unwrap();
/// assert_eq!(t[1], vec![1.0, 1.0]);
/// let back = s.inverse_transform(&t).unwrap();
/// assert_eq!(back, data);
/// ```
#[derive(Debug, Clone, Default, PartialEq)]
pub struct MinMaxScaler {
    mins: Vec<f64>,
    ranges: Vec<f64>,
}

impl MinMaxScaler {
    /// Creates an unfitted scaler.
    pub fn new() -> Self {
        Self::default()
    }

    /// Whether `fit` has been called.
    pub fn is_fitted(&self) -> bool {
        !self.mins.is_empty()
    }

    /// Learns per-feature minima and ranges.
    ///
    /// Rows with non-finite entries are skipped entirely so a corrupted
    /// sensor reading cannot poison the scale.
    ///
    /// # Panics
    ///
    /// Panics if `data` is empty or all rows contain non-finite values.
    /// Use [`try_fit`](Self::try_fit) to handle degraded data gracefully.
    pub fn fit(&mut self, data: &[Vec<f64>]) {
        if let Err(e) = self.try_fit(data) {
            // lint: allow(L1): documented panicking wrapper; try_fit is the checked path
            panic!("MinMaxScaler::fit: {e}");
        }
    }

    /// Fallible [`fit`](Self::fit): learns per-feature minima and ranges,
    /// skipping rows with non-finite entries.
    ///
    /// # Errors
    ///
    /// Returns [`ScalerError::EmptyFit`] on empty input,
    /// [`ScalerError::RaggedRows`] on inconsistent widths, and
    /// [`ScalerError::NoFiniteRows`] when every row carries a non-finite
    /// value (e.g. a 100%-dropout CGM trace). The scaler is unchanged on
    /// error.
    pub fn try_fit(&mut self, data: &[Vec<f64>]) -> Result<(), ScalerError> {
        if data.is_empty() {
            return Err(ScalerError::EmptyFit);
        }
        let width = data[0].len();
        let mut mins = vec![f64::INFINITY; width];
        let mut maxs = vec![f64::NEG_INFINITY; width];
        let mut used = 0usize;
        for row in data {
            if row.len() != width {
                return Err(ScalerError::RaggedRows);
            }
            if row.iter().any(|v| !v.is_finite()) {
                continue;
            }
            used += 1;
            for (j, &v) in row.iter().enumerate() {
                mins[j] = mins[j].min(v);
                maxs[j] = maxs[j].max(v);
            }
        }
        if used == 0 {
            return Err(ScalerError::NoFiniteRows);
        }
        self.mins = mins;
        self.ranges = maxs
            .iter()
            .zip(&self.mins)
            .map(|(&mx, &mn)| if mx > mn { mx - mn } else { 1.0 })
            .collect();
        Ok(())
    }

    /// Maps data into the fitted `[0, 1]` ranges.
    ///
    /// # Errors
    ///
    /// Returns [`ScalerError`] if unfitted or the width differs.
    pub fn transform(&self, data: &[Vec<f64>]) -> Result<Vec<Vec<f64>>, ScalerError> {
        self.check(data)?;
        Ok(data
            .iter()
            .map(|row| {
                row.iter()
                    .enumerate()
                    .map(|(j, &v)| (v - self.mins[j]) / self.ranges[j])
                    .collect()
            })
            .collect())
    }

    /// Transforms a single row.
    ///
    /// # Errors
    ///
    /// Returns [`ScalerError`] if unfitted or the width differs.
    pub fn transform_row(&self, row: &[f64]) -> Result<Vec<f64>, ScalerError> {
        self.check_row(row)?;
        Ok(row
            .iter()
            .enumerate()
            .map(|(j, &v)| (v - self.mins[j]) / self.ranges[j])
            .collect())
    }

    /// Maps scaled data back to the original units.
    ///
    /// # Errors
    ///
    /// Returns [`ScalerError`] if unfitted or the width differs.
    pub fn inverse_transform(&self, data: &[Vec<f64>]) -> Result<Vec<Vec<f64>>, ScalerError> {
        self.check(data)?;
        Ok(data
            .iter()
            .map(|row| {
                row.iter()
                    .enumerate()
                    .map(|(j, &v)| v * self.ranges[j] + self.mins[j])
                    .collect()
            })
            .collect())
    }

    /// Inverse-transforms a single value of feature `j`.
    ///
    /// # Panics
    ///
    /// Panics if the scaler is unfitted or `j` is out of range.
    pub fn inverse_value(&self, j: usize, v: f64) -> f64 {
        assert!(self.is_fitted(), "inverse_value on unfitted scaler");
        v * self.ranges[j] + self.mins[j]
    }

    /// Transforms a single value of feature `j`.
    ///
    /// # Panics
    ///
    /// Panics if the scaler is unfitted or `j` is out of range.
    pub fn value(&self, j: usize, v: f64) -> f64 {
        assert!(self.is_fitted(), "value on unfitted scaler");
        (v - self.mins[j]) / self.ranges[j]
    }

    fn check(&self, data: &[Vec<f64>]) -> Result<(), ScalerError> {
        for row in data {
            self.check_row(row)?;
        }
        Ok(())
    }

    fn check_row(&self, row: &[f64]) -> Result<(), ScalerError> {
        if !self.is_fitted() {
            return Err(ScalerError::NotFitted);
        }
        if row.len() != self.mins.len() {
            return Err(ScalerError::WidthMismatch {
                fitted: self.mins.len(),
                got: row.len(),
            });
        }
        Ok(())
    }
}

/// Standardizing scaler mapping each feature to zero mean and unit variance
/// over the fit data. Constant features are left centered with divisor 1.
///
/// # Examples
///
/// ```
/// use lgo_series::StandardScaler;
///
/// let data = vec![vec![1.0], vec![3.0]];
/// let mut s = StandardScaler::new();
/// s.fit(&data);
/// let t = s.transform(&data).unwrap();
/// assert_eq!(t, vec![vec![-1.0], vec![1.0]]);
/// ```
#[derive(Debug, Clone, Default, PartialEq)]
pub struct StandardScaler {
    means: Vec<f64>,
    stds: Vec<f64>,
}

impl StandardScaler {
    /// Creates an unfitted scaler.
    pub fn new() -> Self {
        Self::default()
    }

    /// Whether `fit` has been called.
    pub fn is_fitted(&self) -> bool {
        !self.means.is_empty()
    }

    /// Learns per-feature means and standard deviations (population).
    ///
    /// # Panics
    ///
    /// Panics if `data` is empty or rows are ragged. Use
    /// [`try_fit`](Self::try_fit) to handle degraded data gracefully.
    pub fn fit(&mut self, data: &[Vec<f64>]) {
        if let Err(e) = self.try_fit(data) {
            // lint: allow(L1): documented panicking wrapper; try_fit is the checked path
            panic!("StandardScaler::fit: {e}");
        }
    }

    /// Fallible [`fit`](Self::fit).
    ///
    /// # Errors
    ///
    /// Returns [`ScalerError::EmptyFit`] on empty input and
    /// [`ScalerError::RaggedRows`] on inconsistent widths. The scaler is
    /// unchanged on error.
    pub fn try_fit(&mut self, data: &[Vec<f64>]) -> Result<(), ScalerError> {
        if data.is_empty() {
            return Err(ScalerError::EmptyFit);
        }
        let width = data[0].len();
        let n = data.len() as f64;
        let mut means = vec![0.0; width];
        for row in data {
            if row.len() != width {
                return Err(ScalerError::RaggedRows);
            }
            for (j, &v) in row.iter().enumerate() {
                means[j] += v;
            }
        }
        for m in &mut means {
            *m /= n;
        }
        let mut vars = vec![0.0; width];
        for row in data {
            for (j, &v) in row.iter().enumerate() {
                vars[j] += (v - means[j]) * (v - means[j]);
            }
        }
        self.stds = vars
            .iter()
            .map(|&v| {
                let s = (v / n).sqrt();
                if s > 0.0 {
                    s
                } else {
                    1.0
                }
            })
            .collect();
        self.means = means;
        Ok(())
    }

    /// Standardizes data with the fitted statistics.
    ///
    /// # Errors
    ///
    /// Returns [`ScalerError`] if unfitted or the width differs.
    pub fn transform(&self, data: &[Vec<f64>]) -> Result<Vec<Vec<f64>>, ScalerError> {
        if !self.is_fitted() {
            return Err(ScalerError::NotFitted);
        }
        data.iter()
            .map(|row| {
                if row.len() != self.means.len() {
                    return Err(ScalerError::WidthMismatch {
                        fitted: self.means.len(),
                        got: row.len(),
                    });
                }
                Ok(row
                    .iter()
                    .enumerate()
                    .map(|(j, &v)| (v - self.means[j]) / self.stds[j])
                    .collect())
            })
            .collect()
    }

    /// Standardizes a single row into a caller-owned buffer — the
    /// allocation-free variant of [`transform`](Self::transform) for hot
    /// scoring loops. `out` is cleared and refilled; identical values
    /// (same float operations in the same order) to the allocating path.
    ///
    /// # Errors
    ///
    /// Returns [`ScalerError`] if unfitted or the width differs (`out` is
    /// left cleared in that case).
    pub fn transform_row_into(&self, row: &[f64], out: &mut Vec<f64>) -> Result<(), ScalerError> {
        out.clear();
        if !self.is_fitted() {
            return Err(ScalerError::NotFitted);
        }
        if row.len() != self.means.len() {
            return Err(ScalerError::WidthMismatch {
                fitted: self.means.len(),
                got: row.len(),
            });
        }
        out.extend(
            row.iter()
                .enumerate()
                .map(|(j, &v)| (v - self.means[j]) / self.stds[j]),
        );
        Ok(())
    }

    /// Maps standardized data back to the original units.
    ///
    /// # Errors
    ///
    /// Returns [`ScalerError`] if unfitted or the width differs.
    pub fn inverse_transform(&self, data: &[Vec<f64>]) -> Result<Vec<Vec<f64>>, ScalerError> {
        if !self.is_fitted() {
            return Err(ScalerError::NotFitted);
        }
        data.iter()
            .map(|row| {
                if row.len() != self.means.len() {
                    return Err(ScalerError::WidthMismatch {
                        fitted: self.means.len(),
                        got: row.len(),
                    });
                }
                Ok(row
                    .iter()
                    .enumerate()
                    .map(|(j, &v)| v * self.stds[j] + self.means[j])
                    .collect())
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn minmax_round_trip() {
        let data = vec![vec![5.0, -1.0], vec![15.0, 3.0], vec![10.0, 1.0]];
        let mut s = MinMaxScaler::new();
        s.fit(&data);
        let t = s.transform(&data).unwrap();
        assert!(t.iter().flatten().all(|&v| (0.0..=1.0).contains(&v)));
        let back = s.inverse_transform(&t).unwrap();
        for (a, b) in back.iter().flatten().zip(data.iter().flatten()) {
            assert!((a - b).abs() < 1e-12);
        }
    }

    #[test]
    fn minmax_constant_feature_maps_to_zero() {
        let data = vec![vec![7.0], vec![7.0]];
        let mut s = MinMaxScaler::new();
        s.fit(&data);
        assert_eq!(s.transform(&data).unwrap(), vec![vec![0.0], vec![0.0]]);
    }

    #[test]
    fn minmax_skips_non_finite_rows() {
        let data = vec![vec![0.0], vec![f64::NAN], vec![10.0]];
        let mut s = MinMaxScaler::new();
        s.fit(&data);
        assert_eq!(s.value(0, 5.0), 0.5);
    }

    #[test]
    fn minmax_errors() {
        let s = MinMaxScaler::new();
        assert_eq!(s.transform(&[vec![1.0]]).unwrap_err(), ScalerError::NotFitted);
        let mut s = MinMaxScaler::new();
        s.fit(&[vec![1.0, 2.0]]);
        let e = s.transform(&[vec![1.0]]).unwrap_err();
        assert_eq!(e, ScalerError::WidthMismatch { fitted: 2, got: 1 });
        assert!(e.to_string().contains("2"));
    }

    #[test]
    fn minmax_scalar_helpers() {
        let mut s = MinMaxScaler::new();
        s.fit(&[vec![0.0], vec![200.0]]);
        assert_eq!(s.value(0, 100.0), 0.5);
        assert_eq!(s.inverse_value(0, 0.25), 50.0);
        assert_eq!(s.transform_row(&[50.0]).unwrap(), vec![0.25]);
    }

    #[test]
    fn minmax_try_fit_reports_degraded_data() {
        let mut s = MinMaxScaler::new();
        assert_eq!(s.try_fit(&[]), Err(ScalerError::EmptyFit));
        assert_eq!(
            s.try_fit(&[vec![f64::NAN], vec![f64::INFINITY]]),
            Err(ScalerError::NoFiniteRows)
        );
        assert_eq!(
            s.try_fit(&[vec![1.0], vec![1.0, 2.0]]),
            Err(ScalerError::RaggedRows)
        );
        assert!(!s.is_fitted(), "failed try_fit must leave scaler unfitted");
        assert!(s.try_fit(&[vec![0.0], vec![10.0]]).is_ok());
        assert_eq!(s.value(0, 5.0), 0.5);
    }

    #[test]
    #[should_panic(expected = "no finite rows")]
    fn minmax_fit_panics_on_all_nan() {
        let mut s = MinMaxScaler::new();
        s.fit(&[vec![f64::NAN]]);
    }

    #[test]
    fn standard_try_fit_reports_degraded_data() {
        let mut s = StandardScaler::new();
        assert_eq!(s.try_fit(&[]), Err(ScalerError::EmptyFit));
        assert_eq!(
            s.try_fit(&[vec![1.0], vec![1.0, 2.0]]),
            Err(ScalerError::RaggedRows)
        );
        assert!(s.try_fit(&[vec![1.0], vec![3.0]]).is_ok());
    }

    #[test]
    fn standard_zero_mean_unit_var() {
        let data = vec![vec![2.0, 0.0], vec![4.0, 10.0], vec![6.0, 20.0]];
        let mut s = StandardScaler::new();
        s.fit(&data);
        let t = s.transform(&data).unwrap();
        let mean0: f64 = t.iter().map(|r| r[0]).sum::<f64>() / 3.0;
        let var0: f64 = t.iter().map(|r| r[0] * r[0]).sum::<f64>() / 3.0;
        assert!(mean0.abs() < 1e-12);
        assert!((var0 - 1.0).abs() < 1e-12);
    }

    #[test]
    fn standard_round_trip() {
        let data = vec![vec![1.0], vec![5.0], vec![9.0]];
        let mut s = StandardScaler::new();
        s.fit(&data);
        let back = s.inverse_transform(&s.transform(&data).unwrap()).unwrap();
        for (a, b) in back.iter().flatten().zip(data.iter().flatten()) {
            assert!((a - b).abs() < 1e-12);
        }
    }

    #[test]
    fn standard_constant_feature_is_safe() {
        let data = vec![vec![3.0], vec![3.0]];
        let mut s = StandardScaler::new();
        s.fit(&data);
        assert_eq!(s.transform(&data).unwrap(), vec![vec![0.0], vec![0.0]]);
    }

    #[test]
    fn standard_not_fitted_error() {
        let s = StandardScaler::new();
        assert_eq!(
            s.inverse_transform(&[vec![0.0]]).unwrap_err(),
            ScalerError::NotFitted
        );
    }

    #[test]
    fn standard_transform_row_into_matches_allocating_path() {
        let data = vec![vec![2.0, 0.0], vec![4.0, 10.0], vec![6.0, 20.0]];
        let mut s = StandardScaler::new();
        s.fit(&data);
        let mut buf = vec![99.0; 7]; // stale content must not leak through
        for row in &data {
            s.transform_row_into(row, &mut buf).unwrap();
            let reference = &s.transform(std::slice::from_ref(row)).unwrap()[0];
            assert_eq!(buf.len(), reference.len());
            for (a, b) in buf.iter().zip(reference) {
                assert_eq!(a.to_bits(), b.to_bits());
            }
        }
        assert_eq!(
            s.transform_row_into(&[1.0], &mut buf).unwrap_err(),
            ScalerError::WidthMismatch { fitted: 2, got: 1 }
        );
        assert!(buf.is_empty(), "errors must leave the buffer cleared");
        let unfitted = StandardScaler::new();
        assert_eq!(
            unfitted.transform_row_into(&[1.0], &mut buf).unwrap_err(),
            ScalerError::NotFitted
        );
    }
}
