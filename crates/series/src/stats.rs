//! Order statistics and smoothing used for risk-profile summaries and the
//! box-plot style results in the paper's Figures 7, 8 and 11.

/// Linear-interpolation quantile (the same `linear` method NumPy defaults
/// to). `q` must be in `[0, 1]`.
///
/// Returns `None` for an empty slice. NaN values sort last under IEEE 754
/// `totalOrder`, so a poisoned input degrades deterministically instead of
/// panicking mid-pipeline.
///
/// # Panics
///
/// Panics if `q` is outside `[0, 1]`.
///
/// # Examples
///
/// ```
/// let q = lgo_series::stats::quantile(&[1.0, 2.0, 3.0, 4.0], 0.5).unwrap();
/// assert_eq!(q, 2.5);
/// ```
pub fn quantile(values: &[f64], q: f64) -> Option<f64> {
    assert!((0.0..=1.0).contains(&q), "quantile: q = {q} outside [0, 1]");
    if values.is_empty() {
        return None;
    }
    let mut sorted = values.to_vec();
    sorted.sort_by(f64::total_cmp);
    let pos = q * (sorted.len() - 1) as f64;
    let lo = pos.floor() as usize;
    let hi = pos.ceil() as usize;
    if lo == hi {
        Some(sorted[lo])
    } else {
        let frac = pos - lo as f64;
        Some(sorted[lo] * (1.0 - frac) + sorted[hi] * frac)
    }
}

/// Median (`quantile(values, 0.5)`).
pub fn median(values: &[f64]) -> Option<f64> {
    quantile(values, 0.5)
}

/// Five-number summary backing a box plot.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BoxStats {
    /// Smallest observation.
    pub min: f64,
    /// First quartile.
    pub q1: f64,
    /// Median.
    pub median: f64,
    /// Third quartile.
    pub q3: f64,
    /// Largest observation.
    pub max: f64,
    /// Arithmetic mean (box plots in the paper also report means).
    pub mean: f64,
}

impl BoxStats {
    /// Computes the five-number summary plus mean.
    ///
    /// Returns `None` for an empty slice.
    ///
    /// # Examples
    ///
    /// ```
    /// let b = lgo_series::stats::BoxStats::from_values(&[1.0, 2.0, 3.0]).unwrap();
    /// assert_eq!(b.median, 2.0);
    /// assert_eq!(b.mean, 2.0);
    /// ```
    pub fn from_values(values: &[f64]) -> Option<BoxStats> {
        if values.is_empty() {
            return None;
        }
        Some(BoxStats {
            min: quantile(values, 0.0)?,
            q1: quantile(values, 0.25)?,
            median: quantile(values, 0.5)?,
            q3: quantile(values, 0.75)?,
            max: quantile(values, 1.0)?,
            mean: values.iter().sum::<f64>() / values.len() as f64,
        })
    }

    /// Interquartile range.
    pub fn iqr(&self) -> f64 {
        self.q3 - self.q1
    }
}

/// Simple moving average with window `w` (output has the same length; the
/// first `w-1` entries average the available prefix).
///
/// # Panics
///
/// Panics if `w == 0`.
pub fn moving_average(values: &[f64], w: usize) -> Vec<f64> {
    assert!(w > 0, "moving_average: window must be positive");
    let mut out = Vec::with_capacity(values.len());
    let mut sum = 0.0;
    for i in 0..values.len() {
        sum += values[i];
        if i >= w {
            sum -= values[i - w];
        }
        let n = (i + 1).min(w) as f64;
        out.push(sum / n);
    }
    out
}

/// Exponential moving average with smoothing factor `alpha` in `(0, 1]`.
///
/// # Panics
///
/// Panics if `alpha` is outside `(0, 1]`.
pub fn ema(values: &[f64], alpha: f64) -> Vec<f64> {
    assert!(
        alpha > 0.0 && alpha <= 1.0,
        "ema: alpha = {alpha} outside (0, 1]"
    );
    let mut out = Vec::with_capacity(values.len());
    let mut prev: Option<f64> = None;
    for &v in values {
        let next = match prev {
            None => v,
            Some(p) => alpha * v + (1.0 - alpha) * p,
        };
        out.push(next);
        prev = Some(next);
    }
    out
}

/// Pearson correlation coefficient of two equally long slices.
///
/// Returns `None` if either side has zero variance or fewer than 2 points.
///
/// # Panics
///
/// Panics if the lengths differ.
pub fn pearson(a: &[f64], b: &[f64]) -> Option<f64> {
    assert_eq!(a.len(), b.len(), "pearson: length mismatch");
    if a.len() < 2 {
        return None;
    }
    let n = a.len() as f64;
    let ma = a.iter().sum::<f64>() / n;
    let mb = b.iter().sum::<f64>() / n;
    let mut cov = 0.0;
    let mut va = 0.0;
    let mut vb = 0.0;
    for (&x, &y) in a.iter().zip(b) {
        cov += (x - ma) * (y - mb);
        va += (x - ma) * (x - ma);
        vb += (y - mb) * (y - mb);
    }
    if va == 0.0 || vb == 0.0 { // lint: allow(L4): zero variance is the exact degenerate case, not a rounding artifact
        return None;
    }
    Some(cov / (va.sqrt() * vb.sqrt()))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quantile_interpolates() {
        let v = [10.0, 20.0, 30.0, 40.0];
        assert_eq!(quantile(&v, 0.0), Some(10.0));
        assert_eq!(quantile(&v, 1.0), Some(40.0));
        assert_eq!(quantile(&v, 0.5), Some(25.0));
        assert_eq!(quantile(&v, 0.25), Some(17.5));
    }

    #[test]
    fn quantile_empty_is_none() {
        assert_eq!(quantile(&[], 0.5), None);
        assert_eq!(median(&[]), None);
    }

    #[test]
    #[should_panic(expected = "outside [0, 1]")]
    fn quantile_rejects_bad_q() {
        let _ = quantile(&[1.0], 1.5);
    }

    #[test]
    fn box_stats_basics() {
        let b = BoxStats::from_values(&[4.0, 1.0, 3.0, 2.0, 5.0]).unwrap();
        assert_eq!(b.min, 1.0);
        assert_eq!(b.max, 5.0);
        assert_eq!(b.median, 3.0);
        assert_eq!(b.mean, 3.0);
        assert_eq!(b.iqr(), 2.0);
        assert_eq!(BoxStats::from_values(&[]), None);
    }

    #[test]
    fn moving_average_prefix_behaviour() {
        let out = moving_average(&[2.0, 4.0, 6.0, 8.0], 2);
        assert_eq!(out, vec![2.0, 3.0, 5.0, 7.0]);
    }

    #[test]
    fn ema_first_value_passthrough() {
        let out = ema(&[10.0, 0.0], 0.5);
        assert_eq!(out, vec![10.0, 5.0]);
    }

    #[test]
    fn pearson_perfect_correlation() {
        let a = [1.0, 2.0, 3.0];
        let b = [2.0, 4.0, 6.0];
        assert!((pearson(&a, &b).unwrap() - 1.0).abs() < 1e-12);
        let c = [6.0, 4.0, 2.0];
        assert!((pearson(&a, &c).unwrap() + 1.0).abs() < 1e-12);
    }

    #[test]
    fn pearson_degenerate_cases() {
        assert_eq!(pearson(&[1.0], &[1.0]), None);
        assert_eq!(pearson(&[1.0, 1.0], &[1.0, 2.0]), None);
    }
}
