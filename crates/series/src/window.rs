//! Sliding-window extraction for sequence models.
//!
//! MAD-GAN consumes fixed-length windows (`seq_len = 12`, `step = 1` in the
//! paper's Appendix B); the forecaster consumes (history window, future
//! target) pairs with a 30-minute prediction horizon.

/// Extracts sliding windows of `seq_len` consecutive rows, advancing by
/// `step` rows between windows.
///
/// Returns an empty vector when the series is shorter than `seq_len`.
///
/// # Panics
///
/// Panics if `seq_len == 0` or `step == 0`.
///
/// # Examples
///
/// ```
/// let rows: Vec<Vec<f64>> = (0..5).map(|t| vec![t as f64]).collect();
/// let w = lgo_series::window::sliding(&rows, 3, 1);
/// assert_eq!(w.len(), 3);
/// assert_eq!(w[2][0][0], 2.0);
/// ```
pub fn sliding(rows: &[Vec<f64>], seq_len: usize, step: usize) -> Vec<Vec<Vec<f64>>> {
    assert!(seq_len > 0, "sliding: seq_len must be positive");
    assert!(step > 0, "sliding: step must be positive");
    if rows.len() < seq_len {
        return Vec::new();
    }
    (0..=rows.len() - seq_len)
        .step_by(step)
        .map(|start| rows[start..start + seq_len].to_vec())
        .collect()
}

/// A supervised forecasting sample: a history window of feature rows and the
/// scalar target `horizon` steps after the end of the window.
#[derive(Debug, Clone, PartialEq)]
pub struct ForecastSample {
    /// `seq_len` rows of input features (time-major).
    pub history: Vec<Vec<f64>>,
    /// The value of the target channel `horizon` steps past the window end.
    pub target: f64,
    /// Index (into the source series) of the row the target was read from.
    pub target_index: usize,
}

/// Builds supervised forecasting pairs from a multivariate series.
///
/// `rows` supplies the input features; `target` supplies the channel to be
/// predicted (usually the CGM channel, possibly the same data as a column of
/// `rows`). A sample is emitted for every position where both the history
/// window and the target (at `horizon` steps after the window) exist.
///
/// # Panics
///
/// Panics if `seq_len == 0`, `horizon == 0`, or the lengths of `rows` and
/// `target` differ.
///
/// # Examples
///
/// ```
/// let rows: Vec<Vec<f64>> = (0..10).map(|t| vec![t as f64]).collect();
/// let target: Vec<f64> = (0..10).map(|t| t as f64 * 10.0).collect();
/// let samples = lgo_series::window::forecast_samples(&rows, &target, 3, 2);
/// // first window covers rows 0..3, target at index 4
/// assert_eq!(samples[0].target, 40.0);
/// assert_eq!(samples[0].target_index, 4);
/// ```
pub fn forecast_samples(
    rows: &[Vec<f64>],
    target: &[f64],
    seq_len: usize,
    horizon: usize,
) -> Vec<ForecastSample> {
    assert!(seq_len > 0, "forecast_samples: seq_len must be positive");
    assert!(horizon > 0, "forecast_samples: horizon must be positive");
    assert_eq!(
        rows.len(),
        target.len(),
        "forecast_samples: {} feature rows vs {} targets",
        rows.len(),
        target.len()
    );
    let mut out = Vec::new();
    if rows.len() < seq_len + horizon {
        return out;
    }
    for start in 0..=rows.len() - seq_len - horizon {
        let t_idx = start + seq_len - 1 + horizon;
        out.push(ForecastSample {
            history: rows[start..start + seq_len].to_vec(),
            target: target[t_idx],
            target_index: t_idx,
        });
    }
    out
}

/// Flattens a window of rows into a single feature vector (row-major), the
/// representation consumed by the kNN and One-Class SVM detectors.
pub fn flatten(window: &[Vec<f64>]) -> Vec<f64> {
    window.iter().flatten().copied().collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rows(n: usize) -> Vec<Vec<f64>> {
        (0..n).map(|t| vec![t as f64, 2.0 * t as f64]).collect()
    }

    #[test]
    fn sliding_counts_and_content() {
        let w = sliding(&rows(10), 4, 1);
        assert_eq!(w.len(), 7);
        assert_eq!(w[6][3], vec![9.0, 18.0]);
    }

    #[test]
    fn sliding_with_step() {
        let w = sliding(&rows(10), 4, 3);
        assert_eq!(w.len(), 3); // starts 0, 3, 6
        assert_eq!(w[2][0], vec![6.0, 12.0]);
    }

    #[test]
    fn sliding_short_series_is_empty() {
        assert!(sliding(&rows(3), 4, 1).is_empty());
    }

    #[test]
    #[should_panic(expected = "seq_len")]
    fn sliding_zero_seq_len_panics() {
        let _ = sliding(&rows(3), 0, 1);
    }

    #[test]
    fn forecast_pairs_align() {
        let r = rows(20);
        let tgt: Vec<f64> = (0..20).map(|t| 100.0 + t as f64).collect();
        let s = forecast_samples(&r, &tgt, 6, 6);
        // windows start at 0..=8 -> 9 samples
        assert_eq!(s.len(), 9);
        assert_eq!(s[0].history.len(), 6);
        assert_eq!(s[0].target_index, 11);
        assert_eq!(s[0].target, 111.0);
        assert_eq!(s[8].target_index, 19);
    }

    #[test]
    fn forecast_too_short_is_empty() {
        let r = rows(5);
        let tgt = vec![0.0; 5];
        assert!(forecast_samples(&r, &tgt, 4, 2).is_empty());
    }

    #[test]
    #[should_panic(expected = "feature rows vs")]
    fn forecast_length_mismatch_panics() {
        let _ = forecast_samples(&rows(5), &[0.0; 4], 2, 1);
    }

    #[test]
    fn flatten_row_major() {
        let w = vec![vec![1.0, 2.0], vec![3.0, 4.0]];
        assert_eq!(flatten(&w), vec![1.0, 2.0, 3.0, 4.0]);
    }
}
