use std::fmt;

/// A multivariate time series stored time-major: one row per timestamp, one
/// column per named channel.
///
/// This is the interchange type between the patient simulator (which produces
/// channels like `cgm`, `basal`, `bolus`, `carbs`, `heart_rate`), the
/// forecaster (which consumes feature windows) and the anomaly detectors.
///
/// # Examples
///
/// ```
/// use lgo_series::MultiSeries;
///
/// let mut s = MultiSeries::new(&["cgm", "bolus"]);
/// s.push_row(&[110.0, 0.0]);
/// s.push_row(&[118.0, 2.5]);
/// assert_eq!(s.len(), 2);
/// assert_eq!(s.channel("bolus").unwrap(), vec![0.0, 2.5]);
/// ```
#[derive(Debug, Clone, PartialEq, Default)]
pub struct MultiSeries {
    names: Vec<String>,
    rows: Vec<Vec<f64>>,
}

impl MultiSeries {
    /// Creates an empty series with the given channel names.
    ///
    /// # Panics
    ///
    /// Panics if `names` is empty or contains duplicates.
    pub fn new<S: AsRef<str>>(names: &[S]) -> Self {
        assert!(!names.is_empty(), "MultiSeries::new: no channel names");
        let names: Vec<String> = names.iter().map(|s| s.as_ref().to_owned()).collect();
        for (i, n) in names.iter().enumerate() {
            assert!(
                !names[..i].contains(n),
                "MultiSeries::new: duplicate channel name {n:?}"
            );
        }
        Self { names, rows: Vec::new() }
    }

    /// Creates a series from channel names and pre-built time-major rows.
    ///
    /// # Panics
    ///
    /// Panics if any row length differs from the number of channels.
    pub fn from_rows<S: AsRef<str>>(names: &[S], rows: Vec<Vec<f64>>) -> Self {
        let mut s = Self::new(names);
        for (t, row) in rows.iter().enumerate() {
            assert_eq!(
                row.len(),
                s.names.len(),
                "MultiSeries::from_rows: row {t} has {} values for {} channels",
                row.len(),
                s.names.len()
            );
        }
        s.rows = rows;
        s
    }

    /// The channel names, in column order.
    pub fn names(&self) -> &[String] {
        &self.names
    }

    /// Number of channels (columns).
    pub fn width(&self) -> usize {
        self.names.len()
    }

    /// Number of timestamps (rows).
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the series has no rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Appends one timestamp of channel values.
    ///
    /// # Panics
    ///
    /// Panics if `row.len()` differs from the number of channels.
    pub fn push_row(&mut self, row: &[f64]) {
        assert_eq!(
            row.len(),
            self.names.len(),
            "push_row: {} values for {} channels",
            row.len(),
            self.names.len()
        );
        self.rows.push(row.to_vec());
    }

    /// Borrows the time-major rows.
    pub fn rows(&self) -> &[Vec<f64>] {
        &self.rows
    }

    /// Row at timestamp `t`.
    ///
    /// # Panics
    ///
    /// Panics if `t >= self.len()`.
    pub fn row(&self, t: usize) -> &[f64] {
        &self.rows[t]
    }

    /// Index of a channel by name.
    pub fn channel_index(&self, name: &str) -> Option<usize> {
        self.names.iter().position(|n| n == name)
    }

    /// Copies a whole channel by name.
    pub fn channel(&self, name: &str) -> Option<Vec<f64>> {
        let idx = self.channel_index(name)?;
        Some(self.rows.iter().map(|r| r[idx]).collect())
    }

    /// Overwrites a whole channel by name.
    ///
    /// # Panics
    ///
    /// Panics if `values.len() != self.len()`.
    ///
    /// # Errors
    ///
    /// Returns `false` (and changes nothing) when the channel does not exist.
    pub fn set_channel(&mut self, name: &str, values: &[f64]) -> bool {
        let Some(idx) = self.channel_index(name) else {
            return false;
        };
        assert_eq!(
            values.len(),
            self.rows.len(),
            "set_channel: {} values for {} rows",
            values.len(),
            self.rows.len()
        );
        for (row, &v) in self.rows.iter_mut().zip(values) {
            row[idx] = v;
        }
        true
    }

    /// Returns the sub-series of rows `[start, end)`.
    ///
    /// # Panics
    ///
    /// Panics if `start > end` or `end > self.len()`.
    pub fn slice(&self, start: usize, end: usize) -> MultiSeries {
        assert!(start <= end && end <= self.rows.len(), "slice {start}..{end} out of bounds");
        MultiSeries {
            names: self.names.clone(),
            rows: self.rows[start..end].to_vec(),
        }
    }

    /// Keeps only the named channels (in the given order), returning a new
    /// series.
    ///
    /// # Panics
    ///
    /// Panics if any requested channel is missing.
    pub fn select<S: AsRef<str>>(&self, channels: &[S]) -> MultiSeries {
        let idx: Vec<usize> = channels
            .iter()
            .map(|c| {
                self.channel_index(c.as_ref())
                    // lint: allow(L1): documented precondition; callers pass static channel lists
                    .unwrap_or_else(|| panic!("select: unknown channel {:?}", c.as_ref()))
            })
            .collect();
        MultiSeries {
            names: channels.iter().map(|c| c.as_ref().to_owned()).collect(),
            rows: self
                .rows
                .iter()
                .map(|r| idx.iter().map(|&i| r[i]).collect())
                .collect(),
        }
    }

    /// True when any value in the series is NaN or infinite.
    pub fn has_non_finite(&self) -> bool {
        self.rows.iter().flatten().any(|v| !v.is_finite())
    }
}

impl fmt::Display for MultiSeries {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "MultiSeries({} rows x {} channels: {})",
            self.rows.len(),
            self.names.len(),
            self.names.join(", ")
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> MultiSeries {
        let mut s = MultiSeries::new(&["a", "b"]);
        for t in 0..5 {
            s.push_row(&[t as f64, 10.0 * t as f64]);
        }
        s
    }

    #[test]
    fn construction_and_shape() {
        let s = sample();
        assert_eq!(s.len(), 5);
        assert_eq!(s.width(), 2);
        assert!(!s.is_empty());
        assert_eq!(s.names(), &["a".to_string(), "b".to_string()]);
    }

    #[test]
    #[should_panic(expected = "duplicate channel")]
    fn duplicate_names_rejected() {
        let _ = MultiSeries::new(&["x", "x"]);
    }

    #[test]
    #[should_panic(expected = "no channel names")]
    fn empty_names_rejected() {
        let _ = MultiSeries::new::<&str>(&[]);
    }

    #[test]
    fn channel_round_trip() {
        let mut s = sample();
        assert_eq!(s.channel("b").unwrap(), vec![0.0, 10.0, 20.0, 30.0, 40.0]);
        assert!(s.set_channel("b", &[1.0; 5]));
        assert_eq!(s.channel("b").unwrap(), vec![1.0; 5]);
        assert!(!s.set_channel("zzz", &[1.0; 5]));
        assert_eq!(s.channel("zzz"), None);
    }

    #[test]
    #[should_panic(expected = "push_row")]
    fn push_row_validates_width() {
        let mut s = sample();
        s.push_row(&[1.0]);
    }

    #[test]
    fn slice_and_select() {
        let s = sample();
        let sl = s.slice(1, 3);
        assert_eq!(sl.len(), 2);
        assert_eq!(sl.row(0), &[1.0, 10.0]);
        let sel = s.select(&["b"]);
        assert_eq!(sel.width(), 1);
        assert_eq!(sel.channel("b").unwrap().len(), 5);
    }

    #[test]
    #[should_panic(expected = "unknown channel")]
    fn select_unknown_channel_panics() {
        let _ = sample().select(&["nope"]);
    }

    #[test]
    fn from_rows_validates() {
        let s = MultiSeries::from_rows(&["a"], vec![vec![1.0], vec![2.0]]);
        assert_eq!(s.len(), 2);
    }

    #[test]
    fn non_finite_detection() {
        let mut s = sample();
        assert!(!s.has_non_finite());
        s.push_row(&[f64::NAN, 0.0]);
        assert!(s.has_non_finite());
    }

    #[test]
    fn display_is_nonempty() {
        assert!(format!("{}", sample()).contains("5 rows"));
    }
}
