//! Property-based tests for the anomaly detectors.

use lgo_detect::{
    cgm_summary, AnomalyDetector, Kernel, KernelSpec, KnnConfig, KnnDetector, OcSvmConfig,
    OneClassSvm, Window,
};
use proptest::prelude::*;

fn window_of(values: &[f64]) -> Window {
    values.iter().map(|&v| vec![v, 0.0, 0.0, 70.0]).collect()
}

proptest! {
    #[test]
    fn knn_k1_memorizes_training_points(
        benign in proptest::collection::vec(50.0..120.0f64, 3..10),
        malicious in proptest::collection::vec(250.0..400.0f64, 3..10),
    ) {
        let b: Vec<Window> = benign.iter().map(|&v| window_of(&[v; 4])).collect();
        let m: Vec<Window> = malicious.iter().map(|&v| window_of(&[v; 4])).collect();
        let cfg = KnnConfig { k: 1, ..KnnConfig::default() };
        let knn = KnnDetector::fit(&b, &m, &cfg);
        // With k = 1 every training point classifies as its own label.
        for w in &b {
            prop_assert!(!knn.is_anomalous(w));
        }
        for w in &m {
            prop_assert!(knn.is_anomalous(w));
        }
    }

    #[test]
    fn knn_score_is_bounded_vote_fraction(
        q in 0.0..500.0f64,
    ) {
        let b: Vec<Window> = (0..10).map(|i| window_of(&[100.0 + i as f64; 4])).collect();
        let m: Vec<Window> = (0..10).map(|i| window_of(&[300.0 + i as f64; 4])).collect();
        let knn = KnnDetector::fit(&b, &m, &KnnConfig::default());
        let s = knn.score(&window_of(&[q; 4]));
        prop_assert!((-0.5..=0.5).contains(&s));
    }

    #[test]
    fn kernels_are_symmetric(
        u in proptest::collection::vec(-5.0..5.0f64, 4),
        v in proptest::collection::vec(-5.0..5.0f64, 4),
    ) {
        for k in [
            Kernel::Linear,
            Kernel::Rbf { gamma: 0.3 },
            Kernel::Sigmoid { gamma: 0.3, coef0: 1.0 },
            Kernel::Polynomial { gamma: 0.5, coef0: 1.0, degree: 3 },
        ] {
            prop_assert!((k.eval(&u, &v) - k.eval(&v, &u)).abs() < 1e-12);
        }
        // RBF is a similarity in (0, 1] with max at u = v.
        let rbf = Kernel::Rbf { gamma: 0.3 };
        prop_assert!((rbf.eval(&u, &u) - 1.0).abs() < 1e-12);
        prop_assert!(rbf.eval(&u, &v) <= 1.0 + 1e-12);
        prop_assert!(rbf.eval(&u, &v) > 0.0);
    }

    #[test]
    fn ocsvm_decision_is_deterministic_and_finite(
        points in proptest::collection::vec(-10.0..10.0f64, 8..20),
        q in -20.0..20.0f64,
    ) {
        let train: Vec<Window> = points.iter().map(|&v| window_of(&[v; 2])).collect();
        let cfg = OcSvmConfig {
            kernel: KernelSpec::Fixed(Kernel::Rbf { gamma: 0.5 }),
            nu: 0.3,
            ..OcSvmConfig::default()
        };
        let svm = OneClassSvm::fit(&train, &cfg);
        let w = window_of(&[q; 2]);
        let d1 = svm.decision_function(&w);
        prop_assert!(d1.is_finite());
        prop_assert_eq!(d1, svm.decision_function(&w));
    }

    #[test]
    fn summary_features_track_the_last_sample(
        prefix in proptest::collection::vec(60.0..200.0f64, 11),
        last in 60.0..499.0f64,
    ) {
        let mut values = prefix.clone();
        values.push(last);
        let f = cgm_summary(&window_of(&values));
        prop_assert_eq!(f[0], last);
        // max_recent >= last by definition.
        prop_assert!(f[1] >= last - 1e-12);
    }
}
