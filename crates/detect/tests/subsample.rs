//! Regression tests for the shared training-set subsampling helper.
//!
//! The three detectors used to cap their training sets with a float stride
//! (`items[(i as f64 * stride) as usize]`), which always dropped the tail
//! of the window list and, with unlucky rounding, could select duplicate
//! indices. These tests pin the exact-integer replacement's contract and
//! check the detectors behave no worse than the old selection.

use lgo_detect::{
    subsample_cap, subsample_indices, AnomalyDetector, KnnConfig, KnnDetector, Kernel,
    KernelSpec, MadGan, MadGanConfig, OcSvmConfig, OneClassSvm,
};

type Window = Vec<Vec<f64>>;

/// The old copy-pasted selection, reproduced verbatim for comparison.
fn float_stride_indices(len: usize, cap: usize) -> Vec<usize> {
    let stride = len as f64 / cap as f64;
    (0..cap).map(|i| (i as f64 * stride) as usize).collect()
}

#[test]
fn indices_have_exact_length_no_duplicates_and_are_monotone() {
    for len in [2usize, 3, 7, 10, 64, 100, 150, 500, 1000, 4096] {
        for cap in [1usize, 2, 3, 7, 10, 64, 99, 100] {
            let idx = subsample_indices(len, cap);
            assert_eq!(idx.len(), len.min(cap), "len {len} cap {cap}");
            assert!(
                idx.windows(2).all(|w| w[0] < w[1]),
                "duplicate or non-monotone index at len {len} cap {cap}: {idx:?}"
            );
            assert!(idx.iter().all(|&i| i < len), "len {len} cap {cap}");
        }
    }
}

#[test]
fn first_and_last_items_are_retained() {
    for len in [2usize, 5, 10, 151, 1000] {
        for cap in [2usize, 3, 10, 150] {
            let idx = subsample_indices(len, cap);
            assert_eq!(idx[0], 0, "len {len} cap {cap}");
            assert_eq!(*idx.last().expect("nonempty"), len - 1, "len {len} cap {cap}");
        }
    }
}

#[test]
fn old_float_stride_dropped_the_tail() {
    // Every one of these (len, cap) pairs shows the old selection never
    // reaching the final item, while the replacement always does.
    for (len, cap) in [(200usize, 10usize), (1500, 1500 / 2 + 1), (2000, 1999), (97, 13)] {
        if len <= cap {
            continue;
        }
        let old = float_stride_indices(len, cap);
        let new = subsample_indices(len, cap);
        assert!(
            *old.last().expect("nonempty") < len - 1,
            "old selection unexpectedly reached the tail at len {len} cap {cap}"
        );
        assert_eq!(*new.last().expect("nonempty"), len - 1);
        assert_ne!(old, new, "fit set should change at len {len} cap {cap}");
    }
}

fn constant_window(value: f64, seq_len: usize, signals: usize) -> Window {
    vec![vec![value; signals]; seq_len]
}

/// Benign windows drift from 0.0 upward; malicious windows sit in a far
/// cluster that also drifts. The drift makes the *tail* of each class the
/// best match for tail-like test windows, which is exactly what the old
/// selection discarded.
fn drifting_class(base: f64, step: f64, n: usize) -> Vec<Window> {
    (0..n)
        .map(|i| constant_window(base + i as f64 * step, 4, 1))
        .collect()
}

#[test]
fn knn_capped_fit_set_changes_and_recall_does_not_regress() {
    let benign = drifting_class(0.0, 0.01, 120);
    let malicious = drifting_class(5.0, 0.02, 120);
    let cap = 30;

    // Detector-level: the cap is honoured exactly (old float stride also
    // kept `cap` points, but a different set — shown at the index level).
    let capped_cfg = KnnConfig {
        max_samples_per_class: Some(cap),
        ..KnnConfig::default()
    };
    let capped = KnnDetector::fit(&benign, &malicious, &capped_cfg);
    assert_eq!(capped.len(), 2 * cap);
    assert_ne!(
        float_stride_indices(benign.len(), cap),
        subsample_indices(benign.len(), cap),
    );

    // Recall comparison: train one detector on the old selection and one on
    // the new, then score held-out malicious windows drawn near the tail of
    // the malicious drift (the region the old selection never kept).
    let pick = |class: &[Window], idx: &[usize]| -> Vec<Window> {
        idx.iter().map(|&i| class[i].clone()).collect()
    };
    let uncapped = KnnConfig::default();
    let old = KnnDetector::fit(
        &pick(&benign, &float_stride_indices(benign.len(), cap)),
        &pick(&malicious, &float_stride_indices(malicious.len(), cap)),
        &uncapped,
    );
    let new = KnnDetector::fit(
        &pick(&benign, &subsample_indices(benign.len(), cap)),
        &pick(&malicious, &subsample_indices(malicious.len(), cap)),
        &uncapped,
    );
    let test_malicious: Vec<Window> = (0..20)
        .map(|i| constant_window(7.0 + i as f64 * 0.02, 4, 1))
        .collect();
    let recall = |d: &KnnDetector| {
        test_malicious.iter().filter(|w| d.is_anomalous(w)).count() as f64
            / test_malicious.len() as f64
    };
    let (old_recall, new_recall) = (recall(&old), recall(&new));
    assert!(
        new_recall >= old_recall,
        "recall regressed: old {old_recall} new {new_recall}"
    );
    assert!(new_recall > 0.9, "new recall too low: {new_recall}");
}

#[test]
fn ocsvm_capped_fit_set_changes_and_recall_does_not_regress() {
    // Benign: a 2-D ring (same shape as the unit tests); malicious: points
    // far outside it.
    let ring = |n: usize| -> Vec<Window> {
        (0..n)
            .map(|i| {
                let t = i as f64 * std::f64::consts::TAU / n as f64;
                vec![vec![t.cos(), t.sin()]]
            })
            .collect()
    };
    let benign = ring(160);
    let cap = 48;
    let rbf = OcSvmConfig {
        nu: 0.2,
        kernel: KernelSpec::Fixed(Kernel::Rbf { gamma: 2.0 }),
        calibration_quantile: None,
        max_samples: None,
        ..OcSvmConfig::default()
    };

    // Detector-level: the configured cap flows through the shared helper.
    let capped_cfg = OcSvmConfig {
        max_samples: Some(cap),
        ..rbf.clone()
    };
    let capped = OneClassSvm::fit(&benign, &capped_cfg);
    assert!(capped.support_vector_count() <= cap);

    let pick = |idx: &[usize]| -> Vec<Window> { idx.iter().map(|&i| benign[i].clone()).collect() };
    let old = OneClassSvm::fit(&pick(&float_stride_indices(benign.len(), cap)), &rbf);
    let new = OneClassSvm::fit(&pick(&subsample_indices(benign.len(), cap)), &rbf);
    let outliers: Vec<Window> = (0..16)
        .map(|i| {
            let t = i as f64 * std::f64::consts::TAU / 16.0;
            vec![vec![4.0 * t.cos(), 4.0 * t.sin()]]
        })
        .collect();
    let recall = |d: &OneClassSvm| {
        outliers.iter().filter(|w| d.is_anomalous(w)).count() as f64 / outliers.len() as f64
    };
    let (old_recall, new_recall) = (recall(&old), recall(&new));
    assert!(
        new_recall >= old_recall,
        "recall regressed: old {old_recall} new {new_recall}"
    );
    assert!(new_recall > 0.9, "new recall too low: {new_recall}");
}

#[test]
fn madgan_fit_honours_the_shared_cap() {
    let benign: Vec<Window> = (0..60)
        .map(|i| {
            (0..4)
                .map(|t| vec![((i + t) as f64 * 0.2).sin(), ((i + t) as f64 * 0.2).cos()])
                .collect()
        })
        .collect();
    let cfg = MadGanConfig {
        epochs: 2,
        seq_len: 4,
        latent_dim: 2,
        hidden: 4,
        batch_size: 8,
        inversion_steps: 4,
        max_windows: Some(30),
        ..MadGanConfig::default()
    };
    // The cap now flows through subsample_cap: the fit succeeds on a capped
    // set that, unlike the old float stride, includes the final window.
    let gan = MadGan::fit(&benign, &cfg);
    let obvious: Window = vec![vec![50.0, -50.0]; 4];
    assert!(gan.score(&obvious).is_finite());
}

#[test]
fn subsample_cap_preserves_order_and_identity_below_cap() {
    let items: Vec<usize> = (0..50).collect();
    let kept = subsample_cap(items.clone(), 50);
    assert_eq!(kept, items);
    let kept = subsample_cap(items.clone(), 0);
    assert_eq!(kept, items);
    let kept = subsample_cap(items, 12);
    assert_eq!(kept.len(), 12);
    assert_eq!(kept[0], 0);
    assert_eq!(*kept.last().expect("nonempty"), 49);
    assert!(kept.windows(2).all(|w| w[0] < w[1]));
}
