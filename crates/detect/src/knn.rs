use lgo_series::window::flatten;
use lgo_series::MinMaxScaler;
use lgo_tensor::vector::minkowski;

use crate::detector::{AnomalyDetector, Window};
use crate::error::DetectError;
use crate::kdtree::KdTree;

/// Neighbour-search backend, mirroring scikit-learn's `algorithm`
/// parameter (the paper passes `auto`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum KnnAlgorithm {
    /// Pick automatically: a KD-tree for the Euclidean metric (`p = 2`),
    /// brute force otherwise.
    #[default]
    Auto,
    /// Always brute force.
    Brute,
    /// Always a KD-tree (exact; only valid with `p = 2`).
    KdTree,
}

/// Configuration mirroring scikit-learn's `KNeighborsClassifier` with the
/// paper's Appendix-B parameters.
#[derive(Debug, Clone, PartialEq)]
pub struct KnnConfig {
    /// Number of neighbours (paper: 7).
    pub k: usize,
    /// Minkowski order (paper: p = 2, i.e. Euclidean).
    pub p: f64,
    /// Neighbour-search backend (paper: auto).
    pub algorithm: KnnAlgorithm,
    /// KD-tree leaf bucket size (paper: 30).
    pub leaf_size: usize,
    /// Optional cap on stored training samples per class; when set, samples
    /// are kept by uniform stride. `None` stores everything.
    pub max_samples_per_class: Option<usize>,
}

impl Default for KnnConfig {
    fn default() -> Self {
        Self {
            k: 7,
            p: 2.0,
            algorithm: KnnAlgorithm::Auto,
            leaf_size: 30,
            max_samples_per_class: None,
        }
    }
}

/// Supervised k-nearest-neighbour anomaly detector.
///
/// Trained on labelled benign + malicious windows (the malicious ones come
/// from simulating the evasion attack); classifies by unweighted majority
/// vote among the `k` nearest training points under the Minkowski metric,
/// exactly like `KNeighborsClassifier(n_neighbors=7, weights="uniform",
/// metric="minkowski", p=2)`.
///
/// # Examples
///
/// See the crate-level example.
#[derive(Debug, Clone)]
pub struct KnnDetector {
    points: Vec<Vec<f64>>,
    labels: Vec<bool>,
    scaler: MinMaxScaler,
    tree: Option<KdTree>,
    config: KnnConfig,
}

impl KnnDetector {
    /// Fits (memorizes) the training windows. Windows containing
    /// non-finite values are dropped (see [`try_fit`](Self::try_fit)).
    ///
    /// # Panics
    ///
    /// Panics if both classes are empty, windows are ragged, or `k == 0`.
    pub fn fit(benign: &[Window], malicious: &[Window], config: &KnnConfig) -> Self {
        match Self::try_fit(benign, malicious, config) {
            Ok(d) => d,
            // lint: allow(L1): documented panicking wrapper; try_fit is the checked path
            Err(e) => panic!("KnnDetector: {e}"),
        }
    }

    /// Fallible [`fit`](Self::fit): windows containing non-finite values
    /// (degraded sensor data) are dropped before training.
    ///
    /// # Errors
    ///
    /// Returns [`DetectError::InvalidK`] for `k == 0`,
    /// [`DetectError::NoTrainingWindows`] when both classes are empty,
    /// [`DetectError::NoFiniteWindows`] when every window is corrupt,
    /// [`DetectError::InconsistentShapes`] on mismatched window shapes,
    /// and [`DetectError::KdTreeMetric`] for a KD-tree request with
    /// `p != 2`.
    pub fn try_fit(
        benign: &[Window],
        malicious: &[Window],
        config: &KnnConfig,
    ) -> Result<Self, DetectError> {
        let _span = lgo_trace::span("detect/knn/fit");
        if config.k == 0 {
            return Err(DetectError::InvalidK);
        }
        if benign.is_empty() && malicious.is_empty() {
            return Err(DetectError::NoTrainingWindows);
        }
        let mut points = Vec::new();
        let mut labels = Vec::new();
        let mut dropped_all_finite = true;
        for (class, label) in [(benign, false), (malicious, true)] {
            let kept = Self::stride_cap(class, config.max_samples_per_class);
            for w in kept {
                let flat = flatten(&w);
                if flat.iter().any(|v| !v.is_finite()) {
                    dropped_all_finite = false;
                    continue;
                }
                points.push(flat);
                labels.push(label);
            }
        }
        if points.is_empty() {
            return Err(if dropped_all_finite {
                DetectError::NoTrainingWindows
            } else {
                DetectError::NoFiniteWindows
            });
        }
        let width = points[0].len();
        if !points.iter().all(|p| p.len() == width) {
            return Err(DetectError::InconsistentShapes);
        }
        // Per-feature min-max scaling keeps the Minkowski metric from being
        // dominated by the largest-unit channel (CGM in mg/dL vs boluses in
        // units); queries are scaled with the same training statistics.
        let mut scaler = MinMaxScaler::new();
        scaler.try_fit(&points)?;
        let points = scaler.transform(&points)?;
        let use_tree = match config.algorithm {
            KnnAlgorithm::Brute => false,
            KnnAlgorithm::KdTree => {
                if (config.p - 2.0).abs() >= f64::EPSILON {
                    return Err(DetectError::KdTreeMetric);
                }
                true
            }
            KnnAlgorithm::Auto => (config.p - 2.0).abs() < f64::EPSILON,
        };
        let tree = use_tree.then(|| KdTree::build(points.clone(), config.leaf_size));
        lgo_trace::counter("detect/knn/fits", 1);
        lgo_trace::counter("detect/knn/fit_points", points.len() as u64);
        Ok(Self {
            points,
            labels,
            scaler,
            tree,
            config: config.clone(),
        })
    }

    fn stride_cap(class: &[Window], cap: Option<usize>) -> Vec<Window> {
        crate::subsample::subsample_cap(class.to_vec(), cap.unwrap_or(0))
    }

    /// Number of stored training points.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// Whether the detector stores no points (never true after `fit`).
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// Fraction of malicious votes among the `k` nearest neighbours of a
    /// flattened query.
    fn malicious_fraction(&self, query: &[f64]) -> f64 {
        let k = self.config.k.min(self.points.len());
        if let Some(tree) = &self.tree {
            let hits = tree.nearest(query, k);
            let malicious = hits.iter().filter(|&&(i, _)| self.labels[i]).count();
            return malicious as f64 / k as f64;
        }
        // Brute force: partial selection of the k smallest distances.
        let mut dists: Vec<(f64, bool)> = self
            .points
            .iter()
            .zip(&self.labels)
            .map(|(p, &l)| (minkowski(p, query, self.config.p), l))
            .collect();
        // total_cmp keeps the selection well defined even if a degraded
        // query produces NaN distances (NaN sorts last, i.e. farthest).
        dists.select_nth_unstable_by(k - 1, |a, b| a.0.total_cmp(&b.0));
        let malicious = dists[..k].iter().filter(|&&(_, l)| l).count();
        malicious as f64 / k as f64
    }
}

impl AnomalyDetector for KnnDetector {
    fn name(&self) -> &str {
        "knn"
    }

    /// Score = malicious-vote fraction − 0.5, so the sign matches the
    /// majority decision.
    fn score(&self, window: &Window) -> f64 {
        lgo_trace::counter("detect/knn/scores", 1);
        let query = self
            .scaler
            .transform_row(&flatten(window))
            // lint: allow(L1): AnomalyDetector::score is infallible by trait contract; a width mismatch is a caller bug, and the pipeline isolates detector panics per patient
            .expect("query width matches training width");
        self.malicious_fraction(&query) - 0.5
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn window(v: f64) -> Window {
        vec![vec![v, v * 0.5]; 3]
    }

    fn cluster(center: f64, n: usize) -> Vec<Window> {
        (0..n).map(|i| window(center + i as f64 * 0.01)).collect()
    }

    #[test]
    fn separates_two_clusters() {
        let d = KnnDetector::fit(&cluster(0.0, 20), &cluster(10.0, 20), &KnnConfig::default());
        assert!(d.is_anomalous(&window(9.9)));
        assert!(!d.is_anomalous(&window(0.1)));
        assert_eq!(d.name(), "knn");
        assert_eq!(d.len(), 40);
        assert!(!d.is_empty());
    }

    #[test]
    fn score_is_vote_fraction_centered() {
        let d = KnnDetector::fit(&cluster(0.0, 10), &cluster(10.0, 10), &KnnConfig::default());
        // Deep inside the benign cluster: all 7 neighbours benign.
        assert_eq!(d.score(&window(0.05)), -0.5);
        // Deep inside the malicious cluster: all 7 malicious.
        assert_eq!(d.score(&window(10.05)), 0.5);
    }

    #[test]
    fn k_larger_than_dataset_is_clamped() {
        let d = KnnDetector::fit(
            &cluster(0.0, 2),
            &cluster(5.0, 1),
            &KnnConfig {
                k: 50,
                ..KnnConfig::default()
            },
        );
        // Works without panicking; majority of all 3 points is benign.
        assert!(!d.is_anomalous(&window(2.0)));
    }

    #[test]
    fn manhattan_metric_changes_geometry() {
        let cfg = KnnConfig {
            p: 1.0,
            ..KnnConfig::default()
        };
        let d = KnnDetector::fit(&cluster(0.0, 10), &cluster(10.0, 10), &cfg);
        assert!(d.is_anomalous(&window(8.0)));
    }

    #[test]
    fn sample_cap_strides_uniformly() {
        let cfg = KnnConfig {
            max_samples_per_class: Some(5),
            ..KnnConfig::default()
        };
        let d = KnnDetector::fit(&cluster(0.0, 100), &cluster(10.0, 100), &cfg);
        assert_eq!(d.len(), 10);
        // Still classifies correctly.
        assert!(d.is_anomalous(&window(10.2)));
        assert!(!d.is_anomalous(&window(-0.2)));
    }

    #[test]
    fn ties_with_even_k_are_not_anomalous() {
        // k=2 with one neighbour from each class -> fraction 0.5 -> score 0.
        let cfg = KnnConfig {
            k: 2,
            ..KnnConfig::default()
        };
        let d = KnnDetector::fit(&cluster(0.0, 1), &cluster(1.0, 1), &cfg);
        assert!(!d.is_anomalous(&window(0.5)));
    }

    #[test]
    fn kdtree_and_brute_backends_agree() {
        let benign = cluster(0.0, 40);
        let malicious = cluster(10.0, 40);
        let brute = KnnDetector::fit(
            &benign,
            &malicious,
            &KnnConfig {
                algorithm: KnnAlgorithm::Brute,
                ..KnnConfig::default()
            },
        );
        let tree = KnnDetector::fit(
            &benign,
            &malicious,
            &KnnConfig {
                algorithm: KnnAlgorithm::KdTree,
                ..KnnConfig::default()
            },
        );
        for q in [-1.0, 0.3, 4.9, 5.1, 9.7, 20.0] {
            assert_eq!(
                brute.score(&window(q)),
                tree.score(&window(q)),
                "backends disagree at query {q}"
            );
        }
    }

    #[test]
    fn auto_uses_tree_only_for_euclidean() {
        let cfg_manhattan = KnnConfig {
            p: 1.0,
            ..KnnConfig::default()
        };
        let d = KnnDetector::fit(&cluster(0.0, 5), &cluster(5.0, 5), &cfg_manhattan);
        // Manhattan under Auto must still work (brute path).
        assert!(d.is_anomalous(&window(5.1)));
    }

    #[test]
    #[should_panic(expected = "requires p = 2")]
    fn kdtree_backend_rejects_other_metrics() {
        let cfg = KnnConfig {
            p: 1.0,
            algorithm: KnnAlgorithm::KdTree,
            ..KnnConfig::default()
        };
        let _ = KnnDetector::fit(&cluster(0.0, 3), &cluster(5.0, 3), &cfg);
    }

    #[test]
    #[should_panic(expected = "no training windows")]
    fn empty_training_rejected() {
        let _ = KnnDetector::fit(&[], &[], &KnnConfig::default());
    }

    #[test]
    #[should_panic(expected = "k must be positive")]
    fn zero_k_rejected() {
        let _ = KnnDetector::fit(
            &cluster(0.0, 1),
            &[],
            &KnnConfig {
                k: 0,
                ..KnnConfig::default()
            },
        );
    }
}
