use lgo_nn::{Activation, Adam, Loss, LstmDiscriminator, LstmSeq2Seq, Trainable};
use lgo_series::MinMaxScaler;
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

use crate::detector::{AnomalyDetector, Window};
use crate::error::DetectError;

/// MAD-GAN hyper-parameters, defaulting to the paper's Appendix B
/// (epochs = 100, 4 signals, seq_len = 12, step = 1) with the original
/// paper's LSTM generator/discriminator and DR-Score.
#[derive(Debug, Clone, PartialEq)]
pub struct MadGanConfig {
    /// Training epochs over the benign windows (paper: 100).
    pub epochs: usize,
    /// Window length in samples (paper: 12).
    pub seq_len: usize,
    /// Latent dimension fed to the generator per timestep (paper: 4
    /// generated features).
    pub latent_dim: usize,
    /// LSTM hidden units for both generator and discriminator.
    pub hidden: usize,
    /// Adam learning rate for both networks.
    pub learning_rate: f64,
    /// Mini-batch size (windows per optimizer step).
    pub batch_size: usize,
    /// DR-Score weight λ on the reconstruction residual
    /// (score = λ·residual + (1−λ)·(1 − D(x))).
    pub lambda: f64,
    /// Gradient-descent steps of the latent-inversion search.
    pub inversion_steps: usize,
    /// Learning rate of the latent-inversion search.
    pub inversion_lr: f64,
    /// Quantile of training DR-Scores used as the anomaly threshold.
    pub threshold_quantile: f64,
    /// RNG seed (weights, latent draws, shuffling).
    pub seed: u64,
    /// Optional cap on training windows (uniform stride subsample); GAN
    /// epochs over tens of thousands of windows are otherwise the pipeline's
    /// dominant cost.
    pub max_windows: Option<usize>,
}

impl Default for MadGanConfig {
    fn default() -> Self {
        Self {
            epochs: 100,
            seq_len: 12,
            latent_dim: 4,
            hidden: 16,
            learning_rate: 0.003,
            batch_size: 16,
            lambda: 0.9,
            inversion_steps: 20,
            inversion_lr: 0.3,
            threshold_quantile: 0.95,
            seed: 0x3AD,
            max_windows: Some(2000),
        }
    }
}

/// Multivariate Anomaly Detection GAN (Li et al., ICANN 2019): an LSTM
/// generator/discriminator pair trained on benign windows; anomalies are
/// scored by the **DR-Score**, combining the *discrimination* score (how
/// fake the discriminator finds the window) and the *reconstruction*
/// residual (how poorly the generator can reproduce the window from its
/// best-matching latent sequence).
///
/// # Examples
///
/// ```
/// use lgo_detect::{AnomalyDetector, MadGan, MadGanConfig};
///
/// let benign: Vec<Vec<Vec<f64>>> = (0..32)
///     .map(|i| (0..12).map(|t| {
///         let v = ((t + i) as f64 * 0.5).sin() * 0.3 + 0.5;
///         vec![v, v * 0.8]
///     }).collect())
///     .collect();
/// let cfg = MadGanConfig { epochs: 3, hidden: 8, inversion_steps: 5, ..MadGanConfig::default() };
/// let gan = MadGan::fit(&benign, &cfg);
/// let score = gan.score(&benign[0]);
/// assert!(score.is_finite());
/// ```
#[derive(Debug, Clone)]
pub struct MadGan {
    generator: LstmSeq2Seq,
    discriminator: LstmDiscriminator,
    scaler: MinMaxScaler,
    threshold: f64,
    config: MadGanConfig,
}

impl MadGan {
    /// Trains the GAN on benign windows and calibrates the anomaly
    /// threshold at the configured quantile of training DR-Scores.
    ///
    /// # Panics
    ///
    /// Panics if `windows` is empty, windows are ragged, or any window's
    /// length differs from `config.seq_len`.
    pub fn fit(windows: &[Window], config: &MadGanConfig) -> Self {
        match Self::try_fit(windows, config) {
            Ok(gan) => gan,
            // lint: allow(L1): documented panicking wrapper; try_fit is the checked path
            Err(e) => panic!("MadGan: {e}"),
        }
    }

    /// Fallible [`fit`](Self::fit): windows containing non-finite values
    /// (degraded sensor data) are dropped before training.
    ///
    /// # Errors
    ///
    /// Returns [`DetectError::NoTrainingWindows`] on empty input,
    /// [`DetectError::NoFiniteWindows`] when every window is corrupt, and
    /// [`DetectError::WindowLength`] / [`DetectError::RaggedWindow`] on
    /// malformed windows.
    pub fn try_fit(windows: &[Window], config: &MadGanConfig) -> Result<Self, DetectError> {
        let _span = lgo_trace::span("detect/madgan/fit");
        if windows.is_empty() {
            return Err(DetectError::NoTrainingWindows);
        }
        let finite: Vec<Window> = windows
            .iter()
            .filter(|w| w.iter().flatten().all(|v| v.is_finite()))
            .cloned()
            .collect();
        if finite.is_empty() {
            return Err(DetectError::NoFiniteWindows);
        }
        let windows: Vec<Window> =
            crate::subsample::subsample_cap(finite, config.max_windows.unwrap_or(0));
        lgo_trace::counter("detect/madgan/fits", 1);
        lgo_trace::counter("detect/madgan/fit_windows", windows.len() as u64);
        let n_signals = windows[0][0].len();
        for (i, w) in windows.iter().enumerate() {
            if w.len() != config.seq_len {
                return Err(DetectError::WindowLength {
                    index: i,
                    got: w.len(),
                    expected: config.seq_len,
                });
            }
            if !w.iter().all(|r| r.len() == n_signals) {
                return Err(DetectError::RaggedWindow { index: i });
            }
        }

        let mut scaler = MinMaxScaler::new();
        let all_rows: Vec<Vec<f64>> = windows.iter().flatten().cloned().collect();
        scaler.try_fit(&all_rows)?;
        let scaled: Vec<Window> = windows
            .iter()
            .map(|w| scaler.transform(w))
            .collect::<Result<_, _>>()?;

        let mut rng = StdRng::seed_from_u64(config.seed);
        let mut generator = LstmSeq2Seq::new(
            config.latent_dim,
            config.hidden,
            n_signals,
            Activation::Sigmoid,
            &mut rng,
        );
        let mut discriminator = LstmDiscriminator::new(n_signals, config.hidden, &mut rng);
        let mut opt_g = Adam::new(config.learning_rate);
        let mut opt_d = Adam::new(config.learning_rate);

        let mut order: Vec<usize> = (0..scaled.len()).collect();
        for _epoch in 0..config.epochs {
            use rand::seq::SliceRandom;
            order.shuffle(&mut rng);
            for batch in order.chunks(config.batch_size) {
                // --- Discriminator step: real -> 1, fake -> 0.
                discriminator.zero_grads();
                for &wi in batch {
                    let real = &scaled[wi];
                    let tr = discriminator.forward(real);
                    discriminator.backward(&tr, Loss::Bce.gradient(tr.probability(), 1.0));
                    let z = Self::draw_latent(config, &mut rng);
                    let fake = generator.generate(&z);
                    let tr = discriminator.forward(&fake);
                    discriminator.backward(&tr, Loss::Bce.gradient(tr.probability(), 0.0));
                }
                opt_d.step(&mut discriminator);

                // --- Generator step: make D(G(z)) -> 1.
                generator.zero_grads();
                for _ in 0..batch.len() {
                    let z = Self::draw_latent(config, &mut rng);
                    let g_trace = generator.forward(&z);
                    let d_trace = discriminator.forward(g_trace.outputs());
                    let dprob = Loss::Bce.gradient(d_trace.probability(), 1.0);
                    // Route the gradient through D into G's outputs without
                    // keeping D's parameter gradients.
                    let dxs = discriminator.backward(&d_trace, dprob);
                    generator.backward(&g_trace, &dxs);
                }
                discriminator.zero_grads();
                opt_g.step(&mut generator);
            }
        }

        let mut gan = Self {
            generator,
            discriminator,
            scaler,
            threshold: 0.0,
            config: config.clone(),
        };
        // Calibrate the threshold on (a subsample of) the training windows.
        let stride = (windows.len() / 200).max(1);
        let train_scores: Vec<f64> = windows
            .iter()
            .step_by(stride)
            .map(|w| gan.dr_score(w))
            .collect();
        gan.threshold = lgo_series::stats::quantile(&train_scores, config.threshold_quantile)
            // lint: allow(L1): windows is nonempty (checked at entry) and stride >= 1, so at least one score exists
            .expect("nonempty scores");
        Ok(gan)
    }

    /// ROAST-style outlier-exposure fit: identical to
    /// [`try_fit`](Self::try_fit), except that each discriminator batch
    /// step additionally pushes one known-adversarial window (cycled
    /// deterministically from `outliers`) toward the *fake* label. The
    /// discriminator therefore learns to reject crafted manipulations
    /// explicitly instead of only implicitly through the generator's
    /// samples; the DR-Score and threshold calibration are unchanged and
    /// computed on the benign windows only.
    ///
    /// The outlier pass draws no randomness, so the generator/
    /// discriminator weight initialization, latent draws, and shuffling
    /// are identical to the plain fit for the same seed. With an empty
    /// (or fully malformed) outlier set this reduces **bit-exactly** to
    /// [`try_fit`](Self::try_fit).
    ///
    /// # Errors
    ///
    /// The same errors as [`try_fit`](Self::try_fit). Outlier windows
    /// that are non-finite or have the wrong shape are silently dropped —
    /// they are auxiliary training signal, not primary data.
    pub fn try_fit_with_outliers(
        windows: &[Window],
        outliers: &[Window],
        config: &MadGanConfig,
    ) -> Result<Self, DetectError> {
        // Keep only well-formed outliers; an empty usable set must reduce
        // to the plain fit (same spans/counters, same bits).
        let usable: Vec<Window> = outliers
            .iter()
            .filter(|w| {
                w.len() == config.seq_len && w.iter().flatten().all(|v| v.is_finite())
            })
            .cloned()
            .collect();
        if usable.is_empty() {
            return Self::try_fit(windows, config);
        }
        let _span = lgo_trace::span("detect/madgan/fit_oe");
        if windows.is_empty() {
            return Err(DetectError::NoTrainingWindows);
        }
        let finite: Vec<Window> = windows
            .iter()
            .filter(|w| w.iter().flatten().all(|v| v.is_finite()))
            .cloned()
            .collect();
        if finite.is_empty() {
            return Err(DetectError::NoFiniteWindows);
        }
        let windows: Vec<Window> =
            crate::subsample::subsample_cap(finite, config.max_windows.unwrap_or(0));
        lgo_trace::counter("detect/madgan/fits", 1);
        lgo_trace::counter("detect/madgan/fit_windows", windows.len() as u64);
        let n_signals = windows[0][0].len();
        for (i, w) in windows.iter().enumerate() {
            if w.len() != config.seq_len {
                return Err(DetectError::WindowLength {
                    index: i,
                    got: w.len(),
                    expected: config.seq_len,
                });
            }
            if !w.iter().all(|r| r.len() == n_signals) {
                return Err(DetectError::RaggedWindow { index: i });
            }
        }

        let mut scaler = MinMaxScaler::new();
        let all_rows: Vec<Vec<f64>> = windows.iter().flatten().cloned().collect();
        scaler.try_fit(&all_rows)?;
        let scaled: Vec<Window> = windows
            .iter()
            .map(|w| scaler.transform(w))
            .collect::<Result<_, _>>()?;
        // Outliers ride in the *benign* feature frame — they must not
        // stretch the scaler's range.
        let scaled_outliers: Vec<Window> = usable
            .iter()
            .filter(|w| w.iter().all(|r| r.len() == n_signals))
            .map(|w| scaler.transform(w))
            .collect::<Result<_, _>>()?;
        lgo_trace::counter(
            "detect/madgan/outlier_windows",
            scaled_outliers.len() as u64,
        );

        let mut rng = StdRng::seed_from_u64(config.seed);
        let mut generator = LstmSeq2Seq::new(
            config.latent_dim,
            config.hidden,
            n_signals,
            Activation::Sigmoid,
            &mut rng,
        );
        let mut discriminator = LstmDiscriminator::new(n_signals, config.hidden, &mut rng);
        let mut opt_g = Adam::new(config.learning_rate);
        let mut opt_d = Adam::new(config.learning_rate);

        let mut order: Vec<usize> = (0..scaled.len()).collect();
        let mut next_outlier = 0usize;
        for _epoch in 0..config.epochs {
            use rand::seq::SliceRandom;
            order.shuffle(&mut rng);
            for batch in order.chunks(config.batch_size) {
                // --- Discriminator step: real -> 1, fake -> 0, outlier -> 0.
                discriminator.zero_grads();
                for &wi in batch {
                    let real = &scaled[wi];
                    let tr = discriminator.forward(real);
                    discriminator.backward(&tr, Loss::Bce.gradient(tr.probability(), 1.0));
                    let z = Self::draw_latent(config, &mut rng);
                    let fake = generator.generate(&z);
                    let tr = discriminator.forward(&fake);
                    discriminator.backward(&tr, Loss::Bce.gradient(tr.probability(), 0.0));
                }
                if !scaled_outliers.is_empty() {
                    // One exposure per optimizer step, cycled in order; no
                    // RNG is consumed, keeping the plain-fit weight
                    // trajectory reproducible when the set is empty.
                    let o = &scaled_outliers[next_outlier % scaled_outliers.len()];
                    next_outlier += 1;
                    let tr = discriminator.forward(o);
                    discriminator.backward(&tr, Loss::Bce.gradient(tr.probability(), 0.0));
                }
                opt_d.step(&mut discriminator);

                // --- Generator step: make D(G(z)) -> 1.
                generator.zero_grads();
                for _ in 0..batch.len() {
                    let z = Self::draw_latent(config, &mut rng);
                    let g_trace = generator.forward(&z);
                    let d_trace = discriminator.forward(g_trace.outputs());
                    let dprob = Loss::Bce.gradient(d_trace.probability(), 1.0);
                    let dxs = discriminator.backward(&d_trace, dprob);
                    generator.backward(&g_trace, &dxs);
                }
                discriminator.zero_grads();
                opt_g.step(&mut generator);
            }
        }

        let mut gan = Self {
            generator,
            discriminator,
            scaler,
            threshold: 0.0,
            config: config.clone(),
        };
        let stride = (windows.len() / 200).max(1);
        let train_scores: Vec<f64> = windows
            .iter()
            .step_by(stride)
            .map(|w| gan.dr_score(w))
            .collect();
        gan.threshold = lgo_series::stats::quantile(&train_scores, config.threshold_quantile)
            // lint: allow(L1): windows is nonempty (checked at entry) and stride >= 1, so at least one score exists
            .expect("nonempty scores");
        Ok(gan)
    }

    fn draw_latent(config: &MadGanConfig, rng: &mut StdRng) -> Window {
        (0..config.seq_len)
            .map(|_| {
                (0..config.latent_dim)
                    .map(|_| rng.random_range(-1.0..1.0))
                    .collect()
            })
            .collect()
    }

    /// The calibrated DR-Score anomaly threshold.
    pub fn threshold(&self) -> f64 {
        self.threshold
    }

    /// The raw DR-Score of a window: `λ·residual + (1−λ)·(1 − D(x))`.
    ///
    /// The reconstruction residual is the mean squared error between the
    /// (scaled) window and its best generator reconstruction, found by
    /// gradient descent in latent space.
    ///
    /// # Panics
    ///
    /// Panics if the window length or width differs from the training
    /// windows'. Use [`try_dr_score`](Self::try_dr_score) to handle
    /// malformed windows gracefully.
    pub fn dr_score(&self, window: &Window) -> f64 {
        match self.try_dr_score(window) {
            Ok(score) => score,
            // lint: allow(L1): documented panicking wrapper; try_dr_score is the checked path
            Err(e) => panic!("dr_score: {e}"),
        }
    }

    /// Fallible [`dr_score`](Self::dr_score).
    ///
    /// # Errors
    ///
    /// Returns [`DetectError::WindowLength`] when the window length differs
    /// from the configured `seq_len`, and [`DetectError::Scaler`] when its
    /// width differs from the training windows'.
    pub fn try_dr_score(&self, window: &Window) -> Result<f64, DetectError> {
        if window.len() != self.config.seq_len {
            return Err(DetectError::WindowLength {
                index: 0,
                got: window.len(),
                expected: self.config.seq_len,
            });
        }
        let x = self.scaler.transform(window)?;
        let d = self.discriminator.probability(&x);
        let residual = self.reconstruction_residual(&x);
        Ok(self.config.lambda * residual + (1.0 - self.config.lambda) * (1.0 - d))
    }

    /// Best-effort reconstruction residual via latent-space gradient
    /// descent. The residual reported is the **maximum per-timestep squared
    /// error of the first (CGM) signal** over the best reconstruction found:
    /// a manipulation corrupts only a few samples of one channel and must
    /// not be averaged away by the benign remainder of the window.
    fn reconstruction_residual(&self, x_scaled: &Window) -> f64 {
        let mut g = self.generator.clone();
        let mut z: Window = vec![vec![0.0; self.config.latent_dim]; self.config.seq_len];
        let mut best = f64::INFINITY;
        for _ in 0..self.config.inversion_steps {
            let trace = g.forward(&z);
            let outs = trace.outputs();
            let per_step: Vec<f64> = outs
                .iter()
                .zip(x_scaled)
                .map(|(o, t)| (o[0] - t[0]) * (o[0] - t[0]))
                .collect();
            let worst = per_step.iter().cloned().fold(0.0, f64::max);
            best = best.min(worst);
            let n = (outs.len() * outs[0].len()) as f64;
            let dys: Vec<Vec<f64>> = outs
                .iter()
                .zip(x_scaled)
                .map(|(o, t)| o.iter().zip(t).map(|(&a, &b)| 2.0 * (a - b) / n).collect())
                .collect();
            g.zero_grads();
            let dz = g.backward(&trace, &dys);
            for (zr, dr) in z.iter_mut().zip(&dz) {
                for (zv, &dv) in zr.iter_mut().zip(dr) {
                    *zv -= self.config.inversion_lr * dv;
                }
            }
        }
        best
    }
}

impl AnomalyDetector for MadGan {
    fn name(&self) -> &str {
        "madgan"
    }

    /// Score = DR-Score − calibrated threshold.
    fn score(&self, window: &Window) -> f64 {
        lgo_trace::counter("detect/madgan/scores", 1);
        self.dr_score(window) - self.threshold
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn smooth_window(phase: f64) -> Window {
        (0..12)
            .map(|t| {
                let v = ((t as f64) * 0.5 + phase).sin() * 0.25 + 0.5;
                vec![v, v * 0.7, 1.0 - v, 0.5]
            })
            .collect()
    }

    fn noise_window(seed: u64) -> Window {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..12)
            .map(|_| (0..4).map(|_| rng.random_range(0.0..1.0)).collect())
            .collect()
    }

    fn quick_cfg() -> MadGanConfig {
        MadGanConfig {
            epochs: 8,
            hidden: 10,
            inversion_steps: 10,
            batch_size: 8,
            ..MadGanConfig::default()
        }
    }

    fn training_set() -> Vec<Window> {
        (0..48).map(|i| smooth_window(i as f64 * 0.3)).collect()
    }

    #[test]
    fn fit_and_score_are_finite_and_deterministic() {
        let gan = MadGan::fit(&training_set(), &quick_cfg());
        let w = smooth_window(0.1);
        let s1 = gan.score(&w);
        let s2 = gan.score(&w);
        assert!(s1.is_finite());
        assert_eq!(s1, s2);
        assert_eq!(gan.name(), "madgan");
        assert!(gan.threshold().is_finite());
    }

    #[test]
    fn anomalies_score_higher_than_benign() {
        let gan = MadGan::fit(&training_set(), &quick_cfg());
        let benign_mean: f64 = (0..8)
            .map(|i| gan.dr_score(&smooth_window(i as f64 * 0.37 + 0.05)))
            .sum::<f64>()
            / 8.0;
        let anomalous_mean: f64 = (0..8)
            .map(|i| gan.dr_score(&noise_window(100 + i)))
            .sum::<f64>()
            / 8.0;
        assert!(
            anomalous_mean > benign_mean,
            "anomalous {anomalous_mean:.4} <= benign {benign_mean:.4}"
        );
    }

    #[test]
    fn threshold_quantile_bounds_training_flags() {
        let train = training_set();
        let gan = MadGan::fit(&train, &quick_cfg());
        let flagged = train.iter().filter(|w| gan.is_anomalous(w)).count();
        // At the 0.95 quantile, at most ~5% of training windows (plus
        // rounding slack) may be flagged.
        assert!(
            flagged <= train.len() / 10 + 1,
            "{flagged}/{} training windows flagged",
            train.len()
        );
    }

    #[test]
    fn reconstruction_improves_with_more_steps() {
        let train = training_set();
        let mut few = quick_cfg();
        few.inversion_steps = 1;
        let mut many = quick_cfg();
        many.inversion_steps = 25;
        let g_few = MadGan::fit(&train, &few);
        let g_many = MadGan::fit(&train, &many);
        // Same weights (same seed/epochs); more inversion steps can only
        // lower the best-found residual, hence the DR-Score.
        let w = smooth_window(0.9);
        assert!(g_many.dr_score(&w) <= g_few.dr_score(&w) + 1e-9);
    }

    #[test]
    fn outlier_exposure_with_no_outliers_is_bitwise_plain_fit() {
        let train = training_set();
        let cfg = quick_cfg();
        let plain = MadGan::try_fit(&train, &cfg).unwrap();
        let oe = MadGan::try_fit_with_outliers(&train, &[], &cfg).unwrap();
        // Malformed outliers are dropped, so an all-malformed set also
        // reduces to the plain fit.
        let malformed = vec![vec![vec![0.5; 4]; 5], vec![vec![f64::NAN; 4]; 12]];
        let dropped = MadGan::try_fit_with_outliers(&train, &malformed, &cfg).unwrap();
        for gan in [&oe, &dropped] {
            assert_eq!(plain.threshold().to_bits(), gan.threshold().to_bits());
            for w in train.iter().take(6) {
                assert_eq!(
                    plain.dr_score(w).to_bits(),
                    gan.dr_score(w).to_bits(),
                    "empty-outlier reduction diverged"
                );
            }
        }
    }

    #[test]
    fn outlier_exposure_raises_discrimination_score_on_outliers() {
        let train = training_set();
        // Pure discrimination score (λ = 0) isolates the discriminator's
        // response, which is what outlier exposure trains.
        let cfg = MadGanConfig {
            lambda: 0.0,
            ..quick_cfg()
        };
        let outliers: Vec<Window> = (0..8).map(|i| noise_window(900 + i)).collect();
        let plain = MadGan::try_fit(&train, &cfg).unwrap();
        let oe = MadGan::try_fit_with_outliers(&train, &outliers, &cfg).unwrap();
        let mean = |gan: &MadGan| {
            outliers.iter().map(|w| gan.dr_score(w)).sum::<f64>() / outliers.len() as f64
        };
        assert!(
            mean(&oe) > mean(&plain),
            "exposure did not raise outlier discrimination: oe {} vs plain {}",
            mean(&oe),
            mean(&plain)
        );
    }

    #[test]
    #[should_panic(expected = "has length 5 (expected 12)")]
    fn wrong_window_length_rejected() {
        let gan = MadGan::fit(&training_set(), &quick_cfg());
        let _ = gan.dr_score(&vec![vec![0.5; 4]; 5]);
    }

    #[test]
    fn try_dr_score_reports_malformed_windows() {
        let gan = MadGan::fit(&training_set(), &quick_cfg());
        let err = gan.try_dr_score(&vec![vec![0.5; 4]; 5]).unwrap_err();
        assert!(matches!(
            err,
            DetectError::WindowLength {
                got: 5,
                expected: 12,
                ..
            }
        ));
        // A well-formed window agrees with the panicking path.
        let w = smooth_window(0.7);
        assert_eq!(gan.try_dr_score(&w).unwrap(), gan.dr_score(&w));
    }

    #[test]
    #[should_panic(expected = "no training windows")]
    fn empty_training_rejected() {
        let _ = MadGan::fit(&[], &quick_cfg());
    }
}
