/// A window of multivariate time-series rows (time-major).
pub type Window = Vec<Vec<f64>>;

/// Reusable buffers for the allocation-free scoring path
/// ([`AnomalyDetector::score_into`]). One scratch serves any number of
/// sequential scoring calls against any detectors; after the first call
/// the buffers are warm and a score allocates nothing.
///
/// The fields are deliberately public and generic — adapters borrow what
/// they need (the summary wrapper its single-row window, the SVM its flat
/// and standardized feature buffers) and custom detectors outside this
/// crate can do the same.
#[derive(Debug, Default)]
pub struct ScoreScratch {
    /// Reusable single-row window for summary-style adapters.
    pub summary_win: Window,
    /// Reusable flattened-feature buffer.
    pub flat: Vec<f64>,
    /// Reusable transformed-feature buffer.
    pub row: Vec<f64>,
}

impl ScoreScratch {
    /// Fresh scratch; buffers grow on first use.
    pub fn new() -> Self {
        Self::default()
    }
}

/// Common interface of all anomaly detectors.
///
/// Implementations are trained by their own `fit` constructors (supervised
/// for kNN, one-class for the SVM and MAD-GAN); this trait covers inference
/// only, which is what the risk-profiling framework composes over.
///
/// `Send + Sync` is required so trained detectors can score windows from
/// lgo-runtime worker threads; inference is read-only, so implementations
/// get this for free unless they smuggle in interior mutability.
pub trait AnomalyDetector: Send + Sync {
    /// Short detector name ("knn", "ocsvm", "madgan").
    fn name(&self) -> &str;

    /// Real-valued anomaly score; **higher means more anomalous**. The scale
    /// is detector-specific; only the ordering and the sign relative to the
    /// detector's internal threshold are meaningful.
    fn score(&self, window: &Window) -> f64;

    /// Binary decision: `true` when the window is flagged malicious.
    ///
    /// The default implementation flags positive scores.
    fn is_anomalous(&self, window: &Window) -> bool {
        self.score(window) > 0.0
    }

    /// [`score`](Self::score) with caller-owned buffers, for hot loops that
    /// score many windows (the serving ladder, the evaluation grid).
    ///
    /// Must return exactly the bits [`score`](Self::score) returns. The
    /// default delegates to `score` (correct for every detector); detectors
    /// with per-call allocations override it to reuse `scratch` instead.
    fn score_into(&self, window: &Window, scratch: &mut ScoreScratch) -> f64 {
        let _ = scratch;
        self.score(window)
    }

    /// Scores a batch of windows, in order. Must return exactly the bits
    /// of scoring each window individually — overrides may batch the
    /// linear algebra (shared matrix products, one scratch) but not change
    /// a single value. The default maps [`score`](Self::score).
    fn score_batch(&self, windows: &[Window]) -> Vec<f64> {
        windows.iter().map(|w| self.score(w)).collect()
    }
}

/// Boxed detectors delegate, so trait-object pipelines (the fallback
/// chain, the serving ladder's fault-injection wrappers) can compose
/// detectors without knowing their concrete types.
impl<D: AnomalyDetector + ?Sized> AnomalyDetector for Box<D> {
    fn name(&self) -> &str {
        (**self).name()
    }

    fn score(&self, window: &Window) -> f64 {
        (**self).score(window)
    }

    fn is_anomalous(&self, window: &Window) -> bool {
        (**self).is_anomalous(window)
    }

    fn score_into(&self, window: &Window, scratch: &mut ScoreScratch) -> f64 {
        (**self).score_into(window, scratch)
    }

    fn score_batch(&self, windows: &[Window]) -> Vec<f64> {
        (**self).score_batch(windows)
    }
}

/// Flags every window of a slice, returning the boolean decisions.
pub fn flag_all<D: AnomalyDetector + ?Sized>(detector: &D, windows: &[Window]) -> Vec<bool> {
    windows.iter().map(|w| detector.is_anomalous(w)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Fixed(f64);

    impl AnomalyDetector for Fixed {
        fn name(&self) -> &str {
            "fixed"
        }
        fn score(&self, _w: &Window) -> f64 {
            self.0
        }
    }

    #[test]
    fn default_decision_uses_sign() {
        let w: Window = vec![vec![0.0]];
        assert!(Fixed(1.0).is_anomalous(&w));
        assert!(!Fixed(-1.0).is_anomalous(&w));
        assert!(!Fixed(0.0).is_anomalous(&w));
    }

    #[test]
    fn flag_all_maps_decisions() {
        let ws: Vec<Window> = vec![vec![vec![0.0]]; 3];
        assert_eq!(flag_all(&Fixed(2.0), &ws), vec![true, true, true]);
    }

    #[test]
    fn scratch_and_batch_defaults_delegate_to_score() {
        let d: Box<dyn AnomalyDetector> = Box::new(Fixed(2.5));
        let w: Window = vec![vec![0.0]];
        let mut s = ScoreScratch::new();
        assert_eq!(d.score_into(&w, &mut s), 2.5);
        assert_eq!(d.score_batch(&[w.clone(), w]), vec![2.5, 2.5]);
    }
}
