/// A window of multivariate time-series rows (time-major).
pub type Window = Vec<Vec<f64>>;

/// Common interface of all anomaly detectors.
///
/// Implementations are trained by their own `fit` constructors (supervised
/// for kNN, one-class for the SVM and MAD-GAN); this trait covers inference
/// only, which is what the risk-profiling framework composes over.
///
/// `Send + Sync` is required so trained detectors can score windows from
/// lgo-runtime worker threads; inference is read-only, so implementations
/// get this for free unless they smuggle in interior mutability.
pub trait AnomalyDetector: Send + Sync {
    /// Short detector name ("knn", "ocsvm", "madgan").
    fn name(&self) -> &str;

    /// Real-valued anomaly score; **higher means more anomalous**. The scale
    /// is detector-specific; only the ordering and the sign relative to the
    /// detector's internal threshold are meaningful.
    fn score(&self, window: &Window) -> f64;

    /// Binary decision: `true` when the window is flagged malicious.
    ///
    /// The default implementation flags positive scores.
    fn is_anomalous(&self, window: &Window) -> bool {
        self.score(window) > 0.0
    }
}

/// Boxed detectors delegate, so trait-object pipelines (the fallback
/// chain, the serving ladder's fault-injection wrappers) can compose
/// detectors without knowing their concrete types.
impl<D: AnomalyDetector + ?Sized> AnomalyDetector for Box<D> {
    fn name(&self) -> &str {
        (**self).name()
    }

    fn score(&self, window: &Window) -> f64 {
        (**self).score(window)
    }

    fn is_anomalous(&self, window: &Window) -> bool {
        (**self).is_anomalous(window)
    }
}

/// Flags every window of a slice, returning the boolean decisions.
pub fn flag_all<D: AnomalyDetector + ?Sized>(detector: &D, windows: &[Window]) -> Vec<bool> {
    windows.iter().map(|w| detector.is_anomalous(w)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Fixed(f64);

    impl AnomalyDetector for Fixed {
        fn name(&self) -> &str {
            "fixed"
        }
        fn score(&self, _w: &Window) -> f64 {
            self.0
        }
    }

    #[test]
    fn default_decision_uses_sign() {
        let w: Window = vec![vec![0.0]];
        assert!(Fixed(1.0).is_anomalous(&w));
        assert!(!Fixed(-1.0).is_anomalous(&w));
        assert!(!Fixed(0.0).is_anomalous(&w));
    }

    #[test]
    fn flag_all_maps_decisions() {
        let ws: Vec<Window> = vec![vec![vec![0.0]]; 3];
        assert_eq!(flag_all(&Fixed(2.0), &ws), vec![true, true, true]);
    }
}
