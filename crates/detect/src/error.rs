use std::error::Error;
use std::fmt;

use lgo_series::ScalerError;

/// Error returned by the detectors' fallible `try_fit` constructors.
#[derive(Debug, Clone, PartialEq)]
pub enum DetectError {
    /// No training windows were supplied.
    NoTrainingWindows,
    /// Every supplied training window contained a non-finite value — the
    /// data is too degraded to train any detector on.
    NoFiniteWindows,
    /// Flattened windows have differing widths.
    InconsistentShapes,
    /// A window's length differs from the configured sequence length.
    WindowLength {
        /// Index of the offending window.
        index: usize,
        /// Its actual length.
        got: usize,
        /// The configured sequence length.
        expected: usize,
    },
    /// A window has rows of differing widths.
    RaggedWindow {
        /// Index of the offending window.
        index: usize,
    },
    /// `k == 0` was configured for the kNN detector.
    InvalidK,
    /// The KD-tree backend was requested with a non-Euclidean metric.
    KdTreeMetric,
    /// The one-class SVM's `nu` lies outside `(0, 1]`.
    InvalidNu {
        /// The offending value.
        nu: f64,
    },
    /// Scaler fitting failed on the training windows.
    Scaler(ScalerError),
}

impl fmt::Display for DetectError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DetectError::NoTrainingWindows => write!(f, "no training windows"),
            DetectError::NoFiniteWindows => write!(f, "no finite training windows"),
            DetectError::InconsistentShapes => write!(f, "inconsistent window shapes"),
            DetectError::WindowLength {
                index,
                got,
                expected,
            } => write!(f, "window {index} has length {got} (expected {expected})"),
            DetectError::RaggedWindow { index } => write!(f, "window {index} is ragged"),
            DetectError::InvalidK => write!(f, "k must be positive"),
            DetectError::KdTreeMetric => write!(f, "the KD-tree backend requires p = 2"),
            DetectError::InvalidNu { nu } => write!(f, "nu = {nu} outside (0, 1]"),
            DetectError::Scaler(e) => write!(f, "scaler: {e}"),
        }
    }
}

impl Error for DetectError {}

impl From<ScalerError> for DetectError {
    fn from(e: ScalerError) -> Self {
        DetectError::Scaler(e)
    }
}
