//! A KD-tree for exact k-nearest-neighbour queries — the counterpart of
//! scikit-learn's `algorithm="kd_tree"` with its `leaf_size` parameter
//! (the paper's Appendix B passes `algorithm="auto", leaf_size=30`).
//!
//! Exactness matters here: the detector's decisions must be identical to
//! brute force, only faster on low-dimensional summary features.

/// A balanced KD-tree over points of equal dimension.
///
/// # Examples
///
/// ```
/// use lgo_detect::KdTree;
///
/// let pts = vec![vec![0.0, 0.0], vec![1.0, 1.0], vec![5.0, 5.0]];
/// let tree = KdTree::build(pts, 2);
/// let hits = tree.nearest(&[0.9, 0.9], 2);
/// assert_eq!(hits[0].0, 1); // index of the closest point
/// assert_eq!(hits.len(), 2);
/// ```
#[derive(Debug, Clone)]
pub struct KdTree {
    points: Vec<Vec<f64>>,
    nodes: Vec<Node>,
    root: Option<usize>,
    leaf_size: usize,
}

#[derive(Debug, Clone)]
enum Node {
    /// Interior split: axis, threshold, children node ids.
    Split {
        axis: usize,
        value: f64,
        left: usize,
        right: usize,
    },
    /// Leaf bucket of point indices.
    Leaf(Vec<usize>),
}

impl KdTree {
    /// Builds a tree over `points` with the given leaf bucket size
    /// (scikit-learn's default is 30).
    ///
    /// # Panics
    ///
    /// Panics if `leaf_size == 0`, points are ragged, or any coordinate is
    /// NaN.
    pub fn build(points: Vec<Vec<f64>>, leaf_size: usize) -> Self {
        assert!(leaf_size > 0, "KdTree: leaf_size must be positive");
        if let Some(first) = points.first() {
            let dim = first.len();
            for (i, p) in points.iter().enumerate() {
                assert_eq!(p.len(), dim, "KdTree: point {i} has wrong dimension");
                assert!(p.iter().all(|v| !v.is_nan()), "KdTree: NaN in point {i}");
            }
        }
        let mut tree = Self {
            nodes: Vec::new(),
            root: None,
            leaf_size,
            points,
        };
        if !tree.points.is_empty() {
            let mut idx: Vec<usize> = (0..tree.points.len()).collect();
            let root = tree.build_node(&mut idx, 0);
            tree.root = Some(root);
        }
        tree
    }

    fn build_node(&mut self, idx: &mut [usize], depth: usize) -> usize {
        if idx.len() <= self.leaf_size {
            self.nodes.push(Node::Leaf(idx.to_vec()));
            return self.nodes.len() - 1;
        }
        let dim = self.points[0].len();
        // Split on the axis with the largest spread among candidates (more
        // robust than round-robin on skewed data).
        let axis = (0..dim)
            .max_by(|&a, &b| {
                let spread = |ax: usize| {
                    let mut lo = f64::INFINITY;
                    let mut hi = f64::NEG_INFINITY;
                    for &i in idx.iter() {
                        lo = lo.min(self.points[i][ax]);
                        hi = hi.max(self.points[i][ax]);
                    }
                    hi - lo
                };
                spread(a).total_cmp(&spread(b))
            })
            .unwrap_or(depth % dim.max(1));
        let mid = idx.len() / 2;
        idx.select_nth_unstable_by(mid, |&a, &b| {
            self.points[a][axis].total_cmp(&self.points[b][axis])
        });
        let value = self.points[idx[mid]][axis];
        let (left_idx, right_idx) = idx.split_at_mut(mid);
        // Degenerate split (all equal on the axis): bucket everything.
        if left_idx.is_empty() || right_idx.is_empty() {
            self.nodes.push(Node::Leaf(idx.to_vec()));
            return self.nodes.len() - 1;
        }
        let mut left_own = left_idx.to_vec();
        let mut right_own = right_idx.to_vec();
        let left = self.build_node(&mut left_own, depth + 1);
        let right = self.build_node(&mut right_own, depth + 1);
        self.nodes.push(Node::Split {
            axis,
            value,
            left,
            right,
        });
        self.nodes.len() - 1
    }

    /// Number of indexed points.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// Whether the tree is empty.
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// Exact k nearest neighbours of `query` by Euclidean distance,
    /// returned as `(point index, distance)` sorted ascending.
    ///
    /// # Panics
    ///
    /// Panics if the query dimension differs from the indexed points'.
    pub fn nearest(&self, query: &[f64], k: usize) -> Vec<(usize, f64)> {
        let Some(root) = self.root else {
            return Vec::new();
        };
        assert_eq!(
            query.len(),
            self.points[0].len(),
            "KdTree::nearest: query dimension mismatch"
        );
        let k = k.min(self.points.len());
        if k == 0 {
            return Vec::new();
        }
        // Max-heap by distance (keep the k best).
        let mut heap: Vec<(f64, usize)> = Vec::with_capacity(k + 1);
        self.search(root, query, k, &mut heap);
        heap.sort_by(|a, b| a.0.total_cmp(&b.0));
        heap.into_iter().map(|(d, i)| (i, d.sqrt())).collect()
    }

    fn search(&self, node: usize, query: &[f64], k: usize, heap: &mut Vec<(f64, usize)>) {
        match &self.nodes[node] {
            Node::Leaf(bucket) => {
                for &i in bucket {
                    let d2: f64 = self.points[i]
                        .iter()
                        .zip(query)
                        .map(|(&a, &b)| (a - b) * (a - b))
                        .sum();
                    if heap.len() < k {
                        heap.push((d2, i));
                        heap.sort_by(|a, b| b.0.total_cmp(&a.0));
                    } else if d2 < heap[0].0 {
                        heap[0] = (d2, i);
                        heap.sort_by(|a, b| b.0.total_cmp(&a.0));
                    }
                }
            }
            Node::Split {
                axis,
                value,
                left,
                right,
            } => {
                let diff = query[*axis] - value;
                let (near, far) = if diff <= 0.0 {
                    (*left, *right)
                } else {
                    (*right, *left)
                };
                self.search(near, query, k, heap);
                // Visit the far side only if the splitting plane is closer
                // than the current k-th distance.
                if heap.len() < k || diff * diff < heap[0].0 {
                    self.search(far, query, k, heap);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{rngs::StdRng, RngExt, SeedableRng};

    fn brute_force(points: &[Vec<f64>], query: &[f64], k: usize) -> Vec<(usize, f64)> {
        let mut d: Vec<(usize, f64)> = points
            .iter()
            .enumerate()
            .map(|(i, p)| {
                (
                    i,
                    p.iter()
                        .zip(query)
                        .map(|(&a, &b)| (a - b) * (a - b))
                        .sum::<f64>()
                        .sqrt(),
                )
            })
            .collect();
        d.sort_by(|a, b| a.1.total_cmp(&b.1));
        d.truncate(k);
        d
    }

    fn random_points(n: usize, dim: usize, seed: u64) -> Vec<Vec<f64>> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n)
            .map(|_| (0..dim).map(|_| rng.random_range(-10.0..10.0)).collect())
            .collect()
    }

    #[test]
    fn matches_brute_force_exactly() {
        let points = random_points(500, 3, 1);
        let tree = KdTree::build(points.clone(), 16);
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..50 {
            let q: Vec<f64> = (0..3).map(|_| rng.random_range(-12.0..12.0)).collect();
            let got = tree.nearest(&q, 7);
            let want = brute_force(&points, &q, 7);
            // Distances must match exactly (ties may permute indices).
            for (g, w) in got.iter().zip(&want) {
                assert!((g.1 - w.1).abs() < 1e-12, "{got:?} vs {want:?}");
            }
        }
    }

    #[test]
    fn small_leaf_sizes_still_exact() {
        let points = random_points(200, 2, 3);
        for leaf in [1, 2, 30, 500] {
            let tree = KdTree::build(points.clone(), leaf);
            let got = tree.nearest(&[0.0, 0.0], 5);
            let want = brute_force(&points, &[0.0, 0.0], 5);
            for (g, w) in got.iter().zip(&want) {
                assert!((g.1 - w.1).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn k_larger_than_points_clamps() {
        let tree = KdTree::build(random_points(3, 2, 4), 30);
        assert_eq!(tree.nearest(&[0.0, 0.0], 10).len(), 3);
        assert_eq!(tree.len(), 3);
        assert!(!tree.is_empty());
    }

    #[test]
    fn empty_tree_returns_nothing() {
        let tree = KdTree::build(Vec::new(), 30);
        assert!(tree.is_empty());
        assert!(tree.nearest(&[0.0], 3).is_empty());
    }

    #[test]
    fn duplicate_points_handled() {
        let points = vec![vec![1.0, 1.0]; 50];
        let tree = KdTree::build(points, 4);
        let hits = tree.nearest(&[1.0, 1.0], 7);
        assert_eq!(hits.len(), 7);
        assert!(hits.iter().all(|&(_, d)| d == 0.0));
    }

    #[test]
    #[should_panic(expected = "NaN in point")]
    fn nan_points_rejected() {
        let _ = KdTree::build(vec![vec![f64::NAN]], 30);
    }
}
