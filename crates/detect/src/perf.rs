//! Bench-only switch between the legacy and optimized detector hot paths.
//!
//! The optimized paths (flat Gram matrix through `lgo_tensor::matmul_nt`,
//! the [`crate::KernelCache`], batched scoring) are bit-identical to the
//! legacy ones — that is pinned by tests — so this switch exists for one
//! consumer only: the `exp_perf` bench, which times both implementations in
//! a single process and asserts their outputs agree. Production code never
//! touches it; the default is optimized.

use std::sync::atomic::{AtomicBool, Ordering};

static OPTIMIZED: AtomicBool = AtomicBool::new(true);

/// Whether the optimized hot paths are active (the default).
pub fn optimized() -> bool {
    OPTIMIZED.load(Ordering::Relaxed)
}

/// Switches the optimized hot paths on or off, returning the previous
/// setting. Bench/test use only — flipping this mid-pipeline is safe for
/// correctness (both paths produce identical bits) but makes timings
/// meaningless.
pub fn set_optimized(on: bool) -> bool {
    OPTIMIZED.swap(on, Ordering::Relaxed)
}

/// Serializes tests that flip the toggle or assert on global-cache
/// statistics, so they cannot race each other under the parallel test
/// runner. (Races would not corrupt *values* — both paths are
/// bit-identical — but would make counter assertions flaky.)
#[cfg(test)]
pub(crate) fn test_guard() -> &'static std::sync::Mutex<()> {
    static GUARD: std::sync::Mutex<()> = std::sync::Mutex::new(());
    &GUARD
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn toggle_round_trips() {
        let _g = test_guard().lock().unwrap_or_else(std::sync::PoisonError::into_inner);
        let was = set_optimized(false);
        assert!(!optimized());
        set_optimized(true);
        assert!(optimized());
        set_optimized(was);
    }
}
