//! Exact integer-arithmetic training-set subsampling, shared by the three
//! detectors' `max_samples` / `max_windows` caps.
//!
//! The cap used to be implemented three times with a float stride
//! (`items[(i as f64 * stride) as usize]`), which systematically drops the
//! tail of the window list (the last selected index is
//! `⌊(cap−1)·len/cap⌋ < len−1`, so the newest windows never reach the
//! detector) and, through float rounding, cannot even guarantee distinct
//! indices. The replacement maps the selection range onto the item range
//! with endpoint-anchored integer arithmetic: index `i` selects
//! `⌊i·(len−1)/(cap−1)⌋`, so the first and last items are always retained
//! and, whenever `len > cap`, consecutive selections differ by at least
//! `⌊(len−1)/(cap−1)⌋ ≥ 1` — no duplicates, strictly increasing.

/// The indices a cap of `cap` keeps out of `len` items: exact length
/// `min(len, cap)` (or `len` when `cap == 0`, meaning uncapped), strictly
/// increasing, always containing `0` and `len − 1` when `len ≥ 2` and a
/// cap of at least 2 applies.
///
/// # Examples
///
/// ```
/// use lgo_detect::subsample_indices;
///
/// assert_eq!(subsample_indices(10, 4), vec![0, 3, 6, 9]);
/// assert_eq!(subsample_indices(3, 5), vec![0, 1, 2]); // cap >= len: keep all
/// assert_eq!(subsample_indices(9, 1), vec![0]);
/// assert_eq!(subsample_indices(7, 0), vec![0, 1, 2, 3, 4, 5, 6]); // 0 = uncapped
/// ```
pub fn subsample_indices(len: usize, cap: usize) -> Vec<usize> {
    if cap == 0 || len <= cap {
        return (0..len).collect();
    }
    if cap == 1 {
        return vec![0];
    }
    (0..cap).map(|i| i * (len - 1) / (cap - 1)).collect()
}

/// Applies [`subsample_indices`] to an owned vector: keeps the selected
/// items (in order) and drops the rest. `cap == 0` and `cap >= len` return
/// the input unchanged.
pub fn subsample_cap<T>(items: Vec<T>, cap: usize) -> Vec<T> {
    let len = items.len();
    if cap == 0 || len <= cap {
        return items;
    }
    lgo_trace::counter("detect/subsample/dropped", (len - cap) as u64);
    let indices = subsample_indices(len, cap);
    let mut next = 0usize;
    let mut out = Vec::with_capacity(indices.len());
    for (i, item) in items.into_iter().enumerate() {
        if next < indices.len() && indices[next] == i {
            out.push(item);
            next += 1;
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn indices_are_exact_monotone_and_endpoint_anchored() {
        for (len, cap) in [(10, 4), (1000, 300), (150, 100), (7, 2), (500, 499)] {
            let idx = subsample_indices(len, cap);
            assert_eq!(idx.len(), cap, "len {len} cap {cap}");
            assert_eq!(idx[0], 0);
            assert_eq!(*idx.last().expect("nonempty"), len - 1);
            assert!(idx.windows(2).all(|w| w[0] < w[1]), "len {len} cap {cap}");
        }
    }

    #[test]
    fn degenerate_caps() {
        assert_eq!(subsample_indices(5, 5), vec![0, 1, 2, 3, 4]);
        assert_eq!(subsample_indices(5, 9), vec![0, 1, 2, 3, 4]);
        assert_eq!(subsample_indices(5, 0), vec![0, 1, 2, 3, 4]);
        assert_eq!(subsample_indices(5, 1), vec![0]);
        assert_eq!(subsample_indices(0, 3), Vec::<usize>::new());
        assert_eq!(subsample_indices(1, 1), vec![0]);
    }

    #[test]
    fn cap_keeps_selected_items_in_order() {
        let items: Vec<usize> = (0..10).collect();
        assert_eq!(subsample_cap(items, 4), vec![0, 3, 6, 9]);
        let untouched: Vec<usize> = (0..3).collect();
        assert_eq!(subsample_cap(untouched, 8), vec![0, 1, 2]);
    }
}
