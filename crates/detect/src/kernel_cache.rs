//! Kernel (Gram) matrix cache shared across the (strategy × detector) grid.
//!
//! Every One-Class SVM fit pays O(l²·d) to build its kernel matrix over the
//! standardized training points. The selective-training grid, the scaling
//! bench's repeated runs, and the zoo's poison-retrain loop all refit SVMs
//! on rosters that frequently repeat *exactly* — same windows, same scaler,
//! same resolved kernel — so the Gram matrix they need is byte-for-byte the
//! one already computed. [`KernelCache`] memoizes it.
//!
//! # Keying and determinism
//!
//! A cached matrix is reused only on **exact** equality: identical resolved
//! kernel (family and parameters), identical point-matrix dimensions, and
//! bitwise-identical point data (`f64::to_bits`, after a 64-bit FNV-1a
//! fingerprint pre-filter skips almost all non-matches cheaply). There is no
//! tolerance anywhere, so a hit can never change a single output bit — the
//! cache trades memory for time and nothing else.
//!
//! The Gram matrix is computed *inside* the cache lock, serially. That
//! sounds like a scalability sin, but it is what makes the
//! `detect/kernel_cache/*` trace counters deterministic at any
//! `LGO_THREADS`: two grid cells racing on the same roster serialize into
//! one miss followed by one hit, exactly the totals a serial run produces.
//! (The compute itself fans out nothing; at the workspace's point counts —
//! `max_samples` caps l at 1500 — the tiled `matmul_nt` path is fast enough
//! that holding the lock is cheaper than ever computing the matrix twice.)
//!
//! Eviction is FIFO over a byte budget: oldest roster out first. FIFO (not
//! LRU) keeps the eviction sequence a pure function of the *miss sequence*,
//! which is itself deterministic, so the eviction counter is too.

use std::collections::VecDeque;
use std::sync::{Arc, Mutex, OnceLock, PoisonError};

use lgo_tensor::Matrix;

use crate::ocsvm::Kernel;

/// Default byte budget of the global cache: generous for the workspace's
/// capped Gram sizes (a full 1500-point sigmoid Gram is 18 MB) while
/// bounding worst-case growth across a long-lived process.
const DEFAULT_MAX_BYTES: usize = 64 * 1024 * 1024;

/// Hit/miss/eviction totals of a [`KernelCache`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct KernelCacheStats {
    /// Lookups answered from the cache.
    pub hits: u64,
    /// Lookups that had to compute.
    pub misses: u64,
    /// Entries dropped to respect the byte budget.
    pub evictions: u64,
}

struct Entry {
    kernel: Kernel,
    fingerprint: u64,
    points: Matrix,
    gram: Arc<Matrix>,
}

impl Entry {
    fn bytes(&self) -> usize {
        (self.points.len() + self.gram.len()) * std::mem::size_of::<f64>()
    }
}

/// An exact-equality-keyed, FIFO-bounded cache of kernel Gram matrices.
/// See the module docs for the keying and determinism story; see
/// [`global`] for the process-wide instance the SVM fit path uses.
pub struct KernelCache {
    entries: VecDeque<Entry>,
    bytes: usize,
    max_bytes: usize,
    stats: KernelCacheStats,
}

impl KernelCache {
    /// A cache with the default byte budget.
    pub fn new() -> Self {
        Self::with_capacity_bytes(DEFAULT_MAX_BYTES)
    }

    /// A cache bounded to at most `max_bytes` of retained point + Gram
    /// data. A budget of 0 disables retention (every lookup misses).
    pub fn with_capacity_bytes(max_bytes: usize) -> Self {
        Self {
            entries: VecDeque::new(),
            bytes: 0,
            max_bytes,
            stats: KernelCacheStats::default(),
        }
    }

    /// The Gram matrix of `kernel` over the rows of `points` (an l×d
    /// matrix of standardized training points), cached. Entry (i, j) of
    /// the result is `kernel.eval(row i, row j)`, bit-identical to the
    /// direct per-pair evaluation whether it comes from the cache or is
    /// computed fresh.
    pub fn gram(&mut self, kernel: Kernel, points: &Matrix) -> Arc<Matrix> {
        let fingerprint = fingerprint(points);
        if let Some(e) = self.entries.iter().find(|e| {
            e.kernel == kernel && e.fingerprint == fingerprint && same_bits(&e.points, points)
        }) {
            self.stats.hits += 1;
            lgo_trace::counter("detect/kernel_cache/hits", 1);
            return Arc::clone(&e.gram);
        }
        self.stats.misses += 1;
        lgo_trace::counter("detect/kernel_cache/misses", 1);
        let gram = Arc::new(compute_gram(kernel, points));
        let entry = Entry {
            kernel,
            fingerprint,
            points: points.clone(),
            gram: Arc::clone(&gram),
        };
        let cost = entry.bytes();
        while self.bytes + cost > self.max_bytes {
            let Some(old) = self.entries.pop_front() else {
                break;
            };
            self.bytes -= old.bytes();
            self.stats.evictions += 1;
            lgo_trace::counter("detect/kernel_cache/evictions", 1);
        }
        if self.bytes + cost <= self.max_bytes {
            self.entries.push_back(entry);
            self.bytes += cost;
        }
        gram
    }

    /// Current hit/miss/eviction totals.
    pub fn stats(&self) -> KernelCacheStats {
        self.stats
    }

    /// Number of retained Gram matrices.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether nothing is retained.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Drops every retained entry (statistics are kept).
    pub fn clear(&mut self) {
        self.entries.clear();
        self.bytes = 0;
    }
}

impl Default for KernelCache {
    fn default() -> Self {
        Self::new()
    }
}

/// The process-wide cache used by `OneClassSvm::try_fit`. The mutex is
/// held across Gram computation by design — see the module docs.
pub fn global() -> &'static Mutex<KernelCache> {
    static GLOBAL: OnceLock<Mutex<KernelCache>> = OnceLock::new();
    GLOBAL.get_or_init(|| Mutex::new(KernelCache::new()))
}

/// Locks the global cache, recovering from poisoning: the cache holds no
/// invariants a panicked holder could have half-applied that matter more
/// than keeping every later SVM fit alive.
pub(crate) fn lock_global() -> std::sync::MutexGuard<'static, KernelCache> {
    global().lock().unwrap_or_else(PoisonError::into_inner)
}

/// 64-bit FNV-1a over the dimensions and raw bits of a point matrix —
/// the cheap pre-filter in front of the exact bitwise comparison.
fn fingerprint(points: &Matrix) -> u64 {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01b3;
    let mut h = OFFSET;
    for v in [points.rows() as u64, points.cols() as u64]
        .into_iter()
        .chain(points.as_slice().iter().map(|v| v.to_bits()))
    {
        h = (h ^ v).wrapping_mul(PRIME);
    }
    h
}

fn same_bits(a: &Matrix, b: &Matrix) -> bool {
    a.shape() == b.shape()
        && a.as_slice()
            .iter()
            .zip(b.as_slice())
            .all(|(x, y)| x.to_bits() == y.to_bits())
}

/// Computes the full l×l Gram matrix. Dot-product kernels route the dot
/// through the tiled [`Matrix::matmul_nt`] (`P · Pᵀ`) and then apply the
/// scalar kernel transform per entry — identical operations in identical
/// order to `kernel.eval` on each pair, so identical bits. The RBF kernel
/// is not a dot-product form; it evaluates the upper triangle directly and
/// mirrors (its per-pair evaluation is symmetric in exact bits because
/// `(a-b)*(a-b)` only enters through squares).
fn compute_gram(kernel: Kernel, points: &Matrix) -> Matrix {
    // Dot-product kernels ride the symmetric tiled product and transform
    // only the upper triangle, mirroring each finished entry — the scalar
    // transform (the tanh/powi, which dominates the Gram cost) runs once
    // per unordered pair instead of once per matrix cell. Mirroring is
    // exact: K(i, j) and K(j, i) are the same float expression.
    match kernel {
        Kernel::Linear => points.syrk_nt(),
        Kernel::Sigmoid { gamma, coef0 } => {
            transform_upper(points.syrk_nt(), |d| (gamma * d + coef0).tanh())
        }
        Kernel::Polynomial {
            gamma,
            coef0,
            degree,
        } => transform_upper(points.syrk_nt(), |d| (gamma * d + coef0).powi(degree as i32)),
        Kernel::Rbf { .. } => {
            let l = points.rows();
            let mut g = Matrix::zeros(l, l);
            for i in 0..l {
                for j in i..l {
                    let v = kernel.eval(points.row(i), points.row(j));
                    let s = g.as_mut_slice();
                    s[i * l + j] = v;
                    s[j * l + i] = v;
                }
            }
            g
        }
    }
}

/// Applies `f` to every upper-triangle entry (diagonal included) of a
/// symmetric matrix in place, mirroring each result to the lower triangle.
fn transform_upper(mut g: Matrix, f: impl Fn(f64) -> f64) -> Matrix {
    let l = g.rows();
    let s = g.as_mut_slice();
    for i in 0..l {
        for j in i..l {
            let v = f(s[i * l + j]);
            s[i * l + j] = v;
            s[j * l + i] = v;
        }
    }
    g
}

#[cfg(test)]
mod tests {
    use super::*;

    fn points(seed: u64, rows: usize, cols: usize) -> Matrix {
        Matrix::from_fn(rows, cols, |i, j| {
            ((seed as f64 + 1.0) * (i as f64 * 1.37 + j as f64 * 0.61)).sin()
        })
    }

    fn brute_gram(kernel: Kernel, p: &Matrix) -> Matrix {
        Matrix::from_fn(p.rows(), p.rows(), |i, j| kernel.eval(p.row(i), p.row(j)))
    }

    #[test]
    fn gram_matches_per_pair_eval_bitwise() {
        let p = points(3, 17, 4);
        for kernel in [
            Kernel::Linear,
            Kernel::Rbf { gamma: 0.25 },
            Kernel::Sigmoid { gamma: 0.25, coef0: 10.0 },
            Kernel::Polynomial { gamma: 0.5, coef0: 1.0, degree: 3 },
        ] {
            let mut cache = KernelCache::new();
            let g = cache.gram(kernel, &p);
            let reference = brute_gram(kernel, &p);
            assert_eq!(g.shape(), reference.shape());
            for (a, b) in g.as_slice().iter().zip(reference.as_slice()) {
                assert_eq!(a.to_bits(), b.to_bits(), "kernel {kernel:?} diverged");
            }
        }
    }

    #[test]
    fn exact_repeats_hit_and_near_misses_do_not() {
        let mut cache = KernelCache::new();
        let k = Kernel::Sigmoid { gamma: 0.5, coef0: 10.0 };
        let p = points(1, 10, 3);
        let g1 = cache.gram(k, &p);
        let g2 = cache.gram(k, &p);
        assert!(Arc::ptr_eq(&g1, &g2), "exact repeat must return the cached Arc");
        // Same points, different kernel parameter: distinct entry.
        let _ = cache.gram(Kernel::Sigmoid { gamma: 0.5, coef0: 9.0 }, &p);
        // One bit of one point flipped: distinct entry.
        let mut p2 = p.clone();
        p2.as_mut_slice()[0] = f64::from_bits(p2.as_slice()[0].to_bits() ^ 1);
        let _ = cache.gram(k, &p2);
        assert_eq!(
            cache.stats(),
            KernelCacheStats { hits: 1, misses: 3, evictions: 0 }
        );
        assert_eq!(cache.len(), 3);
    }

    #[test]
    fn byte_budget_evicts_fifo() {
        let p0 = points(0, 8, 2);
        let entry_bytes = (8 * 2 + 8 * 8) * std::mem::size_of::<f64>();
        let mut cache = KernelCache::with_capacity_bytes(2 * entry_bytes);
        let k = Kernel::Linear;
        let g0 = cache.gram(k, &p0);
        let _ = cache.gram(k, &points(1, 8, 2));
        // Third entry forces the oldest (p0) out.
        let _ = cache.gram(k, &points(2, 8, 2));
        assert_eq!(cache.stats().evictions, 1);
        assert_eq!(cache.len(), 2);
        // p0 must now miss again — and still match its original bits.
        let g0b = cache.gram(k, &p0);
        assert!(!Arc::ptr_eq(&g0, &g0b));
        for (a, b) in g0.as_slice().iter().zip(g0b.as_slice()) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
        assert_eq!(cache.stats(), KernelCacheStats { hits: 0, misses: 4, evictions: 2 });
    }

    #[test]
    fn zero_budget_disables_retention() {
        let mut cache = KernelCache::with_capacity_bytes(0);
        let p = points(4, 6, 2);
        let _ = cache.gram(Kernel::Linear, &p);
        let _ = cache.gram(Kernel::Linear, &p);
        assert_eq!(cache.stats().hits, 0);
        assert!(cache.is_empty());
    }

    #[test]
    fn clear_drops_entries_but_keeps_stats() {
        let mut cache = KernelCache::new();
        let p = points(5, 5, 2);
        let _ = cache.gram(Kernel::Linear, &p);
        let _ = cache.gram(Kernel::Linear, &p);
        cache.clear();
        assert!(cache.is_empty());
        assert_eq!(cache.stats().hits, 1);
        let _ = cache.gram(Kernel::Linear, &p);
        assert_eq!(cache.stats().misses, 2, "cleared entry must recompute");
    }
}
