//! Sample-level feature extraction for the point detectors.
//!
//! The paper's kNN and One-Class SVM flag *individual glucose measurements*
//! (its Figure 5 marks per-sample true positives and false negatives), not
//! whole history windows. [`CgmSummaryDetector`] adapts a window-based
//! detector to that granularity: each window is collapsed to a compact
//! feature vector describing the newest sample in its recent context, so the
//! detectors judge "is this latest measurement malicious?" exactly as the
//! paper's do.
//!
//! Collapsing to value-centric features is also what activates the paper's
//! central failure mechanism: a manipulated sample and a genuine
//! hyperglycemic excursion overlap in this space, so a detector trained on
//! patients with many benign-abnormal samples learns to wave malicious
//! values through (false negatives) — the Figure 4 ratio story.

use crate::detector::{AnomalyDetector, Window};

/// Index of the CGM channel within detector windows (matches the
/// forecaster's feature layout).
pub const CGM_COLUMN: usize = 0;

/// Which per-sample feature set to extract.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum SummaryMode {
    /// `[last, max_recent]` — pure value densities; the right space for the
    /// kNN detector, whose behaviour the paper explains through the density
    /// of benign normal vs abnormal values (Figure 4).
    #[default]
    Value,
    /// `[last, mean, std, max_recent]` — values plus window context; the
    /// right space for the One-Class SVM, which learns a global boundary
    /// around benign behaviour.
    Context,
}

/// Collapses a window into per-sample features of its newest measurement:
///
/// `[last, max_recent]`
///
/// - `last` — the newest CGM value (the sample under judgement),
/// - `max_recent` — maximum over the last three samples (the zone a short
///   Bluetooth manipulation can reach).
///
/// The features are deliberately *value-centric*: no first differences or
/// slopes. A manipulated measurement and a genuine hyperglycemic excursion
/// then occupy the same region of feature space (the paper's Figure-6
/// malicious-abnormal vs benign-abnormal quadrants), which is exactly the
/// ambiguity the risk-profiling defense is about. Derivative features would
/// make short manipulations trivially separable and erase the phenomenon
/// under study.
///
/// # Panics
///
/// Panics if the window is empty or rows lack the CGM column.
pub fn cgm_summary(window: &Window) -> Vec<f64> {
    cgm_summary_mode(window, SummaryMode::Value)
}

/// [`cgm_summary`] with an explicit [`SummaryMode`].
///
/// # Panics
///
/// Panics if the window is empty or rows lack the CGM column.
pub fn cgm_summary_mode(window: &Window, mode: SummaryMode) -> Vec<f64> {
    let mut out = Vec::new();
    cgm_summary_mode_into(window, mode, &mut out);
    out
}

/// [`cgm_summary_mode`] into a caller-owned buffer — the allocation-free
/// variant for hot scoring loops. `out` is cleared and refilled with
/// identical values (same float operations in the same order) to the
/// allocating path.
///
/// # Panics
///
/// Panics if the window is empty or rows lack the CGM column.
pub fn cgm_summary_mode_into(window: &Window, mode: SummaryMode, out: &mut Vec<f64>) {
    assert!(!window.is_empty(), "cgm_summary: empty window");
    let n = window.len();
    let cgm = |i: usize| window[i][CGM_COLUMN];
    let last = cgm(n - 1);
    // IEEE `f64::max` ignores NaN operands, which would silently drop a
    // corrupted reading from the summary; total_cmp ranks NaN above every
    // real, so corruption surfaces in the feature instead of vanishing.
    let max_recent = (n.saturating_sub(3)..n)
        .map(cgm)
        .max_by(|a, b| a.total_cmp(b))
        // The range saturating_sub(3)..n is non-empty for any n >= 1
        // (guaranteed by the is_empty assert above); a future off-by-one
        // must panic here rather than leak f64::MIN into the feature vector.
        // lint: allow(L1): range is non-empty for n >= 1, see comment above
        .expect("cgm_summary: recent-max range is non-empty for n >= 1");
    out.clear();
    match mode {
        SummaryMode::Value => out.extend([last, max_recent]),
        SummaryMode::Context => {
            let mean = (0..n).map(cgm).sum::<f64>() / n as f64;
            let var = (0..n).map(|i| (cgm(i) - mean) * (cgm(i) - mean)).sum::<f64>() / n as f64;
            out.extend([last, mean, var.sqrt(), max_recent]);
        }
    }
}

/// Maps a set of windows through [`cgm_summary`], producing single-row
/// windows suitable for the point detectors.
pub fn summarize_all(windows: &[Window]) -> Vec<Window> {
    summarize_all_mode(windows, SummaryMode::Value)
}

/// [`summarize_all`] with an explicit [`SummaryMode`].
///
/// Each window is summarized independently on the lgo-runtime pool (in
/// batches, since a single summary is too cheap to be its own task);
/// output order matches input order.
pub fn summarize_all_mode(windows: &[Window], mode: SummaryMode) -> Vec<Window> {
    const BATCH: usize = 64;
    if windows.len() <= BATCH {
        return windows
            .iter()
            .map(|w| vec![cgm_summary_mode(w, mode)])
            .collect();
    }
    lgo_runtime::par_chunks(windows, BATCH, |chunk| {
        chunk
            .iter()
            .map(|w| vec![cgm_summary_mode(w, mode)])
            .collect::<Vec<Window>>()
    })
    .into_iter()
    .flatten()
    .collect()
}

/// Adapter giving a window-based detector per-sample semantics: queries are
/// summarized with [`cgm_summary`] before being scored by the inner
/// detector (which must have been trained on summarized windows, see
/// [`summarize_all`]).
#[derive(Debug, Clone)]
pub struct CgmSummaryDetector<D> {
    inner: D,
    mode: SummaryMode,
}

impl<D: AnomalyDetector> CgmSummaryDetector<D> {
    /// Wraps a detector trained on [`SummaryMode::Value`] summaries.
    pub fn new(inner: D) -> Self {
        Self::with_mode(inner, SummaryMode::Value)
    }

    /// Wraps a detector trained on summaries of the given mode.
    pub fn with_mode(inner: D, mode: SummaryMode) -> Self {
        Self { inner, mode }
    }

    /// The wrapped detector.
    pub fn inner(&self) -> &D {
        &self.inner
    }
}

impl<D: AnomalyDetector> AnomalyDetector for CgmSummaryDetector<D> {
    fn name(&self) -> &str {
        self.inner.name()
    }

    fn score(&self, window: &Window) -> f64 {
        self.inner.score(&vec![cgm_summary_mode(window, self.mode)])
    }

    fn score_into(&self, window: &Window, scratch: &mut crate::detector::ScoreScratch) -> f64 {
        // Reuse the scratch's single-row window for the summary. The row
        // is taken out of the scratch for the duration of the inner call
        // so the inner detector can borrow the remaining buffers freely.
        let mut win = std::mem::take(&mut scratch.summary_win);
        if win.is_empty() {
            win.push(Vec::new());
        }
        win.truncate(1);
        cgm_summary_mode_into(window, self.mode, &mut win[0]);
        let score = self.inner.score_into(&win, scratch);
        scratch.summary_win = win;
        score
    }

    fn score_batch(&self, windows: &[Window]) -> Vec<f64> {
        // Summarize once, then let the inner detector batch the algebra.
        let summaries: Vec<Window> = windows
            .iter()
            .map(|w| vec![cgm_summary_mode(w, self.mode)])
            .collect();
        self.inner.score_batch(&summaries)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::knn::{KnnConfig, KnnDetector};

    fn window(levels: &[f64]) -> Window {
        levels.iter().map(|&v| vec![v, 0.0, 0.0, 70.0]).collect()
    }

    #[test]
    fn summary_features_are_what_they_claim() {
        let w = window(&[100.0, 110.0, 120.0, 180.0]);
        let f = cgm_summary(&w);
        assert_eq!(f.len(), 2);
        assert_eq!(f[0], 180.0); // last
        assert_eq!(f[1], 180.0); // max of last 3
    }

    #[test]
    fn single_sample_window_is_safe() {
        let f = cgm_summary(&window(&[140.0]));
        assert_eq!(f, vec![140.0, 140.0]);
        let c = cgm_summary_mode(&window(&[140.0]), SummaryMode::Context);
        assert_eq!(c, vec![140.0, 140.0, 0.0, 140.0]);
    }

    #[test]
    fn context_mode_adds_window_statistics() {
        let w = window(&[100.0, 110.0, 120.0, 180.0]);
        let f = cgm_summary_mode(&w, SummaryMode::Context);
        assert_eq!(f.len(), 4);
        assert_eq!(f[0], 180.0);
        assert!((f[1] - 127.5).abs() < 1e-12);
        assert_eq!(f[3], 180.0);
    }

    #[test]
    fn adapter_scores_like_inner_on_summaries() {
        let benign: Vec<Window> = (0..20)
            .map(|i| window(&[100.0 + i as f64, 101.0, 102.0, 103.0]))
            .collect();
        let malicious: Vec<Window> = (0..20)
            .map(|i| window(&[100.0 + i as f64, 101.0, 102.0, 300.0]))
            .collect();
        let knn = KnnDetector::fit(
            &summarize_all(&benign),
            &summarize_all(&malicious),
            &KnnConfig::default(),
        );
        let det = CgmSummaryDetector::new(knn);
        assert!(det.is_anomalous(&window(&[105.0, 104.0, 103.0, 310.0])));
        assert!(!det.is_anomalous(&window(&[105.0, 104.0, 103.0, 104.0])));
        assert_eq!(det.name(), "knn");
        assert_eq!(det.inner().name(), "knn");
    }

    #[test]
    fn summary_into_matches_allocating_path_bitwise() {
        let w = window(&[100.0, 110.0, f64::NAN, 180.0]);
        let mut buf = vec![7.0; 9]; // stale content must not leak through
        for mode in [SummaryMode::Value, SummaryMode::Context] {
            cgm_summary_mode_into(&w, mode, &mut buf);
            let reference = cgm_summary_mode(&w, mode);
            assert_eq!(buf.len(), reference.len());
            for (a, b) in buf.iter().zip(&reference) {
                assert_eq!(a.to_bits(), b.to_bits(), "mode {mode:?}");
            }
        }
    }

    #[test]
    fn adapter_scratch_and_batch_match_score() {
        let benign: Vec<Window> = (0..20)
            .map(|i| window(&[100.0 + i as f64, 101.0, 102.0, 103.0]))
            .collect();
        let malicious: Vec<Window> = (0..20)
            .map(|i| window(&[100.0 + i as f64, 101.0, 102.0, 300.0]))
            .collect();
        let knn = KnnDetector::fit(
            &summarize_all(&benign),
            &summarize_all(&malicious),
            &KnnConfig::default(),
        );
        let det = CgmSummaryDetector::new(knn);
        let queries: Vec<Window> = (0..10)
            .map(|i| window(&[105.0, 104.0, 103.0, 100.0 + i as f64 * 25.0]))
            .collect();
        let mut scratch = crate::detector::ScoreScratch::new();
        let batch = det.score_batch(&queries);
        for (w, &b) in queries.iter().zip(&batch) {
            let direct = det.score(w);
            assert_eq!(det.score_into(w, &mut scratch).to_bits(), direct.to_bits());
            assert_eq!(b.to_bits(), direct.to_bits());
        }
    }

    #[test]
    #[should_panic(expected = "empty window")]
    fn empty_window_rejected() {
        let _ = cgm_summary(&vec![]);
    }
}
